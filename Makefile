# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test check statcheck streamcheck chaoscheck packedcheck compresscheck incrcheck servecheck bpscheck distcheck race race-all vet fmt bench bench-json benchdiff experiments experiments-full serve-bench serve-benchdiff scale-bench scale-benchdiff fuzz clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

check: build vet test race statcheck streamcheck chaoscheck packedcheck compresscheck incrcheck servecheck bpscheck distcheck

# The statistical-accuracy suite (recall / false-positive-rate bounds
# on seeded synthetic matrices; deterministic).
statcheck:
	$(GO) test ./internal/statstest

# The out-of-core suite under the race detector: streamed pipeline
# bit-identical to in-memory (differential harness), budgeted
# verification spills and still matches, streamed kernels and the shard
# fan-out agree with their serial counterparts.
streamcheck:
	$(GO) test -race -run 'TestStreamed' .
	$(GO) test -race -run 'TestExactBudgeted|TestComputeStream|TestFanOutShards|TestScanShards|TestFileSourceBytesRead' ./internal/verify ./internal/minhash ./internal/kminhash ./internal/matrix

# The chaos-differential suite under the race detector: runs under
# injected transient IO faults bit-identical to fault-free runs,
# permanent faults fail with path+offset errors, cancelled runs stop
# promptly leaving no goroutines or spill files, and the fault injector
# plus the spill cleanup paths hold up on their own.
chaoscheck:
	$(GO) test -race -run 'TestChaos' .
	$(GO) test -race ./internal/faultfs ./internal/testutil
	$(GO) test -race -run 'TestBudgetWorkerCleanup|TestExactBudgetedCleanup|TestExactBudgetedSpillDir|TestFileSourceDecodeErrors' ./internal/verify ./internal/matrix

# The packed-kernel differential suite under the race detector: the
# word-packed popcount verifier bit-identical to the scalar kernels
# across sources, budgets, and worker counts, plus the end-to-end
# kernel loops in the streamed/chaos/statistical harnesses.
packedcheck:
	$(GO) test -race -run 'TestPacked|TestAutoPack' ./internal/verify
	$(GO) test -race -run 'TestKernelOutcomesAgree' ./internal/statstest

# The compressed-codec differential suite under the race detector:
# mining ".carows" compressed matrices bit-identical to ".arows" across
# schemes, worker counts, and memory budgets (including under injected
# transient IO faults), compressed signature/sketch files round-tripping
# exactly, and the spill codec matching raw runs byte-for-result.
compresscheck:
	$(GO) test -race -run 'TestCompressed|TestSignaturesCompressed' .
	$(GO) test -race ./internal/bitpack
	$(GO) test -race -run 'TestCompressed|TestFileSourceCompressed|TestSaveLoadFileCompressed|TestFillColumnBits|TestSpillCodecs|TestSpillCompressed|TestSpillRun|TestWriteCompressed|TestReadCompressed|TestSketchCodec|TestReadSketches' ./internal/matrix ./internal/verify ./internal/minhash ./internal/kminhash

# The incremental-ingestion differential suite under the race detector:
# chunked appends with mid-stream snapshot round-trips bit-identical to
# batch computes, catch-up from grown files folding only the new rows,
# sliding windows equal to batch folds over the suffix, and the
# merge/fold-state property tests in the sketch packages.
incrcheck:
	$(GO) test -race -run 'TestIncr' .
	$(GO) test -race -run 'TestMerge|TestFoldState|TestComputeStream' ./internal/minhash ./internal/kminhash
	$(GO) test -race -run 'TestDistributeShards|TestTailSource' ./internal/matrix
	$(GO) test -race -run 'TestGoldenIncremental|TestIncrCLI' ./cmd/assocfind

# The biased-pair-sampling differential suite under the race detector:
# BPS streamed == in-memory across file formats, worker counts and
# verify kernels, budgeted spill == unbudgeted, sliding windows exact —
# all bit-identical at a fixed seed — plus the sampler's property
# invariants, the recall/FP statistics, and the CLI goldens.
bpscheck:
	$(GO) test -race -run 'TestBPS' .
	$(GO) test -race ./internal/bps
	$(GO) test -race -run 'TestBPS' ./internal/statstest
	$(GO) test -race -run 'TestGoldenOutput/bps|TestGoldenOutput/stream-bps|TestParseAlgo' ./cmd/assocfind

# The distributed-executor differential suite under the race detector:
# coordinator + worker subprocesses bit-identical to the single-process
# drivers for every scheme, worker count and file format — including a
# worker killed mid-shard and restarted — plus hang detection,
# cancellation teardown, the restart budget, the wire-protocol codecs,
# and the byte-identical CLI harness behind `assocfind -dist-workers`.
distcheck:
	$(GO) test -race ./internal/dist
	$(GO) test -race -run 'TestDist' ./cmd/assocfind

# The resident-service suite under the race detector: concurrent
# clients byte-identical to direct library calls, 1000 queries held in
# flight, shutdown draining, hot refresh under load, golden HTTP
# responses, and the query planner.
servecheck:
	$(GO) test -race ./internal/serve ./cmd/assocserve

# Race-detect the packages with concurrent code paths (fast); race-all
# covers the whole tree.
race:
	$(GO) test -race ./internal/verify ./internal/lsh ./internal/candidate ./internal/minhash ./internal/kminhash

race-all:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

bench:
	$(GO) test -bench=. -benchmem ./...

# Per-phase serial-vs-parallel timings as JSON (ns/op + allocs/op +
# speedup).
bench-json:
	$(GO) run ./cmd/benchjson -out BENCH_pipeline.json

# Re-time every phase and fail if any regressed >15% against the
# committed BENCH_pipeline.json. `make benchdiff UPDATE=1` accepts the
# fresh numbers as the new baseline instead.
benchdiff:
ifdef UPDATE
	$(GO) run ./cmd/benchjson -against BENCH_pipeline.json -update -out BENCH_pipeline.json
else
	$(GO) run ./cmd/benchjson -against BENCH_pipeline.json -out /dev/null
endif

# Regenerate every paper table and figure (text to stdout).
experiments:
	$(GO) run ./cmd/experiments

experiments-full:
	$(GO) run ./cmd/experiments -scale full

# Time the multi-process executor over the 10M-row Zipfian scale tier
# (1 worker vs 4) into BENCH_scale.json. On machines with fewer than 4
# cores the 4-worker row is recorded as skipped.
scale-bench:
	$(GO) run ./cmd/benchjson -scale -out BENCH_scale.json

# Re-run the scale tier and fail on >15% regression — or a 4-worker
# speedup below 2.5x where measurable — against the committed
# BENCH_scale.json. `make scale-benchdiff UPDATE=1` accepts the fresh
# numbers instead.
scale-benchdiff:
ifdef UPDATE
	$(GO) run ./cmd/benchjson -scale -against BENCH_scale.json -update -out BENCH_scale.json
else
	$(GO) run ./cmd/benchjson -scale -against BENCH_scale.json -out /dev/null
endif

# Short fuzz pass over the codecs and dataset parsers.
fuzz:
	$(GO) test ./internal/matrix -fuzz FuzzReadText -fuzztime 10s
	$(GO) test ./internal/matrix -fuzz FuzzReadBinary -fuzztime 10s
	$(GO) test ./internal/matrix -fuzz FuzzReadNamedTransactions -fuzztime 10s
	$(GO) test ./internal/matrix -fuzz FuzzCArowsRoundTrip -fuzztime 10s
	$(GO) test ./internal/minhash -fuzz FuzzReadSignatures -fuzztime 10s
	$(GO) test ./internal/minhash -fuzz FuzzCompressedSignatures -fuzztime 10s
	$(GO) test ./internal/kminhash -fuzz FuzzReadSketches -fuzztime 10s
	$(GO) test ./internal/minhash -fuzz FuzzFoldStateRoundTrip -fuzztime 10s
	$(GO) test ./internal/minhash -fuzz FuzzMergeVsBatch -fuzztime 10s
	$(GO) test ./internal/kminhash -fuzz FuzzFoldStateRoundTrip -fuzztime 10s
	$(GO) test ./internal/kminhash -fuzz FuzzMergeVsBatch -fuzztime 10s
	$(GO) test . -fuzz FuzzOpenFileDataset -fuzztime 10s
	$(GO) test ./internal/faultfs -fuzz FuzzPlanRowBinary -fuzztime 10s
	$(GO) test ./internal/verify -fuzz FuzzPackedVsScalar -fuzztime 10s
	$(GO) test ./internal/bps -fuzz FuzzBPSSampler -fuzztime 10s
	$(GO) test ./internal/serve -fuzz FuzzHTTPQuery -fuzztime 10s
	$(GO) test ./internal/serve -fuzz FuzzParseExpr -fuzztime 10s

# Re-measure the serving path (1000 concurrent clients over the
# in-process handler) into BENCH_serve.json.
serve-bench:
	$(GO) run ./cmd/serveload -out BENCH_serve.json

# Re-drive the load harness and fail on regression against the
# committed BENCH_serve.json (errors, p99, QPS, leaks). `make
# serve-benchdiff UPDATE=1` accepts the fresh numbers instead.
serve-benchdiff:
ifdef UPDATE
	$(GO) run ./cmd/serveload -against BENCH_serve.json -update -out BENCH_serve.json
else
	$(GO) run ./cmd/serveload -against BENCH_serve.json -out /dev/null
endif

clean:
	rm -rf internal/matrix/testdata/fuzz internal/faultfs/testdata/fuzz internal/serve/testdata/fuzz
