# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race vet fmt bench experiments experiments-full fuzz clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table and figure (text to stdout).
experiments:
	$(GO) run ./cmd/experiments

experiments-full:
	$(GO) run ./cmd/experiments -scale full

# Short fuzz pass over the codecs.
fuzz:
	$(GO) test ./internal/matrix -fuzz FuzzReadText -fuzztime 10s
	$(GO) test ./internal/matrix -fuzz FuzzReadBinary -fuzztime 10s
	$(GO) test ./internal/matrix -fuzz FuzzReadNamedTransactions -fuzztime 10s

clean:
	rm -rf internal/matrix/testdata/fuzz
