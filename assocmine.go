package assocmine

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"assocmine/internal/apriori"
	"assocmine/internal/bps"
	"assocmine/internal/candidate"
	"assocmine/internal/hamminglsh"
	"assocmine/internal/kminhash"
	"assocmine/internal/lsh"
	"assocmine/internal/matrix"
	"assocmine/internal/minhash"
	"assocmine/internal/obs"
	"assocmine/internal/pairs"
	"assocmine/internal/verify"
)

// ErrAprioriMemory is returned by SimilarPairs when the Apriori
// baseline exceeds Config.AprioriMemoryBudget — the failure mode the
// paper reports for low support thresholds (Fig. 4's "-" rows).
var ErrAprioriMemory = apriori.ErrMemoryBudget

// Algorithm selects the similar-pair mining scheme.
type Algorithm int

const (
	// BruteForce counts every pair exactly. No false positives or
	// negatives; O(Σ|row|²) time. The ground truth.
	BruteForce Algorithm = iota
	// MinHash is the MH scheme (paper Section 3): k independent
	// min-hash values per column, candidates by signature agreement.
	// Essentially no false negatives for adequate K; slower.
	MinHash
	// KMinHash is the K-MH scheme (Section 3.2): bottom-k sketches from
	// a single hash function; exploits sparsity, sublinear in K.
	KMinHash
	// MinLSH is the M-LSH scheme (Section 4.1): banded LSH over
	// min-hash values. The fastest; tunable FP/FN trade-off.
	MinLSH
	// HammingLSH is the H-LSH scheme (Section 4.2): density-ladder LSH
	// directly on the data. Fast at high similarity cutoffs; many false
	// positives, so verification cost dominates.
	HammingLSH
	// Apriori is the support-pruned baseline of Fig. 4. It requires
	// MinSupport > 0 and degrades (eventually failing on memory) as
	// support drops.
	Apriori
	// BPS is biased pair sampling (Campagna & Pagh, "Finding
	// Associations and Computing Similarity via Biased Pair Sampling"):
	// candidate pairs are drawn directly from each row, accepted with
	// probability min(1, Δ/(s_i·s_j)) — inversely proportional to the
	// columns' support product — so low-support (interesting) pairs are
	// counted exactly while frequent pairs are cheaply subsampled. No
	// signature matrix; phase 1 is a single support-counting pass and
	// SampleBudget tunes the recall/work trade-off.
	BPS
)

// String returns the paper's name for the algorithm.
func (a Algorithm) String() string {
	switch a {
	case BruteForce:
		return "BruteForce"
	case MinHash:
		return "MH"
	case KMinHash:
		return "K-MH"
	case MinLSH:
		return "M-LSH"
	case HammingLSH:
		return "H-LSH"
	case Apriori:
		return "A-priori"
	case BPS:
		return "BPS"
	default:
		return fmt.Sprintf("Algorithm(%d)", int(a))
	}
}

// Kernel selects the verification counting kernel; see
// Config.VerifyKernel.
type Kernel = verify.Kernel

const (
	// KernelAuto (the zero value) picks the packed kernel when the
	// candidate-column bitmaps fit comfortably in memory and the scalar
	// kernel otherwise; verify.AutoPack is the exact heuristic.
	KernelAuto = verify.KernelAuto
	// KernelPacked forces the word-packed popcount kernel.
	KernelPacked = verify.KernelPacked
	// KernelScalar forces the per-row counter-scatter kernels.
	KernelScalar = verify.KernelScalar
)

// ParseKernel converts a flag spelling ("auto", "packed", "scalar";
// empty means auto) into a Kernel.
func ParseKernel(s string) (Kernel, error) { return verify.ParseKernel(s) }

// Config controls SimilarPairs. Zero values select documented defaults.
type Config struct {
	// Algorithm picks the scheme; default BruteForce.
	Algorithm Algorithm
	// Threshold is s*, the similarity cutoff. Required (in (0,1]).
	Threshold float64
	// K is the number of min-hash values per column for MinHash,
	// KMinHash and MinLSH. Default 100.
	K int
	// Delta loosens the candidate filter: signature-phase candidates
	// need estimated similarity >= (1-Delta)*Threshold, with exact
	// filtering left to verification. Default 0.2.
	Delta float64
	// R and L are the band size and band count for MinLSH and the
	// sample size and run count for HammingLSH. Defaults: R=5,
	// L=K/R (MinLSH) or L=10 (HammingLSH).
	R, L int
	// T is the HammingLSH density-window parameter; default 4.
	T int
	// MinSupport is the support fraction for Apriori (required for it).
	MinSupport float64
	// SampleBudget is the BPS sample budget λ: the expected number of
	// accepted draws for a pair exactly at Threshold. Larger budgets
	// raise recall and shrink the false-positive rate of the sampling
	// filter at proportionally more accepted samples. Default 32. The
	// other algorithms ignore it.
	SampleBudget int
	// AprioriMemoryBudget bounds apriori's candidate bytes; zero means
	// unlimited. When exceeded, SimilarPairs returns
	// apriori.ErrMemoryBudget (the paper's Fig. 4 "-" entries).
	AprioriMemoryBudget int64
	// MemoryBudget bounds the verification counter table in bytes; zero
	// means unlimited. When the table for all candidates would exceed
	// the budget, the exact pass keeps a bounded table and spills sorted
	// runs of partial counts to disk, merging them after its single
	// scan — results are bit-identical either way, and Stats reports the
	// spill activity (SpillRuns, SpillBytes).
	MemoryBudget int64
	// Seed drives all hashing; runs are deterministic in (data, Config).
	Seed uint64
	// SkipVerify returns raw candidates without the exact pruning pass
	// (their Similarity fields are then estimates or zero).
	SkipVerify bool
	// Workers parallelises all three phases — signatures, candidate
	// generation, and verification — across goroutines, with results
	// bit-identical to the serial run. 0 or 1 means serial; negative
	// means GOMAXPROCS (setDefaults normalises both, so after
	// validation Workers is always >= 1). Streaming FileDataset runs
	// stay out of core at every worker count: both the signature and
	// verification phases fan their single sequential row pass out to
	// the workers in bounded shards, never materialising the matrix
	// (HammingLSH excepted — its fold ladder is a whole-data structure).
	Workers int
	// Recorder, when non-nil, receives per-phase spans, counters and
	// gauges as the run progresses (see the Counter*/Gauge*/Phase*
	// constants). Stats is populated from the same event stream, so a
	// Collector used here ends the run agreeing with Stats exactly.
	// Must be safe for concurrent use. nil costs nothing.
	Recorder Recorder
	// Progress, when non-nil, receives coarse per-phase progress. Calls
	// are serialised and monotonic per phase; hooks sit at chunk/band/
	// shard boundaries, so results and Stats are unaffected. nil costs
	// nothing.
	Progress ProgressFunc
	// Context, when non-nil, cancels the run: every phase — signature
	// streaming, candidate generation, verification — checks it at
	// row/chunk/band granularity and returns ctx.Err() promptly once it
	// is done, with spill files cleaned up and no goroutines left
	// behind. nil means run to completion.
	Context context.Context
	// SpillDir receives the budgeted verification pass's spill runs;
	// "" means the OS temp directory. Run files never outlive the call,
	// successful or not.
	SpillDir string
	// Window, when positive, mines only the trailing Window rows of the
	// data: rows before NumRows-Window are skipped in every pass (row
	// ids are preserved, so signatures stay comparable with full-data
	// runs of the same seed), and similarities are exact over the window
	// alone. A Window >= NumRows is a full-data run. Sliding windows are
	// a streaming notion, so the whole-data schemes reject them:
	// HammingLSH (its fold ladder ingests the materialised matrix) and
	// Apriori (support counting is defined over all rows) return an
	// error for Window > 0.
	Window int
	// VerifyKernel selects the verification counting kernel. KernelAuto
	// (the default) runs the word-packed popcount kernel when the
	// candidate-column bitmaps fit comfortably in memory — and, under a
	// MemoryBudget, only when the whole arena fits the budget — falling
	// back to the scalar counter kernels otherwise. KernelPacked forces
	// packing (batching the candidate columns against any MemoryBudget);
	// KernelScalar forces the scalar kernels. Results are bit-identical
	// across kernels; Stats reports the packed work (PackedWords,
	// PackedBatches).
	VerifyKernel Kernel
}

// context returns the run's context, Background when none was set.
func (c Config) context() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

func (c *Config) setDefaults() error {
	if c.Threshold <= 0 || c.Threshold > 1 {
		return fmt.Errorf("assocmine: Threshold must be in (0,1], got %v", c.Threshold)
	}
	if c.K == 0 {
		c.K = 100
	}
	if c.K < 1 {
		return fmt.Errorf("assocmine: K must be positive, got %d", c.K)
	}
	if c.Delta == 0 {
		c.Delta = 0.2
	}
	if c.Delta < 0 || c.Delta >= 1 {
		return fmt.Errorf("assocmine: Delta must be in [0,1), got %v", c.Delta)
	}
	if c.R == 0 {
		c.R = 5
	}
	if c.R < 1 {
		return fmt.Errorf("assocmine: R must be positive, got %d", c.R)
	}
	if c.L == 0 {
		if c.Algorithm == HammingLSH {
			c.L = 10
		} else {
			c.L = c.K / c.R
			if c.L < 1 {
				c.L = 1
			}
		}
	}
	if c.L < 1 {
		return fmt.Errorf("assocmine: L must be positive, got %d", c.L)
	}
	if c.Algorithm == MinLSH && c.K < c.R {
		return fmt.Errorf("assocmine: MinLSH needs K >= R, got K=%d R=%d", c.K, c.R)
	}
	if c.Algorithm == Apriori && (c.MinSupport <= 0 || c.MinSupport > 1) {
		return fmt.Errorf("assocmine: Apriori requires MinSupport in (0,1], got %v", c.MinSupport)
	}
	if c.SampleBudget == 0 {
		c.SampleBudget = 32
	}
	if c.SampleBudget < 1 {
		return fmt.Errorf("assocmine: SampleBudget must be positive, got %d", c.SampleBudget)
	}
	if c.Window < 0 {
		return fmt.Errorf("assocmine: Window must be >= 0, got %d", c.Window)
	}
	if c.Window > 0 && (c.Algorithm == HammingLSH || c.Algorithm == Apriori) {
		return fmt.Errorf("assocmine: %v does not support sliding-window mining (Window=%d)", c.Algorithm, c.Window)
	}
	c.Workers = normalizeWorkers(c.Workers)
	return nil
}

// normalizeWorkers applies the single Workers semantic used
// everywhere: negative means GOMAXPROCS, 0 and 1 mean serial. The
// returned count is always >= 1.
func normalizeWorkers(workers int) int {
	if workers < 0 {
		return runtime.GOMAXPROCS(0)
	}
	if workers == 0 {
		return 1
	}
	return workers
}

// Pair is a similar column pair in a Result.
type Pair struct {
	I, J int
	// Estimate is the signature-phase similarity estimate (NaN-free; 0
	// when the scheme attaches none, e.g. LSH bucket collisions).
	Estimate float64
	// Similarity is the exact verified similarity (0 when SkipVerify).
	Similarity float64
}

// Stats describes the work a SimilarPairs run performed, phase by
// phase. Durations are wall-clock for this process (the paper reports
// CPU time; they coincide for serial runs, and wall-clock is the
// quantity Workers > 1 improves).
type Stats struct {
	Algorithm  Algorithm
	Candidates int // pairs entering verification
	Verified   int // pairs surviving verification

	SignatureTime time.Duration // phase 1
	CandidateTime time.Duration // phase 2
	VerifyTime    time.Duration // phase 3

	// SignatureWorkers, CandidateWorkers and VerifyWorkers record the
	// worker budget each phase ran under (1 = serial; phases a scheme
	// does not parallelise, or that a scheme skips, report 1).
	SignatureWorkers int
	CandidateWorkers int
	VerifyWorkers    int

	// DataPasses counts sequential scans of the data (the I/O currency
	// of the disk-resident setting: phase 1 costs one pass, phase 3
	// another; a-priori costs one per level). RowsScanned totals rows
	// delivered across all passes.
	DataPasses  int
	RowsScanned int64

	// SignatureCells is the number of sketch entries built in phase 1
	// (k·m for MH/M-LSH, Σ|sketch| for K-MH; 0 for schemes without a
	// signature phase) and SignatureBytes their memory footprint.
	SignatureCells int64
	SignatureBytes int64
	// CandidateIncrements counts phase-2 counter increments (the
	// paper's candidate-generation work measure) for the counting
	// schemes; BucketPairs counts bucket-collision pairs inspected by
	// the LSH schemes before dedup.
	CandidateIncrements int64
	BucketPairs         int64
	// VerifyTouches counts phase-3 counter updates; FalsePositives is
	// Candidates - Verified, the candidates the exact pass pruned
	// (0 when SkipVerify).
	VerifyTouches  int64
	FalsePositives int

	// BytesRead totals file bytes read across all passes (0 for
	// in-memory sources). ShardsStreamed counts the bounded row blocks
	// the streamed fan-outs broadcast to workers (0 when every pass
	// scanned rows directly).
	BytesRead      int64
	ShardsStreamed int64
	// SpillRuns and SpillBytes report the sorted runs the budgeted
	// verification pass wrote to disk (both 0 when the counter table
	// stayed within Config.MemoryBudget, or no budget was set).
	SpillRuns  int64
	SpillBytes int64
	// CompressedBytesRead is the share of BytesRead delivered by
	// compressed-format sources (".carows" files), and
	// SpillBytesCompressed the share of SpillBytes written under the
	// compressed spill codec (both 0 when nothing compressed was moved).
	// CodecRatio is the run's overall compression ratio — the bytes the
	// equivalent uncompressed encodings would have moved, divided by the
	// compressed bytes actually moved — or 0 when no compressed bytes
	// moved at all.
	CompressedBytesRead  int64
	SpillBytesCompressed int64
	CodecRatio           float64
	// IORetries counts transient IO errors the file-backed source
	// retried away during this run, and FaultsInjected the faults a
	// fault-injecting FS delivered into its reads (both 0 for healthy
	// disks and in-memory sources).
	IORetries      int64
	FaultsInjected int64
	// PackedWords counts the uint64 AND/OR word operations of the
	// packed verification kernel and PackedBatches the candidate
	// batches its bit-column arena was rebuilt for (both 0 when
	// verification ran a scalar kernel).
	PackedWords   int64
	PackedBatches int64
	// PairsSampled counts the in-row pair draws the BPS sampler
	// inspected, SampleAccepts the draws its biased acceptance test
	// kept, and SampleDups the accepted draws for pairs that had
	// already been sampled (all 0 for the other schemes).
	PairsSampled  int64
	SampleAccepts int64
	SampleDups    int64
}

// Total returns the end-to-end running time.
func (s Stats) Total() time.Duration {
	return s.SignatureTime + s.CandidateTime + s.VerifyTime
}

// Result is the output of SimilarPairs: pairs sorted by decreasing
// similarity.
type Result struct {
	Pairs []Pair
	Stats Stats
}

// SimilarPairs finds all column pairs with similarity >= cfg.Threshold
// using the configured algorithm. All algorithms are exact after
// verification except for false negatives: pairs the signature phase
// missed (controlled by K, Delta, R, L).
func SimilarPairs(d *Dataset, cfg Config) (*Result, error) {
	return similarPairs(d.m.Stream(), func() (*matrix.Matrix, error) { return d.m, nil }, cfg)
}

// similarPairs is the algorithm core. src provides one-pass streaming
// access (one Scan per phase, mirroring the disk-resident setting);
// materialize supplies the full column-major matrix for the algorithms
// that genuinely need it (HammingLSH's fold ladder).
func similarPairs(rawSrc matrix.RowSource, materialize func() (*matrix.Matrix, error), cfg Config) (*Result, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	// Accounting probes read the unwrapped source; the context wrapper
	// deliberately hides them (and every scan below goes through it, so
	// cancellation aborts each phase at its next row).
	probe := rawSrc
	if cfg.Window > 0 {
		// The tail wrapper also hides the full-data fast-path interfaces
		// (ColumnLister, ConcurrentSource), so every phase below falls to
		// the streamed scans and sees only the window's rows.
		if from := rawSrc.NumRows() - cfg.Window; from > 0 {
			rawSrc = &matrix.TailSource{Src: rawSrc, From: from}
		}
	}
	if cfg.Context != nil {
		rawSrc = matrix.WithContext(cfg.Context, rawSrc)
	}
	counting := &matrix.CountingSource{Src: rawSrc}
	src := matrix.RowSource(counting)
	inner := obs.NewCollector()
	rec := obs.Tee(inner, cfg.Recorder)
	prog := newProgressSink(cfg.Progress)
	st := Stats{Algorithm: cfg.Algorithm, SignatureWorkers: 1, CandidateWorkers: 1, VerifyWorkers: 1}
	phase := func(name string) func() time.Duration { return phaseSpan(rec, name) }
	// File-backed sources expose cumulative IO counts; the deltas across
	// the run are this run's I/O volume, retries and injected faults.
	byteSrc, _ := probe.(matrix.ByteCounter)
	var bytesAtStart int64
	if byteSrc != nil {
		bytesAtStart = byteSrc.BytesRead()
	}
	retrySrc, _ := probe.(matrix.RetryCounter)
	var retriesAtStart int64
	if retrySrc != nil {
		retriesAtStart = retrySrc.IORetries()
	}
	faultSrc, _ := probe.(matrix.FaultCounter)
	var faultsAtStart int64
	if faultSrc != nil {
		faultsAtStart = faultSrc.FaultsInjected()
	}
	codecSrc, _ := probe.(matrix.CodecCounter)
	var compressedAtStart, logicalAtStart int64
	if codecSrc != nil {
		compressedAtStart = codecSrc.CompressedBytesRead()
		logicalAtStart = codecSrc.LogicalBytesRead()
	}
	// Raw-equivalent spill volume, priced by the budgeted pass; feeds
	// the codec ratio alongside the file-read deltas.
	var spillRawBytes, spillCompressedBytes int64
	finish := func(res *Result) *Result {
		res.Stats.DataPasses = counting.Passes
		res.Stats.RowsScanned = counting.Rows
		rec.Add(obs.CounterDataPasses, int64(counting.Passes))
		rec.Add(obs.CounterRowsScanned, counting.Rows)
		rec.Add(obs.CounterCandidates, int64(res.Stats.Candidates))
		rec.Add(obs.CounterPairsVerified, int64(res.Stats.Verified))
		rec.Add(obs.CounterFalsePositives, int64(res.Stats.FalsePositives))
		if byteSrc != nil {
			if n := byteSrc.BytesRead() - bytesAtStart; n > 0 {
				rec.Add(obs.CounterBytesRead, n)
			}
		}
		if retrySrc != nil {
			addNonzero(rec, obs.CounterIORetries, retrySrc.IORetries()-retriesAtStart)
		}
		if faultSrc != nil {
			addNonzero(rec, obs.CounterFaultsInjected, faultSrc.FaultsInjected()-faultsAtStart)
		}
		var compressedRead, logicalRead int64
		if codecSrc != nil {
			compressedRead = codecSrc.CompressedBytesRead() - compressedAtStart
			logicalRead = codecSrc.LogicalBytesRead() - logicalAtStart
			addNonzero(rec, obs.CounterCompressedBytesRead, compressedRead)
		}
		if moved := compressedRead + spillCompressedBytes; moved > 0 {
			ratio := float64(logicalRead+spillRawBytes) / float64(moved)
			rec.SetGauge(obs.GaugeCodecRatio, int64(ratio*100))
		}
		res.Stats.fillFrom(inner)
		return res
	}
	var cand []pairs.Scored

	switch cfg.Algorithm {
	case BruteForce:
		tick := prog.enter(PhaseCandidates)
		end := phase(PhaseCandidates)
		bsrc := src
		if tick != nil {
			bsrc = &matrix.ProgressSource{Src: bsrc, Tick: tick}
		}
		exact, err := verify.AllPairsSource(bsrc, cfg.Threshold)
		if err != nil {
			return nil, err
		}
		st.CandidateTime = end()
		prog.finish(PhaseCandidates)
		st.Candidates = len(exact)
		st.Verified = len(exact)
		return finish(&Result{Pairs: toPairs(exact, true), Stats: st}), nil

	case MinHash:
		tick := prog.enter(PhaseSignatures)
		end := phase(PhaseSignatures)
		sig, sigShards, err := computeMH(src, rawSrc, materialize, cfg, tick)
		if err != nil {
			return nil, err
		}
		st.SignatureTime = end()
		st.SignatureWorkers = cfg.Workers
		rec.SetGauge(obs.GaugeSignatureWorkers, int64(cfg.Workers))
		rec.Add(obs.CounterSignatureCells, int64(sig.K)*int64(sig.M))
		addNonzero(rec, obs.CounterShards, sigShards)
		rec.SetGauge(obs.GaugeSignatureBytes, int64(len(sig.Vals))*8)
		prog.finish(PhaseSignatures)
		tick = prog.enter(PhaseCandidates)
		end = phase(PhaseCandidates)
		cutoff := (1 - cfg.Delta) * cfg.Threshold
		var cst candidate.Stats
		cand, cst, err = candidate.RowSortMHParallelProgress(cfg.context(), sig, cutoff, cfg.Workers, tick)
		if err != nil {
			return nil, err
		}
		st.CandidateTime = end()
		st.CandidateWorkers = cfg.Workers
		rec.SetGauge(obs.GaugeCandidateWorkers, int64(cfg.Workers))
		rec.Add(obs.CounterIncrements, cst.Increments)
		prog.finish(PhaseCandidates)

	case KMinHash:
		tick := prog.enter(PhaseSignatures)
		end := phase(PhaseSignatures)
		sk, sigShards, err := computeKMH(src, rawSrc, materialize, cfg, tick)
		if err != nil {
			return nil, err
		}
		st.SignatureTime = end()
		st.SignatureWorkers = cfg.Workers
		rec.SetGauge(obs.GaugeSignatureWorkers, int64(cfg.Workers))
		addNonzero(rec, obs.CounterShards, sigShards)
		var cells int64
		for _, s := range sk.Sigs {
			cells += int64(len(s))
		}
		rec.Add(obs.CounterSignatureCells, cells)
		rec.SetGauge(obs.GaugeSignatureBytes, cells*8)
		prog.finish(PhaseSignatures)
		tick = prog.enter(PhaseCandidates)
		end = phase(PhaseCandidates)
		cutoff := (1 - cfg.Delta) * cfg.Threshold
		opt := candidate.KMHOptions{
			BiasedCutoff:   cutoff / 2, // biased estimator under-counts; be generous
			UnbiasedCutoff: cutoff,
		}
		var cst candidate.Stats
		cand, cst, err = candidate.HashCountKMHParallelProgress(cfg.context(), sk, opt, cfg.Workers, tick)
		if err != nil {
			return nil, err
		}
		st.CandidateTime = end()
		st.CandidateWorkers = cfg.Workers
		rec.SetGauge(obs.GaugeCandidateWorkers, int64(cfg.Workers))
		rec.Add(obs.CounterIncrements, cst.Increments)
		prog.finish(PhaseCandidates)

	case MinLSH:
		tick := prog.enter(PhaseSignatures)
		end := phase(PhaseSignatures)
		exactBands := cfg.K >= cfg.R*cfg.L
		sig, sigShards, err := computeMH(src, rawSrc, materialize, cfg, tick)
		if err != nil {
			return nil, err
		}
		st.SignatureTime = end()
		st.SignatureWorkers = cfg.Workers
		rec.SetGauge(obs.GaugeSignatureWorkers, int64(cfg.Workers))
		rec.Add(obs.CounterSignatureCells, int64(sig.K)*int64(sig.M))
		addNonzero(rec, obs.CounterShards, sigShards)
		rec.SetGauge(obs.GaugeSignatureBytes, int64(len(sig.Vals))*8)
		prog.finish(PhaseSignatures)
		tick = prog.enter(PhaseCandidates)
		end = phase(PhaseCandidates)
		var set *pairs.Set
		var lst lsh.Stats
		if exactBands {
			set, lst, err = lsh.CandidatesParallelProgress(cfg.context(), sig, cfg.R, cfg.L, cfg.Workers, tick)
		} else {
			set, lst, err = lsh.SampledCandidatesParallelProgress(cfg.context(), sig, cfg.R, cfg.L, cfg.Seed+1, cfg.Workers, tick)
		}
		if err != nil {
			return nil, err
		}
		for _, p := range set.Slice() {
			cand = append(cand, pairs.Scored{Pair: p})
		}
		st.CandidateTime = end()
		st.CandidateWorkers = cfg.Workers
		rec.SetGauge(obs.GaugeCandidateWorkers, int64(cfg.Workers))
		rec.Add(obs.CounterBucketPairs, lst.BucketPairs)
		prog.finish(PhaseCandidates)

	case HammingLSH:
		prog.enter(PhaseCandidates)
		end := phase(PhaseCandidates)
		full, err := materialize()
		if err != nil {
			return nil, err
		}
		set, hst, err := hamminglsh.Candidates(full, hamminglsh.Options{
			R: cfg.R, L: cfg.L, T: cfg.T, Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		for _, p := range set.Slice() {
			cand = append(cand, pairs.Scored{Pair: p})
		}
		st.CandidateTime = end()
		rec.Add(obs.CounterBucketPairs, hst.BucketPairs)
		prog.finish(PhaseCandidates)

	case Apriori:
		tick := prog.enter(PhaseCandidates)
		end := phase(PhaseCandidates)
		asrc := src
		if tick != nil {
			// A-priori scans once per level; ticks from later passes
			// restart at zero and the sink drops them, so progress
			// tracks the first pass and completes at finish.
			asrc = &matrix.ProgressSource{Src: asrc, Tick: tick}
		}
		res, err := apriori.Mine(asrc, apriori.Options{
			MinSupport:   cfg.MinSupport,
			MaxLevel:     2,
			MemoryBudget: cfg.AprioriMemoryBudget,
		})
		if err != nil {
			return nil, err
		}
		exact, err := res.SimilarPairs(cfg.Threshold)
		if err != nil {
			return nil, err
		}
		st.CandidateTime = end()
		prog.finish(PhaseCandidates)
		st.Candidates = len(exact)
		st.Verified = len(exact)
		return finish(&Result{Pairs: toPairs(exact, true), Stats: st}), nil

	case BPS:
		// Phase 1: column supports, the sampler's bias input. In-memory
		// column-major sources yield them without a scan; account one
		// I/O-equivalent pass by hand, as the verify fast paths do.
		tick := prog.enter(PhaseSignatures)
		end := phase(PhaseSignatures)
		var sup []int64
		if ls, ok := rawSrc.(matrix.ColumnLister); ok {
			counting.Passes++
			counting.Rows += int64(rawSrc.NumRows())
			sup = bps.SupportsFromLister(ls)
		} else {
			ssrc := src
			if tick != nil {
				ssrc = &matrix.ProgressSource{Src: ssrc, Tick: tick}
			}
			var err error
			sup, err = bps.Supports(ssrc)
			if err != nil {
				return nil, err
			}
		}
		st.SignatureTime = end()
		// The supports array is this scheme's whole resident "signature"
		// state: one cell (8 bytes) per column.
		rec.Add(obs.CounterSignatureCells, int64(len(sup)))
		rec.SetGauge(obs.GaugeSignatureBytes, int64(len(sup))*8)
		prog.finish(PhaseSignatures)
		tick = prog.enter(PhaseCandidates)
		end = phase(PhaseCandidates)
		bsrc := src
		if tick != nil {
			bsrc = &matrix.ProgressSource{Src: bsrc, Tick: tick}
		}
		var bst bps.Stats
		var err error
		cand, bst, err = bps.Sample(bsrc, sup, bps.Options{
			Threshold: cfg.Threshold,
			Delta:     cfg.Delta,
			Budget:    cfg.SampleBudget,
			Seed:      cfg.Seed,
			Workers:   cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		st.CandidateTime = end()
		st.CandidateWorkers = cfg.Workers
		rec.SetGauge(obs.GaugeCandidateWorkers, int64(cfg.Workers))
		rec.Add(obs.CounterPairsSampled, bst.Inspected)
		rec.Add(obs.CounterSampleAccepts, bst.Accepts)
		addNonzero(rec, obs.CounterSampleDups, bst.Dups)
		addNonzero(rec, obs.CounterShards, bst.Shards)
		prog.finish(PhaseCandidates)

	default:
		return nil, fmt.Errorf("assocmine: unknown algorithm %d", int(cfg.Algorithm))
	}

	st.Candidates = len(cand)
	if cfg.SkipVerify {
		pairs.SortScored(cand)
		return finish(&Result{Pairs: toPairs(cand, false), Stats: st}), nil
	}
	tick := prog.enter(PhaseVerify)
	end := phase(PhaseVerify)
	// In-memory sources let every verify worker run its own scan, which
	// beats fanning the counted stream out; account the pass by hand so
	// DataPasses/RowsScanned match the serial run. A memory budget
	// forces the single-scan budgeted pass instead: its bounded table
	// plus spills is the point, and concurrent scans would multiply it.
	vsrc := src
	var verified []pairs.Scored
	var vst verify.Stats
	var err error
	// Kernel selection consults only (n, m, cand, budget) — never the
	// source type — so the in-memory and streamed runs of one job pick
	// the same kernel and stay bit-identical.
	usePacked := cfg.VerifyKernel == KernelPacked ||
		(cfg.VerifyKernel == KernelAuto && verify.AutoPack(rawSrc.NumRows(), rawSrc.NumCols(), cand, cfg.MemoryBudget))
	if usePacked {
		popt := verify.PackedOptions{
			Budget:  verify.Budget{Bytes: cfg.MemoryBudget, Dir: cfg.SpillDir},
			Workers: cfg.Workers,
			Context: cfg.Context,
			Tick:    tick,
		}
		// In-memory sources pack straight from their column lists (no
		// row scan) or via concurrent per-worker scans; account one
		// I/O-equivalent pass by hand, as the scalar fast path does.
		// Everything else scans through the counting wrapper. The packed
		// pass ticks candidate pairs itself, so src is never wrapped in
		// a row-granularity ProgressSource.
		_, lister := rawSrc.(matrix.ColumnLister)
		cs, okc := rawSrc.(matrix.ConcurrentSource)
		if cfg.MemoryBudget <= 0 && len(cand) > 0 && (lister || (okc && cs.ConcurrentScan() && cfg.Workers > 1)) {
			counting.Passes++
			counting.Rows += int64(rawSrc.NumRows())
			verified, vst, err = verify.ExactPacked(rawSrc, cand, cfg.Threshold, popt)
		} else {
			verified, vst, err = verify.ExactPacked(src, cand, cfg.Threshold, popt)
		}
	} else if cs, ok := rawSrc.(matrix.ConcurrentSource); ok && cs.ConcurrentScan() && cfg.Workers > 1 && len(cand) > 0 && cfg.MemoryBudget <= 0 {
		counting.Passes++
		counting.Rows += int64(rawSrc.NumRows())
		verified, vst, err = verify.ExactParallelProgress(rawSrc, cand, cfg.Threshold, cfg.Workers, tick)
	} else {
		if tick != nil {
			vsrc = &matrix.ProgressSource{Src: vsrc, Tick: tick}
		}
		if cfg.MemoryBudget > 0 {
			verified, vst, err = verify.ExactBudgeted(vsrc, cand, cfg.Threshold, verify.Budget{Bytes: cfg.MemoryBudget, Dir: cfg.SpillDir}, cfg.Workers, nil)
		} else {
			verified, vst, err = verify.ExactParallel(vsrc, cand, cfg.Threshold, cfg.Workers)
		}
	}
	if err != nil {
		return nil, err
	}
	st.VerifyTime = end()
	st.VerifyWorkers = cfg.Workers
	rec.SetGauge(obs.GaugeVerifyWorkers, int64(cfg.Workers))
	rec.Add(obs.CounterVerifyTouches, vst.Touches)
	addNonzero(rec, obs.CounterShards, vst.Shards)
	addNonzero(rec, obs.CounterSpillRuns, vst.SpillRuns)
	addNonzero(rec, obs.CounterSpillBytes, vst.SpillBytes)
	addNonzero(rec, obs.CounterSpillBytesCompressed, vst.SpillBytesCompressed)
	spillRawBytes, spillCompressedBytes = vst.SpillBytesRaw, vst.SpillBytesCompressed
	addNonzero(rec, obs.CounterPackedWords, vst.PackedWords)
	addNonzero(rec, obs.CounterPackedBatches, vst.PackedBatches)
	prog.finish(PhaseVerify)
	st.Verified = len(verified)
	st.FalsePositives = len(cand) - len(verified)
	pairs.SortScored(verified)
	return finish(&Result{Pairs: toPairs(verified, true), Stats: st}), nil
}

// addNonzero records n only when it is nonzero, so runs that never
// stream or spill keep those counters out of their metrics entirely.
func addNonzero(rec obs.Recorder, counter string, n int64) {
	if n != 0 {
		rec.Add(counter, n)
	}
}

// phaseSpan opens a recorder span for one pipeline phase; the returned
// func closes it and reports the duration, which is the exact value the
// corresponding Stats field records.
func phaseSpan(rec obs.Recorder, name string) func() time.Duration {
	rec.PhaseStart(name)
	start := time.Now()
	return func() time.Duration {
		d := time.Since(start)
		rec.PhaseEnd(name, d)
		return d
	}
}

// fillFrom copies the counters the run recorded into the extended Stats
// fields, keeping Stats and any attached Recorder in exact agreement.
func (s *Stats) fillFrom(c *Collector) {
	s.SignatureCells = c.Counter(CounterSignatureCells)
	s.SignatureBytes = c.Gauge(GaugeSignatureBytes)
	s.CandidateIncrements = c.Counter(CounterIncrements)
	s.BucketPairs = c.Counter(CounterBucketPairs)
	s.VerifyTouches = c.Counter(CounterVerifyTouches)
	s.BytesRead = c.Counter(CounterBytesRead)
	s.ShardsStreamed = c.Counter(CounterShards)
	s.SpillRuns = c.Counter(CounterSpillRuns)
	s.SpillBytes = c.Counter(CounterSpillBytes)
	s.CompressedBytesRead = c.Counter(CounterCompressedBytesRead)
	s.SpillBytesCompressed = c.Counter(CounterSpillBytesCompressed)
	s.CodecRatio = float64(c.Gauge(GaugeCodecRatio)) / 100
	s.IORetries = c.Counter(CounterIORetries)
	s.FaultsInjected = c.Counter(CounterFaultsInjected)
	s.PackedWords = c.Counter(CounterPackedWords)
	s.PackedBatches = c.Counter(CounterPackedBatches)
	s.PairsSampled = c.Counter(CounterPairsSampled)
	s.SampleAccepts = c.Counter(CounterSampleAccepts)
	s.SampleDups = c.Counter(CounterSampleDups)
}

// computeMH runs the MH signature pass, parallel when cfg.Workers asks
// for it. cfg.Workers is already normalised by setDefaults, so <= 1
// means serial. In-memory sources (rawSrc supports concurrent scans)
// parallelise over the materialised column-major matrix; streaming
// sources fold rows incrementally from one fanned-out sequential pass,
// never materialising — the returned count is the row shards that pass
// broadcast (0 otherwise). tick, when non-nil, receives row progress
// (serial, streamed) or column progress (materialised parallel).
func computeMH(src, rawSrc matrix.RowSource, materialize func() (*matrix.Matrix, error), cfg Config, tick obs.Tick) (*minhash.Signatures, int64, error) {
	if cfg.Workers <= 1 {
		if tick != nil {
			src = &matrix.ProgressSource{Src: src, Tick: tick}
		}
		sig, err := minhash.Compute(src, cfg.K, cfg.Seed)
		return sig, 0, err
	}
	if cs, ok := rawSrc.(matrix.ConcurrentSource); ok && cs.ConcurrentScan() {
		m, err := materialize()
		if err != nil {
			return nil, 0, err
		}
		sig, err := minhash.ComputeParallelProgress(m, cfg.K, cfg.Seed, cfg.Workers, tick)
		return sig, 0, err
	}
	if tick != nil {
		src = &matrix.ProgressSource{Src: src, Tick: tick}
	}
	return minhash.ComputeStream(src, cfg.K, cfg.Seed, cfg.Workers)
}

// computeKMH is computeMH for bottom-k sketches; the materialised
// parallel pass has no fine-grained hooks, so progress there completes
// in one step.
func computeKMH(src, rawSrc matrix.RowSource, materialize func() (*matrix.Matrix, error), cfg Config, tick obs.Tick) (*kminhash.Sketches, int64, error) {
	if cfg.Workers <= 1 {
		if tick != nil {
			src = &matrix.ProgressSource{Src: src, Tick: tick}
		}
		sk, err := kminhash.Compute(src, cfg.K, cfg.Seed)
		return sk, 0, err
	}
	if cs, ok := rawSrc.(matrix.ConcurrentSource); ok && cs.ConcurrentScan() {
		m, err := materialize()
		if err != nil {
			return nil, 0, err
		}
		sk, err := kminhash.ComputeParallel(m, cfg.K, cfg.Seed, cfg.Workers)
		return sk, 0, err
	}
	if tick != nil {
		src = &matrix.ProgressSource{Src: src, Tick: tick}
	}
	return kminhash.ComputeStream(src, cfg.K, cfg.Seed, cfg.Workers)
}

func toPairs(ps []pairs.Scored, verified bool) []Pair {
	out := make([]Pair, len(ps))
	for i, p := range ps {
		out[i] = Pair{I: int(p.I), J: int(p.J), Estimate: p.Estimate}
		if verified {
			out[i].Similarity = p.Exact
		}
	}
	return out
}
