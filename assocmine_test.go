package assocmine

import (
	"errors"
	"math"
	"path/filepath"
	"testing"

	"assocmine/internal/apriori"
)

func plantedDataset(t *testing.T) (*Dataset, []PlantedPair) {
	t.Helper()
	d, planted, err := GenerateSynthetic(SyntheticOptions{
		Rows: 3000, Cols: 200, PairsPerRange: 4, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, planted
}

func TestNewDatasetFromRows(t *testing.T) {
	d, err := NewDatasetFromRows(3, [][]int{{0, 1}, {1}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if d.NumRows() != 3 || d.NumCols() != 3 || d.Ones() != 5 {
		t.Fatalf("dims %dx%d ones %d", d.NumRows(), d.NumCols(), d.Ones())
	}
	if _, err := NewDatasetFromRows(2, [][]int{{5}}); err == nil {
		t.Error("out-of-range column accepted")
	}
}

func TestNewDatasetFromColumns(t *testing.T) {
	d, err := NewDatasetFromColumns(4, [][]int{{0, 1}, {0, 1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if got := d.Similarity(0, 1); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("Similarity(0,1) = %v", got)
	}
	if got := d.Confidence(0, 1); got != 1 {
		t.Errorf("Confidence(0,1) = %v", got)
	}
	if d.ColumnSize(1) != 3 || math.Abs(d.Density(1)-0.75) > 1e-12 {
		t.Error("ColumnSize/Density wrong")
	}
	if _, err := NewDatasetFromColumns(2, [][]int{{1, 0}}); err == nil {
		t.Error("unsorted column accepted")
	}
}

func TestDatasetSaveLoad(t *testing.T) {
	d, _ := NewDatasetFromRows(3, [][]int{{0, 1}, {1}, {2}})
	for _, name := range []string{"d.txt", "d.amx"} {
		path := filepath.Join(t.TempDir(), name)
		if err := d.Save(path); err != nil {
			t.Fatal(err)
		}
		got, err := LoadDataset(path)
		if err != nil {
			t.Fatal(err)
		}
		if got.Ones() != d.Ones() || got.NumRows() != d.NumRows() {
			t.Errorf("%s round trip mismatch", name)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	d, _ := NewDatasetFromRows(2, [][]int{{0}, {1}})
	bad := []Config{
		{Threshold: 0},
		{Threshold: 1.5},
		{Threshold: 0.5, K: -1},
		{Threshold: 0.5, Delta: 1},
		{Threshold: 0.5, R: -2},
		{Threshold: 0.5, L: -1},
		{Threshold: 0.5, Algorithm: MinLSH, K: 3, R: 5},
		{Threshold: 0.5, Algorithm: Apriori}, // missing MinSupport
		{Threshold: 0.5, Algorithm: Algorithm(99)},
	}
	for i, cfg := range bad {
		if _, err := SimilarPairs(d, cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestAlgorithmString(t *testing.T) {
	want := map[Algorithm]string{
		BruteForce: "BruteForce", MinHash: "MH", KMinHash: "K-MH",
		MinLSH: "M-LSH", HammingLSH: "H-LSH", Apriori: "A-priori",
	}
	for a, s := range want {
		if a.String() != s {
			t.Errorf("%d.String() = %q, want %q", int(a), a.String(), s)
		}
	}
	if Algorithm(42).String() == "" {
		t.Error("unknown algorithm has empty String")
	}
}

// TestAllAlgorithmsRecoverPlantedPairs is the headline integration
// test: every scheme must recover the high-similarity planted pairs,
// and verification must leave no false positives.
func TestAllAlgorithmsRecoverPlantedPairs(t *testing.T) {
	d, planted := plantedDataset(t)
	const threshold = 0.7

	truth, err := SimilarPairs(d, Config{Algorithm: BruteForce, Threshold: threshold})
	if err != nil {
		t.Fatal(err)
	}
	truthSet := map[[2]int]float64{}
	for _, p := range truth.Pairs {
		truthSet[[2]int{p.I, p.J}] = p.Similarity
	}
	// Sanity: the planted pairs above threshold appear in truth.
	expected := 0
	for _, p := range planted {
		if d.Similarity(p.I, p.J) >= threshold {
			expected++
			if _, ok := truthSet[[2]int{p.I, p.J}]; !ok {
				t.Fatalf("ground truth missing planted pair %+v", p)
			}
		}
	}
	if expected == 0 {
		t.Fatal("fixture has no planted pairs above threshold")
	}

	configs := []Config{
		{Algorithm: MinHash, Threshold: threshold, K: 100, Seed: 5},
		{Algorithm: KMinHash, Threshold: threshold, K: 100, Seed: 5},
		{Algorithm: MinLSH, Threshold: threshold, K: 100, R: 5, L: 20, Seed: 5},
		{Algorithm: HammingLSH, Threshold: threshold, R: 8, L: 15, Seed: 5},
	}
	for _, cfg := range configs {
		res, err := SimilarPairs(d, cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg.Algorithm, err)
		}
		found := map[[2]int]bool{}
		for _, p := range res.Pairs {
			found[[2]int{p.I, p.J}] = true
			// No false positives after verification.
			if want, ok := truthSet[[2]int{p.I, p.J}]; !ok {
				t.Errorf("%v: false positive (%d,%d) sim %v", cfg.Algorithm, p.I, p.J, p.Similarity)
			} else if math.Abs(p.Similarity-want) > 1e-12 {
				t.Errorf("%v: similarity mismatch on (%d,%d)", cfg.Algorithm, p.I, p.J)
			}
		}
		// Recall on comfortably-above-threshold planted pairs.
		for _, p := range planted {
			if d.Similarity(p.I, p.J) >= threshold+0.1 && !found[[2]int{p.I, p.J}] {
				t.Errorf("%v: missed planted pair (%d,%d) sim %v",
					cfg.Algorithm, p.I, p.J, d.Similarity(p.I, p.J))
			}
		}
		if res.Stats.Candidates < res.Stats.Verified {
			t.Errorf("%v: stats inconsistent: %+v", cfg.Algorithm, res.Stats)
		}
	}
}

func TestPairsSortedBySimilarity(t *testing.T) {
	d, _ := plantedDataset(t)
	res, err := SimilarPairs(d, Config{Algorithm: MinHash, Threshold: 0.4, K: 80, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Pairs); i++ {
		if res.Pairs[i].Similarity > res.Pairs[i-1].Similarity {
			t.Fatal("pairs not sorted by decreasing similarity")
		}
	}
}

func TestSkipVerify(t *testing.T) {
	d, _ := plantedDataset(t)
	res, err := SimilarPairs(d, Config{Algorithm: MinLSH, Threshold: 0.7, K: 50, R: 5, L: 10, Seed: 2, SkipVerify: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.VerifyTime != 0 {
		t.Error("SkipVerify ran verification")
	}
	for _, p := range res.Pairs {
		if p.Similarity != 0 {
			t.Error("SkipVerify filled Similarity")
		}
	}
}

func TestAprioriPath(t *testing.T) {
	// Apriori with adequate support succeeds and matches brute force
	// restricted to frequent pairs.
	d, err := NewDatasetFromRows(6, [][]int{
		{0, 1}, {0, 1}, {0, 1}, {0, 1}, {2}, {2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimilarPairs(d, Config{Algorithm: Apriori, Threshold: 0.9, MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 1 || res.Pairs[0].I != 0 || res.Pairs[0].J != 1 {
		t.Fatalf("apriori pairs = %+v", res.Pairs)
	}
	if res.Pairs[0].Similarity != 1 {
		t.Errorf("similarity = %v", res.Pairs[0].Similarity)
	}
}

func TestAprioriMemoryBudgetSurfaces(t *testing.T) {
	d, _ := plantedDataset(t)
	_, err := SimilarPairs(d, Config{
		Algorithm: Apriori, Threshold: 0.5, MinSupport: 0.001, AprioriMemoryBudget: 128,
	})
	if !errors.Is(err, apriori.ErrMemoryBudget) {
		t.Errorf("err = %v, want ErrMemoryBudget", err)
	}
}

func TestDeterministicRuns(t *testing.T) {
	d, _ := plantedDataset(t)
	cfg := Config{Algorithm: MinLSH, Threshold: 0.6, K: 60, R: 5, L: 12, Seed: 77}
	a, err := SimilarPairs(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimilarPairs(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Pairs) != len(b.Pairs) {
		t.Fatalf("same config, different pair counts: %d vs %d", len(a.Pairs), len(b.Pairs))
	}
	for i := range a.Pairs {
		if a.Pairs[i] != b.Pairs[i] {
			t.Fatalf("pair %d differs", i)
		}
	}
}

func TestMineRules(t *testing.T) {
	// Rare pair with near-1 confidence in both directions.
	rows := make([][]int, 2000)
	for r := range rows {
		switch {
		case r%100 == 0:
			rows[r] = []int{0, 1}
		case r%3 == 0:
			rows[r] = []int{2}
		case r%7 == 0:
			rows[r] = []int{3, 2}
		default:
			rows[r] = nil
		}
	}
	d, err := NewDatasetFromRows(4, rows)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineRules(d, RuleConfig{MinConfidence: 0.9, K: 150, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var found01 bool
	for _, r := range res.Rules {
		if r.From == 0 && r.To == 1 {
			found01 = true
			if r.Confidence != 1 {
				t.Errorf("conf(0=>1) = %v, want 1", r.Confidence)
			}
		}
		if r.Confidence < 0.9 {
			t.Errorf("rule %+v below threshold", r)
		}
	}
	if !found01 {
		t.Error("rule 0 => 1 not mined")
	}
	// 3 => 2 should also surface (every row with 3 has 2).
	var found32 bool
	for _, r := range res.Rules {
		if r.From == 3 && r.To == 2 {
			found32 = true
		}
	}
	if !found32 {
		t.Error("rule 3 => 2 not mined")
	}
}

func TestMineRulesValidation(t *testing.T) {
	d, _ := NewDatasetFromRows(2, [][]int{{0}, {1}})
	for _, cfg := range []RuleConfig{{MinConfidence: 0}, {MinConfidence: 2}, {MinConfidence: 0.5, K: -1}, {MinConfidence: 0.5, Delta: 1}} {
		if _, err := MineRules(d, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestOrAndRules(t *testing.T) {
	rows := make([][]int, 3000)
	for r := range rows {
		switch {
		case r%40 == 0:
			rows[r] = []int{0, 1} // half of c0 with c1
		case r%40 == 1:
			rows[r] = []int{0, 2} // other half with c2
		case r%17 == 0:
			rows[r] = []int{3}
		}
	}
	d, err := NewDatasetFromRows(4, rows)
	if err != nil {
		t.Fatal(err)
	}
	ors, err := OrRules(d, map[int][]int{0: {1, 2, 3}}, 0.7, 200, 9)
	if err != nil {
		t.Fatal(err)
	}
	var foundOr bool
	for _, r := range ors {
		if r.From == 0 && r.To == [2]int{1, 2} {
			foundOr = true
		}
	}
	if !foundOr {
		t.Errorf("c0 => c1 ∨ c2 not found: %+v", ors)
	}
	ands, err := AndRules([]Rule{
		{From: 0, To: 1, Confidence: 0.95},
		{From: 0, To: 2, Confidence: 0.93},
	}, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if len(ands) != 1 || ands[0].To != [2]int{1, 2} {
		t.Fatalf("AndRules = %+v", ands)
	}
}

func TestGenerateWrappers(t *testing.T) {
	if _, _, err := GenerateSynthetic(SyntheticOptions{}); err == nil {
		t.Error("empty synthetic options accepted")
	}
	w, err := GenerateWebLog(WebLogOptions{Clients: 300, URLs: 120, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if w.Data.NumRows() != 300 || len(w.Groups) != len(w.Parents) {
		t.Error("weblog wrapper shape wrong")
	}
	n, err := GenerateNews(NewsOptions{Docs: 300, Vocab: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Words) != n.Data.NumCols() {
		t.Error("news wrapper shape wrong")
	}
	if n.Word(n.PlantedPairs[0][0]) == "" {
		t.Error("Word accessor broken")
	}
}
