package assocmine_test

import (
	"sort"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

// sortAllBottomK is the naive bottom-k baseline for the ablation
// benchmark: hash every row of every column, sort the full list, keep
// the first k — no bounded heap, no early rejection.
func sortAllBottomK(m *matrix.Matrix, k int, seed uint64) [][]uint64 {
	h := hashing.NewPermHash(seed)
	out := make([][]uint64, m.NumCols())
	for c := 0; c < m.NumCols(); c++ {
		col := m.Column(c)
		vals := make([]uint64, len(col))
		for i, r := range col {
			vals[i] = h.Row(int(r))
		}
		sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
		if len(vals) > k {
			vals = vals[:k]
		}
		out[c] = vals
	}
	return out
}
