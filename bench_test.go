// Benchmarks regenerating the paper's tables and figures, one bench per
// experiment, plus ablations for the design choices DESIGN.md calls
// out. Run with:
//
//	go test -bench=. -benchmem
//
// The workloads are the substitute datasets (see DESIGN.md §5); sizes
// are chosen so the full suite completes in minutes. Compare ratios
// across benchmarks, not absolute times.
package assocmine_test

import (
	"sync"
	"testing"

	"assocmine"
	"assocmine/internal/apriori"
	"assocmine/internal/candidate"
	"assocmine/internal/eval"
	"assocmine/internal/kminhash"
	"assocmine/internal/lsh"
	"assocmine/internal/minhash"
)

// benchWorkloads are generated once and shared across benchmarks.
var (
	benchOnce sync.Once
	benchW    *eval.Workloads
	benchErr  error
)

func workloads(b *testing.B) *eval.Workloads {
	b.Helper()
	benchOnce.Do(func() {
		benchW, benchErr = eval.NewWorkloads(eval.Scale{
			WebClients: 4000, WebURLs: 800,
			NewsDocs: 8000, NewsVocab: 1500,
			SynRows: 5000, SynCols: 500,
			Seed: 1,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchW
}

// BenchmarkFig2FilterFunctions evaluates the analytic filter functions
// P_{r,l} and Q_{r,l,k} over the full similarity grid (Fig. 2).
func BenchmarkFig2FilterFunctions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for s := 0.0; s <= 1; s += 0.01 {
			_ = lsh.ProbAtLeastOnce(s, 20, 20)
			_ = lsh.SampledCollisionProb(s, 20, 20, 40)
		}
	}
}

// BenchmarkFig3Histogram builds the all-pairs similarity histogram of
// the web-log data (Fig. 3).
func BenchmarkFig3Histogram(b *testing.B) {
	w := workloads(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.Histogram(w.Web.Data.Matrix(), eval.DefaultEdges()); err != nil {
			b.Fatal(err)
		}
	}
}

// The Fig. 4 running-time table: one sub-benchmark per algorithm on
// the support-pruned news data.
func BenchmarkFig4(b *testing.B) {
	w := workloads(b)
	m := w.News.Data.Matrix()
	ths := []float64{0.01}
	keep := apriori.SupportPrune(m, ths[0])
	pruned, _ := apriori.Project(m, keep)
	d := assocmine.WrapMatrix(pruned)
	const threshold = 0.5

	b.Run("Apriori", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := assocmine.SimilarPairs(d, assocmine.Config{
				Algorithm: assocmine.Apriori, Threshold: threshold, MinSupport: ths[0],
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	cfgs := map[string]assocmine.Config{
		"MH":   {Algorithm: assocmine.MinHash, Threshold: threshold, K: 100, Seed: 3},
		"KMH":  {Algorithm: assocmine.KMinHash, Threshold: threshold, K: 100, Seed: 3},
		"HLSH": {Algorithm: assocmine.HammingLSH, Threshold: threshold, R: 8, L: 10, Seed: 3},
		"MLSH": {Algorithm: assocmine.MinLSH, Threshold: threshold, K: 100, R: 5, L: 20, Seed: 3},
	}
	for name, cfg := range cfgs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := assocmine.SimilarPairs(d, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig5MH sweeps MH over k on the web-log data (Fig. 5b's
// linear growth in k).
func BenchmarkFig5MH(b *testing.B) {
	w := workloads(b)
	for _, k := range []int{20, 50, 100, 200} {
		b.Run(benchName("k", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := assocmine.SimilarPairs(w.Web.Data, assocmine.Config{
					Algorithm: assocmine.MinHash, Threshold: 0.5, K: k, Seed: 9,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6KMH sweeps K-MH over k (Fig. 6b's sublinear growth on
// sparse data).
func BenchmarkFig6KMH(b *testing.B) {
	w := workloads(b)
	for _, k := range []int{20, 50, 100, 200} {
		b.Run(benchName("k", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := assocmine.SimilarPairs(w.Web.Data, assocmine.Config{
					Algorithm: assocmine.KMinHash, Threshold: 0.5, K: k, Seed: 9,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig7HLSH sweeps H-LSH over r (Fig. 7c: time falls as r
// rises because fewer candidates reach verification).
func BenchmarkFig7HLSH(b *testing.B) {
	w := workloads(b)
	for _, r := range []int{4, 8, 16, 24} {
		b.Run(benchName("r", r), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := assocmine.SimilarPairs(w.Web.Data, assocmine.Config{
					Algorithm: assocmine.HammingLSH, Threshold: 0.5, R: r, L: 10, Seed: 9,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8MLSH sweeps M-LSH over l (Fig. 8b: time grows with l).
func BenchmarkFig8MLSH(b *testing.B) {
	w := workloads(b)
	for _, l := range []int{2, 5, 10, 20} {
		b.Run(benchName("l", l), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := assocmine.SimilarPairs(w.Web.Data, assocmine.Config{
					Algorithm: assocmine.MinLSH, Threshold: 0.5, K: 5 * l, R: 5, L: l, Seed: 9,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9Comparison runs the four schemes end-to-end at their
// mid-grid settings (the Fig. 9 cross-algorithm comparison).
func BenchmarkFig9Comparison(b *testing.B) {
	w := workloads(b)
	cfgs := map[string]assocmine.Config{
		"MH":   {Algorithm: assocmine.MinHash, Threshold: 0.5, K: 100, Seed: 9},
		"KMH":  {Algorithm: assocmine.KMinHash, Threshold: 0.5, K: 100, Seed: 9},
		"HLSH": {Algorithm: assocmine.HammingLSH, Threshold: 0.5, R: 8, L: 10, Seed: 9},
		"MLSH": {Algorithm: assocmine.MinLSH, Threshold: 0.5, K: 50, R: 5, L: 10, Seed: 9},
	}
	for name, cfg := range cfgs {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := assocmine.SimilarPairs(w.Web.Data, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSyntheticRecall runs the Section 5 synthetic-data workload
// end-to-end with M-LSH.
func BenchmarkSyntheticRecall(b *testing.B) {
	w := workloads(b)
	for i := 0; i < b.N; i++ {
		if _, err := assocmine.SimilarPairs(w.Syn, assocmine.Config{
			Algorithm: assocmine.MinLSH, Threshold: 0.45, K: 150, R: 3, L: 50, Seed: 5,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRules measures Section 6 rule mining on the news corpus.
func BenchmarkRules(b *testing.B) {
	w := workloads(b)
	for i := 0; i < b.N; i++ {
		if _, err := assocmine.MineRules(w.News.Data, assocmine.RuleConfig{
			MinConfidence: 0.8, K: 100, Seed: 23,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablations (DESIGN.md §4) ---

// BenchmarkAblationCounterReset compares Row-Sorting (counter reuse,
// work proportional to agreements) against the brute-force O(k·m²)
// enumeration it replaces.
func BenchmarkAblationCounterReset(b *testing.B) {
	w := workloads(b)
	sig, err := minhash.Compute(w.Web.Data.Matrix().Stream(), 50, 9)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("RowSort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := candidate.RowSortMH(sig, 0.4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("HashCount", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := candidate.HashCountMH(sig, 0.4); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("BruteForce", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := candidate.BruteForceMH(sig, 0.4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationBottomK compares the bounded-max-heap bottom-k
// sketch against recomputing by sorting all hash values per column.
func BenchmarkAblationBottomK(b *testing.B) {
	w := workloads(b)
	m := w.Web.Data.Matrix()
	b.Run("Heap", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kminhash.Compute(m.Stream(), 50, 9); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("SortAll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sortAllBottomK(m, 50, 9)
		}
	})
}

// BenchmarkAblationKMHPrefilter compares the biased-then-unbiased
// cascade against applying the unbiased Theorem 2 estimator to every
// pair.
func BenchmarkAblationKMHPrefilter(b *testing.B) {
	w := workloads(b)
	sk, err := kminhash.Compute(w.Web.Data.Matrix().Stream(), 50, 9)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("BiasedPrefilter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := candidate.HashCountKMH(sk, candidate.KMHOptions{
				BiasedCutoff: 0.2, UnbiasedCutoff: 0.4,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("UnbiasedAllPairs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := candidate.BruteForceKMH(sk, 0.4); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSignatureComputation isolates phase 1 for MH vs K-MH at
// equal k — the motivation for K-MH (Section 3.2: one hash per row
// instead of k).
func BenchmarkSignatureComputation(b *testing.B) {
	w := workloads(b)
	m := w.Web.Data.Matrix()
	b.Run("MH", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := minhash.Compute(m.Stream(), 100, 9); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("KMH", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := kminhash.Compute(m.Stream(), 100, 9); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func benchName(k string, v int) string {
	const digits = "0123456789"
	if v == 0 {
		return k + "=0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = digits[v%10]
		v /= 10
	}
	return k + "=" + string(buf[i:])
}
