package assocmine

import (
	"fmt"
	"testing"
)

// BPS differential harness (`make bpscheck`): every driver the sampler
// runs under — in-memory vs streamed, serial vs parallel, raw vs binary
// vs compressed file formats, scalar vs packed verify kernels, budgeted
// spill vs unbudgeted — must produce bit-identical Results at a fixed
// seed. The accept decision is a pure per-(row,pair) hash, so a single
// serial in-memory run is the reference for everything else.

// TestBPSDifferential: one serial in-memory reference per fixture;
// every (format, workers, kernel) combination must reproduce its pairs,
// estimates, exact similarities and pair-section stats exactly.
func TestBPSDifferential(t *testing.T) {
	fixtures := []SyntheticOptions{
		{Rows: 700, Cols: 70, PairsPerRange: 2, Seed: 41},
		{Rows: 1600, Cols: 110, MinDensity: 0.02, MaxDensity: 0.1, PairsPerRange: 4, Seed: 43},
	}
	base := Config{Algorithm: BPS, Threshold: 0.5, Seed: 7}
	for fi, opt := range fixtures {
		d, _, err := GenerateSynthetic(opt)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := SimilarPairs(d, base)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Stats.PairsSampled <= 0 || ref.Stats.SampleAccepts <= 0 {
			t.Fatalf("fixture %d: reference run sampled nothing: %+v", fi, ref.Stats)
		}
		if len(ref.Pairs) == 0 {
			t.Fatalf("fixture %d: reference run mined no pairs — fixture too weak", fi)
		}
		for _, ext := range []string{".txt", ".arows", ".carows"} {
			fd := saveDataset(t, d, ext)
			for _, workers := range []int{1, 4} {
				for _, kernel := range []Kernel{KernelScalar, KernelPacked} {
					t.Run(fmt.Sprintf("fixture%d%s/workers=%d/%v", fi, ext, workers, kernel), func(t *testing.T) {
						cfg := base
						cfg.Workers = workers
						cfg.VerifyKernel = kernel
						mem, err := SimilarPairs(d, cfg)
						if err != nil {
							t.Fatalf("in-memory: %v", err)
						}
						stream, err := fd.SimilarPairs(cfg)
						if err != nil {
							t.Fatalf("streamed: %v", err)
						}
						for name, got := range map[string]*Result{"in-memory": mem, "streamed": stream} {
							if len(got.Pairs) != len(ref.Pairs) {
								t.Fatalf("%s: %d pairs, reference has %d", name, len(got.Pairs), len(ref.Pairs))
							}
							for i := range ref.Pairs {
								if got.Pairs[i] != ref.Pairs[i] {
									t.Fatalf("%s: pair %d = %+v, reference %+v", name, i, got.Pairs[i], ref.Pairs[i])
								}
							}
							comparePairSections(t, got.Stats, ref.Stats)
						}
						if stream.Stats.BytesRead <= 0 {
							t.Errorf("streamed run read %d bytes", stream.Stats.BytesRead)
						}
						if mem.Stats.BytesRead != 0 {
							t.Errorf("in-memory run reported %d bytes read", mem.Stats.BytesRead)
						}
						if ext == ".carows" && stream.Stats.CompressedBytesRead <= 0 {
							t.Errorf("compressed run reported %d compressed bytes", stream.Stats.CompressedBytesRead)
						}
						if workers > 1 && stream.Stats.ShardsStreamed <= 0 {
							t.Errorf("parallel streamed run dealt %d shards", stream.Stats.ShardsStreamed)
						}
					})
				}
			}
		}
	}
}

// TestBPSBudgetedSpillMatches: a verification memory budget several
// times smaller than the counter table must trigger disk spills and
// still reproduce the unbudgeted run bit for bit, with an attached
// Collector agreeing with Stats on the sampling counters.
func TestBPSBudgetedSpillMatches(t *testing.T) {
	d, _, err := GenerateSynthetic(SyntheticOptions{Rows: 600, Cols: 120, MinDensity: 0.05, MaxDensity: 0.15, PairsPerRange: 4, Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	fd := saveDataset(t, d, ".arows")
	// Delta close to 1 admits nearly every sampled pair, inflating the
	// candidate list well past the budget below.
	base := Config{Algorithm: BPS, Threshold: 0.3, Delta: 0.9, Seed: 13}
	mem, err := SimilarPairs(d, base)
	if err != nil {
		t.Fatal(err)
	}
	if mem.Stats.Candidates*denseCounterBytesTest < 8*4096 {
		t.Fatalf("fixture too small to exceed the budget: %d candidates", mem.Stats.Candidates)
	}
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := base
			cfg.Workers = workers
			cfg.MemoryBudget = 4096
			col := NewCollector()
			cfg.Recorder = col
			stream, err := fd.SimilarPairs(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if stream.Stats.SpillRuns <= 0 || stream.Stats.SpillBytes <= 0 {
				t.Fatalf("budget %d did not spill: %+v", cfg.MemoryBudget, stream.Stats)
			}
			if len(stream.Pairs) != len(mem.Pairs) {
				t.Fatalf("%d pairs budgeted, %d unbudgeted", len(stream.Pairs), len(mem.Pairs))
			}
			for i := range mem.Pairs {
				if stream.Pairs[i] != mem.Pairs[i] {
					t.Fatalf("pair %d: %+v budgeted, %+v unbudgeted", i, stream.Pairs[i], mem.Pairs[i])
				}
			}
			comparePairSections(t, stream.Stats, mem.Stats)
			if got := col.Counter(CounterPairsSampled); got != stream.Stats.PairsSampled {
				t.Errorf("collector pairs_sampled = %d, Stats.PairsSampled = %d", got, stream.Stats.PairsSampled)
			}
			if got := col.Counter(CounterSampleAccepts); got != stream.Stats.SampleAccepts {
				t.Errorf("collector sample_accepts = %d, Stats.SampleAccepts = %d", got, stream.Stats.SampleAccepts)
			}
			if got := col.Counter(CounterSampleDups); got != stream.Stats.SampleDups {
				t.Errorf("collector sample_dups = %d, Stats.SampleDups = %d", got, stream.Stats.SampleDups)
			}
		})
	}
}

// TestBPSWindowMatchesTail: a sliding-window BPS run equals a batch run
// over just the trailing rows (with row ids preserved, supports and
// sampling decisions restricted to the window).
func TestBPSWindowMatchesTail(t *testing.T) {
	d, _, err := GenerateSynthetic(SyntheticOptions{Rows: 900, Cols: 80, MinDensity: 0.03, MaxDensity: 0.1, PairsPerRange: 3, Seed: 59})
	if err != nil {
		t.Fatal(err)
	}
	const window = 300
	cfg := Config{Algorithm: BPS, Threshold: 0.4, Seed: 7}
	cfg.Window = window
	got, err := SimilarPairs(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := SimilarPairs(d, Config{Algorithm: BPS, Threshold: 0.4, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// The window genuinely changes the mined similarity landscape...
	if got.Stats.PairsSampled >= full.Stats.PairsSampled {
		t.Errorf("window run inspected %d draws, full run %d — window not applied?",
			got.Stats.PairsSampled, full.Stats.PairsSampled)
	}
	// ...and equals the BruteForce ground truth over the same window.
	truth, err := SimilarPairs(d, Config{Algorithm: BruteForce, Threshold: 0.4, Window: window})
	if err != nil {
		t.Fatal(err)
	}
	found := make(map[[2]int]float64, len(got.Pairs))
	for _, p := range got.Pairs {
		found[[2]int{p.I, p.J}] = p.Similarity
	}
	for _, p := range truth.Pairs {
		sim, ok := found[[2]int{p.I, p.J}]
		if !ok {
			continue // the sampler may miss; it must never invent or mis-score
		}
		if sim != p.Similarity {
			t.Errorf("pair (%d,%d): windowed BPS similarity %v, truth %v", p.I, p.J, sim, p.Similarity)
		}
	}
	if len(got.Pairs) > len(truth.Pairs) {
		t.Errorf("windowed BPS returned %d pairs, truth has %d", len(got.Pairs), len(truth.Pairs))
	}
}
