package assocmine

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"assocmine/internal/faultfs"
	"assocmine/internal/testutil"
)

// Chaos-differential harness: because every run is a pure function of
// (data, Config), IO faults a hardened reader can absorb — transient
// errors, short reads, latency — must be completely invisible: the
// faulty run's pairs and pair-section stats are bit-identical to the
// fault-free run's. Permanent faults must surface as a *FileError with
// path and offset, and cancelled runs must stop promptly without
// leaking goroutines or spill files.

// chaosRetry keeps fault-laden runs fast: same budget as the default
// policy, microsecond backoff.
var chaosRetry = RetryPolicy{Retries: 4, BaseDelay: 10 * time.Microsecond}

var chaosAlgos = []struct {
	name string
	cfg  Config
}{
	{"MH", Config{Algorithm: MinHash, Threshold: 0.5, K: 50, Seed: 7}},
	{"K-MH", Config{Algorithm: KMinHash, Threshold: 0.5, K: 50, Seed: 7}},
	{"M-LSH", Config{Algorithm: MinLSH, Threshold: 0.5, K: 50, R: 5, L: 10, Seed: 7}},
	{"BPS", Config{Algorithm: BPS, Threshold: 0.5, Seed: 7}},
}

// saveChaosFile writes d in the given format and returns the path.
func saveChaosFile(t *testing.T, d *Dataset, ext string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data"+ext)
	var err error
	switch ext {
	case ".arows":
		err = d.SaveRowBinary(path)
	case ".carows":
		err = d.SaveRowCompressed(path)
	default:
		err = d.Save(path)
	}
	if err != nil {
		t.Fatal(err)
	}
	return path
}

// transientPlan layers a guaranteed early transient fault over a seeded
// schedule, so every scan pass exercises the retry path regardless of
// what the seed draws for this path.
func transientPlan(seed uint64) func(path string, open int) []faultfs.Event {
	seeded := faultfs.Seeded(seed, faultfs.Options{MeanGap: 2048})
	return func(path string, open int) []faultfs.Event {
		return append(seeded(path, open), faultfs.Event{Offset: 5, Kind: faultfs.Transient})
	}
}

// TestChaosTransientFaultsBitIdentical: for every scheme, worker count
// and file format, a run under a transient-only fault plan (plus a
// transiently failing first open) must be bit-identical to the
// fault-free run — same pairs, same pair-section stats, same bytes
// read — while the io_retries and faults_injected counters prove the
// faults actually happened.
func TestChaosTransientFaultsBitIdentical(t *testing.T) {
	testutil.CheckGoroutines(t)
	d, _, err := GenerateSynthetic(SyntheticOptions{Rows: 700, Cols: 70, PairsPerRange: 2, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{".txt", ".arows"} {
		path := saveChaosFile(t, d, ext)
		for _, a := range chaosAlgos {
			for _, workers := range []int{1, 4} {
				for _, kernel := range []Kernel{KernelScalar, KernelPacked} {
					t.Run(fmt.Sprintf("%s/%s/workers=%d/%v", ext[1:], a.name, workers, kernel), func(t *testing.T) {
						cfg := a.cfg
						cfg.Workers = workers
						cfg.VerifyKernel = kernel
						cleanFD, err := OpenFileDataset(path)
						if err != nil {
							t.Fatal(err)
						}
						clean, err := cleanFD.SimilarPairs(cfg)
						if err != nil {
							t.Fatalf("fault-free run: %v", err)
						}
						if kernel == KernelPacked && clean.Stats.Candidates > 0 && clean.Stats.PackedBatches == 0 {
							t.Errorf("packed kernel requested but no batches reported: %+v", clean.Stats)
						}
						fs := &faultfs.FS{
							Plan:    transientPlan(97),
							OpenErr: faultfs.TransientOpens(1),
						}
						faultyFD, err := OpenFileDatasetFS(fs, path)
						if err != nil {
							t.Fatalf("open through faulty FS: %v", err)
						}
						faultyFD.SetRetryPolicy(chaosRetry)
						faulty, err := faultyFD.SimilarPairs(cfg)
						if err != nil {
							t.Fatalf("faulty run: %v", err)
						}
						if len(faulty.Pairs) != len(clean.Pairs) {
							t.Fatalf("%d pairs under faults, %d fault-free", len(faulty.Pairs), len(clean.Pairs))
						}
						for i := range clean.Pairs {
							if faulty.Pairs[i] != clean.Pairs[i] {
								t.Fatalf("pair %d: %+v under faults, %+v fault-free", i, faulty.Pairs[i], clean.Pairs[i])
							}
						}
						comparePairSections(t, faulty.Stats, clean.Stats)
						if faulty.Stats.PackedBatches != clean.Stats.PackedBatches {
							t.Errorf("PackedBatches = %d under faults, %d fault-free",
								faulty.Stats.PackedBatches, clean.Stats.PackedBatches)
						}
						if faulty.Stats.BytesRead != clean.Stats.BytesRead {
							t.Errorf("BytesRead = %d under faults, %d fault-free", faulty.Stats.BytesRead, clean.Stats.BytesRead)
						}
						if faulty.Stats.FaultsInjected <= 0 {
							t.Error("faulty run reported zero injected faults")
						}
						if faulty.Stats.IORetries <= 0 {
							t.Error("faulty run reported zero IO retries")
						}
						if clean.Stats.FaultsInjected != 0 || clean.Stats.IORetries != 0 {
							t.Errorf("fault-free run reported faults=%d retries=%d",
								clean.Stats.FaultsInjected, clean.Stats.IORetries)
						}
					})
				}
			}
		}
	}
}

// TestChaosPermanentFaultFailsCleanly: truncating the stream mid-file
// must fail the run with a *FileError carrying the path and a byte
// offset no further than the truncation point — never a hang, panic or
// silent partial result.
func TestChaosPermanentFaultFailsCleanly(t *testing.T) {
	testutil.CheckGoroutines(t)
	d, _, err := GenerateSynthetic(SyntheticOptions{Rows: 700, Cols: 70, PairsPerRange: 2, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{".txt", ".arows"} {
		path := saveChaosFile(t, d, ext)
		info, err := os.Stat(path)
		if err != nil {
			t.Fatal(err)
		}
		cut := info.Size() / 2
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", ext[1:], workers), func(t *testing.T) {
				fs := &faultfs.FS{
					Plan: func(string, int) []faultfs.Event {
						return []faultfs.Event{{Offset: cut, Kind: faultfs.Truncate}}
					},
				}
				fd, err := OpenFileDatasetFS(fs, path)
				if err != nil {
					t.Fatalf("header open should survive a mid-file truncation: %v", err)
				}
				fd.SetRetryPolicy(chaosRetry)
				cfg := Config{Algorithm: MinHash, Threshold: 0.5, K: 50, Seed: 7, Workers: workers}
				res, err := fd.SimilarPairs(cfg)
				if err == nil {
					t.Fatalf("run over a truncated stream succeeded with %d pairs", len(res.Pairs))
				}
				var fe *FileError
				if !errors.As(err, &fe) {
					t.Fatalf("err = %v (%T), want *FileError", err, err)
				}
				if fe.Path != path {
					t.Errorf("FileError.Path = %q, want %q", fe.Path, path)
				}
				if fe.Offset <= 0 || fe.Offset > cut {
					t.Errorf("FileError.Offset = %d, want in (0, %d]", fe.Offset, cut)
				}
				if !strings.Contains(err.Error(), path) {
					t.Errorf("error %q does not mention the file path", err)
				}
			})
		}
	}
}

// countChaosSpills returns how many verification spill run files remain
// in dir.
func countChaosSpills(t *testing.T, dir string) int {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "assocmine-spill-*.run"))
	if err != nil {
		t.Fatal(err)
	}
	return len(matches)
}

// TestChaosCancellation: cancelling the run's Context mid-phase must
// return context.Canceled within a deadline, leak no goroutines, and
// leave zero spill files — including when the cancel lands mid-way
// through a budgeted verification that has already spilled runs. The
// cases cover every phase of MinHash plus the candidate kernels of
// K-MinHash and MinLSH.
func TestChaosCancellation(t *testing.T) {
	// Data scans report progress every 4096 rows, so the row count must
	// exceed that stride for a mid-scan tick (the cancel trigger) to
	// exist; Delta near 1 inflates the candidate list past the budget,
	// so the verify phase spills before the cancel lands.
	d, _, err := GenerateSynthetic(SyntheticOptions{Rows: 6000, Cols: 120, MinDensity: 0.05, MaxDensity: 0.15, PairsPerRange: 4, Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	path := saveChaosFile(t, d, ".arows")
	mh := Config{Algorithm: MinHash, Threshold: 0.3, K: 40, Delta: 0.9, Seed: 13, MemoryBudget: 4096}
	// The packed-verify case drops the budget (forcing it would batch the
	// arena instead of spilling) and cancels inside the popcount sweep,
	// which ticks pair progress at chunk granularity.
	mhPacked := Config{Algorithm: MinHash, Threshold: 0.3, K: 40, Delta: 0.9, Seed: 13, VerifyKernel: KernelPacked}
	// The BPS cases share the loose Delta and tiny budget so its verify
	// phase, too, spills before the cancel lands.
	bpsChaos := Config{Algorithm: BPS, Threshold: 0.3, Delta: 0.9, Seed: 13, MemoryBudget: 4096}
	cases := []struct {
		name  string
		cfg   Config
		phase string
	}{
		{"MH/signatures", mh, PhaseSignatures},
		{"MH/candidates", mh, PhaseCandidates},
		{"MH/verify", mh, PhaseVerify},
		{"MH/verify-packed", mhPacked, PhaseVerify},
		{"K-MH/candidates", Config{Algorithm: KMinHash, Threshold: 0.5, K: 50, Seed: 7}, PhaseCandidates},
		{"M-LSH/candidates", Config{Algorithm: MinLSH, Threshold: 0.5, K: 50, R: 5, L: 10, Seed: 7}, PhaseCandidates},
		// BPS covers all three of its phases: the streamed supports
		// pass, the sampling scan, and the (spilling) budgeted verify.
		{"BPS/signatures", bpsChaos, PhaseSignatures},
		{"BPS/candidates", bpsChaos, PhaseCandidates},
		{"BPS/verify", bpsChaos, PhaseVerify},
	}
	const deadline = 30 * time.Second
	for _, workers := range []int{1, 4} {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("workers=%d/%s", workers, tc.name), func(t *testing.T) {
				testutil.CheckGoroutines(t)
				fd, err := OpenFileDataset(path)
				if err != nil {
					t.Fatal(err)
				}
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				cfg := tc.cfg
				cfg.Workers = workers
				cfg.SpillDir = t.TempDir()
				cfg.Context = ctx
				var once sync.Once
				cfg.Progress = func(p string, done, total int64) {
					// Cancel at the phase's first mid-phase tick; the
					// completion tick (done == total) is too late — nothing
					// of the phase remains to observe the cancellation.
					if p == tc.phase && done < total {
						once.Do(cancel)
					}
				}
				start := time.Now()
				res, err := fd.SimilarPairs(cfg)
				elapsed := time.Since(start)
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("err = %v, want context.Canceled (result %v)", err, res)
				}
				if elapsed > deadline {
					t.Errorf("cancelled run took %v, deadline %v", elapsed, deadline)
				}
				if n := countChaosSpills(t, cfg.SpillDir); n != 0 {
					t.Errorf("%d spill files remain after cancelled run", n)
				}
			})
		}
	}
	t.Run("pre-cancelled", func(t *testing.T) {
		testutil.CheckGoroutines(t)
		fd, err := OpenFileDataset(path)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		cfg := mh
		cfg.Workers = 4
		cfg.SpillDir = t.TempDir()
		cfg.Context = ctx
		if _, err := fd.SimilarPairs(cfg); !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if n := countChaosSpills(t, cfg.SpillDir); n != 0 {
			t.Errorf("%d spill files remain after pre-cancelled run", n)
		}
	})
}
