package main

import (
	"os"
	"path/filepath"
	"testing"

	"assocmine"
	"assocmine/internal/dist"
)

// TestMain lets this test binary stand in for the assocfind worker:
// runDist re-execs os.Executable() with -worker, which in tests is the
// test binary itself, so the worker protocol is entered here before
// any test machinery (or flag parsing) runs.
func TestMain(m *testing.M) {
	for _, a := range os.Args[1:] {
		if a == "-worker" {
			if err := dist.WorkerMain(os.Stdin, os.Stdout); err != nil {
				os.Exit(1)
			}
			os.Exit(0)
		}
	}
	os.Exit(m.Run())
}

// distFixture saves the synthetic golden dataset in both binary row
// formats.
func distFixture(t *testing.T) (arows, carows string) {
	t.Helper()
	d, _, err := assocmine.GenerateSynthetic(assocmine.SyntheticOptions{
		Rows: 800, Cols: 60, PairsPerRange: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	arows = filepath.Join(dir, "data.arows")
	carows = filepath.Join(dir, "data.carows")
	if err := d.SaveRowBinary(arows); err != nil {
		t.Fatal(err)
	}
	if err := d.SaveRowCompressed(carows); err != nil {
		t.Fatal(err)
	}
	return arows, carows
}

// TestDistDifferential is the end-to-end distributed-equals-serial
// harness behind `make distcheck`: for every supported scheme, worker
// count, and binary format, `-dist-workers N` must print byte-for-byte
// what the single-process `-stream` run prints.
func TestDistDifferential(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocess fleets")
	}
	arows, carows := distFixture(t)
	algos := []struct {
		algo    string
		k, r, l int
	}{
		{algo: "mh", k: 80},
		{algo: "kmh", k: 80},
		{algo: "mlsh", k: 80, r: 5, l: 16},
		{algo: "bps"},
	}
	for _, path := range []string{arows, carows} {
		for _, ac := range algos {
			base := options{
				in: path, algo: ac.algo, threshold: 0.5,
				k: ac.k, r: ac.r, l: ac.l, seed: 3,
				stream: true, stats: false, top: 0,
			}
			if base.k == 0 {
				base.k = 100 // options zero value; flag default is 100
			}
			want := captureRun(t, base)
			for _, workers := range []int{1, 4} {
				o := base
				o.distWorkers = workers
				got := captureRun(t, o)
				if got != want {
					t.Errorf("%s %s workers=%d: distributed output differs from single-process\n--- dist ---\n%s--- serial ---\n%s",
						ac.algo, filepath.Ext(path), workers, got, want)
				}
			}
		}
	}
}

// TestDistFlagConflicts locks the CLI guard rails around -dist-workers.
func TestDistFlagConflicts(t *testing.T) {
	arows, _ := distFixture(t)
	bad := []options{
		{in: arows, algo: "mh", threshold: 0.5, k: 100, distWorkers: 2},                                 // no -stream
		{in: arows, algo: "mh", threshold: 0.5, k: 100, distWorkers: 2, stream: true, window: 10},       // window
		{in: arows, algo: "mh", threshold: 0.5, k: 100, distWorkers: 2, stream: true, doRules: true},    // rules
		{in: arows, algo: "mh", threshold: 0.5, k: 100, distWorkers: 2, stream: true, memBudget: "1M"},  // budget
		{in: arows, algo: "hlsh", threshold: 0.5, k: 100, distWorkers: 2, stream: true},                 // unsupported algo
		{in: arows, algo: "mh", threshold: 0.5, k: 100, distWorkers: 2, stream: true, clusters: true},   // clusters
		{in: arows, algo: "mh", threshold: 0.5, k: 100, distWorkers: 2, stream: true, appendState: "x"}, // append
	}
	for i, o := range bad {
		if err := run(o); err == nil {
			t.Errorf("case %d: conflicting flags accepted", i)
		}
	}
}
