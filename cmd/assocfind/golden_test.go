package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current output")

// durRE matches Go duration strings in the stats line; secRE the
// float seconds of the Prometheus phase timers. Both are run-dependent
// and normalised away before diffing.
var (
	durRE = regexp.MustCompile(`\b[0-9]+(\.[0-9]+)?(ns|µs|ms|m?s)\b`)
	secRE = regexp.MustCompile(`(assocmine_phase_seconds\{[^}]*\} )[0-9.eE+-]+`)
)

func normalize(out string) string {
	out = durRE.ReplaceAllString(out, "<dur>")
	out = secRE.ReplaceAllString(out, "${1}<sec>")
	return out
}

// captureRun executes run(o) with stdout captured.
func captureRun(t *testing.T, o options) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	runErr := run(o)
	w.Close()
	os.Stdout = old
	out := <-done
	if runErr != nil {
		t.Fatalf("run: %v", runErr)
	}
	return out
}

// pairsSection returns the output up to the stats line — the mined
// pairs themselves, which must be bit-identical for any worker count.
func pairsSection(out string) string {
	if i := strings.Index(out, "phases:"); i >= 0 {
		return out[:i]
	}
	return out
}

// TestGoldenOutput locks the CLI's stdout for a committed dataset:
// per-algorithm goldens with stats and metrics, durations normalised.
// The mined pairs are bit-identical for any worker count; the stats
// and metrics sections legitimately differ (worker gauges, data-pass
// accounting), so each worker count gets its own golden. Regenerate
// with:
//
//	go test ./cmd/assocfind -run TestGoldenOutput -update
func TestGoldenOutput(t *testing.T) {
	data := filepath.Join("testdata", "golden.txt")
	cases := []struct {
		name string
		o    options
	}{
		{"mh", options{in: data, algo: "mh", threshold: 0.5, k: 80, seed: 3, top: 10, stats: true, metrics: true}},
		{"mlsh", options{in: data, algo: "mlsh", threshold: 0.5, k: 80, r: 5, l: 16, seed: 3, top: 10, stats: true, metrics: true}},
		{"brute", options{in: data, algo: "brute", threshold: 0.5, top: 10, stats: true}},
		{"stream-kmh", options{in: data, algo: "kmh", threshold: 0.5, k: 80, seed: 3, top: 10, stats: true, stream: true}},
		// Sliding-window run: only the trailing 120 rows are mined, so
		// the golden locks in the reduced rows-scanned accounting too.
		{"window-mh", options{in: data, algo: "mh", threshold: 0.5, k: 80, seed: 3, top: 10, stats: true, metrics: true, window: 120}},
		{"stream-mh", options{in: data, algo: "mh", threshold: 0.5, k: 80, seed: 3, top: 10, stats: true, metrics: true, stream: true}},
		// threshold 0.1 admits ~44 candidates, whose counter table
		// overflows the 128-byte budget — the golden locks in nonzero
		// spill activity in both the stats line and the metrics.
		{"stream-budget", options{in: data, algo: "mh", threshold: 0.1, k: 80, seed: 3, top: 5, stats: true, metrics: true, stream: true, memBudget: "128"}},
		// Biased pair sampling: the golden locks in the deterministic
		// "sampled:" stats line (draws / accepts / duplicates are pure
		// functions of seed and data, identical for any worker count).
		{"bps", options{in: data, algo: "bps", threshold: 0.5, seed: 3, top: 10, stats: true, metrics: true}},
		{"stream-bps", options{in: data, algo: "bps", threshold: 0.5, seed: 3, top: 10, stats: true, metrics: true, stream: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var serialPairs string
			for _, workers := range []int{1, 4} {
				o := tc.o
				o.workers = workers
				out := normalize(captureRun(t, o))
				if workers == 1 {
					serialPairs = pairsSection(out)
				} else if p := pairsSection(out); p != serialPairs {
					t.Fatalf("workers=4 mined different pairs than workers=1:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", serialPairs, p)
				}
				golden := filepath.Join("testdata", fmt.Sprintf("golden_%s_w%d.golden", tc.name, workers))
				if *update {
					if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(golden)
				if err != nil {
					t.Fatalf("reading golden (run with -update to create): %v", err)
				}
				if out != string(want) {
					t.Errorf("workers=%d output differs from %s:\n%s", workers, golden, diffLines(string(want), out))
				}
			}
		})
	}
}

func diffLines(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	var sb strings.Builder
	n := len(wl)
	if len(gl) > n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w == g {
			continue
		}
		fmt.Fprintf(&sb, "line %d:\n  want: %q\n  got:  %q\n", i+1, w, g)
	}
	return sb.String()
}
