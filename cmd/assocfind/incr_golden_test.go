package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"assocmine/internal/testutil"
)

// pairsOnly trims the output to the "N similar pairs ..." report — the
// part that is independent of input paths and of how the sketch was
// built (batch scan or incremental catch-up).
func pairsOnly(t *testing.T, out string) string {
	t.Helper()
	i := strings.Index(out, "similar pairs")
	if i < 0 {
		t.Fatalf("no similar-pairs report in output:\n%s", out)
	}
	return pairsSection(out[strings.LastIndex(out[:i], "\n")+1:])
}

// stateFlags points o at an ingest snapshot: mode is "append" or
// "resume".
func stateFlags(o options, mode, path string) options {
	if mode == "append" {
		o.appendState = path
	} else {
		o.resumeState = path
	}
	return o
}

// TestGoldenIncremental locks the CLI output of the incremental modes
// for the committed dataset: a first -append run folds every row into a
// fresh snapshot, a -resume run against that snapshot folds nothing —
// and both mine exactly the pairs of the direct (non-incremental) run.
// Regenerate with:
//
//	go test ./cmd/assocfind -run TestGoldenIncremental -update
func TestGoldenIncremental(t *testing.T) {
	testutil.CheckGoroutines(t)
	data := filepath.Join("testdata", "golden.txt")
	cases := []struct {
		name string
		mode string // append | resume
		o    options
	}{
		{"incr-append-mh", "append", options{in: data, algo: "mh", threshold: 0.5, k: 80, seed: 3, top: 10, stats: true}},
		{"incr-resume-mh", "resume", options{in: data, algo: "mh", threshold: 0.5, k: 80, seed: 3, top: 10, stats: true}},
		{"incr-append-kmh", "append", options{in: data, algo: "kmh", threshold: 0.5, k: 80, seed: 3, top: 10, stats: true, stream: true}},
		{"incr-resume-kmh", "resume", options{in: data, algo: "kmh", threshold: 0.5, k: 80, seed: 3, top: 10, stats: true, stream: true}},
	}
	tmp := t.TempDir()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var serialPairs string
			for _, workers := range []int{1, 4} {
				o := tc.o
				o.workers = workers
				state := filepath.Join(tmp, fmt.Sprintf("%s_w%d.ain", tc.name, workers))
				if tc.mode == "resume" {
					// A resume needs an existing snapshot; build it with a
					// setup append run whose output is not under test.
					captureRun(t, stateFlags(o, "append", state))
				}
				out := normalize(captureRun(t, stateFlags(o, tc.mode, state)))
				wantFold := "incremental: 300 new rows folded (total 300, live 300 in 1 checkpoints)"
				if tc.mode == "resume" {
					wantFold = "incremental: 0 new rows folded (total 300, live 300 in 1 checkpoints)"
				}
				if !strings.Contains(out, wantFold) {
					t.Fatalf("output missing %q:\n%s", wantFold, out)
				}
				// The incremental sketch must mine exactly the direct run's
				// pairs, at every worker count.
				direct := pairsOnly(t, normalize(captureRun(t, tc.o)))
				if got := pairsOnly(t, out); got != direct {
					t.Fatalf("incremental pairs differ from direct run:\n--- direct ---\n%s\n--- incremental ---\n%s", direct, got)
				}
				if workers == 1 {
					serialPairs = pairsOnly(t, out)
				} else if p := pairsOnly(t, out); p != serialPairs {
					t.Fatalf("workers=4 mined different pairs than workers=1:\n--- workers=1 ---\n%s\n--- workers=4 ---\n%s", serialPairs, p)
				}
				golden := filepath.Join("testdata", fmt.Sprintf("golden_%s_w%d.golden", tc.name, workers))
				if *update {
					if err := os.WriteFile(golden, []byte(out), 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(golden)
				if err != nil {
					t.Fatalf("reading golden (run with -update to create): %v", err)
				}
				if out != string(want) {
					t.Errorf("workers=%d output differs from %s:\n%s", workers, golden, diffLines(string(want), out))
				}
			}
		})
	}
}

// writePrefix writes the first rows lines of the committed golden
// matrix (text format) to a new file, producing the "same file, before
// it grew" fixture for catch-up runs.
func writePrefix(t *testing.T, dir string, rows int) string {
	t.Helper()
	raw, err := os.ReadFile(filepath.Join("testdata", "golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(raw), "\n"), "\n")
	var cols int
	if _, err := fmt.Sscanf(lines[1], "%d %d", new(int), &cols); err != nil {
		t.Fatalf("parsing header %q: %v", lines[1], err)
	}
	out := append([]string{lines[0], fmt.Sprintf("%d %d", rows, cols)}, lines[2:2+rows]...)
	path := filepath.Join(dir, fmt.Sprintf("prefix%d.txt", rows))
	if err := os.WriteFile(path, []byte(strings.Join(out, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestIncrCLIStagedCatchUp drives -append the way it is meant to be
// used: repeated runs against a growing file, each folding only the
// rows added since the previous run, with the final query equal to the
// direct run over the full file.
func TestIncrCLIStagedCatchUp(t *testing.T) {
	testutil.CheckGoroutines(t)
	tmp := t.TempDir()
	prefix := writePrefix(t, tmp, 150)
	full := filepath.Join("testdata", "golden.txt")
	base := options{algo: "mh", threshold: 0.5, k: 80, seed: 3, top: 10, workers: 2}

	state := filepath.Join(tmp, "staged.ain")
	o := base
	o.in, o.appendState = prefix, state
	out := captureRun(t, o)
	if !strings.Contains(out, "incremental: 150 new rows folded (total 150, live 150 in 1 checkpoints)") {
		t.Fatalf("first append run did not fold the prefix:\n%s", out)
	}
	o.in = full
	out = captureRun(t, o)
	if !strings.Contains(out, "incremental: 150 new rows folded (total 300, live 300 in 1 checkpoints)") {
		t.Fatalf("second append run did not fold only the new rows:\n%s", out)
	}
	direct := base
	direct.in = full
	if got, want := pairsOnly(t, out), pairsOnly(t, captureRun(t, direct)); got != want {
		t.Fatalf("caught-up pairs differ from direct run:\n--- direct ---\n%s\n--- incremental ---\n%s", want, got)
	}

	// A shrunken input must be rejected, leaving the snapshot intact.
	o.in = prefix
	if err := run(o); err == nil || !strings.Contains(err.Error(), "shrank") {
		t.Fatalf("shrunken input accepted: %v", err)
	}
	// Mismatched sketch parameters must be rejected with a hint.
	bad := o
	bad.in, bad.seed = full, 99
	if err := run(bad); err == nil || !strings.Contains(err.Error(), "was built with") {
		t.Fatalf("seed mismatch accepted: %v", err)
	}
	// -resume reruns the query without rewriting the snapshot.
	info, err := os.Stat(state)
	if err != nil {
		t.Fatal(err)
	}
	r := base
	r.in, r.resumeState = full, state
	out = captureRun(t, r)
	if !strings.Contains(out, "incremental: 0 new rows folded") {
		t.Fatalf("resume run refolded rows:\n%s", out)
	}
	after, err := os.Stat(state)
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(info.ModTime()) || after.Size() != info.Size() {
		t.Fatal("-resume rewrote the snapshot")
	}
	// -resume against a missing snapshot is an error, not a silent
	// from-scratch rebuild.
	r.resumeState = filepath.Join(tmp, "nonexistent.ain")
	if err := run(r); err == nil || !strings.Contains(err.Error(), "does not exist") {
		t.Fatalf("missing resume snapshot accepted: %v", err)
	}
}

// TestIncrCLIWindow drives the sliding-window mode end to end: three
// -append -window 2 runs leave the last two batches (200 rows) live,
// and the query equals a plain -window 200 run over the full file.
func TestIncrCLIWindow(t *testing.T) {
	testutil.CheckGoroutines(t)
	tmp := t.TempDir()
	stages := []string{
		writePrefix(t, tmp, 100),
		writePrefix(t, tmp, 200),
		filepath.Join("testdata", "golden.txt"),
	}
	base := options{algo: "mh", threshold: 0.5, k: 80, seed: 3, top: 10, workers: 2}
	state := filepath.Join(tmp, "window.ain")
	var out string
	for _, in := range stages {
		o := base
		o.in, o.appendState, o.window = in, state, 2
		out = captureRun(t, o)
	}
	if !strings.Contains(out, "incremental: 100 new rows folded (total 300, live 200 in 2 checkpoints)") {
		t.Fatalf("windowed ingest did not expire the first batch:\n%s", out)
	}
	direct := base
	direct.in, direct.window = stages[2], 200
	if got, want := pairsOnly(t, out), pairsOnly(t, captureRun(t, direct)); got != want {
		t.Fatalf("windowed incremental pairs differ from plain -window run:\n--- plain ---\n%s\n--- incremental ---\n%s", want, got)
	}
	// Reopening the snapshot with a different window size is rejected.
	o := base
	o.in, o.appendState, o.window = stages[2], state, 3
	if err := run(o); err == nil || !strings.Contains(err.Error(), "window") {
		t.Fatalf("window mismatch accepted: %v", err)
	}
}
