// Command assocfind mines a dataset file for highly-similar column
// pairs (or high-confidence rules) using any of the paper's algorithms.
//
// Usage:
//
//	assocfind -in data.amx -algo mlsh -threshold 0.7
//	assocfind -in data.amx -algo mh -threshold 0.6 -workers -1
//	assocfind -in data.arows -algo kmh -threshold 0.5 -k 200 -stream
//	assocfind -in data.arows -algo mh -threshold 0.5 -stream -workers -1 -mem-budget 64M
//	assocfind -in baskets.txt -transactions -algo mh -threshold 0.8 -clusters
//	assocfind -in data.amx -rules -confidence 0.9
//	assocfind -in data.amx -algo apriori -threshold 0.5 -support 0.01
//	assocfind -in grow.arows -algo mh -threshold 0.5 -stream -append sketch.ain
//	assocfind -in grow.arows -algo kmh -threshold 0.5 -stream -resume sketch.ain
//	assocfind -in data.arows -algo mh -threshold 0.5 -window 1000
//	assocfind -in data.arows -algo bps -threshold 0.5 -sample-budget 64 -stream
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
	"strconv"
	"strings"
	"time"

	"assocmine"
	"assocmine/internal/dist"
)

type options struct {
	in          string
	algo        string
	threshold   float64
	k, r, l     int
	budget      int
	workers     int
	support     float64
	seed        uint64
	top         int
	doRules     bool
	conf        float64
	stats       bool
	stream      bool
	memBudget   string
	kernel      string
	timeout     time.Duration
	txns        bool
	clusters    bool
	appendState string
	resumeState string
	window      int
	distWorkers int
	worker      bool
	metrics     bool
	progress    bool
	metricsAddr string
	cpuprofile  string
	memprofile  string
	tracefile   string
}

func main() {
	var o options
	flag.StringVar(&o.in, "in", "", "input dataset file (required)")
	flag.StringVar(&o.algo, "algo", "mlsh", "algorithm: brute | mh | kmh | mlsh | hlsh | apriori | bps")
	flag.Float64Var(&o.threshold, "threshold", 0.7, "similarity threshold s*")
	flag.IntVar(&o.k, "k", 100, "min-hash values per column (mh, kmh, mlsh)")
	flag.IntVar(&o.r, "r", 0, "band size / sample bits (mlsh, hlsh); 0 = default")
	flag.IntVar(&o.l, "l", 0, "band count / runs (mlsh, hlsh); 0 = default")
	flag.IntVar(&o.budget, "sample-budget", 0, "bps only: expected accepted samples per at-threshold pair; 0 = default (32)")
	flag.IntVar(&o.workers, "workers", 0, "goroutines per phase; 0 or 1 = serial, -1 = all cores")
	flag.Float64Var(&o.support, "support", 0, "apriori only: minimum support fraction")
	flag.Uint64Var(&o.seed, "seed", 1, "random seed")
	flag.IntVar(&o.top, "top", 50, "print at most this many pairs/rules (0 = all)")
	flag.BoolVar(&o.doRules, "rules", false, "mine high-confidence rules instead of similar pairs")
	flag.Float64Var(&o.conf, "confidence", 0.9, "rules only: confidence threshold")
	flag.BoolVar(&o.stats, "stats", true, "print phase statistics")
	flag.BoolVar(&o.stream, "stream", false, "mine directly from disk (one file pass per phase; .txt, .arows or compressed .carows)")
	flag.StringVar(&o.memBudget, "mem-budget", "", "verification counter-table budget, e.g. 64K, 16M, 1G (bytes if no suffix); empty or 0 = unlimited. When the candidate counters exceed it, the exact pass spills sorted runs to disk")
	flag.StringVar(&o.kernel, "kernel", "auto", "verification kernel: auto | packed | scalar. auto packs candidate columns into popcount bitmaps when they fit in memory; results are bit-identical either way")
	flag.DurationVar(&o.timeout, "timeout", 0, "abort the mining run after this long, e.g. 30s, 5m; 0 = no limit. Aborted runs clean up their spill files and exit non-zero")
	flag.BoolVar(&o.txns, "transactions", false, "input is named-transaction format (item names per line)")
	flag.BoolVar(&o.clusters, "clusters", false, "also group the found pairs into column clusters")
	flag.StringVar(&o.appendState, "append", "", "incremental: maintain an ingest snapshot at this path — catch up on the input's unseen rows (O(new rows), creating the snapshot if missing), save it back, then query from the merged sketch (mh, mlsh, kmh)")
	flag.StringVar(&o.resumeState, "resume", "", "incremental: like -append but read-only — load the snapshot and catch up in memory without rewriting it")
	flag.IntVar(&o.window, "window", 0, "sliding window: with -append/-resume, keep only the last N catch-up batches live; otherwise mine only the trailing N rows of the input (mh, kmh, mlsh, brute)")
	flag.IntVar(&o.distWorkers, "dist-workers", 0, "scale out across this many worker subprocesses (requires -stream; mh, kmh, mlsh, bps). Output is bit-identical to the single-process run")
	flag.BoolVar(&o.worker, "worker", false, "internal: run as a scale-out worker subprocess, speaking the dist protocol on stdin/stdout (used by -dist-workers)")
	flag.BoolVar(&o.metrics, "metrics", false, "print per-phase metrics in Prometheus text format after the run")
	flag.BoolVar(&o.progress, "progress", false, "report per-phase progress on stderr while mining")
	flag.StringVar(&o.metricsAddr, "metrics-addr", "", "serve /metrics and /debug/vars on this address while running (e.g. :8080)")
	flag.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile to this file")
	flag.StringVar(&o.memprofile, "memprofile", "", "write a heap profile to this file at exit")
	flag.StringVar(&o.tracefile, "trace", "", "write a runtime execution trace to this file")
	flag.Parse()
	if o.worker {
		if err := dist.WorkerMain(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "assocfind:", err)
			os.Exit(1)
		}
		return
	}
	if o.in == "" {
		fmt.Fprintln(os.Stderr, "assocfind: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "assocfind:", err)
		os.Exit(1)
	}
}

func parseAlgo(s string) (assocmine.Algorithm, error) {
	switch strings.ToLower(s) {
	case "brute", "bruteforce":
		return assocmine.BruteForce, nil
	case "mh", "minhash":
		return assocmine.MinHash, nil
	case "kmh", "kminhash", "k-mh":
		return assocmine.KMinHash, nil
	case "mlsh", "minlsh", "m-lsh":
		return assocmine.MinLSH, nil
	case "hlsh", "hamminglsh", "h-lsh":
		return assocmine.HammingLSH, nil
	case "apriori", "a-priori":
		return assocmine.Apriori, nil
	case "bps", "biasedpairsampling":
		return assocmine.BPS, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", s)
	}
}

func run(o options) error {
	if o.appendState != "" && o.resumeState != "" {
		return errors.New("-append and -resume are mutually exclusive")
	}
	if incr := o.appendState != "" || o.resumeState != ""; incr && (o.doRules || o.txns) {
		return errors.New("-append/-resume cannot be combined with -rules or -transactions")
	}
	if o.distWorkers > 0 {
		if !o.stream {
			return errors.New("-dist-workers requires -stream")
		}
		if o.doRules || o.txns || o.appendState != "" || o.resumeState != "" || o.window != 0 || o.clusters {
			return errors.New("-dist-workers cannot be combined with -rules, -transactions, -append, -resume, -window or -clusters")
		}
		if o.memBudget != "" {
			return errors.New("-dist-workers cannot be combined with -mem-budget")
		}
	}
	stopDiag, err := startDiagnostics(o)
	if err != nil {
		return err
	}
	defer stopDiag()
	var (
		data  *assocmine.Dataset
		fd    *assocmine.FileDataset
		names []string
	)
	switch {
	case o.txns:
		data, names, err = assocmine.LoadTransactions(o.in)
	case o.stream:
		fd, err = assocmine.OpenFileDataset(o.in)
	default:
		data, err = assocmine.LoadDataset(o.in)
	}
	if err != nil {
		return err
	}
	label := func(c int) string {
		if names != nil {
			return names[c]
		}
		return fmt.Sprintf("c%d", c)
	}
	if fd != nil {
		fmt.Printf("streaming %s: %d rows x %d cols\n", o.in, fd.NumRows(), fd.NumCols())
	} else {
		fmt.Printf("loaded %s: %d rows x %d cols, %d ones\n", o.in, data.NumRows(), data.NumCols(), data.Ones())
	}

	if o.doRules {
		if data == nil {
			if data, err = fd.Load(); err != nil {
				return err
			}
		}
		res, err := assocmine.MineRules(data, assocmine.RuleConfig{
			MinConfidence: o.conf, K: o.k, Seed: o.seed,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%d high-confidence rules (confidence >= %.2f):\n", len(res.Rules), o.conf)
		for i, rr := range res.Rules {
			if o.top > 0 && i >= o.top {
				fmt.Printf("  ... and %d more\n", len(res.Rules)-o.top)
				break
			}
			fmt.Printf("  %s => %s  conf=%.3f (est %.3f)\n", label(rr.From), label(rr.To), rr.Confidence, rr.Estimate)
		}
		if o.stats {
			printStats(res.Stats)
		}
		return nil
	}

	a, err := parseAlgo(o.algo)
	if err != nil {
		return err
	}
	budget, err := parseByteSize(o.memBudget)
	if err != nil {
		return fmt.Errorf("-mem-budget: %w", err)
	}
	kernel, err := assocmine.ParseKernel(o.kernel)
	if err != nil {
		return fmt.Errorf("-kernel: %w", err)
	}
	cfg := assocmine.Config{
		Algorithm: a, Threshold: o.threshold, K: o.k, R: o.r, L: o.l,
		MinSupport: o.support, SampleBudget: o.budget, Seed: o.seed,
		Workers: o.workers, MemoryBudget: budget, VerifyKernel: kernel,
	}
	if o.appendState == "" && o.resumeState == "" {
		// Plain sliding-window mining; in incremental mode -window counts
		// batches and runIncremental derives the row window itself.
		cfg.Window = o.window
	}
	if o.timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), o.timeout)
		defer cancel()
		cfg.Context = ctx
	}
	var coll *assocmine.Collector
	if o.metrics || o.metricsAddr != "" {
		coll = assocmine.NewCollector()
		cfg.Recorder = coll
	}
	if o.metricsAddr != "" {
		if err := serveMetrics(o.metricsAddr, coll); err != nil {
			return err
		}
	}
	if o.progress {
		cfg.Progress = progressPrinter(os.Stderr)
	}
	if o.distWorkers > 0 {
		if err := runDist(o, a, cfg, coll, label); err != nil {
			return err
		}
		if o.metrics {
			fmt.Println("metrics:")
			return assocmine.WriteMetrics(os.Stdout, coll)
		}
		return nil
	}
	var res *assocmine.Result
	switch {
	case o.appendState != "" || o.resumeState != "":
		res, err = runIncremental(o, a, cfg, data, fd)
	case fd != nil:
		res, err = fd.SimilarPairs(cfg)
	default:
		res, err = assocmine.SimilarPairs(data, cfg)
	}
	if err != nil {
		if o.timeout > 0 && errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("mining timed out after %v", o.timeout)
		}
		return err
	}
	fmt.Printf("%d similar pairs (similarity >= %.2f) via %v:\n", len(res.Pairs), o.threshold, a)
	for i, p := range res.Pairs {
		if o.top > 0 && i >= o.top {
			fmt.Printf("  ... and %d more\n", len(res.Pairs)-o.top)
			break
		}
		fmt.Printf("  (%s, %s)  sim=%.3f\n", label(p.I), label(p.J), p.Similarity)
	}
	if o.clusters {
		if data == nil {
			if data, err = fd.Load(); err != nil {
				return err
			}
		}
		groups := assocmine.Cluster(data, res.Pairs, 0.5)
		fmt.Printf("%d clusters (pairwise density >= 0.5):\n", len(groups))
		for _, g := range groups {
			parts := make([]string, len(g))
			for i, c := range g {
				parts[i] = label(c)
			}
			fmt.Printf("  {%s}\n", strings.Join(parts, ", "))
		}
	}
	if o.stats {
		printStats(res.Stats)
	}
	if o.metrics {
		fmt.Println("metrics:")
		if err := assocmine.WriteMetrics(os.Stdout, coll); err != nil {
			return err
		}
	}
	return nil
}

// runDist routes the streamed run through the multi-process scale-out
// executor: the coordinator re-execs this binary with -worker for each
// subprocess. Printing matches the single-process path exactly (and so
// does the output, pair for pair and bit for bit).
func runDist(o options, a assocmine.Algorithm, cfg assocmine.Config, coll *assocmine.Collector, label func(int) string) error {
	var algo dist.Algo
	switch a {
	case assocmine.MinHash:
		algo = dist.MinHash
	case assocmine.KMinHash:
		algo = dist.KMinHash
	case assocmine.MinLSH:
		algo = dist.MinLSH
	case assocmine.BPS:
		algo = dist.BPS
	default:
		return fmt.Errorf("-dist-workers supports mh, kmh, mlsh and bps; %v runs single-process only", a)
	}
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	dcfg := dist.Config{
		Path:         o.in,
		Algorithm:    algo,
		Threshold:    o.threshold,
		K:            o.k,
		R:            o.r,
		L:            o.l,
		SampleBudget: o.budget,
		Seed:         o.seed,
		Workers:      o.distWorkers,
		WorkerArgv:   []string{exe, "-worker"},
		Context:      cfg.Context,
	}
	if coll != nil {
		dcfg.Recorder = coll
	}
	res, err := dist.Run(dcfg)
	if err != nil {
		if o.timeout > 0 && errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("mining timed out after %v", o.timeout)
		}
		return err
	}
	fmt.Printf("%d similar pairs (similarity >= %.2f) via %v:\n", len(res.Pairs), o.threshold, a)
	for i, p := range res.Pairs {
		if o.top > 0 && i >= o.top {
			fmt.Printf("  ... and %d more\n", len(res.Pairs)-o.top)
			break
		}
		fmt.Printf("  (%s, %s)  sim=%.3f\n", label(p.I), label(p.J), p.Similarity)
	}
	if o.stats {
		s := res.Stats
		fmt.Printf("phases: signatures %v, candidates %v (%d pairs), verification %v (%d kept); total %v\n",
			s.SignatureTime, s.CandidateTime, s.Candidates, s.VerifyTime, s.Verified, s.Total())
		fmt.Printf("dist: %d worker processes (%d restarts), %d jobs, %s shipped\n",
			s.Workers, s.Restarts, s.Jobs, formatBytes(s.BytesShipped))
	}
	return nil
}

// runIncremental answers the query through an Ingest snapshot: load the
// snapshot (or start a fresh one for -append), fold only the input's
// unseen rows, persist the result when appending, and mine from the
// merged sketch — the full input is rescanned only by the verification
// pass, never by the sketch phase.
func runIncremental(o options, a assocmine.Algorithm, cfg assocmine.Config, data *assocmine.Dataset, fd *assocmine.FileDataset) (*assocmine.Result, error) {
	path, save := o.appendState, true
	if path == "" {
		path, save = o.resumeState, false
	}
	cols := 0
	if fd != nil {
		cols = fd.NumCols()
	} else {
		cols = data.NumCols()
	}
	var in *assocmine.Ingest
	if _, statErr := os.Stat(path); statErr == nil {
		loaded, err := assocmine.LoadIngest(path)
		if err != nil {
			return nil, err
		}
		if loaded.Algorithm() != a || loaded.K() != o.k || loaded.Seed() != o.seed {
			return nil, fmt.Errorf("snapshot %s was built with -algo %v -k %d -seed %d; rerun with those flags or start a new snapshot",
				path, loaded.Algorithm(), loaded.K(), loaded.Seed())
		}
		if o.window != 0 && loaded.WindowBatches() != o.window {
			return nil, fmt.Errorf("snapshot %s uses a %d-batch window, -window asked for %d",
				path, loaded.WindowBatches(), o.window)
		}
		in = loaded
	} else if !save {
		return nil, fmt.Errorf("-resume: snapshot %s does not exist (use -append to create one)", path)
	} else {
		fresh, err := assocmine.NewIngest(a, cols, o.k, o.seed, o.window)
		if err != nil {
			return nil, err
		}
		in = fresh
	}
	var (
		n   int
		err error
	)
	if fd != nil {
		n, err = in.CatchUp(fd, o.workers)
	} else {
		n, err = in.CatchUpDataset(data, o.workers)
	}
	if err != nil {
		return nil, err
	}
	fmt.Printf("incremental: %d new rows folded (total %d, live %d in %d checkpoints)\n",
		n, in.Rows(), in.LiveRows(), in.Windows())
	if save {
		if err := in.Save(path); err != nil {
			return nil, err
		}
	}
	if data == nil {
		// Verification needs row access; the sketch phase above already
		// avoided rescanning old rows.
		if data, err = fd.Load(); err != nil {
			return nil, err
		}
	}
	if in.WindowBatches() > 0 {
		cfg.Window = int(in.LiveRows())
	}
	if a == assocmine.KMinHash {
		sk, err := in.Sketches()
		if err != nil {
			return nil, err
		}
		return assocmine.SimilarPairsWithSketches(data, sk, cfg)
	}
	sig, err := in.Signatures()
	if err != nil {
		return nil, err
	}
	return assocmine.SimilarPairsWithSignatures(data, sig, cfg)
}

// startDiagnostics starts the requested pprof/trace captures and
// returns the function that stops them (and writes the heap profile).
func startDiagnostics(o options) (func(), error) {
	stops := []func(){}
	stop := func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
	}
	if o.cpuprofile != "" {
		f, err := os.Create(o.cpuprofile)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if o.tracefile != "" {
		f, err := os.Create(o.tracefile)
		if err != nil {
			stop()
			return nil, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			stop()
			return nil, err
		}
		stops = append(stops, func() {
			trace.Stop()
			f.Close()
		})
	}
	if o.memprofile != "" {
		path := o.memprofile
		stops = append(stops, func() {
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintln(os.Stderr, "assocfind: memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "assocfind: memprofile:", err)
			}
			f.Close()
		})
	}
	return stop, nil
}

// serveMetrics exposes the collector on addr for the duration of the
// run: /metrics in Prometheus text format, /debug/vars via expvar. The
// handlers come from the shared registration helper assocserve uses,
// so the export wiring exists exactly once.
func serveMetrics(addr string, coll *assocmine.Collector) error {
	mux := http.NewServeMux()
	assocmine.RegisterMetricsHTTP(mux, "assocmine", coll)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "serving metrics on http://%s/metrics\n", ln.Addr())
	go func() { _ = http.Serve(ln, mux) }()
	return nil
}

// progressPrinter reports phase progress to w, one line per whole
// percent (or phase change), so even huge runs stay readable.
func progressPrinter(w *os.File) assocmine.ProgressFunc {
	lastPhase := ""
	lastPct := int64(-1)
	return func(phase string, done, total int64) {
		pct := int64(100)
		if total > 0 {
			pct = done * 100 / total
		}
		if phase == lastPhase && pct == lastPct {
			return
		}
		lastPhase, lastPct = phase, pct
		fmt.Fprintf(w, "progress: %-10s %3d%% (%d/%d)\n", phase, pct, done, total)
	}
}

func printStats(s assocmine.Stats) {
	fmt.Printf("phases: signatures %v, candidates %v (%d pairs), verification %v (%d kept); total %v\n",
		s.SignatureTime, s.CandidateTime, s.Candidates, s.VerifyTime, s.Verified, s.Total())
	if s.SignatureWorkers > 1 || s.CandidateWorkers > 1 || s.VerifyWorkers > 1 {
		fmt.Printf("workers: signatures %d, candidates %d, verification %d\n",
			s.SignatureWorkers, s.CandidateWorkers, s.VerifyWorkers)
	}
	if s.PairsSampled > 0 {
		fmt.Printf("sampled: %d draws inspected, %d accepted, %d duplicates\n",
			s.PairsSampled, s.SampleAccepts, s.SampleDups)
	}
	if s.BytesRead > 0 || s.ShardsStreamed > 0 || s.SpillRuns > 0 {
		fmt.Printf("out-of-core: %s read, %d shards streamed, %d spill runs (%s)\n",
			formatBytes(s.BytesRead), s.ShardsStreamed, s.SpillRuns, formatBytes(s.SpillBytes))
	}
	if s.CompressedBytesRead > 0 || s.SpillBytesCompressed > 0 {
		fmt.Printf("codec: %s compressed read, %s compressed spill, ratio %.2fx\n",
			formatBytes(s.CompressedBytesRead), formatBytes(s.SpillBytesCompressed), s.CodecRatio)
	}
	if s.PackedBatches > 0 {
		fmt.Printf("packed kernel: %d popcount words in %d batches\n", s.PackedWords, s.PackedBatches)
	}
}

// parseByteSize parses a human-friendly byte count: a plain integer, or
// an integer with a K/M/G suffix (powers of 1024, optional trailing B,
// case-insensitive). Empty means 0.
func parseByteSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	u := strings.ToUpper(s)
	u = strings.TrimSuffix(u, "B")
	shift := 0
	switch {
	case strings.HasSuffix(u, "K"):
		shift, u = 10, u[:len(u)-1]
	case strings.HasSuffix(u, "M"):
		shift, u = 20, u[:len(u)-1]
	case strings.HasSuffix(u, "G"):
		shift, u = 30, u[:len(u)-1]
	}
	n, err := strconv.ParseInt(u, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid size %q", s)
	}
	if n > (1<<62)>>shift {
		return 0, fmt.Errorf("size %q overflows", s)
	}
	return n << shift, nil
}

// formatBytes renders n in the largest binary unit that keeps it exact
// enough to read (one decimal).
func formatBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1f MiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1f KiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}
