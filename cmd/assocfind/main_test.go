package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"assocmine"
)

func TestParseAlgo(t *testing.T) {
	cases := map[string]assocmine.Algorithm{
		"brute": assocmine.BruteForce, "bruteforce": assocmine.BruteForce,
		"mh": assocmine.MinHash, "MinHash": assocmine.MinHash,
		"kmh": assocmine.KMinHash, "K-MH": assocmine.KMinHash,
		"mlsh": assocmine.MinLSH, "M-LSH": assocmine.MinLSH,
		"hlsh": assocmine.HammingLSH, "HammingLSH": assocmine.HammingLSH,
		"apriori": assocmine.Apriori, "A-priori": assocmine.Apriori,
		"bps": assocmine.BPS, "BPS": assocmine.BPS,
	}
	for in, want := range cases {
		got, err := parseAlgo(in)
		if err != nil || got != want {
			t.Errorf("parseAlgo(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseAlgo("nope"); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func writeFixture(t *testing.T) string {
	t.Helper()
	d, _, err := assocmine.GenerateSynthetic(assocmine.SyntheticOptions{
		Rows: 800, Cols: 60, PairsPerRange: 1, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.txt")
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunSimilarPairs(t *testing.T) {
	path := writeFixture(t)
	o := options{
		in: path, algo: "mlsh", threshold: 0.45, k: 60, seed: 1, top: 5,
		stats: true,
	}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunStreaming(t *testing.T) {
	path := writeFixture(t)
	o := options{
		in: path, algo: "kmh", threshold: 0.45, k: 60, seed: 1, top: 5,
		stream: true, clusters: true,
	}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunRules(t *testing.T) {
	path := writeFixture(t)
	o := options{in: path, doRules: true, conf: 0.8, k: 80, seed: 1, top: 5}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunTransactions(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baskets.txt")
	content := "milk bread\nmilk bread\nbeer\nbeer chips\nmilk bread beer\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	o := options{in: path, txns: true, algo: "brute", threshold: 0.5, top: 10}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

func TestRunTimeout(t *testing.T) {
	path := writeFixture(t)
	// A nanosecond deadline expires before the first row is scanned;
	// the run must abort with the timeout error, not hang or succeed.
	o := options{
		in: path, algo: "mh", threshold: 0.45, k: 60, seed: 1, top: 5,
		stream: true, timeout: time.Nanosecond,
	}
	err := run(o)
	if err == nil {
		t.Fatal("nanosecond timeout did not abort the run")
	}
	if !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v, want a timeout error", err)
	}
	// A generous deadline must not disturb the run.
	o.timeout = time.Minute
	if err := run(o); err != nil {
		t.Fatalf("run with generous timeout: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(options{in: "/nonexistent/x.txt", algo: "mh", threshold: 0.5}); err == nil {
		t.Error("missing file accepted")
	}
	path := writeFixture(t)
	if err := run(options{in: path, algo: "bogus", threshold: 0.5}); err == nil {
		t.Error("bad algorithm accepted")
	}
	if err := run(options{in: path, algo: "mh", threshold: -1}); err == nil {
		t.Error("bad threshold accepted")
	}
}
