package main

import "testing"

func TestParseByteSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"", 0, true},
		{"0", 0, true},
		{"4096", 4096, true},
		{" 4096 ", 4096, true},
		{"64K", 64 << 10, true},
		{"64k", 64 << 10, true},
		{"64KB", 64 << 10, true},
		{"16M", 16 << 20, true},
		{"16mb", 16 << 20, true},
		{"1G", 1 << 30, true},
		{"2GB", 2 << 30, true},
		{"-1", 0, false},
		{"12Q", 0, false},
		{"K", 0, false},
		{"1.5M", 0, false},
		{"9999999999999G", 0, false},
	}
	for _, tc := range cases {
		got, err := parseByteSize(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("parseByteSize(%q): err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("parseByteSize(%q) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestFormatBytes(t *testing.T) {
	cases := []struct {
		in   int64
		want string
	}{
		{0, "0 B"},
		{512, "512 B"},
		{2048, "2.0 KiB"},
		{3 << 20, "3.0 MiB"},
		{5 << 30, "5.0 GiB"},
	}
	for _, tc := range cases {
		if got := formatBytes(tc.in); got != tc.want {
			t.Errorf("formatBytes(%d) = %q, want %q", tc.in, got, tc.want)
		}
	}
}
