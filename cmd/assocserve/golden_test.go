package main

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"assocmine"
	"assocmine/internal/serve"
)

var update = flag.Bool("update", false, "rewrite the golden response files from current output")

// goldenServer builds a resident server over the committed 300x40
// dataset (the same file cmd/assocfind's goldens use) with a fixed
// seed, so every response body is fully deterministic.
func goldenServer(t *testing.T, workers int) *serve.Server {
	t.Helper()
	data, err := assocmine.LoadDataset(filepath.Join("testdata", "golden.txt"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(data, serve.Options{SigK: 80, SketchK: 64, Seed: 3, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestGoldenHTTP locks the HTTP responses for a set of committed
// request files: testdata/req_<name>.json in, testdata/resp_<name>.golden
// out. Responses carry no timing or run-dependent fields, so the
// bodies are compared byte-for-byte — and the workers=4 server must
// answer bit-identically to the workers=1 server, which is why a
// single golden covers both. Regenerate with:
//
//	go test ./cmd/assocserve -run TestGoldenHTTP -update
func TestGoldenHTTP(t *testing.T) {
	cases := []struct {
		name       string
		method     string
		path       string
		reqFile    bool
		wantStatus int
	}{
		// healthz reports the query counter, so it runs first while both
		// servers are fresh — the golden stays valid under -run filtering.
		{"healthz", http.MethodGet, "/healthz", false, http.StatusOK},
		{"pairs_mlsh", http.MethodPost, "/v1/pairs", true, http.StatusOK},
		{"pairs_kmh", http.MethodPost, "/v1/pairs", true, http.StatusOK},
		{"pairs_mh", http.MethodPost, "/v1/pairs", true, http.StatusOK},
		{"topk", http.MethodPost, "/v1/topk", true, http.StatusOK},
		{"toppairs", http.MethodPost, "/v1/toppairs", true, http.StatusOK},
		{"rules", http.MethodPost, "/v1/rules", true, http.StatusOK},
		{"expr_sim", http.MethodPost, "/v1/expr", true, http.StatusOK},
		{"expr_card", http.MethodPost, "/v1/expr", true, http.StatusOK},
		{"bad_threshold", http.MethodPost, "/v1/pairs", true, http.StatusBadRequest},
		// bps has no resident index (it samples raw rows per run), so the
		// planner must reject it cleanly rather than fall back.
		{"pairs_bps", http.MethodPost, "/v1/pairs", true, http.StatusBadRequest},
	}

	serial := goldenServer(t, 1)
	parallel := goldenServer(t, 4)

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body string
			if tc.reqFile {
				raw, err := os.ReadFile(filepath.Join("testdata", "req_"+tc.name+".json"))
				if err != nil {
					t.Fatal(err)
				}
				body = string(raw)
			}
			do := func(s *serve.Server) *httptest.ResponseRecorder {
				rr := httptest.NewRecorder()
				req := httptest.NewRequest(tc.method, tc.path, strings.NewReader(body))
				s.Handler().ServeHTTP(rr, req)
				return rr
			}
			got := do(serial)
			if got.Code != tc.wantStatus {
				t.Fatalf("status %d, want %d: %s", got.Code, tc.wantStatus, got.Body.String())
			}
			if par := do(parallel); par.Body.String() != got.Body.String() {
				t.Fatalf("workers=4 response differs from workers=1:\n--- w1 ---\n%s\n--- w4 ---\n%s",
					got.Body.String(), par.Body.String())
			}

			golden := filepath.Join("testdata", "resp_"+tc.name+".golden")
			if *update {
				if err := os.WriteFile(golden, got.Body.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden (run with -update to create): %v", err)
			}
			if got.Body.String() != string(want) {
				t.Errorf("response differs from %s:\n%s", golden, diffLines(string(want), got.Body.String()))
			}
		})
	}
}

func diffLines(want, got string) string {
	wl := strings.Split(want, "\n")
	gl := strings.Split(got, "\n")
	var sb strings.Builder
	n := len(wl)
	if len(gl) > n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w == g {
			continue
		}
		fmt.Fprintf(&sb, "line %d:\n  want: %q\n  got:  %q\n", i+1, w, g)
	}
	return sb.String()
}
