// Command assocserve is the resident similarity service: it computes
// (or loads) a dataset's min-hash signatures and bottom-k sketches
// once at startup, keeps them warm, and answers concurrent HTTP/JSON
// queries — threshold pair scans, top-k neighbors, association rules,
// and boolean-composition questions — until told to drain.
//
//	assocserve -in data.txt -addr :8080
//
// Endpoints (all POST except /healthz; see README "Serving"):
//
//	/healthz      liveness + index shape
//	/v1/pairs     {"threshold": 0.7}
//	/v1/topk      {"col": 3, "k": 10}
//	/v1/toppairs  {"n": 25}
//	/v1/rules     {"min_confidence": 0.9}
//	/v1/expr      {"op": "similarity", "a": "3|4", "b": "5"}
//	/v1/refresh   {}  — fold rows appended to -in since startup
//	/metrics      Prometheus text; /debug/vars expvar JSON
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"assocmine"
	"assocmine/internal/serve"
)

func main() {
	var (
		in          = flag.String("in", "", "input dataset file (required)")
		addr        = flag.String("addr", ":8080", "listen address")
		sigK        = flag.Int("k", 200, "min-hash signature size computed at startup")
		sketchK     = flag.Int("sketch-k", 256, "bottom-k sketch size computed at startup")
		seed        = flag.Uint64("seed", 1, "random seed for all hashing")
		workers     = flag.Int("workers", 1, "per-query worker budget; 0 or 1 = serial, -1 = all cores")
		timeout     = flag.Duration("timeout", 10*time.Second, "default per-query time budget when the request sets none; 0 = none")
		maxTimeout  = flag.Duration("max-timeout", time.Minute, "cap on any request's time budget")
		memBudget   = flag.String("mem-budget", "", "per-query verification memory budget, e.g. 64K, 16M, 1G; empty or 0 = unlimited")
		spillDir    = flag.String("spill-dir", "", "directory for budgeted-verification spill runs; empty = OS temp")
		maxTopK     = flag.Int("max-topk", 100, "cap on k/n in top-k queries")
		sigPath     = flag.String("sig", "", "preload signatures from this AMC1/SMC1 file instead of computing (disables /v1/refresh)")
		sketchPath  = flag.String("sketches", "", "preload sketches from this KMC1 file instead of computing (disables /v1/refresh)")
		snapMH      = flag.String("snapshot-mh", "", "AIN1 ingest snapshot for the signature index: resumed at startup, saved after every catch-up")
		snapKMH     = flag.String("snapshot-kmh", "", "AIN1 ingest snapshot for the sketch index")
		cacheSize   = flag.Int("cache", 256, "response cache entries for read-only queries; 0 disables")
		refreshInt  = flag.Duration("refresh-interval", 0, "poll -in at this interval and fold appended rows automatically; 0 disables")
		drainwindow = flag.Duration("drain", 30*time.Second, "how long shutdown waits for in-flight queries")
	)
	flag.Parse()
	if *in == "" {
		fmt.Fprintln(os.Stderr, "assocserve: -in is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*in, *addr, options{
		sigK: *sigK, sketchK: *sketchK, seed: *seed, workers: *workers,
		timeout: *timeout, maxTimeout: *maxTimeout, memBudget: *memBudget,
		spillDir: *spillDir, maxTopK: *maxTopK,
		sigPath: *sigPath, sketchPath: *sketchPath,
		snapMH: *snapMH, snapKMH: *snapKMH,
		cacheSize: *cacheSize, refreshInterval: *refreshInt, drain: *drainwindow,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "assocserve:", err)
		os.Exit(1)
	}
}

type options struct {
	sigK, sketchK       int
	seed                uint64
	workers             int
	timeout, maxTimeout time.Duration
	memBudget           string
	spillDir            string
	maxTopK             int
	sigPath, sketchPath string
	snapMH, snapKMH     string
	cacheSize           int
	refreshInterval     time.Duration
	drain               time.Duration
}

func run(in, addr string, o options) error {
	budget, err := parseByteSize(o.memBudget)
	if err != nil {
		return fmt.Errorf("-mem-budget: %w", err)
	}
	opts := serve.Options{
		SigK: o.sigK, SketchK: o.sketchK, Seed: o.seed, Workers: o.workers,
		DefaultTimeout: o.timeout, MaxTimeout: o.maxTimeout,
		MemoryBudget: budget, SpillDir: o.spillDir, MaxTopK: o.maxTopK,
		SnapshotMH: o.snapMH, SnapshotKMH: o.snapKMH,
		RefreshInterval: o.refreshInterval,
	}
	// CLI semantics: 0 disables; the library treats 0 as "default".
	if o.cacheSize <= 0 {
		opts.CacheSize = -1
	} else {
		opts.CacheSize = o.cacheSize
	}
	if o.sigPath != "" {
		if opts.Signatures, err = assocmine.LoadSignatures(o.sigPath); err != nil {
			return err
		}
	}
	if o.sketchPath != "" {
		if opts.Sketches, err = assocmine.LoadSketches(o.sketchPath); err != nil {
			return err
		}
	}
	start := time.Now()
	srv, err := serve.NewFromFile(in, opts)
	if err != nil {
		return err
	}
	bound, err := srv.Start(addr)
	if err != nil {
		return err
	}
	fmt.Printf("assocserve: serving %s on http://%s (index built in %v)\n",
		in, bound, time.Since(start).Round(time.Millisecond))

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("assocserve: draining...")
	ctx, cancel := context.WithTimeout(context.Background(), o.drain)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Printf("assocserve: done after %d queries\n", srv.Queries())
	return nil
}

// parseByteSize parses a human-friendly byte count: a plain integer, or
// an integer with a K/M/G suffix (powers of 1024, optional trailing B,
// case-insensitive). Empty means 0.
func parseByteSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	u := strings.ToUpper(s)
	u = strings.TrimSuffix(u, "B")
	switch {
	case strings.HasSuffix(u, "K"):
		mult, u = 1<<10, u[:len(u)-1]
	case strings.HasSuffix(u, "M"):
		mult, u = 1<<20, u[:len(u)-1]
	case strings.HasSuffix(u, "G"):
		mult, u = 1<<30, u[:len(u)-1]
	}
	n, err := strconv.ParseInt(u, 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("invalid byte size %q", s)
	}
	return n * mult, nil
}
