// Command benchjson times each pipeline phase serial vs parallel on
// the paper's synthetic workload and writes the results as JSON, for
// tracking the parallel speedup across machines and revisions.
//
// Usage:
//
//	benchjson -out BENCH_pipeline.json
//	benchjson -rows 5000 -cols 800 -workers 8
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"assocmine"
	"assocmine/internal/candidate"
	"assocmine/internal/gen"
	"assocmine/internal/lsh"
	"assocmine/internal/matrix"
	"assocmine/internal/minhash"
	"assocmine/internal/pairs"
	"assocmine/internal/verify"
)

type phaseResult struct {
	Phase        string  `json:"phase"`
	SerialNsOp   int64   `json:"serial_ns_op"`
	ParallelNsOp int64   `json:"parallel_ns_op"`
	Speedup      float64 `json:"speedup"`
}

// pipelineRun is one end-to-end SimilarPairs run instrumented with a
// metrics Collector: the per-phase counters the observability layer
// records, keyed by the Counter* names, plus wall-clock span seconds.
type pipelineRun struct {
	Algorithm    string             `json:"algorithm"`
	Counters     map[string]int64   `json:"counters"`
	PhaseSeconds map[string]float64 `json:"phase_seconds"`
}

// streamResult times one out-of-core pass over the on-disk dataset:
// ns per full-file pass and the implied disk throughput.
type streamResult struct {
	Pass        string  `json:"pass"`
	NsOp        int64   `json:"ns_op"`
	BytesPerSec float64 `json:"bytes_per_sec"`
}

type report struct {
	Rows       int            `json:"rows"`
	Cols       int            `json:"cols"`
	NumCPU     int            `json:"numcpu"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Workers    int            `json:"workers"`
	K          int            `json:"k"`
	FileBytes  int64          `json:"file_bytes"`
	Phases     []phaseResult  `json:"phases"`
	Streamed   []streamResult `json:"streamed"`
	Pipeline   []pipelineRun  `json:"pipeline"`
}

func main() {
	var (
		out     = flag.String("out", "BENCH_pipeline.json", "output file (- for stdout)")
		rows    = flag.Int("rows", 2000, "synthetic matrix rows")
		cols    = flag.Int("cols", 400, "synthetic matrix columns")
		k       = flag.Int("k", 50, "signature size")
		workers = flag.Int("workers", 4, "worker count for the parallel runs")
	)
	flag.Parse()
	if err := run(*out, *rows, *cols, *k, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func nsOp(fn func() error) (int64, error) {
	var err error
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if e := fn(); e != nil {
				err = e
				b.Fatal(e)
			}
		}
	})
	return r.NsPerOp(), err
}

func phase(name string, serial, parallel func() error) (phaseResult, error) {
	s, err := nsOp(serial)
	if err != nil {
		return phaseResult{}, fmt.Errorf("%s serial: %w", name, err)
	}
	p, err := nsOp(parallel)
	if err != nil {
		return phaseResult{}, fmt.Errorf("%s parallel: %w", name, err)
	}
	return phaseResult{Phase: name, SerialNsOp: s, ParallelNsOp: p, Speedup: float64(s) / float64(p)}, nil
}

func run(out string, rows, cols, k, workers int) error {
	m, _, err := gen.Synthetic(gen.SyntheticConfig{
		Rows: rows, Cols: cols, PairsPerRange: 2, Seed: 7,
	})
	if err != nil {
		return err
	}
	sig, err := minhash.Compute(m.Stream(), k, 7)
	if err != nil {
		return err
	}
	// Dense strided candidate list so verification dominates over setup.
	var cand []pairs.Scored
	for i := int32(0); i < int32(cols); i++ {
		for j := i + 1; j < int32(cols); j += 5 {
			cand = append(cand, pairs.Scored{Pair: pairs.Make(i, j)})
		}
	}
	rep := report{
		Rows: rows, Cols: cols,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
		K:          k,
	}
	specs := []struct {
		name             string
		serial, parallel func() error
	}{
		{"signatures/minhash",
			func() error { _, err := minhash.Compute(m.Stream(), k, 7); return err },
			func() error { _, err := minhash.ComputeParallel(m, k, 7, workers); return err }},
		{"candidates/rowsort",
			func() error { _, _, err := candidate.RowSortMH(sig, 0.4); return err },
			func() error { _, _, err := candidate.RowSortMHParallel(sig, 0.4, workers); return err }},
		{"candidates/lsh-banding",
			func() error { _, _, err := lsh.Candidates(sig, 5, 10); return err },
			func() error { _, _, err := lsh.CandidatesParallel(sig, 5, 10, workers); return err }},
		{"verify/exact",
			func() error { _, _, err := verify.Exact(m.Stream(), cand, 0.3); return err },
			func() error { _, _, err := verify.ExactParallel(m.Stream(), cand, 0.3, workers); return err }},
		{"verify/exact-fanout",
			func() error { _, _, err := verify.Exact(m.Stream(), cand, 0.3); return err },
			func() error {
				_, _, err := verify.ExactParallel(hideConcurrent{m.Stream()}, cand, 0.3, workers)
				return err
			}},
	}
	for _, s := range specs {
		r, err := phase(s.name, s.serial, s.parallel)
		if err != nil {
			return err
		}
		rep.Phases = append(rep.Phases, r)
		fmt.Fprintf(os.Stderr, "%-24s serial %12d ns/op  parallel %12d ns/op  speedup %.2fx\n",
			r.Phase, r.SerialNsOp, r.ParallelNsOp, r.Speedup)
	}
	if err := streamedPasses(&rep, m, cand, k, workers); err != nil {
		return err
	}
	d := assocmine.WrapMatrix(m)
	for _, algo := range []assocmine.Algorithm{assocmine.MinHash, assocmine.MinLSH} {
		coll := assocmine.NewCollector()
		_, err := assocmine.SimilarPairs(d, assocmine.Config{
			Algorithm: algo, Threshold: 0.5, K: k, Seed: 7,
			Workers: workers, Recorder: coll,
		})
		if err != nil {
			return err
		}
		snap := coll.Snapshot()
		run := pipelineRun{
			Algorithm:    algo.String(),
			Counters:     snap.Counters,
			PhaseSeconds: map[string]float64{},
		}
		for name, sp := range snap.Spans {
			run.PhaseSeconds[name] = sp.Total.Seconds()
		}
		rep.Pipeline = append(rep.Pipeline, run)
		fmt.Fprintf(os.Stderr, "pipeline %-8s candidates %d, verified %d, false positives %d\n",
			run.Algorithm, run.Counters["candidates"], run.Counters["pairs_verified"], run.Counters["false_positives"])
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(out, buf, 0o644)
}

// streamedPasses times the out-of-core pipeline passes over a real
// on-disk .arows file — serial scan, fanned-out scan, and the budgeted
// spilling verification — reporting bytes/sec per full-file pass.
func streamedPasses(rep *report, m *matrix.Matrix, cand []pairs.Scored, k, workers int) error {
	dir, err := os.MkdirTemp("", "benchjson-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := dir + "/bench.arows"
	if err := matrix.SaveRowBinary(path, m.Stream()); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	rep.FileBytes = info.Size()
	fsrc, err := matrix.OpenFileSource(path)
	if err != nil {
		return err
	}
	// A budget an order of magnitude below the dense counter table, so
	// the spill machinery genuinely engages.
	budget := verify.Budget{Bytes: int64(len(cand)) * 12 / 10, Dir: dir}
	passes := []struct {
		name string
		fn   func() error
	}{
		{"stream/signatures",
			func() error { _, err := minhash.Compute(fsrc, k, 7); return err }},
		{"stream/signatures-fanout",
			func() error { _, _, err := minhash.ComputeStream(fsrc, k, 7, workers); return err }},
		{"stream/verify",
			func() error { _, _, err := verify.Exact(fsrc, cand, 0.3); return err }},
		{"stream/verify-fanout",
			func() error { _, _, err := verify.ExactParallel(fsrc, cand, 0.3, workers); return err }},
		{"stream/verify-spill",
			func() error { _, _, err := verify.ExactBudgeted(fsrc, cand, 0.3, budget, workers, nil); return err }},
	}
	for _, p := range passes {
		ns, err := nsOp(p.fn)
		if err != nil {
			return fmt.Errorf("%s: %w", p.name, err)
		}
		r := streamResult{
			Pass:        p.name,
			NsOp:        ns,
			BytesPerSec: float64(info.Size()) / (float64(ns) / 1e9),
		}
		rep.Streamed = append(rep.Streamed, r)
		fmt.Fprintf(os.Stderr, "%-26s %12d ns/pass  %8.1f MB/s\n",
			r.Pass, r.NsOp, r.BytesPerSec/1e6)
	}
	return nil
}

// hideConcurrent masks ConcurrentScan so ExactParallel exercises the
// single-reader fan-out path, the one streaming sources take.
type hideConcurrent struct{ src matrix.RowSource }

func (h hideConcurrent) NumRows() int                           { return h.src.NumRows() }
func (h hideConcurrent) NumCols() int                           { return h.src.NumCols() }
func (h hideConcurrent) Scan(fn func(int, []int32) error) error { return h.src.Scan(fn) }
