// Command benchjson times each pipeline phase serial vs parallel on
// the paper's synthetic workload and writes the results as JSON, for
// tracking the parallel speedup across machines and revisions. Each
// phase also records allocations per op, so allocation regressions in
// the hot loops show up in the same report as time regressions.
//
// Usage:
//
//	benchjson -out BENCH_pipeline.json
//	benchjson -rows 5000 -cols 800 -workers 8
//	benchjson -against BENCH_pipeline.json -out -    # fail on >15% regression
//	benchjson -against BENCH_pipeline.json -update   # refresh the baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"

	"assocmine"
	"assocmine/internal/bps"
	"assocmine/internal/candidate"
	"assocmine/internal/dist"
	"assocmine/internal/gen"
	"assocmine/internal/kminhash"
	"assocmine/internal/lsh"
	"assocmine/internal/matrix"
	"assocmine/internal/minhash"
	"assocmine/internal/pairs"
	"assocmine/internal/verify"
)

// regressionTolerance is how much slower a phase may get, relative to
// the -against baseline, before benchjson exits nonzero. Benchmarks on
// shared machines jitter; 15% is comfortably above that noise while
// still catching a dropped kernel or an accidental O(n^2).
const regressionTolerance = 1.15

type phaseResult struct {
	Phase            string  `json:"phase"`
	SerialNsOp       int64   `json:"serial_ns_op"`
	ParallelNsOp     int64   `json:"parallel_ns_op"`
	Speedup          float64 `json:"speedup"`
	SerialAllocsOp   int64   `json:"serial_allocs_op"`
	SerialBytesOp    int64   `json:"serial_bytes_op"`
	ParallelAllocsOp int64   `json:"parallel_allocs_op"`
	ParallelBytesOp  int64   `json:"parallel_bytes_op"`
	// ParallelSkipped marks phases whose parallel variant was not timed
	// because GOMAXPROCS=1: on one core the numbers would measure
	// fan-out overhead, not parallelism, and would poison any baseline
	// they were compared against.
	ParallelSkipped bool `json:"parallel_skipped,omitempty"`
}

// pipelineRun is one end-to-end SimilarPairs run instrumented with a
// metrics Collector: the per-phase counters the observability layer
// records, keyed by the Counter* names, plus wall-clock span seconds.
type pipelineRun struct {
	Algorithm    string             `json:"algorithm"`
	Kernel       string             `json:"kernel"`
	Counters     map[string]int64   `json:"counters"`
	PhaseSeconds map[string]float64 `json:"phase_seconds"`
}

// streamResult times one out-of-core pass over the on-disk dataset:
// ns per full-file pass and the implied disk throughput.
type streamResult struct {
	Pass        string  `json:"pass"`
	NsOp        int64   `json:"ns_op"`
	BytesPerSec float64 `json:"bytes_per_sec"`
}

// incrResult compares recomputing a sketch from scratch against
// resuming a saved fold state and appending only the new rows — the
// incremental-ingestion payoff, which should approach total/new.
type incrResult struct {
	Pass       string  `json:"pass"`
	BatchNsOp  int64   `json:"batch_ns_op"`
	AppendNsOp int64   `json:"append_ns_op"`
	Speedup    float64 `json:"speedup"`
	NewRows    int     `json:"new_rows"`
}

type report struct {
	Rows       int   `json:"rows"`
	Cols       int   `json:"cols"`
	NumCPU     int   `json:"numcpu"`
	GoMaxProcs int   `json:"gomaxprocs"`
	Workers    int   `json:"workers"`
	K          int   `json:"k"`
	FileBytes  int64 `json:"file_bytes"`
	// CompressedFileBytes is the size of the same dataset in the
	// ".carows" compressed format; SpillBytesRaw and
	// SpillBytesCompressed are the spill volume of one budgeted
	// verification pass under each spill codec.
	CompressedFileBytes  int64          `json:"compressed_file_bytes,omitempty"`
	SpillBytesRaw        int64          `json:"spill_bytes_raw,omitempty"`
	SpillBytesCompressed int64          `json:"spill_bytes_compressed,omitempty"`
	Phases               []phaseResult  `json:"phases"`
	Streamed             []streamResult `json:"streamed"`
	Incr                 []incrResult   `json:"incr,omitempty"`
	Pipeline             []pipelineRun  `json:"pipeline"`
}

func main() {
	var (
		out       = flag.String("out", "BENCH_pipeline.json", "output file (- for stdout)")
		rows      = flag.Int("rows", 2000, "synthetic matrix rows")
		cols      = flag.Int("cols", 400, "synthetic matrix columns")
		k         = flag.Int("k", 50, "signature size")
		workers   = flag.Int("workers", 4, "worker count for the parallel runs")
		kernel    = flag.String("kernel", "auto", "verification kernel for the pipeline runs: auto | packed | scalar")
		against   = flag.String("against", "", "baseline report to compare phases against; >15% ns/op regression fails")
		update    = flag.Bool("update", false, "with -against: rewrite the baseline instead of failing on regression")
		scale     = flag.Bool("scale", false, "run the distributed scale tier (multi-process dist.Run over a Zipfian dataset) instead of the phase benchmarks")
		scaleRows = flag.Int("scale-rows", 10_000_000, "scale tier rows")
		scaleCols = flag.Int("scale-cols", 65536, "scale tier columns")
		scaleKind = flag.String("scale-kind", "market", "scale tier row shape: market | clicks")
		worker    = flag.Bool("worker", false, "internal: run as a scale-tier worker subprocess")
	)
	flag.Parse()
	if *worker {
		if err := dist.WorkerMain(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson worker:", err)
			os.Exit(1)
		}
		return
	}
	if *scale {
		if err := runScale(*out, *scaleKind, *scaleRows, *scaleCols, *against, *update); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	vk, err := assocmine.ParseKernel(*kernel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(2)
	}
	if err := run(*out, *rows, *cols, *k, *workers, vk, *against, *update); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// benchMetrics is one timed loop's cost per operation.
type benchMetrics struct {
	nsOp, allocsOp, bytesOp int64
}

func measure(fn func() error) (benchMetrics, error) {
	var err error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if e := fn(); e != nil {
				err = e
				b.Fatal(e)
			}
		}
	})
	return benchMetrics{nsOp: r.NsPerOp(), allocsOp: r.AllocsPerOp(), bytesOp: r.AllocedBytesPerOp()}, err
}

func phase(name string, serial, parallel func() error) (phaseResult, error) {
	s, err := measure(serial)
	if err != nil {
		return phaseResult{}, fmt.Errorf("%s serial: %w", name, err)
	}
	if runtime.GOMAXPROCS(0) == 1 {
		return phaseResult{
			Phase:      name,
			SerialNsOp: s.nsOp, SerialAllocsOp: s.allocsOp, SerialBytesOp: s.bytesOp,
			ParallelSkipped: true,
		}, nil
	}
	p, err := measure(parallel)
	if err != nil {
		return phaseResult{}, fmt.Errorf("%s parallel: %w", name, err)
	}
	return phaseResult{
		Phase:      name,
		SerialNsOp: s.nsOp, ParallelNsOp: p.nsOp,
		Speedup:        float64(s.nsOp) / float64(p.nsOp),
		SerialAllocsOp: s.allocsOp, SerialBytesOp: s.bytesOp,
		ParallelAllocsOp: p.allocsOp, ParallelBytesOp: p.bytesOp,
	}, nil
}

func run(out string, rows, cols, k, workers int, kernel assocmine.Kernel, against string, update bool) error {
	fmt.Fprintf(os.Stderr, "benchjson: numcpu=%d gomaxprocs=%d workers=%d rows=%d cols=%d k=%d\n",
		runtime.NumCPU(), runtime.GOMAXPROCS(0), workers, rows, cols, k)
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Fprintln(os.Stderr, "benchjson: GOMAXPROCS=1 — parallel phase variants are skipped and marked parallel_skipped (on one core they would measure fan-out overhead, not parallelism)")
	}
	m, _, err := gen.Synthetic(gen.SyntheticConfig{
		Rows: rows, Cols: cols, PairsPerRange: 2, Seed: 7,
	})
	if err != nil {
		return err
	}
	sig, err := minhash.Compute(m.Stream(), k, 7)
	if err != nil {
		return err
	}
	// Dense strided candidate list so verification dominates over setup.
	var cand []pairs.Scored
	for i := int32(0); i < int32(cols); i++ {
		for j := i + 1; j < int32(cols); j += 5 {
			cand = append(cand, pairs.Scored{Pair: pairs.Make(i, j)})
		}
	}
	rep := report{
		Rows: rows, Cols: cols,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    workers,
		K:          k,
	}
	sup, err := bps.Supports(m.Stream())
	if err != nil {
		return err
	}
	bopt := func(w int) bps.Options {
		return bps.Options{Threshold: 0.5, Budget: 32, Seed: 7, Workers: w}
	}
	popt := func(w int) verify.PackedOptions { return verify.PackedOptions{Workers: w} }
	specs := []struct {
		name             string
		serial, parallel func() error
	}{
		{"signatures/minhash",
			func() error { _, err := minhash.Compute(m.Stream(), k, 7); return err },
			func() error { _, err := minhash.ComputeParallel(m, k, 7, workers); return err }},
		{"candidates/rowsort",
			func() error { _, _, err := candidate.RowSortMH(sig, 0.4); return err },
			func() error { _, _, err := candidate.RowSortMHParallel(sig, 0.4, workers); return err }},
		{"candidates/lsh-banding",
			func() error { _, _, err := lsh.Candidates(sig, 5, 10); return err },
			func() error { _, _, err := lsh.CandidatesParallel(sig, 5, 10, workers); return err }},
		{"candidates/bps-sample",
			func() error { _, _, err := bps.Sample(m.Stream(), sup, bopt(1)); return err },
			func() error { _, _, err := bps.Sample(m.Stream(), sup, bopt(workers)); return err }},
		{"verify/exact",
			func() error { _, _, err := verify.ExactPacked(m.Stream(), cand, 0.3, popt(1)); return err },
			func() error { _, _, err := verify.ExactPacked(m.Stream(), cand, 0.3, popt(workers)); return err }},
		{"verify/exact-scalar",
			func() error { _, _, err := verify.Exact(m.Stream(), cand, 0.3); return err },
			func() error { _, _, err := verify.ExactParallel(m.Stream(), cand, 0.3, workers); return err }},
		{"verify/exact-fanout",
			func() error { _, _, err := verify.Exact(m.Stream(), cand, 0.3); return err },
			func() error {
				_, _, err := verify.ExactParallel(hideConcurrent{m.Stream()}, cand, 0.3, workers)
				return err
			}},
	}
	for _, s := range specs {
		r, err := phase(s.name, s.serial, s.parallel)
		if err != nil {
			return err
		}
		rep.Phases = append(rep.Phases, r)
		if r.ParallelSkipped {
			fmt.Fprintf(os.Stderr, "%-24s serial %12d ns/op %8d B/op %6d allocs/op  parallel skipped (GOMAXPROCS=1)\n",
				r.Phase, r.SerialNsOp, r.SerialBytesOp, r.SerialAllocsOp)
		} else {
			fmt.Fprintf(os.Stderr, "%-24s serial %12d ns/op %8d B/op %6d allocs/op  parallel %12d ns/op  speedup %.2fx\n",
				r.Phase, r.SerialNsOp, r.SerialBytesOp, r.SerialAllocsOp, r.ParallelNsOp, r.Speedup)
		}
	}
	if err := streamedPasses(&rep, m, cand, sup, k, workers); err != nil {
		return err
	}
	if err := incrPasses(&rep, m, k); err != nil {
		return err
	}
	d := assocmine.WrapMatrix(m)
	for _, algo := range []assocmine.Algorithm{assocmine.MinHash, assocmine.MinLSH, assocmine.BPS} {
		coll := assocmine.NewCollector()
		_, err := assocmine.SimilarPairs(d, assocmine.Config{
			Algorithm: algo, Threshold: 0.5, K: k, Seed: 7,
			Workers: workers, Recorder: coll, VerifyKernel: kernel,
		})
		if err != nil {
			return err
		}
		snap := coll.Snapshot()
		run := pipelineRun{
			Algorithm:    algo.String(),
			Kernel:       kernel.String(),
			Counters:     snap.Counters,
			PhaseSeconds: map[string]float64{},
		}
		for name, sp := range snap.Spans {
			run.PhaseSeconds[name] = sp.Total.Seconds()
		}
		rep.Pipeline = append(rep.Pipeline, run)
		fmt.Fprintf(os.Stderr, "pipeline %-8s candidates %d, verified %d, false positives %d, packed words %d\n",
			run.Algorithm, run.Counters["candidates"], run.Counters["pairs_verified"],
			run.Counters["false_positives"], run.Counters["packed_words"])
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if against != "" {
		if err := compareBaseline(against, rep, buf, update); err != nil {
			return err
		}
	}
	if out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(out, buf, 0o644)
}

// compareBaseline diffs the fresh phase timings against a committed
// report. Any phase whose serial or parallel ns/op grew past
// regressionTolerance fails the run — unless -update was given, in
// which case the baseline file is rewritten with the fresh numbers.
func compareBaseline(path string, rep report, buf []byte, update bool) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	old := make(map[string]phaseResult, len(base.Phases))
	for _, p := range base.Phases {
		old[p.Phase] = p
	}
	var regressions []string
	check := func(label string, got, want int64) {
		if want > 0 && got > 0 && float64(got) > float64(want)*regressionTolerance {
			regressions = append(regressions, fmt.Sprintf(
				"%s: %d ns/op vs baseline %d (%.0f%% slower)",
				label, got, want, 100*(float64(got)/float64(want)-1)))
		}
	}
	for _, p := range rep.Phases {
		b, ok := old[p.Phase]
		if !ok {
			continue
		}
		check(p.Phase+" serial", p.SerialNsOp, b.SerialNsOp)
		// A parallel variant skipped on either side (GOMAXPROCS=1) has
		// no meaningful number to compare.
		if !p.ParallelSkipped && !b.ParallelSkipped {
			check(p.Phase+" parallel", p.ParallelNsOp, b.ParallelNsOp)
		}
	}
	oldStream := make(map[string]streamResult, len(base.Streamed))
	for _, s := range base.Streamed {
		oldStream[s.Pass] = s
	}
	for _, s := range rep.Streamed {
		if b, ok := oldStream[s.Pass]; ok {
			check(s.Pass, s.NsOp, b.NsOp)
		}
	}
	if len(regressions) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: no phase regressed >%.0f%% vs %s\n", (regressionTolerance-1)*100, path)
		return nil
	}
	for _, r := range regressions {
		fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", r)
	}
	if update {
		fmt.Fprintf(os.Stderr, "benchjson: -update set, rewriting %s with fresh numbers\n", path)
		return os.WriteFile(path, buf, 0o644)
	}
	return fmt.Errorf("%d phase(s) regressed >%.0f%% vs %s (rerun with -update to accept)",
		len(regressions), (regressionTolerance-1)*100, path)
}

// streamedPasses times the out-of-core pipeline passes over real
// on-disk files — serial scan, fanned-out scan, the packed kernel fed
// straight from disk, and the budgeted spilling verification —
// reporting bytes/sec per full-file pass. Every pass runs twice, once
// over the raw ".arows" file (stream/) and once over the compressed
// ".carows" file (cstream/), so the codec's decode cost and byte
// savings land in the same report; the spill pass additionally runs
// with the raw spill codec (stream/verify-spill-raw) to price the
// compressed spill runs.
func streamedPasses(rep *report, m *matrix.Matrix, cand []pairs.Scored, sup []int64, k, workers int) error {
	dir, err := os.MkdirTemp("", "benchjson-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := dir + "/bench.arows"
	if err := matrix.SaveRowBinary(path, m.Stream()); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	rep.FileBytes = info.Size()
	fsrc, err := matrix.OpenFileSource(path)
	if err != nil {
		return err
	}
	cpath := dir + "/bench.carows"
	if err := matrix.SaveRowCompressed(cpath, m.Stream()); err != nil {
		return err
	}
	cinfo, err := os.Stat(cpath)
	if err != nil {
		return err
	}
	rep.CompressedFileBytes = cinfo.Size()
	csrc, err := matrix.OpenFileSource(cpath)
	if err != nil {
		return err
	}
	// A budget an order of magnitude below the dense counter table, so
	// the spill machinery genuinely engages.
	budget := verify.Budget{Bytes: int64(len(cand)) * 12 / 10, Dir: dir}
	budgetRaw := budget
	budgetRaw.Codec = verify.SpillRaw
	passes := []struct {
		name string
		size int64
		fn   func() error
	}{
		{"stream/signatures", info.Size(),
			func() error { _, err := minhash.Compute(fsrc, k, 7); return err }},
		{"stream/signatures-fanout", info.Size(),
			func() error { _, _, err := minhash.ComputeStream(fsrc, k, 7, workers); return err }},
		{"stream/bps-sample", info.Size(),
			func() error {
				_, _, err := bps.Sample(fsrc, sup, bps.Options{Threshold: 0.5, Budget: 32, Seed: 7, Workers: workers})
				return err
			}},
		{"stream/verify", info.Size(),
			func() error { _, _, err := verify.Exact(fsrc, cand, 0.3); return err }},
		{"stream/verify-packed", info.Size(),
			func() error {
				_, _, err := verify.ExactPacked(fsrc, cand, 0.3, verify.PackedOptions{Workers: 1})
				return err
			}},
		{"stream/verify-fanout", info.Size(),
			func() error { _, _, err := verify.ExactParallel(fsrc, cand, 0.3, workers); return err }},
		{"stream/verify-spill", info.Size(),
			func() error { _, _, err := verify.ExactBudgeted(fsrc, cand, 0.3, budget, workers, nil); return err }},
		{"stream/verify-spill-raw", info.Size(),
			func() error { _, _, err := verify.ExactBudgeted(fsrc, cand, 0.3, budgetRaw, workers, nil); return err }},
		{"cstream/signatures", cinfo.Size(),
			func() error { _, err := minhash.Compute(csrc, k, 7); return err }},
		{"cstream/signatures-fanout", cinfo.Size(),
			func() error { _, _, err := minhash.ComputeStream(csrc, k, 7, workers); return err }},
		{"cstream/bps-sample", cinfo.Size(),
			func() error {
				_, _, err := bps.Sample(csrc, sup, bps.Options{Threshold: 0.5, Budget: 32, Seed: 7, Workers: workers})
				return err
			}},
		{"cstream/verify", cinfo.Size(),
			func() error { _, _, err := verify.Exact(csrc, cand, 0.3); return err }},
		{"cstream/verify-packed", cinfo.Size(),
			func() error {
				_, _, err := verify.ExactPacked(csrc, cand, 0.3, verify.PackedOptions{Workers: 1})
				return err
			}},
		{"cstream/verify-spill", cinfo.Size(),
			func() error { _, _, err := verify.ExactBudgeted(csrc, cand, 0.3, budget, workers, nil); return err }},
	}
	for _, p := range passes {
		met, err := measure(p.fn)
		if err != nil {
			return fmt.Errorf("%s: %w", p.name, err)
		}
		r := streamResult{
			Pass:        p.name,
			NsOp:        met.nsOp,
			BytesPerSec: float64(p.size) / (float64(met.nsOp) / 1e9),
		}
		rep.Streamed = append(rep.Streamed, r)
		fmt.Fprintf(os.Stderr, "%-26s %12d ns/pass  %8.1f MB/s\n",
			r.Pass, r.NsOp, r.BytesPerSec/1e6)
	}
	// One un-timed budgeted pass prices the spill codec: the compressed
	// run accounts both its own bytes and the raw-equivalent volume.
	_, vst, err := verify.ExactBudgeted(fsrc, cand, 0.3, budget, workers, nil)
	if err != nil {
		return err
	}
	rep.SpillBytesRaw = vst.SpillBytesRaw
	rep.SpillBytesCompressed = vst.SpillBytesCompressed
	fmt.Fprintf(os.Stderr, "codec: file %d -> %d bytes (%.2fx), spill %d -> %d bytes (%.2fx)\n",
		rep.FileBytes, rep.CompressedFileBytes, float64(rep.FileBytes)/float64(rep.CompressedFileBytes),
		rep.SpillBytesRaw, rep.SpillBytesCompressed, float64(rep.SpillBytesRaw)/float64(rep.SpillBytesCompressed))
	return nil
}

// incrPasses times the incremental-ingestion payoff: appending the
// last 10% of the rows to a prebuilt fold state (clone + fold tail,
// the work a resumed ingest does per catch-up) against recomputing the
// sketch over the whole matrix. Both sides run serial, so the ratio
// isolates the O(new rows) resume from parallel speedup.
func incrPasses(rep *report, m *matrix.Matrix, k int) error {
	rows := m.NumRows()
	newRows := rows / 10
	from := rows - newRows
	tail := &matrix.TailSource{Src: m.Stream(), From: from}
	prefix := headSource{src: m.Stream(), n: from}

	mhBase, err := minhash.NewFoldState(m.NumCols(), k, 7)
	if err != nil {
		return err
	}
	if _, err := minhash.FoldStream(prefix, mhBase, 1); err != nil {
		return err
	}
	kmhBase, err := kminhash.NewFoldState(m.NumCols(), k, 7)
	if err != nil {
		return err
	}
	if _, err := kminhash.FoldStream(prefix, kmhBase, 1); err != nil {
		return err
	}
	passes := []struct {
		name          string
		batch, append func() error
	}{
		{"incr/append-mh",
			func() error { _, err := minhash.Compute(m.Stream(), k, 7); return err },
			func() error {
				st := mhBase.Clone()
				_, err := minhash.FoldStream(tail, st, 1)
				return err
			}},
		{"incr/append-kmh",
			func() error { _, err := kminhash.Compute(m.Stream(), k, 7); return err },
			func() error {
				st := kmhBase.Clone()
				_, err := kminhash.FoldStream(tail, st, 1)
				return err
			}},
	}
	for _, p := range passes {
		b, err := measure(p.batch)
		if err != nil {
			return fmt.Errorf("%s batch: %w", p.name, err)
		}
		a, err := measure(p.append)
		if err != nil {
			return fmt.Errorf("%s append: %w", p.name, err)
		}
		r := incrResult{
			Pass:      p.name,
			BatchNsOp: b.nsOp, AppendNsOp: a.nsOp,
			Speedup: float64(b.nsOp) / float64(a.nsOp),
			NewRows: newRows,
		}
		rep.Incr = append(rep.Incr, r)
		fmt.Fprintf(os.Stderr, "%-26s batch %12d ns/op  append %12d ns/op  speedup %.1fx (%d new rows)\n",
			r.Pass, r.BatchNsOp, r.AppendNsOp, r.Speedup, r.NewRows)
	}
	return nil
}

// headSource exposes only the first n rows of a source — the "data
// before it grew" half of the incremental passes.
type headSource struct {
	src matrix.RowSource
	n   int
}

func (h headSource) NumRows() int { return h.n }
func (h headSource) NumCols() int { return h.src.NumCols() }
func (h headSource) Scan(fn func(int, []int32) error) error {
	return h.src.Scan(func(r int, cols []int32) error {
		if r >= h.n {
			return nil
		}
		return fn(r, cols)
	})
}

// hideConcurrent masks ConcurrentScan so ExactParallel exercises the
// single-reader fan-out path, the one streaming sources take.
type hideConcurrent struct{ src matrix.RowSource }

func (h hideConcurrent) NumRows() int                           { return h.src.NumRows() }
func (h hideConcurrent) NumCols() int                           { return h.src.NumCols() }
func (h hideConcurrent) Scan(fn func(int, []int32) error) error { return h.src.Scan(fn) }
