package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"assocmine/internal/dist"
	"assocmine/internal/gen"
	"assocmine/internal/matrix"
)

// The scale tier: a seeded Zipfian dataset mined end to end through
// the multi-process executor, timed at one worker and at
// scaleWorkersWide workers. Unlike the phase benchmarks (in-memory
// goroutine fan-out), this measures real subprocess scale-out: pipe
// protocol, sketch merge and candidate union included. The wide row
// must beat the 1-worker row by scaleSpeedupFloor — but only on
// machines with enough cores to measure it; elsewhere the row is
// recorded as skipped with the core count, and the gate stays off.
const (
	scaleWorkersWide  = 4
	scaleSpeedupFloor = 2.5
	scaleK            = 64
	scaleThreshold    = 0.6
	scaleSeed         = 7
)

// scaleRun is one timed dist.Run at a given worker count.
type scaleRun struct {
	Workers      int    `json:"workers"`
	NsOp         int64  `json:"ns_op,omitempty"`
	Pairs        int    `json:"pairs,omitempty"`
	BytesShipped int64  `json:"bytes_shipped,omitempty"`
	Restarts     int    `json:"restarts,omitempty"`
	Skipped      bool   `json:"skipped,omitempty"`
	Reason       string `json:"reason,omitempty"`
}

type scaleReport struct {
	Kind      string     `json:"kind"`
	Rows      int        `json:"rows"`
	Cols      int        `json:"cols"`
	K         int        `json:"k"`
	Threshold float64    `json:"threshold"`
	Seed      uint64     `json:"seed"`
	NumCPU    int        `json:"numcpu"`
	FileBytes int64      `json:"file_bytes"`
	Runs      []scaleRun `json:"runs"`
	// Speedup is the 1-worker time over the wide-row time; 0 when the
	// wide row was skipped for lack of cores.
	Speedup float64 `json:"speedup,omitempty"`
}

func runScale(out, kind string, rows, cols int, against string, update bool) error {
	exe, err := os.Executable()
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: scale tier %s %d x %d, k=%d threshold=%.2f, numcpu=%d\n",
		kind, rows, cols, scaleK, scaleThreshold, runtime.NumCPU())
	dir, err := os.MkdirTemp("", "benchjson-scale-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path := dir + "/tier.arows"
	src := &gen.ZipfSource{Kind: kind, Rows: rows, Cols: cols, Seed: scaleSeed}
	start := time.Now()
	if err := matrix.SaveRowBinary(path, src); err != nil {
		return err
	}
	info, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "benchjson: generated %s (%d bytes) in %s\n",
		path, info.Size(), time.Since(start).Round(time.Millisecond))
	rep := scaleReport{
		Kind: kind, Rows: rows, Cols: cols,
		K: scaleK, Threshold: scaleThreshold, Seed: scaleSeed,
		NumCPU:    runtime.NumCPU(),
		FileBytes: info.Size(),
	}
	for _, w := range []int{1, scaleWorkersWide} {
		if w > 1 && runtime.NumCPU() < w {
			reason := fmt.Sprintf("numcpu=%d < %d workers: multi-process speedup is not measurable on this machine",
				runtime.NumCPU(), w)
			rep.Runs = append(rep.Runs, scaleRun{Workers: w, Skipped: true, Reason: reason})
			fmt.Fprintf(os.Stderr, "scale/workers=%d  skipped: %s\n", w, reason)
			continue
		}
		res, ns, err := timedDistRun(path, exe, w)
		if err != nil {
			return fmt.Errorf("scale workers=%d: %w", w, err)
		}
		rep.Runs = append(rep.Runs, scaleRun{
			Workers: w, NsOp: ns, Pairs: len(res.Pairs),
			BytesShipped: res.Stats.BytesShipped, Restarts: res.Stats.Restarts,
		})
		fmt.Fprintf(os.Stderr, "scale/workers=%d  %14d ns/run  %d candidate pairs  %d bytes shipped\n",
			w, ns, len(res.Pairs), res.Stats.BytesShipped)
	}
	if len(rep.Runs) == 2 && !rep.Runs[0].Skipped && !rep.Runs[1].Skipped {
		rep.Speedup = float64(rep.Runs[0].NsOp) / float64(rep.Runs[1].NsOp)
		fmt.Fprintf(os.Stderr, "scale: %d workers %.2fx faster than 1\n", scaleWorkersWide, rep.Speedup)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if against != "" {
		if err := compareScaleBaseline(against, rep, buf, update); err != nil {
			return err
		}
	}
	if out == "-" {
		_, err = os.Stdout.Write(buf)
		return err
	}
	return os.WriteFile(out, buf, 0o644)
}

// timedDistRun mines the tier once through the distributed executor,
// candidates only: verification cost is identical at every worker
// count on a pre-verified candidate set, so the skip keeps the timing
// focused on the phases the partitioning actually changes.
func timedDistRun(path, exe string, workers int) (*dist.Result, int64, error) {
	cfg := dist.Config{
		Path:      path,
		Algorithm: dist.MinHash,
		Threshold: scaleThreshold,
		K:         scaleK,
		Seed:      scaleSeed,
		Workers:   workers,
		WorkerArgv: []string{
			exe, "-worker",
		},
		SkipVerify: true,
	}
	start := time.Now()
	res, err := dist.Run(cfg)
	if err != nil {
		return nil, 0, err
	}
	return res, time.Since(start).Nanoseconds(), nil
}

// compareScaleBaseline gates the scale tier against a committed
// report: any non-skipped run regressing past regressionTolerance
// fails, like the phase gate; and when this machine actually measured
// the wide row, its speedup must clear scaleSpeedupFloor.
func compareScaleBaseline(path string, rep scaleReport, buf []byte, update bool) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var base scaleReport
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	sameTier := base.Kind == rep.Kind && base.Rows == rep.Rows &&
		base.Cols == rep.Cols && base.K == rep.K
	if !sameTier {
		fmt.Fprintf(os.Stderr, "benchjson: baseline %s is a different tier (%s %dx%d k=%d); ns comparisons skipped\n",
			path, base.Kind, base.Rows, base.Cols, base.K)
	}
	old := make(map[int]scaleRun, len(base.Runs))
	for _, r := range base.Runs {
		old[r.Workers] = r
	}
	var failures []string
	for _, r := range rep.Runs {
		if !sameTier {
			break
		}
		if r.Skipped {
			continue
		}
		b, ok := old[r.Workers]
		if !ok || b.Skipped || b.NsOp == 0 {
			continue
		}
		if float64(r.NsOp) > float64(b.NsOp)*regressionTolerance {
			failures = append(failures, fmt.Sprintf(
				"scale/workers=%d: %d ns vs baseline %d (%.0f%% slower)",
				r.Workers, r.NsOp, b.NsOp, 100*(float64(r.NsOp)/float64(b.NsOp)-1)))
		}
	}
	if rep.Speedup > 0 && rep.Speedup < scaleSpeedupFloor {
		failures = append(failures, fmt.Sprintf(
			"scale: %d-worker speedup %.2fx is below the %.1fx floor",
			scaleWorkersWide, rep.Speedup, scaleSpeedupFloor))
	}
	if len(failures) == 0 {
		fmt.Fprintf(os.Stderr, "benchjson: scale tier within %.0f%% of %s\n",
			(regressionTolerance-1)*100, path)
		return nil
	}
	for _, f := range failures {
		fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", f)
	}
	if update {
		fmt.Fprintf(os.Stderr, "benchjson: -update set, rewriting %s with fresh numbers\n", path)
		return os.WriteFile(path, buf, 0o644)
	}
	return fmt.Errorf("%d scale check(s) failed vs %s (rerun with -update to accept)",
		len(failures), path)
}
