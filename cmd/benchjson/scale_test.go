package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"assocmine/internal/dist"
)

// TestMain lets the test binary stand in for the benchjson worker:
// runScale re-execs os.Executable() with -worker.
func TestMain(m *testing.M) {
	for _, a := range os.Args[1:] {
		if a == "-worker" {
			if err := dist.WorkerMain(os.Stdin, os.Stdout); err != nil {
				os.Exit(1)
			}
			os.Exit(0)
		}
	}
	os.Exit(m.Run())
}

// TestRunScaleSmall drives the full scale mode on a miniature tier:
// generation, the timed dist runs, the JSON report, and the baseline
// self-comparison (a report can never regress against itself).
func TestRunScaleSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	out := filepath.Join(t.TempDir(), "BENCH_scale.json")
	if err := runScale(out, "market", 3000, 500, "", false); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep scaleReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Rows != 3000 || rep.Cols != 500 || rep.Kind != "market" {
		t.Fatalf("report header: %+v", rep)
	}
	if len(rep.Runs) != 2 {
		t.Fatalf("%d runs, want 2", len(rep.Runs))
	}
	if rep.Runs[0].Workers != 1 || rep.Runs[0].Skipped || rep.Runs[0].NsOp <= 0 {
		t.Fatalf("1-worker run: %+v", rep.Runs[0])
	}
	wide := rep.Runs[1]
	if wide.Workers != scaleWorkersWide {
		t.Fatalf("wide run workers = %d", wide.Workers)
	}
	if wide.Skipped {
		if wide.Reason == "" {
			t.Error("skipped wide run has no reason")
		}
		if rep.Speedup != 0 {
			t.Errorf("speedup %.2f recorded despite skipped wide run", rep.Speedup)
		}
	} else if wide.NsOp <= 0 {
		t.Fatalf("wide run: %+v", wide)
	}
	// Self-comparison: identical numbers can neither regress nor, on a
	// box that skipped the wide row, trip the speedup floor. (Compared
	// report-vs-file, not rerun: tiny tiers jitter past the tolerance.)
	if err := compareScaleBaseline(out, rep, raw, false); err != nil {
		t.Fatalf("self-comparison: %v", err)
	}
}

func scaleFixture(speedup float64, wideSkipped bool) scaleReport {
	rep := scaleReport{
		Kind: "market", Rows: 1000, Cols: 100, NumCPU: 8,
		Runs: []scaleRun{{Workers: 1, NsOp: 1_000_000}},
	}
	if wideSkipped {
		rep.Runs = append(rep.Runs, scaleRun{Workers: scaleWorkersWide, Skipped: true, Reason: "numcpu"})
	} else {
		rep.Runs = append(rep.Runs, scaleRun{Workers: scaleWorkersWide, NsOp: int64(1_000_000 / speedup)})
		rep.Speedup = speedup
	}
	return rep
}

func writeScale(t *testing.T, rep scaleReport) string {
	t.Helper()
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareScaleBaseline(t *testing.T) {
	base := scaleFixture(3.0, false)
	path := writeScale(t, base)

	if err := compareScaleBaseline(path, scaleFixture(3.0, false), nil, false); err != nil {
		t.Errorf("identical report failed the gate: %v", err)
	}

	// A measured wide row below the floor fails.
	if err := compareScaleBaseline(path, scaleFixture(1.2, false), nil, false); err == nil {
		t.Error("speedup below the floor passed the gate")
	}

	// A skipped wide row never trips the floor or the per-row check.
	if err := compareScaleBaseline(path, scaleFixture(0, true), nil, false); err != nil {
		t.Errorf("skipped wide row failed the gate: %v", err)
	}

	// A slower 1-worker row regresses.
	slow := scaleFixture(3.0, false)
	slow.Runs[0].NsOp = 2_000_000
	if err := compareScaleBaseline(path, slow, nil, false); err == nil {
		t.Error("2x slower run passed the gate")
	}

	// -update rewrites the baseline instead of failing.
	buf, _ := json.Marshal(slow)
	if err := compareScaleBaseline(path, slow, buf, true); err != nil {
		t.Errorf("-update still failed: %v", err)
	}
	raw, _ := os.ReadFile(path)
	var rewritten scaleReport
	if err := json.Unmarshal(raw, &rewritten); err != nil {
		t.Fatal(err)
	}
	if rewritten.Runs[0].NsOp != 2_000_000 {
		t.Error("baseline was not rewritten")
	}
}
