// Command datagen generates the paper's experimental datasets to disk
// in the assocmine matrix formats (.txt transactions or .amx binary).
//
// Usage:
//
//	datagen -kind synthetic -rows 10000 -cols 1000 -out syn.amx
//	datagen -kind weblog -rows 20000 -cols 3000 -out web.amx
//	datagen -kind news -rows 30000 -cols 6000 -out news.amx -words words.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"assocmine"
	"assocmine/internal/gen"
	"assocmine/internal/matrix"
)

func main() {
	var (
		kind    = flag.String("kind", "synthetic", "dataset kind: synthetic | weblog | news | quest | market | clicks")
		rows    = flag.Int("rows", 10000, "rows (baskets / clients / documents)")
		cols    = flag.Int("cols", 1000, "columns (items / URLs / background vocabulary)")
		seed    = flag.Uint64("seed", 1, "random seed")
		out     = flag.String("out", "", "output path (.amx = column binary, .arows = streaming binary, .carows = compressed streaming, else text)")
		words   = flag.String("words", "", "news only: also write the column vocabulary here")
		meanLen = flag.Int("mean-len", 0, "market/clicks only: mean row length (0 = default)")
	)
	flag.Parse()
	if *out == "" {
		fmt.Fprintln(os.Stderr, "datagen: -out is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*kind, *rows, *cols, *seed, *out, *words, *meanLen); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

// onesCounting wraps a streaming source so the save pass also tallies
// the ones for the summary line without a second scan.
type onesCounting struct {
	matrix.RowSource
	ones int64
}

func (c *onesCounting) Scan(fn func(row int, cols []int32) error) error {
	c.ones = 0
	return c.RowSource.Scan(func(row int, cols []int32) error {
		c.ones += int64(len(cols))
		return fn(row, cols)
	})
}

// runStream handles the scale-tier kinds, which never materialise a
// Dataset: rows stream from the seeded generator straight into the
// row-binary savers, so 10M+ row tiers cost constant memory.
func runStream(kind string, rows, cols int, seed uint64, out string, meanLen int) error {
	src := &onesCounting{RowSource: &gen.ZipfSource{
		Kind: kind, Rows: rows, Cols: cols, Seed: seed, MeanRowLen: meanLen,
	}}
	var err error
	switch {
	case strings.HasSuffix(out, ".carows"):
		err = matrix.SaveRowCompressed(out, src)
	case strings.HasSuffix(out, ".arows"):
		err = matrix.SaveRowBinary(out, src)
	default:
		return fmt.Errorf("kind %q streams rows; -out must end in .arows or .carows", kind)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d rows x %d cols, Zipf(s=1.1) column popularity\n", kind, rows, cols)
	fmt.Printf("wrote %s (%d ones, density %.4f%%)\n", out, src.ones,
		100*float64(src.ones)/(float64(rows)*float64(cols)))
	return nil
}

func run(kind string, rows, cols int, seed uint64, out, words string, meanLen int) error {
	if kind == "market" || kind == "clicks" {
		return runStream(kind, rows, cols, seed, out, meanLen)
	}
	var data *assocmine.Dataset
	switch kind {
	case "synthetic":
		d, planted, err := assocmine.GenerateSynthetic(assocmine.SyntheticOptions{
			Rows: rows, Cols: cols, Seed: seed,
		})
		if err != nil {
			return err
		}
		data = d
		fmt.Printf("synthetic: %d rows x %d cols, %d planted pairs\n", rows, cols, len(planted))
	case "weblog":
		w, err := assocmine.GenerateWebLog(assocmine.WebLogOptions{
			Clients: rows, URLs: cols, Seed: seed,
		})
		if err != nil {
			return err
		}
		data = w.Data
		fmt.Printf("weblog: %d clients x %d URLs, %d resource groups\n", rows, cols, len(w.Groups))
	case "quest":
		q, err := assocmine.GenerateQuest(assocmine.QuestOptions{
			Transactions: rows, Items: cols, Seed: seed,
		})
		if err != nil {
			return err
		}
		data = q.Data
		fmt.Printf("quest: %d transactions x %d items, %d planted patterns\n",
			rows, cols, len(q.Patterns))
	case "news":
		n, err := assocmine.GenerateNews(assocmine.NewsOptions{
			Docs: rows, Vocab: cols, Seed: seed,
		})
		if err != nil {
			return err
		}
		data = n.Data
		fmt.Printf("news: %d docs x %d words (incl. planted), %d planted collocations\n",
			rows, n.Data.NumCols(), len(n.PlantedPairs))
		if words != "" {
			if err := writeWords(words, n.Words); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("unknown kind %q (want synthetic, weblog, news, quest, market or clicks)", kind)
	}
	var err error
	switch {
	case strings.HasSuffix(out, ".carows"):
		err = data.SaveRowCompressed(out)
	case strings.HasSuffix(out, ".arows"):
		err = data.SaveRowBinary(out)
	default:
		err = data.Save(out)
	}
	if err != nil {
		return err
	}
	fmt.Printf("wrote %s (%d ones, density %.4f%%)\n", out, data.Ones(),
		100*float64(data.Ones())/float64(data.NumRows()*data.NumCols()))
	return nil
}

func writeWords(path string, words []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, word := range words {
		fmt.Fprintln(w, word)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
