package main

import (
	"path/filepath"
	"testing"

	"assocmine"
)

func TestRunAllKinds(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		kind, out string
		words     string
	}{
		{"synthetic", "syn.txt", ""},
		{"weblog", "web.amx", ""},
		{"news", "news.arows", "words.txt"},
		{"quest", "quest.txt", ""},
	}
	for _, c := range cases {
		out := filepath.Join(dir, c.out)
		words := ""
		if c.words != "" {
			words = filepath.Join(dir, c.words)
		}
		if err := run(c.kind, 300, 80, 1, out, words); err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		d, err := assocmine.LoadDataset(out)
		if err != nil {
			t.Fatalf("%s: load: %v", c.kind, err)
		}
		if d.NumRows() != 300 {
			t.Errorf("%s: rows = %d", c.kind, d.NumRows())
		}
	}
}

func TestRunUnknownKind(t *testing.T) {
	if err := run("bogus", 10, 10, 1, filepath.Join(t.TempDir(), "x.txt"), ""); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestRunBadPath(t *testing.T) {
	if err := run("synthetic", 10, 10, 1, "/nonexistent-dir/x.txt", ""); err == nil {
		t.Error("unwritable path accepted")
	}
}
