package main

import (
	"path/filepath"
	"testing"

	"assocmine"
)

func TestRunAllKinds(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		kind, out string
		words     string
	}{
		{"synthetic", "syn.txt", ""},
		{"weblog", "web.amx", ""},
		{"news", "news.arows", "words.txt"},
		{"quest", "quest.txt", ""},
	}
	for _, c := range cases {
		out := filepath.Join(dir, c.out)
		words := ""
		if c.words != "" {
			words = filepath.Join(dir, c.words)
		}
		if err := run(c.kind, 300, 80, 1, out, words, 0); err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		d, err := assocmine.LoadDataset(out)
		if err != nil {
			t.Fatalf("%s: load: %v", c.kind, err)
		}
		if d.NumRows() != 300 {
			t.Errorf("%s: rows = %d", c.kind, d.NumRows())
		}
	}
}

func TestRunStreamKinds(t *testing.T) {
	dir := t.TempDir()
	for _, c := range []struct{ kind, out string }{
		{"market", "market.arows"},
		{"clicks", "clicks.carows"},
	} {
		out := filepath.Join(dir, c.out)
		if err := run(c.kind, 400, 120, 7, out, "", 8); err != nil {
			t.Fatalf("%s: %v", c.kind, err)
		}
		d, err := assocmine.LoadDataset(out)
		if err != nil {
			t.Fatalf("%s: load: %v", c.kind, err)
		}
		if d.NumRows() != 400 || d.NumCols() != 120 {
			t.Errorf("%s: dims %dx%d", c.kind, d.NumRows(), d.NumCols())
		}
		if d.Ones() == 0 {
			t.Errorf("%s: empty dataset", c.kind)
		}
	}
}

func TestRunStreamKindsNeedRowFormat(t *testing.T) {
	if err := run("market", 10, 10, 1, filepath.Join(t.TempDir(), "x.txt"), "", 0); err == nil {
		t.Error("market with .txt output accepted")
	}
}

func TestRunUnknownKind(t *testing.T) {
	if err := run("bogus", 10, 10, 1, filepath.Join(t.TempDir(), "x.txt"), "", 0); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestRunBadPath(t *testing.T) {
	if err := run("synthetic", 10, 10, 1, "/nonexistent-dir/x.txt", "", 0); err == nil {
		t.Error("unwritable path accepted")
	}
}
