// Command experiments regenerates every table and figure of the
// paper's evaluation section on the substitute workloads (see
// DESIGN.md for the substitution rationale). Output is plain text, one
// block per figure/table, suitable for diffing against EXPERIMENTS.md.
//
// Usage:
//
//	experiments                 # all experiments at the small scale
//	experiments -scale full     # closer to the paper's dataset sizes
//	experiments -fig 5          # only Fig. 5
//	experiments -fig synthetic  # the synthetic-data recall table
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"assocmine/internal/eval"
)

func main() {
	var (
		scale  = flag.String("scale", "small", "workload scale: small | full")
		fig    = flag.String("fig", "all", "which experiment: 1..9, synthetic, rules, optimizer, quest, or all")
		seed   = flag.Uint64("seed", 1, "workload seed")
		format = flag.String("format", "text", "output format: text | markdown")
	)
	flag.Parse()
	if err := run(*scale, *fig, *seed, *format); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(scale, fig string, seed uint64, format string) error {
	markdown := false
	switch format {
	case "text":
	case "markdown":
		markdown = true
	default:
		return fmt.Errorf("unknown format %q", format)
	}
	var sc eval.Scale
	switch scale {
	case "small":
		sc = eval.SmallScale()
	case "full":
		sc = eval.FullScale()
	default:
		return fmt.Errorf("unknown scale %q", scale)
	}
	sc.Seed = seed

	out := os.Stdout
	fmt.Fprintf(out, "assocmine experiment suite — scale=%s seed=%d\n", scale, seed)
	fmt.Fprintf(out, "workloads: weblog %dx%d, news %dx%d(+planted), synthetic %dx%d\n\n",
		sc.WebClients, sc.WebURLs, sc.NewsDocs, sc.NewsVocab, sc.SynRows, sc.SynCols)

	start := time.Now()
	var w *eval.Workloads
	needWorkloads := fig != "2" // Fig. 2 is purely analytic
	if needWorkloads {
		var err error
		w, err = eval.NewWorkloads(sc)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "generated workloads + web ground truth in %v (%d true pairs >= %.1f)\n\n",
			time.Since(start).Round(time.Millisecond), len(w.WebTruth.Pairs), w.WebTruth.Floor)
	}

	want := func(id string) bool { return fig == "all" || fig == id }
	emitT := func(t eval.Table) {
		if markdown {
			t.FormatMarkdown(out)
		} else {
			t.Format(out)
		}
	}
	emitF := func(f eval.Figure) {
		if markdown {
			f.FormatMarkdown(out)
		} else {
			f.Format(out)
		}
	}

	if want("1") {
		t, err := eval.Fig1(w)
		if err != nil {
			return fmt.Errorf("fig1: %w", err)
		}
		emitT(t)
	}
	if want("2") {
		for _, f := range eval.Fig2() {
			emitF(f)
		}
	}
	if want("3") {
		figs, err := eval.Fig3(w)
		if err != nil {
			return fmt.Errorf("fig3: %w", err)
		}
		for _, f := range figs {
			emitF(f)
		}
	}
	if want("4") {
		t, _, err := eval.Fig4(w, nil, 0)
		if err != nil {
			return fmt.Errorf("fig4: %w", err)
		}
		emitT(t)
	}
	type figFn struct {
		id string
		fn func(*eval.Workloads) ([]eval.Figure, error)
	}
	for _, ff := range []figFn{{"5", eval.Fig5}, {"6", eval.Fig6}, {"7", eval.Fig7}, {"8", eval.Fig8}} {
		if !want(ff.id) {
			continue
		}
		figs, err := ff.fn(w)
		if err != nil {
			return fmt.Errorf("fig%s: %w", ff.id, err)
		}
		for _, f := range figs {
			emitF(f)
		}
	}
	if want("9") {
		figs, _, err := eval.Fig9(w, nil)
		if err != nil {
			return fmt.Errorf("fig9: %w", err)
		}
		for _, f := range figs {
			emitF(f)
		}
	}
	if want("synthetic") {
		t, err := eval.SyntheticExperiment(w)
		if err != nil {
			return fmt.Errorf("synthetic: %w", err)
		}
		emitT(t)
	}
	if want("rules") {
		t, err := eval.RulesExperiment(w)
		if err != nil {
			return fmt.Errorf("rules: %w", err)
		}
		emitT(t)
	}
	if want("optimizer") {
		t, err := eval.OptimizerExperiment(w)
		if err != nil {
			return fmt.Errorf("optimizer: %w", err)
		}
		emitT(t)
	}
	if want("quest") {
		t, err := eval.QuestExperiment(sc)
		if err != nil {
			return fmt.Errorf("quest: %w", err)
		}
		emitT(t)
	}
	fmt.Fprintf(out, "total experiment time: %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
