package main

import "testing"

// The experiment drivers have their own tests in internal/eval; these
// exercise the CLI wiring (flag validation and the fast experiments).
func TestRunValidation(t *testing.T) {
	if err := run("bogus", "2", 1, "text"); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run("small", "2", 1, "bogus"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestRunAnalyticFigure(t *testing.T) {
	// Fig. 2 is purely analytic: no workload generation, fast.
	if err := run("small", "2", 1, "text"); err != nil {
		t.Fatal(err)
	}
	if err := run("small", "2", 1, "markdown"); err != nil {
		t.Fatal(err)
	}
}
