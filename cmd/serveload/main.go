// Command serveload drives the resident similarity service with
// thousands of concurrent requests and reports latency percentiles,
// throughput, and leak counters, with a regression gate against a
// committed baseline.
//
// By default it builds the server in-process over a synthetic dataset
// and drives its handler directly — no sockets, so the numbers measure
// the serving path, not the loopback stack. With -http it starts a
// real listener and drives it over TCP; with -addr it targets an
// already-running assocserve.
//
// Usage:
//
//	serveload -out BENCH_serve.json
//	serveload -concurrency 1000 -requests 20000 -http
//	serveload -against BENCH_serve.json          # fail on regression
//	serveload -against BENCH_serve.json -update  # refresh the baseline
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"assocmine"
	"assocmine/internal/serve"
)

// Gate thresholds vs the -against baseline. Latency on shared machines
// jitters far more than CPU benchmarks, so the bounds are generous:
// the gate is for catching a serialized handler or a leak, not 10%
// noise.
const (
	p99Tolerance = 3.0 // p99 may grow at most 3x
	qpsTolerance = 3.0 // throughput may shrink at most 3x
)

type percentiles struct {
	Count int   `json:"count"`
	P50us int64 `json:"p50_us"`
	P90us int64 `json:"p90_us"`
	P99us int64 `json:"p99_us"`
	MaxUs int64 `json:"max_us"`
}

type report struct {
	Rows        int    `json:"rows"`
	Cols        int    `json:"cols"`
	NumCPU      int    `json:"numcpu"`
	Gomaxprocs  int    `json:"gomaxprocs"`
	Concurrency int    `json:"concurrency"`
	Requests    int    `json:"requests"`
	Transport   string `json:"transport"`
	Mix         string `json:"mix"`

	Errors int64   `json:"errors"`
	QPS    float64 `json:"qps"`
	// MaxInflight is the server's in-flight gauge high-water mark
	// (sampled; in-process transports only). It is a lower bound: on a
	// TCP transport with few CPUs, requests serialize in the netpoller
	// before entering the handler, so the gauge can read near zero even
	// under heavy client concurrency. MaxOutstanding is the exact
	// client-side watermark of concurrently outstanding requests.
	MaxInflight    int64 `json:"max_inflight"`
	MaxOutstanding int64 `json:"max_outstanding"`

	// Latency per query kind plus "all" across every request.
	LatencyUs map[string]percentiles `json:"latency_us"`

	// Leak counters: goroutines and open FDs before the run vs after
	// shutdown. After settles to before when nothing leaks.
	GoroutinesBefore int `json:"goroutines_before"`
	GoroutinesAfter  int `json:"goroutines_after"`
	FDsBefore        int `json:"fds_before"`
	FDsAfter         int `json:"fds_after"`
}

type config struct {
	in          string
	rows, cols  int
	addr        string
	httpMode    bool
	concurrency int
	requests    int
	mix         string
	workers     int
	seed        uint64
}

func main() {
	var (
		cfg     config
		out     = flag.String("out", "BENCH_serve.json", "write the JSON report here ('-' for stdout)")
		against = flag.String("against", "", "baseline report to gate against: errors must be 0, p99 may grow at most 3x, QPS may shrink at most 3x")
		update  = flag.Bool("update", false, "with -against: rewrite the baseline instead of failing on regression")
	)
	flag.StringVar(&cfg.in, "in", "", "dataset file; empty = synthetic")
	flag.IntVar(&cfg.rows, "rows", 2000, "synthetic dataset rows")
	flag.IntVar(&cfg.cols, "cols", 64, "synthetic dataset columns")
	flag.StringVar(&cfg.addr, "addr", "", "target an already-running assocserve at this address instead of serving in-process")
	flag.BoolVar(&cfg.httpMode, "http", false, "in-process: start a real TCP listener and drive it over sockets")
	flag.IntVar(&cfg.concurrency, "concurrency", 1000, "concurrent client workers")
	flag.IntVar(&cfg.requests, "requests", 20000, "total requests across all workers")
	flag.StringVar(&cfg.mix, "mix", "pairs=4,topk=4,expr=3,toppairs=1", "query mix as kind=weight pairs (kinds: pairs, topk, toppairs, expr, rules)")
	flag.IntVar(&cfg.workers, "workers", 1, "in-process: server per-query worker budget")
	flag.Uint64Var(&cfg.seed, "seed", 1, "synthetic dataset / index seed")
	flag.Parse()

	rep, err := run(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
	} else if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "serveload:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "serveload: %d requests, %d errors, %.0f qps, p99(all) %dus, max inflight %d, max outstanding %d\n",
		rep.Requests, rep.Errors, rep.QPS, rep.LatencyUs["all"].P99us, rep.MaxInflight, rep.MaxOutstanding)
	if *against != "" {
		if err := gate(*against, rep, buf, *update); err != nil {
			fmt.Fprintln(os.Stderr, "serveload:", err)
			os.Exit(1)
		}
	}
}

// query is one request template in the mix.
type query struct {
	kind string
	path string
	body string
}

// buildMix expands "pairs=4,topk=4" into a weighted round-robin
// schedule of request templates.
func buildMix(mix string, cols int) ([]query, error) {
	templates := map[string]query{
		"pairs":    {kind: "pairs", path: "/v1/pairs", body: `{"threshold":0.7}`},
		"topk":     {kind: "topk", path: "/v1/topk", body: fmt.Sprintf(`{"col":%d,"k":5,"floor":0.5}`, cols/2)},
		"toppairs": {kind: "toppairs", path: "/v1/toppairs", body: `{"n":10,"floor":0.5}`},
		"expr":     {kind: "expr", path: "/v1/expr", body: `{"op":"similarity","a":"0|2","b":"1"}`},
		"rules":    {kind: "rules", path: "/v1/rules", body: `{"min_confidence":0.9}`},
	}
	var sched []query
	for _, part := range strings.Split(mix, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		kv := strings.SplitN(part, "=", 2)
		tpl, ok := templates[kv[0]]
		if !ok {
			return nil, fmt.Errorf("unknown query kind %q in -mix", kv[0])
		}
		w := 1
		if len(kv) == 2 {
			var err error
			if w, err = strconv.Atoi(kv[1]); err != nil || w < 0 {
				return nil, fmt.Errorf("bad weight %q in -mix", kv[1])
			}
		}
		for i := 0; i < w; i++ {
			sched = append(sched, tpl)
		}
	}
	if len(sched) == 0 {
		return nil, fmt.Errorf("-mix %q selects no queries", mix)
	}
	return sched, nil
}

// poster abstracts the three transports: direct handler calls,
// in-process TCP, and a remote server.
type poster func(path, body string) (int, error)

func run(cfg config) (*report, error) {
	rep := &report{
		NumCPU:      runtime.NumCPU(),
		Gomaxprocs:  runtime.GOMAXPROCS(0),
		Concurrency: cfg.concurrency,
		Requests:    cfg.requests,
		Mix:         cfg.mix,
		LatencyUs:   map[string]percentiles{},
	}

	var (
		srv  *serve.Server
		post poster
	)
	if cfg.addr != "" {
		rep.Transport = "remote"
		post = httpPoster("http://"+cfg.addr, cfg.concurrency)
	} else {
		var data *assocmine.Dataset
		var err error
		if cfg.in != "" {
			data, err = assocmine.LoadDataset(cfg.in)
		} else {
			data, err = synthetic(cfg.rows, cfg.cols, cfg.seed)
		}
		if err != nil {
			return nil, err
		}
		rep.Rows, rep.Cols = data.NumRows(), data.NumCols()
		srv, err = serve.New(data, serve.Options{Workers: cfg.workers, Seed: cfg.seed})
		if err != nil {
			return nil, err
		}
		if cfg.httpMode {
			rep.Transport = "tcp"
			addr, err := srv.Start("127.0.0.1:0")
			if err != nil {
				return nil, err
			}
			post = httpPoster("http://"+addr.String(), cfg.concurrency)
		} else {
			rep.Transport = "handler"
			h := srv.Handler()
			post = func(path, body string) (int, error) {
				rr := httptest.NewRecorder()
				req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(body))
				h.ServeHTTP(rr, req)
				return rr.Code, nil
			}
		}
	}

	cols := cfg.cols
	if rep.Cols > 0 {
		cols = rep.Cols
	}
	sched, err := buildMix(cfg.mix, cols)
	if err != nil {
		return nil, err
	}

	// Warm-up: one of each query before the leak counters are read, so
	// lazily-initialised runtime state (the netpoller's epoll FDs, the
	// HTTP client's first connection) isn't mistaken for a leak.
	for _, q := range sched {
		if code, err := post(q.path, q.body); err != nil || code != http.StatusOK {
			return nil, fmt.Errorf("warm-up %s failed: code %d, err %v", q.path, code, err)
		}
	}
	rep.GoroutinesBefore = runtime.NumGoroutine()
	rep.FDsBefore = openFDs()

	// The shared request counter hands out one schedule slot per
	// request; per-kind latencies are collected into per-worker slices
	// and merged afterwards, so the hot loop takes no locks.
	type sample struct {
		kind string
		us   int64
	}
	var (
		next           atomic.Int64
		errorsN        atomic.Int64
		maxInflight    atomic.Int64
		outstanding    atomic.Int64
		maxOutstanding atomic.Int64
		wg             sync.WaitGroup
	)
	perWorker := make([][]sample, cfg.concurrency)

	// Inflight watermark, sampled from the server when in-process.
	stopWatch := make(chan struct{})
	var watchWG sync.WaitGroup
	if srv != nil {
		watchWG.Add(1)
		go func() {
			defer watchWG.Done()
			for {
				select {
				case <-stopWatch:
					return
				default:
				}
				if n := srv.Inflight(); n > maxInflight.Load() {
					maxInflight.Store(n)
				}
				time.Sleep(100 * time.Microsecond)
			}
		}()
	}

	// All workers spawn first and start together, so the full
	// concurrency level is reached during the ramp, not trickled.
	begin := make(chan struct{})
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-begin
			samples := make([]sample, 0, cfg.requests/cfg.concurrency+1)
			for {
				i := next.Add(1) - 1
				if i >= int64(cfg.requests) {
					break
				}
				q := sched[int(i)%len(sched)]
				cur := outstanding.Add(1)
				for {
					max := maxOutstanding.Load()
					if cur <= max || maxOutstanding.CompareAndSwap(max, cur) {
						break
					}
				}
				t0 := time.Now()
				code, err := post(q.path, q.body)
				us := time.Since(t0).Microseconds()
				outstanding.Add(-1)
				if err != nil || code != http.StatusOK {
					errorsN.Add(1)
					continue
				}
				samples = append(samples, sample{kind: q.kind, us: us})
			}
			perWorker[w] = samples
		}(w)
	}
	start := time.Now()
	close(begin)
	wg.Wait()
	elapsed := time.Since(start)
	close(stopWatch)
	watchWG.Wait()

	rep.Errors = errorsN.Load()
	rep.QPS = float64(cfg.requests) / elapsed.Seconds()
	rep.MaxInflight = maxInflight.Load()
	rep.MaxOutstanding = maxOutstanding.Load()

	byKind := map[string][]int64{}
	var all []int64
	for _, samples := range perWorker {
		for _, s := range samples {
			byKind[s.kind] = append(byKind[s.kind], s.us)
			all = append(all, s.us)
		}
	}
	for kind, vals := range byKind {
		rep.LatencyUs[kind] = summarize(vals)
	}
	rep.LatencyUs["all"] = summarize(all)

	if srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return nil, fmt.Errorf("shutdown: %w", err)
		}
	}
	// Give pooled connections and drained goroutines a moment to die
	// before counting them.
	settle := time.Now().Add(5 * time.Second)
	for time.Now().Before(settle) {
		rep.GoroutinesAfter = runtime.NumGoroutine()
		rep.FDsAfter = openFDs()
		if rep.GoroutinesAfter <= rep.GoroutinesBefore && rep.FDsAfter <= rep.FDsBefore {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	return rep, nil
}

// synthetic builds the deterministic correlated dataset the serve test
// suite uses, scaled to the requested size.
func synthetic(rows, cols int, seed uint64) (*assocmine.Dataset, error) {
	state := seed
	rnd := func() float64 {
		// splitmix64, mapped to [0,1).
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		return float64(z>>11) / float64(1<<53)
	}
	data := make([][]int, rows)
	for r := range data {
		var row []int
		for c := 0; c+1 < cols; c += 2 {
			p := 0.03 + 0.05*float64(c%7)/7
			if rnd() < p {
				row = append(row, c)
				if rnd() < float64((c/2)%11)/10 {
					row = append(row, c+1)
				}
			} else if rnd() < 0.008 {
				row = append(row, c+1)
			}
		}
		data[r] = row
	}
	return assocmine.NewDatasetFromRows(cols, data)
}

func httpPoster(base string, concurrency int) poster {
	tr := &http.Transport{
		MaxIdleConns:        concurrency,
		MaxIdleConnsPerHost: concurrency,
	}
	client := &http.Client{Transport: tr, Timeout: 2 * time.Minute}
	return func(path, body string) (int, error) {
		resp, err := client.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			return 0, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}
}

func summarize(vals []int64) percentiles {
	if len(vals) == 0 {
		return percentiles{}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	at := func(q float64) int64 {
		i := int(q * float64(len(vals)-1))
		return vals[i]
	}
	return percentiles{
		Count: len(vals),
		P50us: at(0.50),
		P90us: at(0.90),
		P99us: at(0.99),
		MaxUs: vals[len(vals)-1],
	}
}

// openFDs counts this process's open file descriptors via /proc; -1
// when unavailable (non-Linux).
func openFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}

// gate enforces the regression bounds against a committed baseline.
func gate(path string, rep *report, buf []byte, update bool) error {
	want, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) && update {
			return os.WriteFile(path, buf, 0o644)
		}
		return err
	}
	var base report
	if err := json.Unmarshal(want, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	var problems []string
	if rep.Errors != 0 {
		problems = append(problems, fmt.Sprintf("%d request errors (baseline requires 0)", rep.Errors))
	}
	if basep99 := base.LatencyUs["all"].P99us; basep99 > 0 {
		if got := rep.LatencyUs["all"].P99us; float64(got) > float64(basep99)*p99Tolerance {
			problems = append(problems, fmt.Sprintf("p99(all) %dus > %.0fx baseline %dus", got, p99Tolerance, basep99))
		}
	}
	if base.QPS > 0 && rep.QPS < base.QPS/qpsTolerance {
		problems = append(problems, fmt.Sprintf("QPS %.0f < baseline %.0f / %.0f", rep.QPS, base.QPS, qpsTolerance))
	}
	if rep.GoroutinesAfter > rep.GoroutinesBefore {
		problems = append(problems, fmt.Sprintf("goroutines leaked: %d -> %d", rep.GoroutinesBefore, rep.GoroutinesAfter))
	}
	if rep.FDsBefore >= 0 && rep.FDsAfter > rep.FDsBefore {
		problems = append(problems, fmt.Sprintf("file descriptors leaked: %d -> %d", rep.FDsBefore, rep.FDsAfter))
	}
	if len(problems) == 0 {
		fmt.Fprintf(os.Stderr, "serveload: within bounds of %s\n", path)
		if update {
			return os.WriteFile(path, buf, 0o644)
		}
		return nil
	}
	for _, p := range problems {
		fmt.Fprintf(os.Stderr, "serveload: REGRESSION: %s\n", p)
	}
	if update {
		fmt.Fprintf(os.Stderr, "serveload: -update set, rewriting %s with fresh numbers\n", path)
		return os.WriteFile(path, buf, 0o644)
	}
	return fmt.Errorf("%d regression(s) vs %s (rerun with -update to accept)", len(problems), path)
}
