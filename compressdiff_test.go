package assocmine

import (
	"fmt"
	"testing"

	"assocmine/internal/faultfs"
	"assocmine/internal/testutil"
)

// Compressed-codec differential harness: mining from a ".carows"
// compressed file must be bit-identical to mining the same data from
// the uncompressed ".arows" file — same pairs, same estimates and
// exact similarities, same pair-section stats — for every scheme,
// worker count, and memory budget, while actually moving fewer bytes.
// Compression that changes results is not compression, it is a bug.

// TestCompressedPipelineMatchesUncompressed runs MH, K-MH and M-LSH
// over the same dataset saved both ways, serial and parallel,
// unbudgeted and with a counter-table budget small enough to force
// compressed spill runs, and checks results plus codec accounting.
func TestCompressedPipelineMatchesUncompressed(t *testing.T) {
	d, _, err := GenerateSynthetic(SyntheticOptions{Rows: 600, Cols: 120, MinDensity: 0.05, MaxDensity: 0.15, PairsPerRange: 4, Seed: 47})
	if err != nil {
		t.Fatal(err)
	}
	raw := saveDataset(t, d, ".arows")
	comp := saveDataset(t, d, ".carows")
	// Delta close to 1 (and the wide M-LSH banding) inflates the
	// candidate list well past the 4 KB budget below, so the budgeted
	// runs genuinely spill.
	algos := []struct {
		name string
		cfg  Config
	}{
		{"MH", Config{Algorithm: MinHash, Threshold: 0.3, K: 40, Delta: 0.9, Seed: 13}},
		{"K-MH", Config{Algorithm: KMinHash, Threshold: 0.3, K: 40, Delta: 0.9, Seed: 13}},
		{"M-LSH", Config{Algorithm: MinLSH, Threshold: 0.3, K: 40, R: 2, L: 20, Seed: 13}},
	}
	for _, a := range algos {
		for _, workers := range []int{1, 4} {
			for _, budget := range []int64{0, 4096} {
				t.Run(fmt.Sprintf("%s/workers=%d/budget=%d", a.name, workers, budget), func(t *testing.T) {
					cfg := a.cfg
					cfg.Workers = workers
					cfg.MemoryBudget = budget
					rawRes, err := raw.SimilarPairs(cfg)
					if err != nil {
						t.Fatalf("uncompressed: %v", err)
					}
					compRes, err := comp.SimilarPairs(cfg)
					if err != nil {
						t.Fatalf("compressed: %v", err)
					}
					if len(compRes.Pairs) != len(rawRes.Pairs) {
						t.Fatalf("%d pairs compressed, %d uncompressed", len(compRes.Pairs), len(rawRes.Pairs))
					}
					for i := range rawRes.Pairs {
						if compRes.Pairs[i] != rawRes.Pairs[i] {
							t.Fatalf("pair %d: %+v compressed, %+v uncompressed", i, compRes.Pairs[i], rawRes.Pairs[i])
						}
					}
					comparePairSections(t, compRes.Stats, rawRes.Stats)
					// Codec accounting: the compressed run must report its
					// compressed reads, read strictly fewer file bytes than
					// the uncompressed run, and price the saving as a >1x
					// ratio. The uncompressed run must report none of it.
					if compRes.Stats.CompressedBytesRead <= 0 {
						t.Errorf("compressed run reported %d compressed bytes", compRes.Stats.CompressedBytesRead)
					}
					if compRes.Stats.BytesRead >= rawRes.Stats.BytesRead {
						t.Errorf("compressed run read %d bytes, uncompressed %d", compRes.Stats.BytesRead, rawRes.Stats.BytesRead)
					}
					if compRes.Stats.CodecRatio <= 1 {
						t.Errorf("codec ratio %.2f, want > 1", compRes.Stats.CodecRatio)
					}
					if rawRes.Stats.CompressedBytesRead != 0 {
						t.Errorf("uncompressed run reported %d compressed bytes", rawRes.Stats.CompressedBytesRead)
					}
					if budget > 0 {
						if compRes.Stats.SpillRuns <= 0 {
							t.Fatalf("budget %d did not spill: %+v", budget, compRes.Stats)
						}
						// The default spill codec is compressed, so all spill
						// bytes are compressed bytes.
						if compRes.Stats.SpillBytesCompressed != compRes.Stats.SpillBytes {
							t.Errorf("SpillBytesCompressed = %d, SpillBytes = %d", compRes.Stats.SpillBytesCompressed, compRes.Stats.SpillBytes)
						}
					} else if compRes.Stats.SpillBytesCompressed != 0 {
						t.Errorf("unbudgeted run reported compressed spill: %+v", compRes.Stats)
					}
				})
			}
		}
	}
}

// TestCompressedChaosTransientBitIdentical: transient IO faults (plus
// a transiently failing open) injected under a ".carows" run must be
// invisible — bit-identical pairs and pair-section stats versus the
// fault-free compressed run — proving the retry path composes with the
// compressed decoder's offset tracking.
func TestCompressedChaosTransientBitIdentical(t *testing.T) {
	testutil.CheckGoroutines(t)
	d, _, err := GenerateSynthetic(SyntheticOptions{Rows: 700, Cols: 70, PairsPerRange: 2, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	path := saveChaosFile(t, d, ".carows")
	for _, a := range chaosAlgos {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", a.name, workers), func(t *testing.T) {
				cfg := a.cfg
				cfg.Workers = workers
				cleanFD, err := OpenFileDataset(path)
				if err != nil {
					t.Fatal(err)
				}
				clean, err := cleanFD.SimilarPairs(cfg)
				if err != nil {
					t.Fatalf("fault-free run: %v", err)
				}
				fs := &faultfs.FS{
					Plan:    transientPlan(101),
					OpenErr: faultfs.TransientOpens(1),
				}
				faultyFD, err := OpenFileDatasetFS(fs, path)
				if err != nil {
					t.Fatalf("open through faulty FS: %v", err)
				}
				faultyFD.SetRetryPolicy(chaosRetry)
				faulty, err := faultyFD.SimilarPairs(cfg)
				if err != nil {
					t.Fatalf("faulty run: %v", err)
				}
				if len(faulty.Pairs) != len(clean.Pairs) {
					t.Fatalf("%d pairs under faults, %d fault-free", len(faulty.Pairs), len(clean.Pairs))
				}
				for i := range clean.Pairs {
					if faulty.Pairs[i] != clean.Pairs[i] {
						t.Fatalf("pair %d: %+v under faults, %+v fault-free", i, faulty.Pairs[i], clean.Pairs[i])
					}
				}
				comparePairSections(t, faulty.Stats, clean.Stats)
				if faulty.Stats.IORetries <= 0 || faulty.Stats.FaultsInjected <= 0 {
					t.Errorf("faults did not engage: retries=%d injected=%d", faulty.Stats.IORetries, faulty.Stats.FaultsInjected)
				}
				if faulty.Stats.CompressedBytesRead <= 0 {
					t.Errorf("compressed run reported %d compressed bytes", faulty.Stats.CompressedBytesRead)
				}
			})
		}
	}
}
