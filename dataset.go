// Package assocmine finds highly-similar column pairs and
// high-confidence association rules in sparse boolean data without any
// support requirement, implementing the algorithms of Cohen, Datar,
// Fujiwara, Gionis, Indyk, Motwani, Ullman and Yang, "Finding
// Interesting Associations without Support Pruning" (ICDE 2000).
//
// The data model is a sparse 0/1 matrix: rows are baskets (transactions,
// client IPs, documents) and columns are attributes (items, URLs,
// words). The similarity of two columns is the Jaccard coefficient
// |C_i ∩ C_j| / |C_i ∪ C_j|; the confidence of c_i => c_j is
// |C_i ∩ C_j| / |C_i|.
//
// Four signature-based algorithms are provided — MinHash, KMinHash,
// MinLSH and HammingLSH — plus the classic a-priori baseline and exact
// brute force. All follow the paper's three-phase template: compute
// small per-column signatures in one pass, generate candidate pairs in
// memory, then verify candidates exactly in a second pass.
//
// Quick start:
//
//	data, _ := assocmine.NewDatasetFromRows(4, [][]int{{0, 1}, {0, 1}, {1, 2}, {2}})
//	res, _ := assocmine.SimilarPairs(data, assocmine.Config{
//		Algorithm: assocmine.MinLSH,
//		Threshold: 0.5,
//	})
//	for _, p := range res.Pairs {
//		fmt.Printf("columns %d and %d: similarity %.2f\n", p.I, p.J, p.Similarity)
//	}
package assocmine

import (
	"fmt"
	"os"

	"assocmine/internal/matrix"
)

// Dataset is an immutable sparse boolean matrix. Rows are baskets,
// columns are attributes. A Dataset is safe for concurrent use.
type Dataset struct {
	m *matrix.Matrix
}

// NewDatasetFromRows builds a Dataset from row-major data: rows[r]
// lists the column indices set in row r (any order, duplicates
// collapse).
func NewDatasetFromRows(numCols int, rows [][]int) (*Dataset, error) {
	conv := make([][]int32, len(rows))
	for r, cs := range rows {
		row := make([]int32, len(cs))
		for i, c := range cs {
			if c < 0 || c >= numCols {
				return nil, fmt.Errorf("assocmine: row %d column %d out of range [0,%d)", r, c, numCols)
			}
			row[i] = int32(c)
		}
		conv[r] = row
	}
	m, err := matrix.FromRows(numCols, conv)
	if err != nil {
		return nil, err
	}
	return &Dataset{m: m}, nil
}

// NewDatasetFromColumns builds a Dataset column-major: cols[c] lists
// the row indices set in column c (must be strictly increasing).
func NewDatasetFromColumns(numRows int, cols [][]int) (*Dataset, error) {
	conv := make([][]int32, len(cols))
	for c, rs := range cols {
		col := make([]int32, len(rs))
		for i, r := range rs {
			col[i] = int32(r)
		}
		conv[c] = col
	}
	m, err := matrix.New(numRows, conv)
	if err != nil {
		return nil, err
	}
	return &Dataset{m: m}, nil
}

// LoadDataset reads a dataset file written by Save. Files ending in
// ".amx" use the compact binary codec; anything else is the text
// transaction format.
func LoadDataset(path string) (*Dataset, error) {
	m, err := matrix.LoadFile(path)
	if err != nil {
		return nil, err
	}
	return &Dataset{m: m}, nil
}

// Save writes the dataset to path (binary for ".amx", text otherwise).
func (d *Dataset) Save(path string) error {
	return matrix.SaveFile(path, d.m)
}

// LoadTransactions parses the classic market-basket interchange format
// (one transaction per line, whitespace-separated item names; '#'
// starts a comment). It returns the dataset and the item name of each
// column.
func LoadTransactions(path string) (*Dataset, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	m, names, err := matrix.ReadNamedTransactions(f)
	if err != nil {
		return nil, nil, err
	}
	return &Dataset{m: m}, names, nil
}

// SaveTransactions writes the dataset in the named transaction format,
// using names[c] as the item name of column c (names must be unique and
// whitespace-free).
func (d *Dataset) SaveTransactions(path string, names []string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = matrix.WriteNamedTransactions(f, d.m, names)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// NumRows returns the number of rows (baskets).
func (d *Dataset) NumRows() int { return d.m.NumRows() }

// NumCols returns the number of columns (attributes).
func (d *Dataset) NumCols() int { return d.m.NumCols() }

// Ones returns the number of 1-entries.
func (d *Dataset) Ones() int { return d.m.Ones() }

// ColumnSize returns the number of rows containing column c.
func (d *Dataset) ColumnSize(c int) int { return d.m.ColumnSize(c) }

// Density returns ColumnSize(c) / NumRows.
func (d *Dataset) Density(c int) float64 { return d.m.Density(c) }

// Similarity returns the exact Jaccard similarity of columns i and j.
func (d *Dataset) Similarity(i, j int) float64 { return d.m.Similarity(i, j) }

// Confidence returns the exact confidence of the rule i => j.
func (d *Dataset) Confidence(i, j int) float64 { return d.m.Confidence(i, j) }

// Matrix exposes the underlying matrix to sibling internal packages.
// It is deliberately unexported-by-convention: external users should
// not need it, but the internal evaluation harness reuses this public
// runner layer.
func (d *Dataset) Matrix() *matrix.Matrix { return d.m }

// WrapMatrix adopts an existing internal matrix as a Dataset. Intended
// for the internal generators and harnesses.
func WrapMatrix(m *matrix.Matrix) *Dataset { return &Dataset{m: m} }
