package assocmine_test

import (
	"fmt"

	"assocmine"
)

// The examples use tiny hand-written datasets so their output is
// deterministic; see examples/ for realistic scenarios.

func ExampleSimilarPairs() {
	// Rows are baskets, columns are items. Items 0 and 1 always appear
	// together but only in 2 of 8 baskets — high similarity, low
	// support.
	data, _ := assocmine.NewDatasetFromRows(4, [][]int{
		{0, 1}, {2}, {2, 3}, {0, 1}, {3}, {2}, {2, 3}, {3},
	})
	res, _ := assocmine.SimilarPairs(data, assocmine.Config{
		Algorithm: assocmine.BruteForce,
		Threshold: 0.6,
	})
	for _, p := range res.Pairs {
		fmt.Printf("(%d,%d) similarity %.2f\n", p.I, p.J, p.Similarity)
	}
	// Output:
	// (0,1) similarity 1.00
}

func ExampleMineRules() {
	// Column 0 implies column 1 in every row where it appears.
	data, _ := assocmine.NewDatasetFromRows(3, [][]int{
		{0, 1}, {0, 1}, {1}, {1, 2}, {2}, {0, 1},
	})
	res, _ := assocmine.MineRules(data, assocmine.RuleConfig{
		MinConfidence: 0.95,
		K:             200,
		Seed:          1,
	})
	for _, r := range res.Rules {
		fmt.Printf("%d => %d confidence %.2f\n", r.From, r.To, r.Confidence)
	}
	// Output:
	// 0 => 1 confidence 1.00
}

func ExamplePairMeasures() {
	data, _ := assocmine.NewDatasetFromColumns(10, [][]int{
		{0, 1, 2, 3},
		{2, 3, 4, 5},
	})
	m, _ := assocmine.PairMeasures(data, 0, 1)
	fmt.Printf("jaccard %.2f confidence %.2f lift %.2f\n", m.Jaccard, m.Confidence, m.Interest)
	// Output:
	// jaccard 0.33 confidence 0.50 lift 1.25
}

func ExampleCluster() {
	// Three identical columns form one cluster; a fourth is unrelated.
	data, _ := assocmine.NewDatasetFromColumns(6, [][]int{
		{0, 1, 2}, {0, 1, 2}, {0, 1, 2}, {4, 5},
	})
	res, _ := assocmine.SimilarPairs(data, assocmine.Config{
		Algorithm: assocmine.BruteForce, Threshold: 0.9,
	})
	for _, c := range assocmine.Cluster(data, res.Pairs, 0.9) {
		fmt.Println(c)
	}
	// Output:
	// [0 1 2]
}

func ExampleAnyOf() {
	// Column 0 equals the union of columns 1 and 2.
	data, _ := assocmine.NewDatasetFromColumns(8, [][]int{
		{0, 1, 4, 5},
		{0, 1},
		{4, 5},
	})
	ev, _ := assocmine.NewExprEvaluator(data, 64, 1)
	s, _ := ev.Similarity(assocmine.Col(0), assocmine.AnyOf(assocmine.Col(1), assocmine.Col(2)))
	fmt.Printf("similarity %.2f\n", s)
	// Output:
	// similarity 1.00
}
