// Collabfilter: the collaborative-filtering application from the
// paper's introduction. Rows are items, columns are users; two users
// are "taste neighbours" when their item sets are similar, and a
// high-confidence rule u => v means v liked almost everything u liked
// — useful for recommending v's remaining items to u even when both
// users are far too inactive to pass any support threshold.
//
// Run with: go run ./examples/collabfilter
package main

import (
	"fmt"
	"log"

	"assocmine"
)

const (
	numItems = 8000
	numUsers = 600
	// A few genres; users mostly sample items from their home genre.
	numGenres = 12
)

func main() {
	// Build a synthetic ratings matrix: rows are items, columns users.
	// Each genre owns a contiguous item block; each user draws most
	// items from one genre (heavy-rater users exist but are rare, so
	// support pruning would discard almost everyone).
	rowSets := make([][]int, numItems)
	seed := uint64(12345)
	next := func() uint64 { // splitmix64 stream, deterministic example
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	randFloat := func() float64 { return float64(next()>>11) / (1 << 53) }
	randInt := func(n int) int { return int(next() % uint64(n)) }

	genreOfUser := make([]int, numUsers)
	for u := 0; u < numUsers; u++ {
		genreOfUser[u] = randInt(numGenres)
	}
	itemsPerGenre := numItems / numGenres
	const hitsPerGenre = 80 // each genre has a small set of popular items
	for u := 0; u < numUsers; u++ {
		g := genreOfUser[u]
		// 30-80 ratings: ~70% from the genre's hits, ~20% from its long
		// tail, ~10% anywhere. The hit overlap is what makes same-genre
		// users similar.
		n := 30 + randInt(51)
		for i := 0; i < n; i++ {
			var item int
			switch r := randFloat(); {
			case r < 0.7:
				item = g*itemsPerGenre + randInt(hitsPerGenre)
			case r < 0.9:
				item = g*itemsPerGenre + randInt(itemsPerGenre)
			default:
				item = randInt(numItems)
			}
			rowSets[item] = append(rowSets[item], u)
		}
	}
	data, err := assocmine.NewDatasetFromRows(numUsers, rowSets)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ratings: %d items x %d users, %d ratings (mean %.0f per user)\n\n",
		numItems, numUsers, data.Ones(), float64(data.Ones())/numUsers)

	// Taste neighbours: user pairs with similar item sets. Support of
	// any single user is ~0.5% of items, so this is firmly in the
	// support-free regime.
	res, err := assocmine.SimilarPairs(data, assocmine.Config{
		Algorithm: assocmine.KMinHash,
		Threshold: 0.15,
		K:         120,
		Seed:      99,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("K-MH found %d taste-neighbour pairs (similarity >= 0.15) in %v\n",
		len(res.Pairs), res.Stats.Total())
	sameGenre := 0
	for _, p := range res.Pairs {
		if genreOfUser[p.I] == genreOfUser[p.J] {
			sameGenre++
		}
	}
	fmt.Printf("%d/%d neighbour pairs share a genre (sanity check on the planted structure)\n\n",
		sameGenre, len(res.Pairs))

	// Recommend: for the strongest neighbour pair, items v rated that
	// u has not.
	if len(res.Pairs) > 0 {
		u, v := res.Pairs[0].I, res.Pairs[0].J
		fmt.Printf("strongest pair: users %d and %d (similarity %.2f, genres %d/%d)\n",
			u, v, res.Pairs[0].Similarity, genreOfUser[u], genreOfUser[v])
		uItems := map[int]bool{}
		for item, users := range rowSets {
			for _, uu := range users {
				if uu == u {
					uItems[item] = true
				}
			}
		}
		recs := 0
		for item, users := range rowSets {
			for _, uu := range users {
				if uu == v && !uItems[item] {
					recs++
				}
			}
		}
		fmt.Printf("user %d can be recommended %d items from user %d's history\n", u, recs, v)
	}
}
