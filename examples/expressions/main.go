// Expressions: the Section 7 extensions in one place. On a synthetic
// store catalogue we score disjunctive and conjunctive rules from one
// sketch pass (no data re-scans), surface an anticorrelated product
// pair (mutual exclusion), and report the full measure panel for the
// most interesting pair.
//
// Run with: go run ./examples/expressions
package main

import (
	"fmt"
	"log"

	"assocmine"
)

func main() {
	// A grocery catalogue: columns are products.
	const (
		espresso = iota // bought by coffee people
		mokaPot         // bought by (other) coffee people
		grinder         // bought by all coffee people
		teapot          // bought by tea people — never with espresso
		looseTea        // tea people again
		bread           // everyone
		numItems
	)
	names := []string{"espresso", "moka-pot", "grinder", "teapot", "loose-tea", "bread"}

	rows := make([][]int, 30000)
	seed := uint64(7)
	next := func() uint64 {
		seed += 0x9e3779b97f4a7c15
		z := seed
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	frac := func() float64 { return float64(next()>>11) / (1 << 53) }
	for r := range rows {
		var basket []int
		switch {
		case frac() < 0.04: // espresso household
			basket = append(basket, espresso, grinder)
		case frac() < 0.04: // moka household
			basket = append(basket, mokaPot, grinder)
		case frac() < 0.06: // tea household
			basket = append(basket, teapot)
			if frac() < 0.8 {
				basket = append(basket, looseTea)
			}
		}
		if frac() < 0.3 {
			basket = append(basket, bread)
		}
		rows[r] = basket
	}
	data, err := assocmine.NewDatasetFromRows(numItems, rows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("catalogue: %d baskets x %d products\n\n", data.NumRows(), data.NumCols())

	// One sketch pass answers every expression query below.
	ev, err := assocmine.NewExprEvaluator(data, 512, 3)
	if err != nil {
		log.Fatal(err)
	}

	// Disjunctive rule: grinder => espresso ∨ moka-pot. Neither single
	// rule holds (each coffee camp is half the grinder buyers), but the
	// disjunction does.
	confEsp, _ := ev.Confidence(assocmine.Col(grinder), assocmine.Col(espresso))
	confOr, err := ev.Confidence(assocmine.Col(grinder),
		assocmine.AnyOf(assocmine.Col(espresso), assocmine.Col(mokaPot)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("conf(grinder => espresso)              = %.2f\n", confEsp)
	fmt.Printf("conf(grinder => espresso ∨ moka-pot)   = %.2f   <- the §7 disjunctive rule\n\n", confOr)

	// Conjunctive cardinality: teapot ∧ loose-tea buyers.
	both, err := ev.Cardinality(assocmine.AllOf(assocmine.Col(teapot), assocmine.Col(looseTea)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated |teapot ∧ loose-tea| = %.0f (exact %d)\n\n",
		both, intersection(rows, teapot, looseTea))

	// Mutual exclusion: espresso and teapot households never overlap.
	exclusions, err := assocmine.MutualExclusions(data, assocmine.ExclusionConfig{
		MinSupport: 0.02, MaxLift: 0.2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("mutually exclusive product pairs (lift << 1):")
	for _, x := range exclusions {
		fmt.Printf("  %s / %s: observed %.0f of expected %.0f co-purchases (lift %.2f)\n",
			names[x.I], names[x.J], x.Observed, x.Expected, x.Lift)
	}

	// Full measure panel for the strongest pair.
	meas, err := assocmine.PairMeasures(data, teapot, looseTea)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmeasure panel for (teapot, loose-tea):\n")
	fmt.Printf("  jaccard %.2f  confidence %.2f  lift %.1f  conviction %.2f  chi² %.0f\n",
		meas.Jaccard, meas.Confidence, meas.Interest, meas.Conviction, meas.ChiSquare)
}

func intersection(rows [][]int, a, b int) int {
	n := 0
	for _, row := range rows {
		hasA, hasB := false, false
		for _, c := range row {
			if c == a {
				hasA = true
			}
			if c == b {
				hasB = true
			}
		}
		if hasA && hasB {
			n++
		}
	}
	return n
}
