// News: the paper's Section 2 scenario. Mine a news corpus for word
// pairs that co-occur with high similarity but very low support — the
// "Dalai Lama" / "Beluga caviar" collocations of Fig. 1 — and compare
// against the a-priori baseline, which needs support pruning so
// aggressive it loses exactly those pairs (Fig. 4).
//
// Run with: go run ./examples/news
package main

import (
	"errors"
	"fmt"
	"log"
	"time"

	"assocmine"
)

func main() {
	corpus, err := assocmine.GenerateNews(assocmine.NewsOptions{
		Docs:  20000,
		Vocab: 3000,
		Seed:  7,
	})
	if err != nil {
		log.Fatal(err)
	}
	data := corpus.Data
	fmt.Printf("news corpus: %d documents, %d words, %.4f%% dense\n\n",
		data.NumRows(), data.NumCols(),
		100*float64(data.Ones())/float64(data.NumRows()*data.NumCols()))

	// Min-LSH: the paper's fastest scheme.
	start := time.Now()
	res, err := assocmine.SimilarPairs(data, assocmine.Config{
		Algorithm: assocmine.MinLSH,
		Threshold: 0.6,
		K:         100, R: 5, L: 20,
		Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("M-LSH found %d similar word pairs in %v:\n", len(res.Pairs), time.Since(start))
	planted := map[[2]int]bool{}
	for _, p := range corpus.PlantedPairs {
		planted[p] = true
		planted[[2]int{p[1], p[0]}] = true
	}
	recovered := 0
	for _, p := range res.Pairs {
		tag := ""
		if planted[[2]int{p.I, p.J}] {
			tag = "  <- Fig. 1 collocation"
			recovered++
		}
		fmt.Printf("  (%s, %s)  sim=%.2f support=%.3f%%%s\n",
			corpus.Word(p.I), corpus.Word(p.J), p.Similarity,
			100*data.Density(p.I), tag)
	}
	fmt.Printf("recovered %d/%d planted collocations\n\n", recovered, len(corpus.PlantedPairs))

	// The word cluster (the paper's chess-event example): pairs within
	// the cluster are mutually similar.
	fmt.Println("planted cluster similarities (the paper's chess cluster):")
	for i := 0; i < len(corpus.ClusterCols); i++ {
		for j := i + 1; j < len(corpus.ClusterCols); j++ {
			a, b := corpus.ClusterCols[i], corpus.ClusterCols[j]
			fmt.Printf("  (%s, %s): %.2f\n", corpus.Word(a), corpus.Word(b), data.Similarity(a, b))
		}
	}

	// A-priori needs support >= ~0.5% here just to fit in memory, but
	// the planted collocations live well below that support.
	fmt.Println("\na-priori comparison:")
	for _, support := range []float64{0.0005, 0.005, 0.02} {
		start := time.Now()
		_, err := assocmine.SimilarPairs(data, assocmine.Config{
			Algorithm:           assocmine.Apriori,
			Threshold:           0.6,
			MinSupport:          support,
			AprioriMemoryBudget: 8 << 20,
		})
		switch {
		case errors.Is(err, assocmine.ErrAprioriMemory):
			fmt.Printf("  support %.2f%%: out of memory (the Fig. 4 '-' row)\n", 100*support)
		case err != nil:
			log.Fatal(err)
		default:
			fmt.Printf("  support %.2f%%: ran in %v, but support pruning discards the rare collocations\n",
				100*support, time.Since(start))
		}
	}
}
