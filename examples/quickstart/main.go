// Quickstart: find similar column pairs in a tiny hand-written dataset
// with every algorithm, and mine a support-free high-confidence rule.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"assocmine"
)

func main() {
	// A toy market-basket table: rows are baskets, columns are items.
	// Items 0 and 1 ("caviar" and "vodka") are rare but always bought
	// together; items 2-4 are popular independent staples.
	items := []string{"caviar", "vodka", "bread", "milk", "beer"}
	var rows [][]int
	for b := 0; b < 1000; b++ {
		var basket []int
		if b%100 == 7 { // 1% of baskets: the rare pair
			basket = append(basket, 0, 1)
		}
		if b%3 == 0 {
			basket = append(basket, 2)
		}
		if b%4 == 0 {
			basket = append(basket, 3)
		}
		if b%5 == 0 {
			basket = append(basket, 4)
		}
		rows = append(rows, basket)
	}
	data, err := assocmine.NewDatasetFromRows(len(items), rows)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset: %d baskets x %d items, %d entries\n\n",
		data.NumRows(), data.NumCols(), data.Ones())

	// Find similar pairs with each algorithm. The rare caviar/vodka
	// pair has similarity 1.0 but support 1% — a-priori-style support
	// pruning at, say, 5% would never see it.
	for _, algo := range []assocmine.Algorithm{
		assocmine.BruteForce, assocmine.MinHash, assocmine.KMinHash,
		assocmine.MinLSH, assocmine.HammingLSH,
	} {
		res, err := assocmine.SimilarPairs(data, assocmine.Config{
			Algorithm: algo,
			Threshold: 0.8,
			Seed:      42,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10v found %d pair(s) in %v:\n", algo, len(res.Pairs), res.Stats.Total())
		for _, p := range res.Pairs {
			fmt.Printf("  %s <-> %s  (similarity %.2f, support %.1f%%)\n",
				items[p.I], items[p.J], p.Similarity, 100*data.Density(p.I))
		}
	}

	// Mine directed high-confidence rules without any support pruning.
	rules, err := assocmine.MineRules(data, assocmine.RuleConfig{
		MinConfidence: 0.95,
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhigh-confidence rules (conf >= 0.95):\n")
	for _, r := range rules.Rules {
		fmt.Printf("  %s => %s  (confidence %.2f)\n", items[r.From], items[r.To], r.Confidence)
	}
}
