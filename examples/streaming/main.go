// Streaming: the paper's disk-resident setting end to end. A dataset
// is written to disk, then mined directly from the file — one
// sequential pass for signatures, one for verification, with only the
// O(m·K) signatures in memory — first serially, then with parallel
// workers and a verification memory budget small enough to force the
// counter table to spill sorted runs to disk (same results either
// way), and finally re-mined progressively (Section 4's online
// framework), stopping early once enough pairs have surfaced.
//
// Run with: go run ./examples/streaming
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"assocmine"
)

func main() {
	dir, err := os.MkdirTemp("", "assocmine-streaming")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "weblog.arows")

	// Generate and persist a web-log dataset.
	web, err := assocmine.GenerateWebLog(assocmine.WebLogOptions{
		Clients: 15000, URLs: 1500, Seed: 11,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := web.Data.SaveRowBinary(path); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("wrote %s: %d clients x %d URLs in %d bytes\n\n",
		filepath.Base(path), web.Data.NumRows(), web.Data.NumCols(), info.Size())

	// Mine straight from the file. Each phase is one sequential pass.
	fd, err := assocmine.OpenFileDataset(path)
	if err != nil {
		log.Fatal(err)
	}
	res, err := fd.SimilarPairs(assocmine.Config{
		Algorithm: assocmine.KMinHash,
		Threshold: 0.7,
		K:         100,
		Seed:      3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("disk-resident K-MH: %d pairs, %d file passes (%d rows scanned, %d bytes read), total %v\n",
		len(res.Pairs), res.Stats.DataPasses, res.Stats.RowsScanned, res.Stats.BytesRead, res.Stats.Total())

	// Same mine, out of core at full tilt: four workers share both file
	// passes (a single reader broadcasts row shards, so the file is
	// still read exactly once per pass), and a tiny memory budget
	// forces the verification counter table to spill sorted runs to
	// disk. Results are bit-identical to the serial run.
	ooc, err := fd.SimilarPairs(assocmine.Config{
		Algorithm:    assocmine.KMinHash,
		Threshold:    0.7,
		K:            100,
		Seed:         3,
		Workers:      4,
		MemoryBudget: 4 << 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("out-of-core K-MH:   %d pairs, %d shards streamed, %d spill runs (%d bytes), total %v\n",
		len(ooc.Pairs), ooc.Stats.ShardsStreamed, ooc.Stats.SpillRuns, ooc.Stats.SpillBytes, ooc.Stats.Total())
	if len(ooc.Pairs) != len(res.Pairs) {
		log.Fatalf("out-of-core run found %d pairs, serial found %d", len(ooc.Pairs), len(res.Pairs))
	}

	// Progressive Min-LSH on the in-memory copy: results stream in band
	// by band, highest similarities first; stop after 100 pairs.
	data, err := fd.Load()
	if err != nil {
		log.Fatal(err)
	}
	const wanted = 100
	prog, err := assocmine.ProgressiveSimilarPairs(data, assocmine.Config{
		Algorithm: assocmine.MinLSH,
		Threshold: 0.7,
		K:         100, R: 5, L: 20,
		Seed: 3,
	}, func(p assocmine.Progress) bool {
		fmt.Printf("  band %2d/%d: +%d pairs (total %d)\n",
			p.Band+1, p.Bands, len(p.Fresh), p.TotalFound)
		return p.TotalFound < wanted
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("progressive M-LSH stopped with %d verified pairs; strongest: (%d,%d) sim %.2f\n",
		len(prog.Pairs), prog.Pairs[0].I, prog.Pairs[0].J, prog.Pairs[0].Similarity)
}
