// Weblog: copy detection on web-server logs, the paper's Sun
// Microsystems scenario (Section 5). Columns are URLs, rows are client
// IPs; the similar pairs the algorithms surface are embedded
// gif/applet resources that load together with their parent page —
// exactly the explanation the paper gives for its own findings.
//
// This example also demonstrates the input-sensitive (r, l) parameter
// optimizer of Section 4.1: the similarity distribution is estimated
// from a small column sample, then Min-LSH parameters are chosen to
// meet explicit false-negative/false-positive budgets.
//
// Run with: go run ./examples/weblog
package main

import (
	"fmt"
	"log"
	"time"

	"assocmine"
)

func main() {
	web, err := assocmine.GenerateWebLog(assocmine.WebLogOptions{
		Clients: 20000,
		URLs:    2000,
		Seed:    3,
	})
	if err != nil {
		log.Fatal(err)
	}
	data := web.Data
	fmt.Printf("web log: %d client IPs x %d URLs, density %.4f%%\n\n",
		data.NumRows(), data.NumCols(),
		100*float64(data.Ones())/float64(data.NumRows()*data.NumCols()))

	// Estimate the similarity distribution by sampling columns, then
	// let the optimizer pick (r, l) for a 1%-FN / bounded-FP target.
	params, err := assocmine.OptimizeLSH(data, assocmine.LSHBudget{
		Threshold:     0.7,
		SampleColumns: 200,
		MaxFalseNeg:   5,
		MaxFalsePos:   2000,
		Seed:          9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimizer chose r=%d, l=%d (k=%d min-hashes; predicted FN=%.1f FP=%.0f)\n\n",
		params.R, params.L, params.R*params.L, params.PredictedFN, params.PredictedFP)

	start := time.Now()
	res, err := assocmine.SimilarPairs(data, assocmine.Config{
		Algorithm: assocmine.MinLSH,
		Threshold: 0.7,
		K:         params.R * params.L,
		R:         params.R,
		L:         params.L,
		Seed:      5,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("M-LSH found %d similar URL pairs in %v\n", len(res.Pairs), time.Since(start))

	// Check the findings against the known embedded-resource groups.
	groupOf := map[int]int{}
	for g, cols := range web.Groups {
		for _, c := range cols {
			groupOf[c] = g
		}
	}
	sameGroup := 0
	for _, p := range res.Pairs {
		gi, okI := groupOf[p.I]
		gj, okJ := groupOf[p.J]
		if okI && okJ && gi == gj {
			sameGroup++
		}
	}
	fmt.Printf("%d/%d found pairs are embedded resources of the same parent page\n",
		sameGroup, len(res.Pairs))
	show := res.Pairs
	if len(show) > 10 {
		show = show[:10]
	}
	for _, p := range show {
		fmt.Printf("  /url%04d <-> /url%04d  sim=%.2f (fetched by %d and %d clients)\n",
			p.I, p.J, p.Similarity, data.ColumnSize(p.I), data.ColumnSize(p.J))
	}
}
