package assocmine

import (
	"assocmine/internal/boolexpr"
	"assocmine/internal/kminhash"
)

// BoolExpr is a Boolean expression over columns, built with Col, AnyOf
// and AllOf. It supports the Section 7 "complex Boolean expressions"
// extension: cardinalities, similarities, and confidences of composite
// columns are estimated from one set of bottom-k sketches, with no
// further data passes.
//
// Structural rules (enforced at evaluation): AllOf arguments must be
// columns or AnyOf trees (a conjunction has no sketch, so it cannot
// nest), and AllOf fan-in is capped — inclusion-exclusion is
// exponential in it, the overhead the paper predicts.
type BoolExpr struct {
	e boolexpr.Expr
}

// Col references a single column.
func Col(c int) BoolExpr { return BoolExpr{e: boolexpr.Column(int32(c))} }

// AnyOf is the disjunction of its arguments.
func AnyOf(xs ...BoolExpr) BoolExpr {
	or := make(boolexpr.Or, len(xs))
	for i, x := range xs {
		or[i] = x.e
	}
	return BoolExpr{e: or}
}

// AllOf is the conjunction of its arguments.
func AllOf(xs ...BoolExpr) BoolExpr {
	and := make(boolexpr.And, len(xs))
	for i, x := range xs {
		and[i] = x.e
	}
	return BoolExpr{e: and}
}

// ExprEvaluator answers queries about Boolean column expressions from
// one sketch pass over the dataset.
type ExprEvaluator struct {
	ev *boolexpr.Evaluator
}

// NewExprEvaluator computes bottom-k sketches (size k, default 256) and
// returns an evaluator. Estimation error scales as ~1/sqrt(k).
func NewExprEvaluator(d *Dataset, k int, seed uint64) (*ExprEvaluator, error) {
	if k == 0 {
		k = 256
	}
	s, err := kminhash.Compute(d.m.Stream(), k, seed)
	if err != nil {
		return nil, err
	}
	return &ExprEvaluator{ev: boolexpr.NewEvaluator(s)}, nil
}

// NewExprEvaluatorFromSketches builds an evaluator over a resident
// bottom-k sketch (ComputeSketches, LoadSketches, or Ingest.Sketches),
// skipping the sketch pass entirely — the serving-layer path, where
// one warm sketch answers every expression query.
func NewExprEvaluatorFromSketches(s *Sketches) *ExprEvaluator {
	return &ExprEvaluator{ev: boolexpr.NewEvaluator(s.sk)}
}

// NumCols returns the number of columns the evaluator's sketch covers.
func (e *ExprEvaluator) NumCols() int { return e.ev.NumCols() }

// Cardinality estimates the number of rows satisfying x.
func (e *ExprEvaluator) Cardinality(x BoolExpr) (float64, error) {
	return e.ev.Cardinality(x.e)
}

// Similarity estimates the Jaccard similarity of two (sketchable)
// expressions.
func (e *ExprEvaluator) Similarity(a, b BoolExpr) (float64, error) {
	return e.ev.Similarity(a.e, b.e)
}

// Confidence estimates conf(a => b) for sketchable expressions.
func (e *ExprEvaluator) Confidence(a, b BoolExpr) (float64, error) {
	return e.ev.Confidence(a.e, b.e)
}
