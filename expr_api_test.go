package assocmine

import (
	"math"
	"testing"
)

func TestExprEvaluator(t *testing.T) {
	// Column 0 is exactly the union of 1 and 2; 3 is noise.
	rows := make([][]int, 10000)
	for r := range rows {
		switch {
		case r%20 == 0:
			rows[r] = []int{0, 1}
		case r%20 == 1:
			rows[r] = []int{0, 2}
		case r%7 == 0:
			rows[r] = []int{3}
		}
	}
	d, err := NewDatasetFromRows(4, rows)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := NewExprEvaluator(d, 512, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Cardinality of a single column is exact.
	c0, err := ev.Cardinality(Col(0))
	if err != nil {
		t.Fatal(err)
	}
	if c0 != float64(d.ColumnSize(0)) {
		t.Errorf("Cardinality(c0) = %v, want %d", c0, d.ColumnSize(0))
	}
	// S(c0, c1 ∨ c2) should be ~1.
	s, err := ev.Similarity(Col(0), AnyOf(Col(1), Col(2)))
	if err != nil {
		t.Fatal(err)
	}
	if s < 0.9 {
		t.Errorf("Similarity(c0, c1∨c2) = %v, want ~1", s)
	}
	// conf(c1 => c0) = 1 exactly.
	conf, err := ev.Confidence(Col(1), Col(0))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(conf-1) > 0.15 {
		t.Errorf("Confidence(c1 => c0) = %v, want ~1", conf)
	}
	// |c1 ∧ c3| = 0.
	and, err := ev.Cardinality(AllOf(Col(1), Col(3)))
	if err != nil {
		t.Fatal(err)
	}
	if and > 0.05*float64(d.ColumnSize(1)) {
		t.Errorf("Cardinality(c1∧c3) = %v, want ~0", and)
	}
	// Structural validation surfaces.
	if _, err := ev.Cardinality(AllOf(AllOf(Col(0), Col(1)), Col(2))); err == nil {
		t.Error("nested AllOf accepted")
	}
	if _, err := ev.Similarity(AllOf(Col(0), Col(1)), Col(2)); err == nil {
		t.Error("similarity of AllOf accepted")
	}
	if _, err := ev.Cardinality(Col(99)); err == nil {
		t.Error("out-of-range column accepted")
	}
}
