package assocmine

import (
	"fmt"

	"assocmine/internal/cluster"
	"assocmine/internal/minhash"
	"assocmine/internal/pairs"
	"assocmine/internal/rules"
)

// This file exposes the Section 7 extensions: mutual exclusion
// (anticorrelation), multi-way OR consequents, and the column
// clustering the paper's news experiment illustrates.

// Exclusion is a column pair that co-occurs far less than independence
// predicts (Lift = observed/expected co-occurrence, near 0 for mutual
// exclusion).
type Exclusion struct {
	I, J               int
	Expected, Observed float64
	Lift               float64
}

// ExclusionConfig controls MutualExclusions. A support floor is
// mandatory: extremely sparse columns are mutually exclusive by sheer
// chance (Section 7).
type ExclusionConfig struct {
	// MinSupport is the support-fraction floor for both columns.
	MinSupport float64
	// MaxLift is the reporting ceiling on observed/expected; default 0.2.
	MaxLift float64
	// UseSignatures estimates co-occurrence from a min-hash sketch (K
	// values, one signature pass) instead of exact counting; candidates
	// should then be re-checked if exactness matters.
	UseSignatures bool
	// K is the sketch size when UseSignatures is set; default 200.
	K int
	// Seed drives hashing when UseSignatures is set.
	Seed uint64
}

// MutualExclusions finds anticorrelated column pairs.
func MutualExclusions(d *Dataset, cfg ExclusionConfig) ([]Exclusion, error) {
	opt := rules.ExclusionOptions{MinSupport: cfg.MinSupport, MaxLift: cfg.MaxLift}
	var (
		raw []rules.Exclusion
		err error
	)
	if cfg.UseSignatures {
		k := cfg.K
		if k == 0 {
			k = 200
		}
		var sig *minhash.Signatures
		sig, err = minhash.Compute(d.m.Stream(), k, cfg.Seed)
		if err != nil {
			return nil, err
		}
		sizes := make([]int, d.m.NumCols())
		for c := range sizes {
			sizes[c] = d.m.ColumnSize(c)
		}
		raw, err = rules.MutualExclusionsFromSignatures(sig, sizes, d.m.NumRows(), opt)
	} else {
		raw, err = rules.MutualExclusions(d.m, opt)
	}
	if err != nil {
		return nil, err
	}
	out := make([]Exclusion, len(raw))
	for i, x := range raw {
		out[i] = Exclusion{
			I: int(x.I), J: int(x.J),
			Expected: x.Expected, Observed: x.Observed, Lift: x.Lift,
		}
	}
	return out, nil
}

// OrSimilarityMulti estimates the similarity between column i and the
// disjunction of the given columns from one min-hash sketch (the
// signature of an OR of columns is the component-wise minimum of their
// signatures, Section 7). Useful for scoring a handful of candidate
// disjunctive rules; K defaults to 200.
func OrSimilarityMulti(d *Dataset, i int, js []int, k int, seed uint64) (float64, error) {
	if i < 0 || i >= d.m.NumCols() {
		return 0, fmt.Errorf("assocmine: column %d out of range", i)
	}
	for _, j := range js {
		if j < 0 || j >= d.m.NumCols() {
			return 0, fmt.Errorf("assocmine: column %d out of range", j)
		}
	}
	if k == 0 {
		k = 200
	}
	sig, err := minhash.Compute(d.m.Stream(), k, seed)
	if err != nil {
		return 0, err
	}
	return rules.OrSimilarityEstimateMulti(sig, i, js), nil
}

// Cluster groups a similar-pairs result into column clusters: connected
// components of the similarity graph whose pairwise edge density is at
// least minDensity (use 0 for plain single-link components). This is
// the paper's "clusters of words" output — e.g. the chess-event
// cluster.
func Cluster(d *Dataset, found []Pair, minDensity float64) [][]int {
	ps := make([]pairs.Pair, 0, len(found))
	for _, p := range found {
		if p.I == p.J {
			continue
		}
		ps = append(ps, pairs.Make(int32(p.I), int32(p.J)))
	}
	var raw [][]int32
	if minDensity > 0 {
		raw = cluster.DenseComponents(d.m.NumCols(), ps, minDensity)
	} else {
		raw = cluster.Components(d.m.NumCols(), ps)
	}
	out := make([][]int, len(raw))
	for i, comp := range raw {
		out[i] = make([]int, len(comp))
		for j, c := range comp {
			out[i][j] = int(c)
		}
	}
	return out
}
