package assocmine

import (
	"testing"
)

func exclusionDataset(t *testing.T) *Dataset {
	t.Helper()
	rows := make([][]int, 4000)
	for r := range rows {
		var row []int
		// Columns 0 and 1 partition the rows: perfectly exclusive.
		if r%2 == 0 {
			row = append(row, 0)
		} else {
			row = append(row, 1)
		}
		// Columns 2 and 3 are independent of everything (lift ~1 with
		// 0, 1 and each other).
		if r%3 == 0 {
			row = append(row, 2)
		}
		if r%5 == 0 {
			row = append(row, 3)
		}
		rows[r] = row
	}
	d, err := NewDatasetFromRows(4, rows)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestMutualExclusionsExactPath(t *testing.T) {
	d := exclusionDataset(t)
	out, err := MutualExclusions(d, ExclusionConfig{MinSupport: 0.1, MaxLift: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].I != 0 || out[0].J != 1 {
		t.Fatalf("exclusions = %+v", out)
	}
	if out[0].Observed != 0 || out[0].Lift != 0 {
		t.Errorf("exclusion stats = %+v", out[0])
	}
}

func TestMutualExclusionsSignaturePath(t *testing.T) {
	d := exclusionDataset(t)
	out, err := MutualExclusions(d, ExclusionConfig{
		MinSupport: 0.1, MaxLift: 0.1, UseSignatures: true, K: 300, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, x := range out {
		if x.I == 0 && x.J == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("signature path missed the exclusive pair: %+v", out)
	}
}

func TestMutualExclusionsValidation(t *testing.T) {
	d := exclusionDataset(t)
	if _, err := MutualExclusions(d, ExclusionConfig{}); err == nil {
		t.Error("missing MinSupport accepted")
	}
}

func TestOrSimilarityMulti(t *testing.T) {
	// Column 0 = exact union of 1 and 2.
	d, err := NewDatasetFromColumns(20, [][]int{
		{0, 1, 2, 10, 11},
		{0, 1, 2},
		{10, 11},
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := OrSimilarityMulti(d, 0, []int{1, 2}, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s != 1 {
		t.Errorf("OR similarity = %v, want 1", s)
	}
	if _, err := OrSimilarityMulti(d, 9, []int{1}, 10, 1); err == nil {
		t.Error("out-of-range antecedent accepted")
	}
	if _, err := OrSimilarityMulti(d, 0, []int{9}, 10, 1); err == nil {
		t.Error("out-of-range consequent accepted")
	}
}

func TestClusterRecoversGroups(t *testing.T) {
	// Three near-identical column groups.
	cols := make([][]int, 9)
	for g := 0; g < 3; g++ {
		base := []int{g * 10, g*10 + 1, g*10 + 2}
		for member := 0; member < 3; member++ {
			cols[g*3+member] = base
		}
	}
	d, err := NewDatasetFromColumns(40, cols)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SimilarPairs(d, Config{Algorithm: BruteForce, Threshold: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	clusters := Cluster(d, res.Pairs, 0.9)
	if len(clusters) != 3 {
		t.Fatalf("clusters = %v", clusters)
	}
	for _, c := range clusters {
		if len(c) != 3 {
			t.Errorf("cluster %v has %d members, want 3", c, len(c))
		}
		group := c[0] / 3
		for _, m := range c {
			if m/3 != group {
				t.Errorf("cluster %v mixes groups", c)
			}
		}
	}
	// minDensity 0 path (plain components).
	if got := Cluster(d, res.Pairs, 0); len(got) != 3 {
		t.Errorf("component clustering = %v", got)
	}
}
