package assocmine

import (
	"fmt"
	"sync"

	"assocmine/internal/matrix"
)

// FileDataset mines a dataset straight from disk: every phase that only
// needs sequential access (signature computation, a-priori counting,
// verification) performs one fresh pass over the file, and nothing but
// the O(m·K) signatures and candidate counters is held in memory. This
// is the paper's actual operating regime — "we are more interested in
// the case where M is large and the data is disk-resident".
//
// Supported files: the text transaction format (".txt" written by
// Dataset.Save) and the row-major streaming binary format (".arows",
// written by SaveRowBinary). HammingLSH and the Cluster helper need the
// full matrix; for those the file is materialised once and cached.
type FileDataset struct {
	src *matrix.FileSource

	once sync.Once
	mat  *matrix.Matrix
	err  error
}

// OpenFileDataset validates the file header and returns a FileDataset.
func OpenFileDataset(path string) (*FileDataset, error) {
	src, err := matrix.OpenFileSource(path)
	if err != nil {
		return nil, err
	}
	return &FileDataset{src: src}, nil
}

// NumRows returns the row count from the file header.
func (f *FileDataset) NumRows() int { return f.src.NumRows() }

// NumCols returns the column count from the file header.
func (f *FileDataset) NumCols() int { return f.src.NumCols() }

// SimilarPairs runs the configured algorithm with one file pass per
// phase. Only HammingLSH materialises the matrix (its fold ladder is a
// whole-data structure).
func (f *FileDataset) SimilarPairs(cfg Config) (*Result, error) {
	return similarPairs(f.src, f.materialize, cfg)
}

// Load materialises the file into an in-memory Dataset (cached; later
// calls reuse it).
func (f *FileDataset) Load() (*Dataset, error) {
	m, err := f.materialize()
	if err != nil {
		return nil, err
	}
	return &Dataset{m: m}, nil
}

func (f *FileDataset) materialize() (*matrix.Matrix, error) {
	f.once.Do(func() {
		f.mat, f.err = matrix.Collect(f.src)
	})
	if f.err != nil {
		return nil, fmt.Errorf("assocmine: materialising file dataset %s: %w", f.src.Path(), f.err)
	}
	return f.mat, nil
}

// SaveRowBinary writes the dataset in the ".arows" row-major streaming
// binary format, the most compact input for FileDataset.
func (d *Dataset) SaveRowBinary(path string) error {
	return matrix.SaveRowBinary(path, d.m.Stream())
}
