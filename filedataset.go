package assocmine

import (
	"fmt"
	"sync"

	"assocmine/internal/matrix"
)

// FileDataset mines a dataset straight from disk: every phase that only
// needs sequential access (signature computation, a-priori counting,
// verification) performs one fresh pass over the file, and nothing but
// the O(m·K) signatures and candidate counters is held in memory. This
// is the paper's actual operating regime — "we are more interested in
// the case where M is large and the data is disk-resident".
//
// Supported files: the text transaction format (".txt" written by
// Dataset.Save), the row-major streaming binary format (".arows",
// written by SaveRowBinary) and its compressed variant (".carows",
// written by SaveRowCompressed). HammingLSH and the Cluster helper need the
// full matrix; for those the file is materialised once and cached.
type FileDataset struct {
	src *matrix.FileSource

	once sync.Once
	mat  *matrix.Matrix
	err  error
}

// FS abstracts the file opens a FileDataset performs — the seam that
// lets tests (and the chaos harness) inject IO faults underneath the
// whole pipeline. nil means the operating system.
type FS = matrix.FS

// RetryPolicy bounds the retries the file-backed source performs on
// transient IO errors; see SetRetryPolicy.
type RetryPolicy = matrix.RetryPolicy

// FileError is the wrapped error a file-backed run returns for
// permanent IO or decode faults, carrying the path and the byte offset
// the decoder had consumed. Retrieve it with errors.As.
type FileError = matrix.FileError

// OpenFileDataset validates the file header and returns a FileDataset.
func OpenFileDataset(path string) (*FileDataset, error) {
	return OpenFileDatasetFS(nil, path)
}

// OpenFileDatasetFS is OpenFileDataset with every file open routed
// through fsys (nil means the OS).
func OpenFileDatasetFS(fsys FS, path string) (*FileDataset, error) {
	src, err := matrix.OpenFileSourceFS(fsys, path)
	if err != nil {
		return nil, err
	}
	return &FileDataset{src: src}, nil
}

// SetRetryPolicy replaces the transient-IO retry policy of the
// dataset's reads (default matrix.DefaultRetryPolicy). Not safe to
// call concurrently with a running SimilarPairs.
func (f *FileDataset) SetRetryPolicy(p RetryPolicy) { f.src.SetRetryPolicy(p) }

// NumRows returns the row count from the file header.
func (f *FileDataset) NumRows() int { return f.src.NumRows() }

// NumCols returns the column count from the file header.
func (f *FileDataset) NumCols() int { return f.src.NumCols() }

// SimilarPairs runs the configured algorithm with one file pass per
// phase. Only HammingLSH materialises the matrix (its fold ladder is a
// whole-data structure).
func (f *FileDataset) SimilarPairs(cfg Config) (*Result, error) {
	return similarPairs(f.src, f.materialize, cfg)
}

// Load materialises the file into an in-memory Dataset (cached; later
// calls reuse it).
func (f *FileDataset) Load() (*Dataset, error) {
	m, err := f.materialize()
	if err != nil {
		return nil, err
	}
	return &Dataset{m: m}, nil
}

func (f *FileDataset) materialize() (*matrix.Matrix, error) {
	f.once.Do(func() {
		f.mat, f.err = matrix.Collect(f.src)
	})
	if f.err != nil {
		return nil, fmt.Errorf("assocmine: materialising file dataset %s: %w", f.src.Path(), f.err)
	}
	return f.mat, nil
}

// SaveRowBinary writes the dataset in the ".arows" row-major streaming
// binary format, the most compact uncompressed input for FileDataset.
func (d *Dataset) SaveRowBinary(path string) error {
	return matrix.SaveRowBinary(path, d.m.Stream())
}

// SaveRowCompressed writes the dataset in the ".carows" compressed
// row-major format (Rice-coded gap deltas or literal bitmaps, whichever
// is smaller per row). It streams through FileDataset exactly like
// ".arows" — same scans, same error reporting, bit-identical results —
// while reading fewer bytes from disk.
func (d *Dataset) SaveRowCompressed(path string) error {
	return matrix.SaveRowCompressed(path, d.m.Stream())
}
