package assocmine

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzOpenFileDataset feeds arbitrary bytes to the two on-disk formats
// FileDataset understands (text transactions and .arows row binary).
// Any input must either parse or error — never panic or blow memory on
// a hostile header — and whatever parses must survive a save/reload
// round trip with identical shape.
func FuzzOpenFileDataset(f *testing.F) {
	d, _, err := GenerateSynthetic(SyntheticOptions{
		Rows: 20, Cols: 10, PairsPerRange: 1, Seed: 1,
	})
	if err != nil {
		f.Fatal(err)
	}
	seedDir := f.TempDir()
	txt := filepath.Join(seedDir, "seed.txt")
	if err := d.Save(txt); err != nil {
		f.Fatal(err)
	}
	arows := filepath.Join(seedDir, "seed.arows")
	if err := d.SaveRowBinary(arows); err != nil {
		f.Fatal(err)
	}
	for _, p := range []string{txt, arows} {
		data, err := os.ReadFile(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data, p == arows)
		// Truncated variants: valid header, stream cut short mid-row.
		f.Add(data[:len(data)/2], p == arows)
		f.Add(data[:3*len(data)/4], p == arows)
	}
	f.Add([]byte(""), true)
	f.Add([]byte("AROW"), true)
	f.Add([]byte("2 2\n0 1\n1\n"), false)

	f.Fuzz(func(t *testing.T, data []byte, binary bool) {
		ext := ".txt"
		if binary {
			ext = ".arows"
		}
		path := filepath.Join(t.TempDir(), "in"+ext)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		fd, err := OpenFileDataset(path)
		if err != nil {
			return
		}
		// A header may legally claim huge dimensions backed by no data.
		// Every downstream phase allocates O(rows) or O(cols) state, so
		// processing such a file would test the allocator, not the
		// parser; header validation is the whole contract there.
		if fd.NumRows() > 1<<16 || fd.NumCols() > 1<<16 {
			return
		}
		loaded, err := fd.Load()
		if err != nil {
			return
		}
		out := filepath.Join(t.TempDir(), "out.arows")
		if err := loaded.SaveRowBinary(out); err != nil {
			t.Fatalf("saving parsed dataset: %v", err)
		}
		fd2, err := OpenFileDataset(out)
		if err != nil {
			t.Fatalf("reopening saved dataset: %v", err)
		}
		re, err := fd2.Load()
		if err != nil {
			t.Fatalf("reloading saved dataset: %v", err)
		}
		if re.NumRows() != loaded.NumRows() || re.NumCols() != loaded.NumCols() || re.Ones() != loaded.Ones() {
			t.Fatalf("round trip changed shape: %dx%d/%d ones vs %dx%d/%d ones",
				loaded.NumRows(), loaded.NumCols(), loaded.Ones(),
				re.NumRows(), re.NumCols(), re.Ones())
		}
	})
}
