package assocmine

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func fileDatasetFixture(t *testing.T, ext string) (*Dataset, *FileDataset) {
	t.Helper()
	d, _, err := GenerateSynthetic(SyntheticOptions{Rows: 1500, Cols: 120, PairsPerRange: 2, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data"+ext)
	switch ext {
	case ".arows":
		if err := d.SaveRowBinary(path); err != nil {
			t.Fatal(err)
		}
	default:
		if err := d.Save(path); err != nil {
			t.Fatal(err)
		}
	}
	fd, err := OpenFileDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	return d, fd
}

// TestFileDatasetMatchesInMemory: every algorithm must produce
// identical results mining from disk and from memory.
func TestFileDatasetMatchesInMemory(t *testing.T) {
	for _, ext := range []string{".txt", ".arows"} {
		d, fd := fileDatasetFixture(t, ext)
		if fd.NumRows() != d.NumRows() || fd.NumCols() != d.NumCols() {
			t.Fatalf("%s: header dims %dx%d", ext, fd.NumRows(), fd.NumCols())
		}
		configs := []Config{
			{Algorithm: BruteForce, Threshold: 0.45},
			{Algorithm: MinHash, Threshold: 0.45, K: 60, Seed: 5},
			{Algorithm: KMinHash, Threshold: 0.45, K: 60, Seed: 5},
			{Algorithm: MinLSH, Threshold: 0.45, K: 60, R: 3, L: 20, Seed: 5},
			{Algorithm: HammingLSH, Threshold: 0.45, R: 6, L: 10, Seed: 5},
		}
		for _, cfg := range configs {
			mem, err := SimilarPairs(d, cfg)
			if err != nil {
				t.Fatalf("%s %v (memory): %v", ext, cfg.Algorithm, err)
			}
			file, err := fd.SimilarPairs(cfg)
			if err != nil {
				t.Fatalf("%s %v (file): %v", ext, cfg.Algorithm, err)
			}
			if len(mem.Pairs) != len(file.Pairs) {
				t.Fatalf("%s %v: %d pairs from memory, %d from file",
					ext, cfg.Algorithm, len(mem.Pairs), len(file.Pairs))
			}
			for i := range mem.Pairs {
				if mem.Pairs[i] != file.Pairs[i] {
					t.Fatalf("%s %v: pair %d differs: %+v vs %+v",
						ext, cfg.Algorithm, i, mem.Pairs[i], file.Pairs[i])
				}
			}
		}
	}
}

func TestFileDatasetLoad(t *testing.T) {
	d, fd := fileDatasetFixture(t, ".txt")
	loaded, err := fd.Load()
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Ones() != d.Ones() {
		t.Errorf("loaded Ones = %d, want %d", loaded.Ones(), d.Ones())
	}
	// Cached: second load returns the same matrix.
	again, err := fd.Load()
	if err != nil {
		t.Fatal(err)
	}
	if again.m != loaded.m {
		t.Error("Load did not cache the materialised matrix")
	}
}

// TestFileDatasetTruncated: a file cut short mid-stream must fail both
// loading and streamed mining with an error naming the file, so the
// user can tell which input of a multi-file job is damaged.
func TestFileDatasetTruncated(t *testing.T) {
	for _, ext := range []string{".txt", ".arows"} {
		t.Run(ext, func(t *testing.T) {
			d, _, err := GenerateSynthetic(SyntheticOptions{Rows: 200, Cols: 30, PairsPerRange: 1, Seed: 51})
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join(t.TempDir(), "trunc"+ext)
			if ext == ".arows" {
				err = d.SaveRowBinary(path)
			} else {
				err = d.Save(path)
			}
			if err != nil {
				t.Fatal(err)
			}
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.Truncate(path, info.Size()/2); err != nil {
				t.Fatal(err)
			}
			fd, err := OpenFileDataset(path)
			if err != nil {
				t.Fatalf("header of half-truncated file should still parse: %v", err)
			}
			if _, err := fd.Load(); err == nil {
				t.Fatal("Load succeeded on truncated file")
			} else if !strings.Contains(err.Error(), path) {
				t.Fatalf("Load error does not name the file: %v", err)
			}
			_, err = fd.SimilarPairs(Config{Algorithm: MinHash, Threshold: 0.5, K: 20, Seed: 3})
			if err == nil {
				t.Fatal("streamed mining succeeded on truncated file")
			}
			if !strings.Contains(err.Error(), path) {
				t.Fatalf("streamed error does not name the file: %v", err)
			}
			// The parallel streamed path must surface the same failure.
			_, err = fd.SimilarPairs(Config{Algorithm: MinHash, Threshold: 0.5, K: 20, Seed: 3, Workers: 4})
			if err == nil || !strings.Contains(err.Error(), path) {
				t.Fatalf("parallel streamed error does not name the file: %v", err)
			}
		})
	}
}

func TestOpenFileDatasetMissing(t *testing.T) {
	if _, err := OpenFileDataset(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Error("missing file accepted")
	}
}

func TestFileDatasetMineRules(t *testing.T) {
	d, fd := fileDatasetFixture(t, ".txt")
	cfg := RuleConfig{MinConfidence: 0.7, K: 80, Seed: 3}
	mem, err := MineRules(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	file, err := fd.MineRules(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(mem.Rules) != len(file.Rules) {
		t.Fatalf("rules: %d from memory, %d from file", len(mem.Rules), len(file.Rules))
	}
	for i := range mem.Rules {
		if mem.Rules[i] != file.Rules[i] {
			t.Fatalf("rule %d differs: %+v vs %+v", i, mem.Rules[i], file.Rules[i])
		}
	}
}

func TestFileDatasetApriori(t *testing.T) {
	d, fd := fileDatasetFixture(t, ".arows")
	cfg := Config{Algorithm: Apriori, Threshold: 0.45, MinSupport: 0.02}
	mem, err := SimilarPairs(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	file, err := fd.SimilarPairs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(mem.Pairs) != len(file.Pairs) {
		t.Fatalf("apriori: %d pairs from memory, %d from file", len(mem.Pairs), len(file.Pairs))
	}
}
