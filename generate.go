package assocmine

import (
	"assocmine/internal/gen"
)

// The generator wrappers expose the workloads of the paper's
// experiments (Section 5) so examples and downstream users can
// reproduce them without touching internal packages.

// SyntheticOptions configures GenerateSynthetic; see the paper's
// Section 5 synthetic data description. Zero values choose the paper's
// defaults (densities 1–5 percent, one similar pair per 100 columns
// split across the five 10-point similarity ranges from 45 to 95
// percent).
type SyntheticOptions struct {
	Rows, Cols    int
	MinDensity    float64
	MaxDensity    float64
	PairsPerRange int
	Seed          uint64
}

// PlantedPair identifies a generated similar column pair and its
// target similarity.
type PlantedPair struct {
	I, J      int
	TargetSim float64
}

// GenerateSynthetic builds the Section 5 synthetic dataset.
func GenerateSynthetic(opt SyntheticOptions) (*Dataset, []PlantedPair, error) {
	m, planted, err := gen.Synthetic(gen.SyntheticConfig{
		Rows: opt.Rows, Cols: opt.Cols,
		MinDensity: opt.MinDensity, MaxDensity: opt.MaxDensity,
		PairsPerRange: opt.PairsPerRange, Seed: opt.Seed,
	})
	if err != nil {
		return nil, nil, err
	}
	out := make([]PlantedPair, len(planted))
	for i, p := range planted {
		out[i] = PlantedPair{I: int(p.I), J: int(p.J), TargetSim: p.TargetSim}
	}
	return &Dataset{m: m}, out, nil
}

// WebLogOptions configures GenerateWebLog, the stand-in for the paper's
// Sun Microsystems web-server log: rows are client IPs, columns URLs,
// and embedded gif/applet resources co-fetch with their parent page.
type WebLogOptions struct {
	Clients, URLs int
	Seed          uint64
}

// WebLogDataset is a generated web log plus its planted
// embedded-resource groups (each group is mutually high-similarity).
type WebLogDataset struct {
	Data *Dataset
	// Groups lists, per parent page, the columns of its embedded
	// resources.
	Groups [][]int
	// Parents lists the parent page column of each group.
	Parents []int
}

// GenerateWebLog builds the web-log dataset.
func GenerateWebLog(opt WebLogOptions) (*WebLogDataset, error) {
	w, err := gen.GenerateWebLog(gen.WebLogConfig{
		Clients: opt.Clients, URLs: opt.URLs, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	groups := make([][]int, len(w.Groups))
	for i, g := range w.Groups {
		groups[i] = make([]int, len(g))
		for j, c := range g {
			groups[i][j] = int(c)
		}
	}
	parents := make([]int, len(w.Parents))
	for i, p := range w.Parents {
		parents[i] = int(p)
	}
	return &WebLogDataset{Data: &Dataset{m: w.Matrix}, Groups: groups, Parents: parents}, nil
}

// QuestOptions configures GenerateQuest, an IBM-Quest-style synthetic
// transaction generator (the "T10.I4.D100K" workload family of the
// a-priori papers): transactions are assembled from maximal
// potentially-frequent patterns with corruption, yielding both genuine
// frequent itemsets for the baseline and a rare high-lift tail for the
// signature algorithms.
type QuestOptions struct {
	Transactions, Items int
	// AvgTransactionLen (T) and AvgPatternLen (I); zero picks the
	// classic T=10, I=4.
	AvgTransactionLen, AvgPatternLen float64
	Seed                             uint64
}

// QuestDataset is a generated Quest workload with its planted maximal
// patterns.
type QuestDataset struct {
	Data     *Dataset
	Patterns [][]int
}

// GenerateQuest builds the Quest workload.
func GenerateQuest(opt QuestOptions) (*QuestDataset, error) {
	q, err := gen.GenerateQuest(gen.QuestConfig{
		Transactions: opt.Transactions, Items: opt.Items,
		AvgTransactionLen: opt.AvgTransactionLen, AvgPatternLen: opt.AvgPatternLen,
		Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	pats := make([][]int, len(q.Patterns))
	for i, p := range q.Patterns {
		pats[i] = make([]int, len(p))
		for j, it := range p {
			pats[i][j] = int(it)
		}
	}
	return &QuestDataset{Data: &Dataset{m: q.Matrix}, Patterns: pats}, nil
}

// NewsOptions configures GenerateNews, the stand-in for the paper's
// Reuters news corpus: rows are documents, columns are words, with
// planted low-support high-similarity collocations (the Fig. 1 pairs)
// and a planted word cluster (the chess event).
type NewsOptions struct {
	Docs, Vocab int
	Seed        uint64
}

// NewsDataset is a generated corpus with its vocabulary and planted
// structure.
type NewsDataset struct {
	Data *Dataset
	// Words maps column index to word.
	Words []string
	// PlantedPairs lists the collocation column pairs.
	PlantedPairs [][2]int
	// ClusterCols lists the planted cluster's columns.
	ClusterCols []int
}

// Word returns the word of column c.
func (n *NewsDataset) Word(c int) string { return n.Words[c] }

// GenerateNews builds the news corpus.
func GenerateNews(opt NewsOptions) (*NewsDataset, error) {
	news, err := gen.GenerateNews(gen.NewsConfig{
		Docs: opt.Docs, Vocab: opt.Vocab, Seed: opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	planted := make([][2]int, len(news.PlantedPairs))
	for i, p := range news.PlantedPairs {
		planted[i] = [2]int{int(p.I), int(p.J)}
	}
	cluster := make([]int, len(news.ClusterCols))
	for i, c := range news.ClusterCols {
		cluster[i] = int(c)
	}
	return &NewsDataset{
		Data:         &Dataset{m: news.Matrix},
		Words:        news.Words,
		PlantedPairs: planted,
		ClusterCols:  cluster,
	}, nil
}
