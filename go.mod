module assocmine

go 1.22
