package assocmine

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
	"assocmine/internal/testutil"
)

// incrFixture generates a deterministic sparse row set and the matching
// in-memory Dataset (rows already sorted and duplicate-free, as the
// file formats deliver them).
func incrFixture(t *testing.T, rows, cols int, seed uint64) ([][]int32, *Dataset) {
	t.Helper()
	rng := hashing.NewSplitMix64(seed)
	data := make([][]int32, rows)
	asInt := make([][]int, rows)
	for r := range data {
		for c := 0; c < cols; c++ {
			if rng.Intn(5) == 0 {
				data[r] = append(data[r], int32(c))
				asInt[r] = append(asInt[r], c)
			}
		}
	}
	d, err := NewDatasetFromRows(cols, asInt)
	if err != nil {
		t.Fatal(err)
	}
	return data, d
}

// appendChunked feeds rows into the ingest in fixed-size chunks,
// optionally snapshotting to disk and reloading halfway through.
func appendChunked(t *testing.T, in *Ingest, rows [][]int32, chunk, workers int, snapshot bool) *Ingest {
	t.Helper()
	mid := len(rows) / 2
	for off := 0; off < len(rows); off += chunk {
		endOff := off + chunk
		if endOff > len(rows) {
			endOff = len(rows)
		}
		if snapshot && off <= mid && mid < endOff && off > 0 {
			path := filepath.Join(t.TempDir(), "ingest.ain")
			if err := in.Save(path); err != nil {
				t.Fatal(err)
			}
			restored, err := LoadIngest(path)
			if err != nil {
				t.Fatal(err)
			}
			in = restored
		}
		if err := in.AppendRows(rows[off:endOff], workers); err != nil {
			t.Fatal(err)
		}
	}
	return in
}

// TestIncrAppendMatchesBatchMH: appending a dataset's rows in chunks of
// 1, 3 and 7 — serial and parallel, with and without a snapshot
// round-trip mid-stream — finishes to the exact batch min-hash
// signatures, bit for bit.
func TestIncrAppendMatchesBatchMH(t *testing.T) {
	rows, d := incrFixture(t, 260, 40, 11)
	const k, seed = 16, 5
	want, err := ComputeSignatures(d, k, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 3, 7} {
		for _, workers := range []int{1, 4} {
			for _, snapshot := range []bool{false, true} {
				t.Run(fmt.Sprintf("chunk=%d/workers=%d/snapshot=%v", chunk, workers, snapshot), func(t *testing.T) {
					defer testutil.CheckGoroutines(t)
					in, err := NewIngest(MinHash, 40, k, seed, 0)
					if err != nil {
						t.Fatal(err)
					}
					in = appendChunked(t, in, rows, chunk, workers, snapshot)
					got, err := in.Signatures()
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got.sig.Vals, want.sig.Vals) {
						t.Fatal("incremental signatures differ from batch")
					}
					if in.Rows() != int64(len(rows)) {
						t.Fatalf("Rows() = %d, want %d", in.Rows(), len(rows))
					}
					// IncrStats counts this process's work, so a restored
					// ingest starts its session counters fresh.
					if st := in.Stats(); !snapshot && st.RowsAppended != int64(len(rows)) {
						t.Fatalf("RowsAppended = %d, want %d", st.RowsAppended, len(rows))
					}
				})
			}
		}
	}
}

// TestIncrAppendMatchesBatchKMH is the bottom-k variant: sketch content
// always equals the batch compute; the order-dependent Updates counter
// additionally replays exactly for serial appends (snapshots store the
// heap arrays verbatim).
func TestIncrAppendMatchesBatchKMH(t *testing.T) {
	rows, d := incrFixture(t, 260, 40, 12)
	const k, seed = 8, 19
	want, err := ComputeSketches(d, k, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, chunk := range []int{1, 3, 7} {
		for _, workers := range []int{1, 4} {
			for _, snapshot := range []bool{false, true} {
				t.Run(fmt.Sprintf("chunk=%d/workers=%d/snapshot=%v", chunk, workers, snapshot), func(t *testing.T) {
					defer testutil.CheckGoroutines(t)
					in, err := NewIngest(KMinHash, 40, k, seed, 0)
					if err != nil {
						t.Fatal(err)
					}
					in = appendChunked(t, in, rows, chunk, workers, snapshot)
					got, err := in.Sketches()
					if err != nil {
						t.Fatal(err)
					}
					if got.sk.K != want.sk.K || !reflect.DeepEqual(got.sk.ColSizes, want.sk.ColSizes) {
						t.Fatal("incremental sketch shape differs from batch")
					}
					for c := range want.sk.Sigs {
						if !reflect.DeepEqual(got.sk.Sigs[c], want.sk.Sigs[c]) {
							t.Fatalf("column %d sketch differs from batch", c)
						}
					}
					if workers == 1 && got.sk.Updates != want.sk.Updates {
						t.Fatalf("serial replay Updates = %d, batch %d", got.sk.Updates, want.sk.Updates)
					}
				})
			}
		}
	}
}

// TestIncrCatchUpMatchesBatch: catching up from a file that grew in
// place — first a 60% prefix, then the full data — folds only the new
// rows (O(new), the resume contract) and finishes to the exact batch
// sketches, for both algorithms, both file formats, serial and
// parallel.
func TestIncrCatchUpMatchesBatch(t *testing.T) {
	rows, d := incrFixture(t, 300, 35, 21)
	prefixInt := make([][]int, 180)
	for r := range prefixInt {
		for _, c := range rows[r] {
			prefixInt[r] = append(prefixInt[r], int(c))
		}
	}
	prefix, err := NewDatasetFromRows(35, prefixInt)
	if err != nil {
		t.Fatal(err)
	}
	const k, seed = 12, 3
	wantMH, err := ComputeSignatures(d, k, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantKMH, err := ComputeSketches(d, k, seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []Algorithm{MinHash, KMinHash} {
		for _, ext := range []string{".txt", ".arows"} {
			for _, workers := range []int{1, 4} {
				t.Run(fmt.Sprintf("%v%s/workers=%d", algo, ext, workers), func(t *testing.T) {
					defer testutil.CheckGoroutines(t)
					in, err := NewIngest(algo, 35, k, seed, 0)
					if err != nil {
						t.Fatal(err)
					}
					n, err := in.CatchUp(saveDataset(t, prefix, ext), workers)
					if err != nil {
						t.Fatal(err)
					}
					if n != 180 {
						t.Fatalf("prefix catch-up folded %d rows, want 180", n)
					}
					full := saveDataset(t, d, ext)
					n, err = in.CatchUp(full, workers)
					if err != nil {
						t.Fatal(err)
					}
					if n != 120 {
						t.Fatalf("growth catch-up folded %d rows, want 120", n)
					}
					// Caught up: another pass over the same file is a no-op.
					n, err = in.CatchUp(full, workers)
					if err != nil || n != 0 {
						t.Fatalf("repeat catch-up = (%d, %v), want (0, nil)", n, err)
					}
					if algo == MinHash {
						got, err := in.Signatures()
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got.sig.Vals, wantMH.sig.Vals) {
							t.Fatal("caught-up signatures differ from batch")
						}
					} else {
						got, err := in.Sketches()
						if err != nil {
							t.Fatal(err)
						}
						for c := range wantKMH.sk.Sigs {
							if !reflect.DeepEqual(got.sk.Sigs[c], wantKMH.sk.Sigs[c]) {
								t.Fatalf("column %d sketch differs from batch", c)
							}
						}
						if !reflect.DeepEqual(got.sk.ColSizes, wantKMH.sk.ColSizes) {
							t.Fatal("caught-up column sizes differ from batch")
						}
					}
					// A shrunken source is corruption, not growth.
					if _, err := in.CatchUpDataset(prefix, workers); err == nil {
						t.Fatal("catch-up from a shrunken source accepted")
					}
				})
			}
		}
	}
}

// TestIncrWindowMode: a sliding-window ingest keeps only the trailing
// batches live — expired checkpoints drop out, and the merged live
// state equals a batch fold over exactly the suffix rows (same global
// row ids).
func TestIncrWindowMode(t *testing.T) {
	rows, _ := incrFixture(t, 240, 30, 31)
	const k, seed, batch = 10, 9, 60
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			defer testutil.CheckGoroutines(t)
			in, err := NewIngest(MinHash, 30, k, seed, 2)
			if err != nil {
				t.Fatal(err)
			}
			col := NewCollector()
			in.SetRecorder(col)
			for off := 0; off < len(rows); off += batch {
				if err := in.AppendRows(rows[off:off+batch], workers); err != nil {
					t.Fatal(err)
				}
			}
			if in.Windows() != 2 {
				t.Fatalf("Windows() = %d, want 2", in.Windows())
			}
			if in.LiveFrom() != 120 || in.LiveRows() != 120 {
				t.Fatalf("live span = [%d, +%d), want [120, +120)", in.LiveFrom(), in.LiveRows())
			}
			st := in.Stats()
			if st.WindowsExpired != 2 {
				t.Fatalf("WindowsExpired = %d, want 2", st.WindowsExpired)
			}
			got, err := in.Signatures()
			if err != nil {
				t.Fatal(err)
			}
			if st = in.Stats(); st.StatesMerged != 1 {
				t.Fatalf("StatesMerged = %d, want 1", st.StatesMerged)
			}
			for _, c := range []struct {
				name string
				got  int64
			}{
				{CounterRowsAppended, st.RowsAppended},
				{CounterStatesMerged, st.StatesMerged},
				{CounterWindowsExpired, st.WindowsExpired},
			} {
				if col.Counter(c.name) != c.got {
					t.Errorf("collector %s = %d, Stats says %d", c.name, col.Counter(c.name), c.got)
				}
			}
			// Reference: a fresh serial fold over only the suffix rows,
			// with their global ids.
			suffix := &batchSource{cols: 30, base: 120, rows: rows[120:]}
			want, err := ComputeSignatures(WrapMatrix(mustCollect(t, suffix)), k, seed, 1)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.sig.Vals, want.sig.Vals) {
				t.Fatal("windowed signatures differ from a batch fold over the suffix")
			}
		})
	}
}

// mustCollect materialises a row source into a matrix for reference
// computations.
func mustCollect(t *testing.T, src matrix.RowSource) *matrix.Matrix {
	t.Helper()
	m, err := matrix.Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestIncrWindowQueryEndToEnd: mining the full dataset with
// Config.Window equals (a) brute force over the suffix re-based as its
// own dataset (exact semantics of the window) and (b) a query answered
// from the sliding-window ingest's merged signatures via
// SimilarPairsWithSignatures.
func TestIncrWindowQueryEndToEnd(t *testing.T) {
	d, _, err := GenerateSynthetic(SyntheticOptions{Rows: 600, Cols: 50, PairsPerRange: 3, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	const window = 200
	from := d.NumRows() - window
	// Re-base the suffix as a standalone dataset for the exact reference.
	srows := make([][]int32, 0, window)
	if err := (&matrix.TailSource{Src: d.m.Stream(), From: from}).Scan(func(row int, cols []int32) error {
		srows = append(srows, append([]int32(nil), cols...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	suffix := make([][]int, window)
	for r, cols := range srows {
		for _, c := range cols {
			suffix[r] = append(suffix[r], int(c))
		}
	}
	sub, err := NewDatasetFromRows(d.NumCols(), suffix)
	if err != nil {
		t.Fatal(err)
	}
	exactWant, err := SimilarPairs(sub, Config{Algorithm: BruteForce, Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	exactGot, err := SimilarPairs(d, Config{Algorithm: BruteForce, Threshold: 0.5, Window: window})
	if err != nil {
		t.Fatal(err)
	}
	if len(exactGot.Pairs) != len(exactWant.Pairs) {
		t.Fatalf("windowed brute force found %d pairs, suffix dataset %d", len(exactGot.Pairs), len(exactWant.Pairs))
	}
	for i := range exactWant.Pairs {
		if exactGot.Pairs[i] != exactWant.Pairs[i] {
			t.Fatalf("pair %d: %+v windowed, %+v suffix", i, exactGot.Pairs[i], exactWant.Pairs[i])
		}
	}

	// The sketch path: windowed direct mining == query over the ingest's
	// merged window signatures.
	cfg := Config{Algorithm: MinHash, Threshold: 0.5, K: 40, Seed: 7, Window: window}
	direct, err := SimilarPairs(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	in, err := NewIngest(MinHash, d.NumCols(), cfg.K, cfg.Seed, 2)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < d.NumRows(); off += window / 2 {
		if err := in.AppendRows(srcRows(t, d, off, off+window/2), 1); err != nil {
			t.Fatal(err)
		}
	}
	if in.LiveRows() != window {
		t.Fatalf("LiveRows() = %d, want %d", in.LiveRows(), window)
	}
	sigs, err := in.Signatures()
	if err != nil {
		t.Fatal(err)
	}
	viaSketch, err := SimilarPairsWithSignatures(d, sigs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(viaSketch.Pairs) != len(direct.Pairs) {
		t.Fatalf("query over ingest signatures found %d pairs, direct windowed run %d", len(viaSketch.Pairs), len(direct.Pairs))
	}
	for i := range direct.Pairs {
		if viaSketch.Pairs[i] != direct.Pairs[i] {
			t.Fatalf("pair %d: %+v via ingest, %+v direct", i, viaSketch.Pairs[i], direct.Pairs[i])
		}
	}
}

// TestIncrWindowProgressive: the band-by-band progressive M-LSH run
// honours Config.Window — its final pair set equals the one-shot
// windowed MinLSH run, for serial and parallel verification.
func TestIncrWindowProgressive(t *testing.T) {
	d, _, err := GenerateSynthetic(SyntheticOptions{Rows: 600, Cols: 50, PairsPerRange: 3, Seed: 53})
	if err != nil {
		t.Fatal(err)
	}
	const window = 200
	base := Config{Algorithm: MinLSH, Threshold: 0.5, K: 60, R: 5, L: 12, Seed: 9, Window: window}
	want, err := SimilarPairs(d, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Pairs) == 0 {
		t.Fatal("windowed MinLSH reference found no pairs; fixture too sparse")
	}
	for _, workers := range []int{1, 4} {
		cfg := base
		cfg.Workers = workers
		defer testutil.CheckGoroutines(t)
		got, err := ProgressiveSimilarPairs(d, cfg, func(Progress) bool { return true })
		if err != nil {
			t.Fatal(err)
		}
		key := func(ps []Pair) map[[2]int]float64 {
			m := make(map[[2]int]float64, len(ps))
			for _, p := range ps {
				m[[2]int{p.I, p.J}] = p.Similarity
			}
			return m
		}
		gm, wm := key(got.Pairs), key(want.Pairs)
		if len(gm) != len(wm) {
			t.Fatalf("workers=%d: progressive found %d pairs, windowed MinLSH %d", workers, len(gm), len(wm))
		}
		for k, sim := range wm {
			if gm[k] != sim {
				t.Fatalf("workers=%d: pair %v sim %v progressive, %v windowed", workers, k, gm[k], sim)
			}
		}
		if got.Stats.RowsScanned%window != 0 {
			t.Fatalf("workers=%d: RowsScanned = %d, want a multiple of the %d-row window", workers, got.Stats.RowsScanned, window)
		}
	}
}

// srcRows extracts rows [from, to) of a dataset as int32 column lists.
func srcRows(t *testing.T, d *Dataset, from, to int) [][]int32 {
	t.Helper()
	if to > d.NumRows() {
		to = d.NumRows()
	}
	out := make([][]int32, 0, to-from)
	err := (&matrix.TailSource{Src: d.m.Stream(), From: from}).Scan(func(row int, cols []int32) error {
		if row < to {
			out = append(out, append([]int32(nil), cols...))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestIncrSketchQueryMatchesDirect: a KMinHash query answered from a
// precomputed Sketches equals the direct SimilarPairs run, and the
// sketch round-trips through its compressed file format.
func TestIncrSketchQueryMatchesDirect(t *testing.T) {
	d, _, err := GenerateSynthetic(SyntheticOptions{Rows: 500, Cols: 60, PairsPerRange: 3, Seed: 59})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Algorithm: KMinHash, Threshold: 0.5, K: 30, Seed: 17}
	direct, err := SimilarPairs(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := ComputeSketches(d, cfg.K, cfg.Seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sketch.kmc")
	if err := sk.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSketches(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Save(path) == nil {
		t.Fatal("re-saving a loaded sketch (unknown row count) accepted")
	}
	for _, s := range []*Sketches{sk, loaded} {
		res, err := SimilarPairsWithSketches(d, s, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Pairs) != len(direct.Pairs) {
			t.Fatalf("sketch query found %d pairs, direct %d", len(res.Pairs), len(direct.Pairs))
		}
		for i := range direct.Pairs {
			if res.Pairs[i] != direct.Pairs[i] {
				t.Fatalf("pair %d: %+v via sketch, %+v direct", i, res.Pairs[i], direct.Pairs[i])
			}
		}
	}
}

// TestIncrValidation: the sliding-window and ingestion entry points
// reject what they must — whole-data schemes under a window, bad
// parameters, corrupt snapshots, appends after a poisoning failure.
func TestIncrValidation(t *testing.T) {
	d, _, err := GenerateSynthetic(SyntheticOptions{Rows: 60, Cols: 12, PairsPerRange: 1, Seed: 61})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SimilarPairs(d, Config{Algorithm: HammingLSH, Threshold: 0.5, Window: 10}); err == nil {
		t.Error("HammingLSH accepted a sliding window")
	}
	if _, err := SimilarPairs(d, Config{Algorithm: Apriori, Threshold: 0.5, MinSupport: 0.1, Window: 10}); err == nil {
		t.Error("Apriori accepted a sliding window")
	}
	if _, err := SimilarPairs(d, Config{Algorithm: MinHash, Threshold: 0.5, Window: -1}); err == nil {
		t.Error("negative Window accepted")
	}
	// Window larger than the data is simply a full run.
	full, err := SimilarPairs(d, Config{Algorithm: MinHash, Threshold: 0.5, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := SimilarPairs(d, Config{Algorithm: MinHash, Threshold: 0.5, Seed: 3, Window: 10 * d.NumRows()})
	if err != nil {
		t.Fatal(err)
	}
	if len(wide.Pairs) != len(full.Pairs) {
		t.Errorf("oversized window mined %d pairs, full run %d", len(wide.Pairs), len(full.Pairs))
	}

	if _, err := NewIngest(HammingLSH, 10, 4, 1, 0); err == nil {
		t.Error("HammingLSH ingest accepted")
	}
	if _, err := NewIngest(MinHash, 10, 0, 1, 0); err == nil {
		t.Error("k=0 ingest accepted")
	}
	if _, err := NewIngest(MinHash, 10, 4, 1, -1); err == nil {
		t.Error("negative window ingest accepted")
	}
	in, err := NewIngest(MinHash, 10, 4, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.AppendRows([][]int32{{0, 99}}, 1); err == nil {
		t.Error("out-of-range column accepted")
	}
	// Unsorted and duplicated entries canonicalise rather than corrupt.
	if err := in.AppendRows([][]int32{{3, 1, 3, 0}}, 1); err != nil {
		t.Fatal(err)
	}
	ref, err := NewIngest(MinHash, 10, 4, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ref.AppendRows([][]int32{{0, 1, 3}}, 1); err != nil {
		t.Fatal(err)
	}
	a, err := in.Signatures()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ref.Signatures()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.sig.Vals, b.sig.Vals) {
		t.Error("canonicalised row folded differently from its sorted form")
	}
	if _, err := in.Sketches(); err == nil {
		t.Error("MinHash ingest handed out Sketches")
	}
	kin, err := NewIngest(KMinHash, 10, 4, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := kin.Signatures(); err == nil {
		t.Error("KMinHash ingest handed out Signatures")
	}

	// Snapshot corruption.
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.ain")
	if err := in.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIngest(path); err != nil {
		t.Fatal(err)
	}
	enc, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.ain")
	if err := os.WriteFile(bad, append([]byte("XXXX"), enc[4:]...), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIngest(bad); err == nil {
		t.Error("bad magic accepted")
	}
	trunc := filepath.Join(dir, "trunc.ain")
	if err := os.WriteFile(trunc, enc[:len(enc)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIngest(trunc); err == nil {
		t.Error("truncated snapshot accepted")
	}

	// Column-count mismatch on catch-up.
	if _, err := in.CatchUpDataset(d, 1); err == nil {
		t.Error("catch-up with mismatched column count accepted")
	}
}
