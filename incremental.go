package assocmine

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"assocmine/internal/kminhash"
	"assocmine/internal/matrix"
	"assocmine/internal/minhash"
	"assocmine/internal/obs"
)

// Ingest is an incremental sketch builder: rows arrive in batches
// (AppendRows) or are caught up from a growing file (CatchUp), and the
// running fold state answers sketch queries at any point without ever
// rescanning old rows — appending n new rows costs O(n), not O(total).
// The state snapshots to disk (Save/LoadIngest, format AIN1) and
// resumes exactly, so ingestion survives process restarts.
//
// Two modes:
//
//   - Cumulative (window == 0): one fold state covers every row ever
//     appended. Queries see the whole history.
//   - Sliding window (window > 0): each batch becomes its own fold
//     checkpoint; only the last `window` batches stay live, older ones
//     expire. Queries merge the live checkpoints, so they see exactly
//     the trailing batches — mine the result against the matching data
//     suffix with Config.Window.
//
// Sketch content is bit-identical to a batch compute over the same live
// rows: appending and merging commute with the batch fold (see
// minhash.Merge and kminhash.Merge). An Ingest is not safe for
// concurrent use. After a failed append or catch-up the state is
// poisoned (partial rows may have been folded) and every further
// operation returns the original error — reload from the last snapshot.
type Ingest struct {
	algo   Algorithm
	cols   int
	k      int
	seed   uint64
	window int

	nextRow int64
	wins    []ingestWindow
	stats   IncrStats
	rec     Recorder
	err     error // poisoned after a partial fold
}

// ingestWindow is one live fold checkpoint: the rows [from, from+rows)
// folded into an MH or K-MH state (exactly one is non-nil, matching the
// ingest's algorithm).
type ingestWindow struct {
	from int64
	mh   *minhash.FoldState
	kmh  *kminhash.FoldState
}

// IncrStats counts the incremental-specific work an Ingest performed,
// mirroring the rows_appended / states_merged / windows_expired
// counters it reports to its Recorder. Counters describe this session's
// work: they are not persisted in snapshots, so a LoadIngest starts
// them at zero.
type IncrStats struct {
	// RowsAppended totals rows folded in, across AppendRows and CatchUp.
	RowsAppended int64
	// StatesMerged counts the checkpoint merges performed to answer
	// Signatures/Sketches queries (merges internal to a parallel fold
	// are not an ingest-level event and are not counted).
	StatesMerged int64
	// WindowsExpired counts the per-batch checkpoints dropped by
	// sliding-window expiry.
	WindowsExpired int64
}

// NewIngest returns an empty incremental builder for a dataset of cols
// columns under the given algorithm's sketch scheme: MinHash and MinLSH
// share the k-permutation min-hash fold, KMinHash uses the bottom-k
// fold. window is the number of trailing batches kept live (0 means
// cumulative — everything stays live forever).
func NewIngest(algo Algorithm, cols, k int, seed uint64, window int) (*Ingest, error) {
	switch algo {
	case MinHash, MinLSH, KMinHash:
	default:
		return nil, fmt.Errorf("assocmine: incremental ingestion supports MinHash, MinLSH and KMinHash, got %v", algo)
	}
	if cols < 0 {
		return nil, fmt.Errorf("assocmine: negative column count %d", cols)
	}
	if k < 1 {
		return nil, fmt.Errorf("assocmine: K must be positive, got %d", k)
	}
	if window < 0 {
		return nil, fmt.Errorf("assocmine: window must be >= 0, got %d", window)
	}
	in := &Ingest{algo: algo, cols: cols, k: k, seed: seed, window: window}
	if window == 0 {
		// Cumulative mode folds everything into one eager state.
		w, err := in.newWindow(0)
		if err != nil {
			return nil, err
		}
		in.wins = []ingestWindow{w}
	}
	return in, nil
}

// SetRecorder attaches a Recorder receiving the incremental counters
// (CounterRowsAppended, CounterStatesMerged, CounterWindowsExpired).
// nil detaches.
func (in *Ingest) SetRecorder(r Recorder) { in.rec = r }

func (in *Ingest) recorder() Recorder { return obs.OrNop(in.rec) }

func (in *Ingest) useKMH() bool { return in.algo == KMinHash }

func (in *Ingest) newWindow(from int64) (ingestWindow, error) {
	w := ingestWindow{from: from}
	var err error
	if in.useKMH() {
		w.kmh, err = kminhash.NewFoldState(in.cols, in.k, in.seed)
	} else {
		w.mh, err = minhash.NewFoldState(in.cols, in.k, in.seed)
	}
	return w, err
}

// Algorithm returns the sketch scheme the ingest folds for.
func (in *Ingest) Algorithm() Algorithm { return in.algo }

// K returns the sketch size parameter.
func (in *Ingest) K() int { return in.k }

// NumCols returns the column count.
func (in *Ingest) NumCols() int { return in.cols }

// Seed returns the hash seed.
func (in *Ingest) Seed() uint64 { return in.seed }

// WindowBatches returns the sliding-window size in batches (0 means
// cumulative).
func (in *Ingest) WindowBatches() int { return in.window }

// Rows returns the total rows ever appended; the next appended row gets
// this id.
func (in *Ingest) Rows() int64 { return in.nextRow }

// Windows returns the number of live checkpoints.
func (in *Ingest) Windows() int { return len(in.wins) }

// LiveFrom returns the first row id the live checkpoints cover
// (0 in cumulative mode; == Rows() when nothing is live).
func (in *Ingest) LiveFrom() int64 {
	if len(in.wins) == 0 {
		return in.nextRow
	}
	return in.wins[0].from
}

// LiveRows returns the number of rows the live checkpoints cover — the
// Config.Window value that makes a query verify against exactly the
// sketched suffix.
func (in *Ingest) LiveRows() int64 { return in.nextRow - in.LiveFrom() }

// Stats returns the incremental work counters accumulated so far.
func (in *Ingest) Stats() IncrStats { return in.stats }

// batchSource streams an in-memory batch with global row ids starting
// at base, for FoldStream's shard fan-out.
type batchSource struct {
	cols int
	base int
	rows [][]int32
}

func (b *batchSource) NumRows() int { return b.base + len(b.rows) }
func (b *batchSource) NumCols() int { return b.cols }
func (b *batchSource) Scan(fn func(row int, cols []int32) error) error {
	for i, cols := range b.rows {
		if err := fn(b.base+i, cols); err != nil {
			return err
		}
	}
	return nil
}

// AppendRows folds one batch of new rows into the ingest: rows[i] lists
// the column indices set in global row Rows()+i (any order; duplicates
// collapse). In sliding-window mode the batch becomes one checkpoint
// and the oldest checkpoints beyond the window expire. Workers follow
// the Config.Workers semantic; serial appends replay bit-identically to
// an uninterrupted batch fold.
func (in *Ingest) AppendRows(rows [][]int32, workers int) error {
	if in.err != nil {
		return in.err
	}
	// Validate (and canonicalise) before touching any state, so a bad
	// batch cannot poison the fold.
	clean := make([][]int32, len(rows))
	for i, cs := range rows {
		row, err := canonRow(cs, in.cols)
		if err != nil {
			return fmt.Errorf("assocmine: appended row %d: %w", int(in.nextRow)+i, err)
		}
		clean[i] = row
	}
	src := &batchSource{cols: in.cols, base: int(in.nextRow), rows: clean}
	return in.fold(src, len(rows), workers)
}

// canonRow validates column indices and returns a sorted, deduplicated
// copy when the input is not already strictly increasing (matching what
// the file formats and NewDatasetFromRows deliver).
func canonRow(cs []int32, cols int) ([]int32, error) {
	sorted := true
	for i, c := range cs {
		if c < 0 || int(c) >= cols {
			return nil, fmt.Errorf("column %d out of range [0,%d)", c, cols)
		}
		if i > 0 && c <= cs[i-1] {
			sorted = false
		}
	}
	if sorted {
		return cs, nil
	}
	row := append([]int32(nil), cs...)
	for i := 1; i < len(row); i++ {
		for j := i; j > 0 && row[j] < row[j-1]; j-- {
			row[j], row[j-1] = row[j-1], row[j]
		}
	}
	out := row[:0]
	for i, c := range row {
		if i == 0 || c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out, nil
}

// CatchUp folds every file row the ingest has not seen yet (rows >=
// Rows()) — the O(new rows) resume path for a file that grew in place.
// Returns the number of rows appended. The file must keep the ingest's
// column count and must not have shrunk.
func (in *Ingest) CatchUp(fd *FileDataset, workers int) (int, error) {
	return in.catchUp(fd.src, workers)
}

// CatchUpDataset is CatchUp over an in-memory Dataset.
func (in *Ingest) CatchUpDataset(d *Dataset, workers int) (int, error) {
	return in.catchUp(d.m.Stream(), workers)
}

func (in *Ingest) catchUp(src matrix.RowSource, workers int) (int, error) {
	if in.err != nil {
		return 0, in.err
	}
	if src.NumCols() != in.cols {
		return 0, fmt.Errorf("assocmine: source has %d columns, ingest expects %d", src.NumCols(), in.cols)
	}
	total := int64(src.NumRows())
	if total < in.nextRow {
		return 0, fmt.Errorf("assocmine: source shrank to %d rows, ingest has folded %d", total, in.nextRow)
	}
	if total == in.nextRow {
		return 0, nil
	}
	newRows := int(total - in.nextRow)
	tail := matrix.RowSource(src)
	if in.nextRow > 0 {
		tail = &matrix.TailSource{Src: src, From: int(in.nextRow)}
	}
	if err := in.fold(tail, newRows, workers); err != nil {
		return 0, err
	}
	return newRows, nil
}

// fold streams src's unseen rows into the target state — the cumulative
// state, or a fresh checkpoint in window mode — then advances the row
// cursor and expires old checkpoints.
func (in *Ingest) fold(src matrix.RowSource, newRows, workers int) error {
	target := len(in.wins) - 1
	if in.window > 0 {
		w, err := in.newWindow(in.nextRow)
		if err != nil {
			return err
		}
		in.wins = append(in.wins, w)
		target = len(in.wins) - 1
	}
	var err error
	if in.useKMH() {
		_, err = kminhash.FoldStream(src, in.wins[target].kmh, workers)
	} else {
		_, err = minhash.FoldStream(src, in.wins[target].mh, workers)
	}
	if err != nil {
		// Some rows may already be folded; poison the ingest so callers
		// reload from the last snapshot instead of double-counting.
		in.err = fmt.Errorf("assocmine: incremental fold failed, state poisoned: %w", err)
		return err
	}
	in.nextRow += int64(newRows)
	in.stats.RowsAppended += int64(newRows)
	in.recorder().Add(obs.CounterRowsAppended, int64(newRows))
	if in.window > 0 && len(in.wins) > in.window {
		n := len(in.wins) - in.window
		in.wins = append(in.wins[:0], in.wins[n:]...)
		in.stats.WindowsExpired += int64(n)
		in.recorder().Add(obs.CounterWindowsExpired, int64(n))
	}
	return nil
}

// merged clones the first live checkpoint and merges the rest into it,
// returning one state covering the live rows. A nil/nil return means
// the ingest is empty (a fresh state is synthesised by the callers).
func (in *Ingest) mergedMH() (*minhash.FoldState, error) {
	if len(in.wins) == 0 {
		st, err := minhash.NewFoldState(in.cols, in.k, in.seed)
		return st, err
	}
	st := in.wins[0].mh.Clone()
	for _, w := range in.wins[1:] {
		if err := minhash.Merge(st, w.mh); err != nil {
			return nil, err
		}
	}
	if n := len(in.wins) - 1; n > 0 {
		in.stats.StatesMerged += int64(n)
		in.recorder().Add(obs.CounterStatesMerged, int64(n))
	}
	return st, nil
}

func (in *Ingest) mergedKMH() (*kminhash.FoldState, error) {
	if len(in.wins) == 0 {
		st, err := kminhash.NewFoldState(in.cols, in.k, in.seed)
		return st, err
	}
	st := in.wins[0].kmh.Clone()
	for _, w := range in.wins[1:] {
		if err := kminhash.Merge(st, w.kmh); err != nil {
			return nil, err
		}
	}
	if n := len(in.wins) - 1; n > 0 {
		in.stats.StatesMerged += int64(n)
		in.recorder().Add(obs.CounterStatesMerged, int64(n))
	}
	return st, nil
}

// Signatures finishes the live fold into a queryable min-hash sketch
// (MinHash/MinLSH ingests only). The ingest keeps folding afterwards;
// pair the result with SimilarPairsWithSignatures, setting
// Config.Window to LiveRows() in sliding-window mode.
func (in *Ingest) Signatures() (*Signatures, error) {
	if in.err != nil {
		return nil, in.err
	}
	if in.useKMH() {
		return nil, fmt.Errorf("assocmine: %v ingest produces Sketches, not Signatures", in.algo)
	}
	st, err := in.mergedMH()
	if err != nil {
		return nil, err
	}
	return &Signatures{sig: st.Finish(), seed: in.seed, rows: int(in.nextRow)}, nil
}

// Sketches finishes the live fold into a queryable bottom-k sketch
// (KMinHash ingests only); see Signatures for the query pairing.
func (in *Ingest) Sketches() (*Sketches, error) {
	if in.err != nil {
		return nil, in.err
	}
	if !in.useKMH() {
		return nil, fmt.Errorf("assocmine: %v ingest produces Signatures, not Sketches", in.algo)
	}
	st, err := in.mergedKMH()
	if err != nil {
		return nil, err
	}
	return &Sketches{sk: st.Finish(), seed: in.seed, rows: int(in.nextRow)}, nil
}

// AIN1 snapshot container: a fixed header followed by one length-free
// blob per live checkpoint. The per-state codecs (AMF1/KMF1) consume
// exactly their own bytes from a shared reader, so the container needs
// no per-blob framing.
//
//	magic   "AIN1"
//	algo    uint64 LE
//	k       uint64 LE
//	cols    uint64 LE
//	seed    uint64 LE
//	window  uint64 LE
//	nextRow uint64 LE
//	windows uint64 LE  (number of checkpoints that follow)
//	per checkpoint: from uint64 LE, then the AMF1 or KMF1 blob
const ingestMagic = "AIN1"

const (
	maxIngestDim     = 1 << 31
	maxIngestK       = 1 << 20
	maxIngestRows    = 1 << 40
	maxIngestWindows = 1 << 20
)

// Save snapshots the ingest to path atomically (temp file + rename), so
// a crash mid-save leaves the previous snapshot intact.
func (in *Ingest) Save(path string) error {
	if in.err != nil {
		return in.err
	}
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".ain-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if f != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	bw := bufio.NewWriter(f)
	var hdr []byte
	hdr = append(hdr, ingestMagic...)
	for _, v := range []uint64{
		uint64(in.algo), uint64(in.k), uint64(in.cols), in.seed,
		uint64(in.window), uint64(in.nextRow), uint64(len(in.wins)),
	} {
		hdr = binary.LittleEndian.AppendUint64(hdr, v)
	}
	if _, err := bw.Write(hdr); err != nil {
		return err
	}
	for _, w := range in.wins {
		var from [8]byte
		binary.LittleEndian.PutUint64(from[:], uint64(w.from))
		if _, err := bw.Write(from[:]); err != nil {
			return err
		}
		if in.useKMH() {
			err = w.kmh.Snapshot(bw)
		} else {
			err = w.mh.Snapshot(bw)
		}
		if err != nil {
			return err
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		f = nil
		return err
	}
	f = nil
	return os.Rename(tmp, path)
}

// LoadIngest restores a snapshot written by Save, resuming exactly:
// appending the same rows to the restored ingest yields bit-identical
// sketches to an uninterrupted run.
func LoadIngest(path string) (*Ingest, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	hdr := make([]byte, 4+7*8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("assocmine: reading ingest snapshot header: %w", err)
	}
	if string(hdr[:4]) != ingestMagic {
		return nil, fmt.Errorf("assocmine: %s is not an AIN1 ingest snapshot", path)
	}
	u := func(i int) uint64 { return binary.LittleEndian.Uint64(hdr[4+8*i:]) }
	algo := Algorithm(u(0))
	k, cols := u(1), u(2)
	seed := u(3)
	window, nextRow, nWins := u(4), u(5), u(6)
	switch algo {
	case MinHash, MinLSH, KMinHash:
	default:
		return nil, fmt.Errorf("assocmine: ingest snapshot has unsupported algorithm %d", uint64(algo))
	}
	if k < 1 || k > maxIngestK {
		return nil, fmt.Errorf("assocmine: ingest snapshot k=%d out of range", k)
	}
	if cols > maxIngestDim {
		return nil, fmt.Errorf("assocmine: ingest snapshot has %d columns, limit %d", cols, int64(maxIngestDim))
	}
	if window > maxIngestWindows {
		return nil, fmt.Errorf("assocmine: ingest snapshot window=%d out of range", window)
	}
	if nextRow > maxIngestRows {
		return nil, fmt.Errorf("assocmine: ingest snapshot claims %d rows, limit %d", nextRow, int64(maxIngestRows))
	}
	if window == 0 && nWins != 1 {
		return nil, fmt.Errorf("assocmine: cumulative ingest snapshot must hold exactly 1 state, has %d", nWins)
	}
	if window > 0 && nWins > window {
		return nil, fmt.Errorf("assocmine: ingest snapshot holds %d states for a %d-batch window", nWins, window)
	}
	in := &Ingest{
		algo: algo, cols: int(cols), k: int(k), seed: seed,
		window: int(window), nextRow: int64(nextRow),
	}
	var next int64 // windows must tile [first.from, nextRow)
	first := true
	for w := uint64(0); w < nWins; w++ {
		var fromBuf [8]byte
		if _, err := io.ReadFull(br, fromBuf[:]); err != nil {
			return nil, fmt.Errorf("assocmine: reading ingest snapshot state %d: %w", w, err)
		}
		from := binary.LittleEndian.Uint64(fromBuf[:])
		if from > nextRow {
			return nil, fmt.Errorf("assocmine: ingest snapshot state %d starts at row %d beyond row count %d", w, from, nextRow)
		}
		win := ingestWindow{from: int64(from)}
		var rows int64
		if algo == KMinHash {
			st, err := kminhash.ReadFoldState(br)
			if err != nil {
				return nil, fmt.Errorf("assocmine: ingest snapshot state %d: %w", w, err)
			}
			if st.K() != int(k) || st.NumCols() != int(cols) || st.Seed() != seed {
				return nil, fmt.Errorf("assocmine: ingest snapshot state %d disagrees with header (k=%d m=%d seed=%#x)", w, st.K(), st.NumCols(), st.Seed())
			}
			win.kmh, rows = st, st.Rows()
		} else {
			st, err := minhash.ReadFoldState(br)
			if err != nil {
				return nil, fmt.Errorf("assocmine: ingest snapshot state %d: %w", w, err)
			}
			if st.K() != int(k) || st.NumCols() != int(cols) || st.Seed() != seed {
				return nil, fmt.Errorf("assocmine: ingest snapshot state %d disagrees with header (k=%d m=%d seed=%#x)", w, st.K(), st.NumCols(), st.Seed())
			}
			win.mh, rows = st, st.Rows()
		}
		if !first && win.from != next {
			return nil, fmt.Errorf("assocmine: ingest snapshot state %d starts at row %d, want %d (states must be contiguous)", w, win.from, next)
		}
		first = false
		next = win.from + rows
		in.wins = append(in.wins, win)
	}
	if nWins > 0 && next != int64(nextRow) {
		return nil, fmt.Errorf("assocmine: ingest snapshot states cover rows up to %d, header claims %d", next, nextRow)
	}
	if nWins == 0 && nextRow != 0 {
		return nil, fmt.Errorf("assocmine: ingest snapshot claims %d rows with no live states", nextRow)
	}
	return in, nil
}
