package assocmine

import (
	"path/filepath"
	"testing"
	"time"
)

// Cross-cutting integration tests at the public-API level.

func TestTransactionsPublicRoundTrip(t *testing.T) {
	d, err := NewDatasetFromRows(4, [][]int{{0, 1}, {2}, {0, 1, 3}, {}})
	if err != nil {
		t.Fatal(err)
	}
	names := []string{"milk", "bread", "beer", "chips"}
	path := filepath.Join(t.TempDir(), "baskets.txt")
	if err := d.SaveTransactions(path, names); err != nil {
		t.Fatal(err)
	}
	got, gotNames, err := LoadTransactions(path)
	if err != nil {
		t.Fatal(err)
	}
	// Names come back in first-appearance order, which here matches the
	// column order of rows containing them; map and compare content.
	if got.Ones() != d.Ones() || got.NumRows() != d.NumRows() {
		t.Fatalf("round trip: %dx%d with %d ones", got.NumRows(), got.NumCols(), got.Ones())
	}
	idx := map[string]int{}
	for i, n := range gotNames {
		idx[n] = i
	}
	// milk & bread are perfectly similar in both.
	if got.Similarity(idx["milk"], idx["bread"]) != d.Similarity(0, 1) {
		t.Error("similarity changed across transaction round trip")
	}
	// Bad names rejected.
	if err := d.SaveTransactions(path, []string{"a", "b"}); err == nil {
		t.Error("wrong name count accepted")
	}
}

func TestStatsTotal(t *testing.T) {
	s := Stats{
		SignatureTime: 2 * time.Millisecond,
		CandidateTime: 3 * time.Millisecond,
		VerifyTime:    5 * time.Millisecond,
	}
	if s.Total() != 10*time.Millisecond {
		t.Errorf("Total = %v", s.Total())
	}
}

func TestOrRulesExactSimilarity(t *testing.T) {
	rows := make([][]int, 2000)
	for r := range rows {
		switch {
		case r%30 == 0:
			rows[r] = []int{0, 1}
		case r%30 == 1:
			rows[r] = []int{0, 2}
		}
	}
	d, err := NewDatasetFromRows(3, rows)
	if err != nil {
		t.Fatal(err)
	}
	ors, err := OrRules(d, map[int][]int{0: {1, 2}}, 0.7, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ors) == 0 {
		t.Fatal("no OR rules found")
	}
	r := ors[0]
	if r.Similarity < 0.7 {
		t.Errorf("verified similarity %v below threshold", r.Similarity)
	}
	// Exact check: c0 = c1 ∪ c2 exactly, so similarity is 1.
	if r.Similarity != 1 {
		t.Errorf("similarity = %v, want 1", r.Similarity)
	}
}

// TestSeedIndependenceOfExactness: different seeds change which pairs
// the probabilistic schemes find, but never the exactness of what is
// reported.
func TestSeedIndependenceOfExactness(t *testing.T) {
	d, _ := plantedDataset(t)
	for seed := uint64(1); seed <= 5; seed++ {
		res, err := SimilarPairs(d, Config{Algorithm: MinLSH, Threshold: 0.6, K: 40, R: 4, L: 10, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range res.Pairs {
			if got := d.Similarity(p.I, p.J); got != p.Similarity {
				t.Fatalf("seed %d: reported %v, exact %v", seed, p.Similarity, got)
			}
			if p.Similarity < 0.6 {
				t.Fatalf("seed %d: below-threshold pair reported", seed)
			}
		}
	}
}

// TestEndToEndViaEveryEntryPoint exercises the same dataset through the
// in-memory, file, precomputed-signature, and progressive entry points
// and checks they agree at a fixed seed.
func TestEndToEndViaEveryEntryPoint(t *testing.T) {
	d, _ := plantedDataset(t)
	cfg := Config{Algorithm: MinLSH, Threshold: 0.7, K: 60, R: 3, L: 20, Seed: 8}

	batch, err := SimilarPairs(d, cfg)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "d.arows")
	if err := d.SaveRowBinary(path); err != nil {
		t.Fatal(err)
	}
	fd, err := OpenFileDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	file, err := fd.SimilarPairs(cfg)
	if err != nil {
		t.Fatal(err)
	}

	sigs, err := ComputeSignatures(d, cfg.K, cfg.Seed, 1)
	if err != nil {
		t.Fatal(err)
	}
	sketch, err := SimilarPairsWithSignatures(d, sigs, cfg)
	if err != nil {
		t.Fatal(err)
	}

	prog, err := ProgressiveSimilarPairs(d, cfg, func(Progress) bool { return true })
	if err != nil {
		t.Fatal(err)
	}

	for name, res := range map[string]*Result{"file": file, "sketch": sketch, "progressive": prog} {
		if len(res.Pairs) != len(batch.Pairs) {
			t.Fatalf("%s: %d pairs, batch %d", name, len(res.Pairs), len(batch.Pairs))
		}
		for i := range batch.Pairs {
			if res.Pairs[i] != batch.Pairs[i] {
				t.Fatalf("%s: pair %d differs", name, i)
			}
		}
	}
}
