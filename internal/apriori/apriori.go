// Package apriori implements the classic a-priori frequent-itemset
// algorithm of Agrawal et al., the baseline the paper compares against
// (Fig. 4). It performs level-wise candidate generation with the
// subset-pruning step enabled by the support requirement, counting
// supports in one data pass per level.
//
// The paper's central observation is that a-priori is useless without
// support pruning: as the support threshold drops the candidate sets
// explode until the algorithm runs out of memory ("for support
// threshold of 0.01 percent and less, a priori algorithm runs out of
// memory on our systems"). Options.MemoryBudget models that failure
// mode deterministically: candidate-set bytes are tracked and mining
// aborts with ErrMemoryBudget when they exceed the budget.
package apriori

import (
	"errors"
	"fmt"
	"sort"

	"assocmine/internal/matrix"
	"assocmine/internal/pairs"
)

// ErrMemoryBudget is returned when candidate structures exceed
// Options.MemoryBudget, reproducing the out-of-memory behaviour the
// paper reports for low support thresholds.
var ErrMemoryBudget = errors.New("apriori: candidate set exceeds memory budget")

// Options configures a mining run.
type Options struct {
	// MinSupport is the s-fraction of rows an itemset must appear in.
	MinSupport float64
	// MaxLevel caps itemset size; 2 mines only pairs. Zero means
	// unbounded (run until no candidates survive).
	MaxLevel int
	// MemoryBudget bounds the bytes of live candidate/counter state;
	// zero means unlimited.
	MemoryBudget int64
	// UseHashTree counts candidate supports with the Agrawal-Srikant
	// hash tree instead of the first-item index. Identical results;
	// faster when candidate sets are large.
	UseHashTree bool
}

// Itemset is a frequent attribute set with its absolute support count.
type Itemset struct {
	Items   []int32 // sorted ascending
	Support int     // number of rows containing all items
}

// Result holds the frequent itemsets by level (Levels[0] = singletons)
// and accounting for the comparison experiments.
type Result struct {
	NumRows    int
	Levels     [][]Itemset
	Passes     int   // data passes performed
	Candidates []int // candidate count per level
	PeakMemory int64 // peak candidate/counter bytes
}

// Mine runs the level-wise a-priori algorithm over src.
func Mine(src matrix.RowSource, opt Options) (*Result, error) {
	if opt.MinSupport <= 0 || opt.MinSupport > 1 {
		return nil, fmt.Errorf("apriori: MinSupport must be in (0,1], got %v", opt.MinSupport)
	}
	if opt.MaxLevel < 0 {
		return nil, fmt.Errorf("apriori: MaxLevel must be non-negative, got %d", opt.MaxLevel)
	}
	n := src.NumRows()
	m := src.NumCols()
	minCount := int(opt.MinSupport * float64(n))
	if float64(minCount) < opt.MinSupport*float64(n) {
		minCount++
	}
	if minCount < 1 {
		minCount = 1
	}
	res := &Result{NumRows: n}

	// Pass 1: singleton supports.
	counts := make([]int32, m)
	res.Passes++
	err := src.Scan(func(row int, cols []int32) error {
		for _, c := range cols {
			counts[c]++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	var level []Itemset
	for c, cnt := range counts {
		if int(cnt) >= minCount {
			level = append(level, Itemset{Items: []int32{int32(c)}, Support: int(cnt)})
		}
	}
	res.Candidates = append(res.Candidates, m)
	res.Levels = append(res.Levels, level)
	mem := int64(m) * 4
	if mem > res.PeakMemory {
		res.PeakMemory = mem
	}
	if opt.MemoryBudget > 0 && mem > opt.MemoryBudget {
		return res, ErrMemoryBudget
	}

	for k := 2; opt.MaxLevel == 0 || k <= opt.MaxLevel; k++ {
		prev := res.Levels[k-2]
		if len(prev) < 2 {
			break
		}
		cand := generateCandidates(prev, k)
		res.Candidates = append(res.Candidates, len(cand))
		if len(cand) == 0 {
			break
		}
		// Candidate memory: items + counter + index overhead.
		mem = int64(len(cand)) * (int64(k)*4 + 16)
		if mem > res.PeakMemory {
			res.PeakMemory = mem
		}
		if opt.MemoryBudget > 0 && mem > opt.MemoryBudget {
			return res, ErrMemoryBudget
		}
		var supports []int
		if opt.UseHashTree {
			supports, err = countSupportsHashTree(src, cand, k, m)
		} else {
			supports, err = countSupports(src, cand, k)
		}
		if err != nil {
			return nil, err
		}
		res.Passes++
		level = level[:0:0]
		for i, c := range cand {
			if supports[i] >= minCount {
				level = append(level, Itemset{Items: c, Support: supports[i]})
			}
		}
		res.Levels = append(res.Levels, level)
		if len(level) == 0 {
			break
		}
	}
	return res, nil
}

// generateCandidates joins frequent (k-1)-itemsets sharing their first
// k-2 items and prunes candidates with any infrequent (k-1)-subset —
// the a-priori pruning step.
func generateCandidates(prev []Itemset, k int) [][]int32 {
	// prev is sorted lexicographically by construction (level 1 is
	// built in column order; joins preserve order).
	freq := make(map[string]bool, len(prev))
	for _, it := range prev {
		freq[itemKey(it.Items)] = true
	}
	var cand [][]int32
	for i := 0; i < len(prev); i++ {
		for j := i + 1; j < len(prev); j++ {
			a, b := prev[i].Items, prev[j].Items
			if !samePrefix(a, b, k-2) {
				break // sorted order: no later j shares the prefix
			}
			// Join: a + last item of b (a < b lexicographically).
			c := make([]int32, k)
			copy(c, a)
			c[k-1] = b[k-2]
			if c[k-2] >= c[k-1] {
				continue
			}
			if hasInfrequentSubset(c, freq) {
				continue
			}
			cand = append(cand, c)
		}
	}
	return cand
}

func samePrefix(a, b []int32, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func hasInfrequentSubset(c []int32, freq map[string]bool) bool {
	sub := make([]int32, len(c)-1)
	for drop := range c {
		copy(sub, c[:drop])
		copy(sub[drop:], c[drop+1:])
		if !freq[itemKey(sub)] {
			return true
		}
	}
	return false
}

// itemKey encodes a sorted itemset as a map key.
func itemKey(items []int32) string {
	buf := make([]byte, len(items)*4)
	for i, v := range items {
		buf[i*4] = byte(v)
		buf[i*4+1] = byte(v >> 8)
		buf[i*4+2] = byte(v >> 16)
		buf[i*4+3] = byte(v >> 24)
	}
	return string(buf)
}

// countSupports makes one pass over src counting how many rows contain
// each candidate. Candidates are indexed by their first item, then
// checked for containment against the sorted row.
func countSupports(src matrix.RowSource, cand [][]int32, k int) ([]int, error) {
	m := src.NumCols()
	byFirst := make([][]int32, m)
	for idx, c := range cand {
		byFirst[c[0]] = append(byFirst[c[0]], int32(idx))
	}
	supports := make([]int, len(cand))
	inRow := make([]int32, m) // stamp array: inRow[c] == row+1 if present
	err := src.Scan(func(row int, cols []int32) error {
		if len(cols) < k {
			return nil
		}
		stamp := int32(row + 1)
		for _, c := range cols {
			inRow[c] = stamp
		}
		for _, c := range cols {
			for _, idx := range byFirst[c] {
				items := cand[idx]
				ok := true
				for _, it := range items[1:] {
					if inRow[it] != stamp {
						ok = false
						break
					}
				}
				if ok {
					supports[idx]++
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return supports, nil
}

// SimilarPairs converts a mined Result into the paper's similar-pair
// output: pairs from level 2 with Jaccard similarity >= threshold,
// computed from the support counts (sim = n_ij / (n_i + n_j - n_ij)).
func (r *Result) SimilarPairs(threshold float64) ([]pairs.Scored, error) {
	if threshold < 0 || threshold > 1 {
		return nil, fmt.Errorf("apriori: threshold must be in [0,1], got %v", threshold)
	}
	if len(r.Levels) < 2 {
		return nil, nil
	}
	single := make(map[int32]int, len(r.Levels[0]))
	for _, it := range r.Levels[0] {
		single[it.Items[0]] = it.Support
	}
	var out []pairs.Scored
	for _, it := range r.Levels[1] {
		i, j := it.Items[0], it.Items[1]
		union := single[i] + single[j] - it.Support
		if union <= 0 {
			continue
		}
		s := float64(it.Support) / float64(union)
		if s >= threshold {
			out = append(out, pairs.Scored{Pair: pairs.Make(i, j), Estimate: s, Exact: s})
		}
	}
	pairs.SortScored(out)
	return out, nil
}

// Rule is a classic association rule X => Y with its support fraction
// and confidence.
type Rule struct {
	Antecedent []int32
	Consequent []int32
	Support    float64
	Confidence float64
}

// Rules extracts all rules with confidence >= minConf from the frequent
// itemsets (every non-empty proper subset of each frequent itemset is a
// potential antecedent).
func (r *Result) Rules(minConf float64) ([]Rule, error) {
	if minConf <= 0 || minConf > 1 {
		return nil, fmt.Errorf("apriori: minConf must be in (0,1], got %v", minConf)
	}
	support := map[string]int{}
	for _, level := range r.Levels {
		for _, it := range level {
			support[itemKey(it.Items)] = it.Support
		}
	}
	var rules []Rule
	for lvl := 1; lvl < len(r.Levels); lvl++ {
		for _, it := range r.Levels[lvl] {
			k := len(it.Items)
			// Enumerate non-empty proper subsets as antecedents.
			for mask := 1; mask < (1<<k)-1; mask++ {
				var ante, cons []int32
				for b := 0; b < k; b++ {
					if mask&(1<<b) != 0 {
						ante = append(ante, it.Items[b])
					} else {
						cons = append(cons, it.Items[b])
					}
				}
				anteSupp, ok := support[itemKey(ante)]
				if !ok || anteSupp == 0 {
					continue // antecedent below support threshold
				}
				conf := float64(it.Support) / float64(anteSupp)
				if conf >= minConf {
					rules = append(rules, Rule{
						Antecedent: ante,
						Consequent: cons,
						Support:    float64(it.Support) / float64(r.NumRows),
						Confidence: conf,
					})
				}
			}
		}
	}
	sort.Slice(rules, func(a, b int) bool {
		if rules[a].Confidence != rules[b].Confidence {
			return rules[a].Confidence > rules[b].Confidence
		}
		return itemKey(rules[a].Antecedent) < itemKey(rules[b].Antecedent)
	})
	return rules, nil
}

// SupportPrune returns the column indices whose support (1-count
// fraction) is at least minSupport — the preprocessing the paper
// applies to the news data before a-priori can run at all (Fig. 4's
// "number of columns after support pruning").
func SupportPrune(m *matrix.Matrix, minSupport float64) []int32 {
	minCount := int(minSupport * float64(m.NumRows()))
	if float64(minCount) < minSupport*float64(m.NumRows()) {
		minCount++
	}
	if minCount < 1 {
		minCount = 1
	}
	var keep []int32
	for c := 0; c < m.NumCols(); c++ {
		if m.ColumnSize(c) >= minCount {
			keep = append(keep, int32(c))
		}
	}
	return keep
}

// Project returns a new matrix containing only the given columns (in
// the given order), plus the mapping back to original column indices.
func Project(m *matrix.Matrix, cols []int32) (*matrix.Matrix, []int32) {
	newCols := make([][]int32, len(cols))
	mapping := make([]int32, len(cols))
	for i, c := range cols {
		col := m.Column(int(c))
		newCols[i] = append([]int32(nil), col...)
		mapping[i] = c
	}
	out, err := matrix.New(m.NumRows(), newCols)
	if err != nil {
		// Columns came from a valid matrix; re-validation cannot fail.
		panic(err)
	}
	return out, mapping
}
