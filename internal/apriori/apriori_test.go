package apriori

import (
	"errors"
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

// textbook example: 4 transactions over 5 items.
//
//	r0: {0,1,4}  r1: {1,3}  r2: {1,2}  r3: {0,1,3}
func textbook() *matrix.Matrix {
	m, err := matrix.FromRows(5, [][]int32{
		{0, 1, 4},
		{1, 3},
		{1, 2},
		{0, 1, 3},
	})
	if err != nil {
		panic(err)
	}
	return m
}

func supportOf(res *Result, items ...int32) (int, bool) {
	if len(items) == 0 || len(items) > len(res.Levels) {
		return 0, false
	}
	for _, it := range res.Levels[len(items)-1] {
		if reflect.DeepEqual(it.Items, items) {
			return it.Support, true
		}
	}
	return 0, false
}

func TestMineValidation(t *testing.T) {
	m := textbook()
	for _, s := range []float64{0, -0.5, 1.5} {
		if _, err := Mine(m.Stream(), Options{MinSupport: s}); err == nil {
			t.Errorf("MinSupport %v accepted", s)
		}
	}
	if _, err := Mine(m.Stream(), Options{MinSupport: 0.5, MaxLevel: -1}); err == nil {
		t.Error("negative MaxLevel accepted")
	}
}

func TestMineTextbook(t *testing.T) {
	// minSupport 0.5 => minCount 2.
	res, err := Mine(textbook().Stream(), Options{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Frequent singletons: 0(2), 1(4), 3(2).
	wantL1 := map[int32]int{0: 2, 1: 4, 3: 2}
	if len(res.Levels[0]) != len(wantL1) {
		t.Fatalf("L1 = %+v", res.Levels[0])
	}
	for _, it := range res.Levels[0] {
		if wantL1[it.Items[0]] != it.Support {
			t.Errorf("L1 itemset %+v wrong", it)
		}
	}
	// Frequent pairs: {0,1}(2), {1,3}(2).
	if len(res.Levels[1]) != 2 {
		t.Fatalf("L2 = %+v", res.Levels[1])
	}
	if s, ok := supportOf(res, 0, 1); !ok || s != 2 {
		t.Errorf("support({0,1}) = %d, %v", s, ok)
	}
	if s, ok := supportOf(res, 1, 3); !ok || s != 2 {
		t.Errorf("support({1,3}) = %d, %v", s, ok)
	}
	// No frequent triples: {0,1,3} appears once.
	if len(res.Levels) > 2 && len(res.Levels[2]) != 0 {
		t.Errorf("L3 = %+v, want empty", res.Levels[2])
	}
}

func TestMaxLevelCapsWork(t *testing.T) {
	res, err := Mine(textbook().Stream(), Options{MinSupport: 0.25, MaxLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Levels) > 2 {
		t.Errorf("MaxLevel 2 produced %d levels", len(res.Levels))
	}
}

// TestMineMatchesBruteForce: every frequent itemset reported must have
// its exact support, and no frequent itemset may be missed.
func TestMineMatchesBruteForce(t *testing.T) {
	rng := hashing.NewSplitMix64(1)
	b := matrix.NewBuilder(60, 8)
	for c := 0; c < 8; c++ {
		for r := 0; r < 60; r++ {
			if rng.Float64() < 0.4 {
				b.Set(r, c)
			}
		}
	}
	m := b.Build()
	const minSupport = 0.3
	res, err := Mine(m.Stream(), Options{MinSupport: minSupport})
	if err != nil {
		t.Fatal(err)
	}
	minCount := int(math.Ceil(minSupport * 60))

	// Brute force over all itemsets up to size 4.
	var rows [][]int32
	_ = m.Stream().Scan(func(r int, cols []int32) error {
		rows = append(rows, append([]int32(nil), cols...))
		return nil
	})
	contains := func(row, items []int32) bool {
		j := 0
		for _, it := range items {
			for j < len(row) && row[j] < it {
				j++
			}
			if j == len(row) || row[j] != it {
				return false
			}
		}
		return true
	}
	var check func(items []int32, next int32)
	check = func(items []int32, next int32) {
		if len(items) > 0 && len(items) <= 4 {
			supp := 0
			for _, row := range rows {
				if contains(row, items) {
					supp++
				}
			}
			got, ok := supportOf(res, items...)
			if supp >= minCount {
				if !ok || got != supp {
					t.Errorf("itemset %v: mined (%d,%v), brute force %d", items, got, ok, supp)
				}
			} else if ok {
				t.Errorf("itemset %v reported frequent with support %d < %d", items, got, minCount)
			}
		}
		if len(items) == 4 {
			return
		}
		for c := next; c < 8; c++ {
			check(append(items, c), c+1)
		}
	}
	check(nil, 0)
}

func TestMemoryBudget(t *testing.T) {
	rng := hashing.NewSplitMix64(2)
	b := matrix.NewBuilder(100, 50)
	for c := 0; c < 50; c++ {
		for r := 0; r < 100; r++ {
			if rng.Float64() < 0.5 {
				b.Set(r, c)
			}
		}
	}
	m := b.Build()
	// Tiny budget: must abort with ErrMemoryBudget.
	_, err := Mine(m.Stream(), Options{MinSupport: 0.05, MemoryBudget: 64})
	if !errors.Is(err, ErrMemoryBudget) {
		t.Errorf("err = %v, want ErrMemoryBudget", err)
	}
	// Generous budget: must succeed.
	if _, err := Mine(m.Stream(), Options{MinSupport: 0.05, MaxLevel: 2, MemoryBudget: 1 << 30}); err != nil {
		t.Errorf("generous budget failed: %v", err)
	}
}

func TestSimilarPairs(t *testing.T) {
	res, err := Mine(textbook().Stream(), Options{MinSupport: 0.25, MaxLevel: 2})
	if err != nil {
		t.Fatal(err)
	}
	out, err := res.SimilarPairs(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// sim(0,1) = 2/(2+4-2) = 0.5; sim(1,3) = 2/4 = 0.5; sim(0,3)=1/3;
	// sim(0,4)=1/2; sim(1,4)=1/4; sim(1,2)=1/4.
	want := map[[2]int32]float64{
		{0, 1}: 0.5,
		{1, 3}: 0.5,
		{0, 4}: 0.5,
	}
	if len(out) != len(want) {
		t.Fatalf("SimilarPairs = %+v", out)
	}
	for _, p := range out {
		w, ok := want[[2]int32{p.I, p.J}]
		if !ok || math.Abs(p.Exact-w) > 1e-12 {
			t.Errorf("pair %+v unexpected", p)
		}
	}
	if _, err := res.SimilarPairs(1.5); err == nil {
		t.Error("threshold 1.5 accepted")
	}
}

func TestRules(t *testing.T) {
	res, err := Mine(textbook().Stream(), Options{MinSupport: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	rules, err := res.Rules(0.9)
	if err != nil {
		t.Fatal(err)
	}
	// {0}=>{1} has confidence 2/2 = 1; {3}=>{1} has confidence 2/2 = 1.
	// {1}=>{0} has confidence 2/4 = 0.5 (excluded).
	found := map[string]bool{}
	for _, r := range rules {
		if len(r.Antecedent) == 1 && len(r.Consequent) == 1 {
			found[string(rune('0'+r.Antecedent[0]))+">"+string(rune('0'+r.Consequent[0]))] = true
			if r.Confidence < 0.9 {
				t.Errorf("rule %+v below confidence threshold", r)
			}
		}
	}
	if !found["0>1"] || !found["3>1"] {
		t.Errorf("missing expected rules; got %v", found)
	}
	if found["1>0"] {
		t.Error("low-confidence rule 1=>0 reported")
	}
	if _, err := res.Rules(0); err == nil {
		t.Error("minConf 0 accepted")
	}
}

func TestSupportPruneAndProject(t *testing.T) {
	m := textbook()
	keep := SupportPrune(m, 0.5) // items with count >= 2: 0,1,3
	want := []int32{0, 1, 3}
	if !reflect.DeepEqual(keep, want) {
		t.Fatalf("SupportPrune = %v, want %v", keep, want)
	}
	proj, mapping := Project(m, keep)
	if proj.NumCols() != 3 || proj.NumRows() != 4 {
		t.Fatalf("projected dims %dx%d", proj.NumRows(), proj.NumCols())
	}
	if !reflect.DeepEqual(mapping, want) {
		t.Errorf("mapping = %v", mapping)
	}
	if !reflect.DeepEqual(proj.Column(2), m.Column(3)) {
		t.Errorf("projected column 2 = %v", proj.Column(2))
	}
}

func TestPassesAccounting(t *testing.T) {
	res, err := Mine(textbook().Stream(), Options{MinSupport: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes != len(res.Levels) && res.Passes != len(res.Levels)+1 {
		t.Errorf("Passes = %d with %d levels", res.Passes, len(res.Levels))
	}
	if res.PeakMemory <= 0 {
		t.Error("PeakMemory not tracked")
	}
}

func TestQuickAprioriSoundness(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hashing.NewSplitMix64(seed)
		rows := 20 + rng.Intn(40)
		b := matrix.NewBuilder(rows, 6)
		for c := 0; c < 6; c++ {
			for r := 0; r < rows; r++ {
				if rng.Float64() < 0.3 {
					b.Set(r, c)
				}
			}
		}
		m := b.Build()
		res, err := Mine(m.Stream(), Options{MinSupport: 0.2, MaxLevel: 3})
		if err != nil {
			return false
		}
		minCount := int(math.Ceil(0.2 * float64(rows)))
		// Every reported pair support must match exact intersection.
		for _, it := range res.Levels[0] {
			if m.ColumnSize(int(it.Items[0])) != it.Support || it.Support < minCount {
				return false
			}
		}
		if len(res.Levels) > 1 {
			for _, it := range res.Levels[1] {
				if m.IntersectSize(int(it.Items[0]), int(it.Items[1])) != it.Support {
					return false
				}
				if it.Support < minCount {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
