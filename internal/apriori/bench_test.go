package apriori

import (
	"testing"

	"assocmine/internal/gen"
)

// BenchmarkCounting compares the first-item index against the
// Agrawal-Srikant hash tree on a Quest workload (the structure both
// were designed for).
func BenchmarkCounting(b *testing.B) {
	q, err := gen.GenerateQuest(gen.QuestConfig{Transactions: 20000, Items: 500, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	src := q.Matrix.Stream()
	b.Run("FirstItemIndex", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Mine(src, Options{MinSupport: 0.01, MaxLevel: 3}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("HashTree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Mine(src, Options{MinSupport: 0.01, MaxLevel: 3, UseHashTree: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
