package apriori

import (
	"errors"
	"testing"
)

type erroringSource struct {
	rows, cols, failAt int
}

var errInjected = errors.New("injected scan failure")

func (e *erroringSource) NumRows() int { return e.rows }
func (e *erroringSource) NumCols() int { return e.cols }
func (e *erroringSource) Scan(fn func(int, []int32) error) error {
	for r := 0; r < e.rows; r++ {
		if r == e.failAt {
			return errInjected
		}
		if err := fn(r, []int32{0, 1}); err != nil {
			return err
		}
	}
	return nil
}

func TestMinePropagatesSourceErrorFirstPass(t *testing.T) {
	src := &erroringSource{rows: 10, cols: 3, failAt: 2}
	if _, err := Mine(src, Options{MinSupport: 0.1}); !errors.Is(err, errInjected) {
		t.Errorf("err = %v, want injected error", err)
	}
}

// laterFailSource fails only on the second Scan (the level-2 counting
// pass), exercising error propagation from countSupports.
type laterFailSource struct {
	rows, cols int
	scans      int
}

func (e *laterFailSource) NumRows() int { return e.rows }
func (e *laterFailSource) NumCols() int { return e.cols }
func (e *laterFailSource) Scan(fn func(int, []int32) error) error {
	e.scans++
	if e.scans >= 2 {
		return errInjected
	}
	for r := 0; r < e.rows; r++ {
		if err := fn(r, []int32{0, 1}); err != nil {
			return err
		}
	}
	return nil
}

func TestMinePropagatesSourceErrorLaterPass(t *testing.T) {
	src := &laterFailSource{rows: 10, cols: 3}
	if _, err := Mine(src, Options{MinSupport: 0.1}); !errors.Is(err, errInjected) {
		t.Errorf("err = %v, want injected error", err)
	}
}
