package apriori

// The hash tree of Agrawal & Srikant's "Fast Algorithms for Mining
// Association Rules" (the paper's reference [2]): candidates are stored
// in a tree whose interior nodes hash on the item at their depth, so a
// transaction's support-counting visit only descends into subtrees
// reachable from its items. For large candidate sets this beats the
// first-item index of countSupports, whose per-row cost is linear in
// the candidates sharing a first item.

const (
	htLeafCapacity = 16  // split a leaf beyond this many candidates
	htFanout       = 251 // hash buckets per interior node (prime)
)

type htNode struct {
	// Leaf state: candidate indices (into the candidate slice).
	leaf []int32
	// Interior state: children by item hash; nil for leaves.
	children []*htNode
	depth    int
}

// hashTree indexes candidate itemsets for counting.
type hashTree struct {
	root *htNode
	cand [][]int32
	k    int
}

func newHashTree(cand [][]int32, k int) *hashTree {
	t := &hashTree{root: &htNode{}, cand: cand, k: k}
	for idx := range cand {
		t.insert(t.root, int32(idx))
	}
	return t
}

func htBucket(item int32) int { return int(uint32(item)) % htFanout }

func (t *hashTree) insert(n *htNode, idx int32) {
	for {
		if n.children == nil {
			n.leaf = append(n.leaf, idx)
			// Split when overfull, unless the depth already consumed
			// every item position (duplicates of long prefixes).
			if len(n.leaf) > htLeafCapacity && n.depth < t.k {
				n.children = make([]*htNode, htFanout)
				old := n.leaf
				n.leaf = nil
				for _, o := range old {
					t.placeInChild(n, o)
				}
			}
			return
		}
		n = t.childFor(n, idx)
	}
}

func (t *hashTree) placeInChild(n *htNode, idx int32) {
	c := t.childFor(n, idx)
	c.leaf = append(c.leaf, idx)
	if len(c.leaf) > htLeafCapacity && c.depth < t.k {
		c.children = make([]*htNode, htFanout)
		old := c.leaf
		c.leaf = nil
		for _, o := range old {
			t.placeInChild(c, o)
		}
	}
}

func (t *hashTree) childFor(n *htNode, idx int32) *htNode {
	item := t.cand[idx][n.depth]
	b := htBucket(item)
	if n.children[b] == nil {
		n.children[b] = &htNode{depth: n.depth + 1}
	}
	return n.children[b]
}

// count walks the tree for one transaction (sorted items), incrementing
// supports of contained candidates. The stamp array marks the
// transaction's items for O(1) containment checks at leaves; lastTx
// guards against counting a candidate twice when hash collisions lead
// several descent paths to the same leaf.
func (t *hashTree) count(row []int32, stamp []int32, mark int32, supports []int, lastTx []int32) {
	if len(row) < t.k {
		return
	}
	t.visit(t.root, row, stamp, mark, supports, lastTx)
}

func (t *hashTree) visit(n *htNode, remaining []int32, stamp []int32, mark int32, supports []int, lastTx []int32) {
	if n.children == nil {
		for _, idx := range n.leaf {
			if lastTx[idx] == mark {
				continue // already counted for this transaction
			}
			items := t.cand[idx]
			ok := true
			// The descent path matched items only by hash, so check all
			// items against the stamp.
			for _, it := range items {
				if stamp[it] != mark {
					ok = false
					break
				}
			}
			if ok {
				supports[idx]++
				lastTx[idx] = mark
			}
		}
		return
	}
	// Interior node at depth d: try every remaining item as the d-th
	// item of a candidate. Candidates are sorted, so item i at depth d
	// needs at least k-d-1 further items after it.
	need := t.k - n.depth - 1
	for i := 0; i+need < len(remaining); i++ {
		b := htBucket(remaining[i])
		if child := n.children[b]; child != nil {
			t.visit(child, remaining[i+1:], stamp, mark, supports, lastTx)
		}
	}
}

// countSupportsHashTree is the hash-tree counting pass, equivalent to
// countSupports.
func countSupportsHashTree(src rowSource, cand [][]int32, k, numCols int) ([]int, error) {
	tree := newHashTree(cand, k)
	supports := make([]int, len(cand))
	stamp := make([]int32, numCols)
	lastTx := make([]int32, len(cand))
	err := src.Scan(func(row int, cols []int32) error {
		if len(cols) < k {
			return nil
		}
		mark := int32(row + 1)
		for _, c := range cols {
			stamp[c] = mark
		}
		tree.count(cols, stamp, mark, supports, lastTx)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return supports, nil
}

// rowSource is the minimal scanning interface countSupportsHashTree
// needs (satisfied by matrix.RowSource).
type rowSource interface {
	Scan(fn func(row int, cols []int32) error) error
}
