package apriori

import (
	"reflect"
	"testing"
	"testing/quick"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

// TestHashTreeMatchesIndexCounting: the hash tree must produce
// identical frequent itemsets at every level.
func TestHashTreeMatchesIndexCounting(t *testing.T) {
	rng := hashing.NewSplitMix64(1)
	b := matrix.NewBuilder(300, 30)
	for c := 0; c < 30; c++ {
		for r := 0; r < 300; r++ {
			if rng.Float64() < 0.25 {
				b.Set(r, c)
			}
		}
	}
	m := b.Build()
	base, err := Mine(m.Stream(), Options{MinSupport: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Mine(m.Stream(), Options{MinSupport: 0.1, UseHashTree: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Levels) != len(tree.Levels) {
		t.Fatalf("level counts differ: %d vs %d", len(base.Levels), len(tree.Levels))
	}
	for lvl := range base.Levels {
		if len(base.Levels[lvl]) != len(tree.Levels[lvl]) {
			t.Fatalf("level %d: %d vs %d itemsets", lvl, len(base.Levels[lvl]), len(tree.Levels[lvl]))
		}
		for i := range base.Levels[lvl] {
			a, b := base.Levels[lvl][i], tree.Levels[lvl][i]
			if !reflect.DeepEqual(a.Items, b.Items) || a.Support != b.Support {
				t.Fatalf("level %d itemset %d: %+v vs %+v", lvl, i, a, b)
			}
		}
	}
}

// TestHashTreeNoDoubleCounting: a dense transaction with many items
// hashing to the same buckets must count each candidate once.
func TestHashTreeNoDoubleCounting(t *testing.T) {
	// One transaction containing many items; all 3-subsets of the first
	// 10 items as candidates. Each candidate's support must be exactly 1.
	items := make([]int32, 40)
	for i := range items {
		items[i] = int32(i)
	}
	var cand [][]int32
	for a := int32(0); a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			for c := b + 1; c < 10; c++ {
				cand = append(cand, []int32{a, b, c})
			}
		}
	}
	src := &matrix.SliceSource{Cols: 40, Rows: [][]int32{items}}
	supports, err := countSupportsHashTree(src, cand, 3, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range supports {
		if s != 1 {
			t.Fatalf("candidate %v counted %d times", cand[i], s)
		}
	}
}

func TestHashTreeMissingItems(t *testing.T) {
	cand := [][]int32{{0, 1}, {2, 3}, {0, 3}}
	src := &matrix.SliceSource{Cols: 5, Rows: [][]int32{
		{0, 1, 3}, // contains {0,1} and {0,3}
		{2},       // too short
		{2, 3, 4}, // contains {2,3}
	}}
	supports, err := countSupportsHashTree(src, cand, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 1, 1}
	if !reflect.DeepEqual(supports, want) {
		t.Fatalf("supports = %v, want %v", supports, want)
	}
}

func TestQuickHashTreeEquivalence(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hashing.NewSplitMix64(seed)
		rows := 30 + rng.Intn(50)
		b := matrix.NewBuilder(rows, 12)
		for c := 0; c < 12; c++ {
			for r := 0; r < rows; r++ {
				if rng.Float64() < 0.3 {
					b.Set(r, c)
				}
			}
		}
		m := b.Build()
		base, err := Mine(m.Stream(), Options{MinSupport: 0.15, MaxLevel: 3})
		if err != nil {
			return false
		}
		tree, err := Mine(m.Stream(), Options{MinSupport: 0.15, MaxLevel: 3, UseHashTree: true})
		if err != nil {
			return false
		}
		if len(base.Levels) != len(tree.Levels) {
			return false
		}
		for lvl := range base.Levels {
			if len(base.Levels[lvl]) != len(tree.Levels[lvl]) {
				return false
			}
			for i := range base.Levels[lvl] {
				if base.Levels[lvl][i].Support != tree.Levels[lvl][i].Support {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
