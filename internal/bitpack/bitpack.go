// Package bitpack provides the bit-granular encoding layer shared by
// the compressed on-disk codecs (the ".carows" matrix format, the
// compressed signature and sketch files, and the compressed spill runs
// of budgeted verification): an LSB-first bit writer/reader pair and
// Golomb-Rice coding for small non-negative integers.
//
// Bits are packed LSB-first within each byte — the first bit written
// is bit 0 of the first byte — so a value written with WriteBits(v, w)
// occupies w consecutive bits and reads back with ReadBits(w). Rice
// coding splits v into a quotient q = v>>k (written in unary: q one
// bits then a zero) and the k low bits of v; for geometrically
// distributed values with mean near 2^k it approaches the entropy,
// while varints cost a full byte per value however small.
package bitpack

import (
	"fmt"
	"io"
	"math/bits"
)

// MaxRiceK bounds the Rice parameter: 2^40 exceeds every quantity the
// codecs delta-encode (row ids, column ids, counter values), so any
// larger parameter in a header is corruption.
const MaxRiceK = 40

// maxUnary bounds the unary quotient a Rice decode will consume. A
// well-formed encoder never exceeds it (writers pick k so quotients
// stay small); a hostile stream of 1-bits must not spin the decoder.
const maxUnary = 1 << 26

// Writer packs bits LSB-first into an io.Writer. Errors are sticky:
// the first write error is returned by every subsequent call and by
// Flush.
type Writer struct {
	w   io.Writer
	bw  io.ByteWriter // w again, when it writes bytes without a slice
	acc uint64
	n   uint // bits pending in acc, < 8 between calls
	buf [1]byte
	err error
}

// NewWriter returns a Writer emitting to w. The caller must Flush
// before reading back or switching to byte-level writes.
func NewWriter(w io.Writer) *Writer {
	nw := &Writer{w: w}
	nw.bw, _ = w.(io.ByteWriter)
	return nw
}

// writeByte emits one packed byte, preferring the ByteWriter fast path
// (bufio.Writer and bytes.Buffer) over a one-byte slice Write.
func (bw *Writer) writeByte(b byte) error {
	if bw.bw != nil {
		return bw.bw.WriteByte(b)
	}
	bw.buf[0] = b
	_, err := bw.w.Write(bw.buf[:])
	return err
}

// WriteBits appends the width low bits of v, LSB first. width must be
// <= 56 so the accumulator never overflows mid-call.
func (bw *Writer) WriteBits(v uint64, width uint) {
	if bw.err != nil {
		return
	}
	if width > 56 {
		bw.err = fmt.Errorf("bitpack: width %d out of range", width)
		return
	}
	bw.acc |= (v & ((1 << width) - 1)) << bw.n
	bw.n += width
	for bw.n >= 8 {
		if err := bw.writeByte(byte(bw.acc)); err != nil {
			bw.err = err
			return
		}
		bw.acc >>= 8
		bw.n -= 8
	}
}

// WriteRice appends v in Rice coding with parameter k: v>>k one bits,
// a zero bit, then the k low bits of v.
func (bw *Writer) WriteRice(v uint64, k uint) {
	q := v >> k
	for q >= 32 {
		bw.WriteBits((1<<32)-1, 32)
		q -= 32
	}
	// q one bits followed by the terminating zero.
	bw.WriteBits((1<<q)-1, uint(q)+1)
	if k > 0 {
		bw.WriteBits(v, k)
	}
}

// Flush pads the pending bits with zeros up to the next byte boundary
// and writes them out, returning the first error the writer hit.
func (bw *Writer) Flush() error {
	if bw.err == nil && bw.n > 0 {
		if err := bw.writeByte(byte(bw.acc)); err != nil {
			bw.err = err
		}
		bw.acc, bw.n = 0, 0
	}
	return bw.err
}

// ByteSource is the reader side's byte supply; *bufio.Reader and the
// offset-tracked readers of the file-backed scans implement it.
type ByteSource interface {
	ReadByte() (byte, error)
}

// Reader unpacks bits LSB-first from a ByteSource. Align discards the
// remainder of the current byte, re-synchronising with byte-aligned
// framing (row and block boundaries).
type Reader struct {
	r   ByteSource
	acc uint64
	n   uint
}

// NewReader returns a Reader consuming from r.
func NewReader(r ByteSource) *Reader {
	return &Reader{r: r}
}

// Reset rebinds the reader to a new source, dropping buffered bits.
func (br *Reader) Reset(r ByteSource) {
	br.r = r
	br.acc, br.n = 0, 0
}

// ReadBits returns the next width bits, LSB first. width must be <= 56.
func (br *Reader) ReadBits(width uint) (uint64, error) {
	if width > 56 {
		return 0, fmt.Errorf("bitpack: width %d out of range", width)
	}
	for br.n < width {
		b, err := br.r.ReadByte()
		if err != nil {
			return 0, err
		}
		br.acc |= uint64(b) << br.n
		br.n += 8
	}
	v := br.acc & ((1 << width) - 1)
	br.acc >>= width
	br.n -= width
	return v, nil
}

// ReadRice decodes one Rice-coded value with parameter k.
func (br *Reader) ReadRice(k uint) (uint64, error) {
	// Scan buffered bits a word at a time: the quotient is the run of
	// one bits up to the first zero, so count trailing ones in acc.
	q := uint64(0)
	for {
		if br.n == 0 {
			b, err := br.r.ReadByte()
			if err != nil {
				return 0, err
			}
			br.acc = uint64(b)
			br.n = 8
		}
		ones := uint(bits.TrailingZeros64(^br.acc))
		if ones < br.n {
			q += uint64(ones)
			br.acc >>= ones + 1
			br.n -= ones + 1
			break
		}
		q += uint64(br.n)
		br.acc, br.n = 0, 0
		if q > maxUnary {
			return 0, fmt.Errorf("bitpack: unary run exceeds %d", maxUnary)
		}
	}
	if k == 0 {
		return q, nil
	}
	low, err := br.ReadBits(k)
	if err != nil {
		return 0, err
	}
	return q<<k | low, nil
}

// Align discards the unread bits of the current byte, so the next read
// starts at the following byte boundary.
func (br *Reader) Align() {
	br.acc, br.n = 0, 0
}

// RiceCost returns the encoded size, in bits, of v under parameter k.
func RiceCost(v uint64, k uint) uint64 {
	return v>>k + 1 + uint64(k)
}

// BestRiceK returns the parameter in [0, MaxRiceK] minimising the
// total Rice-coded size of vals, together with that size in bits.
// Deterministic: the smallest optimal k wins ties.
func BestRiceK(vals []uint64) (uint, uint64) {
	bestK, bestBits := uint(0), uint64(0)
	for k := uint(0); k <= MaxRiceK; k++ {
		bits := uint64(0)
		for _, v := range vals {
			bits += RiceCost(v, k)
		}
		if k == 0 || bits < bestBits {
			bestK, bestBits = k, bits
		}
		// Costs are convex in k once the unary term stops dominating;
		// past the point where every quotient is 0 the cost only grows.
		if bits == uint64(len(vals))*(uint64(k)+1) {
			break
		}
	}
	return bestK, bestBits
}
