package bitpack

import (
	"bufio"
	"bytes"
	"math/rand"
	"testing"
)

func TestWriteReadBitsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	type rec struct {
		v     uint64
		width uint
	}
	var recs []rec
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	for i := 0; i < 10000; i++ {
		width := uint(rng.Intn(56) + 1)
		v := rng.Uint64() & ((1 << width) - 1)
		recs = append(recs, rec{v, width})
		bw.WriteBits(v, width)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := NewReader(bufio.NewReader(&buf))
	for i, r := range recs {
		got, err := br.ReadBits(r.width)
		if err != nil {
			t.Fatalf("value %d: %v", i, err)
		}
		if got != r.v {
			t.Fatalf("value %d: got %d, want %d (width %d)", i, got, r.v, r.width)
		}
	}
}

func TestRiceRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, k := range []uint{0, 1, 3, 7, 13, 31, MaxRiceK} {
		var vals []uint64
		for i := 0; i < 2000; i++ {
			// Mixture of small (typical) and occasional large values, so
			// both the unary and the binary halves get exercised.
			v := uint64(rng.Intn(10))
			if rng.Intn(20) == 0 {
				v = uint64(rng.Intn(1 << 16))
			}
			vals = append(vals, v)
		}
		var buf bytes.Buffer
		bw := NewWriter(&buf)
		for _, v := range vals {
			bw.WriteRice(v, k)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
		br := NewReader(bufio.NewReader(&buf))
		for i, v := range vals {
			got, err := br.ReadRice(k)
			if err != nil {
				t.Fatalf("k=%d value %d: %v", k, i, err)
			}
			if got != v {
				t.Fatalf("k=%d value %d: got %d, want %d", k, i, got, v)
			}
		}
	}
}

func TestRiceLargeQuotient(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	bw.WriteRice(1000, 0) // 1000 one bits: crosses many 32-bit chunks
	bw.WriteRice(5, 2)
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	br := NewReader(bufio.NewReader(&buf))
	if v, err := br.ReadRice(0); err != nil || v != 1000 {
		t.Fatalf("got %d, %v; want 1000", v, err)
	}
	if v, err := br.ReadRice(2); err != nil || v != 5 {
		t.Fatalf("got %d, %v; want 5", v, err)
	}
}

func TestReadRiceHostileUnary(t *testing.T) {
	// An endless stream of 1-bits must error out, not spin.
	br := NewReader(ones{})
	if _, err := br.ReadRice(0); err == nil {
		t.Fatal("expected unary-run error on all-ones input")
	}
}

type ones struct{}

func (ones) ReadByte() (byte, error) { return 0xff, nil }

func TestAlignResyncs(t *testing.T) {
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	bw.WriteBits(0b101, 3)
	if err := bw.Flush(); err != nil { // pads to one byte
		t.Fatal(err)
	}
	bw2 := NewWriter(&buf)
	bw2.WriteBits(0x5a, 8)
	if err := bw2.Flush(); err != nil {
		t.Fatal(err)
	}
	br := NewReader(bufio.NewReader(&buf))
	if v, _ := br.ReadBits(3); v != 0b101 {
		t.Fatalf("got %b", v)
	}
	br.Align()
	if v, err := br.ReadBits(8); err != nil || v != 0x5a {
		t.Fatalf("after align: got %x, %v", v, err)
	}
}

func TestBestRiceK(t *testing.T) {
	// All zeros: k=0 is optimal (1 bit per value).
	if k, bits := BestRiceK([]uint64{0, 0, 0, 0}); k != 0 || bits != 4 {
		t.Fatalf("zeros: k=%d bits=%d", k, bits)
	}
	// Values near 2^6: the best k is near 6, and the reported size must
	// match an actual encode.
	vals := []uint64{60, 70, 55, 64, 71, 63, 58, 66}
	k, bits := BestRiceK(vals)
	var buf bytes.Buffer
	bw := NewWriter(&buf)
	for _, v := range vals {
		bw.WriteRice(v, k)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := uint64(buf.Len()); got != (bits+7)/8 {
		t.Fatalf("encoded %d bytes, cost formula says %d bits", got, bits)
	}
	// No other k does better.
	for other := uint(0); other <= MaxRiceK; other++ {
		total := uint64(0)
		for _, v := range vals {
			total += RiceCost(v, other)
		}
		if total < bits {
			t.Fatalf("k=%d costs %d bits, BestRiceK said %d bits at k=%d", other, total, bits, k)
		}
	}
}
