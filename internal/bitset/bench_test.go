package bitset

import "testing"

func BenchmarkTest(b *testing.B) {
	s := New(1 << 16)
	for i := 0; i < 1<<16; i += 3 {
		s.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Test(i & (1<<16 - 1))
	}
}

func BenchmarkAndCount(b *testing.B) {
	x, y := New(1<<16), New(1<<16)
	for i := 0; i < 1<<16; i += 3 {
		x.Set(i)
	}
	for i := 0; i < 1<<16; i += 5 {
		y.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = x.AndCount(y)
	}
}
