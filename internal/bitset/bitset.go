// Package bitset provides a fixed-size dense bit vector and the raw
// word-slice popcount kernels underneath it. Hamming-LSH uses the Set
// type to represent columns inside the density window (1/t, (t-1)/t) —
// such columns are at least 1/t dense, so a bitmap is both smaller and
// faster to probe than a sorted index list — and the packed
// verification kernel uses the word-slice functions directly over its
// column arena.
package bitset

import (
	"fmt"
	"math/bits"
)

// CountWords returns the number of set bits across the words. The loop
// is unrolled by four with the bounds check hoisted, so the body is a
// straight run of POPCNT-class instructions.
func CountWords(w []uint64) int {
	total := 0
	i := 0
	for ; i+4 <= len(w); i += 4 {
		x := w[i : i+4 : i+4]
		total += bits.OnesCount64(x[0]) + bits.OnesCount64(x[1]) +
			bits.OnesCount64(x[2]) + bits.OnesCount64(x[3])
	}
	for ; i < len(w); i++ {
		total += bits.OnesCount64(w[i])
	}
	return total
}

// AndCountWords returns popcount(a AND b). The slices must have equal
// length; the b bound is hoisted by reslicing to len(a).
func AndCountWords(a, b []uint64) int {
	b = b[:len(a)]
	total := 0
	i := 0
	for ; i+4 <= len(a); i += 4 {
		x, y := a[i:i+4:i+4], b[i:i+4:i+4]
		total += bits.OnesCount64(x[0]&y[0]) + bits.OnesCount64(x[1]&y[1]) +
			bits.OnesCount64(x[2]&y[2]) + bits.OnesCount64(x[3]&y[3])
	}
	for ; i < len(a); i++ {
		total += bits.OnesCount64(a[i] & b[i])
	}
	return total
}

// AndOrCounts returns popcount(a AND b) and popcount(a OR b) in one
// fused pass — the |C_i ∩ C_j| and |C_i ∪ C_j| of two packed columns,
// which divide directly into their exact similarity. Both counts come
// from the same word loads, so the fused form costs barely more than
// either count alone. The slices must have equal length.
func AndOrCounts(a, b []uint64) (and, or int) {
	b = b[:len(a)]
	i := 0
	for ; i+4 <= len(a); i += 4 {
		x, y := a[i:i+4:i+4], b[i:i+4:i+4]
		and += bits.OnesCount64(x[0]&y[0]) + bits.OnesCount64(x[1]&y[1]) +
			bits.OnesCount64(x[2]&y[2]) + bits.OnesCount64(x[3]&y[3])
		or += bits.OnesCount64(x[0]|y[0]) + bits.OnesCount64(x[1]|y[1]) +
			bits.OnesCount64(x[2]|y[2]) + bits.OnesCount64(x[3]|y[3])
	}
	for ; i < len(a); i++ {
		and += bits.OnesCount64(a[i] & b[i])
		or += bits.OnesCount64(a[i] | b[i])
	}
	return and, or
}

// XorCountWords returns popcount(a XOR b), the Hamming distance of two
// packed columns. The slices must have equal length.
func XorCountWords(a, b []uint64) int {
	b = b[:len(a)]
	total := 0
	i := 0
	for ; i+4 <= len(a); i += 4 {
		x, y := a[i:i+4:i+4], b[i:i+4:i+4]
		total += bits.OnesCount64(x[0]^y[0]) + bits.OnesCount64(x[1]^y[1]) +
			bits.OnesCount64(x[2]^y[2]) + bits.OnesCount64(x[3]^y[3])
	}
	for ; i < len(a); i++ {
		total += bits.OnesCount64(a[i] ^ b[i])
	}
	return total
}

// Set is a fixed-capacity bit vector. The zero value is unusable; call
// New.
type Set struct {
	n     int
	words []uint64
}

// New returns a Set holding n bits, all zero.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative size %d", n))
	}
	return &Set{n: n, words: make([]uint64, (n+63)/64)}
}

// FromSorted builds a Set of n bits from sorted indices.
func FromSorted(n int, idx []int32) *Set {
	s := New(n)
	for _, i := range idx {
		s.Set(int(i))
	}
	return s
}

// Len returns the capacity in bits.
func (s *Set) Len() int { return s.n }

// Set turns bit i on. Panics when out of range.
func (s *Set) Set(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear turns bit i off.
func (s *Set) Clear(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Test reports whether bit i is on.
func (s *Set) Test(i int) bool {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	return CountWords(s.words)
}

// AndCount returns |s ∩ o| for sets of equal capacity.
func (s *Set) AndCount(o *Set) int {
	if s.n != o.n {
		panic("bitset: AndCount on sets of different sizes")
	}
	return AndCountWords(s.words, o.words)
}

// OrInPlace sets s = s ∪ o for sets of equal capacity.
func (s *Set) OrInPlace(o *Set) {
	if s.n != o.n {
		panic("bitset: OrInPlace on sets of different sizes")
	}
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
}

// HammingDistance returns the number of positions where s and o differ.
func (s *Set) HammingDistance(o *Set) int {
	if s.n != o.n {
		panic("bitset: HammingDistance on sets of different sizes")
	}
	return XorCountWords(s.words, o.words)
}
