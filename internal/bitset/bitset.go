// Package bitset provides a fixed-size dense bit vector. Hamming-LSH
// uses it to represent columns inside the density window (1/t, (t-1)/t)
// — such columns are at least 1/t dense, so a bitmap is both smaller
// and faster to probe than a sorted index list.
package bitset

import (
	"fmt"
	"math/bits"
)

// Set is a fixed-capacity bit vector. The zero value is unusable; call
// New.
type Set struct {
	n     int
	words []uint64
}

// New returns a Set holding n bits, all zero.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: negative size %d", n))
	}
	return &Set{n: n, words: make([]uint64, (n+63)/64)}
}

// FromSorted builds a Set of n bits from sorted indices.
func FromSorted(n int, idx []int32) *Set {
	s := New(n)
	for _, i := range idx {
		s.Set(int(i))
	}
	return s
}

// Len returns the capacity in bits.
func (s *Set) Len() int { return s.n }

// Set turns bit i on. Panics when out of range.
func (s *Set) Set(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
	s.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear turns bit i off.
func (s *Set) Clear(i int) {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
	s.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Test reports whether bit i is on.
func (s *Set) Test(i int) bool {
	if i < 0 || i >= s.n {
		panic(fmt.Sprintf("bitset: index %d out of range [0,%d)", i, s.n))
	}
	return s.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Count returns the number of set bits.
func (s *Set) Count() int {
	total := 0
	for _, w := range s.words {
		total += bits.OnesCount64(w)
	}
	return total
}

// AndCount returns |s ∩ o| for sets of equal capacity.
func (s *Set) AndCount(o *Set) int {
	if s.n != o.n {
		panic("bitset: AndCount on sets of different sizes")
	}
	total := 0
	for i, w := range s.words {
		total += bits.OnesCount64(w & o.words[i])
	}
	return total
}

// OrInPlace sets s = s ∪ o for sets of equal capacity.
func (s *Set) OrInPlace(o *Set) {
	if s.n != o.n {
		panic("bitset: OrInPlace on sets of different sizes")
	}
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
}

// HammingDistance returns the number of positions where s and o differ.
func (s *Set) HammingDistance(o *Set) int {
	if s.n != o.n {
		panic("bitset: HammingDistance on sets of different sizes")
	}
	total := 0
	for i, w := range s.words {
		total += bits.OnesCount64(w ^ o.words[i])
	}
	return total
}
