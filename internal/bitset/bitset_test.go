package bitset

import (
	"testing"
	"testing/quick"
)

func TestSetTestClear(t *testing.T) {
	s := New(130)
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("fresh set has bit %d", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
		s.Clear(i)
		if s.Test(i) {
			t.Fatalf("bit %d not cleared", i)
		}
	}
}

func TestOutOfRangePanics(t *testing.T) {
	s := New(10)
	for _, fn := range []func(){
		func() { s.Set(10) },
		func() { s.Set(-1) },
		func() { s.Test(10) },
		func() { s.Clear(-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range access did not panic")
				}
			}()
			fn()
		}()
	}
	defer func() {
		if recover() == nil {
			t.Error("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestFromSortedAndCount(t *testing.T) {
	s := FromSorted(100, []int32{3, 50, 99})
	if s.Count() != 3 {
		t.Errorf("Count = %d", s.Count())
	}
	for _, i := range []int{3, 50, 99} {
		if !s.Test(i) {
			t.Errorf("bit %d missing", i)
		}
	}
	if s.Test(4) {
		t.Error("stray bit")
	}
}

func TestAndCountOrHamming(t *testing.T) {
	a := FromSorted(70, []int32{0, 10, 64, 69})
	b := FromSorted(70, []int32{10, 20, 64})
	if got := a.AndCount(b); got != 2 {
		t.Errorf("AndCount = %d", got)
	}
	if got := a.HammingDistance(b); got != 3 { // {0,69} vs {20}
		t.Errorf("Hamming = %d", got)
	}
	a.OrInPlace(b)
	if a.Count() != 5 {
		t.Errorf("union count = %d", a.Count())
	}
	defer func() {
		if recover() == nil {
			t.Error("size-mismatched AndCount did not panic")
		}
	}()
	a.AndCount(New(10))
}

func TestQuickMatchesMapSet(t *testing.T) {
	f := func(idxA, idxB []uint8) bool {
		const n = 200
		ma, mb := map[int]bool{}, map[int]bool{}
		a, b := New(n), New(n)
		for _, i := range idxA {
			a.Set(int(i) % n)
			ma[int(i)%n] = true
		}
		for _, i := range idxB {
			b.Set(int(i) % n)
			mb[int(i)%n] = true
		}
		if a.Count() != len(ma) || b.Count() != len(mb) {
			return false
		}
		inter, ham := 0, 0
		for i := 0; i < n; i++ {
			if ma[i] && mb[i] {
				inter++
			}
			if ma[i] != mb[i] {
				ham++
			}
		}
		return a.AndCount(b) == inter && a.HammingDistance(b) == ham
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestWordKernels: the unrolled word-slice kernels must agree with a
// naive per-bit reference on lengths that cover the unrolled body, the
// remainder loop, and empty input.
func TestWordKernels(t *testing.T) {
	rng := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		rng ^= rng << 13
		rng ^= rng >> 7
		rng ^= rng << 17
		return rng
	}
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 16, 31, 64} {
		a := make([]uint64, n)
		b := make([]uint64, n)
		for i := range a {
			a[i], b[i] = next(), next()
		}
		wantCount, wantAnd, wantOr, wantXor := 0, 0, 0, 0
		for i := range a {
			for bit := 0; bit < 64; bit++ {
				mask := uint64(1) << uint(bit)
				av, bv := a[i]&mask != 0, b[i]&mask != 0
				if av {
					wantCount++
				}
				if av && bv {
					wantAnd++
				}
				if av || bv {
					wantOr++
				}
				if av != bv {
					wantXor++
				}
			}
		}
		if got := CountWords(a); got != wantCount {
			t.Errorf("n=%d: CountWords = %d, want %d", n, got, wantCount)
		}
		if got := AndCountWords(a, b); got != wantAnd {
			t.Errorf("n=%d: AndCountWords = %d, want %d", n, got, wantAnd)
		}
		and, or := AndOrCounts(a, b)
		if and != wantAnd || or != wantOr {
			t.Errorf("n=%d: AndOrCounts = (%d,%d), want (%d,%d)", n, and, or, wantAnd, wantOr)
		}
		if got := XorCountWords(a, b); got != wantXor {
			t.Errorf("n=%d: XorCountWords = %d, want %d", n, got, wantXor)
		}
	}
}
