// Package boolexpr evaluates Boolean expressions over columns using
// only bottom-k sketches — the Section 7 extension: "Extensions to more
// than three columns and complex Boolean expressions are possible but
// will suffer from an exponential overhead in the number of columns."
//
// The machinery: the sketch of an OR of columns is the bottom-k of the
// merged sketches (exactly computable, no data pass); cardinalities of
// sketchable expressions follow from the bottom-k order statistic; and
// AND cardinalities follow by inclusion-exclusion over the ORs of
// subsets — the exponential overhead the paper predicts, which is why
// And fan-in is capped.
package boolexpr

import (
	"fmt"
	"math/bits"

	"assocmine/internal/kminhash"
)

// Expr is a Boolean expression over columns: a Column leaf, an Or, or
// an And. And children must themselves be sketchable (columns or ORs) —
// nesting And under Or or And under And is rejected by Validate, since
// no sketch exists for an AND.
type Expr interface {
	isExpr()
}

// Column is a leaf referencing column c.
type Column int32

// Or is a disjunction of sub-expressions.
type Or []Expr

// And is a conjunction; its cardinality costs 2^len(And)-1 union
// estimates (inclusion-exclusion).
type And []Expr

func (Column) isExpr() {}
func (Or) isExpr()     {}
func (And) isExpr()    {}

// MaxAndFanIn caps the inclusion-exclusion blowup.
const MaxAndFanIn = 12

// Evaluator answers cardinality, similarity and confidence queries
// about expressions from one set of bottom-k sketches.
type Evaluator struct {
	s *kminhash.Sketches
}

// NewEvaluator wraps the sketches.
func NewEvaluator(s *kminhash.Sketches) *Evaluator {
	return &Evaluator{s: s}
}

// NumCols returns the number of columns the sketches cover.
func (e *Evaluator) NumCols() int { return len(e.s.Sigs) }

// Validate checks an expression against the sketched column range and
// the structural restrictions.
func (e *Evaluator) Validate(x Expr) error {
	return e.validate(x, false)
}

func (e *Evaluator) validate(x Expr, insideAnd bool) error {
	switch v := x.(type) {
	case Column:
		if v < 0 || int(v) >= len(e.s.Sigs) {
			return fmt.Errorf("boolexpr: column %d out of range [0,%d)", v, len(e.s.Sigs))
		}
		return nil
	case Or:
		if len(v) == 0 {
			return fmt.Errorf("boolexpr: empty Or")
		}
		for _, c := range v {
			if _, isAnd := c.(And); isAnd {
				return fmt.Errorf("boolexpr: And nested under Or is not sketchable")
			}
			if err := e.validate(c, insideAnd); err != nil {
				return err
			}
		}
		return nil
	case And:
		if insideAnd {
			return fmt.Errorf("boolexpr: nested And is not supported")
		}
		if len(v) == 0 {
			return fmt.Errorf("boolexpr: empty And")
		}
		if len(v) > MaxAndFanIn {
			return fmt.Errorf("boolexpr: And fan-in %d exceeds cap %d (inclusion-exclusion is exponential)", len(v), MaxAndFanIn)
		}
		for _, c := range v {
			if _, isAnd := c.(And); isAnd {
				return fmt.Errorf("boolexpr: nested And is not supported")
			}
			if err := e.validate(c, true); err != nil {
				return err
			}
		}
		return nil
	case nil:
		return fmt.Errorf("boolexpr: nil expression")
	default:
		return fmt.Errorf("boolexpr: unknown expression type %T", x)
	}
}

// sketch returns the bottom-k sketch of a sketchable expression
// (Column or Or tree) by merging leaf sketches.
func (e *Evaluator) sketch(x Expr) ([]uint64, error) {
	switch v := x.(type) {
	case Column:
		return e.s.Signature(int(v)), nil
	case Or:
		var merged []uint64
		for i, c := range v {
			cs, err := e.sketch(c)
			if err != nil {
				return nil, err
			}
			if i == 0 {
				merged = append([]uint64(nil), cs...)
				continue
			}
			merged = mergeBottomK(merged, cs, e.s.K)
		}
		return merged, nil
	default:
		return nil, fmt.Errorf("boolexpr: expression %T has no sketch", x)
	}
}

// mergeBottomK returns the k smallest distinct values of two sorted
// sketches.
func mergeBottomK(a, b []uint64, k int) []uint64 {
	out := make([]uint64, 0, k)
	ai, bi := 0, 0
	for len(out) < k && (ai < len(a) || bi < len(b)) {
		switch {
		case bi >= len(b) || (ai < len(a) && a[ai] < b[bi]):
			out = append(out, a[ai])
			ai++
		case ai >= len(a) || b[bi] < a[ai]:
			out = append(out, b[bi])
			bi++
		default:
			out = append(out, a[ai])
			ai++
			bi++
		}
	}
	return out
}

// Cardinality estimates the number of rows satisfying the expression.
func (e *Evaluator) Cardinality(x Expr) (float64, error) {
	if err := e.Validate(x); err != nil {
		return 0, err
	}
	return e.cardinality(x)
}

func (e *Evaluator) cardinality(x Expr) (float64, error) {
	switch v := x.(type) {
	case Column:
		return float64(e.s.ColSizes[v]), nil // exact
	case Or:
		sk, err := e.sketch(v)
		if err != nil {
			return 0, err
		}
		return kminhash.EstimateCardinality(sk, e.s.K), nil
	case And:
		// Inclusion-exclusion: |∩ e_i| = Σ_{∅≠S} (-1)^{|S|+1} |∪_{i∈S} e_i|.
		n := len(v)
		total := 0.0
		for mask := 1; mask < 1<<n; mask++ {
			var parts Or
			for i := 0; i < n; i++ {
				if mask&(1<<i) != 0 {
					parts = append(parts, v[i])
				}
			}
			var card float64
			if len(parts) == 1 {
				c, err := e.cardinality(parts[0])
				if err != nil {
					return 0, err
				}
				card = c
			} else {
				sk, err := e.sketch(parts)
				if err != nil {
					return 0, err
				}
				card = kminhash.EstimateCardinality(sk, e.s.K)
			}
			if bits.OnesCount(uint(mask))%2 == 1 {
				total += card
			} else {
				total -= card
			}
		}
		if total < 0 {
			total = 0
		}
		return total, nil
	default:
		return 0, fmt.Errorf("boolexpr: unknown expression type %T", x)
	}
}

// Similarity estimates the Jaccard similarity of two sketchable
// expressions (Columns or Ors): |a∧b| by inclusion-exclusion over
// merged sketches, divided by |a∨b|.
func (e *Evaluator) Similarity(a, b Expr) (float64, error) {
	for _, x := range []Expr{a, b} {
		if err := e.Validate(x); err != nil {
			return 0, err
		}
		if _, isAnd := x.(And); isAnd {
			return 0, fmt.Errorf("boolexpr: similarity of And expressions is not supported")
		}
	}
	ca, err := e.cardinality(a)
	if err != nil {
		return 0, err
	}
	cb, err := e.cardinality(b)
	if err != nil {
		return 0, err
	}
	union, err := e.cardinality(Or{a, b})
	if err != nil {
		return 0, err
	}
	if union <= 0 {
		return 0, nil
	}
	inter := ca + cb - union
	if inter < 0 {
		inter = 0
	}
	s := inter / union
	if s > 1 {
		s = 1
	}
	return s, nil
}

// Confidence estimates conf(a => b) = |a∧b| / |a| for sketchable a, b.
func (e *Evaluator) Confidence(a, b Expr) (float64, error) {
	for _, x := range []Expr{a, b} {
		if err := e.Validate(x); err != nil {
			return 0, err
		}
		if _, isAnd := x.(And); isAnd {
			return 0, fmt.Errorf("boolexpr: confidence over And expressions is not supported")
		}
	}
	ca, err := e.cardinality(a)
	if err != nil {
		return 0, err
	}
	if ca <= 0 {
		return 0, nil
	}
	cb, err := e.cardinality(b)
	if err != nil {
		return 0, err
	}
	union, err := e.cardinality(Or{a, b})
	if err != nil {
		return 0, err
	}
	inter := ca + cb - union
	if inter < 0 {
		inter = 0
	}
	conf := inter / ca
	if conf > 1 {
		conf = 1
	}
	return conf, nil
}
