package boolexpr

import (
	"math"
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/kminhash"
	"assocmine/internal/matrix"
)

// fixture builds a matrix where exact expression cardinalities are easy
// to compute by materialising the column sets.
func fixture(t *testing.T, rows int, seed uint64) (*matrix.Matrix, *Evaluator) {
	t.Helper()
	rng := hashing.NewSplitMix64(seed)
	b := matrix.NewBuilder(rows, 5)
	for r := 0; r < rows; r++ {
		if rng.Float64() < 0.20 {
			b.Set(r, 0)
		}
		if rng.Float64() < 0.15 {
			b.Set(r, 1)
		}
		if rng.Float64() < 0.10 {
			b.Set(r, 2)
		}
		// Column 3 overlaps heavily with 0.
		if rng.Float64() < 0.18 {
			b.Set(r, 0)
			b.Set(r, 3)
		}
		if rng.Float64() < 0.02 {
			b.Set(r, 4)
		}
	}
	m := b.Build()
	s, err := kminhash.Compute(m.Stream(), 256, seed^0xfeed)
	if err != nil {
		t.Fatal(err)
	}
	return m, NewEvaluator(s)
}

// exactCardinality materialises the expression against the matrix.
func exactCardinality(m *matrix.Matrix, x Expr) int {
	return len(materialise(m, x))
}

func materialise(m *matrix.Matrix, x Expr) []int32 {
	switch v := x.(type) {
	case Column:
		return m.Column(int(v))
	case Or:
		out := materialise(m, v[0])
		for _, c := range v[1:] {
			out = matrix.OrColumns(out, materialise(m, c))
		}
		return out
	case And:
		out := materialise(m, v[0])
		for _, c := range v[1:] {
			out = matrix.AndColumns(out, materialise(m, c))
		}
		return out
	}
	return nil
}

func TestValidate(t *testing.T) {
	_, e := fixture(t, 500, 1)
	bad := []Expr{
		nil,
		Column(9),
		Column(-1),
		Or{},
		And{},
		Or{And{Column(0), Column(1)}},      // And under Or
		And{And{Column(0), Column(1)}},     // nested And
		And{Column(0), Or{And{Column(1)}}}, // And under Or under And
		longAnd(MaxAndFanIn + 1),
	}
	for i, x := range bad {
		if err := e.Validate(x); err == nil {
			t.Errorf("bad expression %d accepted: %#v", i, x)
		}
	}
	good := []Expr{
		Column(0),
		Or{Column(0), Column(1)},
		Or{Column(0), Or{Column(1), Column(2)}},
		And{Column(0), Column(1)},
		And{Or{Column(0), Column(1)}, Column(2)},
	}
	for i, x := range good {
		if err := e.Validate(x); err != nil {
			t.Errorf("good expression %d rejected: %v", i, err)
		}
	}
}

func longAnd(n int) And {
	var a And
	for i := 0; i < n; i++ {
		a = append(a, Column(0))
	}
	return a
}

func TestColumnCardinalityExact(t *testing.T) {
	m, e := fixture(t, 2000, 2)
	for c := 0; c < 5; c++ {
		got, err := e.Cardinality(Column(c))
		if err != nil {
			t.Fatal(err)
		}
		if got != float64(m.ColumnSize(c)) {
			t.Errorf("column %d cardinality %v, want %d", c, got, m.ColumnSize(c))
		}
	}
}

func TestOrCardinality(t *testing.T) {
	m, e := fixture(t, 20000, 3)
	exprs := []Expr{
		Or{Column(0), Column(1)},
		Or{Column(0), Column(1), Column(2)},
		Or{Column(0), Or{Column(1), Column(2)}, Column(4)},
	}
	for _, x := range exprs {
		want := float64(exactCardinality(m, x))
		got, err := e.Cardinality(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("expr %#v: cardinality %v, want ~%v", x, got, want)
		}
	}
}

func TestAndCardinality(t *testing.T) {
	m, e := fixture(t, 20000, 4)
	// Columns 0 and 3 overlap heavily: the AND is large enough for the
	// IE estimate to be stable.
	x := And{Column(0), Column(3)}
	want := float64(exactCardinality(m, x))
	got, err := e.Cardinality(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want)/want > 0.25 {
		t.Errorf("AND cardinality %v, want ~%v", got, want)
	}
	// Three-way AND with an OR child.
	x2 := And{Column(0), Or{Column(3), Column(1)}}
	want2 := float64(exactCardinality(m, x2))
	got2, err := e.Cardinality(x2)
	if err != nil {
		t.Fatal(err)
	}
	if want2 > 100 && math.Abs(got2-want2)/want2 > 0.3 {
		t.Errorf("AND-of-OR cardinality %v, want ~%v", got2, want2)
	}
}

func TestSimilarityExpr(t *testing.T) {
	m, e := fixture(t, 20000, 5)
	a := Column(0)
	b := Or{Column(3), Column(1)}
	inter := float64(len(matrix.AndColumns(materialise(m, a), materialise(m, b))))
	union := float64(len(matrix.OrColumns(materialise(m, a), materialise(m, b))))
	want := inter / union
	got, err := e.Similarity(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 0.1 {
		t.Errorf("similarity %v, want ~%v", got, want)
	}
	if _, err := e.Similarity(And{Column(0), Column(1)}, Column(2)); err == nil {
		t.Error("similarity of And accepted")
	}
}

func TestConfidenceExpr(t *testing.T) {
	// The sketch-based confidence inherits the union estimator's
	// relative error scaled by |consequent|/|antecedent|, so average
	// over several sketch seeds.
	var m *matrix.Matrix
	const trials = 12
	var sum, sumOr float64
	for trial := 0; trial < trials; trial++ {
		var e *Evaluator
		m, e = fixture(t, 20000, 600+uint64(trial))
		got, err := e.Confidence(Column(3), Column(0))
		if err != nil {
			t.Fatal(err)
		}
		sum += got
		gotOr, err := e.Confidence(Column(3), Or{Column(0), Column(1)})
		if err != nil {
			t.Fatal(err)
		}
		sumOr += gotOr
	}
	want := m.Confidence(3, 0) // ~1 by construction on every seed
	got := sum / trials
	if math.Abs(got-want) > 0.08 {
		t.Errorf("mean confidence %v, want ~%v", got, want)
	}
	// Disjunctive consequent: conf(c3 => c0 ∨ c1) >= conf(c3 => c0)
	// on average.
	if sumOr/trials < got-0.05 {
		t.Errorf("widening the consequent lowered confidence: %v < %v", sumOr/trials, got)
	}
	// Empty antecedent.
	m2 := matrix.MustNew(4, [][]int32{{}, {0}})
	s2, _ := kminhash.Compute(m2.Stream(), 4, 1)
	e2 := NewEvaluator(s2)
	if c, err := e2.Confidence(Column(0), Column(1)); err != nil || c != 0 {
		t.Errorf("empty antecedent confidence = %v, %v", c, err)
	}
}

// TestQuickRandomOrExpressions: random OR-only expressions must
// estimate cardinality within sketch tolerance of the materialised
// truth.
func TestQuickRandomOrExpressions(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		m, e := fixture(t, 15000, 100+seed)
		rng := hashing.NewSplitMix64(seed * 31)
		// Build a random OR tree over 2-4 columns.
		n := 2 + int(rng.Next()%3)
		var expr Or
		for i := 0; i < n; i++ {
			expr = append(expr, Column(int32(rng.Next()%5)))
		}
		want := float64(exactCardinality(m, expr))
		got, err := e.Cardinality(expr)
		if err != nil {
			t.Fatal(err)
		}
		if want > 200 && math.Abs(got-want)/want > 0.25 {
			t.Errorf("seed %d expr %#v: cardinality %v, want ~%v", seed, expr, got, want)
		}
	}
}

func TestMergeBottomK(t *testing.T) {
	a := []uint64{1, 4, 9}
	b := []uint64{2, 4, 8, 10}
	got := mergeBottomK(a, b, 4)
	want := []uint64{1, 2, 4, 8}
	if len(got) != len(want) {
		t.Fatalf("merge = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge = %v, want %v", got, want)
		}
	}
}
