// Package bps implements biased pair sampling (BPS), the fifth
// candidate-generation scheme of this repository, after Campagna &
// Pagh, "Finding Associations and Computing Similarity via Biased Pair
// Sampling". Unlike the four signature schemes (MH, K-MH, M-LSH,
// H-LSH) it builds no signature matrix at all: candidates are drawn
// directly from the rows. Phase 1 is one pass counting column supports
// s_i; phase 2 scans the rows again and, for every pair of columns
// co-occurring in a row, accepts the draw with probability
//
//	p_ij = min(1, Δ/(s_i·s_j)),  Δ = λ·(1+s*)·S_max/(2·s*),
//
// where s* is the similarity threshold, S_max = max_i s_i, and λ (the
// sample budget, Options.Budget) calibrates the scale: a pair whose
// similarity is exactly s* co-occurs in c* = s*·(s_i+s_j)/(1+s*) rows,
// so its expected accepted count is p_ij·c* = λ·S_max·(1/s_i+1/s_j)/2
// ≥ λ. Low-support (interesting) pairs get p_ij = 1 — exact
// co-occurrence counting, hence no false negatives — while high-support
// pairs are subsampled at a rate inversely proportional to s_i·s_j,
// the same support-free bias the Cohen et al. schemes realise through
// hashing. A sampled pair becomes a candidate when its accepted count
// reaches (1-δ)·p_ij·c*, mirroring the (1-δ)·s* candidate filter of
// the counting schemes; growing λ concentrates the counts around their
// means, so the false-positive rate of the filter shrinks as the budget
// grows. The exact verification pass then prunes the survivors as for
// every other scheme.
//
// Determinism (the seed-splitting argument). The accept decision for a
// draw is a pure hash of (seed, row, i, j) — no stateful RNG stream:
// the seed is split once per row (one Mix64 of seed and row id) and
// once more per pair (a second Mix64 folding in the canonical pair
// key), yielding an independent uniform in [0,1) that any worker
// computes identically. The set of accepted draws is therefore
// independent of row delivery order, shard boundaries, and worker
// count, and the per-pair counts merge across workers by plain
// addition — serial, parallel, streamed and spilled runs are
// bit-identical by construction.
package bps

import (
	"fmt"
	"math"
	"sort"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
	"assocmine/internal/pairs"
)

// Options configures a sampling pass.
type Options struct {
	// Threshold is s*, the similarity cutoff, in (0,1].
	Threshold float64
	// Delta loosens the candidate filter exactly as for the counting
	// schemes: a sampled pair becomes a candidate when its accepted
	// count reaches (1-Delta) times the expected accepted count of a
	// pair at Threshold. In [0,1).
	Delta float64
	// Budget is λ, the expected number of accepted draws for a pair
	// exactly at Threshold. Larger budgets raise recall and sharpen the
	// candidate filter (fewer false positives) at proportionally more
	// accepted samples. Must be >= 1.
	Budget int
	// Seed drives the per-(row,pair) accept hashes.
	Seed uint64
	// Workers parallelises the sampling scan across goroutines fed by
	// one DistributeShards pass (<= 1 means serial). Output is
	// bit-identical at every worker count.
	Workers int
}

// Stats reports the work a sampling pass performed.
type Stats struct {
	// Inspected counts the in-row pair draws examined: Σ b·(b-1)/2
	// over basket sizes b — the scheme's candidate-phase work measure.
	Inspected int64
	// Accepts counts the draws the biased acceptance test kept, and
	// Dups the accepted draws for pairs that had already been sampled
	// (Accepts minus distinct sampled pairs).
	Accepts int64
	Dups    int64
	// Shards counts the bounded row blocks dealt to parallel samplers
	// (0 for a serial scan).
	Shards int64
}

// Supports performs one sequential pass over src and returns the
// support (number of rows set) of every column. Rows referencing
// columns outside [0, NumCols) are rejected with an error naming the
// row and column.
func Supports(src matrix.RowSource) ([]int64, error) {
	sup := make([]int64, src.NumCols())
	err := src.Scan(func(row int, cols []int32) error {
		for _, c := range cols {
			if c < 0 || int(c) >= len(sup) {
				return fmt.Errorf("bps: row %d references column %d outside [0,%d)", row, c, len(sup))
			}
			sup[c]++
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sup, nil
}

// SupportsFromLister reads the supports off a column-major in-memory
// source without a row scan (the I/O-equivalent of one pass).
func SupportsFromLister(ls matrix.ColumnLister) []int64 {
	sup := make([]int64, ls.NumCols())
	for c := range sup {
		sup[c] = int64(len(ls.ColumnRows(c)))
	}
	return sup
}

// sampler accumulates one scan partition's accepted draws. The accept
// decision is a pure function of (seed, row, pair), so any partition of
// the rows across samplers yields the same merged counts.
type sampler struct {
	sup       []int64
	pScale    float64
	seedMix   uint64
	counts    map[uint64]int64
	inspected int64
	err       error
}

func newSampler(sup []int64, pScale float64, seedMix uint64) *sampler {
	return &sampler{sup: sup, pScale: pScale, seedMix: seedMix, counts: make(map[uint64]int64)}
}

// row folds one row's pair draws into the sampler.
func (s *sampler) row(row int, cols []int32) error {
	for _, c := range cols {
		if c < 0 || int(c) >= len(s.sup) {
			return fmt.Errorf("bps: row %d references column %d outside [0,%d)", row, c, len(s.sup))
		}
	}
	rowH := hashing.Mix64(s.seedMix ^ (uint64(row)+1)*0x9e3779b97f4a7c15)
	for a := 0; a+1 < len(cols); a++ {
		i := cols[a]
		si := float64(s.sup[i])
		for b := a + 1; b < len(cols); b++ {
			j := cols[b]
			if i == j {
				// Hostile encodings may repeat a column within a row;
				// self-pairs are never candidates.
				continue
			}
			lo, hi := i, j
			if lo > hi {
				lo, hi = hi, lo
			}
			s.inspected++
			key := uint64(uint32(lo))<<32 | uint64(uint32(hi))
			// p < 1 is the subsampled regime; the comparison is written
			// so that an inconsistent supports slice (zero support for
			// an observed column, possible only under hostile inputs)
			// yields p = Inf or NaN and falls through to a plain count.
			if p := s.pScale / (si * float64(s.sup[j])); p < 1 {
				u := float64(hashing.Mix64(rowH^key)>>11) / (1 << 53)
				if u >= p {
					continue
				}
			}
			s.counts[key]++
		}
	}
	return nil
}

// Sample performs one sequential pass over src, drawing biased pair
// samples from every row, and returns the candidate pairs whose
// accepted counts pass the (1-Delta) filter, sorted by (I, J) with
// Estimate set to the unbiased similarity estimate ĉ/(s_i+s_j-ĉ),
// ĉ = min(count/p_ij, min(s_i, s_j)). sup must be the supports of the
// same data (see Supports); rows referencing columns outside sup are
// rejected with an error.
func Sample(src matrix.RowSource, sup []int64, opt Options) ([]pairs.Scored, Stats, error) {
	var st Stats
	if err := validateOptions(opt); err != nil {
		return nil, st, err
	}
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	pScale, seedMix := sampleParams(sup, opt)

	var counts map[uint64]int64
	if workers <= 1 {
		s := newSampler(sup, pScale, seedMix)
		if err := src.Scan(s.row); err != nil {
			return nil, st, err
		}
		counts = s.counts
		st.Inspected = s.inspected
	} else {
		// One sequential pass dealt round-robin to private samplers;
		// counts merge by addition because accept decisions are
		// per-(row,pair) hashes, independent of the partition.
		samplers := make([]*sampler, workers)
		consumers := make([]func(<-chan *matrix.Shard), workers)
		for w := range samplers {
			s := newSampler(sup, pScale, seedMix)
			samplers[w] = s
			consumers[w] = func(ch <-chan *matrix.Shard) {
				for sh := range ch {
					if s.err != nil {
						continue // keep draining so the dealer never blocks
					}
					for i := 0; i < sh.Len(); i++ {
						row, cols := sh.Row(i)
						if err := s.row(int(row), cols); err != nil {
							s.err = err
							break
						}
					}
				}
			}
		}
		shards, err := matrix.DistributeShards(src, 0, 0, consumers)
		st.Shards = shards
		if err != nil {
			return nil, st, err
		}
		for _, s := range samplers {
			if s.err != nil {
				return nil, st, s.err
			}
		}
		counts = samplers[0].counts
		st.Inspected = samplers[0].inspected
		for _, s := range samplers[1:] {
			st.Inspected += s.inspected
			for k, v := range s.counts {
				counts[k] += v
			}
		}
	}
	for _, n := range counts {
		st.Accepts += n
	}
	st.Dups = st.Accepts - int64(len(counts))
	return finalize(counts, sup, opt, pScale), st, nil
}

// validateOptions rejects out-of-range sampling parameters; shared by
// Sample and the split SampleCounts/FinalizeCounts entry points.
func validateOptions(opt Options) error {
	if opt.Threshold <= 0 || opt.Threshold > 1 {
		return fmt.Errorf("bps: Threshold must be in (0,1], got %v", opt.Threshold)
	}
	if opt.Delta < 0 || opt.Delta >= 1 {
		return fmt.Errorf("bps: Delta must be in [0,1), got %v", opt.Delta)
	}
	if opt.Budget < 1 {
		return fmt.Errorf("bps: Budget must be >= 1, got %d", opt.Budget)
	}
	return nil
}

// sampleParams derives the acceptance scale Δ = λ·(1+s*)·S_max/(2·s*)
// and the split seed from the GLOBAL supports — every scan partition
// must use the same pair, or accept decisions diverge.
func sampleParams(sup []int64, opt Options) (pScale float64, seedMix uint64) {
	var smax int64
	for _, s := range sup {
		if s > smax {
			smax = s
		}
	}
	pScale = float64(opt.Budget) * (1 + opt.Threshold) * float64(smax) / (2 * opt.Threshold)
	seedMix = hashing.Mix64(opt.Seed ^ 0xb5ad4eceda1ce2a9)
	return pScale, seedMix
}

// finalize applies the (1-Delta) count filter and the unbiased
// similarity estimate to the merged counts, returning candidates
// sorted by (I, J) — the exact tail of Sample.
func finalize(counts map[uint64]int64, sup []int64, opt Options, pScale float64) []pairs.Scored {
	out := make([]pairs.Scored, 0, len(counts))
	for key, n := range counts {
		i := int32(key >> 32)
		j := int32(key)
		si, sj := float64(sup[i]), float64(sup[j])
		p := pScale / (si * sj)
		if !(p < 1) {
			p = 1 // also maps the hostile-input Inf/NaN case to exact counting
		}
		cThresh := opt.Threshold * (si + sj) / (1 + opt.Threshold)
		if float64(n) < (1-opt.Delta)*p*cThresh {
			continue
		}
		est := float64(n) / p
		if m := math.Min(si, sj); est > m {
			est = m
		}
		sim := 0.0
		if denom := si + sj - est; denom > 0 {
			sim = est / denom
		}
		if sim > 1 {
			sim = 1
		}
		if !(sim >= 0) {
			sim = 0
		}
		out = append(out, pairs.Scored{Pair: pairs.Pair{I: i, J: j}, Estimate: sim})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].I != out[b].I {
			return out[a].I < out[b].I
		}
		return out[a].J < out[b].J
	})
	return out
}

// SampleCounts runs the sampling scan serially over src — typically a
// row-range view of the full dataset — and returns the raw per-pair
// accepted counts (keyed uint32(i)<<32|uint32(j), i < j) plus the
// inspected-draw count. sup must be the supports of the FULL dataset:
// the acceptance scale depends on the global S_max and per-column
// supports, so a partial supports slice would change accept decisions.
// Accept decisions are pure (seed, row, pair) hashes, so counts from
// any row partition merged with MergeCounts equal a full-scan's counts
// exactly — the identity the scale-out executor's workers rely on.
func SampleCounts(src matrix.RowSource, sup []int64, opt Options) (map[uint64]int64, int64, error) {
	if err := validateOptions(opt); err != nil {
		return nil, 0, err
	}
	pScale, seedMix := sampleParams(sup, opt)
	s := newSampler(sup, pScale, seedMix)
	if err := src.Scan(s.row); err != nil {
		return nil, 0, err
	}
	return s.counts, s.inspected, nil
}

// MergeCounts folds src into dst by addition, the exact merge for
// counts produced over disjoint row ranges.
func MergeCounts(dst, src map[uint64]int64) {
	for k, v := range src {
		dst[k] += v
	}
}

// FinalizeCounts applies Sample's candidate filter and estimator to
// merged counts, returning candidates sorted by (I, J) and the
// Accepts/Dups statistics (Inspected is not derivable from counts; the
// caller sums it across partitions). Equals the tail of Sample when
// counts are the merge of a full row partition.
func FinalizeCounts(counts map[uint64]int64, sup []int64, opt Options) ([]pairs.Scored, Stats, error) {
	var st Stats
	if err := validateOptions(opt); err != nil {
		return nil, st, err
	}
	pScale, _ := sampleParams(sup, opt)
	for _, n := range counts {
		st.Accepts += n
	}
	st.Dups = st.Accepts - int64(len(counts))
	return finalize(counts, sup, opt, pScale), st, nil
}
