package bps

import (
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
	"assocmine/internal/pairs"
	"assocmine/internal/testutil"
)

func randomMatrix(rng *hashing.SplitMix64, rows, cols int, density float64) *matrix.Matrix {
	b := matrix.NewBuilder(rows, cols)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			if rng.Float64() < density {
				b.Set(r, c)
			}
		}
	}
	return b.Build()
}

func mustSupports(t *testing.T, src matrix.RowSource) []int64 {
	t.Helper()
	sup, err := Supports(src)
	if err != nil {
		t.Fatal(err)
	}
	return sup
}

func TestSupports(t *testing.T) {
	m := matrix.MustNew(4, [][]int32{{0, 1, 2}, {1}, {}, {0, 3}})
	sup := mustSupports(t, m.Stream())
	want := []int64{3, 1, 0, 2}
	for c, s := range sup {
		if s != want[c] {
			t.Errorf("sup[%d] = %d, want %d", c, s, want[c])
		}
	}
	if ls := SupportsFromLister(m.Stream().(matrix.ColumnLister)); len(ls) != len(sup) {
		t.Fatalf("lister supports length %d != %d", len(ls), len(sup))
	} else {
		for c := range ls {
			if ls[c] != sup[c] {
				t.Errorf("lister sup[%d] = %d, scan says %d", c, ls[c], sup[c])
			}
		}
	}
}

type badRowSource struct {
	rows, cols int
	data       [][]int32
}

func (s *badRowSource) NumRows() int { return s.rows }
func (s *badRowSource) NumCols() int { return s.cols }
func (s *badRowSource) Scan(fn func(int, []int32) error) error {
	for r, cs := range s.data {
		if err := fn(r, cs); err != nil {
			return err
		}
	}
	return nil
}

func TestSupportsRejectsOutOfRange(t *testing.T) {
	src := &badRowSource{rows: 2, cols: 3, data: [][]int32{{0, 1}, {2, 7}}}
	if _, err := Supports(src); err == nil {
		t.Error("out-of-range column accepted")
	}
	src = &badRowSource{rows: 1, cols: 3, data: [][]int32{{-1}}}
	if _, err := Supports(src); err == nil {
		t.Error("negative column accepted")
	}
}

func TestSampleValidation(t *testing.T) {
	m := matrix.MustNew(2, [][]int32{{0}, {1}})
	sup := mustSupports(t, m.Stream())
	bad := []Options{
		{Threshold: 0, Budget: 8},
		{Threshold: 1.5, Budget: 8},
		{Threshold: 0.5, Delta: 1, Budget: 8},
		{Threshold: 0.5, Delta: -0.1, Budget: 8},
		{Threshold: 0.5, Budget: 0},
	}
	for _, opt := range bad {
		if _, _, err := Sample(m.Stream(), sup, opt); err == nil {
			t.Errorf("bad options accepted: %+v", opt)
		}
	}
}

func TestSampleRejectsOutOfRange(t *testing.T) {
	src := &badRowSource{rows: 2, cols: 3, data: [][]int32{{0, 1}, {1, 9}}}
	sup := []int64{1, 2, 0}
	for _, workers := range []int{1, 4} {
		_, _, err := Sample(src, sup, Options{Threshold: 0.5, Budget: 8, Workers: workers})
		if err == nil {
			t.Errorf("workers=%d: out-of-range column accepted", workers)
		}
	}
	testutil.CheckGoroutines(t)
}

// TestSampleInvariants: on random matrices at several densities and
// budgets, the sampler maintains its structural invariants — canonical
// pairs only (no self-pairs, I < J, columns in range), exact dedup
// (each pair appears once), accepted counts bounded by inspected draws,
// Inspected exactly Σ b(b-1)/2, and every candidate's estimate in
// [0, 1].
func TestSampleInvariants(t *testing.T) {
	rng := hashing.NewSplitMix64(42)
	for _, density := range []float64{0.01, 0.05, 0.15} {
		for _, budget := range []int{1, 8, 64} {
			m := randomMatrix(rng, 400, 40, density)
			src := m.Stream()
			sup := mustSupports(t, src)
			cand, st, err := Sample(src, sup, Options{Threshold: 0.4, Delta: 0.2, Budget: budget, Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			var wantInspected int64
			if err := src.Scan(func(row int, cols []int32) error {
				b := int64(len(cols))
				wantInspected += b * (b - 1) / 2
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if st.Inspected != wantInspected {
				t.Errorf("d=%v λ=%d: Inspected %d, want Σb(b-1)/2 = %d", density, budget, st.Inspected, wantInspected)
			}
			if st.Accepts > st.Inspected {
				t.Errorf("d=%v λ=%d: Accepts %d > Inspected %d", density, budget, st.Accepts, st.Inspected)
			}
			if st.Dups < 0 || st.Dups > st.Accepts {
				t.Errorf("d=%v λ=%d: Dups %d outside [0, Accepts=%d]", density, budget, st.Dups, st.Accepts)
			}
			if int64(len(cand)) > st.Accepts-st.Dups {
				t.Errorf("d=%v λ=%d: %d candidates but only %d distinct sampled pairs", density, budget, len(cand), st.Accepts-st.Dups)
			}
			seen := make(map[pairs.Pair]bool, len(cand))
			for k, p := range cand {
				if p.I >= p.J {
					t.Fatalf("d=%v λ=%d: non-canonical pair (%d,%d)", density, budget, p.I, p.J)
				}
				if p.I < 0 || int(p.J) >= src.NumCols() {
					t.Fatalf("d=%v λ=%d: pair (%d,%d) outside [0,%d)", density, budget, p.I, p.J, src.NumCols())
				}
				if seen[p.Pair] {
					t.Fatalf("d=%v λ=%d: duplicate candidate (%d,%d)", density, budget, p.I, p.J)
				}
				seen[p.Pair] = true
				if p.Estimate < 0 || p.Estimate > 1 {
					t.Errorf("d=%v λ=%d: estimate %v outside [0,1]", density, budget, p.Estimate)
				}
				if k > 0 && (cand[k-1].I > p.I || (cand[k-1].I == p.I && cand[k-1].J >= p.J)) {
					t.Fatalf("d=%v λ=%d: output not sorted by (I,J) at %d", density, budget, k)
				}
			}
		}
	}
}

// TestSampleSerialParallelIdentical: the accept decision is a pure
// per-(row,pair) hash, so any worker count yields bit-identical
// candidates and identical sampling totals (Shards excepted — serial
// runs never shard).
func TestSampleSerialParallelIdentical(t *testing.T) {
	rng := hashing.NewSplitMix64(7)
	m := randomMatrix(rng, 600, 50, 0.08)
	src := m.Stream()
	sup := mustSupports(t, src)
	opt := Options{Threshold: 0.4, Delta: 0.2, Budget: 16, Seed: 3}
	serial, sst, err := Sample(src, sup, opt)
	if err != nil {
		t.Fatal(err)
	}
	if sst.Shards != 0 {
		t.Errorf("serial run reports %d shards", sst.Shards)
	}
	for _, workers := range []int{2, 3, 4, 8} {
		opt.Workers = workers
		par, pst, err := Sample(src, sup, opt)
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(serial) {
			t.Fatalf("workers=%d: %d candidates, serial has %d", workers, len(par), len(serial))
		}
		for i := range par {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: candidate %d = %+v, serial %+v", workers, i, par[i], serial[i])
			}
		}
		if pst.Inspected != sst.Inspected || pst.Accepts != sst.Accepts || pst.Dups != sst.Dups {
			t.Errorf("workers=%d: stats %+v, serial %+v", workers, pst, sst)
		}
		if pst.Shards <= 0 {
			t.Errorf("workers=%d: no shards reported", workers)
		}
	}
	testutil.CheckGoroutines(t)
}

// TestSampleSparseIsExact: when every support product stays below the
// acceptance scale Δ, every draw is accepted (p = 1) and the sampled
// counts are exact co-occurrence counts — the no-false-negative regime
// for low-support (interesting) pairs.
func TestSampleSparseIsExact(t *testing.T) {
	rng := hashing.NewSplitMix64(11)
	m := randomMatrix(rng, 300, 30, 0.02)
	src := m.Stream()
	sup := mustSupports(t, src)
	cand, st, err := Sample(src, sup, Options{Threshold: 0.5, Delta: 0.99, Budget: 64, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var smax int64
	for _, s := range sup {
		if s > smax {
			smax = s
		}
	}
	scale := 64 * 1.5 * float64(smax) / (2 * 0.5)
	for _, p := range cand {
		if prod := float64(sup[p.I]) * float64(sup[p.J]); prod >= scale {
			t.Skipf("support product %v reaches scale %v; matrix too dense for the exact regime", prod, scale)
		}
	}
	if st.Accepts != st.Inspected {
		t.Errorf("sparse regime dropped draws: accepts %d != inspected %d", st.Accepts, st.Inspected)
	}
	// Exact counts mean the estimate equals the true similarity for
	// every candidate.
	for _, p := range cand {
		a, b := m.Column(int(p.I)), m.Column(int(p.J))
		inter := intersectCount(a, b)
		want := float64(inter) / float64(len(a)+len(b)-inter)
		if diff := p.Estimate - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("pair (%d,%d): estimate %v, exact %v", p.I, p.J, p.Estimate, want)
		}
	}
}

func intersectCount(a, b []int32) int {
	i, j, n := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// TestSampleSeedSensitivity: different seeds draw different sample sets
// in the subsampled regime (a sanity check that the hash actually
// depends on the seed), while the same seed reproduces itself exactly.
func TestSampleSeedSensitivity(t *testing.T) {
	rng := hashing.NewSplitMix64(5)
	m := randomMatrix(rng, 800, 30, 0.3) // dense: supports high, p < 1
	src := m.Stream()
	sup := mustSupports(t, src)
	opt := Options{Threshold: 0.3, Delta: 0.2, Budget: 2, Seed: 1}
	a1, st1, err := Sample(src, sup, opt)
	if err != nil {
		t.Fatal(err)
	}
	a2, st2, err := Sample(src, sup, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(a1) != len(a2) || st1 != st2 {
		t.Fatalf("same seed disagrees: %d/%+v vs %d/%+v", len(a1), st1, len(a2), st2)
	}
	if st1.Accepts == st1.Inspected {
		t.Fatal("matrix not dense enough to exercise the subsampled regime")
	}
	opt.Seed = 2
	_, st3, err := Sample(src, sup, opt)
	if err != nil {
		t.Fatal(err)
	}
	if st3.Accepts == st1.Accepts && st3.Dups == st1.Dups {
		t.Error("different seeds produced identical sampling totals; hash ignores the seed?")
	}
}

// TestSampleEmpty: degenerate shapes — no rows, no columns, empty rows
// — sample nothing and error nowhere.
func TestSampleEmpty(t *testing.T) {
	for _, m := range []*matrix.Matrix{
		matrix.MustNew(0, nil),
		matrix.MustNew(5, [][]int32{}),
		matrix.MustNew(3, [][]int32{{}, {}}),
	} {
		src := m.Stream()
		sup := mustSupports(t, src)
		cand, st, err := Sample(src, sup, Options{Threshold: 0.5, Budget: 8})
		if err != nil {
			t.Fatal(err)
		}
		if len(cand) != 0 || st.Inspected != 0 || st.Accepts != 0 {
			t.Errorf("empty matrix produced cand=%v st=%+v", cand, st)
		}
	}
}
