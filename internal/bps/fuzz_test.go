package bps

import (
	"encoding/binary"
	"testing"

	"assocmine/internal/matrix"
)

// fuzzSource decodes arbitrary bytes into a row stream with NO
// validation: rows may repeat columns, list them out of order, or point
// outside [0, NumCols) — the hostile encodings a corrupt or adversarial
// file source could deliver past its own checks. The sampler must
// either reject the stream with an error or uphold every output
// invariant; it must never panic.
type fuzzSource struct {
	numCols int
	rows    [][]int32
}

func decodeFuzzSource(data []byte) *fuzzSource {
	if len(data) < 1 {
		return &fuzzSource{}
	}
	s := &fuzzSource{numCols: int(data[0]%32) + 1}
	data = data[1:]
	var row []int32
	for len(data) >= 2 {
		v := int32(int16(binary.LittleEndian.Uint16(data)))
		data = data[2:]
		if v == -32768 { // row separator sentinel
			s.rows = append(s.rows, row)
			row = nil
			continue
		}
		if len(row) < 64 { // bound Σb² so the fuzzer stays fast
			row = append(row, v)
		}
	}
	s.rows = append(s.rows, row)
	return s
}

func (s *fuzzSource) NumRows() int { return len(s.rows) }
func (s *fuzzSource) NumCols() int { return s.numCols }
func (s *fuzzSource) Scan(fn func(int, []int32) error) error {
	for r, cols := range s.rows {
		if err := fn(r, cols); err != nil {
			return err
		}
	}
	return nil
}

// FuzzBPSSampler drives Supports and Sample over hostile row encodings:
// whatever the bytes decode to, the sampler either errors cleanly or
// produces canonical deduplicated in-range candidates with consistent
// stats, bit-identical between serial and parallel runs.
func FuzzBPSSampler(f *testing.F) {
	f.Add([]byte{}, uint64(1), uint8(8))
	f.Add([]byte{3, 0, 0, 1, 0, 2, 0, 0, 128, 1, 0, 2, 0}, uint64(7), uint8(4))
	f.Add([]byte{5, 255, 255, 9, 9, 0, 128, 1, 0, 1, 0, 1, 0}, uint64(3), uint8(1))
	f.Add([]byte{1, 200, 0, 0, 128}, uint64(0), uint8(16))
	f.Fuzz(func(t *testing.T, data []byte, seed uint64, budget uint8) {
		src := decodeFuzzSource(data)
		opt := Options{
			Threshold: 0.4,
			Delta:     0.2,
			Budget:    int(budget%64) + 1,
			Seed:      seed,
		}
		sup, serr := Supports(src)
		if serr != nil {
			// The stream is malformed; Sample must agree (using a
			// zeroed supports slice so indexing alone cannot save it).
			if _, _, err := Sample(src, make([]int64, src.NumCols()), opt); err == nil {
				t.Fatal("Supports rejected the stream but Sample accepted it")
			}
			return
		}
		cand, st, err := Sample(src, sup, opt)
		if err != nil {
			t.Fatalf("Supports accepted the stream but Sample rejected it: %v", err)
		}
		if st.Accepts > st.Inspected || st.Dups < 0 || st.Dups > st.Accepts {
			t.Fatalf("inconsistent stats %+v", st)
		}
		if int64(len(cand)) > st.Accepts-st.Dups {
			t.Fatalf("%d candidates exceed %d distinct sampled pairs", len(cand), st.Accepts-st.Dups)
		}
		for k, p := range cand {
			if p.I >= p.J || p.I < 0 || int(p.J) >= src.NumCols() {
				t.Fatalf("invalid pair (%d,%d) for %d columns", p.I, p.J, src.NumCols())
			}
			if k > 0 && (cand[k-1].I > p.I || (cand[k-1].I == p.I && cand[k-1].J >= p.J)) {
				t.Fatalf("output unsorted or duplicated at %d", k)
			}
			if p.Estimate < 0 || p.Estimate > 1 {
				t.Fatalf("estimate %v outside [0,1]", p.Estimate)
			}
		}
		opt.Workers = 4
		pcand, pst, err := Sample(src, sup, opt)
		if err != nil {
			t.Fatalf("parallel run rejected what serial accepted: %v", err)
		}
		if len(pcand) != len(cand) || pst.Inspected != st.Inspected || pst.Accepts != st.Accepts || pst.Dups != st.Dups {
			t.Fatalf("parallel run diverged: %d/%+v vs %d/%+v", len(pcand), pst, len(cand), st)
		}
		for i := range pcand {
			if pcand[i] != cand[i] {
				t.Fatalf("parallel candidate %d = %+v, serial %+v", i, pcand[i], cand[i])
			}
		}
	})
}

var _ matrix.RowSource = (*fuzzSource)(nil)
