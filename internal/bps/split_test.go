package bps

import (
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

// TestSampleCountsPartitionMatchesSample proves the scale-out identity:
// SampleCounts over disjoint row ranges, merged with MergeCounts and
// finished with FinalizeCounts, equals one serial Sample bit for bit —
// candidates, estimates, and the Accepts/Dups statistics.
func TestSampleCountsPartitionMatchesSample(t *testing.T) {
	rng := hashing.NewSplitMix64(77)
	b := matrix.NewBuilder(240, 40)
	for r := 0; r < 240; r++ {
		for c := 0; c < 40; c++ {
			if rng.Float64() < 0.12 {
				b.Set(r, c)
			}
		}
	}
	src := b.Build().Stream()
	sup, err := Supports(src)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{Threshold: 0.3, Delta: 0.2, Budget: 4, Seed: 5}
	want, wantSt, err := Sample(src, sup, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture produced no candidates")
	}
	for _, cuts := range [][]int{{0, 240}, {0, 120, 240}, {0, 1, 17, 100, 239, 240}} {
		merged := make(map[uint64]int64)
		var inspected int64
		for i := 0; i+1 < len(cuts); i++ {
			part := &matrix.RangeSource{Src: src, From: cuts[i], To: cuts[i+1]}
			counts, insp, err := SampleCounts(part, sup, opt)
			if err != nil {
				t.Fatal(err)
			}
			inspected += insp
			MergeCounts(merged, counts)
		}
		got, gotSt, err := FinalizeCounts(merged, sup, opt)
		if err != nil {
			t.Fatal(err)
		}
		if inspected != wantSt.Inspected {
			t.Errorf("partition %v: inspected %d, want %d", cuts, inspected, wantSt.Inspected)
		}
		if gotSt.Accepts != wantSt.Accepts || gotSt.Dups != wantSt.Dups {
			t.Errorf("partition %v: accepts/dups %d/%d, want %d/%d",
				cuts, gotSt.Accepts, gotSt.Dups, wantSt.Accepts, wantSt.Dups)
		}
		if len(got) != len(want) {
			t.Fatalf("partition %v: %d candidates, want %d", cuts, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("partition %v: candidate %d = %+v, want %+v", cuts, i, got[i], want[i])
			}
		}
	}
}

// TestSampleCountsValidation covers the shared option checks on the
// split entry points.
func TestSampleCountsValidation(t *testing.T) {
	src := &matrix.SliceSource{Cols: 4, Rows: [][]int32{{0, 1}}}
	sup := []int64{1, 1, 0, 0}
	if _, _, err := SampleCounts(src, sup, Options{Threshold: 0, Budget: 1}); err == nil {
		t.Error("threshold 0 accepted")
	}
	if _, _, err := FinalizeCounts(nil, sup, Options{Threshold: 0.5, Budget: 0}); err == nil {
		t.Error("budget 0 accepted")
	}
}
