package candidate

import (
	"fmt"
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/kminhash"
	"assocmine/internal/minhash"
)

func BenchmarkRowSortMH(b *testing.B) {
	rng := hashing.NewSplitMix64(1)
	m, _ := plantedMatrix(rng, 2000, 400)
	sig, err := minhash.Compute(m.Stream(), 50, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RowSortMH(sig, 0.4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRowSortMHParallel(b *testing.B) {
	rng := hashing.NewSplitMix64(1)
	m, _ := plantedMatrix(rng, 2000, 400)
	sig, err := minhash.Compute(m.Stream(), 50, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := RowSortMHParallel(sig, 0.4, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkHashCountKMHParallel(b *testing.B) {
	rng := hashing.NewSplitMix64(1)
	m, _ := plantedMatrix(rng, 2000, 400)
	sk, err := kminhash.Compute(m.Stream(), 50, 7)
	if err != nil {
		b.Fatal(err)
	}
	opt := KMHOptions{BiasedCutoff: 0.2, UnbiasedCutoff: 0.4}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := HashCountKMHParallel(sk, opt, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkHashCountMH(b *testing.B) {
	rng := hashing.NewSplitMix64(1)
	m, _ := plantedMatrix(rng, 2000, 400)
	sig, err := minhash.Compute(m.Stream(), 50, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := HashCountMH(sig, 0.4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHashCountKMH(b *testing.B) {
	rng := hashing.NewSplitMix64(1)
	m, _ := plantedMatrix(rng, 2000, 400)
	sk, err := kminhash.Compute(m.Stream(), 50, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := HashCountKMH(sk, KMHOptions{BiasedCutoff: 0.2, UnbiasedCutoff: 0.4}); err != nil {
			b.Fatal(err)
		}
	}
}
