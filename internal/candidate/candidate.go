// Package candidate implements the second phase of the paper's
// three-phase template: generating candidate column pairs from
// in-memory signatures. It provides the two Section 3.1 algorithms —
// Row-Sorting and Hash-Count — for MH signatures, the Hash-Count
// variant for K-MH bottom-k sketches with the biased-then-unbiased
// estimator cascade of Section 3.2, and a brute-force generator used as
// a correctness oracle and ablation baseline.
//
// Both algorithms avoid the O(m²) cost of examining every pair: work is
// proportional to the number of signature agreements, which is
// O(k·S̄·m²) where S̄ is the (typically tiny) average pairwise
// similarity. Both also use the paper's counter-reuse trick: one O(m)
// counter array shared across columns, resetting only entries that were
// actually touched.
package candidate

import (
	"context"
	"fmt"
	"sort"

	"assocmine/internal/kminhash"
	"assocmine/internal/minhash"
	"assocmine/internal/obs"
	"assocmine/internal/pairs"
)

// Stats reports the work a generation algorithm performed; the counter
// increment count is the quantity the paper's running-time analysis
// bounds.
type Stats struct {
	Increments int64 // counter increments (the O(k·S̄·m²) term)
	Candidates int   // pairs emitted
}

// RowSortMH generates candidates from MH signatures by the Row-Sorting
// algorithm: each signature row is sorted by value, grouping equal
// min-hash values into runs; a pair is a candidate when it shares a run
// in at least ceil(cutoff*k) rows. cutoff is the required agreement
// fraction, typically (1-δ)s*.
func RowSortMH(sig *minhash.Signatures, cutoff float64) ([]pairs.Scored, Stats, error) {
	return rowSortMH(context.Background(), sig, cutoff, nil)
}

// rowSortMH is RowSortMH with an optional progress hook and
// cancellation: tick receives (columns processed, total columns) every
// colChunk columns, and ctx is checked at the same granularity — a
// cancelled context aborts the scan with ctx.Err(). The hook does not
// change the output.
func rowSortMH(ctx context.Context, sig *minhash.Signatures, cutoff float64, tick obs.Tick) ([]pairs.Scored, Stats, error) {
	if cutoff <= 0 || cutoff > 1 {
		return nil, Stats{}, fmt.Errorf("candidate: cutoff must be in (0,1], got %v", cutoff)
	}
	k, m := sig.K, sig.M
	minAgree := ceilFrac(cutoff, k)

	// Per signature row: columns sorted by min-hash value, each
	// column's position in that order, and the [lo,hi) run bounds of
	// each position.
	sorted := make([][]int32, k)
	pos := make([][]int32, k)
	runLo := make([][]int32, k)
	runHi := make([][]int32, k)
	for l := 0; l < k; l++ {
		sorted[l], pos[l], runLo[l], runHi[l] = sortRow(sig, l)
	}

	var st Stats
	counts := make([]int32, m)
	touched := make([]int32, 0, 256)
	var out []pairs.Scored
	for i := 0; i < m; i++ {
		for l := 0; l < k; l++ {
			p := pos[l][i]
			if sig.Vals[l*m+i] == minhash.Empty {
				continue // runs of the empty sentinel are not matches
			}
			for q := runLo[l][p]; q < runHi[l][p]; q++ {
				j := sorted[l][q]
				if int(j) == i {
					continue
				}
				if counts[j] == 0 {
					touched = append(touched, j)
				}
				counts[j]++
				st.Increments++
			}
		}
		for _, j := range touched {
			if int(counts[j]) >= minAgree && int(j) > i {
				out = append(out, pairs.Scored{
					Pair:     pairs.Make(int32(i), j),
					Estimate: float64(counts[j]) / float64(k),
				})
			}
			counts[j] = 0
		}
		touched = touched[:0]
		if (i+1)%colChunk == 0 {
			if err := ctx.Err(); err != nil {
				return nil, Stats{}, err
			}
			if tick != nil {
				tick(int64(i+1), int64(m))
			}
		}
	}
	st.Candidates = len(out)
	if tick != nil {
		tick(int64(m), int64(m))
	}
	return out, st, nil
}

// HashCountMH generates the same candidate set as RowSortMH using the
// Hash-Count algorithm: one hash table of buckets per signature row,
// keyed by min-hash value; columns are processed in index order, each
// column counting agreements against the earlier columns already in its
// buckets before joining them.
func HashCountMH(sig *minhash.Signatures, cutoff float64) ([]pairs.Scored, Stats, error) {
	if cutoff <= 0 || cutoff > 1 {
		return nil, Stats{}, fmt.Errorf("candidate: cutoff must be in (0,1], got %v", cutoff)
	}
	k, m := sig.K, sig.M
	minAgree := ceilFrac(cutoff, k)
	buckets := make([]map[uint64][]int32, k)
	for l := range buckets {
		buckets[l] = make(map[uint64][]int32, m)
	}
	var st Stats
	counts := make([]int32, m)
	touched := make([]int32, 0, 256)
	// One reused scratch for the per-column signature reads (a nil dst
	// would make Signatures.Column allocate per column), so the bucket
	// probes below run over a contiguous slice instead of striding the
	// hash-major value array.
	colVals := make([]uint64, k)
	var out []pairs.Scored
	for i := 0; i < m; i++ {
		sig.Column(i, colVals)
		for l := 0; l < k; l++ {
			v := colVals[l]
			if v == minhash.Empty {
				continue
			}
			b := buckets[l][v]
			for _, j := range b {
				if counts[j] == 0 {
					touched = append(touched, j)
				}
				counts[j]++
				st.Increments++
			}
			buckets[l][v] = append(b, int32(i))
		}
		for _, j := range touched {
			if int(counts[j]) >= minAgree {
				out = append(out, pairs.Scored{
					Pair:     pairs.Make(j, int32(i)),
					Estimate: float64(counts[j]) / float64(k),
				})
			}
			counts[j] = 0
		}
		touched = touched[:0]
	}
	st.Candidates = len(out)
	return out, st, nil
}

// KMHOptions parameterises the K-MH candidate cascade of Section 3.2.
type KMHOptions struct {
	// BiasedCutoff is the similarity threshold applied to the cheap
	// biased estimator computed from |SIG_i ∩ SIG_j| during Hash-Count.
	// It should be set below the target threshold (the biased estimator
	// under-counts for unequal column sizes) — typically (1-δ)s* with a
	// generous δ.
	BiasedCutoff float64
	// UnbiasedCutoff is the threshold applied to the Theorem 2 unbiased
	// estimator, computed only for pairs surviving the biased filter.
	// Zero disables the second filter.
	UnbiasedCutoff float64
}

// HashCountKMH runs Hash-Count over bottom-k sketches: one bucket per
// observed min-hash value, accumulating |SIG_i ∩ SIG_j| for every pair
// sharing at least one value, then applying the biased filter and the
// unbiased Theorem 2 estimator to survivors. The returned Estimate is
// the unbiased one.
func HashCountKMH(s *kminhash.Sketches, opt KMHOptions) ([]pairs.Scored, Stats, error) {
	return hashCountKMH(context.Background(), s, opt, nil)
}

// hashCountKMH is HashCountKMH with an optional progress hook invoked
// every colChunk columns with (columns processed, total columns); ctx
// is checked at the same granularity and aborts the scan with
// ctx.Err() once cancelled.
func hashCountKMH(ctx context.Context, s *kminhash.Sketches, opt KMHOptions, tick obs.Tick) ([]pairs.Scored, Stats, error) {
	if opt.BiasedCutoff <= 0 || opt.BiasedCutoff > 1 {
		return nil, Stats{}, fmt.Errorf("candidate: biased cutoff must be in (0,1], got %v", opt.BiasedCutoff)
	}
	if opt.UnbiasedCutoff < 0 || opt.UnbiasedCutoff > 1 {
		return nil, Stats{}, fmt.Errorf("candidate: unbiased cutoff must be in [0,1], got %v", opt.UnbiasedCutoff)
	}
	m := len(s.Sigs)
	buckets := make(map[uint64][]int32, m*min(s.K, 8))
	var st Stats
	counts := make([]int32, m)
	touched := make([]int32, 0, 256)
	var out []pairs.Scored
	for i := 0; i < m; i++ {
		for _, v := range s.Sigs[i] {
			b := buckets[v]
			for _, j := range b {
				if counts[j] == 0 {
					touched = append(touched, j)
				}
				counts[j]++
				st.Increments++
			}
			buckets[v] = append(b, int32(i))
		}
		for _, j := range touched {
			if est := s.BiasedEstimateFromCount(int(j), i, int(counts[j])); est >= opt.BiasedCutoff {
				unbiased := s.UnbiasedEstimate(int(j), i)
				if unbiased >= opt.UnbiasedCutoff {
					out = append(out, pairs.Scored{
						Pair:     pairs.Make(j, int32(i)),
						Estimate: unbiased,
					})
				}
			}
			counts[j] = 0
		}
		touched = touched[:0]
		if (i+1)%colChunk == 0 {
			if err := ctx.Err(); err != nil {
				return nil, Stats{}, err
			}
			if tick != nil {
				tick(int64(i+1), int64(m))
			}
		}
	}
	st.Candidates = len(out)
	if tick != nil {
		tick(int64(m), int64(m))
	}
	return out, st, nil
}

// BruteForceMH enumerates all column pairs against the MH agreement
// threshold in O(k·m²). It is the oracle the faster generators are
// tested against and the ablation baseline for the counter-reuse
// benchmarks.
func BruteForceMH(sig *minhash.Signatures, cutoff float64) ([]pairs.Scored, Stats, error) {
	if cutoff <= 0 || cutoff > 1 {
		return nil, Stats{}, fmt.Errorf("candidate: cutoff must be in (0,1], got %v", cutoff)
	}
	minAgree := ceilFrac(cutoff, sig.K)
	var st Stats
	var out []pairs.Scored
	for i := 0; i < sig.M; i++ {
		for j := i + 1; j < sig.M; j++ {
			st.Increments += int64(sig.K)
			if a := sig.Agreement(i, j); a >= minAgree {
				out = append(out, pairs.Scored{
					Pair:     pairs.Make(int32(i), int32(j)),
					Estimate: float64(a) / float64(sig.K),
				})
			}
		}
	}
	st.Candidates = len(out)
	return out, st, nil
}

// BruteForceKMH enumerates all pairs with the Theorem 2 unbiased
// estimator in O(k·m²); oracle for HashCountKMH's recall.
func BruteForceKMH(s *kminhash.Sketches, cutoff float64) ([]pairs.Scored, Stats, error) {
	if cutoff <= 0 || cutoff > 1 {
		return nil, Stats{}, fmt.Errorf("candidate: cutoff must be in (0,1], got %v", cutoff)
	}
	m := len(s.Sigs)
	var st Stats
	var out []pairs.Scored
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			st.Increments += int64(s.K)
			if est := s.UnbiasedEstimate(i, j); est >= cutoff {
				out = append(out, pairs.Scored{
					Pair:     pairs.Make(int32(i), int32(j)),
					Estimate: est,
				})
			}
		}
	}
	st.Candidates = len(out)
	return out, st, nil
}

// sortRow builds the Row-Sorting per-row structures for signature row
// l: the column order sorted by min-hash value, each column's position
// in that order, and the [lo,hi) bounds of each position's equal-value
// run. Shared by the serial and parallel passes so both see the same
// within-run ordering.
func sortRow(sig *minhash.Signatures, l int) (sorted, pos, runLo, runHi []int32) {
	m := sig.M
	order := make([]int32, m)
	for c := range order {
		order[c] = int32(c)
	}
	row := sig.Vals[l*m : (l+1)*m]
	sort.Slice(order, func(a, b int) bool { return row[order[a]] < row[order[b]] })
	p := make([]int32, m)
	for idx, c := range order {
		p[c] = int32(idx)
	}
	lo := make([]int32, m)
	hi := make([]int32, m)
	start := 0
	for idx := 1; idx <= m; idx++ {
		if idx == m || row[order[idx]] != row[order[start]] {
			for q := start; q < idx; q++ {
				lo[q], hi[q] = int32(start), int32(idx)
			}
			start = idx
		}
	}
	return order, p, lo, hi
}

// ceilFrac returns max(1, ceil(cutoff*k)).
func ceilFrac(cutoff float64, k int) int {
	n := int(cutoff * float64(k))
	if float64(n) < cutoff*float64(k) {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}
