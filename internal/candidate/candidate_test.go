package candidate

import (
	"testing"
	"testing/quick"

	"assocmine/internal/hashing"
	"assocmine/internal/kminhash"
	"assocmine/internal/matrix"
	"assocmine/internal/minhash"
	"assocmine/internal/pairs"
)

func randomMatrix(rng *hashing.SplitMix64, rows, cols int, density float64) *matrix.Matrix {
	b := matrix.NewBuilder(rows, cols)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			if rng.Float64() < density {
				b.Set(r, c)
			}
		}
	}
	return b.Build()
}

// plantedMatrix returns a matrix with `pairsWanted` planted
// high-similarity column pairs among otherwise independent columns.
func plantedMatrix(rng *hashing.SplitMix64, rows, cols int) (*matrix.Matrix, *pairs.Set) {
	b := matrix.NewBuilder(rows, cols)
	planted := pairs.NewSet(cols / 2)
	for c := 0; c+1 < cols; c += 4 {
		// Columns c, c+1: near-duplicates.
		for r := 0; r < rows; r++ {
			if rng.Float64() < 0.1 {
				b.Set(r, c)
				b.Set(r, c+1)
			}
		}
		planted.Add(int32(c), int32(c+1))
		// Columns c+2, c+3: independent noise.
		for off := 2; off < 4 && c+off < cols; off++ {
			for r := 0; r < rows; r++ {
				if rng.Float64() < 0.1 {
					b.Set(r, c+off)
				}
			}
		}
	}
	return b.Build(), planted
}

func pairSetOf(ps []pairs.Scored) *pairs.Set {
	s := pairs.NewSet(len(ps))
	for _, p := range ps {
		s.Add(p.I, p.J)
	}
	return s
}

func TestRowSortValidatesCutoff(t *testing.T) {
	sig := &minhash.Signatures{K: 1, M: 1, Vals: []uint64{1}}
	for _, c := range []float64{0, -1, 1.5} {
		if _, _, err := RowSortMH(sig, c); err == nil {
			t.Errorf("RowSortMH accepted cutoff %v", c)
		}
		if _, _, err := HashCountMH(sig, c); err == nil {
			t.Errorf("HashCountMH accepted cutoff %v", c)
		}
		if _, _, err := BruteForceMH(sig, c); err == nil {
			t.Errorf("BruteForceMH accepted cutoff %v", c)
		}
		if _, _, err := BruteForceKMH(&kminhash.Sketches{K: 1}, c); err == nil {
			t.Errorf("BruteForceKMH accepted cutoff %v", c)
		}
	}
	if _, _, err := HashCountKMH(&kminhash.Sketches{K: 1}, KMHOptions{BiasedCutoff: 0}); err == nil {
		t.Error("HashCountKMH accepted zero biased cutoff")
	}
	if _, _, err := HashCountKMH(&kminhash.Sketches{K: 1}, KMHOptions{BiasedCutoff: 0.5, UnbiasedCutoff: 2}); err == nil {
		t.Error("HashCountKMH accepted unbiased cutoff > 1")
	}
}

// TestRowSortMatchesBruteForce: Row-Sorting must produce exactly the
// brute-force candidate set with identical estimates.
func TestRowSortMatchesBruteForce(t *testing.T) {
	rng := hashing.NewSplitMix64(1)
	m, _ := plantedMatrix(rng, 400, 40)
	sig, err := minhash.Compute(m.Stream(), 20, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, cutoff := range []float64{0.2, 0.5, 0.8} {
		got, _, err := RowSortMH(sig, cutoff)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := BruteForceMH(sig, cutoff)
		if err != nil {
			t.Fatal(err)
		}
		assertSamePairs(t, got, want, cutoff)
	}
}

// TestHashCountMatchesBruteForce: Hash-Count must also agree exactly.
func TestHashCountMatchesBruteForce(t *testing.T) {
	rng := hashing.NewSplitMix64(2)
	m, _ := plantedMatrix(rng, 400, 40)
	sig, err := minhash.Compute(m.Stream(), 20, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, cutoff := range []float64{0.2, 0.5, 0.8} {
		got, _, err := HashCountMH(sig, cutoff)
		if err != nil {
			t.Fatal(err)
		}
		want, _, err := BruteForceMH(sig, cutoff)
		if err != nil {
			t.Fatal(err)
		}
		assertSamePairs(t, got, want, cutoff)
	}
}

func assertSamePairs(t *testing.T, got, want []pairs.Scored, cutoff float64) {
	t.Helper()
	gs, ws := pairSetOf(got), pairSetOf(want)
	if gs.Len() != len(got) {
		t.Errorf("cutoff %v: duplicate pairs emitted", cutoff)
	}
	for _, p := range want {
		if !gs.Contains(p.I, p.J) {
			t.Errorf("cutoff %v: missing pair (%d,%d) est %v", cutoff, p.I, p.J, p.Estimate)
		}
	}
	for _, p := range got {
		if !ws.Contains(p.I, p.J) {
			t.Errorf("cutoff %v: extra pair (%d,%d) est %v", cutoff, p.I, p.J, p.Estimate)
		}
	}
	// Estimates must match exactly for common pairs.
	type key struct{ i, j int32 }
	we := map[key]float64{}
	for _, p := range want {
		we[key{p.I, p.J}] = p.Estimate
	}
	for _, p := range got {
		if e, ok := we[key{p.I, p.J}]; ok && e != p.Estimate {
			t.Errorf("cutoff %v: estimate mismatch on (%d,%d): %v vs %v", cutoff, p.I, p.J, p.Estimate, e)
		}
	}
}

func TestEmptyColumnsNeverPair(t *testing.T) {
	m := matrix.MustNew(4, [][]int32{{}, {}, {0, 1, 2, 3}})
	sig, _ := minhash.Compute(m.Stream(), 10, 3)
	for _, gen := range []func() ([]pairs.Scored, Stats, error){
		func() ([]pairs.Scored, Stats, error) { return RowSortMH(sig, 0.5) },
		func() ([]pairs.Scored, Stats, error) { return HashCountMH(sig, 0.5) },
	} {
		out, _, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range out {
			if p.I == 0 && p.J == 1 {
				t.Error("two empty columns became a candidate")
			}
		}
	}
}

func TestRowSortRecallOnPlantedPairs(t *testing.T) {
	rng := hashing.NewSplitMix64(4)
	m, planted := plantedMatrix(rng, 600, 60)
	sig, _ := minhash.Compute(m.Stream(), 50, 11)
	out, _, err := RowSortMH(sig, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	found := pairSetOf(out)
	for _, p := range planted.Slice() {
		if m.Similarity(int(p.I), int(p.J)) > 0.8 && !found.Contains(p.I, p.J) {
			t.Errorf("planted pair (%d,%d) sim %v missed", p.I, p.J, m.Similarity(int(p.I), int(p.J)))
		}
	}
}

func TestHashCountKMHRecall(t *testing.T) {
	rng := hashing.NewSplitMix64(5)
	m, planted := plantedMatrix(rng, 600, 60)
	sk, err := kminhash.Compute(m.Stream(), 40, 13)
	if err != nil {
		t.Fatal(err)
	}
	out, _, err := HashCountKMH(sk, KMHOptions{BiasedCutoff: 0.3, UnbiasedCutoff: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	found := pairSetOf(out)
	for _, p := range planted.Slice() {
		if m.Similarity(int(p.I), int(p.J)) > 0.85 && !found.Contains(p.I, p.J) {
			t.Errorf("planted pair (%d,%d) sim %v missed by K-MH",
				p.I, p.J, m.Similarity(int(p.I), int(p.J)))
		}
	}
	// Unbiased estimates attached must be in range and above cutoff.
	for _, p := range out {
		if p.Estimate < 0.5 || p.Estimate > 1 {
			t.Errorf("estimate %v outside [0.5,1]", p.Estimate)
		}
	}
}

// TestHashCountKMHSubsetOfBruteForce: every pair that both passes the
// brute-force unbiased cutoff AND shares at least one signature value
// should be found; pairs reported must all pass the unbiased cutoff.
func TestHashCountKMHConsistentWithBruteForce(t *testing.T) {
	rng := hashing.NewSplitMix64(6)
	m, _ := plantedMatrix(rng, 300, 30)
	sk, _ := kminhash.Compute(m.Stream(), 20, 17)
	const cutoff = 0.5
	got, _, err := HashCountKMH(sk, KMHOptions{BiasedCutoff: 0.01, UnbiasedCutoff: cutoff})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := BruteForceKMH(sk, cutoff)
	if err != nil {
		t.Fatal(err)
	}
	// With a negligible biased cutoff, Hash-Count sees every pair with
	// a non-empty signature intersection; any pair with positive
	// unbiased estimate has one, so the sets must coincide (pairs with
	// unbiased cutoff > 0).
	assertSamePairs(t, got, want, cutoff)
}

func TestStatsIncrements(t *testing.T) {
	rng := hashing.NewSplitMix64(7)
	m, _ := plantedMatrix(rng, 200, 20)
	sig, _ := minhash.Compute(m.Stream(), 10, 19)
	_, stRS, err := RowSortMH(sig, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	_, stBF, err := BruteForceMH(sig, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if stRS.Increments == 0 {
		t.Error("RowSort reported zero increments on data with planted pairs")
	}
	if stRS.Increments >= stBF.Increments {
		t.Errorf("RowSort increments %d not below brute force %d", stRS.Increments, stBF.Increments)
	}
}

func TestCeilFrac(t *testing.T) {
	cases := []struct {
		cutoff float64
		k      int
		want   int
	}{
		{0.5, 10, 5},
		{0.55, 10, 6},
		{0.01, 10, 1},
		{1.0, 7, 7},
		{0.001, 5, 1},
	}
	for _, c := range cases {
		if got := ceilFrac(c.cutoff, c.k); got != c.want {
			t.Errorf("ceilFrac(%v,%d) = %d, want %d", c.cutoff, c.k, got, c.want)
		}
	}
}

func TestQuickGeneratorsAgree(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hashing.NewSplitMix64(seed)
		m := randomMatrix(rng, 80, 12, 0.2)
		sig, err := minhash.Compute(m.Stream(), 8, seed^0x5555)
		if err != nil {
			return false
		}
		a, _, err := RowSortMH(sig, 0.4)
		if err != nil {
			return false
		}
		b, _, err := HashCountMH(sig, 0.4)
		if err != nil {
			return false
		}
		c, _, err := BruteForceMH(sig, 0.4)
		if err != nil {
			return false
		}
		as, bs, cs := pairSetOf(a), pairSetOf(b), pairSetOf(c)
		if as.Len() != bs.Len() || as.Len() != cs.Len() {
			return false
		}
		for _, p := range c {
			if !as.Contains(p.I, p.J) || !bs.Contains(p.I, p.J) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
