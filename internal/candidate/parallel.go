// Parallel candidate generation. Both Section 3.1 algorithms decompose
// the same way: a read-only index is built first (per-row sorted runs
// for Row-Sorting, value buckets for Hash-Count), then every column's
// agreement counting depends only on that index, so columns shard
// across workers with one private counter array each. Because a
// column's work grows with its index (Hash-Count counts against the
// earlier columns only), columns are handed out in small chunks through
// an atomic cursor rather than as contiguous ranges; chunk outputs are
// concatenated in chunk order, which restores exactly the serial
// emission order. All Stats are identical to the serial pass.
package candidate

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"assocmine/internal/kminhash"
	"assocmine/internal/minhash"
	"assocmine/internal/obs"
	"assocmine/internal/pairs"
)

// colChunk is the unit of work handed to a worker: big enough to keep
// cursor contention negligible, small enough to balance the skewed
// per-column cost.
const colChunk = 32

// forEachChunk runs fn over [0,m) in chunks of colChunk across workers,
// storing per-chunk outputs so the caller can merge deterministically.
// fn receives the chunk index, its column range, and the worker id.
// Workers stop claiming chunks once ctx is cancelled; the caller is
// responsible for checking ctx.Err() afterwards.
func forEachChunk(ctx context.Context, m, workers int, fn func(chunk, lo, hi, worker int)) int {
	numChunks := (m + colChunk - 1) / colChunk
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for ctx.Err() == nil {
				ck := int(next.Add(1)) - 1
				if ck >= numChunks {
					return
				}
				lo := ck * colChunk
				hi := lo + colChunk
				if hi > m {
					hi = m
				}
				fn(ck, lo, hi, worker)
			}
		}(w)
	}
	wg.Wait()
	return numChunks
}

// chunkCapHint accumulates the pair yield of completed chunks so later
// chunks can pre-size their output slices from the observed average
// instead of growing from nil. Purely an allocation hint: emission
// order and contents are untouched.
type chunkCapHint struct {
	emitted atomic.Int64
	chunks  atomic.Int64
}

// hint returns a starting capacity for the next chunk's output.
func (h *chunkCapHint) hint() int {
	n := h.chunks.Load()
	if n == 0 {
		return 8
	}
	return int(h.emitted.Load()/n) + 8
}

// record folds one finished chunk's yield into the running average.
func (h *chunkCapHint) record(emitted int) {
	h.emitted.Add(int64(emitted))
	h.chunks.Add(1)
}

func concatChunks(outs [][]pairs.Scored) []pairs.Scored {
	n := 0
	for _, o := range outs {
		n += len(o)
	}
	out := make([]pairs.Scored, 0, n)
	for _, o := range outs {
		out = append(out, o...)
	}
	return out
}

// RowSortMHParallel is RowSortMH with both stages parallelised: the
// per-row sorting (k independent rows) and the per-column run scan.
// Output and Stats are identical to RowSortMH for any worker count;
// workers <= 1 runs the serial pass, negative means GOMAXPROCS.
func RowSortMHParallel(sig *minhash.Signatures, cutoff float64, workers int) ([]pairs.Scored, Stats, error) {
	return RowSortMHParallelProgress(context.Background(), sig, cutoff, workers, nil)
}

// RowSortMHParallelProgress is RowSortMHParallel with a progress hook
// and cancellation: tick (when non-nil) receives (columns counted,
// total columns), from worker goroutines at chunk granularity in the
// parallel path and inline in the serial path; a cancelled ctx (nil
// means Background) aborts at chunk granularity with ctx.Err().
// Output and Stats are unaffected.
func RowSortMHParallelProgress(ctx context.Context, sig *minhash.Signatures, cutoff float64, workers int, tick obs.Tick) ([]pairs.Scored, Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 {
		return rowSortMH(ctx, sig, cutoff, tick)
	}
	if cutoff <= 0 || cutoff > 1 {
		_, _, err := RowSortMH(sig, cutoff)
		return nil, Stats{}, err
	}
	k, m := sig.K, sig.M
	minAgree := ceilFrac(cutoff, k)

	// Stage 1: per-row runs, one row per unit of work.
	sorted := make([][]int32, k)
	pos := make([][]int32, k)
	runLo := make([][]int32, k)
	runHi := make([][]int32, k)
	var nextRow atomic.Int64
	var wg sync.WaitGroup
	rowWorkers := workers
	if rowWorkers > k {
		rowWorkers = k
	}
	for w := 0; w < rowWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				l := int(nextRow.Add(1)) - 1
				if l >= k {
					return
				}
				sorted[l], pos[l], runLo[l], runHi[l] = sortRow(sig, l)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}

	// Stage 2: per-column counting over chunked columns.
	numChunks := (m + colChunk - 1) / colChunk
	outs := make([][]pairs.Scored, numChunks)
	incs := make([]int64, workers)
	var done atomic.Int64
	var hint chunkCapHint
	forEachChunk(ctx, m, workers, func(ck, lo, hi, worker int) {
		counts := make([]int32, m)
		touched := make([]int32, 0, 256)
		out := make([]pairs.Scored, 0, hint.hint())
		for i := lo; i < hi; i++ {
			for l := 0; l < k; l++ {
				p := pos[l][i]
				if sig.Vals[l*m+i] == minhash.Empty {
					continue
				}
				for q := runLo[l][p]; q < runHi[l][p]; q++ {
					j := sorted[l][q]
					if int(j) == i {
						continue
					}
					if counts[j] == 0 {
						touched = append(touched, j)
					}
					counts[j]++
					incs[worker]++
				}
			}
			for _, j := range touched {
				if int(counts[j]) >= minAgree && int(j) > i {
					out = append(out, pairs.Scored{
						Pair:     pairs.Make(int32(i), j),
						Estimate: float64(counts[j]) / float64(k),
					})
				}
				counts[j] = 0
			}
			touched = touched[:0]
		}
		outs[ck] = out
		hint.record(len(out))
		if tick != nil {
			tick(done.Add(int64(hi-lo)), int64(m))
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}

	var st Stats
	for _, n := range incs {
		st.Increments += n
	}
	out := concatChunks(outs)
	st.Candidates = len(out)
	return out, st, nil
}

// HashCountMHParallel is HashCountMH with the per-row bucket tables
// built in parallel and the column counting sharded. Each column counts
// only against lower-indexed columns (the ascending prefix of its
// buckets), reproducing the serial incremental-insert semantics.
func HashCountMHParallel(sig *minhash.Signatures, cutoff float64, workers int) ([]pairs.Scored, Stats, error) {
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 {
		return HashCountMH(sig, cutoff)
	}
	if cutoff <= 0 || cutoff > 1 {
		_, _, err := HashCountMH(sig, cutoff)
		return nil, Stats{}, err
	}
	k, m := sig.K, sig.M
	minAgree := ceilFrac(cutoff, k)

	// Stage 1: full bucket tables, one signature row per unit of work.
	// Columns enter each bucket in ascending order.
	buckets := make([]map[uint64][]int32, k)
	var nextRow atomic.Int64
	var wg sync.WaitGroup
	rowWorkers := workers
	if rowWorkers > k {
		rowWorkers = k
	}
	for w := 0; w < rowWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				l := int(nextRow.Add(1)) - 1
				if l >= k {
					return
				}
				row := make(map[uint64][]int32, m)
				for c := 0; c < m; c++ {
					if v := sig.Vals[l*m+c]; v != minhash.Empty {
						row[v] = append(row[v], int32(c))
					}
				}
				buckets[l] = row
			}
		}()
	}
	wg.Wait()

	numChunks := (m + colChunk - 1) / colChunk
	outs := make([][]pairs.Scored, numChunks)
	incs := make([]int64, workers)
	var hint chunkCapHint
	forEachChunk(context.Background(), m, workers, func(ck, lo, hi, worker int) {
		counts := make([]int32, m)
		touched := make([]int32, 0, 256)
		colVals := make([]uint64, k) // reused per-column read, as in HashCountMH
		out := make([]pairs.Scored, 0, hint.hint())
		for i := lo; i < hi; i++ {
			ii := int32(i)
			sig.Column(i, colVals)
			for l := 0; l < k; l++ {
				v := colVals[l]
				if v == minhash.Empty {
					continue
				}
				for _, j := range buckets[l][v] {
					if j >= ii {
						break // ascending bucket: rest is i itself and later columns
					}
					if counts[j] == 0 {
						touched = append(touched, j)
					}
					counts[j]++
					incs[worker]++
				}
			}
			for _, j := range touched {
				if int(counts[j]) >= minAgree {
					out = append(out, pairs.Scored{
						Pair:     pairs.Make(j, ii),
						Estimate: float64(counts[j]) / float64(k),
					})
				}
				counts[j] = 0
			}
			touched = touched[:0]
		}
		outs[ck] = out
		hint.record(len(out))
	})

	var st Stats
	for _, n := range incs {
		st.Increments += n
	}
	out := concatChunks(outs)
	st.Candidates = len(out)
	return out, st, nil
}

// HashCountKMHParallel is HashCountKMH with the column counting sharded
// across workers. The single bucket table (one bucket per observed
// min-hash value, columns ascending) is built serially — it is the
// cheap O(m·k) part — and shared read-only; each worker counts its
// columns against the ascending prefix of every bucket and applies the
// biased-then-unbiased estimator cascade exactly as the serial pass.
func HashCountKMHParallel(s *kminhash.Sketches, opt KMHOptions, workers int) ([]pairs.Scored, Stats, error) {
	return HashCountKMHParallelProgress(context.Background(), s, opt, workers, nil)
}

// HashCountKMHParallelProgress is HashCountKMHParallel with a progress
// hook and cancellation following the RowSortMHParallelProgress
// conventions.
func HashCountKMHParallelProgress(ctx context.Context, s *kminhash.Sketches, opt KMHOptions, workers int, tick obs.Tick) ([]pairs.Scored, Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 {
		return hashCountKMH(ctx, s, opt, tick)
	}
	if opt.BiasedCutoff <= 0 || opt.BiasedCutoff > 1 || opt.UnbiasedCutoff < 0 || opt.UnbiasedCutoff > 1 {
		_, _, err := HashCountKMH(s, opt)
		return nil, Stats{}, err
	}
	m := len(s.Sigs)
	buckets := make(map[uint64][]int32, m*min(s.K, 8))
	for i := 0; i < m; i++ {
		for _, v := range s.Sigs[i] {
			buckets[v] = append(buckets[v], int32(i))
		}
	}

	numChunks := (m + colChunk - 1) / colChunk
	outs := make([][]pairs.Scored, numChunks)
	incs := make([]int64, workers)
	var done atomic.Int64
	var hint chunkCapHint
	forEachChunk(ctx, m, workers, func(ck, lo, hi, worker int) {
		counts := make([]int32, m)
		touched := make([]int32, 0, 256)
		out := make([]pairs.Scored, 0, hint.hint())
		for i := lo; i < hi; i++ {
			ii := int32(i)
			for _, v := range s.Sigs[i] {
				for _, j := range buckets[v] {
					if j >= ii {
						break
					}
					if counts[j] == 0 {
						touched = append(touched, j)
					}
					counts[j]++
					incs[worker]++
				}
			}
			for _, j := range touched {
				if est := s.BiasedEstimateFromCount(int(j), i, int(counts[j])); est >= opt.BiasedCutoff {
					unbiased := s.UnbiasedEstimate(int(j), i)
					if unbiased >= opt.UnbiasedCutoff {
						out = append(out, pairs.Scored{
							Pair:     pairs.Make(j, ii),
							Estimate: unbiased,
						})
					}
				}
				counts[j] = 0
			}
			touched = touched[:0]
		}
		outs[ck] = out
		hint.record(len(out))
		if tick != nil {
			tick(done.Add(int64(hi-lo)), int64(m))
		}
	})
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}

	var st Stats
	for _, n := range incs {
		st.Increments += n
	}
	out := concatChunks(outs)
	st.Candidates = len(out)
	return out, st, nil
}
