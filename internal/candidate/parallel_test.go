package candidate

import (
	"fmt"
	"reflect"
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/kminhash"
	"assocmine/internal/minhash"
)

// The parallel candidate generators promise bit-identical output to
// their serial counterparts: same pairs, same order, same Stats.

func TestRowSortMHParallelMatchesSerial(t *testing.T) {
	rng := hashing.NewSplitMix64(21)
	m, _ := plantedMatrix(rng, 700, 90)
	sig, err := minhash.Compute(m.Stream(), 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	want, wantSt, err := RowSortMH(sig, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 7, -1} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			got, st, err := RowSortMHParallel(sig, 0.3, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("output differs from serial: %d pairs vs %d", len(got), len(want))
			}
			if st != wantSt {
				t.Fatalf("stats %+v, want %+v", st, wantSt)
			}
		})
	}
}

func TestHashCountMHParallelMatchesSerial(t *testing.T) {
	rng := hashing.NewSplitMix64(23)
	m, _ := plantedMatrix(rng, 600, 70)
	sig, err := minhash.Compute(m.Stream(), 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	want, wantSt, err := HashCountMH(sig, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		got, st, err := HashCountMHParallel(sig, 0.25, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: output differs from serial", workers)
		}
		if st != wantSt {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, st, wantSt)
		}
	}
}

func TestHashCountKMHParallelMatchesSerial(t *testing.T) {
	rng := hashing.NewSplitMix64(25)
	m, _ := plantedMatrix(rng, 600, 60)
	sk, err := kminhash.Compute(m.Stream(), 40, 13)
	if err != nil {
		t.Fatal(err)
	}
	opt := KMHOptions{BiasedCutoff: 0.3, UnbiasedCutoff: 0.5}
	want, wantSt, err := HashCountKMH(sk, opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 7} {
		got, st, err := HashCountKMHParallel(sk, opt, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: output differs from serial", workers)
		}
		if st != wantSt {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, st, wantSt)
		}
	}
}

func TestParallelCandidateErrors(t *testing.T) {
	rng := hashing.NewSplitMix64(27)
	m, _ := plantedMatrix(rng, 100, 20)
	sig, err := minhash.Compute(m.Stream(), 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := RowSortMHParallel(sig, 0, 4); err == nil {
		t.Error("RowSortMHParallel accepted cutoff 0")
	}
	if _, _, err := HashCountMHParallel(sig, 1.5, 4); err == nil {
		t.Error("HashCountMHParallel accepted cutoff 1.5")
	}
	if _, _, err := HashCountKMHParallel(&kminhash.Sketches{K: 1}, KMHOptions{BiasedCutoff: 0}, 4); err == nil {
		t.Error("HashCountKMHParallel accepted zero biased cutoff")
	}
}
