// Range-restricted candidate generation for the scale-out executor:
// the per-column emission loops of RowSortMH and HashCountKMH served
// over arbitrary column ranges [lo, hi). Both algorithms attribute each
// candidate pair to exactly one column (the larger index for Row-Sort's
// j > i emission, the later column for Hash-Count's count-against-
// earlier scheme), so disjoint column ranges partition the candidate
// set and concatenating range outputs in range order reproduces the
// serial output exactly — pair for pair, estimate bit for estimate bit.
package candidate

import (
	"fmt"

	"assocmine/internal/kminhash"
	"assocmine/internal/minhash"
	"assocmine/internal/pairs"
)

// MHRanger precomputes the Row-Sorting structures (value-sorted rows,
// positions, run bounds) once so any column range of RowSortMH's
// emission loop can be generated independently. Columns(a, b) followed
// by Columns(b, c) emits exactly what one Columns(a, c) — and therefore
// what RowSortMH over [0, m) — would. Not safe for concurrent use: the
// counter array is shared across calls (the paper's counter-reuse
// trick); distributed workers run one Ranger per process.
type MHRanger struct {
	sig      *minhash.Signatures
	minAgree int
	sorted   [][]int32
	pos      [][]int32
	runLo    [][]int32
	runHi    [][]int32
	counts   []int32
	touched  []int32
}

// NewMHRanger validates cutoff and builds the shared Row-Sorting
// tables, the one-time O(k·m log m) cost RowSortMH pays up front.
func NewMHRanger(sig *minhash.Signatures, cutoff float64) (*MHRanger, error) {
	if cutoff <= 0 || cutoff > 1 {
		return nil, fmt.Errorf("candidate: cutoff must be in (0,1], got %v", cutoff)
	}
	k := sig.K
	r := &MHRanger{
		sig:      sig,
		minAgree: ceilFrac(cutoff, k),
		sorted:   make([][]int32, k),
		pos:      make([][]int32, k),
		runLo:    make([][]int32, k),
		runHi:    make([][]int32, k),
		counts:   make([]int32, sig.M),
		touched:  make([]int32, 0, 256),
	}
	for l := 0; l < k; l++ {
		r.sorted[l], r.pos[l], r.runLo[l], r.runHi[l] = sortRow(sig, l)
	}
	return r, nil
}

// Columns emits the candidates RowSortMH attributes to columns
// [lo, hi): pairs (i, j) with lo <= i < hi and j > i agreeing in at
// least ceil(cutoff·k) rows, in RowSortMH's exact emission order.
func (r *MHRanger) Columns(lo, hi int) ([]pairs.Scored, Stats, error) {
	m := r.sig.M
	if lo < 0 || hi > m || lo > hi {
		return nil, Stats{}, fmt.Errorf("candidate: column range [%d,%d) outside [0,%d)", lo, hi, m)
	}
	k := r.sig.K
	var st Stats
	var out []pairs.Scored
	for i := lo; i < hi; i++ {
		for l := 0; l < k; l++ {
			p := r.pos[l][i]
			if r.sig.Vals[l*m+i] == minhash.Empty {
				continue // runs of the empty sentinel are not matches
			}
			for q := r.runLo[l][p]; q < r.runHi[l][p]; q++ {
				j := r.sorted[l][q]
				if int(j) == i {
					continue
				}
				if r.counts[j] == 0 {
					r.touched = append(r.touched, j)
				}
				r.counts[j]++
				st.Increments++
			}
		}
		for _, j := range r.touched {
			if int(r.counts[j]) >= r.minAgree && int(j) > i {
				out = append(out, pairs.Scored{
					Pair:     pairs.Make(int32(i), j),
					Estimate: float64(r.counts[j]) / float64(k),
				})
			}
			r.counts[j] = 0
		}
		r.touched = r.touched[:0]
	}
	st.Candidates = len(out)
	return out, st, nil
}

// KMHRanger precomputes the full ascending Hash-Count bucket table so
// any column range of HashCountKMH's emission loop can be generated
// independently: column i counts |SIG_i ∩ SIG_j| only against earlier
// columns j < i, read from the prebuilt buckets' ascending prefixes.
// Concatenating Columns outputs in range order reproduces HashCountKMH
// exactly. Not safe for concurrent use (shared counter array).
type KMHRanger struct {
	s       *kminhash.Sketches
	opt     KMHOptions
	buckets map[uint64][]int32
	counts  []int32
	touched []int32
}

// NewKMHRanger validates the cutoffs and builds the bucket table, one
// pass over the sketches in ascending column order so every bucket's
// list is ascending.
func NewKMHRanger(s *kminhash.Sketches, opt KMHOptions) (*KMHRanger, error) {
	if opt.BiasedCutoff <= 0 || opt.BiasedCutoff > 1 {
		return nil, fmt.Errorf("candidate: biased cutoff must be in (0,1], got %v", opt.BiasedCutoff)
	}
	if opt.UnbiasedCutoff < 0 || opt.UnbiasedCutoff > 1 {
		return nil, fmt.Errorf("candidate: unbiased cutoff must be in [0,1], got %v", opt.UnbiasedCutoff)
	}
	m := len(s.Sigs)
	r := &KMHRanger{
		s:       s,
		opt:     opt,
		buckets: make(map[uint64][]int32, m*min(s.K, 8)),
		counts:  make([]int32, m),
		touched: make([]int32, 0, 256),
	}
	for i := 0; i < m; i++ {
		for _, v := range s.Sigs[i] {
			r.buckets[v] = append(r.buckets[v], int32(i))
		}
	}
	return r, nil
}

// Columns emits the candidates HashCountKMH attributes to columns
// [lo, hi): for each i in the range, pairs (j, i) with j < i surviving
// the biased-then-unbiased cascade, in HashCountKMH's exact emission
// order (bucket walk order equals the serial build's append order).
func (r *KMHRanger) Columns(lo, hi int) ([]pairs.Scored, Stats, error) {
	m := len(r.s.Sigs)
	if lo < 0 || hi > m || lo > hi {
		return nil, Stats{}, fmt.Errorf("candidate: column range [%d,%d) outside [0,%d)", lo, hi, m)
	}
	var st Stats
	var out []pairs.Scored
	for i := lo; i < hi; i++ {
		ii := int32(i)
		for _, v := range r.s.Sigs[i] {
			for _, j := range r.buckets[v] {
				if j >= ii {
					break // ascending lists: the rest are not earlier columns
				}
				if r.counts[j] == 0 {
					r.touched = append(r.touched, j)
				}
				r.counts[j]++
				st.Increments++
			}
		}
		for _, j := range r.touched {
			if est := r.s.BiasedEstimateFromCount(int(j), i, int(r.counts[j])); est >= r.opt.BiasedCutoff {
				unbiased := r.s.UnbiasedEstimate(int(j), i)
				if unbiased >= r.opt.UnbiasedCutoff {
					out = append(out, pairs.Scored{
						Pair:     pairs.Make(j, ii),
						Estimate: unbiased,
					})
				}
			}
			r.counts[j] = 0
		}
		r.touched = r.touched[:0]
	}
	st.Candidates = len(out)
	return out, st, nil
}
