package candidate

import (
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/kminhash"
	"assocmine/internal/minhash"
	"assocmine/internal/pairs"
)

func scoredEqual(a, b []pairs.Scored) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestMHRangerMatchesRowSort proves that concatenating MHRanger column
// ranges in range order reproduces RowSortMH exactly — same pairs, same
// order, same estimate bits — across several partitions including
// single-column and empty ranges.
func TestMHRangerMatchesRowSort(t *testing.T) {
	rng := hashing.NewSplitMix64(41)
	m, _ := plantedMatrix(rng, 300, 60)
	sig, err := minhash.Compute(m.Stream(), 24, 7)
	if err != nil {
		t.Fatal(err)
	}
	const cutoff = 0.5
	want, wantSt, err := RowSortMH(sig, cutoff)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture emitted no candidates; weaken the cutoff")
	}
	partitions := [][]int{
		{0, 60},
		{0, 30, 60},
		{0, 7, 7, 13, 45, 60},
		{0, 1, 2, 3, 60},
	}
	for _, cuts := range partitions {
		r, err := NewMHRanger(sig, cutoff)
		if err != nil {
			t.Fatal(err)
		}
		var got []pairs.Scored
		var inc int64
		for i := 0; i+1 < len(cuts); i++ {
			part, st, err := r.Columns(cuts[i], cuts[i+1])
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, part...)
			inc += st.Increments
		}
		if !scoredEqual(got, want) {
			t.Errorf("partition %v: %d candidates, want %d (or order/estimate mismatch)", cuts, len(got), len(want))
		}
		if inc != wantSt.Increments {
			t.Errorf("partition %v: %d increments, want %d", cuts, inc, wantSt.Increments)
		}
	}
	if _, _, err := mustRanger(t, sig, cutoff).Columns(-1, 5); err == nil {
		t.Error("negative lo accepted")
	}
	if _, _, err := mustRanger(t, sig, cutoff).Columns(0, 61); err == nil {
		t.Error("hi beyond m accepted")
	}
}

func mustRanger(t *testing.T, sig *minhash.Signatures, cutoff float64) *MHRanger {
	t.Helper()
	r, err := NewMHRanger(sig, cutoff)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestKMHRangerMatchesHashCount proves the same for the K-MH cascade:
// prebuilt ascending buckets served over ranges equals the serial
// incremental Hash-Count.
func TestKMHRangerMatchesHashCount(t *testing.T) {
	rng := hashing.NewSplitMix64(43)
	m, _ := plantedMatrix(rng, 300, 60)
	sk, err := kminhash.Compute(m.Stream(), 32, 13)
	if err != nil {
		t.Fatal(err)
	}
	opt := KMHOptions{BiasedCutoff: 0.25, UnbiasedCutoff: 0.5}
	want, wantSt, err := HashCountKMH(sk, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("fixture emitted no candidates; weaken the cutoffs")
	}
	partitions := [][]int{
		{0, 60},
		{0, 15, 30, 45, 60},
		{0, 59, 60},
	}
	for _, cuts := range partitions {
		r, err := NewKMHRanger(sk, opt)
		if err != nil {
			t.Fatal(err)
		}
		var got []pairs.Scored
		var inc int64
		for i := 0; i+1 < len(cuts); i++ {
			part, st, err := r.Columns(cuts[i], cuts[i+1])
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, part...)
			inc += st.Increments
		}
		if !scoredEqual(got, want) {
			t.Errorf("partition %v: %d candidates, want %d (or order/estimate mismatch)", cuts, len(got), len(want))
		}
		if inc != wantSt.Increments {
			t.Errorf("partition %v: %d increments, want %d", cuts, inc, wantSt.Increments)
		}
	}
}

// TestRangerValidation covers the constructor cutoff checks.
func TestRangerValidation(t *testing.T) {
	rng := hashing.NewSplitMix64(5)
	m := randomMatrix(rng, 40, 10, 0.2)
	sig, _ := minhash.Compute(m.Stream(), 8, 3)
	if _, err := NewMHRanger(sig, 0); err == nil {
		t.Error("cutoff 0 accepted")
	}
	if _, err := NewMHRanger(sig, 1.5); err == nil {
		t.Error("cutoff > 1 accepted")
	}
	sk, _ := kminhash.Compute(m.Stream(), 8, 3)
	if _, err := NewKMHRanger(sk, KMHOptions{BiasedCutoff: 0}); err == nil {
		t.Error("biased cutoff 0 accepted")
	}
	if _, err := NewKMHRanger(sk, KMHOptions{BiasedCutoff: 0.5, UnbiasedCutoff: 2}); err == nil {
		t.Error("unbiased cutoff > 1 accepted")
	}
}
