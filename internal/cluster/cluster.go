// Package cluster groups similar-pair output into column clusters —
// the paper's "clusters of words, i.e., groups of words for which most
// of the pairs in the group have high similarity" (the chess-event
// example), and the clustering application from the introduction.
//
// Two groupings are provided: connected components of the similarity
// graph (single-link, what the paper's example amounts to) and a
// stricter density filter that keeps only components where most member
// pairs are themselves edges.
package cluster

import (
	"sort"

	"assocmine/internal/pairs"
)

// Components returns the connected components (size >= 2) of the graph
// whose vertices are columns 0..numCols-1 and whose edges are the given
// pairs. Components are sorted by decreasing size, members ascending.
func Components(numCols int, ps []pairs.Pair) [][]int32 {
	parent := make([]int32, numCols)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra > rb {
				ra, rb = rb, ra
			}
			parent[rb] = ra
		}
	}
	for _, p := range ps {
		union(p.I, p.J)
	}
	groups := map[int32][]int32{}
	for _, p := range ps {
		// Only columns that participate in at least one edge matter.
		for _, c := range []int32{p.I, p.J} {
			root := find(c)
			members := groups[root]
			if len(members) == 0 || members[len(members)-1] != c {
				groups[root] = append(members, c)
			}
		}
	}
	out := make([][]int32, 0, len(groups))
	for _, members := range groups {
		members = dedupInt32(members)
		if len(members) >= 2 {
			out = append(out, members)
		}
	}
	sortClusters(out)
	return out
}

// Density returns the fraction of member pairs of the cluster that are
// edges: 1.0 is a clique, low values indicate a chain glued by
// single-link artifacts.
func Density(members []int32, edges *pairs.Set) float64 {
	n := len(members)
	if n < 2 {
		return 0
	}
	present := 0
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if edges.Contains(members[a], members[b]) {
				present++
			}
		}
	}
	return float64(present) / float64(n*(n-1)/2)
}

// DenseComponents returns the connected components whose pairwise edge
// density is at least minDensity — the shape of the paper's word
// clusters ("most of the pairs in the group have high similarity").
func DenseComponents(numCols int, ps []pairs.Pair, minDensity float64) [][]int32 {
	edges := pairs.NewSet(len(ps))
	for _, p := range ps {
		edges.Add(p.I, p.J)
	}
	var out [][]int32
	for _, comp := range Components(numCols, ps) {
		if Density(comp, edges) >= minDensity {
			out = append(out, comp)
		}
	}
	sortClusters(out)
	return out
}

func dedupInt32(s []int32) []int32 {
	sort.Slice(s, func(a, b int) bool { return s[a] < s[b] })
	w := 0
	for i, v := range s {
		if i == 0 || s[w-1] != v {
			s[w] = v
			w++
		}
	}
	return s[:w]
}

func sortClusters(cs [][]int32) {
	sort.Slice(cs, func(a, b int) bool {
		if len(cs[a]) != len(cs[b]) {
			return len(cs[a]) > len(cs[b])
		}
		return cs[a][0] < cs[b][0]
	})
}
