package cluster

import (
	"reflect"
	"testing"
	"testing/quick"

	"assocmine/internal/pairs"
)

func mkPairs(ps ...[2]int32) []pairs.Pair {
	out := make([]pairs.Pair, len(ps))
	for i, p := range ps {
		out[i] = pairs.Make(p[0], p[1])
	}
	return out
}

func TestComponentsBasic(t *testing.T) {
	// Two components: {0,1,2} (chain) and {5,6}; 3,4 isolated.
	comps := Components(8, mkPairs([2]int32{0, 1}, [2]int32{1, 2}, [2]int32{5, 6}))
	want := [][]int32{{0, 1, 2}, {5, 6}}
	if !reflect.DeepEqual(comps, want) {
		t.Fatalf("Components = %v, want %v", comps, want)
	}
}

func TestComponentsEmpty(t *testing.T) {
	if got := Components(5, nil); len(got) != 0 {
		t.Fatalf("Components on no edges = %v", got)
	}
}

func TestComponentsDuplicateEdges(t *testing.T) {
	comps := Components(4, mkPairs([2]int32{0, 1}, [2]int32{1, 0}, [2]int32{0, 1}))
	if len(comps) != 1 || !reflect.DeepEqual(comps[0], []int32{0, 1}) {
		t.Fatalf("Components = %v", comps)
	}
}

func TestComponentsSortedBySize(t *testing.T) {
	comps := Components(10, mkPairs(
		[2]int32{8, 9},
		[2]int32{0, 1}, [2]int32{1, 2}, [2]int32{2, 3},
	))
	if len(comps) != 2 || len(comps[0]) != 4 || len(comps[1]) != 2 {
		t.Fatalf("Components = %v", comps)
	}
}

func TestDensity(t *testing.T) {
	edges := pairs.NewSet(4)
	edges.Add(0, 1)
	edges.Add(1, 2)
	edges.Add(0, 2)
	// Triangle: density 1.
	if d := Density([]int32{0, 1, 2}, edges); d != 1 {
		t.Errorf("triangle density = %v", d)
	}
	// Chain of 3 within a 3-set missing one edge: 2/3.
	edges2 := pairs.NewSet(2)
	edges2.Add(0, 1)
	edges2.Add(1, 2)
	if d := Density([]int32{0, 1, 2}, edges2); d != 2.0/3 {
		t.Errorf("chain density = %v", d)
	}
	if d := Density([]int32{0}, edges); d != 0 {
		t.Errorf("singleton density = %v", d)
	}
}

func TestDenseComponentsFiltersChains(t *testing.T) {
	// A clique {0,1,2} and a long chain 4-5-6-7 (density 0.5).
	ps := mkPairs(
		[2]int32{0, 1}, [2]int32{1, 2}, [2]int32{0, 2},
		[2]int32{4, 5}, [2]int32{5, 6}, [2]int32{6, 7},
	)
	dense := DenseComponents(8, ps, 0.9)
	if len(dense) != 1 || !reflect.DeepEqual(dense[0], []int32{0, 1, 2}) {
		t.Fatalf("DenseComponents = %v", dense)
	}
	loose := DenseComponents(8, ps, 0.4)
	if len(loose) != 2 {
		t.Fatalf("loose DenseComponents = %v", loose)
	}
}

func TestQuickComponentsPartition(t *testing.T) {
	f := func(raw []uint8) bool {
		const n = 16
		var ps []pairs.Pair
		for i := 0; i+1 < len(raw); i += 2 {
			a, b := int32(raw[i]%n), int32(raw[i+1]%n)
			if a == b {
				continue
			}
			ps = append(ps, pairs.Make(a, b))
		}
		comps := Components(n, ps)
		// Components are disjoint and every edge stays within one.
		owner := map[int32]int{}
		for ci, comp := range comps {
			for i, c := range comp {
				if i > 0 && comp[i-1] >= c {
					return false // not sorted/unique
				}
				if _, dup := owner[c]; dup {
					return false // overlap
				}
				owner[c] = ci
			}
		}
		for _, p := range ps {
			if owner[p.I] != owner[p.J] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
