package dist

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sort"
	"sync"
	"time"

	"assocmine/internal/bps"
	"assocmine/internal/kminhash"
	"assocmine/internal/matrix"
	"assocmine/internal/minhash"
	"assocmine/internal/obs"
	"assocmine/internal/pairs"
)

// Config controls a distributed Run. Zero values select the same
// documented defaults as the single-process driver, so a (data, seed,
// parameters) job yields bit-identical pairs under both executors.
type Config struct {
	// Path is the dataset file (.txt, .arows, or .carows). Workers open
	// it themselves — the pipes carry sketches and candidates, not rows.
	Path string
	// Algorithm picks the scheme; see Algo for the supported set.
	Algorithm Algo
	// Threshold is s*, required in (0,1].
	Threshold float64
	// Delta, K, R, L, SampleBudget and Seed have the single-process
	// driver's meanings and defaults (Delta 0.2, K 100, R 5, L K/R,
	// SampleBudget 32).
	Delta        float64
	K, R, L      int
	SampleBudget int
	Seed         uint64
	// SkipVerify returns raw candidates without the exact pruning pass.
	SkipVerify bool
	// Workers is the number of worker subprocesses; 0 means 1.
	Workers int
	// RowJobs is the number of row ranges the data passes are split
	// into; 0 means Workers. More jobs than workers gives finer-grained
	// restart units at the cost of extra prefix skips.
	RowJobs int
	// MaxRestarts bounds worker replacements across the whole run;
	// 0 means 3. A crashed or hung worker consumes one restart and its
	// job is re-dispatched to a fresh subprocess; exceeding the budget
	// aborts the run.
	MaxRestarts int
	// JobTimeout bounds a single job round-trip; a worker that exceeds
	// it is treated as hung, killed, and restarted. 0 means 5 minutes.
	JobTimeout time.Duration
	// WorkerArgv is the worker subprocess command line, typically
	// {os.Executable(), "-worker"}. Required.
	WorkerArgv []string
	// Env appends to the workers' inherited environment.
	Env []string
	// Context, when non-nil, cancels the run, tearing down the process
	// tree promptly.
	Context context.Context
	// Recorder, when non-nil, receives phase spans plus the dist_*
	// counters alongside the shared pipeline counters.
	Recorder obs.Recorder
}

func (c *Config) setDefaults() error {
	if c.Path == "" {
		return fmt.Errorf("dist: Path is required")
	}
	if len(c.WorkerArgv) == 0 {
		return fmt.Errorf("dist: WorkerArgv is required")
	}
	switch c.Algorithm {
	case MinHash, KMinHash, MinLSH, BPS:
	default:
		return fmt.Errorf("dist: unsupported algorithm %v", c.Algorithm)
	}
	if c.Threshold <= 0 || c.Threshold > 1 {
		return fmt.Errorf("dist: Threshold must be in (0,1], got %v", c.Threshold)
	}
	if c.K == 0 {
		c.K = 100
	}
	if c.K < 1 {
		return fmt.Errorf("dist: K must be positive, got %d", c.K)
	}
	if c.Delta == 0 {
		c.Delta = 0.2
	}
	if c.Delta < 0 || c.Delta >= 1 {
		return fmt.Errorf("dist: Delta must be in [0,1), got %v", c.Delta)
	}
	if c.R == 0 {
		c.R = 5
	}
	if c.R < 1 {
		return fmt.Errorf("dist: R must be positive, got %d", c.R)
	}
	if c.L == 0 {
		c.L = c.K / c.R
		if c.L < 1 {
			c.L = 1
		}
	}
	if c.L < 1 {
		return fmt.Errorf("dist: L must be positive, got %d", c.L)
	}
	if c.Algorithm == MinLSH && c.K < c.R {
		return fmt.Errorf("dist: MinLSH needs K >= R, got K=%d R=%d", c.K, c.R)
	}
	if c.SampleBudget == 0 {
		c.SampleBudget = 32
	}
	if c.SampleBudget < 1 {
		return fmt.Errorf("dist: SampleBudget must be positive, got %d", c.SampleBudget)
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.RowJobs <= 0 {
		c.RowJobs = c.Workers
	}
	if c.MaxRestarts == 0 {
		c.MaxRestarts = 3
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 5 * time.Minute
	}
	return nil
}

func (c Config) context() context.Context {
	if c.Context != nil {
		return c.Context
	}
	return context.Background()
}

// Pair is a similar column pair in a distributed Result; it matches
// the single-process driver's output type field for field.
type Pair struct {
	I, J       int
	Estimate   float64
	Similarity float64
}

// Stats describes a distributed run.
type Stats struct {
	Rows, Cols int
	Candidates int
	Verified   int

	SignatureTime time.Duration
	CandidateTime time.Duration
	VerifyTime    time.Duration

	// Workers counts worker subprocesses launched, including
	// replacements; Restarts counts failed ranges re-dispatched to a
	// fresh subprocess; BytesShipped totals frame payload bytes in both
	// directions (the run's whole inter-process traffic).
	Workers      int
	Restarts     int
	BytesShipped int64
	Jobs         int
}

// Total returns the end-to-end running time.
func (s Stats) Total() time.Duration {
	return s.SignatureTime + s.CandidateTime + s.VerifyTime
}

// Result is the output of a distributed Run: pairs sorted exactly as
// the single-process driver sorts them.
type Result struct {
	Pairs []Pair
	Stats Stats
}

// errPermanent marks faults that a restart cannot fix: protocol
// errors, dataset mismatches, and worker-reported failures.
type errPermanent struct{ err error }

func (e errPermanent) Error() string { return e.err.Error() }
func (e errPermanent) Unwrap() error { return e.err }

func permanent(err error) bool {
	_, ok := err.(errPermanent)
	return ok
}

// proc is one live worker subprocess, owned by exactly one scheduler
// slot at a time.
type proc struct {
	cmd        *exec.Cmd
	stdin      io.WriteCloser
	frames     chan procFrame
	index      int
	statesSeen int
}

type procFrame struct {
	typ     byte
	payload []byte
	err     error
}

// coordinator owns the worker pool and the run-wide accounting.
type coordinator struct {
	cfg *Config
	h   *hello
	// ctx is the run-scoped context every worker subprocess is launched
	// under — not a phase context, or replacements spawned mid-phase
	// would be torn down when the phase ends.
	ctx   context.Context
	rows  int
	cols  int
	rec   obs.Recorder
	stats Stats

	mu       sync.Mutex
	states   [][]byte // cumulative phase broadcasts, replayed to fresh workers
	restarts int
	next     int // next worker index to assign
}

// Run executes the configured job across worker subprocesses. The
// returned pairs are bit-identical to the single-process streamed
// driver at the same (data, seed, parameters).
func Run(cfg Config) (*Result, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	fs, err := matrix.OpenFileSource(cfg.Path)
	if err != nil {
		return nil, err
	}
	rec := obs.OrNop(cfg.Recorder)
	co := &coordinator{
		cfg:  &cfg,
		rows: fs.NumRows(),
		cols: fs.NumCols(),
		rec:  rec,
		h: &hello{
			Algo:         cfg.Algorithm,
			Path:         cfg.Path,
			K:            cfg.K,
			R:            cfg.R,
			L:            cfg.L,
			SampleBudget: cfg.SampleBudget,
			Seed:         cfg.Seed,
			Threshold:    cfg.Threshold,
			Delta:        cfg.Delta,
		},
	}
	co.stats.Rows, co.stats.Cols = co.rows, co.cols

	ctx, cancel := context.WithCancel(cfg.context())
	defer cancel()
	co.ctx = ctx

	procs := make([]*proc, 0, cfg.Workers)
	defer func() {
		for _, p := range procs {
			co.quit(p)
		}
	}()
	for i := 0; i < cfg.Workers; i++ {
		p, err := co.spawn()
		if err != nil {
			return nil, err
		}
		procs = append(procs, p)
	}

	cand, err := co.candidates(ctx, procs)
	if err != nil {
		return nil, err
	}
	co.stats.Candidates = len(cand)
	rec.Add(obs.CounterCandidates, int64(len(cand)))

	var out []Pair
	if cfg.SkipVerify {
		pairs.SortScored(cand)
		out = make([]Pair, len(cand))
		for i, p := range cand {
			out[i] = Pair{I: int(p.I), J: int(p.J), Estimate: p.Estimate}
		}
	} else {
		verified, err := co.verify(ctx, procs, cand)
		if err != nil {
			return nil, err
		}
		co.stats.Verified = len(verified)
		rec.Add(obs.CounterPairsVerified, int64(len(verified)))
		rec.Add(obs.CounterFalsePositives, int64(len(cand)-len(verified)))
		pairs.SortScored(verified)
		out = make([]Pair, len(verified))
		for i, p := range verified {
			out[i] = Pair{I: int(p.I), J: int(p.J), Estimate: p.Estimate, Similarity: p.Exact}
		}
	}
	co.mu.Lock()
	co.stats.Restarts = co.restarts
	co.mu.Unlock()
	return &Result{Pairs: out, Stats: co.stats}, nil
}

// candidates runs the algorithm's pre-verification phases and returns
// the candidate set.
func (co *coordinator) candidates(ctx context.Context, procs []*proc) ([]pairs.Scored, error) {
	cfg := co.cfg
	switch cfg.Algorithm {
	case MinHash, KMinHash, MinLSH:
		if err := co.sigPhase(ctx, procs); err != nil {
			return nil, err
		}
		return co.candPhase(ctx, procs)
	case BPS:
		return co.bpsPhases(ctx, procs)
	}
	return nil, fmt.Errorf("dist: unsupported algorithm %v", cfg.Algorithm)
}

// sigPhase folds the row ranges on the workers, merges the snapshots
// in arrival order with the exact Merge — pointwise minima for MH,
// bounded multiset union for K-MH, both order-free — and broadcasts
// the merged state back.
func (co *coordinator) sigPhase(ctx context.Context, procs []*proc) error {
	end := co.span(obs.PhaseSignatures)
	jobs := rangeJobs(jobSig, co.rows, co.cfg.RowJobs)
	var mhMerged *minhash.FoldState
	var kmhMerged *kminhash.FoldState
	err := co.runPhase(ctx, procs, jobs, func(_ int, payload []byte) error {
		switch co.cfg.Algorithm {
		case MinHash, MinLSH:
			st, err := minhash.ReadFoldState(bytes.NewReader(payload))
			if err != nil {
				return errPermanent{fmt.Errorf("dist: decoding worker snapshot: %w", err)}
			}
			if mhMerged == nil {
				mhMerged = st
				return nil
			}
			return minhash.Merge(mhMerged, st)
		default:
			st, err := kminhash.ReadFoldState(bytes.NewReader(payload))
			if err != nil {
				return errPermanent{fmt.Errorf("dist: decoding worker snapshot: %w", err)}
			}
			if kmhMerged == nil {
				kmhMerged = st
				return nil
			}
			return kminhash.Merge(kmhMerged, st)
		}
	})
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	switch co.cfg.Algorithm {
	case MinHash, MinLSH:
		err = mhMerged.Snapshot(&buf)
	default:
		err = kmhMerged.Snapshot(&buf)
	}
	if err != nil {
		return err
	}
	co.addState(encodeState(stateSig, buf.Bytes()))
	co.stats.SignatureTime = end()
	return nil
}

// candPhase distributes candidate generation: column ranges for the
// counting schemes, band ranges for M-LSH. Both partitions are exact —
// a pair is owned by exactly one column, and within a band by exactly
// one bucket — so the union equals the serial set.
func (co *coordinator) candPhase(ctx context.Context, procs []*proc) ([]pairs.Scored, error) {
	end := co.span(obs.PhaseCandidates)
	defer func() { co.stats.CandidateTime = end() }()
	cfg := co.cfg
	if cfg.Algorithm == MinLSH {
		jobs := rangeJobs(jobBands, cfg.L, cfg.Workers)
		set := pairs.NewSet(0)
		var bucketPairs int64
		err := co.runPhase(ctx, procs, jobs, func(_ int, payload []byte) error {
			res, err := decodeBandsResult(payload)
			if err != nil {
				return errPermanent{err}
			}
			for _, band := range res.Bands {
				bucketPairs += band.BucketPairs
				for _, p := range band.Pairs {
					set.Add(p.I, p.J)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		co.rec.Add(obs.CounterBucketPairs, bucketPairs)
		cand := make([]pairs.Scored, 0, set.Len())
		for _, p := range set.Slice() {
			cand = append(cand, pairs.Scored{Pair: p})
		}
		return cand, nil
	}
	jobs := rangeJobs(jobCand, co.cols, cfg.Workers)
	var cand []pairs.Scored
	var increments int64
	err := co.runPhase(ctx, procs, jobs, func(_ int, payload []byte) error {
		res, err := decodeCandResult(payload)
		if err != nil {
			return errPermanent{err}
		}
		increments += res.Increments
		cand = append(cand, res.Cand...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	co.rec.Add(obs.CounterIncrements, increments)
	return cand, nil
}

// bpsPhases runs the support pass, broadcasts the global supports (the
// sampler's bias input must be global — acceptance probabilities and
// the seed mix derive from it), samples the row ranges, and finalizes
// the additive count merge.
func (co *coordinator) bpsPhases(ctx context.Context, procs []*proc) ([]pairs.Scored, error) {
	end := co.span(obs.PhaseSignatures)
	sup := make([]int64, co.cols)
	jobs := rangeJobs(jobSupports, co.rows, co.cfg.RowJobs)
	err := co.runPhase(ctx, procs, jobs, func(_ int, payload []byte) error {
		part, err := decodeSupports(payload)
		if err != nil {
			return errPermanent{err}
		}
		if len(part) != len(sup) {
			return errPermanent{fmt.Errorf("dist: worker supports cover %d of %d columns", len(part), len(sup))}
		}
		for i, s := range part {
			sup[i] += s
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	co.addState(encodeState(stateSupports, encodeSupports(sup)))
	co.stats.SignatureTime = end()

	end = co.span(obs.PhaseCandidates)
	counts := make(map[uint64]int64)
	var inspected int64
	jobs = rangeJobs(jobSample, co.rows, co.cfg.RowJobs)
	err = co.runPhase(ctx, procs, jobs, func(_ int, payload []byte) error {
		res, err := decodeSampleResult(payload)
		if err != nil {
			return errPermanent{err}
		}
		inspected += res.Inspected
		for i, k := range res.Keys {
			counts[k] += res.Counts[i]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	opt := bps.Options{
		Threshold: co.cfg.Threshold,
		Delta:     co.cfg.Delta,
		Budget:    co.cfg.SampleBudget,
		Seed:      co.cfg.Seed,
	}
	cand, bst, err := bps.FinalizeCounts(counts, sup, opt)
	if err != nil {
		return nil, err
	}
	co.rec.Add(obs.CounterPairsSampled, inspected)
	co.rec.Add(obs.CounterSampleAccepts, bst.Accepts)
	if bst.Dups != 0 {
		co.rec.Add(obs.CounterSampleDups, bst.Dups)
	}
	co.stats.CandidateTime = end()
	return cand, nil
}

// verify sorts the candidates by pair key — the wire codec needs
// ascending runs, and the final similarity sort makes candidate order
// irrelevant to the output — splits them into contiguous ranges, and
// fans the exact pruning pass out.
func (co *coordinator) verify(ctx context.Context, procs []*proc, cand []pairs.Scored) ([]pairs.Scored, error) {
	end := co.span(obs.PhaseVerify)
	defer func() { co.stats.VerifyTime = end() }()
	if len(cand) == 0 {
		return nil, nil
	}
	sort.Slice(cand, func(a, b int) bool { return pairKey(cand[a].Pair) < pairKey(cand[b].Pair) })
	njobs := co.cfg.Workers
	if njobs > len(cand) {
		njobs = len(cand)
	}
	bounds := splitRange(len(cand), njobs)
	jobs := make([]*job, njobs)
	for i := 0; i < njobs; i++ {
		jobs[i] = &job{Kind: jobVerify, Cand: cand[bounds[i]:bounds[i+1]]}
	}
	var verified []pairs.Scored
	err := co.runPhase(ctx, procs, jobs, func(jobIdx int, payload []byte) error {
		res, err := decodeVerifyResult(payload)
		if err != nil {
			return errPermanent{err}
		}
		base := bounds[jobIdx]
		part := jobs[jobIdx].Cand
		for i, idx := range res.Indices {
			if idx >= len(part) {
				return errPermanent{fmt.Errorf("dist: verify index %d out of range", idx)}
			}
			p := cand[base+idx]
			p.Exact = res.Exact[i]
			verified = append(verified, p)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return verified, nil
}

// runPhase dispatches jobs across the pool: each scheduler slot owns
// one worker subprocess, pulls job indexes from a shared channel, and
// retries a failed job on a fresh subprocess within the restart
// budget. handle is called serially, in arrival order.
func (co *coordinator) runPhase(ctx context.Context, procs []*proc, jobs []*job, handle func(jobIdx int, payload []byte) error) error {
	co.stats.Jobs += len(jobs)
	idxCh := make(chan int)
	pctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	var handleMu sync.Mutex
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		cancel()
	}
	for slot := range procs {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			p := procs[slot]
			for {
				var jobIdx int
				var ok bool
				select {
				case jobIdx, ok = <-idxCh:
					if !ok {
						return
					}
				case <-pctx.Done():
					return
				}
				for {
					payload, err := co.runJobOn(pctx, p, jobs[jobIdx])
					if err == nil {
						handleMu.Lock()
						herr := handle(jobIdx, payload)
						handleMu.Unlock()
						if herr != nil {
							fail(herr)
							return
						}
						break
					}
					if pctx.Err() != nil {
						return
					}
					if permanent(err) {
						fail(err)
						return
					}
					// Transient: kill the worker, burn one restart, and
					// retry the same range on a fresh subprocess.
					co.kill(p)
					np, rerr := co.restart()
					if rerr != nil {
						fail(fmt.Errorf("dist: job %d failed (%v); %w", jobIdx, err, rerr))
						return
					}
					p = np
					procs[slot] = np
				}
			}
		}(slot)
	}
	for i := range jobs {
		select {
		case idxCh <- i:
		case <-pctx.Done():
		}
	}
	close(idxCh)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// runJobOn synchronises the worker's broadcast state, ships one job,
// and waits for its result under the hang timeout.
func (co *coordinator) runJobOn(ctx context.Context, p *proc, jb *job) ([]byte, error) {
	co.mu.Lock()
	pending := co.states[p.statesSeen:]
	co.mu.Unlock()
	for _, s := range pending {
		if err := co.sendFrame(p, frameState, s); err != nil {
			return nil, err
		}
		p.statesSeen++
	}
	if err := co.sendFrame(p, frameJob, jb.encode()); err != nil {
		return nil, err
	}
	timer := time.NewTimer(co.cfg.JobTimeout)
	defer timer.Stop()
	select {
	case fr := <-p.frames:
		if fr.err != nil {
			return nil, fmt.Errorf("dist: worker %d: %w", p.index, fr.err)
		}
		co.ship(int64(len(fr.payload)))
		switch fr.typ {
		case frameResult:
			return fr.payload, nil
		case frameError:
			return nil, errPermanent{fmt.Errorf("dist: worker %d: %s", p.index, fr.payload)}
		default:
			return nil, errPermanent{fmt.Errorf("dist: worker %d sent unexpected frame %q", p.index, fr.typ)}
		}
	case <-timer.C:
		return nil, fmt.Errorf("dist: worker %d exceeded job timeout %v", p.index, co.cfg.JobTimeout)
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// spawn launches and handshakes one worker subprocess under the
// run-scoped context.
func (co *coordinator) spawn() (*proc, error) {
	co.mu.Lock()
	index := co.next
	co.next++
	co.mu.Unlock()
	argv := co.cfg.WorkerArgv
	cmd := exec.CommandContext(co.ctx, argv[0], argv[1:]...)
	cmd.Env = append(append(os.Environ(), co.cfg.Env...),
		fmt.Sprintf("%s=%d", EnvWorkerIndex, index))
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("dist: launching worker: %w", err)
	}
	p := &proc{
		cmd:    cmd,
		stdin:  stdin,
		frames: make(chan procFrame, 4),
		index:  index,
	}
	go func() {
		for {
			typ, payload, err := readFrame(stdout)
			if err != nil {
				p.frames <- procFrame{err: err}
				return
			}
			p.frames <- procFrame{typ: typ, payload: payload}
		}
	}()
	co.mu.Lock()
	co.stats.Workers++
	co.mu.Unlock()
	co.rec.Add(obs.CounterDistWorkers, 1)
	if err := co.handshake(p); err != nil {
		co.kill(p)
		return nil, err
	}
	return p, nil
}

// handshake sends hello and validates the worker's ready answer
// against the coordinator's own view of the dataset.
func (co *coordinator) handshake(p *proc) error {
	if err := co.sendFrame(p, frameHello, co.h.encode()); err != nil {
		return fmt.Errorf("dist: worker %d hello: %w", p.index, err)
	}
	timer := time.NewTimer(co.cfg.JobTimeout)
	defer timer.Stop()
	select {
	case fr := <-p.frames:
		if fr.err != nil {
			return fmt.Errorf("dist: worker %d handshake: %w", p.index, fr.err)
		}
		co.ship(int64(len(fr.payload)))
		if fr.typ == frameError {
			return errPermanent{fmt.Errorf("dist: worker %d: %s", p.index, fr.payload)}
		}
		if fr.typ != frameReady {
			return errPermanent{fmt.Errorf("dist: worker %d answered hello with frame %q", p.index, fr.typ)}
		}
		y, err := decodeReady(fr.payload)
		if err != nil {
			return errPermanent{err}
		}
		if y.Rows != co.rows || y.Cols != co.cols {
			return errPermanent{fmt.Errorf("dist: worker %d sees %dx%d, coordinator %dx%d",
				p.index, y.Rows, y.Cols, co.rows, co.cols)}
		}
		return nil
	case <-timer.C:
		return fmt.Errorf("dist: worker %d handshake timed out", p.index)
	case <-co.ctx.Done():
		return co.ctx.Err()
	}
}

// restart burns one unit of the restart budget and spawns a
// replacement worker with a fresh index.
func (co *coordinator) restart() (*proc, error) {
	co.mu.Lock()
	co.restarts++
	over := co.restarts > co.cfg.MaxRestarts
	co.mu.Unlock()
	if over {
		return nil, fmt.Errorf("dist: restart budget %d exhausted", co.cfg.MaxRestarts)
	}
	co.rec.Add(obs.CounterDistRestarts, 1)
	return co.spawn()
}

// sendFrame writes one frame to the worker and accounts its payload.
func (co *coordinator) sendFrame(p *proc, typ byte, payload []byte) error {
	if err := writeFrame(p.stdin, typ, payload); err != nil {
		return err
	}
	co.ship(int64(len(payload)))
	return nil
}

func (co *coordinator) ship(n int64) {
	co.mu.Lock()
	co.stats.BytesShipped += n
	co.mu.Unlock()
	if n > 0 {
		co.rec.Add(obs.CounterDistBytesShipped, n)
	}
}

// addState appends a phase broadcast; live workers receive it lazily
// before their next job, and replacements replay the whole sequence.
func (co *coordinator) addState(payload []byte) {
	co.mu.Lock()
	co.states = append(co.states, payload)
	co.mu.Unlock()
}

// quit asks a worker to exit and reaps it; kill is the impolite
// variant for workers presumed broken.
func (co *coordinator) quit(p *proc) {
	_ = writeFrame(p.stdin, frameQuit, nil)
	_ = p.stdin.Close()
	done := make(chan struct{})
	go func() { _ = p.cmd.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		_ = p.cmd.Process.Kill()
		<-done
	}
}

func (co *coordinator) kill(p *proc) {
	_ = p.cmd.Process.Kill()
	_ = p.stdin.Close()
	_ = p.cmd.Wait()
}

// span opens an obs phase span; the returned func closes it and
// reports the duration.
func (co *coordinator) span(name string) func() time.Duration {
	co.rec.PhaseStart(name)
	start := time.Now()
	return func() time.Duration {
		d := time.Since(start)
		co.rec.PhaseEnd(name, d)
		return d
	}
}

// rangeJobs splits [0,n) into count contiguous jobs of the given kind
// (count is clamped to n so no job is empty unless n is 0).
func rangeJobs(kind jobKind, n, count int) []*job {
	bounds := splitRange(n, count)
	jobs := make([]*job, len(bounds)-1)
	for i := range jobs {
		jobs[i] = &job{Kind: kind, Lo: bounds[i], Hi: bounds[i+1]}
	}
	return jobs
}

// splitRange returns count+1 even boundaries over [0,n), clamping
// count to [1, max(n,1)].
func splitRange(n, count int) []int {
	if count > n {
		count = n
	}
	if count < 1 {
		count = 1
	}
	bounds := make([]int, count+1)
	for i := 0; i <= count; i++ {
		bounds[i] = n * i / count
	}
	return bounds
}
