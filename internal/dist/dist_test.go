package dist_test

import (
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	assocmine "assocmine"
	"assocmine/internal/dist"
)

const beWorkerEnv = "ASSOCDIST_BE_WORKER"

// TestMain doubles as the worker executable: the coordinator re-execs
// the test binary with beWorkerEnv set, and this hook routes the child
// into WorkerMain before any test machinery runs.
func TestMain(m *testing.M) {
	if os.Getenv(beWorkerEnv) == "1" {
		if err := dist.WorkerMain(os.Stdin, os.Stdout); err != nil {
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// fixture builds a deterministic planted matrix and saves it in both
// binary formats, returning the two paths.
func fixture(t *testing.T) (arows, carows string) {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	const rows, cols = 220, 44
	// Columns 29, 37 and 41 are planted near-copies of 11, 3 and 5;
	// they get no random fill of their own, so the planted pairs sit
	// well above the 0.35 threshold every scheme mines at.
	planted := [][2]int{{3, 37}, {11, 29}, {5, 41}}
	isTarget := func(c int) bool {
		for _, pc := range planted {
			if c == pc[1] {
				return true
			}
		}
		return false
	}
	data := make([][]int, rows)
	for r := range data {
		for c := 0; c < cols; c++ {
			if !isTarget(c) && rng.Float64() < 0.08 {
				data[r] = append(data[r], c)
			}
		}
	}
	for r := range data {
		row := data[r]
		has := func(c int) bool {
			for _, v := range row {
				if v == c {
					return true
				}
			}
			return false
		}
		for _, pc := range planted {
			if has(pc[0]) && rng.Float64() < 0.9 {
				data[r] = append(data[r], pc[1])
			}
		}
		sortInts(data[r])
	}
	d, err := assocmine.NewDatasetFromRows(cols, data)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	arows = filepath.Join(dir, "fixture.arows")
	carows = filepath.Join(dir, "fixture.carows")
	if err := d.SaveRowBinary(arows); err != nil {
		t.Fatal(err)
	}
	if err := d.SaveRowCompressed(carows); err != nil {
		t.Fatal(err)
	}
	return arows, carows
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

// workerArgv returns the re-exec command line for this test binary.
func workerArgv(t *testing.T) []string {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return []string{exe}
}

// reference runs the single-process streamed driver on path.
func reference(t *testing.T, path string, cfg assocmine.Config) *assocmine.Result {
	t.Helper()
	fd, err := assocmine.OpenFileDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	res, err := fd.SimilarPairs(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// comparePairs requires the distributed output to match the
// single-process output bit for bit: same pairs, same order, same
// estimate and similarity float bits.
func comparePairs(t *testing.T, label string, got []dist.Pair, want []assocmine.Pair) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.I != w.I || g.J != w.J || g.Estimate != w.Estimate || g.Similarity != w.Similarity {
			t.Fatalf("%s: pair %d = %+v, want %+v", label, i, g, w)
		}
	}
}

// TestDistMatchesSingleProcess is the differential core: every
// supported scheme, 1 and 4 worker processes, both binary formats,
// identical output to the streamed single-process driver.
func TestDistMatchesSingleProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocess fleets")
	}
	arows, carows := fixture(t)
	schemes := []struct {
		name string
		algo dist.Algo
		cfg  assocmine.Config
	}{
		{"MH", dist.MinHash, assocmine.Config{Algorithm: assocmine.MinHash, Threshold: 0.35, K: 48, Seed: 7}},
		{"KMH", dist.KMinHash, assocmine.Config{Algorithm: assocmine.KMinHash, Threshold: 0.35, K: 32, Seed: 7}},
		{"MLSH", dist.MinLSH, assocmine.Config{Algorithm: assocmine.MinLSH, Threshold: 0.35, K: 30, R: 3, L: 10, Seed: 7}},
		{"MLSH-sampled", dist.MinLSH, assocmine.Config{Algorithm: assocmine.MinLSH, Threshold: 0.35, K: 12, R: 3, L: 8, Seed: 7}},
		{"BPS", dist.BPS, assocmine.Config{Algorithm: assocmine.BPS, Threshold: 0.35, SampleBudget: 8, Seed: 7}},
	}
	for _, sc := range schemes {
		for _, workers := range []int{1, 4} {
			for _, path := range []string{arows, carows} {
				label := sc.name + "/" + filepath.Ext(path) + "/w" + string(rune('0'+workers))
				want := reference(t, path, sc.cfg)
				res, err := dist.Run(dist.Config{
					Path:         path,
					Algorithm:    sc.algo,
					Threshold:    sc.cfg.Threshold,
					K:            sc.cfg.K,
					R:            sc.cfg.R,
					L:            sc.cfg.L,
					SampleBudget: sc.cfg.SampleBudget,
					Seed:         sc.cfg.Seed,
					Workers:      workers,
					WorkerArgv:   workerArgv(t),
					Env:          []string{beWorkerEnv + "=1"},
					JobTimeout:   time.Minute,
				})
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				if len(want.Pairs) == 0 {
					t.Fatalf("%s: fixture found no pairs; test is vacuous", label)
				}
				comparePairs(t, label, res.Pairs, want.Pairs)
				if res.Stats.Workers < workers {
					t.Errorf("%s: stats report %d workers, want >= %d", label, res.Stats.Workers, workers)
				}
				if res.Stats.BytesShipped <= 0 {
					t.Errorf("%s: no bytes shipped", label)
				}
			}
		}
	}
}

// TestDistSkipVerify covers the candidates-only path.
func TestDistSkipVerify(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	arows, _ := fixture(t)
	cfg := assocmine.Config{Algorithm: assocmine.MinHash, Threshold: 0.35, K: 48, Seed: 7, SkipVerify: true}
	want := reference(t, arows, cfg)
	res, err := dist.Run(dist.Config{
		Path: arows, Algorithm: dist.MinHash, Threshold: 0.35, K: 48, Seed: 7,
		SkipVerify: true, Workers: 2,
		WorkerArgv: workerArgv(t), Env: []string{beWorkerEnv + "=1"}, JobTimeout: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	comparePairs(t, "skip-verify", res.Pairs, want.Pairs)
}

// TestDistCrashRestart kills a worker mid-shard — it exits without
// replying to its first job — and requires the bounded restart path to
// reproduce the single-process output exactly.
func TestDistCrashRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	arows, _ := fixture(t)
	cfg := assocmine.Config{Algorithm: assocmine.KMinHash, Threshold: 0.35, K: 32, Seed: 7}
	want := reference(t, arows, cfg)
	res, err := dist.Run(dist.Config{
		Path: arows, Algorithm: dist.KMinHash, Threshold: 0.35, K: 32, Seed: 7,
		Workers: 2, MaxRestarts: 2, JobTimeout: time.Minute,
		WorkerArgv: workerArgv(t),
		Env: []string{
			beWorkerEnv + "=1",
			dist.EnvCrashWorker + "=1", // worker index 1 ...
			dist.EnvCrashAfter + "=0",  // ... dies on its first job
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	comparePairs(t, "crash-restart", res.Pairs, want.Pairs)
	if res.Stats.Restarts < 1 {
		t.Errorf("crash did not consume a restart: %+v", res.Stats)
	}
	if res.Stats.Workers < 3 {
		t.Errorf("expected a replacement worker, got %d launches", res.Stats.Workers)
	}
}

// TestDistHangRestart wedges a worker on its first job; the job
// timeout must detect it, kill it, and finish the run correctly.
func TestDistHangRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses and waits out a timeout")
	}
	arows, _ := fixture(t)
	cfg := assocmine.Config{Algorithm: assocmine.MinHash, Threshold: 0.35, K: 48, Seed: 7}
	want := reference(t, arows, cfg)
	res, err := dist.Run(dist.Config{
		Path: arows, Algorithm: dist.MinHash, Threshold: 0.35, K: 48, Seed: 7,
		Workers: 2, MaxRestarts: 2, JobTimeout: 2 * time.Second,
		WorkerArgv: workerArgv(t),
		Env:        []string{beWorkerEnv + "=1", dist.EnvHangWorker + "=0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	comparePairs(t, "hang-restart", res.Pairs, want.Pairs)
	if res.Stats.Restarts < 1 {
		t.Errorf("hang did not consume a restart: %+v", res.Stats)
	}
}

// TestDistCancellation tears the process tree down mid-run.
func TestDistCancellation(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	arows, _ := fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := dist.Run(dist.Config{
		Path: arows, Algorithm: dist.MinHash, Threshold: 0.35, K: 48, Seed: 7,
		Workers: 1, JobTimeout: time.Hour, Context: ctx,
		WorkerArgv: workerArgv(t),
		// The lone worker hangs forever; only cancellation can end this.
		Env: []string{beWorkerEnv + "=1", dist.EnvHangWorker + "=0"},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v; teardown is not prompt", elapsed)
	}
}

// TestDistRestartBudget aborts when every launch dies before the
// handshake completes.
func TestDistRestartBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns subprocesses")
	}
	arows, _ := fixture(t)
	_, err := dist.Run(dist.Config{
		Path: arows, Algorithm: dist.MinHash, Threshold: 0.35, K: 48, Seed: 7,
		Workers: 1, MaxRestarts: 1, JobTimeout: 10 * time.Second,
		WorkerArgv: []string{"/bin/false"},
	})
	if err == nil {
		t.Fatal("run with unlaunchable workers succeeded")
	}
}

// TestDistConfigValidation covers the coordinator's parameter checks.
func TestDistConfigValidation(t *testing.T) {
	argv := []string{"/bin/true"}
	cases := []dist.Config{
		{},                                  // no path
		{Path: "x.arows"},                   // no argv
		{Path: "x.arows", WorkerArgv: argv}, // no algorithm
		{Path: "x.arows", WorkerArgv: argv, Algorithm: dist.MinHash},                            // no threshold
		{Path: "x.arows", WorkerArgv: argv, Algorithm: dist.MinHash, Threshold: 1.5},            // bad threshold
		{Path: "x.arows", WorkerArgv: argv, Algorithm: dist.MinLSH, Threshold: 0.5, K: 3, R: 5}, // K < R
	}
	for i, cfg := range cases {
		if _, err := dist.Run(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}
