// Package dist is the multi-process scale-out executor: a coordinator
// that partitions a dataset into row ranges, launches N worker
// subprocesses speaking the repository's existing binary codecs over
// stdin/stdout pipes, merges per-worker sketch fold-states with the
// exact Merge of the sketch packages, unions per-worker candidate sets
// with exact dedup, and fans verification back out by candidate range.
// At a fixed seed the distributed output is bit-identical to the
// single-process streamed drivers: min-hash fold merges are pointwise
// minima (order-free), bottom-k merges are multiset unions (Finish
// sorts), candidate generation partitions by the owning column or
// band, BPS accept decisions are pure (seed,row,pair) hashes, and the
// final SortScored is a total order on distinct pairs.
//
// Wire protocol. Each direction is a stream of frames:
//
//	[1 byte type][uint32 LE payload length][payload]
//
// The coordinator opens with a hello frame ('H') carrying the dataset
// path and mining parameters; the worker opens the dataset itself
// (same machine, shared file system — only sketches, candidate runs
// and verdicts cross the pipe, never rows) and answers ready ('Y')
// with the dimensions it saw, which must match the coordinator's.
// Phases then proceed as state frames ('S', broadcast inputs such as a
// merged fold-state snapshot or the global supports) and job frames
// ('J') answered by result frames ('R'). A worker that hits a
// permanent fault answers 'E' with a message, aborting the run; 'Q'
// asks the worker to exit. Candidate sets travel as Rice-coded sorted
// pair-key runs — the same codec family as ".carows" shards — with
// raw float64 estimate bits alongside.
package dist

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"assocmine/internal/bitpack"
	"assocmine/internal/lsh"
	"assocmine/internal/pairs"
)

// protoVersion is bumped whenever the frame layout changes; hello
// carries it and workers reject mismatches.
const protoVersion = 1

// Frame types.
const (
	frameHello  = 'H' // coordinator → worker: version + parameters
	frameReady  = 'Y' // worker → coordinator: dataset dimensions
	frameState  = 'S' // coordinator → worker: broadcast phase input
	frameJob    = 'J' // coordinator → worker: one work item
	frameResult = 'R' // worker → coordinator: job output
	frameError  = 'E' // worker → coordinator: permanent failure
	frameQuit   = 'Q' // coordinator → worker: clean shutdown
)

// maxFramePayload bounds a frame before allocation; a corrupt length
// field must not size a buffer.
const maxFramePayload = 1 << 30

// writeFrame emits one frame. The writer is typically buffered; the
// caller flushes after each logical message.
func writeFrame(w io.Writer, typ byte, payload []byte) error {
	if len(payload) > maxFramePayload {
		return fmt.Errorf("dist: frame payload %d exceeds limit", len(payload))
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame, bounding the payload before allocating.
func readFrame(r io.Reader) (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	if n > maxFramePayload {
		return 0, nil, fmt.Errorf("dist: frame payload %d exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, fmt.Errorf("dist: truncated frame: %w", err)
	}
	return hdr[0], payload, nil
}

// Algo selects the mining scheme a distributed run executes. Only the
// schemes whose candidate phases partition cleanly are supported;
// Apriori and H-LSH remain single-process.
type Algo uint8

const (
	MinHash  Algo = 1 // MH signatures + Row-Sorting candidates
	KMinHash Algo = 2 // bottom-k sketches + Hash-Count cascade
	MinLSH   Algo = 3 // MH signatures + banded LSH
	BPS      Algo = 4 // support pass + biased pair sampling
)

func (a Algo) String() string {
	switch a {
	case MinHash:
		return "MinHash"
	case KMinHash:
		return "KMinHash"
	case MinLSH:
		return "MinLSH"
	case BPS:
		return "BPS"
	}
	return fmt.Sprintf("Algo(%d)", uint8(a))
}

// hello carries the run parameters from coordinator to worker. Both
// sides derive every downstream constant (cutoffs, band layouts,
// sampling scales) from these by the same formulas, so they cannot
// drift.
type hello struct {
	Algo         Algo
	Path         string
	K, R, L      int
	SampleBudget int
	Seed         uint64
	Threshold    float64
	Delta        float64
}

func (h *hello) encode() []byte {
	var b bytes.Buffer
	b.WriteByte(protoVersion)
	b.WriteByte(byte(h.Algo))
	putUvarint(&b, uint64(len(h.Path)))
	b.WriteString(h.Path)
	putUvarint(&b, uint64(h.K))
	putUvarint(&b, uint64(h.R))
	putUvarint(&b, uint64(h.L))
	putUvarint(&b, uint64(h.SampleBudget))
	putU64(&b, h.Seed)
	putU64(&b, math.Float64bits(h.Threshold))
	putU64(&b, math.Float64bits(h.Delta))
	return b.Bytes()
}

func decodeHello(p []byte) (*hello, error) {
	r := bytes.NewReader(p)
	ver, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("dist: hello: %w", err)
	}
	if ver != protoVersion {
		return nil, fmt.Errorf("dist: protocol version %d, worker speaks %d", ver, protoVersion)
	}
	algo, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("dist: hello: %w", err)
	}
	h := &hello{Algo: Algo(algo)}
	pathLen, err := getUvarint(r, 1<<16)
	if err != nil {
		return nil, fmt.Errorf("dist: hello path: %w", err)
	}
	path := make([]byte, pathLen)
	if _, err := io.ReadFull(r, path); err != nil {
		return nil, fmt.Errorf("dist: hello path: %w", err)
	}
	h.Path = string(path)
	for _, dst := range []*int{&h.K, &h.R, &h.L, &h.SampleBudget} {
		v, err := getUvarint(r, 1<<31)
		if err != nil {
			return nil, fmt.Errorf("dist: hello: %w", err)
		}
		*dst = int(v)
	}
	if h.Seed, err = getU64(r); err != nil {
		return nil, fmt.Errorf("dist: hello: %w", err)
	}
	tb, err := getU64(r)
	if err != nil {
		return nil, fmt.Errorf("dist: hello: %w", err)
	}
	db, err := getU64(r)
	if err != nil {
		return nil, fmt.Errorf("dist: hello: %w", err)
	}
	h.Threshold = math.Float64frombits(tb)
	h.Delta = math.Float64frombits(db)
	return h, nil
}

// ready answers hello with the dimensions the worker's own open saw.
type ready struct {
	Rows, Cols int
}

func (y *ready) encode() []byte {
	var b bytes.Buffer
	putUvarint(&b, uint64(y.Rows))
	putUvarint(&b, uint64(y.Cols))
	return b.Bytes()
}

func decodeReady(p []byte) (*ready, error) {
	r := bytes.NewReader(p)
	rows, err := getUvarint(r, 1<<31)
	if err != nil {
		return nil, fmt.Errorf("dist: ready: %w", err)
	}
	cols, err := getUvarint(r, 1<<31)
	if err != nil {
		return nil, fmt.Errorf("dist: ready: %w", err)
	}
	return &ready{Rows: int(rows), Cols: int(cols)}, nil
}

// Job kinds.
type jobKind uint8

const (
	jobSig      jobKind = 1 // fold rows [Lo,Hi) → AMF1/KMF1 snapshot
	jobSupports jobKind = 2 // count rows [Lo,Hi) → per-column supports
	jobSample   jobKind = 3 // BPS-sample rows [Lo,Hi) → pair counts
	jobCand     jobKind = 4 // generate candidates of columns [Lo,Hi)
	jobBands    jobKind = 5 // generate collisions of bands [Lo,Hi)
	jobVerify   jobKind = 6 // exact-verify the attached candidates
)

// job is one unit of distributable work.
type job struct {
	Kind   jobKind
	Lo, Hi int            // row, column, or band range by Kind
	Cand   []pairs.Scored // jobVerify: candidates sorted by pair key
}

func (j *job) encode() []byte {
	var b bytes.Buffer
	b.WriteByte(byte(j.Kind))
	if j.Kind == jobVerify {
		encodeScoredRun(&b, j.Cand)
		return b.Bytes()
	}
	putUvarint(&b, uint64(j.Lo))
	putUvarint(&b, uint64(j.Hi))
	return b.Bytes()
}

func decodeJob(p []byte) (*job, error) {
	r := bytes.NewReader(p)
	kind, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("dist: job: %w", err)
	}
	j := &job{Kind: jobKind(kind)}
	switch j.Kind {
	case jobVerify:
		if j.Cand, err = decodeScoredRun(r); err != nil {
			return nil, fmt.Errorf("dist: verify job: %w", err)
		}
	case jobSig, jobSupports, jobSample, jobCand, jobBands:
		lo, err := getUvarint(r, 1<<31)
		if err != nil {
			return nil, fmt.Errorf("dist: job range: %w", err)
		}
		hi, err := getUvarint(r, 1<<31)
		if err != nil {
			return nil, fmt.Errorf("dist: job range: %w", err)
		}
		j.Lo, j.Hi = int(lo), int(hi)
		if j.Lo > j.Hi {
			return nil, fmt.Errorf("dist: job range [%d,%d) inverted", j.Lo, j.Hi)
		}
	default:
		return nil, fmt.Errorf("dist: unknown job kind %d", kind)
	}
	return j, nil
}

// State kinds (frameState payloads).
const (
	stateSig      = 1 // merged AMF1/KMF1 fold-state snapshot
	stateSupports = 2 // global per-column supports (BPS)
)

func encodeState(kind byte, blob []byte) []byte {
	out := make([]byte, 1+len(blob))
	out[0] = kind
	copy(out[1:], blob)
	return out
}

// encodeSupports / decodeSupports carry the per-column support counts.
func encodeSupports(sup []int64) []byte {
	var b bytes.Buffer
	putUvarint(&b, uint64(len(sup)))
	for _, s := range sup {
		putUvarint(&b, uint64(s))
	}
	return b.Bytes()
}

func decodeSupports(p []byte) ([]int64, error) {
	r := bytes.NewReader(p)
	n, err := getUvarint(r, 1<<31)
	if err != nil {
		return nil, fmt.Errorf("dist: supports: %w", err)
	}
	if int64(n) > int64(len(p)) {
		return nil, fmt.Errorf("dist: supports count %d exceeds payload", n)
	}
	sup := make([]int64, n)
	for i := range sup {
		v, err := getUvarint(r, 1<<62)
		if err != nil {
			return nil, fmt.Errorf("dist: supports[%d]: %w", i, err)
		}
		sup[i] = int64(v)
	}
	return sup, nil
}

// candResult is the output of a jobCand: the range's candidates in
// emission order plus the counter-increment work measure.
type candResult struct {
	Increments int64
	Cand       []pairs.Scored
}

func (c *candResult) encode() []byte {
	var b bytes.Buffer
	putUvarint(&b, uint64(c.Increments))
	encodeScoredRun(&b, c.Cand)
	return b.Bytes()
}

func decodeCandResult(p []byte) (*candResult, error) {
	r := bytes.NewReader(p)
	inc, err := getUvarint(r, 1<<62)
	if err != nil {
		return nil, fmt.Errorf("dist: cand result: %w", err)
	}
	cand, err := decodeScoredRun(r)
	if err != nil {
		return nil, fmt.Errorf("dist: cand result: %w", err)
	}
	return &candResult{Increments: int64(inc), Cand: cand}, nil
}

// bandsResult is the output of a jobBands.
type bandsResult struct {
	Bands []lsh.BandPairs
}

func (b *bandsResult) encode() []byte {
	var buf bytes.Buffer
	putUvarint(&buf, uint64(len(b.Bands)))
	for _, bp := range b.Bands {
		putUvarint(&buf, uint64(bp.Band))
		putUvarint(&buf, uint64(bp.BucketPairs))
		keys := make([]uint64, len(bp.Pairs))
		for i, p := range bp.Pairs {
			keys[i] = pairKey(p)
		}
		encodeKeyRun(&buf, keys)
	}
	return buf.Bytes()
}

func decodeBandsResult(p []byte) (*bandsResult, error) {
	r := bytes.NewReader(p)
	n, err := getUvarint(r, 1<<20)
	if err != nil {
		return nil, fmt.Errorf("dist: bands result: %w", err)
	}
	out := &bandsResult{Bands: make([]lsh.BandPairs, 0, n)}
	for i := uint64(0); i < n; i++ {
		band, err := getUvarint(r, 1<<31)
		if err != nil {
			return nil, fmt.Errorf("dist: band %d: %w", i, err)
		}
		bucketPairs, err := getUvarint(r, 1<<62)
		if err != nil {
			return nil, fmt.Errorf("dist: band %d: %w", i, err)
		}
		keys, err := decodeKeyRun(r)
		if err != nil {
			return nil, fmt.Errorf("dist: band %d: %w", i, err)
		}
		bp := lsh.BandPairs{Band: int(band), BucketPairs: int64(bucketPairs)}
		bp.Pairs = make([]pairs.Pair, len(keys))
		for j, k := range keys {
			bp.Pairs[j] = keyPair(k)
		}
		out.Bands = append(out.Bands, bp)
	}
	return out, nil
}

// sampleResult is the output of a jobSample: the range's accepted
// counts (keys ascending) and the inspected-draw tally.
type sampleResult struct {
	Inspected int64
	Keys      []uint64
	Counts    []int64
}

func (s *sampleResult) encode() []byte {
	var b bytes.Buffer
	putUvarint(&b, uint64(s.Inspected))
	encodeKeyRun(&b, s.Keys)
	for _, c := range s.Counts {
		putUvarint(&b, uint64(c))
	}
	return b.Bytes()
}

func decodeSampleResult(p []byte) (*sampleResult, error) {
	r := bytes.NewReader(p)
	insp, err := getUvarint(r, 1<<62)
	if err != nil {
		return nil, fmt.Errorf("dist: sample result: %w", err)
	}
	keys, err := decodeKeyRun(r)
	if err != nil {
		return nil, fmt.Errorf("dist: sample result: %w", err)
	}
	counts := make([]int64, len(keys))
	for i := range counts {
		v, err := getUvarint(r, 1<<62)
		if err != nil {
			return nil, fmt.Errorf("dist: sample count %d: %w", i, err)
		}
		counts[i] = int64(v)
	}
	return &sampleResult{Inspected: int64(insp), Keys: keys, Counts: counts}, nil
}

// verifyResult is the output of a jobVerify: the surviving candidates
// as ascending indices into the job's candidate list plus their exact
// similarities.
type verifyResult struct {
	Indices []int
	Exact   []float64
}

func (v *verifyResult) encode() []byte {
	var b bytes.Buffer
	putUvarint(&b, uint64(len(v.Indices)))
	prev := -1
	for _, idx := range v.Indices {
		putUvarint(&b, uint64(idx-prev-1))
		prev = idx
	}
	for _, e := range v.Exact {
		putU64(&b, math.Float64bits(e))
	}
	return b.Bytes()
}

func decodeVerifyResult(p []byte) (*verifyResult, error) {
	r := bytes.NewReader(p)
	n, err := getUvarint(r, 1<<31)
	if err != nil {
		return nil, fmt.Errorf("dist: verify result: %w", err)
	}
	if int64(n) > int64(len(p)) {
		return nil, fmt.Errorf("dist: verify result count %d exceeds payload", n)
	}
	v := &verifyResult{Indices: make([]int, n), Exact: make([]float64, n)}
	prev := -1
	for i := range v.Indices {
		d, err := getUvarint(r, 1<<31)
		if err != nil {
			return nil, fmt.Errorf("dist: verify index %d: %w", i, err)
		}
		v.Indices[i] = prev + 1 + int(d)
		prev = v.Indices[i]
	}
	for i := range v.Exact {
		bits, err := getU64(r)
		if err != nil {
			return nil, fmt.Errorf("dist: verify exact %d: %w", i, err)
		}
		v.Exact[i] = math.Float64frombits(bits)
	}
	return v, nil
}

// pairKey maps a canonical pair to its wire key; keys order like
// (I, J).
func pairKey(p pairs.Pair) uint64 {
	return uint64(uint32(p.I))<<32 | uint64(uint32(p.J))
}

func keyPair(k uint64) pairs.Pair {
	return pairs.Pair{I: int32(k >> 32), J: int32(k)}
}

// encodeKeyRun writes a strictly ascending key sequence as a Rice-coded
// run: uvarint count, absolute first key, the Rice parameter chosen by
// exact cost search, then delta-1 codes, byte-aligned — the candidate
// analogue of the ".carows" row codec.
func encodeKeyRun(b *bytes.Buffer, keys []uint64) {
	putUvarint(b, uint64(len(keys)))
	if len(keys) == 0 {
		return
	}
	putUvarint(b, keys[0])
	deltas := make([]uint64, len(keys)-1)
	for i := 1; i < len(keys); i++ {
		deltas[i-1] = keys[i] - keys[i-1] - 1
	}
	k, _ := bitpack.BestRiceK(deltas)
	b.WriteByte(byte(k))
	pw := bitpack.NewWriter(b)
	for _, d := range deltas {
		pw.WriteRice(d, k)
	}
	pw.Flush() // writes to a bytes.Buffer; cannot fail
}

// decodeKeyRun reverses encodeKeyRun, validating strict ascent (which
// the delta-1 coding guarantees structurally) and bounding the count
// against the remaining payload.
func decodeKeyRun(r *bytes.Reader) ([]uint64, error) {
	n, err := getUvarint(r, 1<<31)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	// Each key past the first costs at least one bit on the wire.
	if int64(n-1) > int64(r.Len())*8 {
		return nil, fmt.Errorf("key run count %d exceeds payload", n)
	}
	keys := make([]uint64, n)
	if keys[0], err = binary.ReadUvarint(r); err != nil {
		return nil, fmt.Errorf("first key: %w", err)
	}
	kb, err := r.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("rice parameter: %w", err)
	}
	if kb > 63 {
		return nil, fmt.Errorf("rice parameter %d out of range", kb)
	}
	pr := bitpack.NewReader(r)
	prev := keys[0]
	for i := uint64(1); i < n; i++ {
		d, err := pr.ReadRice(uint(kb))
		if err != nil {
			return nil, fmt.Errorf("key %d: %w", i, err)
		}
		next := prev + 1 + d
		if next <= prev {
			return nil, fmt.Errorf("key %d overflows", i)
		}
		keys[i] = next
		prev = next
	}
	pr.Align()
	return keys, nil
}

// encodeScoredRun writes candidates sorted by pair key: a key run plus
// raw float64 estimate bits.
func encodeScoredRun(b *bytes.Buffer, cand []pairs.Scored) {
	keys := make([]uint64, len(cand))
	for i, p := range cand {
		keys[i] = pairKey(p.Pair)
	}
	encodeKeyRun(b, keys)
	for _, p := range cand {
		putU64(b, math.Float64bits(p.Estimate))
	}
}

func decodeScoredRun(r *bytes.Reader) ([]pairs.Scored, error) {
	keys, err := decodeKeyRun(r)
	if err != nil {
		return nil, err
	}
	out := make([]pairs.Scored, len(keys))
	for i, k := range keys {
		out[i].Pair = keyPair(k)
		bits, err := getU64(r)
		if err != nil {
			return nil, fmt.Errorf("estimate %d: %w", i, err)
		}
		out[i].Estimate = math.Float64frombits(bits)
	}
	return out, nil
}

func putUvarint(b *bytes.Buffer, v uint64) {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	b.Write(tmp[:n])
}

// getUvarint reads a uvarint and rejects values above limit — length
// and count fields must never size an allocation unchecked.
func getUvarint(r *bytes.Reader, limit uint64) (uint64, error) {
	v, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, err
	}
	if v > limit {
		return 0, fmt.Errorf("value %d exceeds limit %d", v, limit)
	}
	return v, nil
}

func putU64(b *bytes.Buffer, v uint64) {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v)
	b.Write(tmp[:])
}

func getU64(r *bytes.Reader) (uint64, error) {
	var tmp [8]byte
	if _, err := io.ReadFull(r, tmp[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(tmp[:]), nil
}
