package dist

import (
	"bytes"
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/lsh"
	"assocmine/internal/pairs"
)

func TestHelloRoundTrip(t *testing.T) {
	in := &hello{
		Algo: KMinHash, Path: "/tmp/data.carows",
		K: 100, R: 5, L: 20, SampleBudget: 32,
		Seed: 0xfeedface, Threshold: 0.375, Delta: 0.2,
	}
	out, err := decodeHello(in.encode())
	if err != nil {
		t.Fatal(err)
	}
	if *out != *in {
		t.Fatalf("round trip: %+v, want %+v", out, in)
	}
}

func TestHelloRejectsVersionMismatch(t *testing.T) {
	p := (&hello{Algo: MinHash, Path: "x", Threshold: 0.5}).encode()
	p[0] = protoVersion + 1
	if _, err := decodeHello(p); err == nil {
		t.Fatal("version mismatch accepted")
	}
}

func TestKeyRunRoundTrip(t *testing.T) {
	rng := hashing.NewSplitMix64(41)
	for trial := 0; trial < 30; trial++ {
		n := int(rng.Next() % 200)
		keys := make([]uint64, 0, n)
		cur := rng.Next() % 1000
		for i := 0; i < n; i++ {
			cur += 1 + rng.Next()%int64max(1, 1<<(rng.Next()%20))
			keys = append(keys, cur)
		}
		var b bytes.Buffer
		encodeKeyRun(&b, keys)
		got, err := decodeKeyRun(bytes.NewReader(b.Bytes()))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if len(got) != len(keys) {
			t.Fatalf("trial %d: %d keys, want %d", trial, len(got), len(keys))
		}
		for i := range keys {
			if got[i] != keys[i] {
				t.Fatalf("trial %d: key %d = %d, want %d", trial, i, got[i], keys[i])
			}
		}
	}
}

func int64max(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

func TestScoredRunRoundTrip(t *testing.T) {
	cand := []pairs.Scored{
		{Pair: pairs.Pair{I: 0, J: 1}, Estimate: 0.5},
		{Pair: pairs.Pair{I: 0, J: 9}, Estimate: 0.25},
		{Pair: pairs.Pair{I: 3, J: 4}, Estimate: 1},
		{Pair: pairs.Pair{I: 100, J: 40000}, Estimate: 0.333},
	}
	var b bytes.Buffer
	encodeScoredRun(&b, cand)
	got, err := decodeScoredRun(bytes.NewReader(b.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(cand) {
		t.Fatalf("%d candidates, want %d", len(got), len(cand))
	}
	for i := range cand {
		if got[i].Pair != cand[i].Pair || got[i].Estimate != cand[i].Estimate {
			t.Fatalf("candidate %d = %+v, want %+v", i, got[i], cand[i])
		}
	}
}

func TestVerifyResultRoundTrip(t *testing.T) {
	in := &verifyResult{Indices: []int{0, 3, 4, 17}, Exact: []float64{0.9, 0.5, 0.41, 1}}
	got, err := decodeVerifyResult(in.encode())
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Indices {
		if got.Indices[i] != in.Indices[i] || got.Exact[i] != in.Exact[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, got, in)
		}
	}
}

func TestBandsResultRoundTrip(t *testing.T) {
	in := &bandsResult{Bands: []lsh.BandPairs{
		{Band: 2, BucketPairs: 17, Pairs: []pairs.Pair{{I: 1, J: 2}, {I: 1, J: 5}, {I: 4, J: 9}}},
		{Band: 3, BucketPairs: 0, Pairs: nil},
	}}
	got, err := decodeBandsResult(in.encode())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Bands) != 2 || got.Bands[0].Band != 2 || got.Bands[0].BucketPairs != 17 ||
		got.Bands[1].Band != 3 || len(got.Bands[1].Pairs) != 0 {
		t.Fatalf("bands differ: %+v", got)
	}
	for i, p := range in.Bands[0].Pairs {
		if got.Bands[0].Pairs[i] != p {
			t.Fatalf("band pair %d = %v, want %v", i, got.Bands[0].Pairs[i], p)
		}
	}
}

func TestJobRoundTrip(t *testing.T) {
	rj := &job{Kind: jobSig, Lo: 10, Hi: 250}
	got, err := decodeJob(rj.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != rj.Kind || got.Lo != rj.Lo || got.Hi != rj.Hi {
		t.Fatalf("job = %+v, want %+v", got, rj)
	}
	vj := &job{Kind: jobVerify, Cand: []pairs.Scored{{Pair: pairs.Pair{I: 2, J: 7}, Estimate: 0.5}}}
	got, err = decodeJob(vj.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != jobVerify || len(got.Cand) != 1 || got.Cand[0] != vj.Cand[0] {
		t.Fatalf("verify job = %+v, want %+v", got, vj)
	}
	if _, err := decodeJob([]byte{byte(jobSig), 5, 2}); err == nil {
		t.Fatal("inverted range accepted")
	}
}

func TestSplitRange(t *testing.T) {
	for _, tc := range []struct{ n, count, jobs int }{
		{100, 4, 4}, {3, 8, 3}, {0, 4, 1}, {1, 1, 1},
	} {
		b := splitRange(tc.n, tc.count)
		if len(b)-1 != tc.jobs {
			t.Errorf("splitRange(%d,%d): %d jobs, want %d", tc.n, tc.count, len(b)-1, tc.jobs)
		}
		if b[0] != 0 || b[len(b)-1] != tc.n {
			t.Errorf("splitRange(%d,%d) = %v: bad bounds", tc.n, tc.count, b)
		}
		for i := 1; i < len(b); i++ {
			if b[i] < b[i-1] {
				t.Errorf("splitRange(%d,%d) = %v: not monotone", tc.n, tc.count, b)
			}
		}
	}
}
