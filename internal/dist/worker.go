package dist

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"time"

	"assocmine/internal/bps"
	"assocmine/internal/candidate"
	"assocmine/internal/kminhash"
	"assocmine/internal/lsh"
	"assocmine/internal/matrix"
	"assocmine/internal/minhash"
	"assocmine/internal/pairs"
	"assocmine/internal/verify"
)

// Fault-injection environment variables, read by workers and set by
// the chaos tests. The coordinator stamps each worker process with its
// launch index via EnvWorkerIndex; a test selecting
// EnvCrashWorker=idx, EnvCrashAfter=n makes that worker exit(3) upon
// receiving its (n+1)-th job — mid-shard, before any reply — and
// EnvHangWorker=idx makes the worker sit on a job forever, exercising
// the coordinator's hang timeout. Replacement workers get fresh
// indexes >= the configured worker count, so injected faults are
// bounded by construction.
const (
	EnvWorkerIndex = "ASSOCDIST_WORKER_INDEX"
	EnvCrashWorker = "ASSOCDIST_CRASH_WORKER"
	EnvCrashAfter  = "ASSOCDIST_CRASH_AFTER"
	EnvHangWorker  = "ASSOCDIST_HANG_WORKER"
)

// worker is the subprocess side of the executor: one dataset handle,
// the hello parameters, and the per-phase derived structures, rebuilt
// lazily whenever a state broadcast replaces their inputs.
type worker struct {
	r  *bufio.Reader
	w  *bufio.Writer
	h  *hello
	fs *matrix.FileSource

	// Derived per-phase caches. sigState/kmhState hold the merged
	// fold-state from the coordinator; the rangers and signatures are
	// built on first use by a candidate job.
	mhSig     *minhash.Signatures
	kmhSketch *kminhash.Sketches
	mhRanger  *candidate.MHRanger
	kmhRanger *candidate.KMHRanger
	sup       []int64 // BPS global supports

	// Fault injection (chaos tests only).
	index      int
	crashAt    int // job ordinal to die on; -1 disabled
	hang       bool
	jobsServed int
}

// WorkerMain runs the worker protocol over the given pipe ends until a
// quit frame or EOF; `assocfind -worker` calls it with stdin/stdout.
// Permanent faults (decode errors, dataset mismatches) are reported to
// the coordinator as an error frame before returning.
func WorkerMain(r io.Reader, w io.Writer) error {
	wk := &worker{
		r:       bufio.NewReaderSize(r, 1<<16),
		w:       bufio.NewWriterSize(w, 1<<16),
		index:   envInt(EnvWorkerIndex, -1),
		crashAt: -1,
	}
	if cw := envInt(EnvCrashWorker, -1); cw >= 0 && cw == wk.index {
		wk.crashAt = envInt(EnvCrashAfter, 0)
	}
	if hw := envInt(EnvHangWorker, -1); hw >= 0 && hw == wk.index {
		wk.hang = true
	}
	if err := wk.handshake(); err != nil {
		return wk.fail(err)
	}
	for {
		typ, payload, err := readFrame(wk.r)
		if err != nil {
			if err == io.EOF {
				return nil // coordinator went away; nothing to clean up
			}
			return err
		}
		switch typ {
		case frameQuit:
			return nil
		case frameState:
			if err := wk.setState(payload); err != nil {
				return wk.fail(err)
			}
		case frameJob:
			if wk.hang {
				// Chaos hook: sit on the job until the coordinator's
				// timeout kills the process.
				time.Sleep(24 * time.Hour)
			}
			if wk.crashAt >= 0 && wk.jobsServed == wk.crashAt {
				os.Exit(3) // chaos hook: die mid-shard, no reply
			}
			wk.jobsServed++
			res, err := wk.runJob(payload)
			if err != nil {
				return wk.fail(err)
			}
			if err := wk.send(frameResult, res); err != nil {
				return err
			}
		default:
			return wk.fail(fmt.Errorf("dist: unexpected frame %q", typ))
		}
	}
}

// handshake reads hello, opens the dataset, and answers ready.
func (wk *worker) handshake() error {
	typ, payload, err := readFrame(wk.r)
	if err != nil {
		return fmt.Errorf("dist: reading hello: %w", err)
	}
	if typ != frameHello {
		return fmt.Errorf("dist: expected hello, got frame %q", typ)
	}
	h, err := decodeHello(payload)
	if err != nil {
		return err
	}
	wk.h = h
	fs, err := matrix.OpenFileSource(h.Path)
	if err != nil {
		return fmt.Errorf("dist: worker opening %s: %w", h.Path, err)
	}
	wk.fs = fs
	y := &ready{Rows: fs.NumRows(), Cols: fs.NumCols()}
	return wk.send(frameReady, y.encode())
}

// send writes one frame and flushes it onto the pipe.
func (wk *worker) send(typ byte, payload []byte) error {
	if err := writeFrame(wk.w, typ, payload); err != nil {
		return err
	}
	return wk.w.Flush()
}

// fail reports a permanent fault to the coordinator (best effort) and
// returns it.
func (wk *worker) fail(err error) error {
	_ = wk.send(frameError, []byte(err.Error()))
	return err
}

// setState installs a phase broadcast, invalidating the caches derived
// from the previous one.
func (wk *worker) setState(payload []byte) error {
	if len(payload) == 0 {
		return fmt.Errorf("dist: empty state frame")
	}
	kind, blob := payload[0], payload[1:]
	switch kind {
	case stateSig:
		wk.mhSig, wk.kmhSketch = nil, nil
		wk.mhRanger, wk.kmhRanger = nil, nil
		switch wk.h.Algo {
		case MinHash, MinLSH:
			st, err := minhash.ReadFoldState(bytes.NewReader(blob))
			if err != nil {
				return fmt.Errorf("dist: decoding fold state: %w", err)
			}
			wk.mhSig = st.Finish()
		case KMinHash:
			st, err := kminhash.ReadFoldState(bytes.NewReader(blob))
			if err != nil {
				return fmt.Errorf("dist: decoding fold state: %w", err)
			}
			wk.kmhSketch = st.Finish()
		default:
			return fmt.Errorf("dist: sig state for %v", wk.h.Algo)
		}
	case stateSupports:
		sup, err := decodeSupports(blob)
		if err != nil {
			return err
		}
		if len(sup) != wk.fs.NumCols() {
			return fmt.Errorf("dist: supports cover %d of %d columns", len(sup), wk.fs.NumCols())
		}
		wk.sup = sup
	default:
		return fmt.Errorf("dist: unknown state kind %d", kind)
	}
	return nil
}

// cutoff is the candidate-phase agreement cutoff, the exact formula of
// the single-process driver: (1-δ)·s*.
func (wk *worker) cutoff() float64 {
	return (1 - wk.h.Delta) * wk.h.Threshold
}

func (wk *worker) runJob(payload []byte) ([]byte, error) {
	j, err := decodeJob(payload)
	if err != nil {
		return nil, err
	}
	switch j.Kind {
	case jobSig:
		return wk.runSig(j)
	case jobSupports:
		return wk.runSupports(j)
	case jobSample:
		return wk.runSample(j)
	case jobCand:
		return wk.runCand(j)
	case jobBands:
		return wk.runBands(j)
	case jobVerify:
		return wk.runVerify(j)
	}
	return nil, fmt.Errorf("dist: unhandled job kind %d", j.Kind)
}

// runSig folds the job's row range into a fresh fold-state and ships
// its snapshot; the coordinator merges snapshots with the exact Merge,
// so any row partition reproduces the full fold.
func (wk *worker) runSig(j *job) ([]byte, error) {
	var buf bytes.Buffer
	switch wk.h.Algo {
	case MinHash, MinLSH:
		st, err := minhash.NewFoldState(wk.fs.NumCols(), wk.h.K, wk.h.Seed)
		if err != nil {
			return nil, err
		}
		err = wk.fs.ScanRange(j.Lo, j.Hi, func(row int, cols []int32) error {
			st.FoldRow(row, cols)
			return nil
		})
		if err != nil {
			return nil, err
		}
		if err := st.Snapshot(&buf); err != nil {
			return nil, err
		}
	case KMinHash:
		st, err := kminhash.NewFoldState(wk.fs.NumCols(), wk.h.K, wk.h.Seed)
		if err != nil {
			return nil, err
		}
		err = wk.fs.ScanRange(j.Lo, j.Hi, func(row int, cols []int32) error {
			st.FoldRow(row, cols)
			return nil
		})
		if err != nil {
			return nil, err
		}
		if err := st.Snapshot(&buf); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("dist: sig job for %v", wk.h.Algo)
	}
	return buf.Bytes(), nil
}

// runSupports counts per-column supports over the job's row range;
// the coordinator sums the partial vectors.
func (wk *worker) runSupports(j *job) ([]byte, error) {
	sup, err := bps.Supports(&matrix.RangeSource{Src: wk.fs, From: j.Lo, To: j.Hi})
	if err != nil {
		return nil, err
	}
	return encodeSupports(sup), nil
}

// runSample draws the biased pair samples of the job's row range using
// the broadcast global supports. Accept decisions are pure
// (seed,row,pair) hashes, so the coordinator's additive merge equals a
// full-scan's counts exactly.
func (wk *worker) runSample(j *job) ([]byte, error) {
	if wk.sup == nil {
		return nil, fmt.Errorf("dist: sample job before supports state")
	}
	opt := bps.Options{
		Threshold: wk.h.Threshold,
		Delta:     wk.h.Delta,
		Budget:    wk.h.SampleBudget,
		Seed:      wk.h.Seed,
	}
	counts, inspected, err := bps.SampleCounts(&matrix.RangeSource{Src: wk.fs, From: j.Lo, To: j.Hi}, wk.sup, opt)
	if err != nil {
		return nil, err
	}
	res := sampleResult{Inspected: inspected}
	res.Keys = make([]uint64, 0, len(counts))
	for k := range counts {
		res.Keys = append(res.Keys, k)
	}
	sort.Slice(res.Keys, func(a, b int) bool { return res.Keys[a] < res.Keys[b] })
	res.Counts = make([]int64, len(res.Keys))
	for i, k := range res.Keys {
		res.Counts[i] = counts[k]
	}
	return res.encode(), nil
}

// runCand generates the candidates owned by the job's column range,
// shipping them key-sorted (the wire's canonical order; the final
// SortScored makes emission order irrelevant).
func (wk *worker) runCand(j *job) ([]byte, error) {
	var cand []pairs.Scored
	var st candidate.Stats
	var err error
	switch wk.h.Algo {
	case MinHash:
		if wk.mhRanger == nil {
			if wk.mhSig == nil {
				return nil, fmt.Errorf("dist: cand job before sig state")
			}
			wk.mhRanger, err = candidate.NewMHRanger(wk.mhSig, wk.cutoff())
			if err != nil {
				return nil, err
			}
		}
		cand, st, err = wk.mhRanger.Columns(j.Lo, j.Hi)
	case KMinHash:
		if wk.kmhRanger == nil {
			if wk.kmhSketch == nil {
				return nil, fmt.Errorf("dist: cand job before sig state")
			}
			opt := candidate.KMHOptions{BiasedCutoff: wk.cutoff() / 2, UnbiasedCutoff: wk.cutoff()}
			wk.kmhRanger, err = candidate.NewKMHRanger(wk.kmhSketch, opt)
			if err != nil {
				return nil, err
			}
		}
		cand, st, err = wk.kmhRanger.Columns(j.Lo, j.Hi)
	default:
		return nil, fmt.Errorf("dist: cand job for %v", wk.h.Algo)
	}
	if err != nil {
		return nil, err
	}
	sort.Slice(cand, func(a, b int) bool { return pairKey(cand[a].Pair) < pairKey(cand[b].Pair) })
	res := candResult{Increments: st.Increments, Cand: cand}
	return res.encode(), nil
}

// runBands hashes the job's band range, choosing the same layout as
// the single-process driver: disjoint bands when k >= r*l, else the
// sampled Q_{r,l,k} layout at seed+1.
func (wk *worker) runBands(j *job) ([]byte, error) {
	if wk.mhSig == nil {
		return nil, fmt.Errorf("dist: bands job before sig state")
	}
	var bands []lsh.BandPairs
	var err error
	if wk.h.K >= wk.h.R*wk.h.L {
		bands, err = lsh.CandidateBands(wk.mhSig, wk.h.R, wk.h.L, j.Lo, j.Hi)
	} else {
		bands, err = lsh.SampledCandidateBands(wk.mhSig, wk.h.R, wk.h.L, wk.h.Seed+1, j.Lo, j.Hi)
	}
	if err != nil {
		return nil, err
	}
	res := bandsResult{Bands: bands}
	return res.encode(), nil
}

// runVerify exact-counts the attached candidates over one file pass
// and ships the survivors as indices into the job's list.
func (wk *worker) runVerify(j *job) ([]byte, error) {
	out, _, err := verify.Exact(wk.fs, j.Cand, wk.h.Threshold)
	if err != nil {
		return nil, err
	}
	res := verifyResult{Indices: make([]int, 0, len(out)), Exact: make([]float64, 0, len(out))}
	// Survivors preserve input order, so one forward walk recovers the
	// indices.
	next := 0
	for _, p := range out {
		for next < len(j.Cand) && j.Cand[next].Pair != p.Pair {
			next++
		}
		if next == len(j.Cand) {
			return nil, fmt.Errorf("dist: survivor (%d,%d) not in candidate list", p.I, p.J)
		}
		res.Indices = append(res.Indices, next)
		res.Exact = append(res.Exact, p.Exact)
		next++
	}
	return res.encode(), nil
}

func envInt(name string, def int) int {
	s := os.Getenv(name)
	if s == "" {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return def
	}
	return v
}
