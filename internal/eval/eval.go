// Package eval is the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section 5). It scores algorithm
// output against exact ground truth (S-curves, false positives/
// negatives), builds similarity histograms and sampled distributions,
// and exposes one driver per figure (Fig2 … Fig9) used by
// cmd/experiments and the benchmark suite.
package eval

import (
	"fmt"
	"time"

	"assocmine"
	"assocmine/internal/lsh"
	"assocmine/internal/matrix"
	"assocmine/internal/pairs"
	"assocmine/internal/verify"
)

// DefaultEdges are the similarity bucket edges used for S-curves and
// histograms (10-point buckets like the paper's similarity ranges).
func DefaultEdges() []float64 {
	return []float64{0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
}

// GroundTruth holds the exact similar-pair inventory of a dataset above
// a floor similarity, computed once and reused across experiments.
type GroundTruth struct {
	Floor float64
	Pairs []pairs.Scored         // all pairs with similarity >= Floor
	Sim   map[pairs.Pair]float64 // exact similarity lookup
}

// NewGroundTruth computes the exact pair inventory (brute force).
func NewGroundTruth(m *matrix.Matrix, floor float64) (*GroundTruth, error) {
	ps, err := verify.AllPairs(m, floor)
	if err != nil {
		return nil, err
	}
	sim := make(map[pairs.Pair]float64, len(ps))
	for _, p := range ps {
		sim[p.Pair] = p.Exact
	}
	return &GroundTruth{Floor: floor, Pairs: ps, Sim: sim}, nil
}

// CountAtLeast returns the number of true pairs with similarity >= s.
func (g *GroundTruth) CountAtLeast(s float64) int {
	n := 0
	for _, p := range g.Pairs {
		if p.Exact >= s {
			n++
		}
	}
	return n
}

// SCurve is the paper's quality plot: per similarity bucket, the ratio
// of pairs found by an algorithm to the true number of pairs.
type SCurve struct {
	Edges  []float64 // len B+1
	Found  []int     // len B
	Actual []int     // len B
}

// Ratio returns Found/Actual for bucket b (0 when the bucket is empty).
func (s SCurve) Ratio(b int) float64 {
	if s.Actual[b] == 0 {
		return 0
	}
	return float64(s.Found[b]) / float64(s.Actual[b])
}

// Mid returns the midpoint similarity of bucket b.
func (s SCurve) Mid(b int) float64 {
	return (s.Edges[b] + s.Edges[b+1]) / 2
}

// ComputeSCurve buckets the algorithm's found pairs and the ground
// truth by exact similarity. Found pairs below the truth floor are
// ignored (they belong to the giant near-zero mass the plot does not
// cover).
func ComputeSCurve(g *GroundTruth, found []assocmine.Pair, edges []float64) SCurve {
	sc := SCurve{Edges: edges, Found: make([]int, len(edges)-1), Actual: make([]int, len(edges)-1)}
	sc.Actual = verify.CountInRanges(g.Pairs, edges)
	for _, p := range found {
		s, ok := g.Sim[pairs.Make(int32(p.I), int32(p.J))]
		if !ok {
			continue
		}
		for b := 0; b+1 < len(edges); b++ {
			if s >= edges[b] && (s < edges[b+1] || (b+2 == len(edges) && s <= edges[b+1])) {
				sc.Found[b]++
				break
			}
		}
	}
	return sc
}

// Quality summarises an algorithm's candidate set against the ground
// truth at a similarity cutoff.
type Quality struct {
	Cutoff   float64
	TruePos  int // found pairs with exact similarity >= cutoff
	FalsePos int // found pairs below cutoff (includes pairs under the truth floor)
	FalseNeg int // true pairs >= cutoff that were not found
}

// FNRate returns FalseNeg / (TruePos + FalseNeg), 0 when there are no
// true pairs.
func (q Quality) FNRate() float64 {
	den := q.TruePos + q.FalseNeg
	if den == 0 {
		return 0
	}
	return float64(q.FalseNeg) / float64(den)
}

// ScoreCandidates evaluates found pairs against the ground truth at
// cutoff (cutoff must be >= the truth floor).
func ScoreCandidates(g *GroundTruth, found []assocmine.Pair, cutoff float64) (Quality, error) {
	if cutoff < g.Floor {
		return Quality{}, fmt.Errorf("eval: cutoff %v below ground-truth floor %v", cutoff, g.Floor)
	}
	q := Quality{Cutoff: cutoff}
	seen := pairs.NewSet(len(found))
	for _, p := range found {
		if !seen.Add(int32(p.I), int32(p.J)) {
			continue
		}
		if s, ok := g.Sim[pairs.Make(int32(p.I), int32(p.J))]; ok && s >= cutoff {
			q.TruePos++
		} else {
			q.FalsePos++
		}
	}
	for _, p := range g.Pairs {
		if p.Exact >= cutoff && !seen.Contains(p.I, p.J) {
			q.FalseNeg++
		}
	}
	return q, nil
}

// Histogram counts column pairs per similarity bucket over the whole
// dataset (Fig. 3). The first bucket absorbs every pair below the
// computed floor (the overwhelming near-zero mass), counted by
// subtraction from C(m,2).
func Histogram(m *matrix.Matrix, edges []float64) ([]int64, error) {
	floor := edges[1] // only pairs >= second edge are materialised
	truth, err := verify.AllPairs(m, floor)
	if err != nil {
		return nil, err
	}
	counts := verify.CountInRanges(truth, edges)
	out := make([]int64, len(counts))
	var above int64
	for b := 1; b < len(counts); b++ {
		out[b] = int64(counts[b])
		above += int64(counts[b])
	}
	total := int64(m.NumCols()) * int64(m.NumCols()-1) / 2
	out[0] = total - above
	return out, nil
}

// SampleDistribution estimates the pairwise similarity distribution by
// sampling sampleCols columns and counting all their pairwise
// similarities, scaled to the full pair count — the estimation
// procedure Section 4.1 assumes for the (r, l) optimizer.
func SampleDistribution(m *matrix.Matrix, sampleCols int, edges []float64, seed uint64) (lsh.Distribution, error) {
	if sampleCols < 2 {
		return lsh.Distribution{}, fmt.Errorf("eval: need at least 2 sample columns, got %d", sampleCols)
	}
	if sampleCols > m.NumCols() {
		sampleCols = m.NumCols()
	}
	rngPerm := newPerm(seed, m.NumCols())
	sample := rngPerm[:sampleCols]
	counts := make([]float64, len(edges)-1)
	for a := 0; a < len(sample); a++ {
		for b := a + 1; b < len(sample); b++ {
			s := m.Similarity(sample[a], sample[b])
			for e := 0; e+1 < len(edges); e++ {
				if s >= edges[e] && (s < edges[e+1] || (e+2 == len(edges) && s <= edges[e+1])) {
					counts[e]++
					break
				}
			}
		}
	}
	// Scale sampled pair counts up to the full number of pairs.
	samplePairs := float64(sampleCols) * float64(sampleCols-1) / 2
	totalPairs := float64(m.NumCols()) * float64(m.NumCols()-1) / 2
	scale := totalPairs / samplePairs
	d := lsh.Distribution{S: make([]float64, len(counts)), Count: make([]float64, len(counts))}
	for b := range counts {
		d.S[b] = (edges[b] + edges[b+1]) / 2
		d.Count[b] = counts[b] * scale
	}
	return d, nil
}

func newPerm(seed uint64, n int) []int {
	// Local import indirection avoided: inline Fisher-Yates on a
	// splitmix stream.
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	state := seed
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := n - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Run executes an algorithm end-to-end and reports its candidates, its
// verified output, and per-phase timing. The candidate set (pre-
// verification) is what the S-curves score; the total time includes
// verification, matching the paper's CPU-time comparisons.
type Run struct {
	Config     assocmine.Config
	Candidates []assocmine.Pair
	Verified   []assocmine.Pair
	Stats      assocmine.Stats
}

// Execute runs cfg against d, returning candidates and verified output
// with one signature pass shared between them.
func Execute(d *assocmine.Dataset, cfg assocmine.Config) (*Run, error) {
	candCfg := cfg
	candCfg.SkipVerify = true
	res, err := assocmine.SimilarPairs(d, candCfg)
	if err != nil {
		return nil, err
	}
	run := &Run{Config: cfg, Candidates: res.Pairs, Stats: res.Stats}
	// Verification timing on the same candidates.
	start := time.Now()
	scored := make([]pairs.Scored, len(res.Pairs))
	for i, p := range res.Pairs {
		scored[i] = pairs.Scored{Pair: pairs.Make(int32(p.I), int32(p.J)), Estimate: p.Estimate}
	}
	verified, _, err := verify.Exact(d.Matrix().Stream(), scored, cfg.Threshold)
	if err != nil {
		return nil, err
	}
	run.Stats.VerifyTime = time.Since(start)
	run.Stats.Verified = len(verified)
	pairs.SortScored(verified)
	run.Verified = make([]assocmine.Pair, len(verified))
	for i, p := range verified {
		run.Verified[i] = assocmine.Pair{I: int(p.I), J: int(p.J), Estimate: p.Estimate, Similarity: p.Exact}
	}
	return run, nil
}
