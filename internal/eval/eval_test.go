package eval

import (
	"math"
	"testing"

	"assocmine"
	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
	"assocmine/internal/pairs"
)

func smallWorkloads(t *testing.T) *Workloads {
	t.Helper()
	w, err := NewWorkloads(Scale{
		WebClients: 800, WebURLs: 150,
		NewsDocs: 1500, NewsVocab: 300,
		SynRows: 1500, SynCols: 120,
		Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewGroundTruth(t *testing.T) {
	m := matrix.MustNew(4, [][]int32{
		{0, 1, 2}, {0, 1, 2}, {0, 3},
	})
	g, err := NewGroundTruth(m, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if g.CountAtLeast(0.99) != 1 {
		t.Errorf("CountAtLeast(0.99) = %d", g.CountAtLeast(0.99))
	}
	if s, ok := g.Sim[pairs.Make(0, 1)]; !ok || s != 1 {
		t.Errorf("Sim[0,1] = %v, %v", s, ok)
	}
	if g.CountAtLeast(0.2) != len(g.Pairs) {
		t.Error("CountAtLeast(floor) should count all pairs")
	}
}

func TestComputeSCurve(t *testing.T) {
	m := matrix.MustNew(10, [][]int32{
		{0, 1, 2, 3}, {0, 1, 2, 3}, // sim 1
		{4, 5, 6}, {4, 5, 9}, // sim 0.5
		{7}, {8}, // sim 0
	})
	g, err := NewGroundTruth(m, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	edges := []float64{0, 0.25, 0.75, 1.0}
	// Algorithm found the sim-1 pair but not the sim-0.5 pair.
	found := []assocmine.Pair{{I: 0, J: 1}}
	sc := ComputeSCurve(g, found, edges)
	if sc.Actual[2] != 1 || sc.Found[2] != 1 {
		t.Errorf("high bucket: actual %d found %d", sc.Actual[2], sc.Found[2])
	}
	if sc.Actual[1] != 1 || sc.Found[1] != 0 {
		t.Errorf("mid bucket: actual %d found %d", sc.Actual[1], sc.Found[1])
	}
	if sc.Ratio(2) != 1 || sc.Ratio(1) != 0 {
		t.Errorf("ratios %v %v", sc.Ratio(2), sc.Ratio(1))
	}
	if sc.Ratio(0) != 0 {
		t.Error("empty bucket ratio should be 0")
	}
	if mid := sc.Mid(1); math.Abs(mid-0.5) > 1e-12 {
		t.Errorf("Mid(1) = %v", mid)
	}
}

func TestScoreCandidates(t *testing.T) {
	m := matrix.MustNew(10, [][]int32{
		{0, 1, 2, 3}, {0, 1, 2, 3}, // sim 1: pair (0,1)
		{4, 5, 6}, {4, 5, 9}, // sim 0.5: pair (2,3)
		{7}, {8},
	})
	g, _ := NewGroundTruth(m, 0.1)
	found := []assocmine.Pair{
		{I: 0, J: 1}, // true positive at cutoff 0.8
		{I: 2, J: 3}, // below cutoff: false positive
		{I: 4, J: 5}, // sim 0: false positive
		{I: 0, J: 1}, // duplicate: ignored
	}
	q, err := ScoreCandidates(g, found, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if q.TruePos != 1 || q.FalsePos != 2 || q.FalseNeg != 0 {
		t.Errorf("quality = %+v", q)
	}
	if q.FNRate() != 0 {
		t.Errorf("FNRate = %v", q.FNRate())
	}
	// Cutoff below the truth floor must error.
	if _, err := ScoreCandidates(g, found, 0.05); err == nil {
		t.Error("cutoff below floor accepted")
	}
	// Missing pair counts as FN.
	q, _ = ScoreCandidates(g, nil, 0.8)
	if q.FalseNeg != 1 || q.FNRate() != 1 {
		t.Errorf("all-missed quality = %+v", q)
	}
}

func TestHistogramMassConservation(t *testing.T) {
	rng := hashing.NewSplitMix64(3)
	b := matrix.NewBuilder(200, 30)
	for c := 0; c < 30; c++ {
		for r := 0; r < 200; r++ {
			if rng.Float64() < 0.1 {
				b.Set(r, c)
			}
		}
	}
	m := b.Build()
	counts, err := Histogram(m, DefaultEdges())
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, c := range counts {
		total += c
	}
	want := int64(30 * 29 / 2)
	if total != want {
		t.Errorf("histogram mass %d, want %d", total, want)
	}
}

func TestSampleDistribution(t *testing.T) {
	rng := hashing.NewSplitMix64(5)
	b := matrix.NewBuilder(300, 40)
	for c := 0; c < 40; c++ {
		for r := 0; r < 300; r++ {
			if rng.Float64() < 0.1 {
				b.Set(r, c)
			}
		}
	}
	m := b.Build()
	edges := DefaultEdges()
	d, err := SampleDistribution(m, 40, edges, 7) // full sample: exact
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	var mass float64
	for _, c := range d.Count {
		mass += c
	}
	want := float64(40 * 39 / 2)
	if math.Abs(mass-want) > 1e-6 {
		t.Errorf("full-sample mass %v, want %v", mass, want)
	}
	// Subsample: mass still scales to the full pair count.
	d2, err := SampleDistribution(m, 20, edges, 7)
	if err != nil {
		t.Fatal(err)
	}
	mass = 0
	for _, c := range d2.Count {
		mass += c
	}
	if math.Abs(mass-want) > 1e-6 {
		t.Errorf("scaled mass %v, want %v", mass, want)
	}
	if _, err := SampleDistribution(m, 1, edges, 7); err == nil {
		t.Error("sampleCols=1 accepted")
	}
}

func TestExecuteProducesBothSets(t *testing.T) {
	w := smallWorkloads(t)
	run, err := Execute(w.Web.Data, assocmine.Config{
		Algorithm: assocmine.MinLSH, Threshold: 0.5, K: 50, R: 5, L: 10, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Verified) > len(run.Candidates) {
		t.Errorf("verified %d > candidates %d", len(run.Verified), len(run.Candidates))
	}
	for _, p := range run.Verified {
		if p.Similarity < 0.5 {
			t.Errorf("verified pair %+v below threshold", p)
		}
	}
	if run.Stats.VerifyTime == 0 && len(run.Candidates) > 0 {
		t.Error("verify time not recorded")
	}
}
