package eval

import (
	"fmt"

	"assocmine"
)

// Fig1 reproduces the qualitative experiment of Section 2 / Fig. 1:
// mining the news corpus for similar word pairs and recovering the
// planted collocations and the word cluster, despite their very low
// support.
func Fig1(w *Workloads) (Table, error) {
	res, err := assocmine.SimilarPairs(w.News.Data, assocmine.Config{
		Algorithm: assocmine.MinHash, Threshold: 0.5, K: 150, Seed: 17,
	})
	if err != nil {
		return Table{}, err
	}
	plantedSet := map[[2]int]bool{}
	for _, p := range w.News.PlantedPairs {
		plantedSet[p] = true
	}
	clusterSet := map[int]bool{}
	for _, c := range w.News.ClusterCols {
		clusterSet[c] = true
	}
	t := Table{
		ID:     "fig1",
		Title:  "Similar word pairs mined from the news corpus (similarity >= 0.5)",
		Header: []string{"word A", "word B", "similarity", "support A", "support B", "kind"},
	}
	foundPlanted, foundCluster := 0, 0
	for _, p := range res.Pairs {
		kind := "background"
		if plantedSet[[2]int{p.I, p.J}] || plantedSet[[2]int{p.J, p.I}] {
			kind = "planted collocation"
			foundPlanted++
		} else if clusterSet[p.I] && clusterSet[p.J] {
			kind = "planted cluster"
			foundCluster++
		}
		t.Rows = append(t.Rows, []string{
			w.News.Word(p.I), w.News.Word(p.J),
			fmt.Sprintf("%.3f", p.Similarity),
			fmt.Sprintf("%.4f%%", 100*w.News.Data.Density(p.I)),
			fmt.Sprintf("%.4f%%", 100*w.News.Data.Density(p.J)),
			kind,
		})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("recovered %d/%d planted collocations and %d intra-cluster pairs; all supports are far below a-priori-friendly thresholds",
			foundPlanted, len(w.News.PlantedPairs), foundCluster))
	return t, nil
}

// SyntheticExperiment reproduces the Section 5 synthetic-data check:
// every algorithm must recover the planted pairs in each similarity
// band ("all algorithms behave similarly" on synthetic data).
func SyntheticExperiment(w *Workloads) (Table, error) {
	t := Table{
		ID:     "synthetic",
		Title:  "Planted-pair recall per similarity band on the synthetic data (cutoff 0.45)",
		Header: []string{"algorithm", "band 45-55", "band 55-65", "band 65-75", "band 75-85", "band 85-95", "false pos"},
		Notes:  []string{"recall = planted pairs found / planted in band; verification removes all false positives"},
	}
	bands := [][2]float64{{0.45, 0.55}, {0.55, 0.65}, {0.65, 0.75}, {0.75, 0.85}, {0.85, 0.95}}
	const cutoff = 0.45
	truth, err := NewGroundTruth(w.Syn.Matrix(), 0.1)
	if err != nil {
		return Table{}, err
	}
	configs := []assocmine.Config{
		{Algorithm: assocmine.MinHash, Threshold: cutoff, K: 150, Seed: 5},
		{Algorithm: assocmine.KMinHash, Threshold: cutoff, K: 150, Seed: 5},
		{Algorithm: assocmine.MinLSH, Threshold: cutoff, K: 150, R: 3, L: 50, Seed: 5},
		{Algorithm: assocmine.HammingLSH, Threshold: cutoff, R: 6, L: 20, Seed: 5},
	}
	for _, cfg := range configs {
		res, err := assocmine.SimilarPairs(w.Syn, cfg)
		if err != nil {
			return Table{}, err
		}
		found := map[[2]int]bool{}
		fp := 0
		for _, p := range res.Pairs {
			found[[2]int{p.I, p.J}] = true
			if p.Similarity < cutoff {
				fp++
			}
		}
		row := []string{cfg.Algorithm.String()}
		for _, band := range bands {
			got, total := 0, 0
			for _, pl := range w.SynPlanted {
				s := w.Syn.Similarity(pl.I, pl.J)
				if s < band[0] || s >= band[1] || s < cutoff {
					continue
				}
				total++
				if found[[2]int{pl.I, pl.J}] {
					got++
				}
			}
			if total == 0 {
				row = append(row, "n/a")
			} else {
				row = append(row, fmt.Sprintf("%d/%d", got, total))
			}
		}
		row = append(row, fmt.Sprintf("%d", fp))
		t.Rows = append(t.Rows, row)
	}
	_ = truth
	return t, nil
}

// RulesExperiment reproduces Section 6: high-confidence rule mining on
// the news corpus; planted collocations must surface as (bidirectional)
// high-confidence rules.
func RulesExperiment(w *Workloads) (Table, error) {
	res, err := assocmine.MineRules(w.News.Data, assocmine.RuleConfig{
		MinConfidence: 0.75, K: 200, Seed: 23,
	})
	if err != nil {
		return Table{}, err
	}
	plantedSet := map[[2]int]bool{}
	for _, p := range w.News.PlantedPairs {
		plantedSet[p] = true
		plantedSet[[2]int{p[1], p[0]}] = true
	}
	t := Table{
		ID:     "rules",
		Title:  "High-confidence rules without support (Section 6), confidence >= 0.75",
		Header: []string{"rule", "confidence", "support(antecedent)", "planted?"},
	}
	foundPlanted := 0
	for _, r := range res.Rules {
		planted := plantedSet[[2]int{r.From, r.To}]
		if planted {
			foundPlanted++
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s => %s", w.News.Word(r.From), w.News.Word(r.To)),
			fmt.Sprintf("%.3f", r.Confidence),
			fmt.Sprintf("%.4f%%", 100*w.News.Data.Density(r.From)),
			fmt.Sprintf("%v", planted),
		})
	}
	t.Notes = append(t.Notes, fmt.Sprintf("%d directed planted rules recovered out of %d candidate rules mined",
		foundPlanted, len(res.Rules)))
	return t, nil
}
