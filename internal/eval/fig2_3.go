package eval

import (
	"fmt"

	"assocmine/internal/lsh"
)

// Fig2 reproduces the filter-function plots of Fig. 2: (a) P_{r,l}(s)
// sharpening toward a unit step as r and l grow, and (b) Q_{r,l,k}
// approximating P_{r,l} with only k min-hash values (the paper's
// example: Q_{20,20,40} approximating P_{20,20}, which would need 400
// values).
func Fig2() []Figure {
	grid := make([]float64, 0, 101)
	for s := 0.0; s <= 1.0001; s += 0.01 {
		grid = append(grid, s)
	}
	eval := func(f func(s float64) float64) []float64 {
		y := make([]float64, len(grid))
		for i, s := range grid {
			y[i] = f(s)
		}
		return y
	}

	a := Figure{
		ID:     "fig2a",
		Title:  "Filter function P_{r,l}(s) for growing r and l",
		XLabel: "similarity s",
		YLabel: "collision probability",
	}
	for _, rl := range [][2]int{{2, 2}, {5, 5}, {10, 10}, {20, 20}} {
		r, l := rl[0], rl[1]
		a.Series = append(a.Series, Series{
			Name: fmt.Sprintf("P_{%d,%d}", r, l),
			X:    grid,
			Y:    eval(func(s float64) float64 { return lsh.ProbAtLeastOnce(s, r, l) }),
		})
	}
	a.Notes = append(a.Notes, "larger (r,l) approaches the unit step at the implicit threshold")

	b := Figure{
		ID:     "fig2b",
		Title:  "Q_{20,20,40} approximating P_{20,20} with 40 instead of 400 min-hash values",
		XLabel: "similarity s",
		YLabel: "collision probability",
		Series: []Series{
			{Name: "P_{20,20}", X: grid,
				Y: eval(func(s float64) float64 { return lsh.ProbAtLeastOnce(s, 20, 20) })},
			{Name: "Q_{20,20,40}", X: grid,
				Y: eval(func(s float64) float64 { return lsh.SampledCollisionProb(s, 20, 20, 40) })},
			{Name: "Q_{20,20,100}", X: grid,
				Y: eval(func(s float64) float64 { return lsh.SampledCollisionProb(s, 20, 20, 100) })},
		},
		Notes: []string{"P is always sharper; Q sharpens as k grows"},
	}
	return []Figure{a, b}
}

// Fig3 reproduces the similarity-distribution histogram of the web-log
// dataset (the paper's Sun data): (a) the full distribution dominated
// by near-zero pairs, (b) the zoomed tail of interesting similarities.
func Fig3(w *Workloads) ([]Figure, error) {
	edges := DefaultEdges()
	counts, err := Histogram(w.Web.Data.Matrix(), edges)
	if err != nil {
		return nil, err
	}
	full := Figure{
		ID:     "fig3a",
		Title:  "Similarity distribution of the web-log data (all pairs)",
		XLabel: "similarity bucket midpoint",
		YLabel: "number of column pairs",
	}
	var fs Series
	fs.Name = "pairs"
	for b := 0; b+1 < len(edges); b++ {
		fs.X = append(fs.X, (edges[b]+edges[b+1])/2)
		fs.Y = append(fs.Y, float64(counts[b]))
	}
	full.Series = []Series{fs}
	full.Notes = []string{fmt.Sprintf("%.4f%% of pairs have similarity >= 0.1",
		100*float64(sumI64(counts[1:]))/float64(sumI64(counts)))}

	zoom := Figure{
		ID:     "fig3b",
		Title:  "Similarity distribution, zoomed to the region of interest (s >= 0.1)",
		XLabel: "similarity bucket midpoint",
		YLabel: "number of column pairs",
	}
	var zs Series
	zs.Name = "pairs"
	for b := 1; b+1 < len(edges); b++ {
		zs.X = append(zs.X, (edges[b]+edges[b+1])/2)
		zs.Y = append(zs.Y, float64(counts[b]))
	}
	zoom.Series = []Series{zs}
	return []Figure{full, zoom}, nil
}

func sumI64(xs []int64) int64 {
	var t int64
	for _, x := range xs {
		t += x
	}
	return t
}
