package eval

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"assocmine"
	"assocmine/internal/apriori"
	"assocmine/internal/matrix"
)

// Fig4Row is one support-threshold row of the Fig. 4 running-time
// comparison.
type Fig4Row struct {
	SupportThreshold  float64
	ColumnsAfterPrune int
	// Times per algorithm; a negative value means the algorithm was
	// infeasible (a-priori out of memory), rendered as "-" like the
	// paper.
	Apriori, MH, KMH, HLSH, MLSH time.Duration
	AprioriOOM                   bool
}

// Fig4 reproduces the Fig. 4 table: running times of a-priori vs. the
// four schemes on the news data, after support-pruning columns at
// decreasing thresholds. At the lowest threshold a-priori exceeds its
// memory budget (the paper's "-" row).
func Fig4(w *Workloads, thresholds []float64, memBudget int64) (Table, []Fig4Row, error) {
	const simThreshold = 0.5
	m := w.News.Data.Matrix()
	if len(thresholds) == 0 {
		// The paper used 0.01%, 0.015% and 0.2% on the Reuters data;
		// on the substitute corpus we pick thresholds at fixed support
		// quantiles so the pruned column counts shrink the same way
		// (15559 -> 11568 -> 9518 in the paper) at any scale.
		thresholds = supportQuantiles(m, []float64{0.95, 0.70, 0.50})
	}
	if memBudget == 0 {
		// Sized between the level-2 candidate memory at the lowest and
		// the middle threshold, so a-priori exceeds it only on the
		// lowest-support row — the paper's out-of-memory behaviour.
		lo := aprioriPairBytes(len(apriori.SupportPrune(m, thresholds[0])))
		mid := aprioriPairBytes(len(apriori.SupportPrune(m, thresholds[1])))
		memBudget = (lo + mid) / 2
		if memBudget <= mid { // degenerate: thresholds prune nothing
			memBudget = mid + 1
		}
	}

	t := Table{
		ID:     "fig4",
		Title:  "Running times on the news data after support pruning",
		Header: []string{"support", "columns", "A-priori", "MH", "K-MH", "H-LSH", "M-LSH"},
		Notes: []string{
			"'-' marks a-priori exceeding its memory budget (the paper's out-of-memory rows)",
			"times are CPU wall-clock for this process; compare ratios, not absolute values",
		},
	}
	var rows []Fig4Row
	for _, th := range thresholds {
		keep := apriori.SupportPrune(m, th)
		pruned, _ := apriori.Project(m, keep)
		d := assocmine.WrapMatrix(pruned)
		row := Fig4Row{SupportThreshold: th, ColumnsAfterPrune: len(keep)}

		// A-priori with the memory budget.
		start := time.Now()
		_, err := assocmine.SimilarPairs(d, assocmine.Config{
			Algorithm: assocmine.Apriori, Threshold: simThreshold,
			MinSupport: th, AprioriMemoryBudget: memBudget,
		})
		switch {
		case errors.Is(err, apriori.ErrMemoryBudget):
			row.AprioriOOM = true
		case err != nil:
			return Table{}, nil, fmt.Errorf("apriori at %v: %w", th, err)
		default:
			row.Apriori = time.Since(start)
		}

		type algo struct {
			dst *time.Duration
			cfg assocmine.Config
		}
		algos := []algo{
			{&row.MH, assocmine.Config{Algorithm: assocmine.MinHash, Threshold: simThreshold, K: 100, Seed: 3}},
			{&row.KMH, assocmine.Config{Algorithm: assocmine.KMinHash, Threshold: simThreshold, K: 100, Seed: 3}},
			{&row.HLSH, assocmine.Config{Algorithm: assocmine.HammingLSH, Threshold: simThreshold, R: 8, L: 10, Seed: 3}},
			{&row.MLSH, assocmine.Config{Algorithm: assocmine.MinLSH, Threshold: simThreshold, K: 100, R: 5, L: 20, Seed: 3}},
		}
		for _, a := range algos {
			res, err := assocmine.SimilarPairs(d, a.cfg)
			if err != nil {
				return Table{}, nil, fmt.Errorf("%v at %v: %w", a.cfg.Algorithm, th, err)
			}
			*a.dst = res.Stats.Total()
		}
		rows = append(rows, row)

		ap := "-"
		if !row.AprioriOOM {
			ap = fmtDur(row.Apriori)
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.3f%%", th*100),
			fmt.Sprintf("%d", row.ColumnsAfterPrune),
			ap, fmtDur(row.MH), fmtDur(row.KMH), fmtDur(row.HLSH), fmtDur(row.MLSH),
		})
	}
	return t, rows, nil
}

func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.1fms", float64(d.Microseconds())/1000)
}

// supportQuantiles returns, for each keep-fraction q, the support
// threshold at which a q-fraction of columns survives pruning.
func supportQuantiles(m *matrix.Matrix, keep []float64) []float64 {
	sizes := make([]int, m.NumCols())
	for c := range sizes {
		sizes[c] = m.ColumnSize(c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(sizes)))
	out := make([]float64, len(keep))
	n := float64(m.NumRows())
	for i, q := range keep {
		rank := int(q * float64(len(sizes)))
		if rank >= len(sizes) {
			rank = len(sizes) - 1
		}
		out[i] = float64(sizes[rank]) / n
		if out[i] <= 0 {
			out[i] = 1 / n
		}
	}
	return out
}

// aprioriPairBytes estimates a-priori's level-2 candidate memory for m
// frequent singletons: every pair of frequent items is a level-2
// candidate, at the per-candidate cost Mine charges (2 items + counter
// overhead).
func aprioriPairBytes(m int) int64 {
	return int64(m) * int64(m-1) / 2 * (2*4 + 16)
}
