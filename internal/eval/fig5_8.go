package eval

import (
	"fmt"

	"assocmine"
)

// The Figs. 5–8 drivers sweep each algorithm's parameters on the
// web-log workload, producing the paper's four-panel layout per
// algorithm: S-curves as the primary knob varies, total running time
// against that knob, S-curves as the secondary knob varies, and time
// against the secondary knob.

// sweepResult is one parameter point of a sweep.
type sweepResult struct {
	label   string
	x       float64
	curve   SCurve
	totalMS float64
}

func sweep(w *Workloads, configs []assocmine.Config, labels []string, xs []float64) ([]sweepResult, error) {
	out := make([]sweepResult, 0, len(configs))
	edges := DefaultEdges()
	for i, cfg := range configs {
		run, err := Execute(w.Web.Data, cfg)
		if err != nil {
			return nil, fmt.Errorf("eval: sweep %s: %w", labels[i], err)
		}
		out = append(out, sweepResult{
			label:   labels[i],
			x:       xs[i],
			curve:   ComputeSCurve(w.WebTruth, run.Candidates, edges),
			totalMS: ms(run.Stats.Total()),
		})
	}
	return out, nil
}

func fourPanel(id, algo, knob1, knob2 string, sweep1, sweep2 []sweepResult) []Figure {
	a := Figure{
		ID:     id + "a",
		Title:  fmt.Sprintf("%s quality as %s varies", algo, knob1),
		XLabel: "similarity", YLabel: "found/actual ratio",
	}
	for _, r := range sweep1 {
		a.Series = append(a.Series, scurveSeries(r.label, r.curve))
	}
	b := Figure{
		ID:     id + "b",
		Title:  fmt.Sprintf("%s total running time vs %s", algo, knob1),
		XLabel: knob1, YLabel: "time (ms)",
	}
	var bs Series
	bs.Name = "total time"
	for _, r := range sweep1 {
		bs.X = append(bs.X, r.x)
		bs.Y = append(bs.Y, r.totalMS)
	}
	b.Series = []Series{bs}

	c := Figure{
		ID:     id + "c",
		Title:  fmt.Sprintf("%s quality as %s varies", algo, knob2),
		XLabel: "similarity", YLabel: "found/actual ratio",
	}
	for _, r := range sweep2 {
		c.Series = append(c.Series, scurveSeries(r.label, r.curve))
	}
	d := Figure{
		ID:     id + "d",
		Title:  fmt.Sprintf("%s total running time vs %s", algo, knob2),
		XLabel: knob2, YLabel: "time (ms)",
	}
	var ds Series
	ds.Name = "total time"
	for _, r := range sweep2 {
		ds.X = append(ds.X, r.x)
		ds.Y = append(ds.Y, r.totalMS)
	}
	d.Series = []Series{ds}
	return []Figure{a, b, c, d}
}

// Fig5 sweeps the MH algorithm over k (signature size) and s* (cutoff).
func Fig5(w *Workloads) ([]Figure, error) {
	ks := []int{20, 50, 100, 200}
	var cfgs []assocmine.Config
	var labels []string
	var xs []float64
	for _, k := range ks {
		cfgs = append(cfgs, assocmine.Config{Algorithm: assocmine.MinHash, Threshold: 0.5, K: k, Seed: 9})
		labels = append(labels, fmt.Sprintf("k=%d", k))
		xs = append(xs, float64(k))
	}
	s1, err := sweep(w, cfgs, labels, xs)
	if err != nil {
		return nil, err
	}
	cuts := []float64{0.3, 0.5, 0.7, 0.9}
	cfgs, labels, xs = nil, nil, nil
	for _, s := range cuts {
		cfgs = append(cfgs, assocmine.Config{Algorithm: assocmine.MinHash, Threshold: s, K: 100, Seed: 9})
		labels = append(labels, fmt.Sprintf("s*=%.1f", s))
		xs = append(xs, s)
	}
	s2, err := sweep(w, cfgs, labels, xs)
	if err != nil {
		return nil, err
	}
	figs := fourPanel("fig5", "MH", "k", "s*", s1, s2)
	figs[1].Notes = append(figs[1].Notes, "MH signature time grows linearly with k (Fig. 5b)")
	return figs, nil
}

// Fig6 sweeps K-MH over k and s*; the paper highlights the sublinear
// growth of running time in k on sparse data (Fig. 6b).
func Fig6(w *Workloads) ([]Figure, error) {
	ks := []int{20, 50, 100, 200}
	var cfgs []assocmine.Config
	var labels []string
	var xs []float64
	for _, k := range ks {
		cfgs = append(cfgs, assocmine.Config{Algorithm: assocmine.KMinHash, Threshold: 0.5, K: k, Seed: 9})
		labels = append(labels, fmt.Sprintf("k=%d", k))
		xs = append(xs, float64(k))
	}
	s1, err := sweep(w, cfgs, labels, xs)
	if err != nil {
		return nil, err
	}
	cuts := []float64{0.3, 0.5, 0.7, 0.9}
	cfgs, labels, xs = nil, nil, nil
	for _, s := range cuts {
		cfgs = append(cfgs, assocmine.Config{Algorithm: assocmine.KMinHash, Threshold: s, K: 100, Seed: 9})
		labels = append(labels, fmt.Sprintf("s*=%.1f", s))
		xs = append(xs, s)
	}
	s2, err := sweep(w, cfgs, labels, xs)
	if err != nil {
		return nil, err
	}
	figs := fourPanel("fig6", "K-MH", "k", "s*", s1, s2)
	figs[1].Notes = append(figs[1].Notes,
		"K-MH time grows sublinearly in k: sparse columns cap their signatures at |C_i| values (Fig. 6b)")
	return figs, nil
}

// Fig7 sweeps H-LSH over r (bits per run) and l (runs per level).
func Fig7(w *Workloads) ([]Figure, error) {
	rs := []int{4, 8, 16, 24}
	var cfgs []assocmine.Config
	var labels []string
	var xs []float64
	for _, r := range rs {
		cfgs = append(cfgs, assocmine.Config{Algorithm: assocmine.HammingLSH, Threshold: 0.5, R: r, L: 10, Seed: 9})
		labels = append(labels, fmt.Sprintf("r=%d", r))
		xs = append(xs, float64(r))
	}
	s1, err := sweep(w, cfgs, labels, xs)
	if err != nil {
		return nil, err
	}
	ls := []int{2, 5, 10, 20}
	cfgs, labels, xs = nil, nil, nil
	for _, l := range ls {
		cfgs = append(cfgs, assocmine.Config{Algorithm: assocmine.HammingLSH, Threshold: 0.5, R: 8, L: l, Seed: 9})
		labels = append(labels, fmt.Sprintf("l=%d", l))
		xs = append(xs, float64(l))
	}
	s2, err := sweep(w, cfgs, labels, xs)
	if err != nil {
		return nil, err
	}
	figs := fourPanel("fig7", "H-LSH", "r", "l", s1, s2)
	figs[3].Notes = append(figs[3].Notes, "H-LSH time rises with l (more runs, more candidates to verify)")
	figs[1].Notes = append(figs[1].Notes, "H-LSH time falls as r rises: fewer candidates dominate the cost (Fig. 7c)")
	return figs, nil
}

// Fig8 sweeps M-LSH over r (band size) and l (band count).
func Fig8(w *Workloads) ([]Figure, error) {
	rs := []int{2, 5, 10, 15}
	var cfgs []assocmine.Config
	var labels []string
	var xs []float64
	for _, r := range rs {
		cfgs = append(cfgs, assocmine.Config{
			Algorithm: assocmine.MinLSH, Threshold: 0.5, K: r * 10, R: r, L: 10, Seed: 9,
		})
		labels = append(labels, fmt.Sprintf("r=%d", r))
		xs = append(xs, float64(r))
	}
	s1, err := sweep(w, cfgs, labels, xs)
	if err != nil {
		return nil, err
	}
	ls := []int{2, 5, 10, 20}
	cfgs, labels, xs = nil, nil, nil
	for _, l := range ls {
		cfgs = append(cfgs, assocmine.Config{
			Algorithm: assocmine.MinLSH, Threshold: 0.5, K: 5 * l, R: 5, L: l, Seed: 9,
		})
		labels = append(labels, fmt.Sprintf("l=%d", l))
		xs = append(xs, float64(l))
	}
	s2, err := sweep(w, cfgs, labels, xs)
	if err != nil {
		return nil, err
	}
	figs := fourPanel("fig8", "M-LSH", "r", "l", s1, s2)
	figs[1].Notes = append(figs[1].Notes,
		"M-LSH signature extraction dominates and grows linearly with k = r*l (Fig. 8c in the paper)")
	return figs, nil
}
