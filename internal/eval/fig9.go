package eval

import (
	"fmt"

	"assocmine"
)

// Fig9 reproduces the cross-algorithm comparison: for each tolerated
// false-negative rate, pick for every algorithm the parameter setting
// with minimum total running time whose measured FN rate (at the
// similarity cutoff) stays within the tolerance, then plot total time
// and false-positive counts against the tolerance.
//
// The paper's observations this reproduces: M-LSH is fastest overall,
// H-LSH is costly at tight FN budgets but competitive at loose ones,
// and the MH/K-MH false-positive curves are not monotone in the
// tolerance (the optimum trades candidate-stage work against
// pruning-stage work).

// Fig9Point is one algorithm's best setting at one FN tolerance.
type Fig9Point struct {
	Algorithm assocmine.Algorithm
	Tolerance float64
	Config    assocmine.Config
	TotalMS   float64
	FalsePos  int
	FNRate    float64
	Feasible  bool
}

// Fig9 runs the comparison at cutoff s* = 0.5.
func Fig9(w *Workloads, tolerances []float64) ([]Figure, []Fig9Point, error) {
	if len(tolerances) == 0 {
		tolerances = []float64{0.01, 0.05, 0.10, 0.20}
	}
	const cutoff = 0.5

	grids := map[assocmine.Algorithm][]assocmine.Config{
		assocmine.MinHash: {
			{Algorithm: assocmine.MinHash, Threshold: cutoff, K: 30, Delta: 0.4, Seed: 9},
			{Algorithm: assocmine.MinHash, Threshold: cutoff, K: 50, Delta: 0.3, Seed: 9},
			{Algorithm: assocmine.MinHash, Threshold: cutoff, K: 100, Delta: 0.2, Seed: 9},
			{Algorithm: assocmine.MinHash, Threshold: cutoff, K: 200, Delta: 0.2, Seed: 9},
			{Algorithm: assocmine.MinHash, Threshold: cutoff, K: 100, Delta: 0.4, Seed: 9},
		},
		assocmine.KMinHash: {
			{Algorithm: assocmine.KMinHash, Threshold: cutoff, K: 30, Delta: 0.4, Seed: 9},
			{Algorithm: assocmine.KMinHash, Threshold: cutoff, K: 50, Delta: 0.3, Seed: 9},
			{Algorithm: assocmine.KMinHash, Threshold: cutoff, K: 100, Delta: 0.2, Seed: 9},
			{Algorithm: assocmine.KMinHash, Threshold: cutoff, K: 200, Delta: 0.2, Seed: 9},
			{Algorithm: assocmine.KMinHash, Threshold: cutoff, K: 100, Delta: 0.4, Seed: 9},
		},
		assocmine.MinLSH: {
			{Algorithm: assocmine.MinLSH, Threshold: cutoff, K: 20, R: 4, L: 5, Seed: 9},
			{Algorithm: assocmine.MinLSH, Threshold: cutoff, K: 50, R: 5, L: 10, Seed: 9},
			{Algorithm: assocmine.MinLSH, Threshold: cutoff, K: 100, R: 5, L: 20, Seed: 9},
			{Algorithm: assocmine.MinLSH, Threshold: cutoff, K: 60, R: 3, L: 20, Seed: 9},
			{Algorithm: assocmine.MinLSH, Threshold: cutoff, K: 120, R: 4, L: 30, Seed: 9},
		},
		assocmine.HammingLSH: {
			{Algorithm: assocmine.HammingLSH, Threshold: cutoff, R: 6, L: 5, Seed: 9},
			{Algorithm: assocmine.HammingLSH, Threshold: cutoff, R: 8, L: 10, Seed: 9},
			{Algorithm: assocmine.HammingLSH, Threshold: cutoff, R: 8, L: 20, Seed: 9},
			{Algorithm: assocmine.HammingLSH, Threshold: cutoff, R: 12, L: 30, Seed: 9},
			{Algorithm: assocmine.HammingLSH, Threshold: cutoff, R: 16, L: 40, Seed: 9},
		},
	}
	order := []assocmine.Algorithm{
		assocmine.MinHash, assocmine.KMinHash, assocmine.HammingLSH, assocmine.MinLSH,
	}

	// Evaluate each grid point once; reuse across tolerances.
	type measured struct {
		cfg     assocmine.Config
		totalMS float64
		quality Quality
	}
	results := map[assocmine.Algorithm][]measured{}
	for algo, cfgs := range grids {
		for _, cfg := range cfgs {
			run, err := Execute(w.Web.Data, cfg)
			if err != nil {
				return nil, nil, fmt.Errorf("eval: fig9 %v: %w", algo, err)
			}
			q, err := ScoreCandidates(w.WebTruth, run.Candidates, cutoff)
			if err != nil {
				return nil, nil, err
			}
			results[algo] = append(results[algo], measured{
				cfg:     cfg,
				totalMS: ms(run.Stats.Total()),
				quality: q,
			})
		}
	}

	var points []Fig9Point
	timeFig := Figure{
		ID:     "fig9a",
		Title:  "Total running time vs tolerated false-negative rate (cutoff 0.5)",
		XLabel: "false-negative tolerance",
		YLabel: "time (ms)",
	}
	fpFig := Figure{
		ID:     "fig9b",
		Title:  "False positives vs tolerated false-negative rate (log-scale in the paper)",
		XLabel: "false-negative tolerance",
		YLabel: "false positives (count)",
	}
	for _, algo := range order {
		var ts, fps Series
		ts.Name = algo.String()
		fps.Name = algo.String()
		for _, tol := range tolerances {
			best := Fig9Point{Algorithm: algo, Tolerance: tol}
			for _, m := range results[algo] {
				if m.quality.FNRate() > tol {
					continue
				}
				if !best.Feasible || m.totalMS < best.TotalMS {
					best = Fig9Point{
						Algorithm: algo, Tolerance: tol, Config: m.cfg,
						TotalMS: m.totalMS, FalsePos: m.quality.FalsePos,
						FNRate: m.quality.FNRate(), Feasible: true,
					}
				}
			}
			points = append(points, best)
			if best.Feasible {
				ts.X = append(ts.X, tol)
				ts.Y = append(ts.Y, best.TotalMS)
				fps.X = append(fps.X, tol)
				fps.Y = append(fps.Y, float64(best.FalsePos))
			}
		}
		timeFig.Series = append(timeFig.Series, ts)
		fpFig.Series = append(fpFig.Series, fps)
	}
	timeFig.Notes = append(timeFig.Notes,
		"expected shape: M-LSH fastest; H-LSH expensive at tight tolerances; MH/K-MH slowest overall")
	fpFig.Notes = append(fpFig.Notes,
		"LSH false positives fall as more false negatives are tolerated; MH/K-MH are not monotone")
	return []Figure{timeFig, fpFig}, points, nil
}
