package eval

import (
	"fmt"
	"io"
	"strings"

	"assocmine"
)

// Series is one labelled line of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is a reproduced paper figure: one or more series plus notes.
type Figure struct {
	ID     string // e.g. "fig5a"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Table is a reproduced paper table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Format writes the figure as aligned text series.
func (f Figure) Format(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", f.ID, f.Title)
	fmt.Fprintf(w, "   x-axis: %s   y-axis: %s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		fmt.Fprintf(w, "  series %q\n", s.Name)
		for i := range s.X {
			fmt.Fprintf(w, "    %10.4f  %12.6g\n", s.X[i], s.Y[i])
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Format writes the table as aligned text.
func (t Table) Format(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(fmt.Sprintf("%-*s", widths[i], cell))
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(b.String(), " "))
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Scale sizes the generated workloads. The paper's real datasets (13k
// URLs x 0.2M clients; Reuters articles) are proprietary, so the
// experiments run on the generators at a chosen scale; Small keeps unit
// tests and CI fast, Full approximates the paper's regime.
type Scale struct {
	WebClients, WebURLs int
	NewsDocs, NewsVocab int
	SynRows, SynCols    int
	Seed                uint64
}

// Small is the test/CI scale.
func SmallScale() Scale {
	return Scale{
		WebClients: 2000, WebURLs: 400,
		NewsDocs: 4000, NewsVocab: 800,
		SynRows: 3000, SynCols: 300,
		Seed: 1,
	}
}

// Full approximates the paper's dataset sizes while staying laptop-
// friendly (the Sun data's 0.2M rows and 13k columns would make the
// brute-force ground-truth pass the bottleneck).
func FullScale() Scale {
	return Scale{
		WebClients: 20000, WebURLs: 3000,
		NewsDocs: 30000, NewsVocab: 6000,
		SynRows: 10000, SynCols: 2000,
		Seed: 1,
	}
}

// Workloads caches the generated datasets and ground truths shared by
// the figure drivers.
type Workloads struct {
	Scale Scale

	Web      *assocmine.WebLogDataset
	WebTruth *GroundTruth

	News *assocmine.NewsDataset

	Syn        *assocmine.Dataset
	SynPlanted []assocmine.PlantedPair
}

// NewWorkloads generates every dataset for the scale. Ground truth for
// the web data (the quality-experiment substrate) is computed eagerly;
// the rest lazily by the drivers that need it.
func NewWorkloads(sc Scale) (*Workloads, error) {
	w := &Workloads{Scale: sc}
	web, err := assocmine.GenerateWebLog(assocmine.WebLogOptions{
		Clients: sc.WebClients, URLs: sc.WebURLs, Seed: sc.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("eval: weblog: %w", err)
	}
	w.Web = web
	truth, err := NewGroundTruth(web.Data.Matrix(), 0.1)
	if err != nil {
		return nil, fmt.Errorf("eval: weblog truth: %w", err)
	}
	w.WebTruth = truth

	news, err := assocmine.GenerateNews(assocmine.NewsOptions{
		Docs: sc.NewsDocs, Vocab: sc.NewsVocab, Seed: sc.Seed + 1,
	})
	if err != nil {
		return nil, fmt.Errorf("eval: news: %w", err)
	}
	w.News = news

	syn, planted, err := assocmine.GenerateSynthetic(assocmine.SyntheticOptions{
		Rows: sc.SynRows, Cols: sc.SynCols, Seed: sc.Seed + 2,
	})
	if err != nil {
		return nil, fmt.Errorf("eval: synthetic: %w", err)
	}
	w.Syn = syn
	w.SynPlanted = planted
	return w, nil
}

// scurveSeries converts an SCurve to a plot series named name.
func scurveSeries(name string, sc SCurve) Series {
	s := Series{Name: name}
	for b := 0; b+1 < len(sc.Edges); b++ {
		if sc.Edges[b] < 0.1 {
			continue // skip the giant near-zero bucket
		}
		s.X = append(s.X, sc.Mid(b))
		s.Y = append(s.Y, sc.Ratio(b))
	}
	return s
}

func ms(d interface{ Seconds() float64 }) float64 {
	return d.Seconds() * 1000
}
