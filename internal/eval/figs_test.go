package eval

import (
	"bytes"
	"strings"
	"testing"
)

// The figure drivers are exercised end-to-end at a tiny scale; the
// assertions check the qualitative shapes the paper reports, not
// absolute values.

func tinyWorkloads(t *testing.T) *Workloads {
	t.Helper()
	w, err := NewWorkloads(Scale{
		WebClients: 600, WebURLs: 120,
		NewsDocs: 1200, NewsVocab: 250,
		SynRows: 1200, SynCols: 100,
		Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestFig2Shapes(t *testing.T) {
	figs := Fig2()
	if len(figs) != 2 {
		t.Fatalf("Fig2 returned %d figures", len(figs))
	}
	// 2a: every series starts at ~0 and ends at 1; larger (r,l) is
	// lower at s=0.3.
	a := figs[0]
	for _, s := range a.Series {
		if s.Y[0] > 1e-9 {
			t.Errorf("%s: P(0) = %v", s.Name, s.Y[0])
		}
		if s.Y[len(s.Y)-1] < 1-1e-9 {
			t.Errorf("%s: P(1) = %v", s.Name, s.Y[len(s.Y)-1])
		}
	}
	at := func(s Series, x float64) float64 {
		for i := range s.X {
			if s.X[i] >= x {
				return s.Y[i]
			}
		}
		return s.Y[len(s.Y)-1]
	}
	if at(a.Series[0], 0.3) <= at(a.Series[3], 0.3) {
		t.Error("fig2a: larger (r,l) should be lower at s=0.3")
	}
	// 2b: Q_{20,20,100} closer to P than Q_{20,20,40} at s=0.5.
	b := figs[1]
	p, q40, q100 := at(b.Series[0], 0.5), at(b.Series[1], 0.5), at(b.Series[2], 0.5)
	if abs(q100-p) > abs(q40-p)+1e-9 {
		t.Errorf("fig2b: k=100 (%v) not closer to P (%v) than k=40 (%v)", q100, p, q40)
	}
}

func TestFig3LShaped(t *testing.T) {
	w := tinyWorkloads(t)
	figs, err := Fig3(w)
	if err != nil {
		t.Fatal(err)
	}
	full := figs[0].Series[0]
	// The near-zero bucket dominates everything else combined.
	var rest float64
	for _, y := range full.Y[1:] {
		rest += y
	}
	if full.Y[0] < 10*rest {
		t.Errorf("fig3a not L-shaped: zero bucket %v vs rest %v", full.Y[0], rest)
	}
	// The zoomed panel has some mass (the planted resource groups).
	zoom := figs[1].Series[0]
	var zoomMass float64
	for _, y := range zoom.Y {
		zoomMass += y
	}
	if zoomMass == 0 {
		t.Error("fig3b has no interesting pairs at all")
	}
}

func TestFig4ShapeAndOOM(t *testing.T) {
	w := tinyWorkloads(t)
	// Tight budget so the lowest threshold blows up.
	table, rows, err := Fig4(w, []float64{0.001, 0.01, 0.05}, 1<<12)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Column counts shrink as the threshold rises.
	for i := 1; i < len(rows); i++ {
		if rows[i].ColumnsAfterPrune > rows[i-1].ColumnsAfterPrune {
			t.Error("support pruning kept more columns at a higher threshold")
		}
	}
	// Lowest threshold: a-priori OOM (the paper's '-' row).
	if !rows[0].AprioriOOM {
		t.Error("a-priori did not hit the memory budget at the lowest support")
	}
	// Table rendering includes the '-'.
	var buf bytes.Buffer
	table.Format(&buf)
	if !strings.Contains(buf.String(), "-") {
		t.Error("table missing the OOM marker")
	}
	// All schemes produced times on every row.
	for _, r := range rows {
		if r.MH <= 0 || r.KMH <= 0 || r.HLSH <= 0 || r.MLSH <= 0 {
			t.Errorf("missing scheme time in row %+v", r)
		}
	}
}

func TestFig5MHQualitySharpensWithK(t *testing.T) {
	w := tinyWorkloads(t)
	figs, err := Fig5(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 4 {
		t.Fatalf("%d panels", len(figs))
	}
	// 5b: time grows with k.
	times := figs[1].Series[0]
	if times.Y[len(times.Y)-1] < times.Y[0] {
		t.Error("fig5b: MH time did not grow with k")
	}
	// 5a: the largest-k S-curve must catch (almost) everything in the
	// top bucket.
	top := figs[0].Series[len(figs[0].Series)-1]
	if last := top.Y[len(top.Y)-1]; last < 0.9 {
		t.Errorf("fig5a: k=200 top-bucket recall %v", last)
	}
}

func TestFig6KMHSublinear(t *testing.T) {
	w := tinyWorkloads(t)
	figs, err := Fig6(w)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: four panels, series non-empty.
	if len(figs) != 4 || len(figs[0].Series) == 0 {
		t.Fatalf("bad panels")
	}
	// Top bucket recall at k=200 high.
	top := figs[0].Series[len(figs[0].Series)-1]
	if last := top.Y[len(top.Y)-1]; last < 0.85 {
		t.Errorf("fig6a: k=200 top-bucket recall %v", last)
	}
}

func TestFig7HLSHTradeoffs(t *testing.T) {
	w := tinyWorkloads(t)
	figs, err := Fig7(w)
	if err != nil {
		t.Fatal(err)
	}
	// 7c-equivalent: more runs never reduce recall in the top bucket.
	lSweep := figs[2].Series
	first, last := lSweep[0], lSweep[len(lSweep)-1]
	if len(first.Y) > 0 && len(last.Y) > 0 {
		if last.Y[len(last.Y)-1] < first.Y[len(first.Y)-1]-1e-9 {
			t.Error("fig7: more runs reduced top-bucket recall")
		}
	}
}

func TestFig8MLSHTradeoffs(t *testing.T) {
	w := tinyWorkloads(t)
	figs, err := Fig8(w)
	if err != nil {
		t.Fatal(err)
	}
	// More bands (larger l) must not reduce top-bucket recall.
	lSweep := figs[2].Series
	first, last := lSweep[0], lSweep[len(lSweep)-1]
	if len(first.Y) > 0 && len(last.Y) > 0 {
		if last.Y[len(last.Y)-1] < first.Y[len(first.Y)-1]-1e-9 {
			t.Error("fig8: more bands reduced top-bucket recall")
		}
	}
	// Larger r (sharper filter) should not increase false positives:
	// compare ratios in the lowest shown bucket.
	rSweep := figs[0].Series
	if len(rSweep) >= 2 && len(rSweep[0].Y) > 0 {
		low0, lowN := rSweep[0].Y[0], rSweep[len(rSweep)-1].Y[0]
		if lowN > low0+0.3 {
			t.Errorf("fig8: larger r increased low-similarity capture: %v -> %v", low0, lowN)
		}
	}
}

func TestFig9FeasibleAndOrdered(t *testing.T) {
	w := tinyWorkloads(t)
	figs, points, err := Fig9(w, []float64{0.05, 0.20})
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("%d figures", len(figs))
	}
	feasible := 0
	for _, p := range points {
		if p.Feasible {
			feasible++
			if p.FNRate > p.Tolerance {
				t.Errorf("point %+v violates its tolerance", p)
			}
		}
	}
	if feasible == 0 {
		t.Fatal("no algorithm found a feasible setting")
	}
	// Looser tolerance can only help (time non-increasing per algo).
	byAlgo := map[string][]Fig9Point{}
	for _, p := range points {
		if p.Feasible {
			byAlgo[p.Algorithm.String()] = append(byAlgo[p.Algorithm.String()], p)
		}
	}
	for algo, ps := range byAlgo {
		for i := 1; i < len(ps); i++ {
			if ps[i].TotalMS > ps[i-1].TotalMS*3 {
				t.Errorf("%s: time exploded as tolerance loosened: %+v", algo, ps)
			}
		}
	}
}

func TestFig1RecoversPlantedStructure(t *testing.T) {
	w := tinyWorkloads(t)
	table, err := Fig1(w)
	if err != nil {
		t.Fatal(err)
	}
	planted := 0
	for _, row := range table.Rows {
		if row[len(row)-1] == "planted collocation" {
			planted++
		}
	}
	if planted < len(w.News.PlantedPairs)/2 {
		t.Errorf("only %d/%d planted collocations mined", planted, len(w.News.PlantedPairs))
	}
}

func TestSyntheticExperimentHighBandsRecalled(t *testing.T) {
	w := tinyWorkloads(t)
	table, err := SyntheticExperiment(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("%d algorithm rows", len(table.Rows))
	}
	// Every algorithm's false-positive column must be 0 (verification).
	for _, row := range table.Rows {
		if row[len(row)-1] != "0" {
			t.Errorf("%s reported false positives after verification: %v", row[0], row)
		}
	}
}

func TestRulesExperiment(t *testing.T) {
	w := tinyWorkloads(t)
	table, err := RulesExperiment(w)
	if err != nil {
		t.Fatal(err)
	}
	plantedRules := 0
	for _, row := range table.Rows {
		if row[len(row)-1] == "true" {
			plantedRules++
		}
	}
	if plantedRules == 0 {
		t.Error("no planted rules recovered")
	}
}

func TestOptimizerExperiment(t *testing.T) {
	w := tinyWorkloads(t)
	table, err := OptimizerExperiment(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("%d rows", len(table.Rows))
	}
	// Every chosen parameter point must be a feasible, positive pair.
	for _, row := range table.Rows {
		if row[3] == "0" || row[4] == "0" {
			t.Errorf("optimizer returned degenerate parameters: %v", row)
		}
	}
}

func TestQuestExperiment(t *testing.T) {
	sc := Scale{SynRows: 1500, SynCols: 120, Seed: 3,
		WebClients: 1, WebURLs: 1, NewsDocs: 1, NewsVocab: 1}
	table, err := QuestExperiment(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("%d rows", len(table.Rows))
	}
	// A-priori must report zero below-floor pairs (it cannot see them).
	if table.Rows[0][4] != "0" {
		t.Errorf("a-priori claims below-floor pairs: %v", table.Rows[0])
	}
}

func TestFormatters(t *testing.T) {
	f := Figure{ID: "x", Title: "t", XLabel: "a", YLabel: "b",
		Series: []Series{{Name: "s", X: []float64{1}, Y: []float64{2}}},
		Notes:  []string{"n"}}
	var buf bytes.Buffer
	f.Format(&buf)
	out := buf.String()
	for _, want := range []string{"x", "t", "series", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure output missing %q:\n%s", want, out)
		}
	}
	tb := Table{ID: "y", Title: "tt", Header: []string{"h1", "h2"},
		Rows: [][]string{{"a", "bb"}}, Notes: []string{"m"}}
	buf.Reset()
	tb.Format(&buf)
	out = buf.String()
	for _, want := range []string{"y", "h1", "bb", "note: m"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
