package eval

import (
	"fmt"
	"io"
	"strings"
)

// Markdown emitters for figures and tables, used by
// `cmd/experiments -format markdown` to produce EXPERIMENTS.md-ready
// blocks.

// FormatMarkdown writes the table as a GitHub-flavoured markdown table.
func (t Table) FormatMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(w, "| %s |\n", strings.Join(escapeCells(t.Header), " | "))
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = "---"
	}
	fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
	for _, row := range t.Rows {
		fmt.Fprintf(w, "| %s |\n", strings.Join(escapeCells(row), " | "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "\n> %s\n", n)
	}
	fmt.Fprintln(w)
}

// FormatMarkdown writes the figure as one markdown table per series
// (x column plus one column per series, aligned on shared x values
// when all series share the same x grid, otherwise one table each).
func (f Figure) FormatMarkdown(w io.Writer) {
	fmt.Fprintf(w, "### %s — %s\n\n", f.ID, f.Title)
	fmt.Fprintf(w, "*x: %s, y: %s*\n\n", f.XLabel, f.YLabel)
	if sharedGrid(f.Series) {
		header := []string{f.XLabel}
		for _, s := range f.Series {
			header = append(header, s.Name)
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(escapeCells(header), " | "))
		sep := make([]string, len(header))
		for i := range sep {
			sep[i] = "---"
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(sep, " | "))
		for i := range f.Series[0].X {
			cells := []string{fmt.Sprintf("%.4g", f.Series[0].X[i])}
			for _, s := range f.Series {
				cells = append(cells, fmt.Sprintf("%.6g", s.Y[i]))
			}
			fmt.Fprintf(w, "| %s |\n", strings.Join(cells, " | "))
		}
	} else {
		for _, s := range f.Series {
			fmt.Fprintf(w, "**%s**\n\n| %s | %s |\n| --- | --- |\n", s.Name, f.XLabel, f.YLabel)
			for i := range s.X {
				fmt.Fprintf(w, "| %.4g | %.6g |\n", s.X[i], s.Y[i])
			}
			fmt.Fprintln(w)
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "\n> %s\n", n)
	}
	fmt.Fprintln(w)
}

func sharedGrid(series []Series) bool {
	if len(series) == 0 {
		return false
	}
	for _, s := range series[1:] {
		if len(s.X) != len(series[0].X) {
			return false
		}
		for i := range s.X {
			if s.X[i] != series[0].X[i] {
				return false
			}
		}
	}
	return true
}

func escapeCells(cells []string) []string {
	out := make([]string, len(cells))
	for i, c := range cells {
		out[i] = strings.ReplaceAll(c, "|", "\\|")
	}
	return out
}
