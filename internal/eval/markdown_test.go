package eval

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableFormatMarkdown(t *testing.T) {
	tb := Table{
		ID: "x", Title: "demo",
		Header: []string{"a", "b|c"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	tb.FormatMarkdown(&buf)
	out := buf.String()
	for _, want := range []string{"### x — demo", "| a | b\\|c |", "| --- | --- |", "| 1 | 2 |", "> a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("markdown missing %q:\n%s", want, out)
		}
	}
}

func TestFigureFormatMarkdownSharedGrid(t *testing.T) {
	f := Figure{
		ID: "f", Title: "fig", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "s1", X: []float64{1, 2}, Y: []float64{10, 20}},
			{Name: "s2", X: []float64{1, 2}, Y: []float64{30, 40}},
		},
	}
	var buf bytes.Buffer
	f.FormatMarkdown(&buf)
	out := buf.String()
	if !strings.Contains(out, "| x | s1 | s2 |") {
		t.Errorf("shared-grid header missing:\n%s", out)
	}
	if !strings.Contains(out, "| 1 | 10 | 30 |") {
		t.Errorf("shared-grid row missing:\n%s", out)
	}
}

func TestFigureFormatMarkdownSeparateGrids(t *testing.T) {
	f := Figure{
		ID: "f", Title: "fig", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Name: "s1", X: []float64{1}, Y: []float64{10}},
			{Name: "s2", X: []float64{1, 2}, Y: []float64{30, 40}},
		},
		Notes: []string{"n"},
	}
	var buf bytes.Buffer
	f.FormatMarkdown(&buf)
	out := buf.String()
	if !strings.Contains(out, "**s1**") || !strings.Contains(out, "**s2**") {
		t.Errorf("per-series tables missing:\n%s", out)
	}
	if !strings.Contains(out, "> n") {
		t.Errorf("note missing:\n%s", out)
	}
}
