package eval

import (
	"fmt"

	"assocmine"
	"assocmine/internal/lsh"
)

// OptimizerExperiment reproduces the Section 4.1 claim that the
// input-sensitive (r, l) optimizer, run against a sampled similarity
// distribution of the real data, lands on small parameters — "in most
// experiments, the optimal value of r was between 5 and 20" — and that
// its error predictions are honoured by an actual M-LSH run.
func OptimizerExperiment(w *Workloads) (Table, error) {
	m := w.Web.Data.Matrix()
	dist, err := SampleDistribution(m, 200, DefaultEdges(), 33)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		ID:    "optimizer",
		Title: "Input-sensitive (r,l) optimizer on the web-log data (Section 4.1)",
		Header: []string{"cutoff", "FN budget", "FP budget", "r", "l", "k=r*l",
			"predicted FN", "predicted FP", "measured FN rate"},
		Notes: []string{"the paper reports optimal r between 5 and 20 in most experiments"},
	}
	cases := []struct {
		cutoff       float64
		maxFN, maxFP float64
	}{
		{0.5, 2, 5000},
		{0.7, 2, 2000},
		{0.7, 10, 10000},
		{0.9, 1, 1000},
	}
	for _, c := range cases {
		p, err := lsh.Optimize(dist, c.cutoff, c.maxFN, c.maxFP, 40, 500)
		if err != nil {
			return Table{}, fmt.Errorf("optimize at %v: %w", c.cutoff, err)
		}
		// Measure the chosen parameters with an actual run.
		run, err := Execute(w.Web.Data, minLSHConfig(c.cutoff, p.R, p.L))
		if err != nil {
			return Table{}, err
		}
		q, err := ScoreCandidates(w.WebTruth, run.Candidates, c.cutoff)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%.1f", c.cutoff),
			fmt.Sprintf("%.0f", c.maxFN),
			fmt.Sprintf("%.0f", c.maxFP),
			fmt.Sprintf("%d", p.R),
			fmt.Sprintf("%d", p.L),
			fmt.Sprintf("%d", p.R*p.L),
			fmt.Sprintf("%.2f", p.FN),
			fmt.Sprintf("%.0f", p.FP),
			fmt.Sprintf("%.3f", q.FNRate()),
		})
	}
	return t, nil
}

func minLSHConfig(cutoff float64, r, l int) assocmine.Config {
	return assocmine.Config{
		Algorithm: assocmine.MinLSH,
		Threshold: cutoff,
		K:         r * l,
		R:         r,
		L:         l,
		Seed:      41,
	}
}
