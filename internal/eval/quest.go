package eval

import (
	"fmt"
	"time"

	"assocmine"
	"assocmine/internal/apriori"
	"assocmine/internal/gen"
)

// QuestExperiment runs the baseline on its home turf — an IBM-Quest
// market-basket workload — and contrasts it with the signature schemes:
// a-priori finds the frequent planted patterns efficiently, but every
// planted pattern whose support sits below the feasible threshold is
// invisible to it, while M-LSH surfaces the high-similarity pairs among
// them at a fraction of the cost.
func QuestExperiment(sc Scale) (Table, error) {
	q, err := gen.GenerateQuest(gen.QuestConfig{
		Transactions: sc.SynRows * 4,
		Items:        sc.SynCols,
		// Fewer patterns than items and mild corruption, so an item
		// belongs to ~one pattern and co-pattern pairs carry real
		// Jaccard similarity for the schemes to find.
		NumPatterns:    sc.SynCols / 4,
		CorruptionMean: 0.3,
		Seed:           sc.Seed + 7,
	})
	if err != nil {
		return Table{}, err
	}
	m := q.Matrix
	d := assocmine.WrapMatrix(m)

	t := Table{
		ID:    "quest",
		Title: "A-priori vs. M-LSH on an IBM-Quest market-basket workload",
		Header: []string{"approach", "support/threshold", "pairs found", "planted pattern pairs",
			"below-floor pattern pairs", "time"},
		Notes: []string{
			"'planted pattern pairs' = co-pattern item pairs with similarity >= 0.3 recovered",
			"'below-floor pattern pairs' = recovered pairs whose support is under the a-priori floor",
		},
	}

	// Inventory of interesting planted pairs: co-pattern item pairs
	// with real similarity.
	type ppair struct{ i, j int }
	interesting := map[ppair]bool{}
	for _, pat := range q.Patterns {
		for a := 0; a < len(pat); a++ {
			for b := a + 1; b < len(pat); b++ {
				i, j := int(pat[a]), int(pat[b])
				if m.Similarity(i, j) >= 0.3 {
					interesting[ppair{i, j}] = true
				}
			}
		}
	}

	const supportFloor = 0.005 // a-priori's feasible floor on this workload
	below := func(i, j int) bool {
		return m.Density(i) < supportFloor || m.Density(j) < supportFloor
	}
	countPlanted := func(found []assocmine.Pair) (planted, belowFloor int) {
		for _, p := range found {
			key := ppair{p.I, p.J}
			if p.J < p.I {
				key = ppair{p.J, p.I}
			}
			if interesting[key] {
				planted++
				if below(p.I, p.J) {
					belowFloor++
				}
			}
		}
		return planted, belowFloor
	}

	// A-priori with the hash tree at its feasible floor.
	start := time.Now()
	res, err := apriori.Mine(m.Stream(), apriori.Options{
		MinSupport: supportFloor, MaxLevel: 2, UseHashTree: true,
	})
	if err != nil {
		return Table{}, err
	}
	apPairs, err := res.SimilarPairs(0.3)
	if err != nil {
		return Table{}, err
	}
	apTime := time.Since(start)
	apFound := make([]assocmine.Pair, len(apPairs))
	for i, p := range apPairs {
		apFound[i] = assocmine.Pair{I: int(p.I), J: int(p.J), Similarity: p.Exact}
	}
	apPlanted, apBelow := countPlanted(apFound)
	t.Rows = append(t.Rows, []string{
		"a-priori (hash tree)",
		fmt.Sprintf("support %.2f%%", supportFloor*100),
		fmt.Sprintf("%d", len(apFound)),
		fmt.Sprintf("%d/%d", apPlanted, len(interesting)),
		fmt.Sprintf("%d", apBelow),
		fmtDur(apTime),
	})

	// M-LSH with no support requirement.
	mlsh, err := assocmine.SimilarPairs(d, assocmine.Config{
		Algorithm: assocmine.MinLSH, Threshold: 0.3, K: 120, R: 3, L: 40, Seed: 5,
	})
	if err != nil {
		return Table{}, err
	}
	mPlanted, mBelow := countPlanted(mlsh.Pairs)
	t.Rows = append(t.Rows, []string{
		"M-LSH",
		"similarity 0.30",
		fmt.Sprintf("%d", len(mlsh.Pairs)),
		fmt.Sprintf("%d/%d", mPlanted, len(interesting)),
		fmt.Sprintf("%d", mBelow),
		fmtDur(mlsh.Stats.Total()),
	})
	return t, nil
}
