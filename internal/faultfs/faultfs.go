// Package faultfs is a deterministic fault-injecting file system for
// the pipeline's readers. A fault plan — explicit, or drawn
// reproducibly from a seed — schedules IO faults at chosen byte
// offsets of each opened file: transient EAGAIN-class errors, short
// reads, injected latency, and hard truncation. Reads are split so
// every fault lands exactly at its offset, and transient faults leave
// the stream position unmoved, so a reader that retries them observes
// exactly the bytes a fault-free reader would.
//
// The package is the engine of the chaos-differential harness: runs
// under a transient-only plan must be bit-identical to clean runs,
// runs under a truncating plan must fail with a path+offset error, and
// neither may leak goroutines or temp files.
package faultfs

import (
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"assocmine/internal/hashing"
)

// Kind selects the fault an Event injects.
type Kind int

const (
	// Transient fails the read reaching the offset once with an
	// EAGAIN-class error (Temporary() == true); the retried read
	// proceeds with the stream position unmoved.
	Transient Kind = iota
	// ShortRead caps the read reaching the offset at one byte.
	ShortRead
	// Latency sleeps Delay (DefaultLatency when zero) before the read
	// reaching the offset proceeds.
	Latency
	// Truncate ends the file at the offset: every read at or past it
	// returns io.EOF forever, simulating a file shorter than its
	// header claims. Unlike the other kinds it is permanent.
	Truncate
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case Transient:
		return "transient"
	case ShortRead:
		return "short-read"
	case Latency:
		return "latency"
	case Truncate:
		return "truncate"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// DefaultLatency is the sleep of a Latency event with zero Delay.
const DefaultLatency = 100 * time.Microsecond

// Event is one scheduled fault. It fires when a read first reaches
// Offset; reads spanning the offset are split so the fault lands
// exactly there.
type Event struct {
	Offset int64
	Kind   Kind
	Delay  time.Duration // Latency only
}

// ErrTransient matches (via errors.Is) every injected transient fault.
var ErrTransient = errors.New("faultfs: injected transient fault")

// transientError is the injected transient failure: it advertises
// Temporary() == true and unwraps to both ErrTransient and
// syscall.EAGAIN, which is what retrying readers classify on.
type transientError struct{ off int64 }

func (e *transientError) Error() string {
	return fmt.Sprintf("%v at byte %d (%v)", ErrTransient, e.off, syscall.EAGAIN)
}

func (e *transientError) Temporary() bool { return true }

func (e *transientError) Unwrap() []error { return []error{ErrTransient, syscall.EAGAIN} }

// FS wraps an inner file system (the OS when nil), injecting the
// faults Plan schedules for each (path, nth open). It implements the
// matrix package's FS seam; the faults it injected are reported by
// FaultsInjected, which the pipeline surfaces as the faults_injected
// counter. Safe for concurrent opens and reads of distinct files.
type FS struct {
	// Inner opens the real files; nil means the operating system.
	Inner interface {
		Open(path string) (io.ReadCloser, error)
	}
	// Plan returns the fault schedule for the open-th open of path
	// (0-based). nil — or a nil schedule — means no faults for that
	// open. Events may be listed in any order. See Seeded for a
	// reproducible pseudo-random plan.
	Plan func(path string, open int) []Event
	// OpenErr, when non-nil, may fail the open itself (nil return
	// means success); transient open errors exercise the open-retry
	// path of hardened readers.
	OpenErr func(path string, open int) error

	mu     sync.Mutex
	opens  map[string]int
	faults atomic.Int64
}

// Open implements the FS seam.
func (f *FS) Open(path string) (io.ReadCloser, error) {
	f.mu.Lock()
	if f.opens == nil {
		f.opens = make(map[string]int)
	}
	open := f.opens[path]
	f.opens[path]++
	f.mu.Unlock()
	if f.OpenErr != nil {
		if err := f.OpenErr(path, open); err != nil {
			f.faults.Add(1)
			return nil, err
		}
	}
	inner := f.Inner
	var (
		file io.ReadCloser
		err  error
	)
	if inner == nil {
		file, err = os.Open(path)
	} else {
		file, err = inner.Open(path)
	}
	if err != nil {
		return nil, err
	}
	var events []Event
	if f.Plan != nil {
		events = append(events, f.Plan(path, open)...)
		sort.SliceStable(events, func(a, b int) bool { return events[a].Offset < events[b].Offset })
	}
	return &reader{f: file, events: events, faults: &f.faults}, nil
}

// FaultsInjected returns how many faults this FS has injected so far.
// Safe for concurrent use.
func (f *FS) FaultsInjected() int64 { return f.faults.Load() }

// Opens returns how many times path has been opened.
func (f *FS) Opens(path string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.opens[path]
}

// TransientOpens returns an OpenErr failing the first n opens of every
// path transiently.
func TransientOpens(n int) func(path string, open int) error {
	return func(_ string, open int) error {
		if open < n {
			return &transientError{off: -1}
		}
		return nil
	}
}

// reader injects the scheduled events into one file's read stream.
type reader struct {
	f         io.ReadCloser
	events    []Event // sorted by offset
	next      int
	off       int64
	truncated bool
	faults    *atomic.Int64
}

func (r *reader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return r.f.Read(p)
	}
	// Fire every event scheduled at or before the current offset.
	for r.next < len(r.events) {
		ev := r.events[r.next]
		if ev.Offset > r.off {
			break
		}
		switch ev.Kind {
		case Transient:
			r.next++
			r.faults.Add(1)
			return 0, &transientError{off: r.off}
		case Latency:
			r.next++
			r.faults.Add(1)
			d := ev.Delay
			if d <= 0 {
				d = DefaultLatency
			}
			time.Sleep(d)
		case ShortRead:
			r.next++
			r.faults.Add(1)
			p = p[:1]
		case Truncate:
			if !r.truncated {
				r.truncated = true
				r.faults.Add(1)
			}
			return 0, io.EOF
		default:
			r.next++
		}
	}
	// Split the read so the next event fires exactly at its offset.
	if r.next < len(r.events) {
		if room := r.events[r.next].Offset - r.off; int64(len(p)) > room {
			p = p[:room]
		}
	}
	n, err := r.f.Read(p)
	r.off += int64(n)
	return n, err
}

func (r *reader) Close() error { return r.f.Close() }

// Options shapes the Seeded plan generator.
type Options struct {
	// MeanGap approximates the bytes between injected faults;
	// default 4096.
	MeanGap int64
	// Kinds are the fault kinds drawn from; default Transient,
	// ShortRead and Latency — every kind a retrying reader absorbs
	// without observable effect.
	Kinds []Kind
	// MaxLatency bounds injected sleeps; default 200µs.
	MaxLatency time.Duration
	// MaxBytes bounds the file region faults are drawn in;
	// default 1 MiB.
	MaxBytes int64
}

// Seeded returns a Plan drawing a reproducible schedule for every
// (path, open) pair: the same seed, path and open index always produce
// the same events, so a run under the plan is a pure function of
// (data, seed) — the property the chaos-differential harness relies
// on.
func Seeded(seed uint64, opts Options) func(path string, open int) []Event {
	gap := opts.MeanGap
	if gap <= 0 {
		gap = 4096
	}
	kinds := opts.Kinds
	if len(kinds) == 0 {
		kinds = []Kind{Transient, ShortRead, Latency}
	}
	maxLatency := opts.MaxLatency
	if maxLatency <= 0 {
		maxLatency = 200 * time.Microsecond
	}
	maxBytes := opts.MaxBytes
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	return func(path string, open int) []Event {
		h := fnv.New64a()
		h.Write([]byte(path))
		rng := hashing.NewSplitMix64(seed ^ h.Sum64() ^ (uint64(open)+1)*0x9e3779b97f4a7c15)
		var events []Event
		for off := int64(0); ; {
			off += 1 + int64(rng.Intn(int(2*gap)))
			if off >= maxBytes {
				return events
			}
			ev := Event{Offset: off, Kind: kinds[rng.Intn(len(kinds))]}
			if ev.Kind == Latency {
				ev.Delay = time.Duration(1 + rng.Intn(int(maxLatency)))
			}
			events = append(events, ev)
		}
	}
}
