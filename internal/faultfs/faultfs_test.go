package faultfs_test

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"syscall"
	"testing"
	"time"

	"assocmine/internal/faultfs"
	"assocmine/internal/matrix"
)

// memFS serves fixed byte contents per path, so reader tests need no
// real files.
type memFS map[string][]byte

func (m memFS) Open(path string) (io.ReadCloser, error) {
	data, ok := m[path]
	if !ok {
		return nil, os.ErrNotExist
	}
	return io.NopCloser(bytes.NewReader(data)), nil
}

// readAllRetrying drains r, retrying transient errors without bound —
// a stand-in for the hardened reader of matrix.FileSource.
func readAllRetrying(t *testing.T, r io.Reader) []byte {
	t.Helper()
	var out []byte
	buf := make([]byte, 7) // odd size to exercise read splitting
	for {
		n, err := r.Read(buf)
		out = append(out, buf[:n]...)
		if err == io.EOF {
			return out
		}
		if err != nil && !matrix.IsTransient(err) {
			t.Fatalf("permanent error after %d bytes: %v", len(out), err)
		}
	}
}

func TestTransientFaultIsRetriableAndPositionPreserving(t *testing.T) {
	data := []byte("0123456789abcdef")
	fs := &faultfs.FS{
		Inner: memFS{"f": data},
		Plan: func(string, int) []faultfs.Event {
			return []faultfs.Event{{Offset: 5, Kind: faultfs.Transient}}
		},
	}
	f, err := fs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got := readAllRetrying(t, f)
	if !bytes.Equal(got, data) {
		t.Fatalf("retried stream = %q, want %q", got, data)
	}
	if n := fs.FaultsInjected(); n != 1 {
		t.Fatalf("FaultsInjected = %d, want 1", n)
	}
}

func TestTransientErrorClassifiesAsTransient(t *testing.T) {
	fs := &faultfs.FS{
		Inner: memFS{"f": []byte("abc")},
		Plan: func(string, int) []faultfs.Event {
			return []faultfs.Event{{Offset: 0, Kind: faultfs.Transient}}
		},
	}
	f, err := fs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	_, err = f.Read(make([]byte, 4))
	if err == nil {
		t.Fatal("want injected error")
	}
	if !matrix.IsTransient(err) {
		t.Errorf("IsTransient(%v) = false", err)
	}
	if !errors.Is(err, faultfs.ErrTransient) {
		t.Errorf("errors.Is(err, ErrTransient) = false for %v", err)
	}
	if !errors.Is(err, syscall.EAGAIN) {
		t.Errorf("errors.Is(err, EAGAIN) = false for %v", err)
	}
}

func TestShortReadCapsAtOneByte(t *testing.T) {
	fs := &faultfs.FS{
		Inner: memFS{"f": []byte("0123456789")},
		Plan: func(string, int) []faultfs.Event {
			return []faultfs.Event{{Offset: 3, Kind: faultfs.ShortRead}}
		},
	}
	f, err := fs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 10)
	// First read is split so the event fires exactly at offset 3.
	n, err := f.Read(buf)
	if err != nil || n != 3 {
		t.Fatalf("read 1 = %d, %v; want 3, nil", n, err)
	}
	n, err = f.Read(buf)
	if err != nil || n != 1 {
		t.Fatalf("short read = %d, %v; want 1, nil", n, err)
	}
	got := append([]byte{}, buf[:1]...)
	rest := readAllRetrying(t, f)
	if want := "3456789"; string(append(got, rest...)) != want {
		t.Fatalf("stream after split = %q, want %q", append(got, rest...), want)
	}
}

func TestLatencyDelaysButPreservesBytes(t *testing.T) {
	data := []byte("0123456789")
	delay := 20 * time.Millisecond
	fs := &faultfs.FS{
		Inner: memFS{"f": data},
		Plan: func(string, int) []faultfs.Event {
			return []faultfs.Event{{Offset: 2, Kind: faultfs.Latency, Delay: delay}}
		},
	}
	f, err := fs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	got := readAllRetrying(t, f)
	if !bytes.Equal(got, data) {
		t.Fatalf("stream = %q, want %q", got, data)
	}
	if elapsed := time.Since(start); elapsed < delay {
		t.Errorf("elapsed %v < injected latency %v", elapsed, delay)
	}
}

func TestTruncateIsPermanentEOF(t *testing.T) {
	fs := &faultfs.FS{
		Inner: memFS{"f": []byte("0123456789")},
		Plan: func(string, int) []faultfs.Event {
			return []faultfs.Event{{Offset: 4, Kind: faultfs.Truncate}}
		},
	}
	f, err := fs.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := io.ReadAll(f)
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if string(got) != "0123" {
		t.Fatalf("truncated stream = %q, want %q", got, "0123")
	}
	// EOF must persist.
	if n, err := f.Read(make([]byte, 4)); n != 0 || err != io.EOF {
		t.Fatalf("read past truncation = %d, %v; want 0, EOF", n, err)
	}
	if n := fs.FaultsInjected(); n != 1 {
		t.Fatalf("FaultsInjected = %d, want 1 (truncation counts once)", n)
	}
}

func TestPerOpenPlansAndOpenCounts(t *testing.T) {
	fs := &faultfs.FS{
		Inner: memFS{"f": []byte("0123456789")},
		Plan: func(_ string, open int) []faultfs.Event {
			if open == 0 {
				return []faultfs.Event{{Offset: 1, Kind: faultfs.Transient}}
			}
			return nil
		},
	}
	for i := 0; i < 2; i++ {
		f, err := fs.Open("f")
		if err != nil {
			t.Fatal(err)
		}
		got := readAllRetrying(t, f)
		f.Close()
		if string(got) != "0123456789" {
			t.Fatalf("open %d stream = %q", i, got)
		}
	}
	if n := fs.FaultsInjected(); n != 1 {
		t.Fatalf("FaultsInjected = %d, want 1 (second open clean)", n)
	}
	if n := fs.Opens("f"); n != 2 {
		t.Fatalf("Opens = %d, want 2", n)
	}
}

func TestTransientOpens(t *testing.T) {
	fs := &faultfs.FS{
		Inner:   memFS{"f": []byte("abc")},
		OpenErr: faultfs.TransientOpens(2),
	}
	for i := 0; i < 2; i++ {
		if _, err := fs.Open("f"); err == nil || !matrix.IsTransient(err) {
			t.Fatalf("open %d: err = %v, want transient", i, err)
		}
	}
	f, err := fs.Open("f")
	if err != nil {
		t.Fatalf("open 2: %v", err)
	}
	f.Close()
}

func TestSeededPlansAreDeterministic(t *testing.T) {
	opts := faultfs.Options{MeanGap: 64, MaxBytes: 4096}
	a := faultfs.Seeded(42, opts)
	b := faultfs.Seeded(42, opts)
	pa, pb := a("x.arows", 0), b("x.arows", 0)
	if len(pa) == 0 {
		t.Fatal("seeded plan produced no events; MeanGap too large?")
	}
	if !reflect.DeepEqual(pa, pb) {
		t.Fatal("same (seed, path, open) produced different plans")
	}
	if reflect.DeepEqual(pa, a("x.arows", 1)) {
		t.Error("distinct opens produced identical plans")
	}
	if reflect.DeepEqual(pa, a("y.arows", 0)) {
		t.Error("distinct paths produced identical plans")
	}
	if reflect.DeepEqual(pa, faultfs.Seeded(43, opts)("x.arows", 0)) {
		t.Error("distinct seeds produced identical plans")
	}
	for _, ev := range pa {
		if ev.Kind == faultfs.Truncate {
			t.Errorf("default kinds must exclude Truncate, got %v at %d", ev.Kind, ev.Offset)
		}
	}
}

// writeArows saves a small synthetic dataset in the row-binary format
// and returns its path.
func writeArows(t *testing.T, rows, cols int) string {
	t.Helper()
	var rowData [][]int32
	for r := 0; r < rows; r++ {
		var cs []int32
		for c := r % cols; c < cols; c += 3 {
			cs = append(cs, int32(c))
		}
		rowData = append(rowData, cs)
	}
	src := &matrix.SliceSource{Cols: cols, Rows: rowData}
	path := filepath.Join(t.TempDir(), "data.arows")
	if err := matrix.SaveRowBinary(path, src); err != nil {
		t.Fatal(err)
	}
	return path
}

// collectRows scans src into a materialised [][]int32.
func collectRows(t *testing.T, src *matrix.FileSource) [][]int32 {
	t.Helper()
	out := make([][]int32, src.NumRows())
	err := src.Scan(func(row int, cols []int32) error {
		out[row] = append([]int32(nil), cols...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestFileSourceRidesOutSeededTransientFaults(t *testing.T) {
	path := writeArows(t, 200, 30)
	clean, err := matrix.OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	want := collectRows(t, clean)

	fs := &faultfs.FS{
		Plan:    faultfs.Seeded(7, faultfs.Options{MeanGap: 128}),
		OpenErr: faultfs.TransientOpens(1),
	}
	src, err := matrix.OpenFileSourceFS(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	src.SetRetryPolicy(matrix.RetryPolicy{Retries: 4, BaseDelay: 10 * time.Microsecond})
	got := collectRows(t, src)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("faulted scan differs from clean scan")
	}
	if fs.FaultsInjected() == 0 {
		t.Fatal("plan injected no faults; test exercises nothing")
	}
	if src.IORetries() == 0 {
		t.Fatal("source reports zero retries despite transient faults")
	}
	if src.FaultsInjected() != fs.FaultsInjected() {
		t.Fatalf("source FaultsInjected = %d, FS reports %d",
			src.FaultsInjected(), fs.FaultsInjected())
	}
}

func TestFileSourceTruncationIsFileErrorWithOffset(t *testing.T) {
	path := writeArows(t, 200, 30)
	const cut = 100
	fs := &faultfs.FS{
		Plan: func(string, int) []faultfs.Event {
			return []faultfs.Event{{Offset: cut, Kind: faultfs.Truncate}}
		},
	}
	src, err := matrix.OpenFileSourceFS(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	err = src.Scan(func(int, []int32) error { return nil })
	var fe *matrix.FileError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want *matrix.FileError", err)
	}
	if fe.Path != path {
		t.Errorf("FileError.Path = %q, want %q", fe.Path, path)
	}
	// The decoder consumed at most cut bytes before hitting EOF; the
	// reported offset must sit inside the surviving prefix.
	if fe.Offset <= 0 || fe.Offset > cut {
		t.Errorf("FileError.Offset = %d, want in (0,%d]", fe.Offset, cut)
	}
	if !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
		t.Errorf("err = %v, want to wrap EOF-class cause", err)
	}
}

func TestFileSourceRetryBudgetExhaustion(t *testing.T) {
	path := writeArows(t, 50, 10)
	// Six transients at one offset: more than the initial read plus
	// four retries the default policy affords one position.
	events := make([]faultfs.Event, 6)
	for i := range events {
		events[i] = faultfs.Event{Offset: 40, Kind: faultfs.Transient}
	}
	fs := &faultfs.FS{Plan: func(string, int) []faultfs.Event { return events }}
	src, err := matrix.OpenFileSourceFS(fs, path)
	if err != nil {
		t.Fatal(err)
	}
	src.SetRetryPolicy(matrix.RetryPolicy{Retries: 4, BaseDelay: 10 * time.Microsecond})
	err = src.Scan(func(int, []int32) error { return nil })
	var fe *matrix.FileError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want *matrix.FileError after retry exhaustion", err)
	}
	if !errors.Is(err, faultfs.ErrTransient) {
		t.Errorf("err = %v, want to wrap the surviving transient fault", err)
	}
	if got := src.IORetries(); got != 4 {
		t.Errorf("IORetries = %d, want 4 (the full budget)", got)
	}
}
