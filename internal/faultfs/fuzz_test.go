package faultfs_test

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"reflect"
	"testing"
	"time"

	"assocmine/internal/faultfs"
	"assocmine/internal/matrix"
)

// fuzzRows spans the 512-row shard boundary of matrix.ScanShards so
// faults seeded there land inside the dataset.
const (
	fuzzRows = matrix.DefaultShardRows + 64
	fuzzCols = 24
)

// fuzzDataset encodes the fixed fuzz dataset in the row-binary format
// and returns the bytes plus the materialised rows.
func fuzzDataset(tb testing.TB) ([]byte, [][]int32) {
	tb.Helper()
	rows := make([][]int32, fuzzRows)
	for r := range rows {
		for c := r % 5; c < fuzzCols; c += 2 + r%3 {
			rows[r] = append(rows[r], int32(c))
		}
	}
	src := &matrix.SliceSource{Cols: fuzzCols, Rows: rows}
	var buf bytes.Buffer
	if err := matrix.WriteRowBinary(&buf, src); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes(), rows
}

// rowOffset walks the encoded stream and returns the byte offset at
// which the given row's length varint begins.
func rowOffset(tb testing.TB, encoded []byte, row int) int64 {
	tb.Helper()
	r := bytes.NewReader(encoded)
	off := func() int64 { return int64(len(encoded)) - int64(r.Len()) }
	if _, err := r.Seek(4, 0); err != nil { // magic
		tb.Fatal(err)
	}
	for i := 0; i < 2; i++ { // rows, cols
		if _, err := binary.ReadUvarint(r); err != nil {
			tb.Fatal(err)
		}
	}
	for rr := 0; rr < row; rr++ {
		length, err := binary.ReadUvarint(r)
		if err != nil {
			tb.Fatal(err)
		}
		for i := uint64(0); i < length; i++ {
			if _, err := binary.ReadUvarint(r); err != nil {
				tb.Fatal(err)
			}
		}
	}
	return off()
}

// decodePlan turns fuzz bytes into a fault plan: 4 bytes per event —
// offset (little-endian uint16), kind, latency delay in µs. Capped at
// 64 events so injected sleeps cannot stall the fuzzer.
func decodePlan(data []byte) []faultfs.Event {
	var events []faultfs.Event
	for i := 0; i+4 <= len(data) && len(events) < 64; i += 4 {
		ev := faultfs.Event{
			Offset: int64(binary.LittleEndian.Uint16(data[i:])),
			Kind:   faultfs.Kind(data[i+2] % 4),
		}
		if ev.Kind == faultfs.Latency {
			ev.Delay = time.Duration(data[i+3]) * time.Microsecond
		}
		events = append(events, ev)
	}
	return events
}

func encodeEvents(events []faultfs.Event) []byte {
	out := make([]byte, 0, 4*len(events))
	for _, ev := range events {
		var b [4]byte
		binary.LittleEndian.PutUint16(b[:], uint16(ev.Offset))
		b[2] = byte(ev.Kind)
		out = append(out, b[:]...)
	}
	return out
}

// FuzzPlanRowBinary composes arbitrary fault plans with the row-binary
// scanner: whatever the plan, the scan must either fail with an error
// or deliver a result bit-identical to the clean scan — never panic,
// never silently corrupt rows.
func FuzzPlanRowBinary(f *testing.F) {
	encoded, want := fuzzDataset(f)
	boundary := rowOffset(f, encoded, matrix.DefaultShardRows)

	f.Add([]byte{})
	// Faults landing exactly on the shard boundary, one per kind.
	for k := faultfs.Transient; k <= faultfs.Truncate; k++ {
		f.Add(encodeEvents([]faultfs.Event{{Offset: boundary, Kind: k}}))
	}
	// A burst of transients at the boundary exceeding the retry budget,
	// and a mixed plan straddling it.
	burst := make([]faultfs.Event, 8)
	for i := range burst {
		burst[i] = faultfs.Event{Offset: boundary, Kind: faultfs.Transient}
	}
	f.Add(encodeEvents(burst))
	f.Add(encodeEvents([]faultfs.Event{
		{Offset: boundary - 1, Kind: faultfs.ShortRead},
		{Offset: boundary, Kind: faultfs.Transient},
		{Offset: boundary + 1, Kind: faultfs.Latency},
	}))
	f.Add(encodeEvents([]faultfs.Event{{Offset: 0, Kind: faultfs.Truncate}}))

	f.Fuzz(func(t *testing.T, data []byte) {
		events := decodePlan(data)
		fs := &faultfs.FS{
			Inner: memFS{"data.arows": encoded},
			Plan:  func(string, int) []faultfs.Event { return events },
		}
		src, err := matrix.OpenFileSourceFS(fs, "data.arows")
		if err != nil {
			return // header unreadable under this plan: a clean failure
		}
		src.SetRetryPolicy(matrix.RetryPolicy{Retries: 4, BaseDelay: time.Microsecond})
		got := make([][]int32, 0, fuzzRows)
		err = src.Scan(func(row int, cols []int32) error {
			if row != len(got) {
				return fmt.Errorf("row %d delivered out of order (want %d)", row, len(got))
			}
			got = append(got, append([]int32(nil), cols...))
			return nil
		})
		if err != nil {
			return // surfaced error: acceptable outcome
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("scan under plan %v succeeded with corrupted rows", events)
		}
	})
}
