// Package gen provides the workload generators behind the experiments:
// the paper-specified synthetic data (Section 5), a web-server-log
// generator standing in for the proprietary Sun Microsystems dataset,
// and a news-corpus generator standing in for the Reuters articles of
// Section 2. DESIGN.md documents why each substitution preserves the
// behaviour the paper measures.
package gen

import (
	"fmt"
	"math"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
	"assocmine/internal/pairs"
)

// PlantedPair records a deliberately similar column pair and the
// similarity it was generated to have (the realised similarity varies
// around the target).
type PlantedPair struct {
	I, J      int32
	TargetSim float64
}

// SyntheticConfig follows Section 5's synthetic data description: m
// columns with densities between MinDensity and MaxDensity, one similar
// pair per 100 columns, split evenly across the five similarity ranges
// (45,55), (55,65), (65,75), (75,85), (85,95) percent.
type SyntheticConfig struct {
	Rows, Cols int
	MinDensity float64 // default 0.01
	MaxDensity float64 // default 0.05
	// SimRanges lists [lo, hi] similarity ranges for planted pairs;
	// defaults to the paper's five ranges.
	SimRanges [][2]float64
	// PairsPerRange is the number of planted pairs per range; defaults
	// to Cols/100/len(SimRanges) (the paper's one pair per 100 columns).
	PairsPerRange int
	Seed          uint64
}

func (c *SyntheticConfig) setDefaults() error {
	if c.Rows <= 0 || c.Cols <= 0 {
		return fmt.Errorf("gen: rows and cols must be positive, got %dx%d", c.Rows, c.Cols)
	}
	if c.MinDensity == 0 {
		c.MinDensity = 0.01
	}
	if c.MaxDensity == 0 {
		c.MaxDensity = 0.05
	}
	if c.MinDensity <= 0 || c.MaxDensity > 1 || c.MinDensity > c.MaxDensity {
		return fmt.Errorf("gen: bad density range [%v, %v]", c.MinDensity, c.MaxDensity)
	}
	if c.SimRanges == nil {
		c.SimRanges = [][2]float64{{0.45, 0.55}, {0.55, 0.65}, {0.65, 0.75}, {0.75, 0.85}, {0.85, 0.95}}
	}
	for _, r := range c.SimRanges {
		if r[0] < 0 || r[1] > 1 || r[0] >= r[1] {
			return fmt.Errorf("gen: bad similarity range %v", r)
		}
	}
	if c.PairsPerRange == 0 {
		c.PairsPerRange = c.Cols / 100 / len(c.SimRanges)
		if c.PairsPerRange < 1 {
			c.PairsPerRange = 1
		}
	}
	if c.PairsPerRange < 0 {
		return fmt.Errorf("gen: PairsPerRange must be non-negative")
	}
	if 2*c.PairsPerRange*len(c.SimRanges) > c.Cols {
		return fmt.Errorf("gen: %d planted pairs need %d columns, have %d",
			c.PairsPerRange*len(c.SimRanges), 2*c.PairsPerRange*len(c.SimRanges), c.Cols)
	}
	return nil
}

// Synthetic generates the Section 5 synthetic dataset. Planted pairs
// occupy the first 2·PairsPerRange·len(SimRanges) columns (pair (2t,
// 2t+1)); the remaining columns are independent.
func Synthetic(cfg SyntheticConfig) (*matrix.Matrix, []PlantedPair, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, nil, err
	}
	rng := hashing.NewSplitMix64(cfg.Seed)
	cols := make([][]int32, cfg.Cols)
	var planted []PlantedPair
	next := 0
	for _, rge := range cfg.SimRanges {
		for p := 0; p < cfg.PairsPerRange; p++ {
			s := rge[0] + rng.Float64()*(rge[1]-rge[0])
			d := cfg.MinDensity + rng.Float64()*(cfg.MaxDensity-cfg.MinDensity)
			a, b := plantPair(rng, cfg.Rows, d, s)
			cols[next], cols[next+1] = a, b
			planted = append(planted, PlantedPair{I: int32(next), J: int32(next + 1), TargetSim: s})
			next += 2
		}
	}
	for ; next < cfg.Cols; next++ {
		d := cfg.MinDensity + rng.Float64()*(cfg.MaxDensity-cfg.MinDensity)
		cols[next] = bernoulliRows(rng, cfg.Rows, d)
	}
	m, err := matrix.New(cfg.Rows, cols)
	if err != nil {
		return nil, nil, err
	}
	return m, planted, nil
}

// plantPair generates two columns of density ~d with expected Jaccard
// similarity s: a row is in both with probability 2ds/(1+s) and in each
// column alone with probability d(1-s)/(1+s).
func plantPair(rng *hashing.SplitMix64, rows int, d, s float64) (a, b []int32) {
	pBoth := 2 * d * s / (1 + s)
	pOnly := d * (1 - s) / (1 + s)
	for r := 0; r < rows; r++ {
		u := rng.Float64()
		switch {
		case u < pBoth:
			a = append(a, int32(r))
			b = append(b, int32(r))
		case u < pBoth+pOnly:
			a = append(a, int32(r))
		case u < pBoth+2*pOnly:
			b = append(b, int32(r))
		}
	}
	return a, b
}

// bernoulliRows samples each of n rows independently with probability
// p, using geometric gap skipping so the cost is proportional to the
// number of 1s rather than n.
func bernoulliRows(rng *hashing.SplitMix64, n int, p float64) []int32 {
	if p <= 0 {
		return nil
	}
	if p >= 1 {
		out := make([]int32, n)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	var out []int32
	logq := math.Log(1 - p)
	r := 0
	for {
		u := rng.Float64()
		if u == 0 {
			u = 1e-18
		}
		r += int(math.Log(u)/logq) + 1
		if r > n {
			return out
		}
		out = append(out, int32(r-1))
	}
}

// PlantedSet converts planted pairs to a pair set for recall scoring.
func PlantedSet(planted []PlantedPair) *pairs.Set {
	s := pairs.NewSet(len(planted))
	for _, p := range planted {
		s.Add(p.I, p.J)
	}
	return s
}
