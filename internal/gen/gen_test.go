package gen

import (
	"math"
	"testing"
	"testing/quick"

	"assocmine/internal/hashing"
)

func TestSyntheticValidation(t *testing.T) {
	bad := []SyntheticConfig{
		{Rows: 0, Cols: 10},
		{Rows: 10, Cols: 0},
		{Rows: 10, Cols: 10, MinDensity: 0.5, MaxDensity: 0.1},
		{Rows: 10, Cols: 10, MinDensity: -0.1, MaxDensity: 0.1},
		{Rows: 10, Cols: 10, SimRanges: [][2]float64{{0.9, 0.8}}},
		{Rows: 10, Cols: 4, PairsPerRange: 10},
		{Rows: 10, Cols: 10, PairsPerRange: -1},
	}
	for i, cfg := range bad {
		if _, _, err := Synthetic(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestSyntheticDimensionsAndDensity(t *testing.T) {
	m, planted, err := Synthetic(SyntheticConfig{Rows: 2000, Cols: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows() != 2000 || m.NumCols() != 500 {
		t.Fatalf("dims %dx%d", m.NumRows(), m.NumCols())
	}
	// Default: 500/100/5 = 1 pair per range, 5 ranges.
	if len(planted) != 5 {
		t.Fatalf("planted %d pairs, want 5", len(planted))
	}
	// All densities within (loose) range.
	for c := 0; c < m.NumCols(); c++ {
		d := m.Density(c)
		if d > 0.10 {
			t.Errorf("column %d density %v way above max", c, d)
		}
	}
}

// TestSyntheticPlantedSimilarities: realised similarities must land
// near their targets.
func TestSyntheticPlantedSimilarities(t *testing.T) {
	m, planted, err := Synthetic(SyntheticConfig{
		Rows: 20000, Cols: 100, PairsPerRange: 2, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(planted) != 10 {
		t.Fatalf("planted %d pairs", len(planted))
	}
	for _, p := range planted {
		got := m.Similarity(int(p.I), int(p.J))
		if math.Abs(got-p.TargetSim) > 0.08 {
			t.Errorf("pair (%d,%d): sim %v, target %v", p.I, p.J, got, p.TargetSim)
		}
	}
	// Non-planted columns should be near-independent: sim of two random
	// densities 1-5% columns is tiny.
	if s := m.Similarity(int(planted[0].I), int(planted[1].I)); s > 0.2 {
		t.Errorf("cross-pair similarity %v unexpectedly high", s)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a, _, _ := Synthetic(SyntheticConfig{Rows: 500, Cols: 50, Seed: 42})
	b, _, _ := Synthetic(SyntheticConfig{Rows: 500, Cols: 50, Seed: 42})
	if a.Ones() != b.Ones() {
		t.Fatal("same seed, different matrices")
	}
	c, _, _ := Synthetic(SyntheticConfig{Rows: 500, Cols: 50, Seed: 43})
	if a.Ones() == c.Ones() {
		t.Log("warning: different seeds gave same Ones count (possible but unlikely)")
	}
}

func TestBernoulliRows(t *testing.T) {
	rng := hashing.NewSplitMix64(3)
	const n, p = 100000, 0.03
	rows := bernoulliRows(rng, n, p)
	got := float64(len(rows)) / n
	if math.Abs(got-p) > 0.005 {
		t.Errorf("realised density %v, want %v", got, p)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i-1] >= rows[i] {
			t.Fatal("bernoulliRows not strictly increasing")
		}
	}
	if rows[len(rows)-1] >= n {
		t.Fatal("row index out of range")
	}
	if bernoulliRows(rng, 10, 0) != nil {
		t.Error("p=0 should give no rows")
	}
	if got := bernoulliRows(rng, 10, 1); len(got) != 10 {
		t.Errorf("p=1 gave %d rows", len(got))
	}
}

func TestPlantedSet(t *testing.T) {
	s := PlantedSet([]PlantedPair{{I: 0, J: 1}, {I: 4, J: 2}})
	if !s.Contains(0, 1) || !s.Contains(2, 4) {
		t.Error("PlantedSet missing pairs")
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestQuickPlantPairSimilarity(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hashing.NewSplitMix64(seed)
		s := 0.3 + rng.Float64()*0.6
		d := 0.02 + rng.Float64()*0.05
		a, b := plantPair(rng, 30000, d, s)
		inter, union := 0, 0
		ai, bi := 0, 0
		for ai < len(a) && bi < len(b) {
			switch {
			case a[ai] < b[bi]:
				ai++
				union++
			case a[ai] > b[bi]:
				bi++
				union++
			default:
				ai++
				bi++
				inter++
				union++
			}
		}
		union += len(a) - ai + len(b) - bi
		if union == 0 {
			return true
		}
		got := float64(inter) / float64(union)
		return math.Abs(got-s) < 0.12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
