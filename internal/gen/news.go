package gen

import (
	"fmt"
	"math"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

// Collocation is a planted word pair that co-occurs with high
// confidence but low support — the Fig. 1 phenomenon ("Dalai Lama",
// "Beluga caviar and Ketel vodka").
type Collocation struct {
	A, B string
	// Rate is the fraction of documents mentioning the pair; defaults
	// to a value drawn in [0.002, 0.01] when zero.
	Rate float64
	// Together is the probability both words appear given the topic is
	// mentioned (the rest of the time only one appears); defaults to 0.9.
	Together float64
}

// Fig1Collocations returns the pair list of the paper's Fig. 1 — the
// qualitative output the news experiment reproduces.
func Fig1Collocations() []Collocation {
	ps := [][2]string{
		{"dalai", "lama"}, {"meryl", "streep"}, {"bertolt", "brecht"},
		{"buenos", "aires"}, {"darth", "vader"},
		{"pneumocystis", "carinii"}, {"meseo", "oceania"}, {"fibrosis", "cystic"},
		{"avant", "garde"}, {"mache", "papier"}, {"cosa", "nostra"},
		{"hors", "oeuvres"}, {"presse", "agence"},
		{"encyclopedia", "britannica"}, {"salman", "satanic"},
		{"mardi", "gras"}, {"emperor", "hirohito"},
	}
	out := make([]Collocation, len(ps))
	for i, p := range ps {
		out[i] = Collocation{A: p[0], B: p[1]}
	}
	return out
}

// ChessCluster returns the paper's example word cluster (a chess
// event): a group of words mutually similar pairwise.
func ChessCluster() []string {
	return []string{"chess", "timman", "karpov", "soviet", "ivanchuk", "polgar"}
}

// NewsConfig models the Reuters news corpus of Section 2: rows are
// documents, columns are words. Background words follow a Zipf
// frequency distribution; planted collocations and clusters provide the
// low-support, high-similarity structure the paper mines.
type NewsConfig struct {
	Docs  int // rows
	Vocab int // background vocabulary size (planted words are added on top)
	// WordsPerDoc is the mean number of distinct background words per
	// document (Poisson). Defaults to 40.
	WordsPerDoc float64
	// ZipfS is the background word-frequency exponent. Defaults to 1.05.
	ZipfS float64
	// Collocations are the planted pairs; defaults to Fig1Collocations.
	Collocations []Collocation
	// Cluster is a planted word cluster; defaults to ChessCluster. Nil
	// slice with ClusterRate 0 disables it.
	Cluster []string
	// ClusterRate is the fraction of documents about the cluster topic;
	// defaults to 0.004.
	ClusterRate float64
	Seed        uint64
}

// News is a generated corpus: the matrix, the word for every column,
// and the planted structures by column index.
type News struct {
	Matrix *matrix.Matrix
	Words  []string
	// PlantedPairs holds the collocation column pairs.
	PlantedPairs []PlantedPair
	// ClusterCols holds the planted cluster's columns.
	ClusterCols []int32
}

// WordIndex returns the column of a word, or -1.
func (n *News) WordIndex(w string) int32 {
	for i, word := range n.Words {
		if word == w {
			return int32(i)
		}
	}
	return -1
}

func (c *NewsConfig) setDefaults() error {
	if c.Docs <= 0 || c.Vocab <= 0 {
		return fmt.Errorf("gen: docs and vocab must be positive, got %dx%d", c.Docs, c.Vocab)
	}
	if c.WordsPerDoc == 0 {
		c.WordsPerDoc = 40
	}
	if c.WordsPerDoc <= 0 {
		return fmt.Errorf("gen: WordsPerDoc must be positive")
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.05
	}
	if c.ZipfS <= 0 {
		return fmt.Errorf("gen: ZipfS must be positive")
	}
	if c.Collocations == nil {
		c.Collocations = Fig1Collocations()
	}
	if c.Cluster == nil && c.ClusterRate == 0 {
		c.Cluster = ChessCluster()
	}
	if c.ClusterRate == 0 && len(c.Cluster) > 0 {
		c.ClusterRate = 0.004
	}
	if c.ClusterRate < 0 || c.ClusterRate > 1 {
		return fmt.Errorf("gen: ClusterRate must be in [0,1]")
	}
	return nil
}

// GenerateNews builds the news corpus.
func GenerateNews(cfg NewsConfig) (*News, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	rng := hashing.NewSplitMix64(cfg.Seed)

	// Column layout: background vocabulary first, then collocation
	// words, then cluster words.
	words := make([]string, 0, cfg.Vocab+2*len(cfg.Collocations)+len(cfg.Cluster))
	for i := 0; i < cfg.Vocab; i++ {
		words = append(words, fmt.Sprintf("w%05d", i))
	}
	var planted []PlantedPair
	colloCols := make([][2]int32, len(cfg.Collocations))
	for i, co := range cfg.Collocations {
		a := int32(len(words))
		words = append(words, co.A)
		b := int32(len(words))
		words = append(words, co.B)
		colloCols[i] = [2]int32{a, b}
		planted = append(planted, PlantedPair{I: a, J: b})
	}
	var clusterCols []int32
	for _, w := range cfg.Cluster {
		clusterCols = append(clusterCols, int32(len(words)))
		words = append(words, w)
	}
	totalCols := len(words)

	// Zipf cumulative weights over the background vocabulary.
	cum := make([]float64, cfg.Vocab)
	total := 0.0
	for i := 0; i < cfg.Vocab; i++ {
		total += 1 / math.Pow(float64(i+1), cfg.ZipfS)
		cum[i] = total
	}

	b := matrix.NewBuilder(cfg.Docs, totalCols)
	for doc := 0; doc < cfg.Docs; doc++ {
		// Background words.
		nWords := poisson(rng, cfg.WordsPerDoc)
		for w := 0; w < nWords; w++ {
			b.Set(doc, searchCum(cum, rng.Float64()*total))
		}
		// Collocations.
		for i, co := range cfg.Collocations {
			rate := co.Rate
			if rate == 0 {
				// Deterministic per-pair default rate in [0.002, 0.01].
				rate = 0.002 + 0.008*float64(i%5)/4
			}
			together := co.Together
			if together == 0 {
				together = 0.9
			}
			if rng.Float64() < rate {
				if rng.Float64() < together {
					b.Set(doc, int(colloCols[i][0]))
					b.Set(doc, int(colloCols[i][1]))
				} else if rng.Float64() < 0.5 {
					b.Set(doc, int(colloCols[i][0]))
				} else {
					b.Set(doc, int(colloCols[i][1]))
				}
			}
		}
		// Cluster topic.
		if len(clusterCols) > 0 && rng.Float64() < cfg.ClusterRate {
			for _, c := range clusterCols {
				if rng.Float64() < 0.85 {
					b.Set(doc, int(c))
				}
			}
		}
	}
	return &News{
		Matrix:       b.Build(),
		Words:        words,
		PlantedPairs: planted,
		ClusterCols:  clusterCols,
	}, nil
}
