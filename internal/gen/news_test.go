package gen

import (
	"testing"
)

func TestNewsValidation(t *testing.T) {
	bad := []NewsConfig{
		{Docs: 0, Vocab: 100},
		{Docs: 100, Vocab: 0},
		{Docs: 100, Vocab: 100, WordsPerDoc: -1},
		{Docs: 100, Vocab: 100, ZipfS: -1},
		{Docs: 100, Vocab: 100, ClusterRate: 2},
	}
	for i, cfg := range bad {
		if _, err := GenerateNews(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestNewsShape(t *testing.T) {
	n, err := GenerateNews(NewsConfig{Docs: 2000, Vocab: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantCols := 500 + 2*len(Fig1Collocations()) + len(ChessCluster())
	if n.Matrix.NumCols() != wantCols {
		t.Fatalf("cols = %d, want %d", n.Matrix.NumCols(), wantCols)
	}
	if len(n.Words) != wantCols {
		t.Fatalf("words = %d", len(n.Words))
	}
	if len(n.PlantedPairs) != len(Fig1Collocations()) {
		t.Fatalf("planted pairs = %d", len(n.PlantedPairs))
	}
	if len(n.ClusterCols) != len(ChessCluster()) {
		t.Fatalf("cluster cols = %d", len(n.ClusterCols))
	}
}

func TestNewsWordIndex(t *testing.T) {
	n, err := GenerateNews(NewsConfig{Docs: 100, Vocab: 50, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if idx := n.WordIndex("dalai"); idx < 0 || n.Words[idx] != "dalai" {
		t.Errorf("WordIndex(dalai) = %d", idx)
	}
	if idx := n.WordIndex("nonexistent"); idx != -1 {
		t.Errorf("WordIndex(nonexistent) = %d", idx)
	}
}

// TestNewsCollocationsLowSupportHighSimilarity: planted pairs must be
// rare (low support) yet highly similar — the exact regime the paper
// targets.
func TestNewsCollocationsLowSupportHighSimilarity(t *testing.T) {
	n, err := GenerateNews(NewsConfig{Docs: 30000, Vocab: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := n.Matrix
	highSim := 0
	for _, p := range n.PlantedPairs {
		// Low support: well under 2% of documents.
		if m.Density(int(p.I)) > 0.02 || m.Density(int(p.J)) > 0.02 {
			t.Errorf("planted word pair (%s,%s) has high support: %v / %v",
				n.Words[p.I], n.Words[p.J], m.Density(int(p.I)), m.Density(int(p.J)))
		}
		if m.Similarity(int(p.I), int(p.J)) > 0.6 {
			highSim++
		}
	}
	if highSim < len(n.PlantedPairs)*3/4 {
		t.Errorf("only %d/%d collocations highly similar", highSim, len(n.PlantedPairs))
	}
}

// TestNewsClusterPairwiseSimilar: most cluster word pairs must have
// noticeable similarity.
func TestNewsClusterPairwiseSimilar(t *testing.T) {
	n, err := GenerateNews(NewsConfig{Docs: 30000, Vocab: 2000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	m := n.Matrix
	good, total := 0, 0
	for a := 0; a < len(n.ClusterCols); a++ {
		for b := a + 1; b < len(n.ClusterCols); b++ {
			total++
			if m.Similarity(int(n.ClusterCols[a]), int(n.ClusterCols[b])) > 0.4 {
				good++
			}
		}
	}
	if good < total*3/4 {
		t.Errorf("only %d/%d cluster pairs similar", good, total)
	}
}

// TestNewsBackgroundIsZipf: the most frequent background word must be
// far more frequent than the median one.
func TestNewsBackgroundIsZipf(t *testing.T) {
	n, err := GenerateNews(NewsConfig{Docs: 5000, Vocab: 1000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	m := n.Matrix
	top := m.ColumnSize(0) // Zipf rank order is shuffled only in weblog; news keeps rank = column
	mid := m.ColumnSize(500)
	if top < 5*mid {
		t.Errorf("head word count %d not >> median word count %d", top, mid)
	}
}

func TestNewsDeterministic(t *testing.T) {
	a, _ := GenerateNews(NewsConfig{Docs: 500, Vocab: 100, Seed: 9})
	b, _ := GenerateNews(NewsConfig{Docs: 500, Vocab: 100, Seed: 9})
	if a.Matrix.Ones() != b.Matrix.Ones() {
		t.Error("same seed produced different corpora")
	}
}

func TestFig1CollocationsComplete(t *testing.T) {
	cs := Fig1Collocations()
	if len(cs) != 17 {
		t.Errorf("Fig. 1 has 17 pairs, got %d", len(cs))
	}
	seen := map[string]bool{}
	for _, c := range cs {
		if c.A == "" || c.B == "" || c.A == c.B {
			t.Errorf("bad collocation %+v", c)
		}
		if seen[c.A+"|"+c.B] {
			t.Errorf("duplicate collocation %+v", c)
		}
		seen[c.A+"|"+c.B] = true
	}
}
