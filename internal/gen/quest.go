package gen

import (
	"fmt"
	"sort"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

// QuestConfig parameterises an IBM-Quest-style synthetic transaction
// generator, the workload family ("T10.I4.D100K" etc.) of the a-priori
// papers the baseline implements [Agrawal & Srikant, VLDB '94]. Maximal
// potentially-frequent itemsets are drawn first; transactions are then
// assembled from those patterns with corruption, producing realistic
// market-basket data with genuine frequent-itemset structure for the
// a-priori comparison — and, with the default skewed pattern weights,
// plenty of low-support structure the signature algorithms can mine
// below a-priori's reach.
type QuestConfig struct {
	// Transactions (rows) and Items (columns).
	Transactions, Items int
	// AvgTransactionLen is T, the mean basket size (Poisson). Default 10.
	AvgTransactionLen float64
	// AvgPatternLen is I, the mean maximal-pattern size (Poisson,
	// minimum 2). Default 4.
	AvgPatternLen float64
	// NumPatterns is L, the number of maximal potentially-frequent
	// itemsets. Quest uses roughly 2 patterns per item (L=2000 for
	// N=1000); default 2*Items capped below at 20. Each pattern then
	// lands in a small fraction of transactions, which is what gives
	// pattern item pairs their high lift.
	NumPatterns int
	// CorruptionMean is the mean corruption level: the fraction of a
	// pattern's items dropped when it is inserted. Default 0.5 (the
	// Quest default).
	CorruptionMean float64
	Seed           uint64
}

// Quest holds the generated transactions plus the planted patterns
// (for recall scoring).
type Quest struct {
	Matrix   *matrix.Matrix
	Patterns [][]int32 // sorted item sets
}

func (c *QuestConfig) setDefaults() error {
	if c.Transactions <= 0 || c.Items <= 0 {
		return fmt.Errorf("gen: transactions and items must be positive, got %dx%d", c.Transactions, c.Items)
	}
	if c.AvgTransactionLen == 0 {
		c.AvgTransactionLen = 10
	}
	if c.AvgTransactionLen <= 0 {
		return fmt.Errorf("gen: AvgTransactionLen must be positive")
	}
	if c.AvgPatternLen == 0 {
		c.AvgPatternLen = 4
	}
	if c.AvgPatternLen <= 0 {
		return fmt.Errorf("gen: AvgPatternLen must be positive")
	}
	if c.NumPatterns == 0 {
		c.NumPatterns = 2 * c.Items
		if c.NumPatterns < 20 {
			c.NumPatterns = 20
		}
	}
	if c.NumPatterns < 1 {
		return fmt.Errorf("gen: NumPatterns must be positive")
	}
	if c.CorruptionMean == 0 {
		c.CorruptionMean = 0.5
	}
	if c.CorruptionMean < 0 || c.CorruptionMean >= 1 {
		return fmt.Errorf("gen: CorruptionMean must be in [0,1)")
	}
	return nil
}

// GenerateQuest builds the dataset.
func GenerateQuest(cfg QuestConfig) (*Quest, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	rng := hashing.NewSplitMix64(cfg.Seed)

	// Draw the maximal potentially-frequent patterns. Items within a
	// pattern cluster (consecutive pattern indices share items with
	// probability 1/2, Quest's "correlation" between successive
	// patterns).
	patterns := make([][]int32, cfg.NumPatterns)
	for p := range patterns {
		size := poisson(rng, cfg.AvgPatternLen-2) + 2
		set := map[int32]bool{}
		// Reuse a fraction of the previous pattern's items.
		if p > 0 {
			for _, it := range patterns[p-1] {
				if len(set) < size/2 && rng.Float64() < 0.5 {
					set[it] = true
				}
			}
		}
		for len(set) < size {
			set[int32(rng.Intn(cfg.Items))] = true
		}
		items := make([]int32, 0, len(set))
		for it := range set {
			items = append(items, it)
		}
		sort.Slice(items, func(a, b int) bool { return items[a] < items[b] })
		patterns[p] = items
	}

	// Pattern weights: exponential-ish skew via normalised powers, so a
	// few patterns are frequent and a long tail is rare (the regime the
	// paper mines below a-priori's support floor).
	cum := make([]float64, cfg.NumPatterns)
	total := 0.0
	for p := range cum {
		w := 1.0
		for i := 0; i < p%7; i++ {
			w *= 0.6
		}
		total += w
		cum[p] = total
	}
	// Per-pattern corruption level, drawn once (Quest draws from a
	// normal around the mean; a uniform around it is adequate).
	corruption := make([]float64, cfg.NumPatterns)
	for p := range corruption {
		c := cfg.CorruptionMean + (rng.Float64()-0.5)*0.4
		if c < 0 {
			c = 0
		}
		if c > 0.9 {
			c = 0.9
		}
		corruption[p] = c
	}

	b := matrix.NewBuilder(cfg.Transactions, cfg.Items)
	for tx := 0; tx < cfg.Transactions; tx++ {
		want := poisson(rng, cfg.AvgTransactionLen-1) + 1
		placed := 0
		for placed < want {
			p := searchCum(cum, rng.Float64()*total)
			pat := patterns[p]
			for _, it := range pat {
				if rng.Float64() < corruption[p] {
					continue // corrupted away
				}
				b.Set(tx, int(it))
				placed++
			}
			// Quest: if the pattern overshoots the remaining budget it
			// is still placed half the time; we emulate by simply
			// stopping after the insert.
			if len(pat) == 0 {
				placed++ // guard against pathological empty patterns
			}
		}
	}
	return &Quest{Matrix: b.Build(), Patterns: patterns}, nil
}
