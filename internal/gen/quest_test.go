package gen

import (
	"math"
	"testing"
)

func TestQuestValidation(t *testing.T) {
	bad := []QuestConfig{
		{Transactions: 0, Items: 100},
		{Transactions: 100, Items: 0},
		{Transactions: 100, Items: 100, AvgTransactionLen: -1},
		{Transactions: 100, Items: 100, AvgPatternLen: -1},
		{Transactions: 100, Items: 100, NumPatterns: -1},
		{Transactions: 100, Items: 100, CorruptionMean: 1},
	}
	for i, cfg := range bad {
		if _, err := GenerateQuest(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestQuestShape(t *testing.T) {
	q, err := GenerateQuest(QuestConfig{Transactions: 5000, Items: 500, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := q.Matrix
	if m.NumRows() != 5000 || m.NumCols() != 500 {
		t.Fatalf("dims %dx%d", m.NumRows(), m.NumCols())
	}
	// Mean basket size near T=10 (corruption trims inserts, so allow a
	// broad band).
	mean := float64(m.Ones()) / 5000
	if mean < 5 || mean > 20 {
		t.Errorf("mean basket size %v, want ~10", mean)
	}
	if len(q.Patterns) == 0 {
		t.Fatal("no patterns recorded")
	}
	for _, pat := range q.Patterns {
		if len(pat) < 2 {
			t.Errorf("pattern %v shorter than 2", pat)
		}
		for i := 1; i < len(pat); i++ {
			if pat[i-1] >= pat[i] {
				t.Errorf("pattern %v not sorted", pat)
			}
		}
	}
}

// TestQuestPatternsCoOccur: items of the same pattern must co-occur far
// more than independent items — the structure a-priori mines.
func TestQuestPatternsCoOccur(t *testing.T) {
	q, err := GenerateQuest(QuestConfig{Transactions: 20000, Items: 400, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := q.Matrix
	lifted, checked := 0, 0
	for _, pat := range q.Patterns[:5] { // the most frequent patterns
		for a := 0; a < len(pat); a++ {
			for b := a + 1; b < len(pat); b++ {
				i, j := int(pat[a]), int(pat[b])
				if m.ColumnSize(i) < 30 || m.ColumnSize(j) < 30 {
					continue
				}
				checked++
				expected := float64(m.ColumnSize(i)) * float64(m.ColumnSize(j)) / float64(m.NumRows())
				observed := float64(m.IntersectSize(i, j))
				if observed > 2*expected {
					lifted++
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no pattern pairs to check")
	}
	if float64(lifted) < 0.7*float64(checked) {
		t.Errorf("only %d/%d pattern pairs show lift > 2", lifted, checked)
	}
}

func TestQuestDeterministic(t *testing.T) {
	a, _ := GenerateQuest(QuestConfig{Transactions: 1000, Items: 200, Seed: 9})
	b, _ := GenerateQuest(QuestConfig{Transactions: 1000, Items: 200, Seed: 9})
	if a.Matrix.Ones() != b.Matrix.Ones() {
		t.Error("same seed produced different data")
	}
}

// TestQuestSupportsSkewed: pattern supports span a wide range, giving
// both a-priori-friendly frequent itemsets and a rare tail.
func TestQuestSupportsSkewed(t *testing.T) {
	q, err := GenerateQuest(QuestConfig{Transactions: 20000, Items: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := q.Matrix
	var min, max = math.Inf(1), 0.0
	for c := 0; c < m.NumCols(); c++ {
		d := m.Density(c)
		if d == 0 {
			continue
		}
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	if max/min < 20 {
		t.Errorf("support skew max/min = %v, want > 20x", max/min)
	}
}
