package gen

import (
	"fmt"
	"math"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

// WebLogConfig models the paper's Sun Microsystems web-server log
// (Section 5): rows are client IPs, columns are URLs, an entry is 1
// when the client fetched the URL. The paper explains its similar pairs
// as "URLs corresponding to gif images or Java applets which are loaded
// automatically when a client IP accesses a parent URL" — the generator
// reproduces exactly that mechanism: parent pages deterministically
// co-fetch their embedded resources (minus a cache-miss rate), page
// popularity is Zipf-distributed, and overall densities are far below
// 1 percent, so the similarity histogram is L-shaped like Fig. 3.
type WebLogConfig struct {
	Clients int // rows
	URLs    int // columns
	// ParentPages is the number of pages carrying embedded resources.
	// Defaults to URLs/20.
	ParentPages int
	// ResourcesPerPage bounds the embedded gif/applet count per parent
	// page (inclusive). Defaults to [2, 5].
	ResourcesPerPage [2]int
	// ZipfS is the Zipf popularity exponent over pages. Defaults to 1.1.
	ZipfS float64
	// MeanVisits is the mean number of page visits per client
	// (Poisson). Defaults to 8.
	MeanVisits float64
	// CacheMissRate is the probability an embedded resource is NOT
	// fetched on a parent visit (browser cache), which keeps resource
	// pair similarities below 1. Defaults to 0.05.
	CacheMissRate float64
	Seed          uint64
}

// WebLog holds a generated web-log dataset: the matrix plus the
// embedded-resource groups (each group's columns are mutually
// high-similarity by construction) and the parent page of each group.
type WebLog struct {
	Matrix *matrix.Matrix
	// Groups lists, per parent page, the column indices of its
	// embedded resources.
	Groups [][]int32
	// Parents lists the parent page column of each group.
	Parents []int32
}

func (c *WebLogConfig) setDefaults() error {
	if c.Clients <= 0 || c.URLs <= 0 {
		return fmt.Errorf("gen: clients and URLs must be positive, got %dx%d", c.Clients, c.URLs)
	}
	if c.ParentPages == 0 {
		c.ParentPages = c.URLs / 20
		if c.ParentPages < 1 {
			c.ParentPages = 1
		}
	}
	if c.ResourcesPerPage == [2]int{} {
		c.ResourcesPerPage = [2]int{2, 5}
	}
	if c.ResourcesPerPage[0] < 1 || c.ResourcesPerPage[0] > c.ResourcesPerPage[1] {
		return fmt.Errorf("gen: bad ResourcesPerPage %v", c.ResourcesPerPage)
	}
	if c.ZipfS == 0 {
		c.ZipfS = 1.1
	}
	if c.ZipfS <= 0 {
		return fmt.Errorf("gen: ZipfS must be positive")
	}
	if c.MeanVisits == 0 {
		c.MeanVisits = 8
	}
	if c.MeanVisits <= 0 {
		return fmt.Errorf("gen: MeanVisits must be positive")
	}
	if c.CacheMissRate == 0 {
		c.CacheMissRate = 0.05
	}
	if c.CacheMissRate < 0 || c.CacheMissRate >= 1 {
		return fmt.Errorf("gen: CacheMissRate must be in [0,1)")
	}
	if c.ParentPages*(c.ResourcesPerPage[1]+1) > c.URLs {
		return fmt.Errorf("gen: %d parent pages with up to %d resources need more than %d URLs",
			c.ParentPages, c.ResourcesPerPage[1], c.URLs)
	}
	return nil
}

// GenerateWebLog builds the web-log dataset.
func GenerateWebLog(cfg WebLogConfig) (*WebLog, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	rng := hashing.NewSplitMix64(cfg.Seed)

	// Column layout: parents first, then their resources, then
	// standalone pages.
	next := 0
	parents := make([]int32, cfg.ParentPages)
	groups := make([][]int32, cfg.ParentPages)
	for p := 0; p < cfg.ParentPages; p++ {
		parents[p] = int32(next)
		next++
		nres := cfg.ResourcesPerPage[0]
		if span := cfg.ResourcesPerPage[1] - cfg.ResourcesPerPage[0]; span > 0 {
			nres += rng.Intn(span + 1)
		}
		for r := 0; r < nres && next < cfg.URLs; r++ {
			groups[p] = append(groups[p], int32(next))
			next++
		}
	}
	standaloneStart := next

	// Visitable pages: parents + standalones (resources are only
	// fetched via their parent). Zipf weights over visitable pages,
	// shuffled so popularity is independent of the column layout.
	visitable := make([]int32, 0, cfg.ParentPages+(cfg.URLs-standaloneStart))
	visitable = append(visitable, parents...)
	for c := standaloneStart; c < cfg.URLs; c++ {
		visitable = append(visitable, int32(c))
	}
	perm := rng.Perm(len(visitable))
	cum := make([]float64, len(visitable))
	total := 0.0
	for i := range visitable {
		total += 1 / math.Pow(float64(perm[i]+1), cfg.ZipfS)
		cum[i] = total
	}

	groupOf := make(map[int32]int, cfg.ParentPages)
	for p, parent := range parents {
		groupOf[parent] = p
	}

	b := matrix.NewBuilder(cfg.Clients, cfg.URLs)
	for client := 0; client < cfg.Clients; client++ {
		visits := poisson(rng, cfg.MeanVisits)
		for v := 0; v < visits; v++ {
			page := visitable[searchCum(cum, rng.Float64()*total)]
			b.Set(client, int(page))
			if g, ok := groupOf[page]; ok {
				for _, res := range groups[g] {
					if rng.Float64() >= cfg.CacheMissRate {
						b.Set(client, int(res))
					}
				}
			}
		}
	}
	return &WebLog{Matrix: b.Build(), Groups: groups, Parents: parents}, nil
}

// poisson samples a Poisson(lambda) variate (Knuth's method; fine for
// the small lambdas used here).
func poisson(rng *hashing.SplitMix64, lambda float64) int {
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
		if k > 10000 {
			return k // guard against pathological lambda
		}
	}
}

// searchCum returns the first index with cum[i] >= target.
func searchCum(cum []float64, target float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
