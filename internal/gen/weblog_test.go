package gen

import (
	"math"
	"testing"

	"assocmine/internal/hashing"
)

func TestWebLogValidation(t *testing.T) {
	bad := []WebLogConfig{
		{Clients: 0, URLs: 100},
		{Clients: 100, URLs: 0},
		{Clients: 100, URLs: 100, ResourcesPerPage: [2]int{5, 2}},
		{Clients: 100, URLs: 100, ZipfS: -1},
		{Clients: 100, URLs: 100, MeanVisits: -2},
		{Clients: 100, URLs: 100, CacheMissRate: 1},
		{Clients: 100, URLs: 10, ParentPages: 5, ResourcesPerPage: [2]int{4, 4}},
	}
	for i, cfg := range bad {
		if _, err := GenerateWebLog(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestWebLogShape(t *testing.T) {
	w, err := GenerateWebLog(WebLogConfig{Clients: 3000, URLs: 600, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	m := w.Matrix
	if m.NumRows() != 3000 || m.NumCols() != 600 {
		t.Fatalf("dims %dx%d", m.NumRows(), m.NumCols())
	}
	if len(w.Groups) != len(w.Parents) {
		t.Fatalf("%d groups, %d parents", len(w.Groups), len(w.Parents))
	}
	// Overall density must be low (the Sun data regime).
	density := float64(m.Ones()) / float64(m.NumRows()*m.NumCols())
	if density > 0.05 {
		t.Errorf("overall density %v too high for a web-log workload", density)
	}
}

// TestWebLogResourceGroupsAreSimilar: embedded resources of the same
// parent must be highly similar — the paper's explanation of its own
// similar pairs.
func TestWebLogResourceGroupsAreSimilar(t *testing.T) {
	w, err := GenerateWebLog(WebLogConfig{Clients: 5000, URLs: 400, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	m := w.Matrix
	checked, high := 0, 0
	for _, group := range w.Groups {
		for a := 0; a < len(group); a++ {
			for b := a + 1; b < len(group); b++ {
				// Only score pairs whose parent got real traffic.
				if m.ColumnSize(int(group[a])) < 20 {
					continue
				}
				checked++
				if m.Similarity(int(group[a]), int(group[b])) > 0.7 {
					high++
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("no trafficked resource groups to check")
	}
	if float64(high) < 0.8*float64(checked) {
		t.Errorf("only %d/%d resource pairs highly similar", high, checked)
	}
}

// TestWebLogLShapedDistribution: the bulk of column pairs must have
// near-zero similarity (Fig. 3's shape).
func TestWebLogLShapedDistribution(t *testing.T) {
	w, err := GenerateWebLog(WebLogConfig{Clients: 2000, URLs: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	m := w.Matrix
	rng := hashing.NewSplitMix64(9)
	low, total := 0, 0
	for trial := 0; trial < 3000; trial++ {
		i, j := rng.Intn(m.NumCols()), rng.Intn(m.NumCols())
		if i == j {
			continue
		}
		total++
		if m.Similarity(i, j) < 0.1 {
			low++
		}
	}
	if float64(low) < 0.9*float64(total) {
		t.Errorf("only %d/%d sampled pairs near zero similarity", low, total)
	}
}

func TestWebLogDeterministic(t *testing.T) {
	a, err := GenerateWebLog(WebLogConfig{Clients: 500, URLs: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateWebLog(WebLogConfig{Clients: 500, URLs: 100, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Matrix.Ones() != b.Matrix.Ones() {
		t.Error("same seed produced different matrices")
	}
}

func TestPoissonMean(t *testing.T) {
	rng := hashing.NewSplitMix64(11)
	const lambda, trials = 6.0, 20000
	sum := 0
	for i := 0; i < trials; i++ {
		sum += poisson(rng, lambda)
	}
	mean := float64(sum) / trials
	if math.Abs(mean-lambda) > 0.15 {
		t.Errorf("poisson mean %v, want %v", mean, lambda)
	}
}

func TestSearchCum(t *testing.T) {
	cum := []float64{1, 3, 6, 10}
	cases := []struct {
		target float64
		want   int
	}{
		{0.5, 0}, {1, 0}, {1.1, 1}, {3.5, 2}, {9.99, 3}, {10, 3},
	}
	for _, c := range cases {
		if got := searchCum(cum, c.target); got != c.want {
			t.Errorf("searchCum(%v) = %d, want %d", c.target, got, c.want)
		}
	}
}
