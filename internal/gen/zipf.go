// Package gen provides streaming synthetic dataset sources for the
// scale benchmark tier. Unlike the in-memory generators of the root
// package (which materialise a Dataset), these sources produce rows on
// the fly from a seeded generator, so a 10M-row tier costs no memory:
// they are written straight to .arows/.carows through the standard
// row-source savers.
package gen

import (
	"fmt"
	"math/rand"
	"sort"
)

// Zipf column popularity follows s=1.1 — heavy head, long tail — the
// standard shape for market-basket item frequencies and clickstream
// URL popularity.
const zipfS = 1.1

// ZipfSource is a deterministic streaming matrix.RowSource. Scan
// reseeds its generator on every call, so repeated passes (the savers
// and the mining phases each scan at least once) deliver identical
// rows.
type ZipfSource struct {
	// Kind selects the row shape: "market" draws independent Zipf
	// items per basket; "clicks" draws a Zipf session start and walks
	// with sequential locality.
	Kind string
	// Rows and Cols are the matrix dimensions.
	Rows, Cols int
	// Seed drives everything; equal seeds give equal datasets.
	Seed uint64
	// MeanRowLen is the expected row length; 0 means 12. Market rows
	// are uniform on [1, 2*MeanRowLen); click sessions likewise.
	MeanRowLen int
}

// Validate checks the dimensions before a scan.
func (z *ZipfSource) Validate() error {
	if z.Rows < 1 || z.Cols < 2 {
		return fmt.Errorf("gen: need Rows >= 1 and Cols >= 2, got %dx%d", z.Rows, z.Cols)
	}
	switch z.Kind {
	case "market", "clicks":
	default:
		return fmt.Errorf("gen: unknown kind %q (want market or clicks)", z.Kind)
	}
	return nil
}

func (z *ZipfSource) NumRows() int { return z.Rows }
func (z *ZipfSource) NumCols() int { return z.Cols }

func (z *ZipfSource) meanLen() int {
	if z.MeanRowLen > 0 {
		return z.MeanRowLen
	}
	return 12
}

// Scan delivers every row in order. The generator is reseeded per
// pass, so the source is multi-pass safe.
func (z *ZipfSource) Scan(fn func(row int, cols []int32) error) error {
	if err := z.Validate(); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(int64(z.Seed)))
	zipf := rand.NewZipf(rng, zipfS, 1, uint64(z.Cols-1))
	mean := z.meanLen()
	buf := make([]int32, 0, 4*mean)
	for r := 0; r < z.Rows; r++ {
		length := 1 + rng.Intn(2*mean-1)
		buf = buf[:0]
		switch z.Kind {
		case "market":
			// Independent Zipf item draws per basket.
			for i := 0; i < length; i++ {
				buf = append(buf, int32(zipf.Uint64()))
			}
		case "clicks":
			// Zipf session entry plus a locality walk: mostly the next
			// page, sometimes a fresh Zipf jump.
			cur := int32(zipf.Uint64())
			buf = append(buf, cur)
			for i := 1; i < length; i++ {
				if rng.Float64() < 0.7 {
					cur = (cur + 1) % int32(z.Cols)
				} else {
					cur = int32(zipf.Uint64())
				}
				buf = append(buf, cur)
			}
		}
		// Rows are sets: sort and deduplicate the draws.
		sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
		w := 0
		for i, v := range buf {
			if i == 0 || v != buf[w-1] {
				buf[w] = v
				w++
			}
		}
		if err := fn(r, buf[:w]); err != nil {
			return err
		}
	}
	return nil
}
