package gen

import (
	"path/filepath"
	"testing"

	"assocmine/internal/matrix"
)

func collect(t *testing.T, z *ZipfSource) [][]int32 {
	t.Helper()
	var rows [][]int32
	err := z.Scan(func(row int, cols []int32) error {
		if row != len(rows) {
			t.Fatalf("row %d delivered out of order (have %d)", row, len(rows))
		}
		rows = append(rows, append([]int32(nil), cols...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rows
}

func TestZipfSourceRepeatable(t *testing.T) {
	for _, kind := range []string{"market", "clicks"} {
		z := &ZipfSource{Kind: kind, Rows: 500, Cols: 300, Seed: 11}
		a, b := collect(t, z), collect(t, z)
		if len(a) != 500 {
			t.Fatalf("%s: %d rows", kind, len(a))
		}
		for r := range a {
			if len(a[r]) != len(b[r]) {
				t.Fatalf("%s: row %d differs across passes", kind, r)
			}
			for i := range a[r] {
				if a[r][i] != b[r][i] {
					t.Fatalf("%s: row %d differs across passes", kind, r)
				}
			}
		}
	}
}

func TestZipfSourceRowsAreValidSets(t *testing.T) {
	for _, kind := range []string{"market", "clicks"} {
		z := &ZipfSource{Kind: kind, Rows: 400, Cols: 128, Seed: 5}
		for _, row := range collect(t, z) {
			if len(row) == 0 {
				t.Fatalf("%s: empty row", kind)
			}
			for i, v := range row {
				if v < 0 || v >= 128 {
					t.Fatalf("%s: column %d out of range", kind, v)
				}
				if i > 0 && v <= row[i-1] {
					t.Fatalf("%s: row not strictly increasing: %v", kind, row)
				}
			}
		}
	}
}

// TestZipfSourceSkew sanity-checks the popularity shape: the head
// column must be far more frequent than a mid-tail column.
func TestZipfSourceSkew(t *testing.T) {
	z := &ZipfSource{Kind: "market", Rows: 2000, Cols: 1000, Seed: 3}
	counts := make([]int, 1000)
	for _, row := range collect(t, z) {
		for _, v := range row {
			counts[v]++
		}
	}
	if counts[0] < 10*counts[500]+1 {
		t.Fatalf("no Zipf skew: head %d vs mid %d", counts[0], counts[500])
	}
}

func TestZipfSourceSaveRoundTrip(t *testing.T) {
	z := &ZipfSource{Kind: "clicks", Rows: 300, Cols: 200, Seed: 9}
	path := filepath.Join(t.TempDir(), "tier.carows")
	if err := matrix.SaveRowCompressed(path, z); err != nil {
		t.Fatal(err)
	}
	fs, err := matrix.OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if fs.NumRows() != 300 || fs.NumCols() != 200 {
		t.Fatalf("saved dims %dx%d", fs.NumRows(), fs.NumCols())
	}
	want := collect(t, z)
	r := 0
	err = fs.Scan(func(row int, cols []int32) error {
		if len(cols) != len(want[r]) {
			t.Fatalf("row %d: %d cols, want %d", r, len(cols), len(want[r]))
		}
		for i := range cols {
			if cols[i] != want[r][i] {
				t.Fatalf("row %d col %d differs", r, i)
			}
		}
		r++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestZipfSourceValidation(t *testing.T) {
	bad := []*ZipfSource{
		{Kind: "market", Rows: 0, Cols: 10},
		{Kind: "market", Rows: 10, Cols: 1},
		{Kind: "nope", Rows: 10, Cols: 10},
	}
	for i, z := range bad {
		if err := z.Scan(func(int, []int32) error { return nil }); err == nil {
			t.Errorf("case %d: invalid source scanned", i)
		}
	}
}
