package hamminglsh

import (
	"testing"

	"assocmine/internal/hashing"
)

func BenchmarkCandidates(b *testing.B) {
	rng := hashing.NewSplitMix64(1)
	m, _ := plantedSparse(rng, 8192, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Candidates(m, Options{R: 8, L: 10, Seed: 3}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFoldLadderOnly(b *testing.B) {
	rng := hashing.NewSplitMix64(1)
	m, _ := plantedSparse(rng, 8192, 200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.FoldLadder(hashing.NewSplitMix64(uint64(i)), 13)
	}
}
