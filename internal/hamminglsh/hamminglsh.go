// Package hamminglsh implements the H-LSH scheme of Section 4.2, which
// works directly on the data rather than on min-hash signatures. By
// Lemma 3, for columns of comparable density, high similarity is small
// Hamming distance:
//
//	S(c_i, c_j) = (|C_i|+|C_j|-d_H) / (|C_i|+|C_j|+d_H).
//
// Because real matrices are sparse and column densities vary, the
// algorithm builds a ladder of matrices M_0, M_1, M_2, ... where each
// M_{i+1} ORs random row pairs of M_i (halving rows, roughly doubling
// densities). At each level, columns whose density falls in the window
// (1/t, (t-1)/t) are hashed on r sampled row-bits, repeated l times; a
// pair sharing a key in any run at any level is a candidate.
package hamminglsh

import (
	"fmt"

	"assocmine/internal/bitset"
	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
	"assocmine/internal/pairs"
)

// Options parameterises H-LSH. The paper calls the per-run bit count r,
// the number of runs per level k (sometimes l), and uses t = 4 for the
// density window in its experiments.
type Options struct {
	// R is the number of sampled row-bits per hash key; must be in [1, 64].
	R int
	// L is the number of independent runs per ladder level.
	L int
	// T defines the density eligibility window (1/T, (T-1)/T).
	// Defaults to 4 when zero.
	T int
	// MaxLevels caps the fold ladder depth. Defaults to log2(rows)
	// when zero.
	MaxLevels int
	// Seed drives folding and row sampling.
	Seed uint64
}

func (o *Options) setDefaults(rows int) error {
	if o.R < 1 || o.R > 64 {
		return fmt.Errorf("hamminglsh: R must be in [1,64], got %d", o.R)
	}
	if o.L < 1 {
		return fmt.Errorf("hamminglsh: L must be positive, got %d", o.L)
	}
	if o.T == 0 {
		o.T = 4
	}
	if o.T < 3 {
		return fmt.Errorf("hamminglsh: T must be at least 3, got %d", o.T)
	}
	if o.MaxLevels == 0 {
		o.MaxLevels = 1
		for n := rows; n > 2; n /= 2 {
			o.MaxLevels++
		}
	}
	if o.MaxLevels < 1 {
		return fmt.Errorf("hamminglsh: MaxLevels must be positive, got %d", o.MaxLevels)
	}
	return nil
}

// Stats reports the work the H-LSH pass performed.
type Stats struct {
	Levels        int   // ladder matrices processed
	Runs          int   // level x run hashings executed
	EligibleByLvl []int // columns inside the density window per level
	BucketPairs   int64 // pair-additions attempted (incl. duplicates)
	Candidates    int   // distinct pairs produced
}

// SimilarityFromHamming applies Lemma 3: given |C_i|, |C_j| and the
// Hamming distance, return the Jaccard similarity.
func SimilarityFromHamming(ci, cj, dh int) float64 {
	den := ci + cj + dh
	if den == 0 {
		return 0
	}
	return float64(ci+cj-dh) / float64(den)
}

// Candidates runs H-LSH over the matrix and returns the candidate pair
// set. Requires the full column-major matrix (the fold ladder is a
// whole-data structure, not a streaming sketch); the paper's phase-3
// verification still happens against the original data.
func Candidates(m *matrix.Matrix, opt Options) (*pairs.Set, Stats, error) {
	if err := opt.setDefaults(m.NumRows()); err != nil {
		return nil, Stats{}, err
	}
	rng := hashing.NewSplitMix64(opt.Seed)
	ladder := m.FoldLadder(rng, opt.MaxLevels)

	set := pairs.NewSet(1024)
	var st Stats
	loD := 1.0 / float64(opt.T)
	hiD := float64(opt.T-1) / float64(opt.T)

	for _, level := range ladder {
		st.Levels++
		rows := level.NumRows()
		if rows == 0 {
			st.EligibleByLvl = append(st.EligibleByLvl, 0)
			continue
		}
		var eligible []int32
		for c := 0; c < level.NumCols(); c++ {
			if d := level.Density(c); d > loD && d < hiD {
				eligible = append(eligible, int32(c))
			}
		}
		st.EligibleByLvl = append(st.EligibleByLvl, len(eligible))
		if len(eligible) < 2 {
			continue
		}
		// Eligible columns are at least 1/t dense by construction, so a
		// bitmap per column beats binary-searching the index lists for
		// the R probes of every run.
		bitmaps := make([]*bitset.Set, len(eligible))
		for i, c := range eligible {
			bitmaps[i] = bitset.FromSorted(rows, level.Column(int(c)))
		}
		for run := 0; run < opt.L; run++ {
			st.Runs++
			sample := make([]int, opt.R)
			for i := range sample {
				sample[i] = rng.Intn(rows)
			}
			buckets := make(map[uint64][]int32, len(eligible))
			for i, c := range eligible {
				bm := bitmaps[i]
				var key uint64
				for b, r := range sample {
					if bm.Test(r) {
						key |= 1 << uint(b)
					}
				}
				key = hashing.Mix64(key)
				buckets[key] = append(buckets[key], c)
			}
			for _, cols := range buckets {
				for i := 0; i < len(cols); i++ {
					for j := i + 1; j < len(cols); j++ {
						st.BucketPairs++
						set.Add(cols[i], cols[j])
					}
				}
			}
		}
	}
	st.Candidates = set.Len()
	return set, st, nil
}
