package hamminglsh

import (
	"math"
	"testing"
	"testing/quick"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
	"assocmine/internal/pairs"
)

func TestSimilarityFromHammingMatchesExact(t *testing.T) {
	rng := hashing.NewSplitMix64(1)
	b := matrix.NewBuilder(100, 6)
	for c := 0; c < 6; c++ {
		for r := 0; r < 100; r++ {
			if rng.Float64() < 0.2 {
				b.Set(r, c)
			}
		}
	}
	m := b.Build()
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := m.Similarity(i, j)
			got := SimilarityFromHamming(m.ColumnSize(i), m.ColumnSize(j), m.HammingDistance(i, j))
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("Lemma 3 mismatch (%d,%d): %v vs %v", i, j, got, want)
			}
		}
	}
}

func TestSimilarityFromHammingEmpty(t *testing.T) {
	if got := SimilarityFromHamming(0, 0, 0); got != 0 {
		t.Errorf("empty-empty similarity = %v", got)
	}
}

func TestOptionsValidation(t *testing.T) {
	m := matrix.MustNew(8, [][]int32{{0, 1}})
	bad := []Options{
		{R: 0, L: 1},
		{R: 65, L: 1},
		{R: 4, L: 0},
		{R: 4, L: 1, T: 2},
		{R: 4, L: 1, MaxLevels: -1},
	}
	for i, o := range bad {
		if _, _, err := Candidates(m, o); err == nil {
			t.Errorf("options %d accepted: %+v", i, o)
		}
	}
}

func TestDefaults(t *testing.T) {
	o := Options{R: 4, L: 1}
	if err := o.setDefaults(1024); err != nil {
		t.Fatal(err)
	}
	if o.T != 4 {
		t.Errorf("default T = %d, want 4", o.T)
	}
	if o.MaxLevels < 9 {
		t.Errorf("default MaxLevels = %d for 1024 rows, want >= 9", o.MaxLevels)
	}
}

// plantedSparse builds a sparse matrix (densities ~1%) with
// near-duplicate planted pairs — the regime H-LSH's fold ladder exists
// for: no column is eligible at level 0, but duplicates stay similar as
// densities double.
func plantedSparse(rng *hashing.SplitMix64, rows, cols int) (*matrix.Matrix, *pairs.Set) {
	b := matrix.NewBuilder(rows, cols)
	planted := pairs.NewSet(cols / 2)
	for c := 0; c+1 < cols; c += 4 {
		for r := 0; r < rows; r++ {
			if rng.Float64() < 0.01 {
				b.Set(r, c)
				b.Set(r, c+1)
			}
		}
		planted.Add(int32(c), int32(c+1))
		for off := 2; off < 4 && c+off < cols; off++ {
			for r := 0; r < rows; r++ {
				if rng.Float64() < 0.01 {
					b.Set(r, c+off)
				}
			}
		}
	}
	return b.Build(), planted
}

func TestCandidatesFindSparseDuplicates(t *testing.T) {
	rng := hashing.NewSplitMix64(2)
	m, planted := plantedSparse(rng, 4096, 40)
	set, st, err := Candidates(m, Options{R: 8, L: 10, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if st.Levels < 5 {
		t.Errorf("ladder only %d levels for 4096 rows", st.Levels)
	}
	missed, total := 0, 0
	for _, p := range planted.Slice() {
		if m.Similarity(int(p.I), int(p.J)) > 0.9 {
			total++
			if !set.Contains(p.I, p.J) {
				missed++
			}
		}
	}
	if total == 0 {
		t.Fatal("fixture planted no high-similarity pairs")
	}
	if missed > total/5 {
		t.Errorf("H-LSH missed %d/%d near-duplicate pairs", missed, total)
	}
}

func TestDensityGateSkipsLevelZero(t *testing.T) {
	// With 1% densities at level 0 and T=4, no column sits in
	// (0.25, 0.75) before several folds.
	rng := hashing.NewSplitMix64(3)
	m, _ := plantedSparse(rng, 2048, 20)
	_, st, err := Candidates(m, Options{R: 6, L: 4, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(st.EligibleByLvl) == 0 {
		t.Fatal("no levels recorded")
	}
	if st.EligibleByLvl[0] != 0 {
		t.Errorf("%d columns eligible at level 0 despite 1%% density", st.EligibleByLvl[0])
	}
	foundEligible := false
	for _, n := range st.EligibleByLvl {
		if n > 0 {
			foundEligible = true
		}
	}
	if !foundEligible {
		t.Error("no level ever had eligible columns")
	}
}

func TestMoreRunsMoreCandidates(t *testing.T) {
	// Fig. 7c: increasing l increases collisions (fewer false
	// negatives, more false positives).
	rng := hashing.NewSplitMix64(4)
	m, _ := plantedSparse(rng, 2048, 60)
	few, _, err := Candidates(m, Options{R: 8, L: 2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	many, _, err := Candidates(m, Options{R: 8, L: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if many.Len() < few.Len() {
		t.Errorf("more runs produced fewer candidates: %d < %d", many.Len(), few.Len())
	}
}

func TestLargerRFewerCandidates(t *testing.T) {
	// Fig. 7a: increasing r decreases collision probability.
	rng := hashing.NewSplitMix64(5)
	m, _ := plantedSparse(rng, 2048, 60)
	coarse, _, err := Candidates(m, Options{R: 2, L: 8, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	fine, _, err := Candidates(m, Options{R: 24, L: 8, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if fine.Len() > coarse.Len() {
		t.Errorf("larger r produced more candidates: %d > %d", fine.Len(), coarse.Len())
	}
}

func TestDeterministicInSeed(t *testing.T) {
	rng := hashing.NewSplitMix64(6)
	m, _ := plantedSparse(rng, 1024, 20)
	a, _, err := Candidates(m, Options{R: 6, L: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Candidates(m, Options{R: 6, L: 4, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("same seed, different candidate counts: %d vs %d", a.Len(), b.Len())
	}
	for _, p := range a.Slice() {
		if !b.Contains(p.I, p.J) {
			t.Fatalf("same seed, pair (%d,%d) missing from second run", p.I, p.J)
		}
	}
}

func TestTinyMatrix(t *testing.T) {
	m := matrix.MustNew(2, [][]int32{{0}, {0}, {1}})
	set, _, err := Candidates(m, Options{R: 2, L: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Columns 0 and 1 are identical with density 0.5 in (0.25,0.75):
	// eligible at level 0 and always hashed identically.
	if !set.Contains(0, 1) {
		t.Error("identical eligible columns not candidates")
	}
}

func TestEmptyMatrix(t *testing.T) {
	m := matrix.MustNew(0, [][]int32{{}, {}})
	set, _, err := Candidates(m, Options{R: 4, L: 2, Seed: 1, MaxLevels: 3})
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 0 {
		t.Errorf("empty matrix produced %d candidates", set.Len())
	}
}

func TestQuickNoSelfPairsNoDuplicates(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hashing.NewSplitMix64(seed)
		b := matrix.NewBuilder(256, 10)
		for c := 0; c < 10; c++ {
			for r := 0; r < 256; r++ {
				if rng.Float64() < 0.05 {
					b.Set(r, c)
				}
			}
		}
		set, _, err := Candidates(b.Build(), Options{R: 4, L: 3, Seed: seed})
		if err != nil {
			return false
		}
		for _, p := range set.Slice() {
			if p.I >= p.J || p.I < 0 || p.J > 9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
