// Package hashing provides the deterministic pseudo-random hash
// machinery underlying every sketch in this repository: a splittable
// 64-bit PRNG (splitmix64), multiply-shift universal hash families, and
// the PermHash row-hashing scheme the paper uses in place of explicit
// row permutations.
//
// The paper (Section 3) observes that instead of materialising a random
// permutation of the n rows it suffices to assign each row an
// independent uniform hash value and order rows by that value; with
// 64-bit values the birthday-paradox collision probability is
// negligible for any realistic n. All randomness in this repository is
// seeded, so every experiment is reproducible.
package hashing

import "math/bits"

// SplitMix64 is a tiny, fast, well-distributed PRNG. It is the
// recommended seeder for other generators and is itself adequate as a
// stream of independent 64-bit values. The zero value is a valid
// generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the stream.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *SplitMix64) Float64() float64 {
	return float64(s.Next()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (s *SplitMix64) Intn(n int) int {
	if n <= 0 {
		panic("hashing: Intn with non-positive n")
	}
	// Lemire's nearly-divisionless bounded rejection sampling.
	un := uint64(n)
	for {
		x := s.Next()
		hi, lo := bits.Mul64(x, un)
		if lo >= un || lo >= -un%un {
			return int(hi)
		}
	}
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (s *SplitMix64) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := s.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Hasher64 maps a 64-bit key to a 64-bit hash value. Implementations
// must be deterministic for the lifetime of the value.
type Hasher64 interface {
	Hash(x uint64) uint64
}

// Mix64 is a fixed strong 64-bit mixer (the splitmix64 finalizer). It
// is a bijection on uint64, which several tests rely on.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// MultiplyShift is a 2-universal hash family member over 64-bit keys:
// h(x) = mix(a*x + b) with odd a. The extra mixing step hardens the
// family's low bits, which matters because Min-LSH concatenates raw
// hash values into bucket keys.
type MultiplyShift struct {
	a, b uint64
}

// NewMultiplyShift draws a random member of the family from rng.
func NewMultiplyShift(rng *SplitMix64) MultiplyShift {
	return MultiplyShift{a: rng.Next() | 1, b: rng.Next()}
}

// Hash implements Hasher64.
func (m MultiplyShift) Hash(x uint64) uint64 {
	return Mix64(m.a*x + m.b)
}

// PermHash assigns each row index an effectively-random 64-bit value,
// implicitly defining a random order on rows (paper Section 3: "while
// scanning the rows, we will simply associate with each row a hash
// value that is a number chosen independently and uniformly at
// random"). Two PermHash values with different indices define
// independent row orders.
type PermHash struct {
	fn MultiplyShift
}

// NewPermHashes returns k independent row-order hash functions derived
// from seed. The same (seed, k) always yields the same functions.
func NewPermHashes(seed uint64, k int) []PermHash {
	rng := NewSplitMix64(seed)
	hs := make([]PermHash, k)
	for i := range hs {
		hs[i] = PermHash{fn: NewMultiplyShift(rng)}
	}
	return hs
}

// NewPermHash returns a single row-order hash function derived from seed.
func NewPermHash(seed uint64) PermHash {
	rng := NewSplitMix64(seed)
	return PermHash{fn: NewMultiplyShift(rng)}
}

// Row returns the hash value of row r.
func (p PermHash) Row(r int) uint64 {
	return p.fn.Hash(uint64(r))
}

// Hash implements Hasher64.
func (p PermHash) Hash(x uint64) uint64 {
	return p.fn.Hash(x)
}

// CombineKeys hashes a slice of 64-bit values into a single bucket key.
// Min-LSH uses it to turn the concatenation of r min-hash values into a
// hash-table key. The combination is order-sensitive.
func CombineKeys(vals []uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h = Mix64(h ^ v)
		h = h*0x100000001b3 + 0x517cc1b727220a95
	}
	return Mix64(h)
}

// CombineBits packs up to 64 bits into a bucket key. Hamming-LSH uses
// it for the r-bit column keys sampled from a folded matrix.
func CombineBits(bits []bool) uint64 {
	var key uint64
	for i, b := range bits {
		if b {
			key |= 1 << (uint(i) & 63)
		}
		if i&63 == 63 {
			key = Mix64(key)
		}
	}
	return Mix64(key)
}
