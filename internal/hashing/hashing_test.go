package hashing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(42)
	b := NewSplitMix64(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Next(), b.Next(); av != bv {
			t.Fatalf("streams diverged at %d: %x vs %x", i, av, bv)
		}
	}
}

func TestSplitMix64DifferentSeeds(t *testing.T) {
	a := NewSplitMix64(1)
	b := NewSplitMix64(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values in 100 draws", same)
	}
}

func TestFloat64Range(t *testing.T) {
	rng := NewSplitMix64(7)
	for i := 0; i < 10000; i++ {
		f := rng.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	rng := NewSplitMix64(11)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += rng.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean of uniforms = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	rng := NewSplitMix64(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 1000; i++ {
			v := rng.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	rng := NewSplitMix64(5)
	const buckets, draws = 10, 100000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[rng.Intn(buckets)]++
	}
	want := float64(draws) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d too far from %v", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewSplitMix64(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	rng := NewSplitMix64(9)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := rng.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestMix64Bijective(t *testing.T) {
	// Spot-check injectivity on a contiguous range plus a sparse set.
	seen := make(map[uint64]uint64, 1<<16)
	for i := uint64(0); i < 1<<16; i++ {
		h := Mix64(i)
		if prev, ok := seen[h]; ok {
			t.Fatalf("Mix64 collision: %d and %d -> %x", prev, i, h)
		}
		seen[h] = i
	}
}

func TestMultiplyShiftDeterministic(t *testing.T) {
	h := NewMultiplyShift(NewSplitMix64(13))
	if h.Hash(12345) != h.Hash(12345) {
		t.Fatal("MultiplyShift not deterministic")
	}
}

func TestMultiplyShiftSpreads(t *testing.T) {
	h := NewMultiplyShift(NewSplitMix64(17))
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 10000; i++ {
		seen[h.Hash(i)] = true
	}
	if len(seen) != 10000 {
		t.Fatalf("collisions among 10000 consecutive keys: %d distinct", len(seen))
	}
}

func TestNewPermHashesIndependent(t *testing.T) {
	hs := NewPermHashes(21, 4)
	if len(hs) != 4 {
		t.Fatalf("got %d hashes, want 4", len(hs))
	}
	// Distinct functions should order rows differently with high probability.
	agree := 0
	const trials = 200
	for r := 0; r < trials; r++ {
		if (hs[0].Row(r) < hs[0].Row(r+1)) == (hs[1].Row(r) < hs[1].Row(r+1)) {
			agree++
		}
	}
	if agree < trials/4 || agree > 3*trials/4 {
		t.Fatalf("pairwise order agreement %d/%d suggests dependent hashes", agree, trials)
	}
}

func TestNewPermHashesReproducible(t *testing.T) {
	a := NewPermHashes(99, 3)
	b := NewPermHashes(99, 3)
	for i := range a {
		for r := 0; r < 50; r++ {
			if a[i].Row(r) != b[i].Row(r) {
				t.Fatalf("hash %d row %d differs across identical seeds", i, r)
			}
		}
	}
}

func TestCombineKeysOrderSensitive(t *testing.T) {
	a := CombineKeys([]uint64{1, 2, 3})
	b := CombineKeys([]uint64{3, 2, 1})
	if a == b {
		t.Fatal("CombineKeys ignores order")
	}
}

func TestCombineKeysLengthSensitive(t *testing.T) {
	if CombineKeys([]uint64{0}) == CombineKeys([]uint64{0, 0}) {
		t.Fatal("CombineKeys ignores length")
	}
}

func TestCombineBits(t *testing.T) {
	a := CombineBits([]bool{true, false, true})
	b := CombineBits([]bool{true, false, true})
	c := CombineBits([]bool{false, false, true})
	if a != b {
		t.Fatal("CombineBits not deterministic")
	}
	if a == c {
		t.Fatal("CombineBits collided on different inputs")
	}
}

func TestCombineBitsLong(t *testing.T) {
	// More than 64 bits must still distinguish inputs differing only
	// beyond bit 64.
	x := make([]bool, 100)
	y := make([]bool, 100)
	y[90] = true
	if CombineBits(x) == CombineBits(y) {
		t.Fatal("CombineBits lost information beyond 64 bits")
	}
}

func TestQuickMix64Injective(t *testing.T) {
	f := func(a, b uint64) bool {
		if a == b {
			return true
		}
		return Mix64(a) != Mix64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCombineKeysDeterministic(t *testing.T) {
	f := func(vals []uint64) bool {
		cp := append([]uint64(nil), vals...)
		return CombineKeys(vals) == CombineKeys(cp)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
