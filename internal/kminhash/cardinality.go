package kminhash

import "math"

// Cardinality estimation from bottom-k sketches, after Cohen's
// size-estimation framework [5] — the paper's own citation for the
// min-hash idea. If a set's rows receive uniform hash values in
// [0, 2^64) and v_k is the k-th smallest, then v_k/2^64 is the k-th
// order statistic of |C| uniforms, so (k-1)·2^64/v_k is an unbiased
// estimator of |C|. Sketches with fewer than k values contain every
// member, so their cardinality is exact.
//
// This is what makes the Section 7 Boolean-expression extension work:
// the bottom-k sketch of an OR of columns is computable from the
// columns' sketches (UnionSignature), its cardinality is estimable
// here, and AND cardinalities follow by inclusion-exclusion.

// EstimateCardinality returns the estimated number of distinct rows
// behind a bottom-k sketch produced with sketch size k. When the
// sketch holds fewer than k values it is the whole set and the count
// is exact.
func EstimateCardinality(sig []uint64, k int) float64 {
	if len(sig) < k || len(sig) == 0 {
		return float64(len(sig))
	}
	vk := sig[len(sig)-1] // sketches are sorted ascending
	if vk == 0 {
		return float64(len(sig))
	}
	frac := float64(vk) / math.Pow(2, 64)
	return float64(k-1) / frac
}

// EstimateUnionSize estimates |C_i ∪ C_j| from the two columns'
// sketches via the union sketch.
func (s *Sketches) EstimateUnionSize(i, j int) float64 {
	u := s.UnionSignature(i, j, nil)
	// If the union sketch is not full, it holds every union member.
	if len(u) < s.K {
		return float64(len(u))
	}
	return EstimateCardinality(u, s.K)
}

// EstimateIntersectionSize estimates |C_i ∩ C_j| by inclusion-
// exclusion: |C_i| + |C_j| - |C_i ∪ C_j|, clamped to the feasible
// range.
func (s *Sketches) EstimateIntersectionSize(i, j int) float64 {
	inter := float64(s.ColSizes[i]) + float64(s.ColSizes[j]) - s.EstimateUnionSize(i, j)
	if inter < 0 {
		return 0
	}
	maxI := float64(s.ColSizes[i])
	if float64(s.ColSizes[j]) < maxI {
		maxI = float64(s.ColSizes[j])
	}
	if inter > maxI {
		return maxI
	}
	return inter
}
