package kminhash

import (
	"math"
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

func TestEstimateCardinalitySmallSetExact(t *testing.T) {
	m := matrix.MustNew(100, [][]int32{{3, 17, 40}})
	s, err := Compute(m.Stream(), 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	if got := EstimateCardinality(s.Signature(0), s.K); got != 3 {
		t.Errorf("small-set cardinality = %v, want exact 3", got)
	}
	if got := EstimateCardinality(nil, 10); got != 0 {
		t.Errorf("empty sketch cardinality = %v", got)
	}
}

// TestEstimateCardinalityStatistical: averaged over many seeds, the
// bottom-k estimator must land near the true size.
func TestEstimateCardinalityStatistical(t *testing.T) {
	const rows, trueSize, k, trials = 50000, 5000, 64, 50
	col := make([]int32, trueSize)
	for i := range col {
		col[i] = int32(i * (rows / trueSize))
	}
	m := matrix.MustNew(rows, [][]int32{col})
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		s, err := Compute(m.Stream(), k, uint64(100+trial))
		if err != nil {
			t.Fatal(err)
		}
		sum += EstimateCardinality(s.Signature(0), k)
	}
	mean := sum / trials
	// Relative standard error of the bottom-k estimator is ~1/sqrt(k-2);
	// averaging 50 trials leaves ~1.8% — allow 6%.
	if math.Abs(mean-trueSize)/trueSize > 0.06 {
		t.Errorf("mean cardinality estimate %v, want ~%d", mean, trueSize)
	}
}

func TestEstimateUnionAndIntersection(t *testing.T) {
	rng := hashing.NewSplitMix64(7)
	b := matrix.NewBuilder(20000, 2)
	for r := 0; r < 20000; r++ {
		u := rng.Float64()
		switch {
		case u < 0.05: // both
			b.Set(r, 0)
			b.Set(r, 1)
		case u < 0.10:
			b.Set(r, 0)
		case u < 0.15:
			b.Set(r, 1)
		}
	}
	m := b.Build()
	trueUnion := float64(m.UnionSize(0, 1))
	trueInter := float64(m.IntersectSize(0, 1))
	const k, trials = 128, 30
	var sumU, sumI float64
	for trial := 0; trial < trials; trial++ {
		s, err := Compute(m.Stream(), k, uint64(500+trial))
		if err != nil {
			t.Fatal(err)
		}
		sumU += s.EstimateUnionSize(0, 1)
		sumI += s.EstimateIntersectionSize(0, 1)
	}
	if math.Abs(sumU/trials-trueUnion)/trueUnion > 0.08 {
		t.Errorf("union estimate %v, want ~%v", sumU/trials, trueUnion)
	}
	if math.Abs(sumI/trials-trueInter)/trueInter > 0.25 {
		t.Errorf("intersection estimate %v, want ~%v", sumI/trials, trueInter)
	}
}

func TestEstimateIntersectionClamped(t *testing.T) {
	// Disjoint columns: inclusion-exclusion can go negative; must clamp
	// to 0.
	m := matrix.MustNew(1000, [][]int32{
		{0, 1, 2, 3, 4},
		{500, 501, 502},
	})
	s, err := Compute(m.Stream(), 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.EstimateIntersectionSize(0, 1); got != 0 {
		t.Errorf("disjoint intersection estimate = %v (sketches are exact here)", got)
	}
}
