package kminhash

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"

	"assocmine/internal/bitpack"
	"assocmine/internal/hashing"
)

// Sketch persistence, compressed-only: bottom-k sketches exist to be
// small, so the on-disk form is the KMC1 functional encoding. Every
// sketch value is h(r) for some row r under the single permutation
// hash of the recorded seed, so each value is stored as its row id in
// ceil(log2(n+1)) bits and the reader rebuilds the exact 64-bit values
// by rehashing — bit-identical, at 5-6x less space at typical scales.
//
// Layout: "KMC1", then k, m, rows, seed and Updates as 8-byte
// little-endian words, then per column a uvarint |C_c|, a uvarint
// sketch length, and that many bit-packed row ids ordered as the
// sketch is (ascending by hash value), byte-aligned per column.
const sketchCompressedMagic = "KMC1"

// WriteCompressed serialises the sketches in the KMC1 format. rows is
// the row count n of the dataset; every sketch value must equal h(r)
// for some row r under hashing.NewPermHash(seed), which holds for any
// sketches Compute produced with the same (seed, rows). Cost: O(rows)
// rehashing to invert the value mapping, paid once per save.
func (s *Sketches) WriteCompressed(w io.Writer, seed uint64, rows int) error {
	if rows < 0 {
		return fmt.Errorf("kminhash: negative row count %d", rows)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(sketchCompressedMagic); err != nil {
		return err
	}
	var hdr [40]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(s.K))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(s.Sigs)))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(rows))
	binary.LittleEndian.PutUint64(hdr[24:], seed)
	binary.LittleEndian.PutUint64(hdr[32:], uint64(s.Updates))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	h := hashing.NewPermHash(seed)
	inv := make(map[uint64]uint64, rows)
	for r := 0; r < rows; r++ {
		v := h.Row(r)
		if old, ok := inv[v]; !ok || uint64(r) < old {
			inv[v] = uint64(r)
		}
	}
	width := uint(bits.Len64(uint64(rows)))
	var vbuf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(vbuf[:], v)
		_, err := bw.Write(vbuf[:n])
		return err
	}
	pw := bitpack.NewWriter(bw)
	for c, sig := range s.Sigs {
		if err := writeUvarint(uint64(s.ColSizes[c])); err != nil {
			return err
		}
		if err := writeUvarint(uint64(len(sig))); err != nil {
			return err
		}
		for _, v := range sig {
			id, ok := inv[v]
			if !ok {
				return fmt.Errorf("kminhash: value %#x of column %d is not the hash of any of %d rows under seed %#x", v, c, rows, seed)
			}
			pw.WriteBits(id, width)
		}
		if err := pw.Flush(); err != nil { // byte-align the column
			return err
		}
	}
	return bw.Flush()
}

// ReadSketches parses a stream written by WriteCompressed, returning
// the sketches and the recorded seed. The per-column arenas are
// rebuilt in bounded chunks so a hostile header cannot size an
// allocation, mirroring the signature readers.
func ReadSketches(r io.Reader) (*Sketches, uint64, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(sketchCompressedMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, 0, fmt.Errorf("kminhash: reading magic: %w", err)
	}
	if string(magic) != sketchCompressedMagic {
		return nil, 0, fmt.Errorf("kminhash: bad magic %q", magic)
	}
	var hdr [40]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("kminhash: reading header: %w", err)
	}
	k := binary.LittleEndian.Uint64(hdr[0:])
	m := binary.LittleEndian.Uint64(hdr[8:])
	rows := binary.LittleEndian.Uint64(hdr[16:])
	seed := binary.LittleEndian.Uint64(hdr[24:])
	updates := binary.LittleEndian.Uint64(hdr[32:])
	const maxDim = 1 << 31
	// The arena chunks are k-wide, so bound k as well as the totals: a
	// header claiming a million-value bottom-k sketch would size a
	// k-proportional allocation before any payload byte arrives.
	const maxK = 1 << 20
	if k == 0 || k > maxK || m > maxDim || rows > maxDim {
		return nil, 0, fmt.Errorf("kminhash: implausible dimensions k=%d m=%d rows=%d", k, m, rows)
	}
	if k*m > (1 << 34) {
		return nil, 0, fmt.Errorf("kminhash: sketch matrix too large: %d values", k*m)
	}
	if updates > (1 << 62) {
		return nil, 0, fmt.Errorf("kminhash: implausible update count %d", updates)
	}
	h := hashing.NewPermHash(seed)
	width := uint(bits.Len64(rows))
	pr := bitpack.NewReader(br)
	s := &Sketches{K: int(k), Updates: int64(updates)}
	// Grow the column table and the shared value arena a chunk of
	// columns at a time: every decoded column consumes at least two
	// bytes of input, so allocation is paced by bytes that actually
	// arrived rather than by the header's claimed m·k.
	colChunk := uint64(1<<20) / k
	if colChunk == 0 {
		colChunk = 1
	}
	var backing []uint64 // arena of the current column chunk
	for c := uint64(0); c < m; c++ {
		if uint64(len(s.Sigs)) == c {
			grow := m - c
			if grow > colChunk {
				grow = colChunk
			}
			s.Sigs = append(s.Sigs, make([][]uint64, grow)...)
			s.ColSizes = append(s.ColSizes, make([]int, grow)...)
			backing = make([]uint64, grow*k)
			for i := uint64(0); i < grow; i++ {
				s.Sigs[c+i] = backing[i*k : i*k : (i+1)*k]
			}
		}
		size, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, 0, fmt.Errorf("kminhash: column %d size: %w", c, err)
		}
		if size > rows {
			return nil, 0, fmt.Errorf("kminhash: column %d size %d exceeds %d rows", c, size, rows)
		}
		s.ColSizes[c] = int(size)
		length, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, 0, fmt.Errorf("kminhash: column %d sketch length: %w", c, err)
		}
		if length > k || length > size {
			return nil, 0, fmt.Errorf("kminhash: column %d sketch length %d exceeds min(k=%d, size=%d)", c, length, k, size)
		}
		prev := uint64(0)
		for i := uint64(0); i < length; i++ {
			id, err := pr.ReadBits(width)
			if err != nil {
				return nil, 0, fmt.Errorf("kminhash: column %d value %d: %w", c, i, err)
			}
			if id >= rows {
				return nil, 0, fmt.Errorf("kminhash: column %d value %d: row id %d out of range", c, i, id)
			}
			v := h.Row(int(id))
			if i > 0 && v < prev {
				return nil, 0, fmt.Errorf("kminhash: column %d values not sorted", c)
			}
			prev = v
			s.Sigs[c] = append(s.Sigs[c], v)
		}
		pr.Align() // columns are byte-aligned
	}
	if s.Sigs == nil {
		s.Sigs = [][]uint64{}
		s.ColSizes = []int{}
	}
	return s, seed, nil
}
