package kminhash

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

func TestSketchCodecRoundTrip(t *testing.T) {
	rng := hashing.NewSplitMix64(21)
	m := randomMatrix(rng, 400, 50, 0.06)
	const k, seed = 12, 17
	s, err := Compute(m.Stream(), k, seed)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteCompressed(&buf, seed, m.NumRows()); err != nil {
		t.Fatal(err)
	}
	// Compare against the raw cost of the same sketch: 8 bytes per
	// value plus a byte-ish per column of bookkeeping.
	rawBytes := 0
	for c, sig := range s.Sigs {
		rawBytes += 8*len(sig) + 2
		_ = c
	}
	if buf.Len()*3 > rawBytes+48 {
		t.Errorf("compressed %d bytes, raw equivalent %d: expected at least 3x", buf.Len(), rawBytes)
	}
	got, gotSeed, err := ReadSketches(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if gotSeed != seed || got.K != s.K || got.Updates != s.Updates {
		t.Fatalf("header k=%d seed=%d updates=%d", got.K, gotSeed, got.Updates)
	}
	if len(got.Sigs) != len(s.Sigs) || len(got.ColSizes) != len(s.ColSizes) {
		t.Fatalf("%d columns decoded, want %d", len(got.Sigs), len(s.Sigs))
	}
	for c := range s.Sigs {
		if got.ColSizes[c] != s.ColSizes[c] {
			t.Fatalf("column %d size %d, want %d", c, got.ColSizes[c], s.ColSizes[c])
		}
		if len(got.Sigs[c]) != len(s.Sigs[c]) {
			t.Fatalf("column %d sketch length %d, want %d", c, len(got.Sigs[c]), len(s.Sigs[c]))
		}
		for i := range s.Sigs[c] {
			if got.Sigs[c][i] != s.Sigs[c][i] {
				t.Fatalf("column %d value %d differs", c, i)
			}
		}
	}
}

func TestSketchCodecEmptyAndShortColumns(t *testing.T) {
	// Columns with no rows and columns with fewer than k rows.
	m := matrix.MustNew(20, [][]int32{{0, 5, 19}, {}, {7}})
	s, err := Compute(m.Stream(), 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.WriteCompressed(&buf, 3, m.NumRows()); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadSketches(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Sigs[1]) != 0 || got.ColSizes[1] != 0 {
		t.Error("empty column not preserved")
	}
	if len(got.Sigs[2]) != 1 {
		t.Errorf("short column sketch length %d, want 1", len(got.Sigs[2]))
	}
	// The decoded arenas must keep the capacity contract (append up to
	// k without reallocating past the column's region is not required,
	// but capacity must not exceed k so neighbours cannot be clobbered).
	for c := range got.Sigs {
		if cap(got.Sigs[c]) > got.K {
			t.Errorf("column %d arena capacity %d exceeds k=%d", c, cap(got.Sigs[c]), got.K)
		}
	}
}

func TestWriteCompressedSketchRejectsForeignValues(t *testing.T) {
	m := matrix.MustNew(10, [][]int32{{0, 2, 4}})
	s, err := Compute(m.Stream(), 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	s.Sigs[0][0] ^= 1
	var buf bytes.Buffer
	if err := s.WriteCompressed(&buf, 9, m.NumRows()); err == nil {
		t.Fatal("foreign value accepted")
	}
}

// kmc1 builds a compressed-sketch header plus body for hostile cases.
func kmc1(k, m, rows, seed, updates uint64, body []byte) []byte {
	var buf bytes.Buffer
	buf.WriteString(sketchCompressedMagic)
	var hdr [40]byte
	binary.LittleEndian.PutUint64(hdr[0:], k)
	binary.LittleEndian.PutUint64(hdr[8:], m)
	binary.LittleEndian.PutUint64(hdr[16:], rows)
	binary.LittleEndian.PutUint64(hdr[24:], seed)
	binary.LittleEndian.PutUint64(hdr[32:], updates)
	buf.Write(hdr[:])
	buf.Write(body)
	return buf.Bytes()
}

func TestReadSketchesErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"bad magic", []byte("XMC1\x00\x00\x00\x00"), "bad magic"},
		{"truncated header", []byte("KMC1"), "reading header"},
		{"zero k", kmc1(0, 1, 1, 0, 0, nil), "implausible dimensions"},
		{"huge k", kmc1(1<<30, 1, 1, 0, 0, nil), "implausible dimensions"},
		{"too many values", kmc1(1<<18, 1<<31, 1, 0, 0, nil), "too large"},
		{"implausible updates", kmc1(1, 1, 1, 0, 1<<63, nil), "implausible update"},
		{"truncated columns", kmc1(1, 3, 4, 0, 0, []byte{0x00, 0x00}), "column 1 size"},
		{"size exceeds rows", kmc1(1, 1, 4, 0, 0, []byte{0x09}), "exceeds 4 rows"},
		{"length exceeds size", kmc1(4, 1, 8, 0, 0, []byte{0x01, 0x02}), "sketch length 2 exceeds"},
		{"length exceeds k", kmc1(1, 1, 8, 0, 0, []byte{0x05, 0x03}), "sketch length 3 exceeds"},
		// rows=2 -> width 2: byte 0x03 decodes row id 3 >= 2.
		{"row id out of range", kmc1(1, 1, 2, 0, 0, []byte{0x01, 0x01, 0x03}), "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadSketches(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("hostile input accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// FuzzReadSketches: any input parses or errors, never panics, and
// allocation is paced by input size rather than the header's claim.
func FuzzReadSketches(f *testing.F) {
	m := matrix.MustNew(30, [][]int32{{0, 3, 17}, {}, {5, 6, 7, 8, 9}})
	s, err := Compute(m.Stream(), 4, 11)
	if err != nil {
		f.Fatal(err)
	}
	var seed bytes.Buffer
	if err := s.WriteCompressed(&seed, 11, m.NumRows()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	for _, cut := range []int{4, 30, 44, seed.Len() - 1} {
		if cut < seed.Len() {
			f.Add(seed.Bytes()[:cut])
		}
	}
	f.Add(kmc1(8, 1<<30, 1<<30, 0, 0, nil))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, sd, err := ReadSketches(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(got.Sigs) != len(got.ColSizes) {
			t.Fatal("column tables out of sync")
		}
		// Whatever parsed must re-encode and re-parse identically: the
		// decoder only admits values derivable from (seed, row id), so
		// the functional encoder must accept them all back. The row
		// count lives in the header the decoder just validated.
		rows := binary.LittleEndian.Uint64(data[4+16 : 4+24])
		if rows > 1<<20 {
			return // re-encoding is O(rows); skip the huge-n corner
		}
		var out bytes.Buffer
		if err := got.WriteCompressed(&out, sd, int(rows)); err != nil {
			t.Fatalf("re-encode of parsed sketches failed: %v", err)
		}
		got2, sd2, err := ReadSketches(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if sd2 != sd || got2.K != got.K || got2.Updates != got.Updates || len(got2.Sigs) != len(got.Sigs) {
			t.Fatal("round trip changed header")
		}
		for c := range got.Sigs {
			if got2.ColSizes[c] != got.ColSizes[c] || len(got2.Sigs[c]) != len(got.Sigs[c]) {
				t.Fatalf("column %d shape changed in round trip", c)
			}
			for i := range got.Sigs[c] {
				if got2.Sigs[c][i] != got.Sigs[c][i] {
					t.Fatalf("column %d value %d changed in round trip", c, i)
				}
			}
		}
	})
}
