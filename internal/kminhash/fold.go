package kminhash

import (
	"fmt"
	"sort"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

// FoldState is the resumable accumulator of the K-MH sketch pass: the
// per-column bounded max-heaps Compute keeps internally, exported so
// ingestion can stop after any row, snapshot to disk (WriteTo/
// ReadFoldState, format KMF1), and continue later at O(new rows) cost.
// States over disjoint row sets combine with Merge: the k smallest
// hash values of a union of rows are the k smallest of the two parts'
// bottom-k multisets, so the merged state finishes to exactly the
// sketch of the union.
//
// The heap arrays are kept verbatim across snapshot round-trips, so a
// resumed sequential fold replays exactly as an uninterrupted one,
// including the order-dependent Updates counter. Merging instead
// canonicalises only the multiset content: Finish output is exact, but
// Updates becomes the sum of the parts (the serial counter depends on
// arrival order). A FoldState is not safe for concurrent use.
type FoldState struct {
	k, m     int
	seed     uint64
	rows     int64      // rows folded so far
	updates  int64      // bounded-heap replacements (summed on merge)
	heaps    [][]uint64 // per-column max-heap, len = min(k, colSize)
	colSizes []int      // |C_c| over the folded rows
	h        hashing.PermHash
}

// NewFoldState returns an empty fold state for m columns and bottom-k
// sketches under the permutation hash of seed. Folding rows into it and
// calling Finish yields exactly what Compute returns for the same rows.
func NewFoldState(m, k int, seed uint64) (*FoldState, error) {
	if k <= 0 {
		return nil, fmt.Errorf("kminhash: k must be positive, got %d", k)
	}
	if m < 0 {
		return nil, fmt.Errorf("kminhash: negative column count %d", m)
	}
	s := &FoldState{
		k:        k,
		m:        m,
		seed:     seed,
		heaps:    make([][]uint64, m),
		colSizes: make([]int, m),
		h:        hashing.NewPermHash(seed),
	}
	// One m·k arena, sliced per column, as in newSketches.
	backing := make([]uint64, m*k)
	for c := range s.heaps {
		s.heaps[c] = backing[c*k : c*k : (c+1)*k]
	}
	return s, nil
}

// K returns the sketch size bound.
func (s *FoldState) K() int { return s.k }

// NumCols returns the number of columns.
func (s *FoldState) NumCols() int { return s.m }

// Seed returns the permutation-hash seed.
func (s *FoldState) Seed() uint64 { return s.seed }

// Rows returns the number of rows folded into the state so far.
func (s *FoldState) Rows() int64 { return s.rows }

// Updates returns the bounded-heap replacement count: exact for a
// sequential fold (snapshot round-trips included), summed across parts
// after a Merge.
func (s *FoldState) Updates() int64 { return s.updates }

// FoldRow folds one row (its sorted column indices) into the state,
// exactly as Compute's scan callback does. Each row id must be folded
// at most once across all states that will be merged together.
func (s *FoldState) FoldRow(row int, cols []int32) {
	s.rows++
	if len(cols) == 0 {
		return
	}
	v := s.h.Row(row)
	for _, c := range cols {
		s.colSizes[c]++
		heap := s.heaps[c]
		if len(heap) < s.k {
			s.heaps[c] = pushMaxHeap(heap, v)
			s.updates++
		} else if v < heap[0] {
			replaceMaxHeapRoot(heap, v)
			s.updates++
		}
	}
}

// FoldShard folds every row of a shard, in shard order.
func (s *FoldState) FoldShard(sh *matrix.Shard) {
	for i := 0; i < sh.Len(); i++ {
		row, cols := sh.Row(i)
		s.FoldRow(int(row), cols)
	}
}

// Finish copies the heaps into canonical (ascending-sorted) Sketches.
// The state is left intact, so more rows can be folded and Finish
// called again.
func (s *FoldState) Finish() *Sketches {
	out := newSketches(s.m, s.k)
	copy(out.ColSizes, s.colSizes)
	out.Updates = s.updates
	for c, heap := range s.heaps {
		sig := append(out.Sigs[c], heap...)
		sort.Slice(sig, func(a, b int) bool { return sig[a] < sig[b] })
		out.Sigs[c] = sig
	}
	return out
}

// Clone returns an independent copy of the state, heap layouts
// preserved verbatim.
func (s *FoldState) Clone() *FoldState {
	c := &FoldState{
		k:        s.k,
		m:        s.m,
		seed:     s.seed,
		rows:     s.rows,
		updates:  s.updates,
		heaps:    make([][]uint64, s.m),
		colSizes: append([]int(nil), s.colSizes...),
		h:        s.h,
	}
	backing := make([]uint64, s.m*s.k)
	for i, heap := range s.heaps {
		dst := backing[i*s.k : i*s.k : (i+1)*s.k]
		c.heaps[i] = append(dst, heap...)
	}
	return c
}

// Merge folds src into dst: every value of src's heaps is offered to
// dst's bounded heaps, which keeps the k smallest values of the two
// multisets combined — duplicates included, because distinct rows with
// colliding hashes each occupy a sketch slot (unlike UnionSignature,
// whose set semantics model the union COLUMN c_i ∨ c_j). If dst and src
// were folded from disjoint row sets, Finish on the merged state equals
// Compute over the union of the rows exactly; the heap ARRAY layout
// depends on merge order even though the multiset content does not.
// Column sizes, row and update counts are summed. src is left
// unchanged. The states must agree on k, m, and seed.
func Merge(dst, src *FoldState) error {
	if dst.k != src.k || dst.m != src.m || dst.seed != src.seed {
		return fmt.Errorf("kminhash: fold state mismatch: k=%d/%d m=%d/%d seed=%#x/%#x",
			dst.k, src.k, dst.m, src.m, dst.seed, src.seed)
	}
	for c, srcHeap := range src.heaps {
		dst.colSizes[c] += src.colSizes[c]
		for _, v := range srcHeap {
			heap := dst.heaps[c]
			if len(heap) < dst.k {
				dst.heaps[c] = pushMaxHeap(heap, v)
			} else if v < heap[0] {
				replaceMaxHeapRoot(heap, v)
			}
		}
	}
	dst.rows += src.rows
	dst.updates += src.updates
	return nil
}
