package kminhash

import (
	"bytes"
	"reflect"
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

// foldParts folds the fixture's rows into p states according to the
// random assignment part[r], preserving global row ids.
func foldParts(t *testing.T, src *matrix.SliceSource, part []int, p, k int, seed uint64) []*FoldState {
	t.Helper()
	states := make([]*FoldState, p)
	for i := range states {
		st, err := NewFoldState(src.Cols, k, seed)
		if err != nil {
			t.Fatal(err)
		}
		states[i] = st
	}
	for r, cols := range src.Rows {
		states[part[r]].FoldRow(r, cols)
	}
	return states
}

// sketchesEqual compares the canonical sketch content: sorted values
// and column sizes (Updates is order-dependent and compared only where
// a sequential replay is guaranteed).
func sketchesEqual(a, b *Sketches) bool {
	if a.K != b.K || !reflect.DeepEqual(a.ColSizes, b.ColSizes) {
		return false
	}
	for c := range a.Sigs {
		if !reflect.DeepEqual(a.Sigs[c], b.Sigs[c]) {
			return false
		}
	}
	return true
}

func rawStatesEqual(a, b *FoldState) bool {
	if a.k != b.k || a.m != b.m || a.seed != b.seed || a.rows != b.rows ||
		a.updates != b.updates || !reflect.DeepEqual(a.colSizes, b.colSizes) {
		return false
	}
	for c := range a.heaps {
		if !reflect.DeepEqual(a.heaps[c], b.heaps[c]) {
			return false
		}
	}
	return true
}

// TestMergeAlgebra: under randomized row partitions, Merge is
// commutative and associative up to the canonical (Finish) sketch —
// bottom-k heap ARRAYS are insertion-order-dependent, the multiset they
// hold is not — merging with an empty state is the identity on the raw
// state, and the full merge reproduces Compute over all rows.
func TestMergeAlgebra(t *testing.T) {
	src := streamFixture(500, 45, 29)
	const k, seed = 9, 81
	want, err := Compute(src, k, seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := hashing.NewSplitMix64(43)
	for trial := 0; trial < 8; trial++ {
		p := 2 + rng.Intn(4)
		part := make([]int, len(src.Rows))
		for r := range part {
			part[r] = rng.Intn(p)
		}
		states := foldParts(t, src, part, p, k, seed)
		a, b := states[0], states[1]

		// Commutativity up to canonical content: a+b ~ b+a.
		ab, ba := a.Clone(), b.Clone()
		if err := Merge(ab, b); err != nil {
			t.Fatal(err)
		}
		if err := Merge(ba, a); err != nil {
			t.Fatal(err)
		}
		if !sketchesEqual(ab.Finish(), ba.Finish()) {
			t.Fatalf("trial %d: merge not commutative", trial)
		}
		if ab.Rows() != ba.Rows() || ab.Updates() != ba.Updates() {
			t.Fatalf("trial %d: merged counters not symmetric", trial)
		}

		// Associativity up to canonical content: (a+b)+c ~ a+(b+c).
		if p > 2 {
			c := states[2]
			left := a.Clone()
			if err := Merge(left, b); err != nil {
				t.Fatal(err)
			}
			if err := Merge(left, c); err != nil {
				t.Fatal(err)
			}
			bc := b.Clone()
			if err := Merge(bc, c); err != nil {
				t.Fatal(err)
			}
			right := a.Clone()
			if err := Merge(right, bc); err != nil {
				t.Fatal(err)
			}
			if !sketchesEqual(left.Finish(), right.Finish()) {
				t.Fatalf("trial %d: merge not associative", trial)
			}
		}

		// Identity: a + empty == a bit for bit, and empty + a ~ a.
		empty, err := NewFoldState(src.Cols, k, seed)
		if err != nil {
			t.Fatal(err)
		}
		id := a.Clone()
		if err := Merge(id, empty); err != nil {
			t.Fatal(err)
		}
		if !rawStatesEqual(id, a) {
			t.Fatalf("trial %d: merge with empty is not the identity", trial)
		}
		id2 := empty.Clone()
		if err := Merge(id2, a); err != nil {
			t.Fatal(err)
		}
		if !sketchesEqual(id2.Finish(), a.Finish()) {
			t.Fatalf("trial %d: empty merged with a differs from a", trial)
		}

		// Totality: merging every part reproduces the batch sketches,
		// updates summing over the parts.
		total := states[0].Clone()
		for _, st := range states[1:] {
			if err := Merge(total, st); err != nil {
				t.Fatal(err)
			}
		}
		if total.Rows() != int64(len(src.Rows)) {
			t.Fatalf("trial %d: merged rows = %d, want %d", trial, total.Rows(), len(src.Rows))
		}
		if !sketchesEqual(total.Finish(), want) {
			t.Fatalf("trial %d: merged sketches differ from batch", trial)
		}
	}
}

// TestMergeEqualsConcatenatedCompute: two sources over disjoint row
// ranges, folded separately and merged, equal Compute over the
// concatenated matrix — the mergeability contract the scale-out
// executor depends on.
func TestMergeEqualsConcatenatedCompute(t *testing.T) {
	first := streamFixture(220, 35, 5)
	second := streamFixture(180, 35, 6)
	concat := &matrix.SliceSource{Cols: 35, Rows: append(append([][]int32{}, first.Rows...), second.Rows...)}
	const k, seed = 7, 31
	want, err := Compute(concat, k, seed)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewFoldState(35, k, seed)
	if err != nil {
		t.Fatal(err)
	}
	for r, cols := range first.Rows {
		a.FoldRow(r, cols)
	}
	b, err := NewFoldState(35, k, seed)
	if err != nil {
		t.Fatal(err)
	}
	for r, cols := range second.Rows {
		b.FoldRow(len(first.Rows)+r, cols) // global ids continue past the first part
	}
	if err := Merge(a, b); err != nil {
		t.Fatal(err)
	}
	got := a.Finish()
	if !sketchesEqual(got, want) {
		t.Fatal("merged sketches differ from Compute over the concatenated matrix")
	}
	if got.Updates != a.Updates() {
		t.Fatalf("Finish updates = %d, state says %d", got.Updates, a.Updates())
	}
}

// TestMergeMismatch: states with different parameters refuse to merge.
func TestMergeMismatch(t *testing.T) {
	a, _ := NewFoldState(10, 4, 1)
	for _, b := range []*FoldState{
		func() *FoldState { s, _ := NewFoldState(10, 5, 1); return s }(),
		func() *FoldState { s, _ := NewFoldState(11, 4, 1); return s }(),
		func() *FoldState { s, _ := NewFoldState(10, 4, 2); return s }(),
	} {
		if err := Merge(a, b); err == nil {
			t.Errorf("merge of mismatched states (k=%d m=%d seed=%d) accepted", b.k, b.m, b.seed)
		}
	}
}

// TestFoldStateResume: chunked sequential folding with a snapshot
// round-trip in the middle replays bit-identically to Compute —
// including the order-dependent Updates counter, because the snapshot
// stores the heap arrays verbatim.
func TestFoldStateResume(t *testing.T) {
	src := streamFixture(300, 30, 7)
	const k, seed = 6, 13
	want, err := Compute(src, k, seed)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewFoldState(src.Cols, k, seed)
	if err != nil {
		t.Fatal(err)
	}
	for r, cols := range src.Rows {
		if r == 150 {
			var buf bytes.Buffer
			if err := st.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}
			st, err = ReadFoldState(&buf)
			if err != nil {
				t.Fatal(err)
			}
			_ = st.Finish() // an early Finish must not disturb the state
		}
		st.FoldRow(r, cols)
	}
	got := st.Finish()
	if !sketchesEqual(got, want) {
		t.Fatal("resumed fold differs from batch")
	}
	if got.Updates != want.Updates {
		t.Fatalf("resumed Updates = %d, want %d", got.Updates, want.Updates)
	}
	if st.Rows() != 300 {
		t.Fatalf("rows = %d, want 300", st.Rows())
	}
}

// TestFoldStateCodecRoundTrip: decode(encode(s)) == s verbatim for
// empty, partial, and zero-column states; corrupt magic, truncated
// payloads, and heap-invariant violations are rejected.
func TestFoldStateCodecRoundTrip(t *testing.T) {
	src := streamFixture(120, 25, 3)
	st, err := NewFoldState(src.Cols, 5, 77)
	if err != nil {
		t.Fatal(err)
	}
	states := []*FoldState{st.Clone()} // empty
	for r, cols := range src.Rows {
		st.FoldRow(r, cols)
	}
	states = append(states, st) // populated
	zc, err := NewFoldState(0, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	states = append(states, zc) // zero columns
	for i, s := range states {
		var buf bytes.Buffer
		if err := s.Snapshot(&buf); err != nil {
			t.Fatalf("state %d: %v", i, err)
		}
		enc := buf.Bytes()
		got, err := ReadFoldState(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("state %d: %v", i, err)
		}
		if !rawStatesEqual(got, s) {
			t.Fatalf("state %d: round trip differs", i)
		}
		if len(enc) > 44 {
			if _, err := ReadFoldState(bytes.NewReader(enc[:len(enc)-3])); err == nil {
				t.Fatalf("state %d: truncated payload accepted", i)
			}
		}
		bad := append([]byte("XXXX"), enc[4:]...)
		if _, err := ReadFoldState(bytes.NewReader(bad)); err == nil {
			t.Fatalf("state %d: bad magic accepted", i)
		}
	}
}
