package kminhash

import (
	"encoding/binary"
	"fmt"
	"io"

	"assocmine/internal/hashing"
)

// Fold-state persistence: an ingestion process snapshots its FoldState
// after each batch so a restart resumes at O(new rows) instead of
// refolding history. The KMF1 format is versioned by magic like KMC1
// and stores the raw 64-bit heap arrays VERBATIM (heap order, not
// sorted): a resumed sequential fold then replays bit-identically to an
// uninterrupted one, order-dependent Updates counter included. Every
// heap's length is the invariant min(k, colSize) — each column
// occurrence either pushes or replaces — so only the column size is
// encoded and the length is derived.
//
// Unlike ReadSketches, the fold codec never wraps the stream in its own
// buffered reader and consumes exactly its encoded bytes — several
// states (a sliding window's ring) share one stream in the ingest
// snapshot container, so read-ahead would corrupt the next blob. Pass a
// buffered reader for performance.
const foldMagic = "KMF1"

// Snapshot serialises the state: magic, then k, m, seed, rows, updates
// as 8-byte little-endian words, then per column an 8-byte column size
// followed by min(k, colSize) raw heap values in heap-array order.
func (s *FoldState) Snapshot(w io.Writer) error {
	var hdr [44]byte
	copy(hdr[:4], foldMagic)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(s.k))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(s.m))
	binary.LittleEndian.PutUint64(hdr[20:], s.seed)
	binary.LittleEndian.PutUint64(hdr[28:], uint64(s.rows))
	binary.LittleEndian.PutUint64(hdr[36:], uint64(s.updates))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 0, 1<<15)
	flush := func(force bool) error {
		if len(buf) == 0 || (!force && len(buf) < cap(buf)-8*(s.k+1)) {
			return nil
		}
		_, err := w.Write(buf)
		buf = buf[:0]
		return err
	}
	for c, heap := range s.heaps {
		buf = binary.LittleEndian.AppendUint64(buf, uint64(s.colSizes[c]))
		for _, v := range heap {
			buf = binary.LittleEndian.AppendUint64(buf, v)
		}
		if err := flush(false); err != nil {
			return err
		}
	}
	return flush(true)
}

// ReadFoldState parses a stream written by Snapshot. The column table
// and heap arena are grown a bounded chunk of columns at a time as
// bytes actually arrive, mirroring ReadSketches' hostile-header guard,
// and every decoded heap is checked for the max-heap invariant so a
// corrupted snapshot fails loudly instead of folding garbage.
func ReadFoldState(r io.Reader) (*FoldState, error) {
	var hdr [44]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("kminhash: reading fold header: %w", err)
	}
	if string(hdr[:4]) != foldMagic {
		return nil, fmt.Errorf("kminhash: bad fold magic %q", hdr[:4])
	}
	k := binary.LittleEndian.Uint64(hdr[4:])
	m := binary.LittleEndian.Uint64(hdr[12:])
	seed := binary.LittleEndian.Uint64(hdr[20:])
	rows := binary.LittleEndian.Uint64(hdr[28:])
	updates := binary.LittleEndian.Uint64(hdr[36:])
	const (
		maxDim  = 1 << 31
		maxK    = 1 << 20 // arena chunks are k-wide
		maxRows = 1 << 40
	)
	if k == 0 || k > maxK || m > maxDim || rows > maxRows {
		return nil, fmt.Errorf("kminhash: implausible fold dimensions k=%d m=%d rows=%d", k, m, rows)
	}
	if k*m > (1 << 34) {
		return nil, fmt.Errorf("kminhash: fold state too large: %d values", k*m)
	}
	if updates > (1 << 62) {
		return nil, fmt.Errorf("kminhash: implausible update count %d", updates)
	}
	s := &FoldState{
		k:       int(k),
		m:       int(m),
		seed:    seed,
		rows:    int64(rows),
		updates: int64(updates),
		h:       hashing.NewPermHash(seed),
	}
	colChunk := uint64(1<<20) / k
	if colChunk == 0 {
		colChunk = 1
	}
	var backing []uint64 // arena of the current column chunk
	var buf [8]byte
	read64 := func() (uint64, error) {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(buf[:]), nil
	}
	for c := uint64(0); c < m; c++ {
		if uint64(len(s.heaps)) == c {
			grow := m - c
			if grow > colChunk {
				grow = colChunk
			}
			s.heaps = append(s.heaps, make([][]uint64, grow)...)
			s.colSizes = append(s.colSizes, make([]int, grow)...)
			backing = make([]uint64, grow*k)
			for i := uint64(0); i < grow; i++ {
				s.heaps[c+i] = backing[i*k : i*k : (i+1)*k]
			}
		}
		size, err := read64()
		if err != nil {
			return nil, fmt.Errorf("kminhash: column %d size: %w", c, err)
		}
		if size > rows {
			return nil, fmt.Errorf("kminhash: column %d size %d exceeds %d rows", c, size, rows)
		}
		s.colSizes[c] = int(size)
		length := size
		if length > k {
			length = k
		}
		heap := s.heaps[c]
		for i := uint64(0); i < length; i++ {
			v, err := read64()
			if err != nil {
				return nil, fmt.Errorf("kminhash: column %d value %d: %w", c, i, err)
			}
			if i > 0 && heap[(i-1)/2] < v {
				return nil, fmt.Errorf("kminhash: column %d violates the heap invariant at value %d", c, i)
			}
			heap = append(heap, v)
		}
		s.heaps[c] = heap
	}
	if s.heaps == nil {
		s.heaps = [][]uint64{}
		s.colSizes = []int{}
	}
	return s, nil
}
