package kminhash

import (
	"bytes"
	"testing"

	"assocmine/internal/hashing"
)

// TestMergeThroughCodecProperty is the cross-process merge property the
// scale-out executor relies on: Merge(decode(encode(a)), b) equals the
// in-memory Merge(a, b) — the KMF1 codec is transparent to merging.
// The heap arrays themselves are order-sensitive, so equality is
// checked on Finish(), which sorts: identical multisets must yield
// identical sketches. Randomised over dimensions, row splits, and
// sparsity.
func TestMergeThroughCodecProperty(t *testing.T) {
	rng := hashing.NewSplitMix64(0xc0de ^ 0xffff)
	for trial := 0; trial < 40; trial++ {
		m := 1 + int(rng.Next()%40)
		k := 1 + int(rng.Next()%16)
		seed := rng.Next()
		rowsA := int(rng.Next() % 60)
		rowsB := int(rng.Next() % 60)
		fold := func(base, rows int) *FoldState {
			s, err := NewFoldState(m, k, seed)
			if err != nil {
				t.Fatal(err)
			}
			cols := make([]int32, 0, 8)
			for r := 0; r < rows; r++ {
				cols = cols[:0]
				for c := 0; c < m; c++ {
					if rng.Next()%4 == 0 {
						cols = append(cols, int32(c))
					}
				}
				s.FoldRow(base+r, cols)
			}
			return s
		}
		a := fold(0, rowsA)
		b := fold(rowsA, rowsB)

		want := a.Clone()
		if err := Merge(want, b); err != nil {
			t.Fatal(err)
		}

		var buf bytes.Buffer
		if err := a.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		decoded, err := ReadFoldState(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := Merge(decoded, b); err != nil {
			t.Fatal(err)
		}

		if decoded.Rows() != want.Rows() {
			t.Fatalf("trial %d: rows %d, want %d", trial, decoded.Rows(), want.Rows())
		}
		gs, ws := decoded.Finish(), want.Finish()
		if gs.K != ws.K || len(gs.Sigs) != len(ws.Sigs) {
			t.Fatalf("trial %d: shape mismatch", trial)
		}
		for c := range ws.Sigs {
			if gs.ColSizes[c] != ws.ColSizes[c] || len(gs.Sigs[c]) != len(ws.Sigs[c]) {
				t.Fatalf("trial %d: column %d shape differs after codec round-trip", trial, c)
			}
			for i := range ws.Sigs[c] {
				if gs.Sigs[c][i] != ws.Sigs[c][i] {
					t.Fatalf("trial %d: column %d value %d differs after codec round-trip", trial, c, i)
				}
			}
		}
	}
}
