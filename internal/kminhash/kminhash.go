// Package kminhash implements the K-MH scheme of Section 3.2: a single
// row-order hash function, with each column's signature SIG_i being the
// k smallest hash values among its rows (a "bottom-k" sketch). Columns
// with fewer than k rows keep all their values.
//
// The signature of the implicit union column, SIG_{i∪j}, is the set of
// k smallest values of SIG_i ∪ SIG_j and is computable from the two
// signatures alone in O(k) time; Theorem 2 turns this into the unbiased
// similarity estimator |SIG_{i∪j} ∩ SIG_i ∩ SIG_j| / |SIG_{i∪j}|.
// Lemma 1 justifies a cheaper biased estimator from |SIG_i ∩ SIG_j|
// that Hash-Count computes for all pairs at once.
package kminhash

import (
	"fmt"
	"sort"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

// Sketches holds the bottom-k signatures of every column plus the
// column sizes observed during the pass (needed by the biased
// estimator and by Lemma 1).
type Sketches struct {
	K        int
	Sigs     [][]uint64 // per column, sorted ascending, len <= K
	ColSizes []int      // |C_i| counted during the scan

	// Updates counts bounded-heap replacements during the pass; the
	// paper bounds its expectation by O(k log n) per column. Exposed
	// for the ablation benchmarks.
	Updates int64
}

// newSketches returns empty Sketches for m columns whose per-column
// heaps share one m·k backing arena: Sigs[c] starts at length 0 with
// capacity k, so every pushMaxHeap append lands in the column's own
// arena region and the pass costs one allocation instead of up to m
// heap growths.
func newSketches(m, k int) *Sketches {
	s := &Sketches{
		K:        k,
		Sigs:     make([][]uint64, m),
		ColSizes: make([]int, m),
	}
	backing := make([]uint64, m*k)
	for c := range s.Sigs {
		s.Sigs[c] = backing[c*k : c*k : (c+1)*k]
	}
	return s
}

// Compute scans src once and returns the bottom-k sketch of every
// column. Deterministic in (src, k, seed).
func Compute(src matrix.RowSource, k int, seed uint64) (*Sketches, error) {
	if k <= 0 {
		return nil, fmt.Errorf("kminhash: k must be positive, got %d", k)
	}
	s := newSketches(src.NumCols(), k)
	h := hashing.NewPermHash(seed)
	err := src.Scan(func(row int, cols []int32) error {
		v := h.Row(row)
		for _, c := range cols {
			s.ColSizes[c]++
			heap := s.Sigs[c]
			if len(heap) < k {
				s.Sigs[c] = pushMaxHeap(heap, v)
				s.Updates++
			} else if v < heap[0] {
				replaceMaxHeapRoot(heap, v)
				s.Updates++
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for c := range s.Sigs {
		sort.Slice(s.Sigs[c], func(a, b int) bool { return s.Sigs[c][a] < s.Sigs[c][b] })
	}
	return s, nil
}

// pushMaxHeap appends v and sifts it up (max-heap on values: root holds
// the largest of the k smallest seen so far).
func pushMaxHeap(h []uint64, v uint64) []uint64 {
	h = append(h, v)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h[parent] >= h[i] {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	return h
}

// replaceMaxHeapRoot overwrites the root with v and sifts down.
func replaceMaxHeapRoot(h []uint64, v uint64) {
	h[0] = v
	i := 0
	n := len(h)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h[l] > h[largest] {
			largest = l
		}
		if r < n && h[r] > h[largest] {
			largest = r
		}
		if largest == i {
			return
		}
		h[i], h[largest] = h[largest], h[i]
		i = largest
	}
}

// Signature returns SIG_c sorted ascending. The caller must not modify
// the returned slice.
func (s *Sketches) Signature(c int) []uint64 { return s.Sigs[c] }

// UnionSignature returns SIG_{i∪j}: the k smallest distinct values of
// SIG_i ∪ SIG_j, written into dst (allocated if nil).
func (s *Sketches) UnionSignature(i, j int, dst []uint64) []uint64 {
	if dst == nil {
		dst = make([]uint64, 0, s.K)
	}
	dst = dst[:0]
	a, b := s.Sigs[i], s.Sigs[j]
	ai, bi := 0, 0
	for len(dst) < s.K && (ai < len(a) || bi < len(b)) {
		switch {
		case bi >= len(b) || (ai < len(a) && a[ai] < b[bi]):
			dst = append(dst, a[ai])
			ai++
		case ai >= len(a) || b[bi] < a[ai]:
			dst = append(dst, b[bi])
			bi++
		default: // equal
			dst = append(dst, a[ai])
			ai++
			bi++
		}
	}
	return dst
}

// UnbiasedEstimate implements Theorem 2:
// Ŝ = |SIG_{i∪j} ∩ SIG_i ∩ SIG_j| / |SIG_{i∪j}|.
// It runs a single O(k) three-way merge. Returns 0 for two empty
// columns.
func (s *Sketches) UnbiasedEstimate(i, j int) float64 {
	a, b := s.Sigs[i], s.Sigs[j]
	ai, bi := 0, 0
	unionLen, both := 0, 0
	for unionLen < s.K && (ai < len(a) || bi < len(b)) {
		switch {
		case bi >= len(b) || (ai < len(a) && a[ai] < b[bi]):
			ai++
		case ai >= len(a) || b[bi] < a[ai]:
			bi++
		default:
			both++
			ai++
			bi++
		}
		unionLen++
	}
	if unionLen == 0 {
		return 0
	}
	return float64(both) / float64(unionLen)
}

// IntersectionSize returns |SIG_i ∩ SIG_j|, the statistic Hash-Count
// accumulates and Lemma 1 bounds.
func (s *Sketches) IntersectionSize(i, j int) int {
	a, b := s.Sigs[i], s.Sigs[j]
	ai, bi, n := 0, 0, 0
	for ai < len(a) && bi < len(b) {
		switch {
		case a[ai] < b[bi]:
			ai++
		case a[ai] > b[bi]:
			bi++
		default:
			n++
			ai++
			bi++
		}
	}
	return n
}

// BiasedEstimate converts an observed |SIG_i ∩ SIG_j| into a similarity
// estimate using E[|SIG_i ∩ SIG_j|] ≈ k_a·|C_ij|/|C_a| where C_a is the
// larger column and k_a = min(k, |C_a|) its sample size (paper
// Section 3.2). The intersection estimate is clamped to the feasible
// range before forming |C_ij| / (|C_i|+|C_j|-|C_ij|).
func (s *Sketches) BiasedEstimate(i, j int) float64 {
	return s.BiasedEstimateFromCount(i, j, s.IntersectionSize(i, j))
}

// BiasedEstimateFromCount is BiasedEstimate with the intersection size
// already known (as produced by candidate.HashCountKMH).
func (s *Sketches) BiasedEstimateFromCount(i, j, sigInter int) float64 {
	ci, cj := s.ColSizes[i], s.ColSizes[j]
	if ci < cj {
		ci, cj = cj, ci
	}
	if cj == 0 {
		return 0
	}
	ka := ci
	if ka > s.K {
		ka = s.K
	}
	cij := float64(sigInter) * float64(ci) / float64(ka)
	if cij > float64(cj) {
		cij = float64(cj)
	}
	union := float64(ci) + float64(cj) - cij
	if union <= 0 {
		return 0
	}
	return cij / union
}

// Lemma1Bounds returns the Lemma 1 sandwich on the true similarity
// given the expected signature-intersection size e and the exact union
// size |C_i ∪ C_j|:
//
//	e/min(2k, u) <= S <= e/min(k, u).
func Lemma1Bounds(e float64, k, unionSize int) (lo, hi float64) {
	den1 := 2 * k
	if unionSize < den1 {
		den1 = unionSize
	}
	den2 := k
	if unionSize < den2 {
		den2 = unionSize
	}
	if den1 > 0 {
		lo = e / float64(den1)
	}
	if den2 > 0 {
		hi = e / float64(den2)
	}
	return lo, hi
}

// OrSignature returns the bottom-k sketch of the induced column
// c_i ∨ c_j; identical to UnionSignature and exposed under the
// Section 7 name for the rules package.
func (s *Sketches) OrSignature(i, j int, dst []uint64) []uint64 {
	return s.UnionSignature(i, j, dst)
}
