package kminhash

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

func randomMatrix(rng *hashing.SplitMix64, rows, cols int, density float64) *matrix.Matrix {
	b := matrix.NewBuilder(rows, cols)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			if rng.Float64() < density {
				b.Set(r, c)
			}
		}
	}
	return b.Build()
}

func TestComputeValidatesK(t *testing.T) {
	m := matrix.MustNew(2, [][]int32{{0}})
	for _, k := range []int{0, -3} {
		if _, err := Compute(m.Stream(), k, 1); err == nil {
			t.Errorf("Compute accepted k=%d", k)
		}
	}
}

// TestBottomKMatchesSort: the heap-maintained signature must equal the
// k smallest row-hash values computed by brute force.
func TestBottomKMatchesSort(t *testing.T) {
	rng := hashing.NewSplitMix64(1)
	m := randomMatrix(rng, 300, 10, 0.2)
	const k, seed = 8, 42
	s, err := Compute(m.Stream(), k, seed)
	if err != nil {
		t.Fatal(err)
	}
	h := hashing.NewPermHash(seed)
	for c := 0; c < m.NumCols(); c++ {
		var all []uint64
		for _, r := range m.Column(c) {
			all = append(all, h.Row(int(r)))
		}
		sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
		want := all
		if len(want) > k {
			want = want[:k]
		}
		got := s.Signature(c)
		if len(got) != len(want) {
			t.Fatalf("column %d: signature length %d, want %d", c, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("column %d: sig[%d] = %x, want %x", c, i, got[i], want[i])
			}
		}
	}
}

func TestColSizes(t *testing.T) {
	m := matrix.MustNew(4, [][]int32{{0, 1}, {0, 1, 2}, {2, 3}})
	s, err := Compute(m.Stream(), 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := []int{2, 3, 2}
	for c, w := range want {
		if s.ColSizes[c] != w {
			t.Errorf("ColSizes[%d] = %d, want %d", c, s.ColSizes[c], w)
		}
	}
}

func TestSparseColumnKeepsAllValues(t *testing.T) {
	m := matrix.MustNew(10, [][]int32{{3, 7}})
	s, _ := Compute(m.Stream(), 5, 9)
	if len(s.Signature(0)) != 2 {
		t.Errorf("signature of 2-row column has length %d, want 2", len(s.Signature(0)))
	}
}

func TestEmptyColumn(t *testing.T) {
	m := matrix.MustNew(3, [][]int32{{}, {0, 1, 2}})
	s, _ := Compute(m.Stream(), 2, 3)
	if len(s.Signature(0)) != 0 {
		t.Errorf("empty column signature length %d", len(s.Signature(0)))
	}
	if got := s.UnbiasedEstimate(0, 0); got != 0 {
		t.Errorf("estimate between empty columns = %v", got)
	}
	if got := s.BiasedEstimate(0, 1); got != 0 {
		t.Errorf("biased estimate with empty column = %v", got)
	}
}

// TestUnionSignatureIsBottomKOfUnion: SIG_{i∪j} must equal the bottom-k
// sketch of the materialised OR column.
func TestUnionSignatureIsBottomKOfUnion(t *testing.T) {
	rng := hashing.NewSplitMix64(5)
	m := randomMatrix(rng, 200, 4, 0.15)
	m2, orIdx := m.WithOrColumn(0, 1)
	const k, seed = 6, 99
	s, err := Compute(m2.Stream(), k, seed)
	if err != nil {
		t.Fatal(err)
	}
	got := s.UnionSignature(0, 1, nil)
	want := s.Signature(orIdx)
	if len(got) != len(want) {
		t.Fatalf("union signature length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("union sig[%d] = %x, want %x", i, got[i], want[i])
		}
	}
}

func TestUnionSignatureDstReuse(t *testing.T) {
	m := matrix.MustNew(6, [][]int32{{0, 1, 2}, {3, 4, 5}})
	s, _ := Compute(m.Stream(), 4, 1)
	dst := make([]uint64, 0, 4)
	out := s.UnionSignature(0, 1, dst)
	if cap(out) != cap(dst) {
		t.Error("UnionSignature reallocated despite sufficient capacity")
	}
	if len(out) != 4 {
		t.Errorf("union signature length %d, want 4", len(out))
	}
}

// TestTheorem2Unbiased: averaging the unbiased estimator over many
// independent seeds must converge to the true similarity.
func TestTheorem2Unbiased(t *testing.T) {
	rng := hashing.NewSplitMix64(11)
	m := randomMatrix(rng, 150, 2, 0.3)
	truth := m.Similarity(0, 1)
	const trials, k = 400, 10
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		s, err := Compute(m.Stream(), k, uint64(1000+trial))
		if err != nil {
			t.Fatal(err)
		}
		sum += s.UnbiasedEstimate(0, 1)
	}
	mean := sum / trials
	// Each estimate is an average of k near-Bernoulli(s) draws; the
	// mean of 400 trials should be well within 0.04 of the truth.
	if math.Abs(mean-truth) > 0.04 {
		t.Errorf("mean unbiased estimate %v, truth %v", mean, truth)
	}
}

func TestIntersectionSize(t *testing.T) {
	s := &Sketches{K: 4, Sigs: [][]uint64{{1, 3, 5, 9}, {2, 3, 9, 11}}, ColSizes: []int{4, 4}}
	if got := s.IntersectionSize(0, 1); got != 2 {
		t.Errorf("IntersectionSize = %d, want 2", got)
	}
	if got := s.IntersectionSize(1, 0); got != 2 {
		t.Errorf("IntersectionSize swapped = %d, want 2", got)
	}
}

func TestUnbiasedEstimateIdenticalColumns(t *testing.T) {
	m := matrix.MustNew(20, [][]int32{
		{0, 3, 6, 9, 12},
		{0, 3, 6, 9, 12},
	})
	s, _ := Compute(m.Stream(), 3, 21)
	if got := s.UnbiasedEstimate(0, 1); got != 1 {
		t.Errorf("identical columns estimate = %v, want 1", got)
	}
}

func TestUnbiasedEstimateDisjointColumns(t *testing.T) {
	m := matrix.MustNew(20, [][]int32{
		{0, 1, 2, 3, 4},
		{10, 11, 12, 13, 14},
	})
	s, _ := Compute(m.Stream(), 4, 22)
	if got := s.UnbiasedEstimate(0, 1); got != 0 {
		t.Errorf("disjoint columns estimate = %v, want 0", got)
	}
}

// TestBiasedEstimateTracksTruth: with k comparable to column sizes the
// biased estimator should land near the truth on average.
func TestBiasedEstimateTracksTruth(t *testing.T) {
	rng := hashing.NewSplitMix64(31)
	m := randomMatrix(rng, 300, 2, 0.25)
	truth := m.Similarity(0, 1)
	const trials, k = 300, 20
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		s, err := Compute(m.Stream(), k, uint64(5000+trial))
		if err != nil {
			t.Fatal(err)
		}
		sum += s.BiasedEstimate(0, 1)
	}
	mean := sum / trials
	if math.Abs(mean-truth) > 0.1 {
		t.Errorf("mean biased estimate %v, truth %v", mean, truth)
	}
}

func TestBiasedEstimateExactWhenColumnsSmall(t *testing.T) {
	// When both columns have fewer than k rows, SIG = full column and
	// the biased estimator is exact.
	m := matrix.MustNew(30, [][]int32{
		{0, 5, 10, 15},
		{5, 10, 20},
	})
	s, _ := Compute(m.Stream(), 16, 77)
	want := m.Similarity(0, 1)
	if got := s.BiasedEstimate(0, 1); math.Abs(got-want) > 1e-12 {
		t.Errorf("biased estimate %v, want exact %v", got, want)
	}
}

func TestLemma1Bounds(t *testing.T) {
	lo, hi := Lemma1Bounds(6, 10, 100)
	if lo != 6.0/20 || hi != 6.0/10 {
		t.Errorf("bounds = (%v, %v), want (0.3, 0.6)", lo, hi)
	}
	// Union smaller than k: both denominators collapse to union size.
	lo, hi = Lemma1Bounds(3, 10, 5)
	if lo != 3.0/5 || hi != 3.0/5 {
		t.Errorf("bounds = (%v, %v), want (0.6, 0.6)", lo, hi)
	}
	lo, hi = Lemma1Bounds(1, 10, 0)
	if lo != 0 || hi != 0 {
		t.Errorf("bounds with empty union = (%v, %v), want (0, 0)", lo, hi)
	}
}

// TestLemma1Sandwich: statistically, the Lemma 1 bounds computed from
// the mean observed |SIG_i ∩ SIG_j| must bracket the true similarity.
func TestLemma1Sandwich(t *testing.T) {
	rng := hashing.NewSplitMix64(41)
	m := randomMatrix(rng, 400, 2, 0.2)
	truth := m.Similarity(0, 1)
	unionSize := m.UnionSize(0, 1)
	const trials, k = 300, 12
	sum := 0.0
	for trial := 0; trial < trials; trial++ {
		s, err := Compute(m.Stream(), k, uint64(9000+trial))
		if err != nil {
			t.Fatal(err)
		}
		sum += float64(s.IntersectionSize(0, 1))
	}
	e := sum / trials
	lo, hi := Lemma1Bounds(e, k, unionSize)
	const slack = 0.05
	if truth < lo-slack || truth > hi+slack {
		t.Errorf("truth %v outside Lemma 1 bounds [%v, %v]", truth, lo, hi)
	}
}

func TestUpdatesBounded(t *testing.T) {
	// Expected heap updates per column are O(k log n); check we are
	// within a loose constant of that.
	rng := hashing.NewSplitMix64(51)
	const rows, cols, k = 5000, 20, 8
	m := randomMatrix(rng, rows, cols, 0.5)
	s, err := Compute(m.Stream(), k, 3)
	if err != nil {
		t.Fatal(err)
	}
	bound := float64(cols) * 4 * float64(k) * math.Log(float64(rows))
	if float64(s.Updates) > bound {
		t.Errorf("updates %d exceed loose bound %v", s.Updates, bound)
	}
}

func TestOrSignatureAlias(t *testing.T) {
	m := matrix.MustNew(10, [][]int32{{0, 2, 4}, {1, 3, 5}})
	s, _ := Compute(m.Stream(), 4, 8)
	a := s.UnionSignature(0, 1, nil)
	b := s.OrSignature(0, 1, nil)
	if len(a) != len(b) {
		t.Fatal("OrSignature differs from UnionSignature")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("OrSignature differs from UnionSignature")
		}
	}
}

func TestQuickSignaturesSortedDistinct(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hashing.NewSplitMix64(seed)
		m := randomMatrix(rng, 60, 5, 0.3)
		s, err := Compute(m.Stream(), 5, seed)
		if err != nil {
			return false
		}
		for c := 0; c < 5; c++ {
			sig := s.Signature(c)
			if len(sig) > 5 || len(sig) > m.ColumnSize(c) {
				return false
			}
			for i := 1; i < len(sig); i++ {
				if sig[i-1] >= sig[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEstimatorsSymmetric(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hashing.NewSplitMix64(seed)
		m := randomMatrix(rng, 50, 4, 0.3)
		s, err := Compute(m.Stream(), 4, seed^77)
		if err != nil {
			return false
		}
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				if s.UnbiasedEstimate(i, j) != s.UnbiasedEstimate(j, i) {
					return false
				}
				if s.BiasedEstimate(i, j) != s.BiasedEstimate(j, i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
