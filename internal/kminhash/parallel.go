package kminhash

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

// ComputeParallel computes the same bottom-k sketches as Compute — the
// bottom-k of a column's row hashes is independent of visit order — by
// sharding columns across workers over the materialised matrix. Pass
// workers <= 0 for GOMAXPROCS. The Updates counter is not maintained
// (it is a property of the streaming pass).
func ComputeParallel(m *matrix.Matrix, k int, seed uint64, workers int) (*Sketches, error) {
	if k <= 0 {
		return nil, fmt.Errorf("kminhash: k must be positive, got %d", k)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	cols := m.NumCols()
	s := newSketches(cols, k)
	h := hashing.NewPermHash(seed)
	var wg sync.WaitGroup
	chunk := (cols + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > cols {
			hi = cols
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for c := lo; c < hi; c++ {
				col := m.Column(c)
				s.ColSizes[c] = len(col)
				if len(col) == 0 {
					continue
				}
				heap := s.Sigs[c]
				for _, r := range col {
					v := h.Row(int(r))
					if len(heap) < k {
						heap = pushMaxHeap(heap, v)
					} else if v < heap[0] {
						replaceMaxHeapRoot(heap, v)
					}
				}
				sort.Slice(heap, func(a, b int) bool { return heap[a] < heap[b] })
				s.Sigs[c] = heap
			}
		}(lo, hi)
	}
	wg.Wait()
	return s, nil
}
