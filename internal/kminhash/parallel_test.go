package kminhash

import (
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

func TestComputeParallelMatchesSerial(t *testing.T) {
	rng := hashing.NewSplitMix64(3)
	m := randomMatrix(rng, 400, 50, 0.1)
	const k, seed = 12, 77
	serial, err := Compute(m.Stream(), k, seed)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8, 0} {
		par, err := ComputeParallel(m, k, seed, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for c := 0; c < m.NumCols(); c++ {
			if par.ColSizes[c] != serial.ColSizes[c] {
				t.Fatalf("workers=%d col %d: sizes differ", workers, c)
			}
			a, b := serial.Signature(c), par.Signature(c)
			if len(a) != len(b) {
				t.Fatalf("workers=%d col %d: signature lengths differ", workers, c)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("workers=%d col %d: sig[%d] differs", workers, c, i)
				}
			}
		}
	}
}

func TestComputeParallelValidates(t *testing.T) {
	m := matrix.MustNew(2, [][]int32{{0}})
	if _, err := ComputeParallel(m, -1, 1, 2); err == nil {
		t.Error("negative k accepted")
	}
}

func TestComputeParallelEstimatorsAgree(t *testing.T) {
	rng := hashing.NewSplitMix64(4)
	m := randomMatrix(rng, 300, 10, 0.2)
	serial, _ := Compute(m.Stream(), 10, 5)
	par, err := ComputeParallel(m, 10, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		for j := i + 1; j < 10; j++ {
			if serial.UnbiasedEstimate(i, j) != par.UnbiasedEstimate(i, j) {
				t.Fatalf("unbiased estimate differs on (%d,%d)", i, j)
			}
			if serial.BiasedEstimate(i, j) != par.BiasedEstimate(i, j) {
				t.Fatalf("biased estimate differs on (%d,%d)", i, j)
			}
		}
	}
}
