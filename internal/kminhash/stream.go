package kminhash

import (
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

// ComputeStream computes the same bottom-k sketches as Compute — bit
// for bit — in ONE sequential pass over src, with the per-column heap
// maintenance fanned out across workers. Unlike ComputeParallel it
// never materialises the matrix: a single reader streams bounded shards
// (matrix.FanOutShards) and each worker owns a contiguous column range,
// updating only the heaps and sizes of its columns. Rows arrive in scan
// order for every worker, so each column's heap evolves exactly as in
// the serial pass, including the Updates count.
//
// Returns the sketches and the number of shards streamed. workers <= 0
// means GOMAXPROCS.
func ComputeStream(src matrix.RowSource, k int, seed uint64, workers int) (*Sketches, int64, error) {
	if k <= 0 {
		return nil, 0, fmt.Errorf("kminhash: k must be positive, got %d", k)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	m := src.NumCols()
	if workers > m {
		workers = m
	}
	if workers < 1 {
		workers = 1
	}
	s := newSketches(m, k)
	h := hashing.NewPermHash(seed)
	var updates atomic.Int64

	chunk := (m + workers - 1) / workers
	consumers := make([]func(<-chan *matrix.Shard), 0, workers)
	for cLo := 0; cLo < m; cLo += chunk {
		cHi := cLo + chunk
		if cHi > m {
			cHi = m
		}
		lo, hi := int32(cLo), int32(cHi)
		consumers = append(consumers, func(ch <-chan *matrix.Shard) {
			var local int64
			for sh := range ch {
				for i := 0; i < sh.Len(); i++ {
					row, cols := sh.Row(i)
					// Columns are sorted; binary-search to this worker's
					// range so dense rows don't cost every worker a full
					// scan.
					start := sort.Search(len(cols), func(j int) bool { return cols[j] >= lo })
					if start == len(cols) || cols[start] >= hi {
						continue
					}
					v := h.Row(int(row))
					for _, c := range cols[start:] {
						if c >= hi {
							break
						}
						s.ColSizes[c]++
						heap := s.Sigs[c]
						if len(heap) < k {
							s.Sigs[c] = pushMaxHeap(heap, v)
							local++
						} else if v < heap[0] {
							replaceMaxHeapRoot(heap, v)
							local++
						}
					}
				}
			}
			for c := lo; c < hi; c++ {
				sig := s.Sigs[c]
				sort.Slice(sig, func(a, b int) bool { return sig[a] < sig[b] })
			}
			updates.Add(local)
		})
	}
	shards, err := matrix.FanOutShards(src, 0, 0, consumers)
	if err != nil {
		return nil, shards, err
	}
	s.Updates = updates.Load()
	return s, shards, nil
}
