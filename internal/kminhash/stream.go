package kminhash

import (
	"fmt"
	"runtime"

	"assocmine/internal/matrix"
)

// ComputeStream computes the same bottom-k sketches as Compute — same
// sketch values, column sizes, and estimates — in ONE sequential pass
// over src without materialising the matrix. The driver is merge-based:
// shards are dealt round-robin to workers (matrix.DistributeShards),
// each worker folds its disjoint row subset into a private FoldState,
// and the states are merged in fixed worker order at the end. The k
// smallest hash values of a union of rows are the k smallest of the
// parts' bottom-k multisets, so any worker count and any row partition
// yield Compute's sketches exactly. The order-dependent Updates counter
// is exact with one worker and the sum of the per-part counters
// otherwise (deterministic for a fixed worker count, but not equal to
// the serial replay).
//
// Returns the sketches and the number of shards streamed. workers <= 0
// means GOMAXPROCS; one worker folds shard-by-shard directly.
func ComputeStream(src matrix.RowSource, k int, seed uint64, workers int) (*Sketches, int64, error) {
	st, err := NewFoldState(src.NumCols(), k, seed)
	if err != nil {
		return nil, 0, err
	}
	shards, err := FoldStream(src, st, workers)
	if err != nil {
		return nil, shards, err
	}
	return st.Finish(), shards, nil
}

// FoldStream folds every row of src into st using workers parallel
// consumers over one sequential pass, returning the number of shards
// streamed. st may already hold previously folded rows (the resume
// path); the new rows are combined in by Merge, so the finished result
// is exactly the sketch of all rows, old and new. With one worker the
// rows are folded directly into st in scan order, which keeps a
// sequential chunked ingest bit-identical to one uninterrupted pass.
func FoldStream(src matrix.RowSource, st *FoldState, workers int) (int64, error) {
	if src.NumCols() != st.m {
		return 0, fmt.Errorf("kminhash: source has %d columns, fold state has %d", src.NumCols(), st.m)
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers == 1 {
		return matrix.ScanShards(src, 0, 0, func(sh *matrix.Shard) error {
			st.FoldShard(sh)
			return nil
		})
	}
	parts := make([]*FoldState, workers)
	consumers := make([]func(<-chan *matrix.Shard), workers)
	for w := range parts {
		p, err := NewFoldState(st.m, st.k, st.seed)
		if err != nil {
			return 0, err
		}
		parts[w] = p
		consumers[w] = func(ch <-chan *matrix.Shard) {
			for sh := range ch {
				p.FoldShard(sh)
			}
		}
	}
	shards, err := matrix.DistributeShards(src, 0, 0, consumers)
	if err != nil {
		return shards, err
	}
	for _, p := range parts {
		if err := Merge(st, p); err != nil {
			return shards, err
		}
	}
	return shards, nil
}
