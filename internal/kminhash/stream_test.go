package kminhash

import (
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
	"assocmine/internal/testutil"
)

func streamFixture(rows, cols int, seed uint64) *matrix.SliceSource {
	rng := hashing.NewSplitMix64(seed)
	out := make([][]int32, rows)
	for r := range out {
		var row []int32
		for c := 0; c < cols; c++ {
			if rng.Intn(5) == 0 {
				row = append(row, int32(c))
			}
		}
		out[r] = row
	}
	return &matrix.SliceSource{Cols: cols, Rows: out}
}

// TestComputeStreamBitIdentical: the merge-based streamed driver must
// reproduce the serial sketches exactly — signatures and column sizes
// for any worker count (bottom-k union is partition-independent), and
// the order-dependent Updates counter for the one-worker sequential
// fold. For workers > 1 the round-robin deal is deterministic, so the
// summed counter must at least be reproducible run to run.
func TestComputeStreamBitIdentical(t *testing.T) {
	testutil.CheckGoroutines(t)
	src := streamFixture(900, 70, 17)
	const k = 16
	want, err := Compute(src, k, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 5, 8, 100} {
		got, shards, err := ComputeStream(src, k, 9, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if shards <= 0 {
			t.Errorf("workers=%d: %d shards streamed", workers, shards)
		}
		if workers == 1 && got.Updates != want.Updates {
			t.Errorf("workers=1: Updates = %d, want %d", got.Updates, want.Updates)
		}
		if workers > 1 {
			again, _, err := ComputeStream(src, k, 9, workers)
			if err != nil {
				t.Fatalf("workers=%d rerun: %v", workers, err)
			}
			if again.Updates != got.Updates {
				t.Errorf("workers=%d: Updates not deterministic: %d then %d", workers, got.Updates, again.Updates)
			}
		}
		for c := range want.Sigs {
			if got.ColSizes[c] != want.ColSizes[c] {
				t.Fatalf("workers=%d: ColSizes[%d] = %d, want %d", workers, c, got.ColSizes[c], want.ColSizes[c])
			}
			if len(got.Sigs[c]) != len(want.Sigs[c]) {
				t.Fatalf("workers=%d: col %d sketch has %d values, want %d", workers, c, len(got.Sigs[c]), len(want.Sigs[c]))
			}
			for i := range want.Sigs[c] {
				if got.Sigs[c][i] != want.Sigs[c][i] {
					t.Fatalf("workers=%d: col %d value %d differs", workers, c, i)
				}
			}
		}
	}
}

// TestComputeStreamMoreWorkersThanShards: a tiny source fits one shard,
// so most consumers drain empty channels and contribute empty states to
// the merge — the result must still match the serial sketches.
func TestComputeStreamMoreWorkersThanShards(t *testing.T) {
	testutil.CheckGoroutines(t)
	src := streamFixture(9, 12, 3)
	const k = 4
	want, err := Compute(src, k, 7)
	if err != nil {
		t.Fatal(err)
	}
	got, shards, err := ComputeStream(src, k, 7, 16)
	if err != nil {
		t.Fatal(err)
	}
	if shards != 1 {
		t.Fatalf("streamed %d shards, want 1", shards)
	}
	for c := range want.Sigs {
		if got.ColSizes[c] != want.ColSizes[c] {
			t.Fatalf("ColSizes[%d] = %d, want %d", c, got.ColSizes[c], want.ColSizes[c])
		}
		for i := range want.Sigs[c] {
			if got.Sigs[c][i] != want.Sigs[c][i] {
				t.Fatalf("col %d value %d differs", c, i)
			}
		}
	}
}

// TestComputeStreamZeroRows: a 0-row source streams zero shards and
// yields empty sketches with zeroed sizes, for any worker count.
func TestComputeStreamZeroRows(t *testing.T) {
	testutil.CheckGoroutines(t)
	src := &matrix.SliceSource{Cols: 7, Rows: nil}
	for _, workers := range []int{1, 4} {
		got, shards, err := ComputeStream(src, 5, 11, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if shards != 0 {
			t.Errorf("workers=%d: streamed %d shards, want 0", workers, shards)
		}
		if got.Updates != 0 {
			t.Errorf("workers=%d: Updates = %d, want 0", workers, got.Updates)
		}
		for c := 0; c < 7; c++ {
			if got.ColSizes[c] != 0 || len(got.Sigs[c]) != 0 {
				t.Errorf("workers=%d: column %d not empty (size %d, %d values)",
					workers, c, got.ColSizes[c], len(got.Sigs[c]))
			}
		}
	}
}

func TestComputeStreamBadK(t *testing.T) {
	if _, _, err := ComputeStream(streamFixture(5, 5, 1), -1, 1, 2); err == nil {
		t.Error("k=-1 accepted")
	}
}
