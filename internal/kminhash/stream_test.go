package kminhash

import (
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

func streamFixture(rows, cols int, seed uint64) *matrix.SliceSource {
	rng := hashing.NewSplitMix64(seed)
	out := make([][]int32, rows)
	for r := range out {
		var row []int32
		for c := 0; c < cols; c++ {
			if rng.Intn(5) == 0 {
				row = append(row, int32(c))
			}
		}
		out[r] = row
	}
	return &matrix.SliceSource{Cols: cols, Rows: out}
}

// TestComputeStreamBitIdentical: the streamed fan-out must reproduce the
// serial sketches exactly — signatures, column sizes, and even the
// Updates counter (each column's heap sees rows in the same order).
func TestComputeStreamBitIdentical(t *testing.T) {
	src := streamFixture(900, 70, 17)
	const k = 16
	want, err := Compute(src, k, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 5, 8, 100} {
		got, shards, err := ComputeStream(src, k, 9, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if shards <= 0 {
			t.Errorf("workers=%d: %d shards streamed", workers, shards)
		}
		if got.Updates != want.Updates {
			t.Errorf("workers=%d: Updates = %d, want %d", workers, got.Updates, want.Updates)
		}
		for c := range want.Sigs {
			if got.ColSizes[c] != want.ColSizes[c] {
				t.Fatalf("workers=%d: ColSizes[%d] = %d, want %d", workers, c, got.ColSizes[c], want.ColSizes[c])
			}
			if len(got.Sigs[c]) != len(want.Sigs[c]) {
				t.Fatalf("workers=%d: col %d sketch has %d values, want %d", workers, c, len(got.Sigs[c]), len(want.Sigs[c]))
			}
			for i := range want.Sigs[c] {
				if got.Sigs[c][i] != want.Sigs[c][i] {
					t.Fatalf("workers=%d: col %d value %d differs", workers, c, i)
				}
			}
		}
	}
}

func TestComputeStreamBadK(t *testing.T) {
	if _, _, err := ComputeStream(streamFixture(5, 5, 1), -1, 1, 2); err == nil {
		t.Error("k=-1 accepted")
	}
}
