package lsh

import (
	"fmt"
	"sort"

	"assocmine/internal/hashing"
	"assocmine/internal/minhash"
	"assocmine/internal/pairs"
)

// BandPairs is the candidate output of one band, the unit of work the
// scale-out executor ships: buckets partition the columns within a
// band, so the band's pair list is duplicate-free by construction, and
// it is sorted by (I, J) here to give the wire encoding a canonical
// order (bucket-map iteration is not deterministic). Unioning the
// BandPairs of all bands with exact dedup reproduces the Candidates /
// SampledCandidates set precisely.
type BandPairs struct {
	Band        int          // band index in [0, l)
	Pairs       []pairs.Pair // distinct colliding pairs, sorted by (I, J)
	BucketPairs int64        // pair-additions attempted (the Stats term)
}

// CandidateBands generates the collisions of bands [lo, hi) under the
// basic disjoint layout of Candidates (l bands of r consecutive rows;
// sig.K must be at least r*l).
func CandidateBands(sig *minhash.Signatures, r, l, lo, hi int) ([]BandPairs, error) {
	if err := checkRL(r, l); err != nil {
		return nil, err
	}
	if sig.K < r*l {
		return nil, fmt.Errorf("lsh: need k >= r*l = %d min-hash values, have %d (use SampledCandidateBands)", r*l, sig.K)
	}
	return bandRange(sig, disjointBands(r, l), lo, hi)
}

// SampledCandidateBands generates the collisions of bands [lo, hi)
// under the Q_{r,l,k} sampled layout of SampledCandidates. The layout
// is a pure function of (sig.K, r, l, seed), so every worker derives
// identical bands.
func SampledCandidateBands(sig *minhash.Signatures, r, l int, seed uint64, lo, hi int) ([]BandPairs, error) {
	if err := checkRL(r, l); err != nil {
		return nil, err
	}
	if sig.K < r {
		return nil, fmt.Errorf("lsh: need k >= r = %d min-hash values, have %d", r, sig.K)
	}
	return bandRange(sig, sampledBands(sig.K, r, l, seed), lo, hi)
}

// bandRange hashes bands [lo, hi) exactly like bandCandidates — same
// keys, same empty-column rule, same bucket-pair accounting — but
// returns each band's distinct collisions instead of accumulating a
// global set.
func bandRange(sig *minhash.Signatures, bands [][]int, lo, hi int) ([]BandPairs, error) {
	if lo < 0 || hi > len(bands) || lo > hi {
		return nil, fmt.Errorf("lsh: band range [%d,%d) outside [0,%d)", lo, hi, len(bands))
	}
	out := make([]BandPairs, 0, hi-lo)
	key := make([]uint64, 0, 32)
	for b := lo; b < hi; b++ {
		rows := bands[b]
		buckets := make(map[uint64][]int32, sig.M)
		for c := 0; c < sig.M; c++ {
			key = key[:0]
			empty := true
			for _, l := range rows {
				v := sig.Vals[l*sig.M+c]
				if v != minhash.Empty {
					empty = false
				}
				key = append(key, v)
			}
			if empty {
				continue
			}
			k := hashing.CombineKeys(key)
			buckets[k] = append(buckets[k], int32(c))
		}
		bp := BandPairs{Band: b}
		for _, cols := range buckets {
			if len(cols) < 2 {
				continue
			}
			for i := 0; i < len(cols); i++ {
				for j := i + 1; j < len(cols); j++ {
					bp.BucketPairs++
					bp.Pairs = append(bp.Pairs, pairs.Make(cols[i], cols[j]))
				}
			}
		}
		sort.Slice(bp.Pairs, func(a, c int) bool {
			if bp.Pairs[a].I != bp.Pairs[c].I {
				return bp.Pairs[a].I < bp.Pairs[c].I
			}
			return bp.Pairs[a].J < bp.Pairs[c].J
		})
		out = append(out, bp)
	}
	return out, nil
}
