package lsh

import (
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/minhash"
	"assocmine/internal/pairs"
)

// TestCandidateBandsUnionMatchesCandidates proves that unioning the
// per-band pair lists of any band-range partition, with exact dedup,
// reproduces the serial Candidates set and its bucket-pair count — the
// identity the scale-out executor relies on.
func TestCandidateBandsUnionMatchesCandidates(t *testing.T) {
	rng := hashing.NewSplitMix64(19)
	m, _ := plantedMatrix(rng, 400, 50)
	sig, err := minhash.Compute(m.Stream(), 30, 9)
	if err != nil {
		t.Fatal(err)
	}
	const r, l = 5, 6
	want, wantSt, err := Candidates(sig, r, l)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 {
		t.Fatal("fixture produced no candidates")
	}
	for _, cuts := range [][]int{{0, 6}, {0, 3, 6}, {0, 1, 1, 2, 5, 6}} {
		got := pairs.NewSet(want.Len())
		var bucketPairs int64
		bands := 0
		for i := 0; i+1 < len(cuts); i++ {
			bps, err := CandidateBands(sig, r, l, cuts[i], cuts[i+1])
			if err != nil {
				t.Fatal(err)
			}
			for _, bp := range bps {
				bands++
				bucketPairs += bp.BucketPairs
				for j := 1; j < len(bp.Pairs); j++ {
					prev, cur := bp.Pairs[j-1], bp.Pairs[j]
					if prev.I > cur.I || (prev.I == cur.I && prev.J >= cur.J) {
						t.Fatalf("band %d pairs not strictly sorted", bp.Band)
					}
				}
				for _, p := range bp.Pairs {
					got.Add(p.I, p.J)
				}
			}
		}
		if bands != l {
			t.Errorf("partition %v covered %d bands, want %d", cuts, bands, l)
		}
		if bucketPairs != wantSt.BucketPairs {
			t.Errorf("partition %v: %d bucket pairs, want %d", cuts, bucketPairs, wantSt.BucketPairs)
		}
		if got.Len() != want.Len() {
			t.Errorf("partition %v: %d candidates, want %d", cuts, got.Len(), want.Len())
		}
		for _, p := range want.Slice() {
			if !got.Contains(p.I, p.J) {
				t.Errorf("partition %v missing pair (%d,%d)", cuts, p.I, p.J)
			}
		}
	}
}

// TestSampledCandidateBandsUnionMatches proves the same identity for
// the sampled Q_{r,l,k} layout at a fixed seed.
func TestSampledCandidateBandsUnionMatches(t *testing.T) {
	rng := hashing.NewSplitMix64(23)
	m, _ := plantedMatrix(rng, 400, 50)
	sig, err := minhash.Compute(m.Stream(), 12, 17)
	if err != nil {
		t.Fatal(err)
	}
	const r, l = 5, 8
	const seed = 99
	want, wantSt, err := SampledCandidates(sig, r, l, seed)
	if err != nil {
		t.Fatal(err)
	}
	if want.Len() == 0 {
		t.Fatal("fixture produced no candidates")
	}
	got := pairs.NewSet(want.Len())
	var bucketPairs int64
	for _, cut := range [][2]int{{0, 2}, {2, 7}, {7, 8}} {
		bps, err := SampledCandidateBands(sig, r, l, seed, cut[0], cut[1])
		if err != nil {
			t.Fatal(err)
		}
		for _, bp := range bps {
			bucketPairs += bp.BucketPairs
			for _, p := range bp.Pairs {
				got.Add(p.I, p.J)
			}
		}
	}
	if bucketPairs != wantSt.BucketPairs {
		t.Errorf("%d bucket pairs, want %d", bucketPairs, wantSt.BucketPairs)
	}
	if got.Len() != want.Len() {
		t.Errorf("%d candidates, want %d", got.Len(), want.Len())
	}
	for _, p := range want.Slice() {
		if !got.Contains(p.I, p.J) {
			t.Errorf("missing pair (%d,%d)", p.I, p.J)
		}
	}
}

// TestBandRangeValidation covers the range and parameter checks.
func TestBandRangeValidation(t *testing.T) {
	rng := hashing.NewSplitMix64(29)
	m, _ := plantedMatrix(rng, 50, 10)
	sig, _ := minhash.Compute(m.Stream(), 10, 3)
	if _, err := CandidateBands(sig, 5, 2, 0, 3); err == nil {
		t.Error("band range beyond l accepted")
	}
	if _, err := CandidateBands(sig, 5, 2, -1, 1); err == nil {
		t.Error("negative band lo accepted")
	}
	if _, err := CandidateBands(sig, 5, 3, 0, 3); err == nil {
		t.Error("k < r*l accepted")
	}
	if _, err := SampledCandidateBands(sig, 11, 2, 1, 0, 2); err == nil {
		t.Error("k < r accepted")
	}
}
