package lsh

import (
	"fmt"
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/minhash"
)

func BenchmarkCandidates(b *testing.B) {
	rng := hashing.NewSplitMix64(1)
	m, _ := plantedMatrix(rng, 2000, 400)
	sig, err := minhash.Compute(m.Stream(), 50, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Candidates(sig, 5, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLSHCandidatesParallel times band-sharded candidate
// generation on the same planted matrix as BenchmarkCandidates;
// workers=1 is the serial baseline through the same entry point.
func BenchmarkLSHCandidatesParallel(b *testing.B) {
	rng := hashing.NewSplitMix64(1)
	m, _ := plantedMatrix(rng, 2000, 400)
	sig, err := minhash.Compute(m.Stream(), 50, 7)
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := CandidatesParallel(sig, 5, 10, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkOptimize(b *testing.B) {
	d := Distribution{
		S:     []float64{0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75, 0.85, 0.95},
		Count: []float64{1e6, 1e5, 1e4, 3e3, 1e3, 300, 100, 50, 30, 20},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Optimize(d, 0.5, 5, 5000, 40, 500); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFilterFunctions(b *testing.B) {
	b.Run("P", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = ProbAtLeastOnce(0.5, 10, 20)
		}
	})
	b.Run("Q", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = SampledCollisionProb(0.5, 10, 20, 40)
		}
	})
}
