// Package lsh implements the Min-LSH (M-LSH) scheme of Section 4.1:
// the k x m min-hash matrix is split into l bands of r rows; within
// each band every column is hashed on the concatenation of its r
// values, and columns sharing a bucket in at least one band become
// candidates. The collision probability for a pair with similarity s is
// the S-shaped filter function P_{r,l}(s) = 1 - (1 - s^r)^l.
//
// The package also implements the sampled variant Q_{r,l,k} (bands draw
// r values at random from only k available min-hashes, k < r·l), the
// input-sensitive (r, l) optimizer that minimizes l·r subject to
// expected false-negative and false-positive budgets over a similarity
// distribution, and the online band-at-a-time mode of Section 4.
package lsh

import (
	"fmt"
	"math"

	"assocmine/internal/hashing"
	"assocmine/internal/minhash"
	"assocmine/internal/pairs"
)

// ProbAtLeastOnce returns P_{r,l}(s) = 1 - (1 - s^r)^l, the probability
// that two columns with similarity s collide in at least one of l bands
// of r rows (Lemma 2).
func ProbAtLeastOnce(s float64, r, l int) float64 {
	if s <= 0 {
		return 0
	}
	if s >= 1 {
		return 1
	}
	return 1 - math.Pow(1-math.Pow(s, float64(r)), float64(l))
}

// SampledCollisionGivenAgreement returns q_{r,l,k}(d) = 1-(1-(d/k)^r)^l,
// the collision probability when the pair agrees on exactly d of the k
// available min-hash values and each band samples r of them.
func SampledCollisionGivenAgreement(d, k, r, l int) float64 {
	if d <= 0 {
		return 0
	}
	if d >= k {
		return 1
	}
	return ProbAtLeastOnce(float64(d)/float64(k), r, l)
}

// SampledCollisionProb returns Q_{r,l,k}(s): the collision probability
// of a similarity-s pair under the sampled-band scheme, obtained by
// summing q_{r,l,k}(d) over the Binomial(k, s) distribution of the
// agreement count d.
func SampledCollisionProb(s float64, r, l, k int) float64 {
	if s <= 0 {
		return 0
	}
	if s >= 1 {
		return 1
	}
	// pmf(d) computed iteratively to avoid large binomials.
	pmf := math.Pow(1-s, float64(k)) // d = 0
	q := 0.0
	for d := 1; d <= k; d++ {
		pmf *= float64(k-d+1) / float64(d) * s / (1 - s)
		q += pmf * SampledCollisionGivenAgreement(d, k, r, l)
	}
	return q
}

// Stats reports the work the banding pass performed.
type Stats struct {
	Bands       int   // bands hashed
	BucketPairs int64 // pair-additions attempted (incl. duplicates)
	Candidates  int   // distinct pairs produced
}

// Candidates runs the basic M-LSH banding over the signature matrix
// using l disjoint bands of r consecutive rows; sig.K must be at least
// r*l. Empty columns never enter buckets.
func Candidates(sig *minhash.Signatures, r, l int) (*pairs.Set, Stats, error) {
	if err := checkRL(r, l); err != nil {
		return nil, Stats{}, err
	}
	if sig.K < r*l {
		return nil, Stats{}, fmt.Errorf("lsh: need k >= r*l = %d min-hash values, have %d (use SampledCandidates)", r*l, sig.K)
	}
	return bandCandidates(sig, disjointBands(r, l), nil)
}

// SampledCandidates runs the Q_{r,l,k} variant: each of the l bands
// hashes on r values drawn uniformly (without replacement) from the k
// available, so the same value may participate in several bands.
// Requires sig.K >= r.
func SampledCandidates(sig *minhash.Signatures, r, l int, seed uint64) (*pairs.Set, Stats, error) {
	if err := checkRL(r, l); err != nil {
		return nil, Stats{}, err
	}
	if sig.K < r {
		return nil, Stats{}, fmt.Errorf("lsh: need k >= r = %d min-hash values, have %d", r, sig.K)
	}
	return bandCandidates(sig, sampledBands(sig.K, r, l, seed), nil)
}

// OnlineCandidates processes bands one at a time, invoking progress
// after each band with the band index and the pairs newly discovered in
// it; returning false from progress stops the scan early (the Section 4
// online framework: each band cuts false negatives by a fixed factor,
// and the most similar pairs tend to surface first). The partial
// candidate set accumulated so far is returned.
func OnlineCandidates(sig *minhash.Signatures, r, l int, progress func(band int, fresh []pairs.Pair) bool) (*pairs.Set, Stats, error) {
	if err := checkRL(r, l); err != nil {
		return nil, Stats{}, err
	}
	if sig.K < r*l {
		return nil, Stats{}, fmt.Errorf("lsh: need k >= r*l = %d min-hash values, have %d", r*l, sig.K)
	}
	return bandCandidates(sig, disjointBands(r, l), progress)
}

func checkRL(r, l int) error {
	if r <= 0 || l <= 0 {
		return fmt.Errorf("lsh: r and l must be positive, got r=%d l=%d", r, l)
	}
	return nil
}

// disjointBands returns the basic layout: l bands of r consecutive
// signature rows.
func disjointBands(r, l int) [][]int {
	bands := make([][]int, l)
	for b := 0; b < l; b++ {
		rows := make([]int, r)
		for i := range rows {
			rows[i] = b*r + i
		}
		bands[b] = rows
	}
	return bands
}

// sampledBands returns the Q_{r,l,k} layout: each band draws r of the k
// values without replacement. The sequential RNG makes the layout a
// pure function of (k, r, l, seed), shared by the serial and parallel
// paths.
func sampledBands(k, r, l int, seed uint64) [][]int {
	rng := hashing.NewSplitMix64(seed)
	bands := make([][]int, l)
	for b := 0; b < l; b++ {
		bands[b] = rng.Perm(k)[:r]
	}
	return bands
}

func bandCandidates(sig *minhash.Signatures, bands [][]int, progress func(int, []pairs.Pair) bool) (*pairs.Set, Stats, error) {
	set := pairs.NewSet(1024)
	var st Stats
	key := make([]uint64, 0, 32)
	var fresh []pairs.Pair
	for b, rows := range bands {
		st.Bands++
		buckets := make(map[uint64][]int32, sig.M)
		for c := 0; c < sig.M; c++ {
			key = key[:0]
			empty := true
			for _, l := range rows {
				v := sig.Vals[l*sig.M+c]
				if v != minhash.Empty {
					empty = false
				}
				key = append(key, v)
			}
			if empty {
				continue
			}
			k := hashing.CombineKeys(key)
			buckets[k] = append(buckets[k], int32(c))
		}
		fresh = fresh[:0]
		for _, cols := range buckets {
			if len(cols) < 2 {
				continue
			}
			for i := 0; i < len(cols); i++ {
				for j := i + 1; j < len(cols); j++ {
					st.BucketPairs++
					if set.Add(cols[i], cols[j]) {
						fresh = append(fresh, pairs.Make(cols[i], cols[j]))
					}
				}
			}
		}
		if progress != nil && !progress(b, fresh) {
			break
		}
	}
	st.Candidates = set.Len()
	return set, st, nil
}
