package lsh

import (
	"math"
	"testing"
	"testing/quick"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
	"assocmine/internal/minhash"
	"assocmine/internal/pairs"
)

func TestProbAtLeastOnceBasics(t *testing.T) {
	if got := ProbAtLeastOnce(0, 5, 5); got != 0 {
		t.Errorf("P(0) = %v", got)
	}
	if got := ProbAtLeastOnce(1, 5, 5); got != 1 {
		t.Errorf("P(1) = %v", got)
	}
	// r=l=1: P(s) = s.
	if got := ProbAtLeastOnce(0.37, 1, 1); math.Abs(got-0.37) > 1e-12 {
		t.Errorf("P_{1,1}(0.37) = %v", got)
	}
	// Closed form check: r=2, l=3, s=0.5 -> 1-(1-0.25)^3.
	want := 1 - math.Pow(0.75, 3)
	if got := ProbAtLeastOnce(0.5, 2, 3); math.Abs(got-want) > 1e-12 {
		t.Errorf("P_{2,3}(0.5) = %v, want %v", got, want)
	}
}

func TestProbMonotonicity(t *testing.T) {
	// P increases in s and l, decreases in r (for s in (0,1)).
	for s := 0.1; s < 1; s += 0.2 {
		if ProbAtLeastOnce(s, 5, 10) >= ProbAtLeastOnce(s+0.05, 5, 10) {
			t.Errorf("P not increasing in s at %v", s)
		}
		if ProbAtLeastOnce(s, 5, 10) >= ProbAtLeastOnce(s, 5, 20) {
			t.Errorf("P not increasing in l at %v", s)
		}
		if ProbAtLeastOnce(s, 5, 10) <= ProbAtLeastOnce(s, 10, 10) {
			t.Errorf("P not decreasing in r at %v", s)
		}
	}
}

func TestStepFunctionSharpening(t *testing.T) {
	// Fig. 2a: larger (r,l) approximates a unit step better. At the
	// nominal threshold of P_{r,l}, below-threshold probabilities fall
	// and above-threshold probabilities rise as r and l grow together.
	low5, high5 := ProbAtLeastOnce(0.3, 5, 5), ProbAtLeastOnce(0.9, 5, 5)
	low20, high20 := ProbAtLeastOnce(0.3, 20, 20), ProbAtLeastOnce(0.9, 20, 20)
	if !(low20 < low5 && high20 > high5*0.9) {
		t.Errorf("sharpening failed: low %v->%v, high %v->%v", low5, low20, high5, high20)
	}
}

func TestSampledCollisionGivenAgreement(t *testing.T) {
	if got := SampledCollisionGivenAgreement(0, 40, 5, 5); got != 0 {
		t.Errorf("q(0) = %v", got)
	}
	if got := SampledCollisionGivenAgreement(40, 40, 5, 5); got != 1 {
		t.Errorf("q(k) = %v", got)
	}
	want := ProbAtLeastOnce(0.5, 5, 5)
	if got := SampledCollisionGivenAgreement(20, 40, 5, 5); math.Abs(got-want) > 1e-12 {
		t.Errorf("q(k/2) = %v, want %v", got, want)
	}
}

func TestSampledCollisionProbApproximatesP(t *testing.T) {
	// Fig. 2b: Q_{r,l,k} approximates P_{r,l}, with P always sharper,
	// and Q sharpening as k grows.
	const r, l = 10, 10
	for _, s := range []float64{0.2, 0.5, 0.8} {
		p := ProbAtLeastOnce(s, r, l)
		q40 := SampledCollisionProb(s, r, l, 40)
		q200 := SampledCollisionProb(s, r, l, 200)
		if math.Abs(q200-p) > math.Abs(q40-p)+1e-9 {
			t.Errorf("s=%v: Q with k=200 (%v) no closer to P (%v) than k=40 (%v)", s, q200, p, q40)
		}
	}
	// Q is a proper probability.
	for _, s := range []float64{0, 0.1, 0.5, 0.9, 1} {
		q := SampledCollisionProb(s, r, l, 40)
		if q < 0 || q > 1 {
			t.Errorf("Q(%v) = %v out of [0,1]", s, q)
		}
	}
}

func TestSampledCollisionSharperP(t *testing.T) {
	// "P_{r,l} always being sharper": below the crossover P <= Q is
	// false... concretely P is farther from 1/2 on both tails.
	const r, l, k = 10, 10, 40
	pLow, qLow := ProbAtLeastOnce(0.2, r, l), SampledCollisionProb(0.2, r, l, k)
	if pLow > qLow+1e-12 {
		t.Errorf("at low s, P (%v) should be below Q (%v)", pLow, qLow)
	}
	pHigh, qHigh := ProbAtLeastOnce(0.95, r, l), SampledCollisionProb(0.95, r, l, k)
	if pHigh < qHigh-1e-12 {
		t.Errorf("at high s, P (%v) should be above Q (%v)", pHigh, qHigh)
	}
}

func plantedMatrix(rng *hashing.SplitMix64, rows, cols int) (*matrix.Matrix, *pairs.Set) {
	b := matrix.NewBuilder(rows, cols)
	planted := pairs.NewSet(cols / 2)
	for c := 0; c+1 < cols; c += 4 {
		for r := 0; r < rows; r++ {
			if rng.Float64() < 0.1 {
				b.Set(r, c)
				b.Set(r, c+1)
			}
		}
		planted.Add(int32(c), int32(c+1))
		for off := 2; off < 4 && c+off < cols; off++ {
			for r := 0; r < rows; r++ {
				if rng.Float64() < 0.1 {
					b.Set(r, c+off)
				}
			}
		}
	}
	return b.Build(), planted
}

func TestCandidatesValidates(t *testing.T) {
	sig := &minhash.Signatures{K: 4, M: 2, Vals: make([]uint64, 8)}
	if _, _, err := Candidates(sig, 0, 2); err == nil {
		t.Error("accepted r=0")
	}
	if _, _, err := Candidates(sig, 2, 0); err == nil {
		t.Error("accepted l=0")
	}
	if _, _, err := Candidates(sig, 3, 2); err == nil {
		t.Error("accepted k < r*l")
	}
	if _, _, err := SampledCandidates(sig, 5, 2, 1); err == nil {
		t.Error("sampled accepted r > k")
	}
}

func TestCandidatesFindPlantedPairs(t *testing.T) {
	rng := hashing.NewSplitMix64(1)
	m, planted := plantedMatrix(rng, 800, 80)
	sig, err := minhash.Compute(m.Stream(), 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	set, st, err := Candidates(sig, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bands != 10 {
		t.Errorf("Bands = %d, want 10", st.Bands)
	}
	for _, p := range planted.Slice() {
		if m.Similarity(int(p.I), int(p.J)) > 0.9 && !set.Contains(p.I, p.J) {
			t.Errorf("planted pair (%d,%d) missed", p.I, p.J)
		}
	}
}

func TestCandidatesEmptyColumnsSkipped(t *testing.T) {
	m := matrix.MustNew(4, [][]int32{{}, {}, {0, 1}})
	sig, _ := minhash.Compute(m.Stream(), 10, 5)
	set, _, err := Candidates(sig, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if set.Contains(0, 1) {
		t.Error("two empty columns became candidates")
	}
}

func TestSampledCandidatesFindPlantedPairs(t *testing.T) {
	rng := hashing.NewSplitMix64(2)
	m, planted := plantedMatrix(rng, 800, 80)
	// k = 20 < r*l = 100: must use sampling.
	sig, _ := minhash.Compute(m.Stream(), 20, 4)
	set, _, err := SampledCandidates(sig, 5, 20, 99)
	if err != nil {
		t.Fatal(err)
	}
	missed := 0
	total := 0
	for _, p := range planted.Slice() {
		if m.Similarity(int(p.I), int(p.J)) > 0.9 {
			total++
			if !set.Contains(p.I, p.J) {
				missed++
			}
		}
	}
	if total > 0 && missed > total/4 {
		t.Errorf("sampled LSH missed %d/%d near-duplicate pairs", missed, total)
	}
}

func TestOnlineCandidatesEarlyStop(t *testing.T) {
	rng := hashing.NewSplitMix64(3)
	m, _ := plantedMatrix(rng, 400, 40)
	sig, _ := minhash.Compute(m.Stream(), 50, 5)
	bandsSeen := 0
	set, st, err := OnlineCandidates(sig, 5, 10, func(band int, fresh []pairs.Pair) bool {
		bandsSeen++
		return band < 2 // stop after 3 bands
	})
	if err != nil {
		t.Fatal(err)
	}
	if bandsSeen != 3 {
		t.Errorf("progress called %d times, want 3", bandsSeen)
	}
	if st.Bands != 3 {
		t.Errorf("Bands = %d, want 3", st.Bands)
	}
	if set == nil {
		t.Fatal("nil partial set")
	}
}

func TestOnlineCandidatesFreshPairsDisjoint(t *testing.T) {
	rng := hashing.NewSplitMix64(4)
	m, _ := plantedMatrix(rng, 400, 40)
	sig, _ := minhash.Compute(m.Stream(), 40, 6)
	seen := pairs.NewSet(64)
	_, _, err := OnlineCandidates(sig, 4, 10, func(band int, fresh []pairs.Pair) bool {
		for _, p := range fresh {
			if !seen.Add(p.I, p.J) {
				t.Errorf("band %d re-reported pair (%d,%d)", band, p.I, p.J)
			}
		}
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestOnlineMatchesOffline(t *testing.T) {
	rng := hashing.NewSplitMix64(5)
	m, _ := plantedMatrix(rng, 300, 30)
	sig, _ := minhash.Compute(m.Stream(), 30, 7)
	off, _, err := Candidates(sig, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	on, _, err := OnlineCandidates(sig, 3, 10, func(int, []pairs.Pair) bool { return true })
	if err != nil {
		t.Fatal(err)
	}
	if off.Len() != on.Len() {
		t.Fatalf("offline %d pairs, online %d", off.Len(), on.Len())
	}
	for _, p := range off.Slice() {
		if !on.Contains(p.I, p.J) {
			t.Errorf("online missed (%d,%d)", p.I, p.J)
		}
	}
}

// TestCollisionRateMatchesP: empirical bucket-collision frequency over
// repeated hashing must track P_{r,l}(s).
func TestCollisionRateMatchesP(t *testing.T) {
	// Build one pair with controlled similarity ~0.5.
	rng := hashing.NewSplitMix64(6)
	b := matrix.NewBuilder(2000, 2)
	for r := 0; r < 2000; r++ {
		u := rng.Float64()
		switch {
		case u < 0.10: // both
			b.Set(r, 0)
			b.Set(r, 1)
		case u < 0.15:
			b.Set(r, 0)
		case u < 0.20:
			b.Set(r, 1)
		}
	}
	m := b.Build()
	s := m.Similarity(0, 1)
	const r, l, trials = 3, 4, 300
	collide := 0
	for trial := 0; trial < trials; trial++ {
		sig, err := minhash.Compute(m.Stream(), r*l, uint64(trial)*2654435761+1)
		if err != nil {
			t.Fatal(err)
		}
		set, _, err := Candidates(sig, r, l)
		if err != nil {
			t.Fatal(err)
		}
		if set.Contains(0, 1) {
			collide++
		}
	}
	want := ProbAtLeastOnce(s, r, l)
	got := float64(collide) / trials
	tol := 4*math.Sqrt(want*(1-want)/trials) + 0.02
	if math.Abs(got-want) > tol {
		t.Errorf("collision rate %v, want P(%v) = %v ± %v", got, s, want, tol)
	}
}

func TestQuickPInUnitInterval(t *testing.T) {
	f := func(sRaw uint16, rRaw, lRaw uint8) bool {
		s := float64(sRaw) / math.MaxUint16
		r := int(rRaw%30) + 1
		l := int(lRaw%30) + 1
		p := ProbAtLeastOnce(s, r, l)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
