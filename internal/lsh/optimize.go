package lsh

import (
	"fmt"
	"math"
)

// Distribution is a histogram of pairwise similarities: Count[i] pairs
// at similarity S[i]. It is the input to the input-sensitive parameter
// optimizer of Section 4.1 and is typically estimated by sampling a
// small fraction of columns (eval.SampleDistribution).
type Distribution struct {
	S     []float64
	Count []float64
}

// Validate reports whether the distribution is well-formed.
func (d Distribution) Validate() error {
	if len(d.S) != len(d.Count) {
		return fmt.Errorf("lsh: distribution has %d similarities but %d counts", len(d.S), len(d.Count))
	}
	for i, s := range d.S {
		if s < 0 || s > 1 || math.IsNaN(s) {
			return fmt.Errorf("lsh: similarity %v at index %d out of [0,1]", s, i)
		}
		if d.Count[i] < 0 {
			return fmt.Errorf("lsh: negative count at index %d", i)
		}
	}
	return nil
}

// ExpectedErrors returns the expected number of false negatives and
// false positives of the P_{r,l} filter at cutoff s0 over the
// distribution: FN = Σ_{s>=s0} count·(1-P(s)), FP = Σ_{s<s0} count·P(s).
func (d Distribution) ExpectedErrors(s0 float64, r, l int) (fn, fp float64) {
	for i, s := range d.S {
		p := ProbAtLeastOnce(s, r, l)
		if s >= s0 {
			fn += d.Count[i] * (1 - p)
		} else {
			fp += d.Count[i] * p
		}
	}
	return fn, fp
}

// Params is an (r, l) choice with its predicted error counts.
type Params struct {
	R, L   int
	FN, FP float64
}

// Cost returns l·r, the signature budget the optimizer minimizes.
func (p Params) Cost() int { return p.R * p.L }

// Optimize solves the Section 4.1 minimization problem
//
//	minimize  l·r
//	s.t.      Σ_{s_i >= s0} distr(s_i)·(1-P_{r,l}(s_i)) <= maxFN
//	          Σ_{s_i <  s0} distr(s_i)·P_{r,l}(s_i)     <= maxFP
//
// by iterating over small r (1..maxR), binary-searching the minimal l
// that meets the FN budget (P, and hence FN-feasibility, is monotone in
// l) and checking the FP budget there (FP is also monotone increasing
// in l, so the minimal FN-feasible l is the only l worth checking for a
// given r). The paper reports the optimal r landing between 5 and 20 in
// most experiments.
func Optimize(d Distribution, s0, maxFN, maxFP float64, maxR, maxL int) (Params, error) {
	if err := d.Validate(); err != nil {
		return Params{}, err
	}
	if s0 <= 0 || s0 > 1 {
		return Params{}, fmt.Errorf("lsh: cutoff s0 must be in (0,1], got %v", s0)
	}
	if maxFN < 0 || maxFP < 0 {
		return Params{}, fmt.Errorf("lsh: error budgets must be non-negative")
	}
	if maxR <= 0 || maxL <= 0 {
		return Params{}, fmt.Errorf("lsh: maxR and maxL must be positive")
	}
	best := Params{}
	found := false
	for r := 1; r <= maxR; r++ {
		// Minimal l with FN <= maxFN; FN decreases monotonically in l.
		lo, hi := 1, maxL
		if fn, _ := d.ExpectedErrors(s0, r, maxL); fn > maxFN {
			continue // even maxL bands cannot meet the FN budget at this r
		}
		for lo < hi {
			mid := (lo + hi) / 2
			if fn, _ := d.ExpectedErrors(s0, r, mid); fn <= maxFN {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		fn, fp := d.ExpectedErrors(s0, r, lo)
		if fp > maxFP {
			continue
		}
		p := Params{R: r, L: lo, FN: fn, FP: fp}
		if !found || p.Cost() < best.Cost() {
			best, found = p, true
		}
	}
	if !found {
		return Params{}, fmt.Errorf("lsh: no (r,l) with r<=%d, l<=%d meets FN<=%v and FP<=%v at cutoff %v",
			maxR, maxL, maxFN, maxFP, s0)
	}
	return best, nil
}
