package lsh

import (
	"math"
	"testing"
)

// testDistribution mimics the paper's Fig. 3 shape: a huge mass of
// near-zero similarities and a thin tail of interesting pairs.
func testDistribution() Distribution {
	return Distribution{
		S:     []float64{0.02, 0.05, 0.10, 0.20, 0.40, 0.60, 0.80, 0.95},
		Count: []float64{1e6, 2e5, 5e4, 1e4, 500, 100, 40, 20},
	}
}

func TestDistributionValidate(t *testing.T) {
	d := testDistribution()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Distribution{
		{S: []float64{0.5}, Count: nil},
		{S: []float64{1.5}, Count: []float64{1}},
		{S: []float64{-0.1}, Count: []float64{1}},
		{S: []float64{0.5}, Count: []float64{-1}},
		{S: []float64{math.NaN()}, Count: []float64{1}},
	}
	for i, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("bad distribution %d accepted", i)
		}
	}
}

func TestExpectedErrorsExtremes(t *testing.T) {
	d := testDistribution()
	// r=1, l huge: nearly everything collides -> FN ~ 0, FP huge.
	fn, fp := d.ExpectedErrors(0.5, 1, 500)
	if fn > 1 {
		t.Errorf("FN = %v with l=500, want ~0", fn)
	}
	if fp < 1e5 {
		t.Errorf("FP = %v with r=1 l=500, want huge", fp)
	}
	// r huge, l=1: nothing collides -> FP ~ 0, FN ~ tail mass.
	fn, fp = d.ExpectedErrors(0.5, 60, 1)
	if fp > 1 {
		t.Errorf("FP = %v with r=60, want ~0", fp)
	}
	if fn < 100 {
		t.Errorf("FN = %v with r=60 l=1, want ~tail mass", fn)
	}
}

func TestOptimizeFindsFeasiblePoint(t *testing.T) {
	d := testDistribution()
	p, err := Optimize(d, 0.5, 10, 5000, 50, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if p.FN > 10 || p.FP > 5000 {
		t.Errorf("optimizer returned infeasible params %+v", p)
	}
	// The paper: optimal r is usually between 5 and 20.
	if p.R < 2 || p.R > 30 {
		t.Errorf("optimal r = %d looks wrong for this distribution", p.R)
	}
	// Verify reported errors match a recomputation.
	fn, fp := d.ExpectedErrors(0.5, p.R, p.L)
	if math.Abs(fn-p.FN) > 1e-9 || math.Abs(fp-p.FP) > 1e-9 {
		t.Errorf("reported errors (%v,%v) != recomputed (%v,%v)", p.FN, p.FP, fn, fp)
	}
}

func TestOptimizeIsMinimal(t *testing.T) {
	d := testDistribution()
	const s0, maxFN, maxFP = 0.5, 10.0, 5000.0
	best, err := Optimize(d, s0, maxFN, maxFP, 30, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaustive check that no cheaper feasible point exists.
	for r := 1; r <= 30; r++ {
		for l := 1; l <= 200; l++ {
			if r*l >= best.Cost() {
				continue
			}
			fn, fp := d.ExpectedErrors(s0, r, l)
			if fn <= maxFN && fp <= maxFP {
				t.Fatalf("optimizer missed cheaper feasible point r=%d l=%d (cost %d < %d)",
					r, l, r*l, best.Cost())
			}
		}
	}
}

func TestOptimizeInfeasible(t *testing.T) {
	d := testDistribution()
	// Impossible: zero false negatives and zero false positives.
	if _, err := Optimize(d, 0.5, 0, 0, 20, 50); err == nil {
		t.Error("optimizer claimed to achieve FN=FP=0")
	}
}

func TestOptimizeValidation(t *testing.T) {
	d := testDistribution()
	cases := []struct {
		s0, fn, fp float64
		maxR, maxL int
	}{
		{0, 1, 1, 10, 10},
		{1.5, 1, 1, 10, 10},
		{0.5, -1, 1, 10, 10},
		{0.5, 1, -1, 10, 10},
		{0.5, 1, 1, 0, 10},
		{0.5, 1, 1, 10, 0},
	}
	for i, c := range cases {
		if _, err := Optimize(d, c.s0, c.fn, c.fp, c.maxR, c.maxL); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	badDist := Distribution{S: []float64{2}, Count: []float64{1}}
	if _, err := Optimize(badDist, 0.5, 1, 1, 10, 10); err == nil {
		t.Error("invalid distribution accepted")
	}
}

func TestOptimizeTighterFNBudgetCostsMore(t *testing.T) {
	d := testDistribution()
	loose, err := Optimize(d, 0.5, 50, 1e6, 40, 500)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Optimize(d, 0.5, 1, 1e6, 40, 500)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Cost() < loose.Cost() {
		t.Errorf("tighter FN budget got cheaper params: %d < %d", tight.Cost(), loose.Cost())
	}
}
