// Parallel banding: bands are independent by construction (Lemma 2 —
// each band hashes its own rows of the signature matrix and contributes
// candidates on its own), so the banding pass shards at band
// granularity. Each worker builds the bucket table of one band at a
// time and emits that band's local pair list; the lists are merged and
// deduplicated into one pairs.Set sequentially in band order, so the
// resulting candidate SET and all Stats are identical to the serial
// pass for any worker count.
package lsh

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"assocmine/internal/hashing"
	"assocmine/internal/minhash"
	"assocmine/internal/obs"
	"assocmine/internal/pairs"
)

// CandidatesParallel is Candidates with the l bands sharded across
// workers. workers <= 1 runs the serial pass; negative workers means
// GOMAXPROCS. The candidate set, Bands, BucketPairs and Candidates
// statistics are identical to the serial pass.
func CandidatesParallel(sig *minhash.Signatures, r, l, workers int) (*pairs.Set, Stats, error) {
	return CandidatesParallelProgress(context.Background(), sig, r, l, workers, nil)
}

// CandidatesParallelProgress is CandidatesParallel with a progress
// hook and cancellation: tick (when non-nil) receives (bands hashed,
// total bands), from worker goroutines in the parallel path; a
// cancelled ctx (nil means Background) aborts at band granularity with
// ctx.Err(). The candidate set and Stats are unaffected.
func CandidatesParallelProgress(ctx context.Context, sig *minhash.Signatures, r, l, workers int, tick obs.Tick) (*pairs.Set, Stats, error) {
	if err := checkRL(r, l); err != nil {
		return nil, Stats{}, err
	}
	if sig.K < r*l {
		return nil, Stats{}, fmt.Errorf("lsh: need k >= r*l = %d min-hash values, have %d (use SampledCandidates)", r*l, sig.K)
	}
	return bandCandidatesParallel(ctx, sig, disjointBands(r, l), workers, tick)
}

// SampledCandidatesParallel is SampledCandidates with bands sharded
// across workers; the band layout is drawn from the same sequential RNG
// as the serial variant, so the two produce identical candidate sets.
func SampledCandidatesParallel(sig *minhash.Signatures, r, l int, seed uint64, workers int) (*pairs.Set, Stats, error) {
	return SampledCandidatesParallelProgress(context.Background(), sig, r, l, seed, workers, nil)
}

// SampledCandidatesParallelProgress is SampledCandidatesParallel with a
// band-granularity progress hook and cancellation following the
// CandidatesParallelProgress conventions.
func SampledCandidatesParallelProgress(ctx context.Context, sig *minhash.Signatures, r, l int, seed uint64, workers int, tick obs.Tick) (*pairs.Set, Stats, error) {
	if err := checkRL(r, l); err != nil {
		return nil, Stats{}, err
	}
	if sig.K < r {
		return nil, Stats{}, fmt.Errorf("lsh: need k >= r = %d min-hash values, have %d", r, sig.K)
	}
	return bandCandidatesParallel(ctx, sig, sampledBands(sig.K, r, l, seed), workers, tick)
}

func bandCandidatesParallel(ctx context.Context, sig *minhash.Signatures, bands [][]int, workers int, tick obs.Tick) (*pairs.Set, Stats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers < 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(bands) {
		workers = len(bands)
	}
	if workers <= 1 {
		// The serial pass cancels through the progress hook's existing
		// abort channel (returning false stops the band loop), with the
		// real cause recovered from ctx afterwards.
		total := int64(len(bands))
		progress := func(band int, _ []pairs.Pair) bool {
			if tick != nil {
				tick(int64(band+1), total)
			}
			return ctx.Err() == nil
		}
		set, st, err := bandCandidates(sig, bands, progress)
		if err == nil {
			err = ctx.Err()
		}
		if err != nil {
			return nil, Stats{}, err
		}
		return set, st, nil
	}

	type bandOut struct {
		pairs       []pairs.Pair
		bucketPairs int64
	}
	outs := make([]bandOut, len(bands))
	var next atomic.Int64
	var bandsDone atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			key := make([]uint64, 0, 32)
			for ctx.Err() == nil {
				b := int(next.Add(1)) - 1
				if b >= len(bands) {
					return
				}
				rows := bands[b]
				buckets := make(map[uint64][]int32, sig.M)
				for c := 0; c < sig.M; c++ {
					key = key[:0]
					empty := true
					for _, l := range rows {
						v := sig.Vals[l*sig.M+c]
						if v != minhash.Empty {
							empty = false
						}
						key = append(key, v)
					}
					if empty {
						continue
					}
					k := hashing.CombineKeys(key)
					buckets[k] = append(buckets[k], int32(c))
				}
				var local []pairs.Pair
				var attempts int64
				for _, cols := range buckets {
					if len(cols) < 2 {
						continue
					}
					for i := 0; i < len(cols); i++ {
						for j := i + 1; j < len(cols); j++ {
							attempts++
							// Within one band the buckets partition the
							// columns, so local needs no dedup; cross-band
							// duplicates fall out at the merge.
							local = append(local, pairs.Make(cols[i], cols[j]))
						}
					}
				}
				outs[b] = bandOut{pairs: local, bucketPairs: attempts}
				if tick != nil {
					tick(bandsDone.Add(1), int64(len(bands)))
				}
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, Stats{}, err
	}

	set := pairs.NewSet(1024)
	var st Stats
	for b := range outs {
		st.Bands++
		st.BucketPairs += outs[b].bucketPairs
		for _, p := range outs[b].pairs {
			set.Add(p.I, p.J)
		}
	}
	st.Candidates = set.Len()
	return set, st, nil
}
