package lsh

import (
	"fmt"
	"reflect"
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/minhash"
)

func TestCandidatesParallelMatchesSerial(t *testing.T) {
	rng := hashing.NewSplitMix64(2)
	m, _ := plantedMatrix(rng, 600, 80)
	sig, err := minhash.Compute(m.Stream(), 60, 5)
	if err != nil {
		t.Fatal(err)
	}
	set, st, err := Candidates(sig, 5, 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 3, 7, 16, -1} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			pset, pst, err := CandidatesParallel(sig, 5, 12, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(pset.Sorted(), set.Sorted()) {
				t.Fatalf("candidate set differs: %d pairs vs %d", pset.Len(), set.Len())
			}
			if pst != st {
				t.Fatalf("stats %+v, want %+v", pst, st)
			}
		})
	}
}

func TestSampledCandidatesParallelMatchesSerial(t *testing.T) {
	rng := hashing.NewSplitMix64(4)
	m, _ := plantedMatrix(rng, 500, 60)
	sig, err := minhash.Compute(m.Stream(), 40, 9)
	if err != nil {
		t.Fatal(err)
	}
	set, st, err := SampledCandidates(sig, 6, 15, 77)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 5} {
		pset, pst, err := SampledCandidatesParallel(sig, 6, 15, 77, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pset.Sorted(), set.Sorted()) {
			t.Fatalf("workers=%d: sampled candidate set differs", workers)
		}
		if pst != st {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, pst, st)
		}
	}
}

func TestCandidatesParallelErrors(t *testing.T) {
	rng := hashing.NewSplitMix64(6)
	m, _ := plantedMatrix(rng, 100, 20)
	sig, err := minhash.Compute(m.Stream(), 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := CandidatesParallel(sig, 0, 5, 4); err == nil {
		t.Error("r=0 accepted")
	}
	if _, _, err := CandidatesParallel(sig, 5, 10, 4); err == nil {
		t.Error("k < r*l accepted")
	}
	if _, _, err := SampledCandidatesParallel(sig, 11, 4, 1, 4); err == nil {
		t.Error("k < r accepted")
	}
}
