package matrix

import (
	"bytes"
	"testing"

	"assocmine/internal/hashing"
)

func benchMatrix(b *testing.B) *Matrix {
	b.Helper()
	rng := hashing.NewSplitMix64(1)
	return randomMatrix(rng, 10000, 300, 0.02)
}

func BenchmarkStreamScan(b *testing.B) {
	m := benchMatrix(b)
	src := m.Stream()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		_ = src.Scan(func(row int, cols []int32) error {
			total += len(cols)
			return nil
		})
	}
}

func BenchmarkIntersectSize(b *testing.B) {
	m := benchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.IntersectSize(i%300, (i+7)%300)
	}
}

func BenchmarkFoldRows(b *testing.B) {
	m := benchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.FoldRows(hashing.NewSplitMix64(uint64(i)))
	}
}

func BenchmarkWriteBinary(b *testing.B) {
	m := benchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, m); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWriteRowBinary(b *testing.B) {
	m := benchMatrix(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteRowBinary(&buf, m.Stream()); err != nil {
			b.Fatal(err)
		}
	}
}
