package matrix

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"
	"os"
	"sync/atomic"

	"assocmine/internal/bitpack"
)

// The ".carows" compressed row-streaming format. Like ".arows" it is
// row-major and one-pass, but gaps between consecutive column indices
// are Golomb-Rice coded instead of varint coded, with a per-row
// parameter chosen by exact cost search, so sparse rows pay close to
// the gap entropy (a few bits per posting) instead of at least a byte.
// Rows whose postings are dense enough that even Rice coding loses to
// one bit per column fall back to a literal row bitmap. Every row is
// byte-aligned, so decode errors carry exact byte offsets and a
// corrupt row cannot desynchronise more than the current pass.
//
// Layout:
//
//	"CRW1"  uvarint rows  uvarint cols
//	per row, byte aligned:
//	  uvarint h            h == 0: empty row (no payload)
//	                       else count = h>>6, mode = (h>>5)&1, k = h&31
//	  mode 0: Rice(k) bitstream — first column index absolute, then
//	          gap-1 per subsequent index; padded to the byte boundary
//	  mode 1: ceil(cols/8) literal bitmap bytes, LSB-first; exactly
//	          count bits set, none at or beyond cols (k must be 0)
const rowCompressedMagic = "CRW1"

// uvarintLen returns the encoded size of v in bytes under
// binary.PutUvarint — the ".arows" cost of the same value, which the
// compressed scans account as logical bytes.
func uvarintLen(v uint64) int64 {
	return int64((bits.Len64(v|1) + 6) / 7)
}

// WriteRowCompressed writes src in the ".carows" compressed streaming
// format. One pass over src.
func WriteRowCompressed(w io.Writer, src RowSource) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(rowCompressedMagic); err != nil {
		return err
	}
	var vbuf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(vbuf[:], v)
		_, err := bw.Write(vbuf[:n])
		return err
	}
	if err := writeUvarint(uint64(src.NumRows())); err != nil {
		return err
	}
	cols := src.NumCols()
	if err := writeUvarint(uint64(cols)); err != nil {
		return err
	}
	bitmapBytes := uint64((cols + 7) / 8)
	var vals []uint64
	var bitmap []byte
	pw := bitpack.NewWriter(bw)
	err := src.Scan(func(row int, rcols []int32) error {
		if len(rcols) == 0 {
			return writeUvarint(0)
		}
		vals = vals[:0]
		prev := int32(-1)
		for _, c := range rcols {
			// Gaps between sorted distinct indices are >= 1, so encode
			// gap-1; with prev starting at -1 the first value is the
			// absolute index, matching the decoder.
			vals = append(vals, uint64(c-prev)-1)
			prev = c
		}
		k, riceBits := bitpack.BestRiceK(vals)
		if k > 31 {
			// Unreachable while column ids fit in int32; see BestRiceK.
			return fmt.Errorf("matrix: rice parameter %d overflows row header", k)
		}
		h := uint64(len(rcols))<<6 | uint64(k)
		if bitmapBytes < (riceBits+7)/8 {
			h = uint64(len(rcols))<<6 | 1<<5
			if err := writeUvarint(h); err != nil {
				return err
			}
			if uint64(len(bitmap)) < bitmapBytes {
				bitmap = make([]byte, bitmapBytes)
			}
			b := bitmap[:bitmapBytes]
			for i := range b {
				b[i] = 0
			}
			for _, c := range rcols {
				b[c>>3] |= 1 << (uint(c) & 7)
			}
			_, err := bw.Write(b)
			return err
		}
		if err := writeUvarint(h); err != nil {
			return err
		}
		for _, v := range vals {
			pw.WriteRice(v, k)
		}
		return pw.Flush() // byte-align the row
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// SaveRowCompressed writes src to path in the ".carows" compressed
// streaming format.
func SaveRowCompressed(path string, src RowSource) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = WriteRowCompressed(f, src)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func readRowCompressedHeader(r byteScanner) (rows, cols int, err error) {
	magic := make([]byte, len(rowCompressedMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return 0, 0, fmt.Errorf("reading compressed-row magic: %w", err)
	}
	if string(magic) != rowCompressedMagic {
		return 0, 0, fmt.Errorf("bad compressed-row magic %q", magic)
	}
	r64, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, fmt.Errorf("reading row count: %w", err)
	}
	c64, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, fmt.Errorf("reading column count: %w", err)
	}
	const maxDim = 1 << 31
	if r64 > maxDim || c64 > maxDim {
		return 0, 0, fmt.Errorf("implausible compressed-row dimensions %dx%d", r64, c64)
	}
	return int(r64), int(c64), nil
}

// compressedRowDecoder walks the rows of a ".carows" stream after the
// header, handing each posting to emit as (row, col). It validates as
// strictly as the ".arows" decoder — counts within the column bound,
// strictly increasing in-range indices, canonical headers — and
// accounts the logical (".arows"-equivalent) byte cost of what it
// decodes, so compression ratios compare like with like.
type compressedRowDecoder struct {
	r       byteScanner
	cols    int
	pr      *bitpack.Reader
	bitmap  []byte
	logical int64
}

func newCompressedRowDecoder(r byteScanner, cols int) *compressedRowDecoder {
	return &compressedRowDecoder{r: r, cols: cols, pr: bitpack.NewReader(r)}
}

// decodeRow decodes one row, invoking emit per posting in increasing
// column order. Decode errors are returned raw; the caller wraps them
// with path and offset.
func (d *compressedRowDecoder) decodeRow(row int, emit func(col int32)) error {
	h, err := binary.ReadUvarint(d.r)
	if err != nil {
		return fmt.Errorf("row %d header: %w", row, err)
	}
	if h == 0 {
		d.logical++ // the ".arows" zero-length varint
		return nil
	}
	count := h >> 6
	mode := (h >> 5) & 1
	k := uint(h & 31)
	if count == 0 || count > uint64(d.cols) {
		return fmt.Errorf("row %d count %d out of range", row, count)
	}
	d.logical += uvarintLen(count)
	if mode == 1 {
		if k != 0 {
			return fmt.Errorf("row %d bitmap header has rice parameter %d", row, k)
		}
		// Decode the ceil(cols/8)-byte bitmap in bounded chunks: the
		// header's column count must never size an allocation (hostile
		// headers could claim 2^31 columns from a 10-byte file).
		if d.bitmap == nil {
			d.bitmap = make([]byte, 1<<12)
		}
		n := (d.cols + 7) / 8
		seen := uint64(0)
		prev := int64(-1)
		for off := 0; off < n; off += len(d.bitmap) {
			b := d.bitmap
			if rest := n - off; rest < len(b) {
				b = b[:rest]
			}
			if _, err := io.ReadFull(d.r, b); err != nil {
				return fmt.Errorf("row %d bitmap: %w", row, err)
			}
			for i, by := range b {
				for m := by; m != 0; m &= m - 1 {
					c := int64(off+i)<<3 + int64(bits.TrailingZeros8(m))
					if c >= int64(d.cols) {
						return fmt.Errorf("row %d bitmap bit %d out of range", row, c)
					}
					if prev < 0 {
						d.logical += uvarintLen(uint64(c))
					} else {
						d.logical += uvarintLen(uint64(c - prev))
					}
					prev = c
					seen++
					emit(int32(c))
				}
			}
		}
		if seen != count {
			return fmt.Errorf("row %d bitmap has %d bits, header says %d", row, seen, count)
		}
		return nil
	}
	prev := int64(-1)
	for i := uint64(0); i < count; i++ {
		d0, err := d.pr.ReadRice(k)
		if err != nil {
			return fmt.Errorf("row %d entry %d: %w", row, i, err)
		}
		v := int64(prev) + 1 + int64(d0)
		if d0 > uint64(d.cols) || v >= int64(d.cols) {
			return fmt.Errorf("row %d entry %d out of range", row, i)
		}
		if prev < 0 {
			d.logical += uvarintLen(uint64(v))
		} else {
			d.logical += uvarintLen(uint64(v - prev))
		}
		prev = v
		emit(int32(v))
	}
	d.pr.Align() // rows are byte-aligned
	return nil
}

// scanRowCompressed decodes the compressed-row stream, invoking fn per
// row. Decode failures are passed through wrap (which attaches path
// and offset); errors returned by fn propagate unchanged. Logical
// (".arows"-equivalent) bytes decoded are added to logical when
// non-nil.
func scanRowCompressed(r byteScanner, wantRows, wantCols int, wrap func(error) error, logical *atomic.Int64, fn func(int, []int32) error) error {
	if wrap == nil {
		wrap = func(err error) error { return err }
	}
	rows, cols, err := readRowCompressedHeader(r)
	if err != nil {
		return wrap(err)
	}
	if rows != wantRows || cols != wantCols {
		return wrap(fmt.Errorf("compressed-row dimensions changed on disk: %dx%d", rows, cols))
	}
	d := newCompressedRowDecoder(r, cols)
	d.logical = rowHeaderLogicalBytes(rows, cols)
	var buf []int32
	for row := 0; row < rows; row++ {
		buf = buf[:0]
		if err := d.decodeRow(row, func(c int32) { buf = append(buf, c) }); err != nil {
			return wrap(err)
		}
		if err := fn(row, buf); err != nil {
			return err
		}
	}
	if logical != nil {
		logical.Add(d.logical)
	}
	return nil
}

// rowHeaderLogicalBytes is the ".arows" header cost — magic plus the
// two dimension varints — counted once per compressed pass so the
// logical byte total equals what an uncompressed scan would have read.
func rowHeaderLogicalBytes(rows, cols int) int64 {
	return int64(len(rowBinaryMagic)) + uvarintLen(uint64(rows)) + uvarintLen(uint64(cols))
}
