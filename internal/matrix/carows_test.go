package matrix

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"assocmine/internal/bitpack"
	"assocmine/internal/hashing"
)

// parseCArows decodes a ".carows" byte stream into a Matrix, the way
// OpenFileSource+Collect would without the file system.
func parseCArows(data []byte) (*Matrix, error) {
	hdr := bufio.NewReader(bytes.NewReader(data))
	rows, cols, err := readRowCompressedHeader(hdr)
	if err != nil {
		return nil, err
	}
	r := bufio.NewReader(bytes.NewReader(data))
	rowData := make([][]int32, 0, min(rows, 1024))
	err = scanRowCompressed(r, rows, cols, nil, nil, func(_ int, cs []int32) error {
		rowData = append(rowData, append([]int32(nil), cs...))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return FromRows(cols, rowData)
}

func TestFileSourceCompressedRoundTrip(t *testing.T) {
	rng := hashing.NewSplitMix64(3)
	for _, tc := range []struct {
		name    string
		m       *Matrix
		density float64
	}{
		{name: "sparse", m: randomMatrix(rng, 200, 40, 0.05)},
		{name: "dense", m: randomMatrix(rng, 150, 30, 0.6)}, // bitmap rows
		{name: "paper", m: paperExample()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "data.carows")
			if err := SaveRowCompressed(path, tc.m.Stream()); err != nil {
				t.Fatal(err)
			}
			fs, err := OpenFileSource(path)
			if err != nil {
				t.Fatal(err)
			}
			if fs.NumRows() != tc.m.NumRows() || fs.NumCols() != tc.m.NumCols() {
				t.Fatalf("dims %dx%d", fs.NumRows(), fs.NumCols())
			}
			if !fs.Compressed() {
				t.Error("Compressed() = false for .carows")
			}
			got, err := Collect(fs)
			if err != nil {
				t.Fatal(err)
			}
			if !matricesEqual(tc.m, got) {
				t.Error("FileSource compressed scan mismatch")
			}
		})
	}
}

func TestSaveLoadFileCompressed(t *testing.T) {
	m := paperExample()
	path := filepath.Join(t.TempDir(), "p.carows")
	if err := SaveFile(path, m); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(m, got) {
		t.Error("SaveFile/LoadFile .carows mismatch")
	}
}

func TestCompressedSmallerThanBinary(t *testing.T) {
	rng := hashing.NewSplitMix64(4)
	m := randomMatrix(rng, 500, 2000, 0.1)
	var arows, carows bytes.Buffer
	if err := WriteRowBinary(&arows, m.Stream()); err != nil {
		t.Fatal(err)
	}
	if err := WriteRowCompressed(&carows, m.Stream()); err != nil {
		t.Fatal(err)
	}
	if carows.Len() >= arows.Len() {
		t.Errorf("compressed %d bytes >= binary %d bytes", carows.Len(), arows.Len())
	}
	t.Logf("arows %d bytes, carows %d bytes (%.2fx)",
		arows.Len(), carows.Len(), float64(arows.Len())/float64(carows.Len()))
}

// TestCompressedByteAccounting pins the codec-counter semantics: after
// one pass, CompressedBytesRead is the physical file size and
// LogicalBytesRead is exactly the size the same matrix occupies in the
// uncompressed ".arows" encoding.
func TestCompressedByteAccounting(t *testing.T) {
	rng := hashing.NewSplitMix64(5)
	m := randomMatrix(rng, 300, 80, 0.07)
	dir := t.TempDir()
	path := filepath.Join(dir, "data.carows")
	if err := SaveRowCompressed(path, m.Stream()); err != nil {
		t.Fatal(err)
	}
	var arows bytes.Buffer
	if err := WriteRowBinary(&arows, m.Stream()); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Scan(func(int, []int32) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := fs.CompressedBytesRead(); got != info.Size() {
		t.Errorf("CompressedBytesRead = %d, file is %d bytes", got, info.Size())
	}
	if got := fs.LogicalBytesRead(); got != int64(arows.Len()) {
		t.Errorf("LogicalBytesRead = %d, .arows encoding is %d bytes", got, arows.Len())
	}
	// A second pass doubles both counters.
	if err := fs.Scan(func(int, []int32) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := fs.LogicalBytesRead(); got != 2*int64(arows.Len()) {
		t.Errorf("LogicalBytesRead after two passes = %d, want %d", got, 2*arows.Len())
	}
	// An uncompressed source reports zero on both codec counters.
	apath := filepath.Join(dir, "data.arows")
	if err := SaveRowBinary(apath, m.Stream()); err != nil {
		t.Fatal(err)
	}
	afs, err := OpenFileSource(apath)
	if err != nil {
		t.Fatal(err)
	}
	if err := afs.Scan(func(int, []int32) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if afs.CompressedBytesRead() != 0 || afs.LogicalBytesRead() != 0 {
		t.Errorf("uncompressed source codec counters = %d/%d, want 0/0",
			afs.CompressedBytesRead(), afs.LogicalBytesRead())
	}
}

func TestFillColumnBits(t *testing.T) {
	rng := hashing.NewSplitMix64(6)
	m := randomMatrix(rng, 190, 25, 0.12) // 190 rows: last arena word partial
	words := (m.NumRows() + 63) / 64
	// Pack a subset of columns via a slot table with holes.
	slot := make([]int32, m.NumCols())
	var nslots int32
	for c := range slot {
		if c%3 == 0 {
			slot[c] = -1
			continue
		}
		slot[c] = nslots
		nslots++
	}
	want := make([]uint64, int(nslots)*words)
	_ = m.Stream().Scan(func(row int, cs []int32) error {
		for _, c := range cs {
			if sl := slot[c]; sl >= 0 {
				want[int(sl)*words+row>>6] |= 1 << (uint(row) & 63)
			}
		}
		return nil
	})
	dir := t.TempDir()
	for _, ext := range []string{".arows", ".carows"} {
		t.Run(ext, func(t *testing.T) {
			path := filepath.Join(dir, "data"+ext)
			if err := SaveFile(path, m); err != nil {
				t.Fatal(err)
			}
			fs, err := OpenFileSource(path)
			if err != nil {
				t.Fatal(err)
			}
			if !fs.CanFillColumnBits() {
				t.Fatal("CanFillColumnBits = false for binary format")
			}
			cs := &CountingSource{Src: fs}
			if !cs.CanFillColumnBits() {
				t.Fatal("CountingSource does not delegate CanFillColumnBits")
			}
			arena := make([]uint64, int(nslots)*words)
			if err := cs.FillColumnBits(slot, arena, words); err != nil {
				t.Fatal(err)
			}
			for i := range arena {
				if arena[i] != want[i] {
					t.Fatalf("arena word %d = %#x, want %#x", i, arena[i], want[i])
				}
			}
			if cs.Passes != 1 || cs.Rows != int64(m.NumRows()) {
				t.Errorf("CountingSource passes=%d rows=%d after fill", cs.Passes, cs.Rows)
			}
			if fs.BytesRead() == 0 {
				t.Error("fill pass did not account bytes read")
			}
		})
	}
	// Text sources cannot fill; the capability probe must say so.
	tpath := filepath.Join(dir, "data.txt")
	if err := SaveFile(tpath, m); err != nil {
		t.Fatal(err)
	}
	tfs, err := OpenFileSource(tpath)
	if err != nil {
		t.Fatal(err)
	}
	if tfs.CanFillColumnBits() {
		t.Error("CanFillColumnBits = true for text format")
	}
	if (&CountingSource{Src: tfs}).CanFillColumnBits() {
		t.Error("CountingSource claims fill over a text source")
	}
}

// fuzzSeedMatrix is a 130-row matrix spanning multiple 64-row shards
// with sparse (Rice) and dense (bitmap) rows and some empty ones.
func fuzzSeedMatrix() *Matrix {
	rows := make([][]int32, 130)
	for r := range rows {
		switch r % 3 {
		case 0: // sparse
			rows[r] = []int32{int32(r % 7), int32(r%7 + 5), 19}
		case 1: // dense
			for c := int32(0); c < 20; c += 2 {
				rows[r] = append(rows[r], c)
			}
		}
	}
	m, err := FromRows(20, rows)
	if err != nil {
		panic(err)
	}
	return m
}

// carows assembles a hostile ".carows" payload: magic, header varints,
// then raw row bytes produced by the caller.
func carows(magic string, header []uint64, body []byte) []byte {
	var buf bytes.Buffer
	buf.WriteString(magic)
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range header {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	buf.Write(body)
	return buf.Bytes()
}

// uvarint renders v alone, for splicing into hostile row payloads.
func uvarint(v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append([]byte(nil), tmp[:n]...)
}

// riceRow renders a row payload: the header varint h followed by vals
// Rice-coded with parameter k, byte-aligned.
func riceRow(h uint64, k uint, vals []uint64) []byte {
	var buf bytes.Buffer
	buf.Write(uvarint(h))
	bw := bitpack.NewWriter(&buf)
	for _, v := range vals {
		bw.WriteRice(v, k)
	}
	if err := bw.Flush(); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func TestCompressedDecodeErrors(t *testing.T) {
	cases := []struct {
		name    string
		data    []byte
		openErr bool
		want    string
	}{
		{
			name: "bad magic", openErr: true,
			data: carows("CRWX", []uint64{2, 4}, nil),
			want: "bad compressed-row magic",
		},
		{
			name: "header overflow", openErr: true,
			data: carows("CRW1", []uint64{1 << 40, 4}, nil),
			want: "implausible compressed-row dimensions",
		},
		{
			name: "truncated header", openErr: true,
			data: []byte("CRW1"),
			want: "reading row count",
		},
		{
			name: "count exceeds cols",
			data: carows("CRW1", []uint64{1, 4}, uvarint(9<<6)),
			want: "count 9 out of range",
		},
		{
			name: "nonzero header with zero count",
			data: carows("CRW1", []uint64{1, 4}, uvarint(1<<5)),
			want: "count 0 out of range",
		},
		{
			name: "bitmap header with rice parameter",
			data: carows("CRW1", []uint64{1, 4}, append(uvarint(1<<6|1<<5|3), 0x01)),
			want: "bitmap header has rice parameter",
		},
		{
			name: "bitmap popcount mismatch",
			data: carows("CRW1", []uint64{1, 4}, append(uvarint(2<<6|1<<5), 0x01)),
			want: "bitmap has 1 bits, header says 2",
		},
		{
			name: "bitmap bit beyond cols",
			data: carows("CRW1", []uint64{1, 4}, append(uvarint(1<<6|1<<5), 0x20)),
			want: "out of range",
		},
		{
			name: "bitmap truncated",
			data: carows("CRW1", []uint64{1, 100}, uvarint(1<<6|1<<5)),
			want: "bitmap",
		},
		{
			name: "rice entry out of range",
			data: carows("CRW1", []uint64{1, 4}, riceRow(1<<6, 0, []uint64{7})),
			want: "entry 0 out of range",
		},
		{
			name: "rice second entry out of range",
			data: carows("CRW1", []uint64{1, 4}, riceRow(2<<6, 0, []uint64{1, 5})),
			want: "entry 1 out of range",
		},
		{
			name: "mid-row truncation",
			data: carows("CRW1", []uint64{2, 4}, riceRow(2<<6|2, 2, []uint64{0, 1})),
			want: "row 1",
		},
		{
			name: "missing rows",
			data: carows("CRW1", []uint64{3, 4}, uvarint(0)),
			want: "row 1 header",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "data.carows")
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			src, err := OpenFileSource(path)
			if err == nil {
				if tc.openErr {
					t.Fatal("OpenFileSource accepted a corrupted header")
				}
				err = src.Scan(func(int, []int32) error { return nil })
			} else if !tc.openErr {
				t.Fatalf("header rejected, expected scan-time failure: %v", err)
			}
			if err == nil {
				t.Fatal("corrupted file scanned without error")
			}
			var fe *FileError
			if !errors.As(err, &fe) {
				t.Fatalf("err = %v (%T), want *FileError", err, err)
			}
			if fe.Path != path {
				t.Errorf("FileError.Path = %q, want %q", fe.Path, path)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			if fe.Offset < 0 || fe.Offset > int64(len(tc.data)) {
				t.Errorf("FileError.Offset = %d outside file of %d bytes", fe.Offset, len(tc.data))
			}
			// The fused bitmap fill must reject the same corruption.
			if !tc.openErr {
				src2, err := OpenFileSource(path)
				if err != nil {
					t.Fatal(err)
				}
				slot := make([]int32, src2.NumCols())
				words := (src2.NumRows() + 63) / 64
				arena := make([]uint64, len(slot)*max(words, 1))
				for i := range slot {
					slot[i] = int32(i)
				}
				err = src2.FillColumnBits(slot, arena, max(words, 1))
				if err == nil {
					t.Fatal("FillColumnBits accepted corrupted rows")
				}
				if !errors.As(err, &fe) {
					t.Fatalf("fill err = %v (%T), want *FileError", err, err)
				}
			}
		})
	}
}

// TestCompressedShardStreaming runs the compressed source through the
// shard fan-out used by the streamed pipeline.
func TestCompressedShardStreaming(t *testing.T) {
	rng := hashing.NewSplitMix64(7)
	m := randomMatrix(rng, 230, 35, 0.1)
	path := filepath.Join(t.TempDir(), "data.carows")
	if err := SaveRowCompressed(path, m.Stream()); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	got := make([][]int32, m.NumRows())
	shards, err := ScanShards(fs, 64, 0, func(s *Shard) error {
		for i := 0; i < s.Len(); i++ {
			r, cs := s.Row(i)
			got[r] = append([]int32(nil), cs...)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if shards == 0 {
		t.Error("no shards streamed")
	}
	gm, err := FromRows(m.NumCols(), got)
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(m, gm) {
		t.Error("sharded compressed scan mismatch")
	}
}
