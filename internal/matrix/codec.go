package matrix

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The on-disk formats. Text is a line-oriented transaction format
// (one row per line, space-separated column indices), convenient for
// interchange with classic market-basket tools. Binary is a compact
// varint column-major encoding used by the cmd/ tools.

const (
	textHeader  = "%%assocmine-matrix v1"
	binaryMagic = "AMX1"
)

// WriteText writes the matrix in the text format:
//
//	%%assocmine-matrix v1
//	<rows> <cols>
//	<col> <col> ...   (one line per row; blank line = empty row)
func WriteText(w io.Writer, m *Matrix) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s\n%d %d\n", textHeader, m.NumRows(), m.NumCols()); err != nil {
		return err
	}
	err := m.Stream().Scan(func(row int, cols []int32) error {
		for i, c := range cols {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(c))); err != nil {
				return err
			}
		}
		return bw.WriteByte('\n')
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

// ReadText parses the text format written by WriteText.
func ReadText(r io.Reader) (*Matrix, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	line, err := readLine(br)
	if err != nil {
		return nil, fmt.Errorf("matrix: reading header: %w", err)
	}
	if line != textHeader {
		return nil, fmt.Errorf("matrix: bad header %q", line)
	}
	line, err = readLine(br)
	if err != nil {
		return nil, fmt.Errorf("matrix: reading dimensions: %w", err)
	}
	var rows, cols int
	if _, err := fmt.Sscanf(line, "%d %d", &rows, &cols); err != nil {
		return nil, fmt.Errorf("matrix: bad dimension line %q: %w", line, err)
	}
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("matrix: negative dimensions %dx%d", rows, cols)
	}
	b := NewBuilder(rows, cols)
	for row := 0; row < rows; row++ {
		line, err = readLine(br)
		if err != nil {
			return nil, fmt.Errorf("matrix: reading row %d: %w", row, err)
		}
		if line == "" {
			continue
		}
		for _, f := range strings.Fields(line) {
			c, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("matrix: row %d: bad column %q: %w", row, f, err)
			}
			if c < 0 || c >= cols {
				return nil, fmt.Errorf("matrix: row %d: column %d out of range [0,%d)", row, c, cols)
			}
			b.Set(row, c)
		}
	}
	return b.Build(), nil
}

// lineReader is the subset of bufio.Reader readLine needs; the
// offset-tracked readers of the file-backed scans implement it too.
type lineReader interface {
	ReadString(delim byte) (string, error)
}

func readLine(br lineReader) (string, error) {
	line, err := br.ReadString('\n')
	if err == io.EOF && line != "" {
		err = nil
	}
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// WriteBinary writes the compact column-major binary encoding:
// magic, uvarint rows, uvarint cols, then per column a uvarint length
// followed by delta-encoded uvarint row indices.
func WriteBinary(w io.Writer, m *Matrix) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(m.NumRows())); err != nil {
		return err
	}
	if err := writeUvarint(uint64(m.NumCols())); err != nil {
		return err
	}
	for c := 0; c < m.NumCols(); c++ {
		col := m.Column(c)
		if err := writeUvarint(uint64(len(col))); err != nil {
			return err
		}
		prev := int32(0)
		for i, r := range col {
			d := r - prev
			if i == 0 {
				d = r
			}
			if err := writeUvarint(uint64(d)); err != nil {
				return err
			}
			prev = r
		}
	}
	return bw.Flush()
}

// ReadBinary parses the binary encoding written by WriteBinary.
func ReadBinary(r io.Reader) (*Matrix, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("matrix: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("matrix: bad magic %q", magic)
	}
	rows64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("matrix: reading row count: %w", err)
	}
	cols64, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("matrix: reading column count: %w", err)
	}
	const maxDim = 1 << 31
	if rows64 > maxDim || cols64 > maxDim {
		return nil, fmt.Errorf("matrix: implausible dimensions %dx%d", rows64, cols64)
	}
	rows, ncols := int(rows64), int(cols64)
	cols := make([][]int32, ncols)
	for c := 0; c < ncols; c++ {
		length, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("matrix: column %d length: %w", c, err)
		}
		if length > uint64(rows) {
			return nil, fmt.Errorf("matrix: column %d length %d exceeds row count %d", c, length, rows)
		}
		if length == 0 {
			continue
		}
		col := make([]int32, length)
		prev := int32(0)
		for i := range col {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("matrix: column %d entry %d: %w", c, i, err)
			}
			var v int32
			if i == 0 {
				v = int32(d)
			} else {
				v = prev + int32(d)
			}
			if v < prev && i > 0 || int(v) >= rows || v < 0 {
				return nil, fmt.Errorf("matrix: column %d entry %d out of range", c, i)
			}
			col[i] = v
			prev = v
		}
		cols[c] = col
	}
	return New(rows, cols)
}

// SaveFile writes the matrix to path, choosing the codec from the
// extension: ".txt" (or anything else) for text, ".amx" for binary,
// ".arows" for the streaming row binary, ".carows" for the compressed
// streaming rows.
func SaveFile(path string, m *Matrix) error {
	switch {
	case strings.HasSuffix(path, ".arows"):
		return SaveRowBinary(path, m.Stream())
	case strings.HasSuffix(path, ".carows"):
		return SaveRowCompressed(path, m.Stream())
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".amx") {
		err = WriteBinary(f, m)
	} else {
		err = WriteText(f, m)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// LoadFile reads a matrix written by SaveFile or SaveRowBinary
// (".amx" column binary, ".arows"/".carows" streaming binaries, text
// otherwise).
func LoadFile(path string) (*Matrix, error) {
	if strings.HasSuffix(path, ".arows") || strings.HasSuffix(path, ".carows") {
		src, err := OpenFileSource(path)
		if err != nil {
			return nil, err
		}
		return Collect(src)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".amx") {
		return ReadBinary(f)
	}
	return ReadText(f)
}
