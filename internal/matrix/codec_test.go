package matrix

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"assocmine/internal/hashing"
)

func TestTextRoundTrip(t *testing.T) {
	m := paperExample()
	var buf bytes.Buffer
	if err := WriteText(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(m, got) {
		t.Error("text round trip mismatch")
	}
}

func TestTextFormatShape(t *testing.T) {
	m := MustNew(2, [][]int32{{0}, {0, 1}})
	var buf bytes.Buffer
	if err := WriteText(&buf, m); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines: %q", len(lines), lines)
	}
	if lines[1] != "2 2" {
		t.Errorf("dimension line = %q", lines[1])
	}
	if lines[2] != "0 1" || lines[3] != "1" {
		t.Errorf("row lines = %q, %q", lines[2], lines[3])
	}
}

func TestTextEmptyRows(t *testing.T) {
	m := MustNew(3, [][]int32{{1}})
	var buf bytes.Buffer
	if err := WriteText(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(m, got) {
		t.Error("matrix with empty rows did not round trip")
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"",                                  // no header
		"garbage\n1 1\n0\n",                 // bad header
		"%%assocmine-matrix v1\nx y\n",      // bad dims
		"%%assocmine-matrix v1\n-1 2\n",     // negative dims
		"%%assocmine-matrix v1\n1 1\nzzz\n", // bad column token
		"%%assocmine-matrix v1\n1 1\n5\n",   // column out of range
		"%%assocmine-matrix v1\n2 1\n0\n",   // missing row line
	}
	for _, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("ReadText accepted %q", in)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := hashing.NewSplitMix64(31)
	for trial := 0; trial < 10; trial++ {
		m := randomMatrix(rng, 100+trial*37, 17, 0.07)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, m); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !matricesEqual(m, got) {
			t.Fatalf("binary round trip mismatch on trial %d", trial)
		}
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("AMX1"), // truncated after magic
	}
	for _, in := range cases {
		if _, err := ReadBinary(bytes.NewReader(in)); err == nil {
			t.Errorf("ReadBinary accepted %q", in)
		}
	}
}

func TestBinaryRejectsOversizedColumn(t *testing.T) {
	m := MustNew(4, [][]int32{{0, 1, 2}})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	// Corrupt the column length byte (offset: 4 magic + 1 rows + 1 cols).
	data := buf.Bytes()
	data[6] = 200
	if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
		t.Error("ReadBinary accepted column longer than row count")
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	m := paperExample()
	for _, name := range []string{"m.txt", "m.amx"} {
		path := filepath.Join(dir, name)
		if err := SaveFile(path, m); err != nil {
			t.Fatalf("SaveFile(%s): %v", name, err)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatalf("LoadFile(%s): %v", name, err)
		}
		if !matricesEqual(m, got) {
			t.Errorf("file round trip mismatch for %s", name)
		}
	}
}

func TestLoadFileMissing(t *testing.T) {
	if _, err := LoadFile(filepath.Join(t.TempDir(), "nope.txt")); err == nil {
		t.Error("LoadFile on missing file succeeded")
	}
}

func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hashing.NewSplitMix64(seed)
		m := randomMatrix(rng, 1+rng.Intn(60), 1+rng.Intn(10), rng.Float64()*0.5)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, m); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		return matricesEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTextRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		rng := hashing.NewSplitMix64(seed)
		m := randomMatrix(rng, 1+rng.Intn(40), 1+rng.Intn(8), rng.Float64()*0.5)
		var buf bytes.Buffer
		if err := WriteText(&buf, m); err != nil {
			return false
		}
		got, err := ReadText(&buf)
		if err != nil {
			return false
		}
		return matricesEqual(m, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
