package matrix

import "context"

// WithContext returns a RowSource whose Scan aborts with ctx.Err() at
// the next row boundary once ctx is cancelled. A nil ctx returns src
// unchanged. The wrapper preserves the concurrency capability of src
// (ConcurrentSource passes through), so strategy selection in the
// pipeline is unaffected; it deliberately does not pass ByteCounter or
// the other accounting probes through — callers keep a reference to
// the unwrapped source for those.
func WithContext(ctx context.Context, src RowSource) RowSource {
	if ctx == nil {
		return src
	}
	return &ctxSource{ctx: ctx, src: src}
}

// ctxSource checks the context between rows. ctx.Err() is an atomic
// load, negligible next to per-row work, so the check runs every row
// and cancellation latency is one row.
type ctxSource struct {
	ctx context.Context
	src RowSource
}

// NumRows implements RowSource.
func (c *ctxSource) NumRows() int { return c.src.NumRows() }

// NumCols implements RowSource.
func (c *ctxSource) NumCols() int { return c.src.NumCols() }

// ConcurrentScan implements ConcurrentSource by delegation; the
// wrapper itself is stateless per scan.
func (c *ctxSource) ConcurrentScan() bool {
	cs, ok := c.src.(ConcurrentSource)
	return ok && cs.ConcurrentScan()
}

// Scan implements RowSource.
func (c *ctxSource) Scan(fn func(row int, cols []int32) error) error {
	if err := c.ctx.Err(); err != nil {
		return err
	}
	return c.src.Scan(func(row int, cols []int32) error {
		if err := c.ctx.Err(); err != nil {
			return err
		}
		return fn(row, cols)
	})
}
