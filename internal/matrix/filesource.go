package matrix

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"
)

// FS abstracts the file opens a FileSource performs — the seam fault
// injection and IO-hardening tests hook into. The default
// implementation is the operating system. Implementations must serve
// the same bytes on every Open of a path for scan results to be
// meaningful.
type FS interface {
	Open(path string) (io.ReadCloser, error)
}

// osFS is the real file system.
type osFS struct{}

func (osFS) Open(path string) (io.ReadCloser, error) { return os.Open(path) }

// OSFS returns the FS backed by the operating system, the one
// OpenFileSource uses.
func OSFS() FS { return osFS{} }

// RetryPolicy bounds the retries a FileSource performs when an open or
// read fails transiently (EAGAIN/EINTR-class errors, or anything
// advertising Temporary() == true). Retries <= 0 disables retrying;
// the backoff starts at BaseDelay and doubles per retry of the same
// operation. Permanent errors — truncation, decode failures, missing
// files — are never retried.
type RetryPolicy struct {
	Retries   int
	BaseDelay time.Duration
}

// DefaultRetryPolicy is the policy a new FileSource starts with: a few
// quick retries, cheap enough to be invisible on healthy disks, enough
// to ride out momentary EAGAIN-class glitches.
var DefaultRetryPolicy = RetryPolicy{Retries: 4, BaseDelay: time.Millisecond}

// IsTransient reports whether err is a transient IO error worth
// retrying: it advertises Temporary() == true, or it is
// EAGAIN/EINTR-class underneath.
func IsTransient(err error) bool {
	var t interface{ Temporary() bool }
	if errors.As(err, &t) && t.Temporary() {
		return true
	}
	return errors.Is(err, syscall.EAGAIN) || errors.Is(err, syscall.EINTR)
}

// FileError reports a permanent failure of a file-backed scan: the
// file, the byte offset the decoder had consumed when the failure
// surfaced, and the underlying cause. Callback errors (including
// context cancellation) are never wrapped in a FileError — only
// decode and IO faults of the file itself are.
type FileError struct {
	Path   string
	Offset int64
	Err    error
}

func (e *FileError) Error() string {
	return fmt.Sprintf("matrix: %s: byte %d: %v", e.Path, e.Offset, e.Err)
}

func (e *FileError) Unwrap() error { return e.Err }

// FileSource is a RowSource that streams rows directly from a dataset
// file, re-reading it on every Scan. It is the honest disk-resident
// setting of the paper: algorithms written against RowSource run
// unchanged with the data never materialised in memory; each phase
// costs one sequential file pass.
//
// Supported formats: the text transaction format of WriteText, the
// row-major streaming binary format of WriteRowBinary (".arows"), and
// the compressed row-streaming format of WriteRowCompressed
// (".carows"). The column-major ".amx" format cannot be row-streamed;
// convert it first.
//
// Opens and reads that fail transiently (see IsTransient) are retried
// with exponential backoff per the source's RetryPolicy; permanent
// failures surface as *FileError carrying the path and byte offset.
type FileSource struct {
	path   string
	fsys   FS
	format fileFormat
	rows   int
	cols   int
	retry  RetryPolicy

	bytesRead    atomic.Int64
	logicalBytes atomic.Int64
	retries      atomic.Int64
}

// fileFormat is the on-disk encoding a FileSource streams, detected
// from the path suffix at open time.
type fileFormat uint8

const (
	formatText   fileFormat = iota // WriteText transaction lines
	formatARows                    // ".arows" varint row binary
	formatCARows                   // ".carows" Rice-compressed rows
)

// formatOf maps a path to its streaming format by suffix.
func formatOf(path string) fileFormat {
	switch {
	case strings.HasSuffix(path, ".carows"):
		return formatCARows
	case strings.HasSuffix(path, ".arows"):
		return formatARows
	}
	return formatText
}

// Path returns the file the source streams from.
func (fs *FileSource) Path() string { return fs.path }

// NumRows implements RowSource with the row count from the file header.
func (fs *FileSource) NumRows() int { return fs.rows }

// NumCols implements RowSource with the column count from the header.
func (fs *FileSource) NumCols() int { return fs.cols }

// BytesRead returns the cumulative bytes read from disk by Scan passes
// over this source. Safe for concurrent use.
func (fs *FileSource) BytesRead() int64 { return fs.bytesRead.Load() }

// IORetries returns the cumulative transient-error retries this
// source's opens and reads performed. Safe for concurrent use.
func (fs *FileSource) IORetries() int64 { return fs.retries.Load() }

// FaultsInjected reports the faults the source's FS injected, when the
// FS is a fault-injecting one (zero otherwise). Safe for concurrent
// use.
func (fs *FileSource) FaultsInjected() int64 {
	if fc, ok := fs.fsys.(FaultCounter); ok {
		return fc.FaultsInjected()
	}
	return 0
}

// SetRetryPolicy replaces the transient-error retry policy. Not safe
// to call concurrently with Scan.
func (fs *FileSource) SetRetryPolicy(p RetryPolicy) { fs.retry = p }

// Compressed reports whether the source streams a compressed format
// (".carows"), i.e. whether the codec counters below are live.
func (fs *FileSource) Compressed() bool { return fs.format == formatCARows }

// CompressedBytesRead implements CodecCounter: the physical bytes
// compressed-format scans consumed. Zero for uncompressed sources —
// their BytesRead is already the logical figure.
func (fs *FileSource) CompressedBytesRead() int64 {
	if fs.format != formatCARows {
		return 0
	}
	return fs.bytesRead.Load()
}

// LogicalBytesRead implements CodecCounter: the ".arows"-equivalent
// bytes the compressed scans decoded — what the same passes would have
// read without compression. Zero for uncompressed sources.
func (fs *FileSource) LogicalBytesRead() int64 { return fs.logicalBytes.Load() }

// ByteCounter is implemented by sources that can report the disk bytes
// their scans have consumed — the I/O the out-of-core path accounts in
// Stats.BytesRead and the bytes_read counter.
type ByteCounter interface {
	BytesRead() int64
}

// RetryCounter is implemented by sources that can report how many
// transient-error retries their IO performed — the io_retries counter.
type RetryCounter interface {
	IORetries() int64
}

// FaultCounter is implemented by fault-injecting FSes (and the sources
// reading through them) to report how many faults were injected — the
// faults_injected counter.
type FaultCounter interface {
	FaultsInjected() int64
}

// CodecCounter is implemented by sources reading a compressed on-disk
// format. CompressedBytesRead is the physical IO their scans consumed;
// LogicalBytesRead is the uncompressed-equivalent volume decoded from
// it. Their ratio is the compression the codec achieved; both are zero
// on uncompressed sources.
type CodecCounter interface {
	CompressedBytesRead() int64
	LogicalBytesRead() int64
}

// countingReader counts bytes as they leave the underlying reader.
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// retryReader retries transient read errors with bounded exponential
// backoff. It sits below the bufio layer, so a retried fault is
// invisible to the decoder: the stream position never moves on a
// failed read, and the retried read resumes exactly where the fault
// hit. Errors that survive the retry budget propagate unchanged.
type retryReader struct {
	r       io.Reader
	policy  RetryPolicy
	retries *atomic.Int64
}

func (r *retryReader) Read(p []byte) (int, error) {
	n, err := r.r.Read(p)
	delay := r.policy.BaseDelay
	for attempt := 0; attempt < r.policy.Retries && n == 0 && err != nil && IsTransient(err); attempt++ {
		time.Sleep(delay)
		delay *= 2
		r.retries.Add(1)
		n, err = r.r.Read(p)
	}
	if n > 0 && err != nil && IsTransient(err) {
		// Bytes plus a transient error: deliver the bytes now; the next
		// Read retries the faulting position.
		err = nil
	}
	return n, err
}

// open opens the source's file through its FS, retrying transient
// open failures per the retry policy.
func (fs *FileSource) open() (io.ReadCloser, error) {
	f, err := fs.fsys.Open(fs.path)
	delay := fs.retry.BaseDelay
	for attempt := 0; attempt < fs.retry.Retries && err != nil && IsTransient(err); attempt++ {
		time.Sleep(delay)
		delay *= 2
		fs.retries.Add(1)
		f, err = fs.fsys.Open(fs.path)
	}
	return f, err
}

// reader builds the source's layered read stack for one pass: bufio on
// top for the decoders, byte accounting and transient-retry below, the
// FS at the bottom. countBytes is false for the header validation at
// open time — BytesRead accounts Scan passes only. The returned
// trackedReader counts the bytes the decoder consumed (not the
// read-ahead), so error offsets point at the failing entry.
func (fs *FileSource) reader(f io.ReadCloser, countBytes bool) *trackedReader {
	var r io.Reader = &retryReader{r: f, policy: fs.retry, retries: &fs.retries}
	if countBytes {
		r = &countingReader{r: r, n: &fs.bytesRead}
	}
	return &trackedReader{br: bufio.NewReaderSize(r, 1<<16)}
}

// trackedReader counts the bytes the decoder consumed from the
// buffered stream. Unlike a counter below the bufio layer it is not
// skewed by read-ahead, so FileError offsets are exact.
type trackedReader struct {
	br  *bufio.Reader
	off int64
}

func (t *trackedReader) Read(p []byte) (int, error) {
	n, err := t.br.Read(p)
	t.off += int64(n)
	return n, err
}

func (t *trackedReader) ReadByte() (byte, error) {
	b, err := t.br.ReadByte()
	if err == nil {
		t.off++
	}
	return b, err
}

func (t *trackedReader) ReadString(delim byte) (string, error) {
	s, err := t.br.ReadString(delim)
	t.off += int64(len(s))
	return s, err
}

// byteScanner is the reader the row decoders consume: buffered reads
// plus single bytes for varints.
type byteScanner interface {
	io.Reader
	io.ByteReader
}

// OpenFileSource validates the file header and returns a FileSource
// reading through the operating system.
func OpenFileSource(path string) (*FileSource, error) {
	return OpenFileSourceFS(nil, path)
}

// OpenFileSourceFS is OpenFileSource with every open routed through
// fsys (nil means the OS) — the seam fault-injection harnesses use to
// exercise the IO failure paths.
func OpenFileSourceFS(fsys FS, path string) (*FileSource, error) {
	if fsys == nil {
		fsys = osFS{}
	}
	fs := &FileSource{
		path:   path,
		fsys:   fsys,
		format: formatOf(path),
		retry:  DefaultRetryPolicy,
	}
	f, err := fs.open()
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr := fs.reader(f, false)
	fail := func(err error) error {
		return &FileError{Path: fs.path, Offset: tr.off, Err: err}
	}
	switch fs.format {
	case formatARows:
		rows, cols, err := readRowBinaryHeader(tr)
		if err != nil {
			return nil, fail(err)
		}
		fs.rows, fs.cols = rows, cols
		return fs, nil
	case formatCARows:
		rows, cols, err := readRowCompressedHeader(tr)
		if err != nil {
			return nil, fail(err)
		}
		fs.rows, fs.cols = rows, cols
		return fs, nil
	}
	line, err := readLine(tr)
	if err != nil {
		return nil, fail(fmt.Errorf("reading header: %w", err))
	}
	if line != textHeader {
		return nil, fail(fmt.Errorf("bad header %q", line))
	}
	line, err = readLine(tr)
	if err != nil {
		return nil, fail(fmt.Errorf("reading dimensions: %w", err))
	}
	if _, err := fmt.Sscanf(line, "%d %d", &fs.rows, &fs.cols); err != nil {
		return nil, fail(fmt.Errorf("bad dimension line %q: %w", line, err))
	}
	if fs.rows < 0 || fs.cols < 0 {
		return nil, fail(fmt.Errorf("negative dimensions"))
	}
	return fs, nil
}

// Scan implements RowSource with one sequential pass over the file.
// Decode and IO failures return a *FileError with the path and byte
// offset reached; errors returned by fn pass through unchanged.
func (fs *FileSource) Scan(fn func(row int, cols []int32) error) error {
	f, err := fs.open()
	if err != nil {
		return err
	}
	defer f.Close()
	tr := fs.reader(f, true)
	fail := func(err error) error {
		return &FileError{Path: fs.path, Offset: tr.off, Err: err}
	}
	switch fs.format {
	case formatARows:
		return scanRowBinary(tr, fs.rows, fs.cols, fail, fn)
	case formatCARows:
		return scanRowCompressed(tr, fs.rows, fs.cols, fail, &fs.logicalBytes, fn)
	}
	// Skip the two header lines.
	for i := 0; i < 2; i++ {
		if _, err := readLine(tr); err != nil {
			return fail(fmt.Errorf("reading header: %w", err))
		}
	}
	var buf []int32
	for row := 0; row < fs.rows; row++ {
		line, err := readLine(tr)
		if err != nil {
			return fail(fmt.Errorf("row %d: %w", row, err))
		}
		buf = buf[:0]
		for _, field := range strings.Fields(line) {
			c, err := strconv.Atoi(field)
			if err != nil {
				return fail(fmt.Errorf("row %d: bad column %q", row, field))
			}
			if c < 0 || c >= fs.cols {
				return fail(fmt.Errorf("row %d: column %d out of range", row, c))
			}
			buf = append(buf, int32(c))
		}
		// Rows in files produced by WriteText are sorted; guard anyway
		// since RowSource promises sorted columns.
		if !sort.SliceIsSorted(buf, func(a, b int) bool { return buf[a] < buf[b] }) {
			sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
		}
		if err := fn(row, buf); err != nil {
			return err
		}
	}
	return nil
}

const rowBinaryMagic = "ARW1"

// WriteRowBinary writes src in the row-major streaming binary format:
// magic, uvarint rows/cols, then per row a uvarint length followed by
// delta-encoded column indices. One pass over src.
func WriteRowBinary(w io.Writer, src RowSource) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(rowBinaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(src.NumRows())); err != nil {
		return err
	}
	if err := writeUvarint(uint64(src.NumCols())); err != nil {
		return err
	}
	err := src.Scan(func(row int, cols []int32) error {
		if err := writeUvarint(uint64(len(cols))); err != nil {
			return err
		}
		prev := int32(0)
		for i, c := range cols {
			d := c - prev
			if i == 0 {
				d = c
			}
			if err := writeUvarint(uint64(d)); err != nil {
				return err
			}
			prev = c
		}
		return nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

func readRowBinaryHeader(r byteScanner) (rows, cols int, err error) {
	magic := make([]byte, len(rowBinaryMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return 0, 0, fmt.Errorf("reading row-binary magic: %w", err)
	}
	if string(magic) != rowBinaryMagic {
		return 0, 0, fmt.Errorf("bad row-binary magic %q", magic)
	}
	r64, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, fmt.Errorf("reading row count: %w", err)
	}
	c64, err := binary.ReadUvarint(r)
	if err != nil {
		return 0, 0, fmt.Errorf("reading column count: %w", err)
	}
	const maxDim = 1 << 31
	if r64 > maxDim || c64 > maxDim {
		return 0, 0, fmt.Errorf("implausible row-binary dimensions %dx%d", r64, c64)
	}
	return int(r64), int(c64), nil
}

// scanRowBinary decodes the row-binary stream, invoking fn per row.
// Decode failures are passed through wrap (which attaches path and
// offset); errors returned by fn propagate unchanged.
func scanRowBinary(r byteScanner, wantRows, wantCols int, wrap func(error) error, fn func(int, []int32) error) error {
	if wrap == nil {
		wrap = func(err error) error { return err }
	}
	rows, cols, err := readRowBinaryHeader(r)
	if err != nil {
		return wrap(err)
	}
	if rows != wantRows || cols != wantCols {
		return wrap(fmt.Errorf("row-binary dimensions changed on disk: %dx%d", rows, cols))
	}
	var buf []int32
	for row := 0; row < rows; row++ {
		length, err := binary.ReadUvarint(r)
		if err != nil {
			return wrap(fmt.Errorf("row %d length: %w", row, err))
		}
		if length > uint64(cols) {
			return wrap(fmt.Errorf("row %d length %d exceeds column count", row, length))
		}
		buf = buf[:0]
		prev := int32(0)
		for i := uint64(0); i < length; i++ {
			d, err := binary.ReadUvarint(r)
			if err != nil {
				return wrap(fmt.Errorf("row %d entry %d: %w", row, i, err))
			}
			var v int32
			if i == 0 {
				v = int32(d)
			} else {
				v = prev + int32(d)
			}
			if v < 0 || int(v) >= cols || (i > 0 && v <= prev) {
				return wrap(fmt.Errorf("row %d entry %d out of range", row, i))
			}
			buf = append(buf, v)
			prev = v
		}
		if err := fn(row, buf); err != nil {
			return err
		}
	}
	return nil
}

// CanFillColumnBits implements BitmapFiller: both binary formats
// decode straight into packed bit-columns; the text format does not.
func (fs *FileSource) CanFillColumnBits() bool { return fs.format != formatText }

// FillColumnBits implements BitmapFiller with one sequential pass that
// decodes postings directly into the packed arena — no row slices are
// materialised and no shards are broadcast. Validation, byte
// accounting and *FileError offsets are identical to Scan's.
func (fs *FileSource) FillColumnBits(slot []int32, arena []uint64, words int) error {
	if len(slot) < fs.cols {
		return fmt.Errorf("matrix: slot table covers %d of %d columns", len(slot), fs.cols)
	}
	f, err := fs.open()
	if err != nil {
		return err
	}
	defer f.Close()
	tr := fs.reader(f, true)
	fail := func(err error) error {
		return &FileError{Path: fs.path, Offset: tr.off, Err: err}
	}
	switch fs.format {
	case formatARows:
		return fillRowBinaryBits(tr, fs.rows, fs.cols, fail, slot, arena, words)
	case formatCARows:
		rows, cols, err := readRowCompressedHeader(tr)
		if err != nil {
			return fail(err)
		}
		if rows != fs.rows || cols != fs.cols {
			return fail(fmt.Errorf("compressed-row dimensions changed on disk: %dx%d", rows, cols))
		}
		d := newCompressedRowDecoder(tr, cols)
		d.logical = rowHeaderLogicalBytes(rows, cols)
		for row := 0; row < rows; row++ {
			w := row >> 6
			bit := uint64(1) << (uint(row) & 63)
			if err := d.decodeRow(row, func(c int32) {
				if sl := slot[c]; sl >= 0 {
					arena[int(sl)*words+w] |= bit
				}
			}); err != nil {
				return fail(err)
			}
		}
		fs.logicalBytes.Add(d.logical)
		return nil
	}
	return fmt.Errorf("matrix: %s: text sources cannot fill column bits", fs.path)
}

// fillRowBinaryBits is scanRowBinary fused with bit-column packing:
// same decode, same validation, but each posting sets its (slot, row)
// bit instead of growing a row slice.
func fillRowBinaryBits(r byteScanner, wantRows, wantCols int, wrap func(error) error, slot []int32, arena []uint64, words int) error {
	rows, cols, err := readRowBinaryHeader(r)
	if err != nil {
		return wrap(err)
	}
	if rows != wantRows || cols != wantCols {
		return wrap(fmt.Errorf("row-binary dimensions changed on disk: %dx%d", rows, cols))
	}
	for row := 0; row < rows; row++ {
		length, err := binary.ReadUvarint(r)
		if err != nil {
			return wrap(fmt.Errorf("row %d length: %w", row, err))
		}
		if length > uint64(cols) {
			return wrap(fmt.Errorf("row %d length %d exceeds column count", row, length))
		}
		w := row >> 6
		bit := uint64(1) << (uint(row) & 63)
		prev := int32(0)
		for i := uint64(0); i < length; i++ {
			d, err := binary.ReadUvarint(r)
			if err != nil {
				return wrap(fmt.Errorf("row %d entry %d: %w", row, i, err))
			}
			var v int32
			if i == 0 {
				v = int32(d)
			} else {
				v = prev + int32(d)
			}
			if v < 0 || int(v) >= cols || (i > 0 && v <= prev) {
				return wrap(fmt.Errorf("row %d entry %d out of range", row, i))
			}
			if sl := slot[v]; sl >= 0 {
				arena[int(sl)*words+w] |= bit
			}
			prev = v
		}
	}
	return nil
}

// SaveRowBinary writes src to path in the ".arows" streaming format.
func SaveRowBinary(path string, src RowSource) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = WriteRowBinary(f, src)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
