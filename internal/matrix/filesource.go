package matrix

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// FileSource is a RowSource that streams rows directly from a dataset
// file, re-reading it on every Scan. It is the honest disk-resident
// setting of the paper: algorithms written against RowSource run
// unchanged with the data never materialised in memory; each phase
// costs one sequential file pass.
//
// Supported formats: the text transaction format of WriteText, and the
// row-major streaming binary format of WriteRowBinary (".arows").
// The column-major ".amx" format cannot be row-streamed; convert it
// first.
type FileSource struct {
	path   string
	binary bool
	rows   int
	cols   int

	bytesRead atomic.Int64
}

// Path returns the file the source streams from.
func (fs *FileSource) Path() string { return fs.path }

// BytesRead returns the cumulative bytes read from disk by Scan passes
// over this source. Safe for concurrent use.
func (fs *FileSource) BytesRead() int64 { return fs.bytesRead.Load() }

// ByteCounter is implemented by sources that can report the disk bytes
// their scans have consumed — the I/O the out-of-core path accounts in
// Stats.BytesRead and the bytes_read counter.
type ByteCounter interface {
	BytesRead() int64
}

// countingReader counts bytes as they leave the underlying reader.
type countingReader struct {
	r io.Reader
	n *atomic.Int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n.Add(int64(n))
	return n, err
}

// OpenFileSource validates the file header and returns a FileSource.
func OpenFileSource(path string) (*FileSource, error) {
	fs := &FileSource{path: path, binary: strings.HasSuffix(path, ".arows")}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	if fs.binary {
		rows, cols, err := readRowBinaryHeader(br)
		if err != nil {
			return nil, err
		}
		fs.rows, fs.cols = rows, cols
		return fs, nil
	}
	line, err := readLine(br)
	if err != nil {
		return nil, fmt.Errorf("matrix: reading header of %s: %w", path, err)
	}
	if line != textHeader {
		return nil, fmt.Errorf("matrix: %s: bad header %q", path, line)
	}
	line, err = readLine(br)
	if err != nil {
		return nil, fmt.Errorf("matrix: reading dimensions of %s: %w", path, err)
	}
	if _, err := fmt.Sscanf(line, "%d %d", &fs.rows, &fs.cols); err != nil {
		return nil, fmt.Errorf("matrix: %s: bad dimension line %q: %w", path, line, err)
	}
	if fs.rows < 0 || fs.cols < 0 {
		return nil, fmt.Errorf("matrix: %s: negative dimensions", path)
	}
	return fs, nil
}

// NumRows implements RowSource.
func (fs *FileSource) NumRows() int { return fs.rows }

// NumCols implements RowSource.
func (fs *FileSource) NumCols() int { return fs.cols }

// Scan implements RowSource with one sequential pass over the file.
func (fs *FileSource) Scan(fn func(row int, cols []int32) error) error {
	f, err := os.Open(fs.path)
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(&countingReader{r: f, n: &fs.bytesRead}, 1<<16)
	if fs.binary {
		if err := scanRowBinary(br, fs.rows, fs.cols, fn); err != nil {
			return fmt.Errorf("%s: %w", fs.path, err)
		}
		return nil
	}
	// Skip the two header lines.
	for i := 0; i < 2; i++ {
		if _, err := readLine(br); err != nil {
			return err
		}
	}
	var buf []int32
	for row := 0; row < fs.rows; row++ {
		line, err := readLine(br)
		if err != nil {
			return fmt.Errorf("matrix: %s row %d: %w", fs.path, row, err)
		}
		buf = buf[:0]
		for _, field := range strings.Fields(line) {
			c, err := strconv.Atoi(field)
			if err != nil {
				return fmt.Errorf("matrix: %s row %d: bad column %q", fs.path, row, field)
			}
			if c < 0 || c >= fs.cols {
				return fmt.Errorf("matrix: %s row %d: column %d out of range", fs.path, row, c)
			}
			buf = append(buf, int32(c))
		}
		// Rows in files produced by WriteText are sorted; guard anyway
		// since RowSource promises sorted columns.
		if !sort.SliceIsSorted(buf, func(a, b int) bool { return buf[a] < buf[b] }) {
			sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
		}
		if err := fn(row, buf); err != nil {
			return err
		}
	}
	return nil
}

const rowBinaryMagic = "ARW1"

// WriteRowBinary writes src in the row-major streaming binary format:
// magic, uvarint rows/cols, then per row a uvarint length followed by
// delta-encoded column indices. One pass over src.
func WriteRowBinary(w io.Writer, src RowSource) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(rowBinaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(uint64(src.NumRows())); err != nil {
		return err
	}
	if err := writeUvarint(uint64(src.NumCols())); err != nil {
		return err
	}
	err := src.Scan(func(row int, cols []int32) error {
		if err := writeUvarint(uint64(len(cols))); err != nil {
			return err
		}
		prev := int32(0)
		for i, c := range cols {
			d := c - prev
			if i == 0 {
				d = c
			}
			if err := writeUvarint(uint64(d)); err != nil {
				return err
			}
			prev = c
		}
		return nil
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}

func readRowBinaryHeader(br *bufio.Reader) (rows, cols int, err error) {
	magic := make([]byte, len(rowBinaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return 0, 0, fmt.Errorf("matrix: reading row-binary magic: %w", err)
	}
	if string(magic) != rowBinaryMagic {
		return 0, 0, fmt.Errorf("matrix: bad row-binary magic %q", magic)
	}
	r64, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, err
	}
	c64, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, 0, err
	}
	const maxDim = 1 << 31
	if r64 > maxDim || c64 > maxDim {
		return 0, 0, fmt.Errorf("matrix: implausible row-binary dimensions %dx%d", r64, c64)
	}
	return int(r64), int(c64), nil
}

func scanRowBinary(br *bufio.Reader, wantRows, wantCols int, fn func(int, []int32) error) error {
	rows, cols, err := readRowBinaryHeader(br)
	if err != nil {
		return err
	}
	if rows != wantRows || cols != wantCols {
		return fmt.Errorf("matrix: row-binary dimensions changed on disk: %dx%d", rows, cols)
	}
	var buf []int32
	for row := 0; row < rows; row++ {
		length, err := binary.ReadUvarint(br)
		if err != nil {
			return fmt.Errorf("matrix: row %d length: %w", row, err)
		}
		if length > uint64(cols) {
			return fmt.Errorf("matrix: row %d length %d exceeds column count", row, length)
		}
		buf = buf[:0]
		prev := int32(0)
		for i := uint64(0); i < length; i++ {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return fmt.Errorf("matrix: row %d entry %d: %w", row, i, err)
			}
			var v int32
			if i == 0 {
				v = int32(d)
			} else {
				v = prev + int32(d)
			}
			if v < 0 || int(v) >= cols || (i > 0 && v <= prev) {
				return fmt.Errorf("matrix: row %d entry %d out of range", row, i)
			}
			buf = append(buf, v)
			prev = v
		}
		if err := fn(row, buf); err != nil {
			return err
		}
	}
	return nil
}

// SaveRowBinary writes src to path in the ".arows" streaming format.
func SaveRowBinary(path string, src RowSource) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = WriteRowBinary(f, src)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
