package matrix

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// rowBinary assembles an .arows payload from the header fields and raw
// varint body values, letting each case corrupt exactly one branch.
func rowBinary(magic string, header []uint64, body []uint64) []byte {
	var buf bytes.Buffer
	buf.WriteString(magic)
	var tmp [binary.MaxVarintLen64]byte
	for _, v := range append(append([]uint64{}, header...), body...) {
		n := binary.PutUvarint(tmp[:], v)
		buf.Write(tmp[:n])
	}
	return buf.Bytes()
}

// TestFileSourceDecodeErrors drives every decode branch of both file
// formats with a corrupted file and asserts the failure is a *FileError
// whose message carries the file path.
func TestFileSourceDecodeErrors(t *testing.T) {
	validBinary := rowBinary("ARW1", []uint64{2, 4}, []uint64{2, 0, 2, 1, 3})
	cases := []struct {
		name    string
		ext     string
		data    []byte
		openErr bool   // error expected from Open rather than Scan
		want    string // substring of the underlying cause
	}{
		{
			name: "binary bad magic", ext: ".arows", openErr: true,
			data: rowBinary("ARWX", []uint64{2, 4}, nil),
			want: "bad row-binary magic",
		},
		{
			name: "binary header overflow", ext: ".arows", openErr: true,
			data: rowBinary("ARW1", []uint64{1 << 40, 4}, nil),
			want: "implausible row-binary dimensions",
		},
		{
			name: "binary truncated header", ext: ".arows", openErr: true,
			data: []byte("ARW1"),
			want: "reading row count",
		},
		{
			name: "binary column out of range", ext: ".arows",
			data: rowBinary("ARW1", []uint64{1, 3}, []uint64{1, 7}),
			want: "out of range",
		},
		{
			name: "binary row length exceeds cols", ext: ".arows",
			data: rowBinary("ARW1", []uint64{1, 3}, []uint64{9}),
			want: "exceeds column count",
		},
		{
			name: "binary mid-row truncation", ext: ".arows",
			data: validBinary[:len(validBinary)-2],
			want: "row 1",
		},
		{
			name: "text bad header", ext: ".txt", openErr: true,
			data: []byte("%%not-a-matrix\n2 4\n"),
			want: "bad header",
		},
		{
			name: "text bad dimension line", ext: ".txt", openErr: true,
			data: []byte("%%assocmine-matrix v1\ntwo four\n"),
			want: "bad dimension line",
		},
		{
			name: "text column out of range", ext: ".txt",
			data: []byte("%%assocmine-matrix v1\n2 4\n0 2\n0 9\n"),
			want: "out of range",
		},
		{
			name: "text non-numeric column", ext: ".txt",
			data: []byte("%%assocmine-matrix v1\n1 4\n0 x\n"),
			want: "bad column",
		},
		{
			name: "text mid-file truncation", ext: ".txt",
			data: []byte("%%assocmine-matrix v1\n3 4\n0 2\n"),
			want: "row 1",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "data"+tc.ext)
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			src, err := OpenFileSource(path)
			if err == nil {
				if tc.openErr {
					t.Fatal("OpenFileSource accepted a corrupted header")
				}
				err = src.Scan(func(int, []int32) error { return nil })
			} else if !tc.openErr {
				t.Fatalf("header rejected, expected scan-time failure: %v", err)
			}
			if err == nil {
				t.Fatal("corrupted file scanned without error")
			}
			var fe *FileError
			if !errors.As(err, &fe) {
				t.Fatalf("err = %v (%T), want *FileError", err, err)
			}
			if fe.Path != path {
				t.Errorf("FileError.Path = %q, want %q", fe.Path, path)
			}
			if !strings.Contains(err.Error(), path) {
				t.Errorf("error %q does not mention the file path", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
			if fe.Offset < 0 || fe.Offset > int64(len(tc.data)) {
				t.Errorf("FileError.Offset = %d outside file of %d bytes", fe.Offset, len(tc.data))
			}
		})
	}
}
