package matrix

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"assocmine/internal/hashing"
)

func TestFileSourceTextRoundTrip(t *testing.T) {
	rng := hashing.NewSplitMix64(1)
	m := randomMatrix(rng, 150, 20, 0.1)
	path := filepath.Join(t.TempDir(), "data.txt")
	if err := SaveFile(path, m); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if fs.NumRows() != 150 || fs.NumCols() != 20 {
		t.Fatalf("dims %dx%d", fs.NumRows(), fs.NumCols())
	}
	got, err := Collect(fs)
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(m, got) {
		t.Error("FileSource text scan mismatch")
	}
}

func TestFileSourceRowBinaryRoundTrip(t *testing.T) {
	rng := hashing.NewSplitMix64(2)
	m := randomMatrix(rng, 200, 15, 0.08)
	path := filepath.Join(t.TempDir(), "data.arows")
	if err := SaveRowBinary(path, m.Stream()); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Collect(fs)
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(m, got) {
		t.Error("FileSource row-binary scan mismatch")
	}
}

func TestFileSourceMultiplePasses(t *testing.T) {
	m := paperExample()
	path := filepath.Join(t.TempDir(), "p.txt")
	if err := SaveFile(path, m); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	for pass := 0; pass < 3; pass++ {
		rows := 0
		err := fs.Scan(func(row int, cols []int32) error {
			rows++
			return nil
		})
		if err != nil {
			t.Fatalf("pass %d: %v", pass, err)
		}
		if rows != 4 {
			t.Fatalf("pass %d saw %d rows", pass, rows)
		}
	}
}

func TestFileSourcePropagatesCallbackError(t *testing.T) {
	m := paperExample()
	path := filepath.Join(t.TempDir(), "p.txt")
	if err := SaveFile(path, m); err != nil {
		t.Fatal(err)
	}
	fs, _ := OpenFileSource(path)
	sentinel := errors.New("stop")
	err := fs.Scan(func(row int, cols []int32) error {
		if row == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Errorf("err = %v, want sentinel", err)
	}
}

func TestOpenFileSourceErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := OpenFileSource(filepath.Join(dir, "missing.txt")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.txt")
	if err := os.WriteFile(bad, []byte("not a header\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileSource(bad); err == nil {
		t.Error("bad header accepted")
	}
	badBin := filepath.Join(dir, "bad.arows")
	if err := os.WriteFile(badBin, []byte("XXXX"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenFileSource(badBin); err == nil {
		t.Error("bad binary magic accepted")
	}
}

func TestFileSourceRejectsCorruptRow(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.txt")
	content := textHeader + "\n2 3\n0 zebra\n1\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs.Scan(func(int, []int32) error { return nil }); err == nil {
		t.Error("corrupt row accepted")
	}
	// Out-of-range column.
	path2 := filepath.Join(dir, "c2.txt")
	if err := os.WriteFile(path2, []byte(textHeader+"\n1 2\n7\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	fs2, err := OpenFileSource(path2)
	if err != nil {
		t.Fatal(err)
	}
	if err := fs2.Scan(func(int, []int32) error { return nil }); err == nil {
		t.Error("out-of-range column accepted")
	}
}

func TestWriteRowBinaryDeterministic(t *testing.T) {
	m := paperExample()
	var a, b bytes.Buffer
	if err := WriteRowBinary(&a, m.Stream()); err != nil {
		t.Fatal(err)
	}
	if err := WriteRowBinary(&b, m.Stream()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("row-binary encoding not deterministic")
	}
}

func TestNamedTransactionsRoundTrip(t *testing.T) {
	in := "milk bread\n# a comment line\nbeer\n\nbread beer milk\n"
	m, names, err := ReadNamedTransactions(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "milk" || names[1] != "bread" || names[2] != "beer" {
		t.Fatalf("names = %v", names)
	}
	// 4 rows: the comment is skipped, the blank line is an empty
	// transaction.
	if m.NumRows() != 4 || m.NumCols() != 3 {
		t.Fatalf("dims %dx%d", m.NumRows(), m.NumCols())
	}
	if m.ColumnSize(0) != 2 || m.ColumnSize(2) != 2 {
		t.Errorf("column sizes: milk=%d beer=%d", m.ColumnSize(0), m.ColumnSize(2))
	}
	var buf bytes.Buffer
	if err := WriteNamedTransactions(&buf, m, names); err != nil {
		t.Fatal(err)
	}
	m2, names2, err := ReadNamedTransactions(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(m, m2) {
		t.Error("named transactions did not round trip")
	}
	for i := range names {
		if names[i] != names2[i] {
			t.Errorf("name %d: %q vs %q", i, names[i], names2[i])
		}
	}
}

func TestWriteNamedTransactionsValidation(t *testing.T) {
	m := MustNew(1, [][]int32{{0}, {}})
	var buf bytes.Buffer
	if err := WriteNamedTransactions(&buf, m, []string{"a"}); err == nil {
		t.Error("wrong name count accepted")
	}
	if err := WriteNamedTransactions(&buf, m, []string{"a b", "c"}); err == nil {
		t.Error("name with space accepted")
	}
	if err := WriteNamedTransactions(&buf, m, []string{"a", "a"}); err == nil {
		t.Error("duplicate names accepted")
	}
	if err := WriteNamedTransactions(&buf, m, []string{"", "b"}); err == nil {
		t.Error("empty name accepted")
	}
}
