package matrix

import "assocmine/internal/hashing"

// FoldRows implements the density-doubling step of Hamming-LSH (paper
// Section 4.2): rows are paired uniformly at random and each pair is
// replaced by its bitwise OR, halving the number of rows (an odd
// trailing row passes through unchanged). Repeated folding produces the
// sequence M_0, M_1, M_2, ... of increasingly dense matrices on which
// the algorithm samples row bits.
func (m *Matrix) FoldRows(rng *hashing.SplitMix64) *Matrix {
	n := m.rows
	newRows := (n + 1) / 2
	if n <= 1 {
		// Folding a 0- or 1-row matrix is the identity.
		cols := make([][]int32, len(m.cols))
		for c, col := range m.cols {
			cols[c] = append([]int32(nil), col...)
		}
		return &Matrix{rows: n, cols: cols}
	}
	// pairOf[r] = index of the folded row that source row r lands in.
	perm := rng.Perm(n)
	pairOf := make([]int32, n)
	for i, r := range perm {
		pairOf[r] = int32(i / 2)
	}
	cols := make([][]int32, len(m.cols))
	// Per-column: map source rows through pairOf, sort, dedup. A
	// column's folded size can only shrink or stay equal.
	for c, col := range m.cols {
		if len(col) == 0 {
			continue
		}
		mapped := make([]int32, len(col))
		for i, r := range col {
			mapped[i] = pairOf[r]
		}
		insertionSortInt32(mapped)
		cols[c] = dedupSorted(mapped)
	}
	return &Matrix{rows: newRows, cols: cols}
}

// insertionSortInt32 sorts small-to-medium int32 slices. Folded column
// lists are nearly sorted already (pairing preserves locality in
// expectation poorly, but columns are short relative to n), so a simple
// binary-insertion sort with a merge fallback keeps constants low.
func insertionSortInt32(s []int32) {
	if len(s) > 64 {
		mergeSortInt32(s, make([]int32, len(s)))
		return
	}
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

func mergeSortInt32(s, buf []int32) {
	if len(s) <= 32 {
		insertionSortInt32Small(s)
		return
	}
	mid := len(s) / 2
	mergeSortInt32(s[:mid], buf[:mid])
	mergeSortInt32(s[mid:], buf[mid:])
	copy(buf, s[:mid])
	i, j, k := 0, mid, 0
	for i < mid && j < len(s) {
		if buf[i] <= s[j] {
			s[k] = buf[i]
			i++
		} else {
			s[k] = s[j]
			j++
		}
		k++
	}
	copy(s[k:], buf[i:mid])
}

func insertionSortInt32Small(s []int32) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}

// FoldLadder returns the sequence M_0 = m, M_1, ..., M_d where each
// matrix is the OR-fold of its predecessor, stopping after maxLevels
// matrices or when a fold would drop below 2 rows. M_0 is shared with
// the receiver, not copied.
func (m *Matrix) FoldLadder(rng *hashing.SplitMix64, maxLevels int) []*Matrix {
	ladder := []*Matrix{m}
	cur := m
	for len(ladder) < maxLevels && cur.rows > 2 {
		cur = cur.FoldRows(rng)
		ladder = append(ladder, cur)
	}
	return ladder
}
