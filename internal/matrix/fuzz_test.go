package matrix

import (
	"bytes"
	"testing"
)

// Fuzz targets for the codecs: any input must either parse into a
// valid matrix or return an error — never panic — and whatever parses
// must re-encode and re-parse identically.

func FuzzReadText(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteText(&seed, paperExample())
	f.Add(seed.Bytes())
	f.Add([]byte(""))
	f.Add([]byte(textHeader + "\n2 2\n0 1\n\n"))
	f.Add([]byte(textHeader + "\n-1 -1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadText(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteText(&out, m); err != nil {
			t.Fatalf("re-encode of parsed matrix failed: %v", err)
		}
		m2, err := ReadText(&out)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if !matricesEqual(m, m2) {
			t.Fatal("text codec not idempotent")
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteBinary(&seed, paperExample())
	f.Add(seed.Bytes())
	f.Add([]byte("AMX1"))
	f.Add([]byte("AMX1\x02\x02\x01\x00\x01\x01"))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, m); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		m2, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if !matricesEqual(m, m2) {
			t.Fatal("binary codec not idempotent")
		}
	})
}

func FuzzCArowsRoundTrip(f *testing.F) {
	var seed bytes.Buffer
	_ = WriteRowCompressed(&seed, paperExample().Stream())
	f.Add(seed.Bytes())
	// A multi-shard matrix (rows beyond one 64-row shard) with both
	// sparse Rice rows and dense bitmap rows.
	var wide bytes.Buffer
	_ = WriteRowCompressed(&wide, fuzzSeedMatrix().Stream())
	f.Add(wide.Bytes())
	// Truncations at and around the shard-boundary rows.
	for _, cut := range []int{4, 6, len(wide.Bytes()) / 2, len(wide.Bytes()) - 1} {
		if cut < wide.Len() {
			f.Add(wide.Bytes()[:cut])
		}
	}
	f.Add([]byte("CRW1"))
	f.Add([]byte("CRWX\x01\x01"))
	f.Add(carows("CRW1", []uint64{1, 4}, riceRow(1<<6|1<<5, 0, nil)))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := parseCArows(data)
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteRowCompressed(&out, m.Stream()); err != nil {
			t.Fatalf("re-encode of parsed matrix failed: %v", err)
		}
		m2, err := parseCArows(out.Bytes())
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if !matricesEqual(m, m2) {
			t.Fatal("compressed row codec not idempotent")
		}
	})
}

func FuzzReadNamedTransactions(f *testing.F) {
	f.Add("milk bread\nbeer milk\n")
	f.Add("# comment\n\n")
	f.Add("a a a\n")
	f.Fuzz(func(t *testing.T, data string) {
		m, names, err := ReadNamedTransactions(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		if len(names) != m.NumCols() {
			t.Fatalf("%d names for %d columns", len(names), m.NumCols())
		}
	})
}
