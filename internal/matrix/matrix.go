// Package matrix implements the sparse 0/1 matrix substrate the paper's
// algorithms run on: a column-major in-memory representation for exact
// set arithmetic, a row-stream abstraction modelling one-pass access to
// disk-resident data, OR-folding for Hamming-LSH, column composition
// for the rule extensions of Section 7, and text/binary codecs.
//
// Rows are baskets (tuples, client IPs, documents); columns are
// attributes (items, URLs, words). C_i denotes the set of rows with a 1
// in column i; the density of column i is |C_i|/n.
package matrix

import (
	"fmt"
	"sort"
	"sync"
)

// Matrix is a sparse boolean matrix stored column-major: for each
// column, the sorted list of row indices containing a 1. A Matrix is
// immutable after construction and safe for concurrent readers.
type Matrix struct {
	rows int
	cols [][]int32

	rowMajorOnce sync.Once
	rowMajor     [][]int32
}

// New constructs a Matrix with the given row count and column lists.
// Each column must be a strictly increasing list of row indices in
// [0, rows). The column slices are retained, not copied.
func New(rows int, cols [][]int32) (*Matrix, error) {
	if rows < 0 {
		return nil, fmt.Errorf("matrix: negative row count %d", rows)
	}
	for c, col := range cols {
		for i, r := range col {
			if r < 0 || int(r) >= rows {
				return nil, fmt.Errorf("matrix: column %d row %d out of range [0,%d)", c, r, rows)
			}
			if i > 0 && col[i-1] >= r {
				return nil, fmt.Errorf("matrix: column %d not strictly increasing at position %d", c, i)
			}
		}
	}
	return &Matrix{rows: rows, cols: cols}, nil
}

// MustNew is New but panics on error; intended for tests and literals.
func MustNew(rows int, cols [][]int32) *Matrix {
	m, err := New(rows, cols)
	if err != nil {
		panic(err)
	}
	return m
}

// Builder accumulates 1-entries in any order and produces a Matrix.
type Builder struct {
	rows int
	cols [][]int32
}

// NewBuilder returns a Builder for a rows x cols matrix.
func NewBuilder(rows, cols int) *Builder {
	return &Builder{rows: rows, cols: make([][]int32, cols)}
}

// Set records a 1 at (row, col). Duplicate entries are permitted and
// collapse at Build time. Set panics on out-of-range coordinates.
func (b *Builder) Set(row, col int) {
	if row < 0 || row >= b.rows {
		panic(fmt.Sprintf("matrix: Set row %d out of range [0,%d)", row, b.rows))
	}
	if col < 0 || col >= len(b.cols) {
		panic(fmt.Sprintf("matrix: Set col %d out of range [0,%d)", col, len(b.cols)))
	}
	b.cols[col] = append(b.cols[col], int32(row))
}

// Build sorts and deduplicates the accumulated entries and returns the
// Matrix. The Builder must not be used afterwards.
func (b *Builder) Build() *Matrix {
	for c, col := range b.cols {
		sort.Slice(col, func(i, j int) bool { return col[i] < col[j] })
		b.cols[c] = dedupSorted(col)
	}
	m := &Matrix{rows: b.rows, cols: b.cols}
	b.cols = nil
	return m
}

func dedupSorted(s []int32) []int32 {
	if len(s) < 2 {
		return s
	}
	w := 1
	for i := 1; i < len(s); i++ {
		if s[i] != s[w-1] {
			s[w] = s[i]
			w++
		}
	}
	return s[:w]
}

// FromRows builds a Matrix from row-major data: rows[r] lists the
// column indices set in row r (in any order, duplicates allowed).
func FromRows(numCols int, rows [][]int32) (*Matrix, error) {
	b := NewBuilder(len(rows), numCols)
	for r, cs := range rows {
		for _, c := range cs {
			if c < 0 || int(c) >= numCols {
				return nil, fmt.Errorf("matrix: row %d column %d out of range [0,%d)", r, c, numCols)
			}
			b.cols[c] = append(b.cols[c], int32(r))
		}
	}
	return b.Build(), nil
}

// NumRows returns n, the number of rows.
func (m *Matrix) NumRows() int { return m.rows }

// NumCols returns the number of columns.
func (m *Matrix) NumCols() int { return len(m.cols) }

// Column returns the sorted row indices of column c. The returned slice
// must not be modified.
func (m *Matrix) Column(c int) []int32 { return m.cols[c] }

// ColumnSize returns |C_c|, the number of 1s in column c.
func (m *Matrix) ColumnSize(c int) int { return len(m.cols[c]) }

// Ones returns |M|, the total number of 1-entries.
func (m *Matrix) Ones() int {
	total := 0
	for _, col := range m.cols {
		total += len(col)
	}
	return total
}

// Density returns |C_c| / n for column c; 0 when the matrix has no rows.
func (m *Matrix) Density(c int) float64 {
	if m.rows == 0 {
		return 0
	}
	return float64(len(m.cols[c])) / float64(m.rows)
}

// IntersectSize returns |C_i ∩ C_j| by merging the two sorted columns.
func (m *Matrix) IntersectSize(i, j int) int {
	return intersectSortedSize(m.cols[i], m.cols[j])
}

// UnionSize returns |C_i ∪ C_j|.
func (m *Matrix) UnionSize(i, j int) int {
	return len(m.cols[i]) + len(m.cols[j]) - m.IntersectSize(i, j)
}

// Similarity returns the Jaccard similarity S(c_i, c_j) =
// |C_i ∩ C_j| / |C_i ∪ C_j|. Two empty columns have similarity 0.
func (m *Matrix) Similarity(i, j int) float64 {
	inter := m.IntersectSize(i, j)
	union := len(m.cols[i]) + len(m.cols[j]) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// Confidence returns Conf(c_i => c_j) = |C_i ∩ C_j| / |C_i|, the
// asymmetric measure of Section 1; 0 when C_i is empty.
func (m *Matrix) Confidence(i, j int) float64 {
	if len(m.cols[i]) == 0 {
		return 0
	}
	return float64(m.IntersectSize(i, j)) / float64(len(m.cols[i]))
}

// HammingDistance returns d_H(c_i, c_j), the number of rows on which
// the two columns differ. Lemma 3 relates it to similarity:
// S = (|C_i|+|C_j|-d_H) / (|C_i|+|C_j|+d_H).
func (m *Matrix) HammingDistance(i, j int) int {
	inter := m.IntersectSize(i, j)
	return len(m.cols[i]) + len(m.cols[j]) - 2*inter
}

// OrColumns returns the sorted row set of the induced column c_i ∨ c_j
// (Section 7). The result is freshly allocated.
func OrColumns(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// AndColumns returns the sorted row set of the induced column c_i ∧ c_j.
func AndColumns(a, b []int32) []int32 {
	var out []int32
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func intersectSortedSize(a, b []int32) int {
	// Galloping merge: when one column is much shorter, binary-search
	// the longer one. This mirrors the asymmetry of real data where
	// column sizes span orders of magnitude.
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	if len(b)/(len(a)+1) >= 8 {
		n := 0
		lo := 0
		for _, x := range a {
			lo += sort.Search(len(b)-lo, func(k int) bool { return b[lo+k] >= x })
			if lo < len(b) && b[lo] == x {
				n++
				lo++
			}
			if lo == len(b) {
				break
			}
		}
		return n
	}
	n := 0
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// WithOrColumn returns a new Matrix that shares this matrix's columns
// and appends the induced column c_i ∨ c_j at the end, returning its
// index. Used by the Section 7 extensions.
func (m *Matrix) WithOrColumn(i, j int) (*Matrix, int) {
	cols := make([][]int32, len(m.cols), len(m.cols)+1)
	copy(cols, m.cols)
	cols = append(cols, OrColumns(m.cols[i], m.cols[j]))
	return &Matrix{rows: m.rows, cols: cols}, len(cols) - 1
}
