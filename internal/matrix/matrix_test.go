package matrix

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"assocmine/internal/hashing"
)

// paperExample is the matrix of Example 1 in the paper:
//
//	c1 c2 c3
//	 1  1  0   r1
//	 1  1  0   r2
//	 0  1  1   r3
//	 0  0  1   r4
func paperExample() *Matrix {
	return MustNew(4, [][]int32{
		{0, 1},    // c1
		{0, 1, 2}, // c2
		{2, 3},    // c3
	})
}

func TestPaperExampleSimilarities(t *testing.T) {
	m := paperExample()
	cases := []struct {
		i, j int
		want float64
	}{
		{0, 1, 2.0 / 3.0},
		{0, 2, 0},
		{1, 2, 1.0 / 4.0},
	}
	for _, c := range cases {
		if got := m.Similarity(c.i, c.j); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("S(c%d,c%d) = %v, want %v", c.i+1, c.j+1, got, c.want)
		}
		if got := m.Similarity(c.j, c.i); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("S(c%d,c%d) = %v, want %v (symmetry)", c.j+1, c.i+1, got, c.want)
		}
	}
}

func TestConfidence(t *testing.T) {
	m := paperExample()
	// Conf(c1 => c2) = |C1∩C2|/|C1| = 2/2 = 1.
	if got := m.Confidence(0, 1); got != 1 {
		t.Errorf("Conf(c1=>c2) = %v, want 1", got)
	}
	// Conf(c2 => c1) = 2/3.
	if got := m.Confidence(1, 0); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("Conf(c2=>c1) = %v, want 2/3", got)
	}
}

func TestConfidenceEmptyAntecedent(t *testing.T) {
	m := MustNew(3, [][]int32{{}, {0, 1}})
	if got := m.Confidence(0, 1); got != 0 {
		t.Errorf("Conf with empty antecedent = %v, want 0", got)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(-1, nil); err == nil {
		t.Error("negative rows accepted")
	}
	if _, err := New(3, [][]int32{{0, 0}}); err == nil {
		t.Error("duplicate row indices accepted")
	}
	if _, err := New(3, [][]int32{{2, 1}}); err == nil {
		t.Error("unsorted column accepted")
	}
	if _, err := New(3, [][]int32{{3}}); err == nil {
		t.Error("out-of-range row accepted")
	}
	if _, err := New(0, [][]int32{{}}); err != nil {
		t.Errorf("empty matrix rejected: %v", err)
	}
}

func TestBuilderSortsAndDedups(t *testing.T) {
	b := NewBuilder(5, 2)
	b.Set(3, 0)
	b.Set(1, 0)
	b.Set(3, 0)
	b.Set(0, 1)
	m := b.Build()
	if got := m.Column(0); !reflect.DeepEqual(got, []int32{1, 3}) {
		t.Errorf("column 0 = %v, want [1 3]", got)
	}
	if got := m.Column(1); !reflect.DeepEqual(got, []int32{0}) {
		t.Errorf("column 1 = %v, want [0]", got)
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	b := NewBuilder(2, 2)
	for _, fn := range []func(){
		func() { b.Set(2, 0) },
		func() { b.Set(-1, 0) },
		func() { b.Set(0, 2) },
		func() { b.Set(0, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range Set did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestFromRows(t *testing.T) {
	m, err := FromRows(3, [][]int32{{0, 1}, {1}, {2, 0}, {}})
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows() != 4 || m.NumCols() != 3 {
		t.Fatalf("dimensions %dx%d, want 4x3", m.NumRows(), m.NumCols())
	}
	if !reflect.DeepEqual(m.Column(0), []int32{0, 2}) {
		t.Errorf("column 0 = %v", m.Column(0))
	}
	if _, err := FromRows(2, [][]int32{{2}}); err == nil {
		t.Error("out-of-range column accepted")
	}
}

func TestOnesAndDensity(t *testing.T) {
	m := paperExample()
	if m.Ones() != 7 {
		t.Errorf("Ones = %d, want 7", m.Ones())
	}
	if got := m.Density(1); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("Density(c2) = %v, want 0.75", got)
	}
	empty := MustNew(0, [][]int32{{}})
	if empty.Density(0) != 0 {
		t.Error("density of column in empty matrix should be 0")
	}
}

func TestHammingDistanceLemma3(t *testing.T) {
	// Lemma 3: S = (|Ci|+|Cj|-dH) / (|Ci|+|Cj|+dH).
	m := paperExample()
	for i := 0; i < m.NumCols(); i++ {
		for j := 0; j < m.NumCols(); j++ {
			dh := m.HammingDistance(i, j)
			rho := float64(m.ColumnSize(i) + m.ColumnSize(j))
			want := m.Similarity(i, j)
			var got float64
			if rho+float64(dh) > 0 {
				got = (rho - float64(dh)) / (rho + float64(dh))
			}
			if math.Abs(got-want) > 1e-12 {
				t.Errorf("Lemma 3 violated for (%d,%d): %v vs %v", i, j, got, want)
			}
		}
	}
}

func TestOrAndColumns(t *testing.T) {
	a := []int32{0, 2, 5}
	b := []int32{2, 3, 5, 7}
	if got := OrColumns(a, b); !reflect.DeepEqual(got, []int32{0, 2, 3, 5, 7}) {
		t.Errorf("OrColumns = %v", got)
	}
	if got := AndColumns(a, b); !reflect.DeepEqual(got, []int32{2, 5}) {
		t.Errorf("AndColumns = %v", got)
	}
	if got := OrColumns(nil, b); !reflect.DeepEqual(got, b) {
		t.Errorf("OrColumns(nil,b) = %v", got)
	}
	if got := AndColumns(a, nil); got != nil {
		t.Errorf("AndColumns(a,nil) = %v, want nil", got)
	}
}

func TestWithOrColumn(t *testing.T) {
	m := paperExample()
	m2, idx := m.WithOrColumn(0, 2)
	if idx != 3 || m2.NumCols() != 4 {
		t.Fatalf("idx=%d cols=%d", idx, m2.NumCols())
	}
	if !reflect.DeepEqual(m2.Column(3), []int32{0, 1, 2, 3}) {
		t.Errorf("or column = %v", m2.Column(3))
	}
	// Original unchanged.
	if m.NumCols() != 3 {
		t.Error("WithOrColumn mutated the receiver")
	}
}

func TestIntersectGalloping(t *testing.T) {
	// Force the galloping path: short vs very long column.
	long := make([]int32, 1000)
	for i := range long {
		long[i] = int32(2 * i)
	}
	short := []int32{0, 3, 500, 1000, 1998}
	m := MustNew(2000, [][]int32{short, long})
	want := 0
	set := map[int32]bool{}
	for _, v := range long {
		set[v] = true
	}
	for _, v := range short {
		if set[v] {
			want++
		}
	}
	if got := m.IntersectSize(0, 1); got != want {
		t.Errorf("galloping intersect = %d, want %d", got, want)
	}
	if got := m.IntersectSize(1, 0); got != want {
		t.Errorf("galloping intersect (swapped) = %d, want %d", got, want)
	}
}

func TestStreamRoundTrip(t *testing.T) {
	m := paperExample()
	got, err := Collect(m.Stream())
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(m, got) {
		t.Error("Collect(Stream()) != original")
	}
}

func TestStreamRowsSorted(t *testing.T) {
	rng := hashing.NewSplitMix64(1)
	m := randomMatrix(rng, 200, 30, 0.1)
	err := m.Stream().Scan(func(row int, cols []int32) error {
		for i := 1; i < len(cols); i++ {
			if cols[i-1] >= cols[i] {
				t.Fatalf("row %d not strictly increasing: %v", row, cols)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCountingSource(t *testing.T) {
	m := paperExample()
	cs := &CountingSource{Src: m.Stream()}
	for p := 0; p < 3; p++ {
		if err := cs.Scan(func(int, []int32) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	if cs.Passes != 3 {
		t.Errorf("Passes = %d, want 3", cs.Passes)
	}
	if cs.Rows != 12 {
		t.Errorf("Rows = %d, want 12", cs.Rows)
	}
}

func TestSliceSource(t *testing.T) {
	s := &SliceSource{Cols: 3, Rows: [][]int32{{0, 2}, {}, {1}}}
	m, err := Collect(s)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumRows() != 3 || m.NumCols() != 3 {
		t.Fatalf("dims %dx%d", m.NumRows(), m.NumCols())
	}
	if !reflect.DeepEqual(m.Column(2), []int32{0}) {
		t.Errorf("column 2 = %v", m.Column(2))
	}
}

func TestFoldRowsPreservesColumns(t *testing.T) {
	rng := hashing.NewSplitMix64(2)
	m := randomMatrix(rng, 128, 20, 0.05)
	f := m.FoldRows(hashing.NewSplitMix64(3))
	if f.NumRows() != 64 {
		t.Fatalf("folded rows = %d, want 64", f.NumRows())
	}
	if f.NumCols() != m.NumCols() {
		t.Fatalf("folded cols = %d", f.NumCols())
	}
	for c := 0; c < m.NumCols(); c++ {
		if f.ColumnSize(c) > m.ColumnSize(c) {
			t.Errorf("column %d grew after folding: %d > %d", c, f.ColumnSize(c), m.ColumnSize(c))
		}
		col := f.Column(c)
		for i := 1; i < len(col); i++ {
			if col[i-1] >= col[i] {
				t.Fatalf("folded column %d not sorted: %v", c, col)
			}
		}
	}
}

func TestFoldRowsOddCount(t *testing.T) {
	m := MustNew(5, [][]int32{{0, 1, 2, 3, 4}})
	f := m.FoldRows(hashing.NewSplitMix64(4))
	if f.NumRows() != 3 {
		t.Fatalf("folded rows = %d, want 3", f.NumRows())
	}
	// A full column stays full.
	if f.ColumnSize(0) != 3 {
		t.Errorf("full column folded to %d of 3 rows", f.ColumnSize(0))
	}
}

func TestFoldRowsIdentityOnTiny(t *testing.T) {
	for _, rows := range []int{0, 1} {
		cols := [][]int32{{}}
		if rows == 1 {
			cols = [][]int32{{0}}
		}
		m := MustNew(rows, cols)
		f := m.FoldRows(hashing.NewSplitMix64(5))
		if f.NumRows() != rows {
			t.Errorf("fold changed %d-row matrix to %d rows", rows, f.NumRows())
		}
	}
}

func TestFoldRowsORSemantics(t *testing.T) {
	// After folding, a column contains folded-row p iff at least one of
	// p's source rows was set. Verify against an explicit simulation by
	// checking density never decreases as a *fraction* beyond halving:
	// a column with all rows set stays all set.
	m := MustNew(8, [][]int32{{0, 1, 2, 3, 4, 5, 6, 7}, {0}, {}})
	f := m.FoldRows(hashing.NewSplitMix64(6))
	if f.ColumnSize(0) != 4 {
		t.Errorf("full column = %d folded rows, want 4", f.ColumnSize(0))
	}
	if f.ColumnSize(1) != 1 {
		t.Errorf("singleton column = %d folded rows, want 1", f.ColumnSize(1))
	}
	if f.ColumnSize(2) != 0 {
		t.Errorf("empty column = %d folded rows, want 0", f.ColumnSize(2))
	}
}

func TestFoldLadder(t *testing.T) {
	rng := hashing.NewSplitMix64(7)
	m := randomMatrix(rng, 256, 10, 0.02)
	ladder := m.FoldLadder(hashing.NewSplitMix64(8), 20)
	if ladder[0] != m {
		t.Error("ladder[0] is not the source matrix")
	}
	for i := 1; i < len(ladder); i++ {
		want := (ladder[i-1].NumRows() + 1) / 2
		if ladder[i].NumRows() != want {
			t.Errorf("ladder[%d] rows = %d, want %d", i, ladder[i].NumRows(), want)
		}
	}
	if last := ladder[len(ladder)-1]; last.NumRows() > 2 && len(ladder) < 20 {
		t.Errorf("ladder stopped early at %d rows with %d levels", last.NumRows(), len(ladder))
	}
}

func TestQuickSimilarityProperties(t *testing.T) {
	rng := hashing.NewSplitMix64(10)
	f := func(seed uint64) bool {
		m := randomMatrix(hashing.NewSplitMix64(seed), 50, 8, 0.2)
		for i := 0; i < m.NumCols(); i++ {
			for j := 0; j < m.NumCols(); j++ {
				s := m.Similarity(i, j)
				if s < 0 || s > 1 {
					return false
				}
				if s != m.Similarity(j, i) {
					return false
				}
				if i == j && m.ColumnSize(i) > 0 && s != 1 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 20, Values: nil}
	_ = rng
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOrColumnsIsUnion(t *testing.T) {
	f := func(aRaw, bRaw []uint8) bool {
		a := sortedUnique(aRaw)
		b := sortedUnique(bRaw)
		or := OrColumns(a, b)
		set := map[int32]bool{}
		for _, v := range a {
			set[v] = true
		}
		for _, v := range b {
			set[v] = true
		}
		if len(or) != len(set) {
			return false
		}
		for i, v := range or {
			if !set[v] {
				return false
			}
			if i > 0 && or[i-1] >= v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAndColumnsIsIntersection(t *testing.T) {
	f := func(aRaw, bRaw []uint8) bool {
		a := sortedUnique(aRaw)
		b := sortedUnique(bRaw)
		and := AndColumns(a, b)
		inA := map[int32]bool{}
		for _, v := range a {
			inA[v] = true
		}
		want := 0
		for _, v := range b {
			if inA[v] {
				want++
			}
		}
		if len(and) != want {
			return false
		}
		for _, v := range and {
			if !inA[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// randomMatrix builds a rows x cols matrix where each entry is 1 with
// probability density.
func randomMatrix(rng *hashing.SplitMix64, rows, cols int, density float64) *Matrix {
	b := NewBuilder(rows, cols)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			if rng.Float64() < density {
				b.Set(r, c)
			}
		}
	}
	return b.Build()
}

func sortedUnique(raw []uint8) []int32 {
	seen := map[int32]bool{}
	for _, v := range raw {
		seen[int32(v)] = true
	}
	out := make([]int32, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	insertionSortInt32(out)
	return out
}

func matricesEqual(a, b *Matrix) bool {
	if a.NumRows() != b.NumRows() || a.NumCols() != b.NumCols() {
		return false
	}
	for c := 0; c < a.NumCols(); c++ {
		ca, cb := a.Column(c), b.Column(c)
		if len(ca) != len(cb) {
			return false
		}
		for i := range ca {
			if ca[i] != cb[i] {
				return false
			}
		}
	}
	return true
}
