package matrix

// ProgressSource wraps a RowSource and reports scan progress: Tick is
// invoked with (rows delivered, total rows) every Every rows and once
// more when the pass completes. It deliberately does not implement
// ConcurrentSource — per-scan progress state makes overlapping Scans
// meaningless — so parallel consumers fall back to their single-reader
// strategies, which is exactly where a progress stream is wanted.
type ProgressSource struct {
	Src RowSource
	// Every is the reporting stride in rows; 0 means a default of 4096.
	Every int
	// Tick receives (done, total); nil disables reporting.
	Tick func(done, total int64)
}

// NumRows implements RowSource.
func (p *ProgressSource) NumRows() int { return p.Src.NumRows() }

// NumCols implements RowSource.
func (p *ProgressSource) NumCols() int { return p.Src.NumCols() }

// Scan implements RowSource, forwarding each row before counting it.
func (p *ProgressSource) Scan(fn func(row int, cols []int32) error) error {
	every := p.Every
	if every <= 0 {
		every = 4096
	}
	total := int64(p.Src.NumRows())
	var done int64
	err := p.Src.Scan(func(row int, cols []int32) error {
		if err := fn(row, cols); err != nil {
			return err
		}
		done++
		if p.Tick != nil && done%int64(every) == 0 {
			p.Tick(done, total)
		}
		return nil
	})
	if err == nil && p.Tick != nil {
		p.Tick(done, total)
	}
	return err
}
