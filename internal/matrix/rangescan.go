package matrix

import (
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
)

// ScanRange implements RangeScanner with one sequential pass that
// skip-decodes the prefix rows, delivers rows in [from, to) with their
// original ids, and stops without touching the tail. Skipped rows pay
// only framing cost: ".arows" prefixes are crossed by counting varint
// terminator bytes in the buffered window, ".carows" bitmap rows are
// crossed with a bulk discard and Rice rows with a value-free code
// walk. Validation of skipped rows is structural only (the stream
// stays framed); delivered rows are validated exactly like Scan.
// Bounds are clamped to [0, NumRows()]. Byte accounting and *FileError
// offsets behave like Scan.
func (fs *FileSource) ScanRange(from, to int, fn func(row int, cols []int32) error) error {
	if from < 0 {
		from = 0
	}
	if to > fs.rows {
		to = fs.rows
	}
	if from >= to {
		return nil
	}
	f, err := fs.open()
	if err != nil {
		return err
	}
	defer f.Close()
	tr := fs.reader(f, true)
	fail := func(err error) error {
		return &FileError{Path: fs.path, Offset: tr.off, Err: err}
	}
	switch fs.format {
	case formatARows:
		return scanRangeRowBinary(tr, fs.rows, fs.cols, from, to, fail, fn)
	case formatCARows:
		return scanRangeRowCompressed(tr, fs.rows, fs.cols, from, to, fail, &fs.logicalBytes, fn)
	}
	return fs.scanRangeText(tr, from, to, fail, fn)
}

// scanRangeRowBinary crosses rows [0, from) of an ".arows" stream by
// counting varint terminators, then decodes rows [from, to) with the
// same validation as scanRowBinary and stops.
func scanRangeRowBinary(tr *trackedReader, wantRows, wantCols, from, to int, wrap func(error) error, fn func(int, []int32) error) error {
	rows, cols, err := readRowBinaryHeader(tr)
	if err != nil {
		return wrap(err)
	}
	if rows != wantRows || cols != wantCols {
		return wrap(fmt.Errorf("row-binary dimensions changed on disk: %dx%d", rows, cols))
	}
	for row := 0; row < from; row++ {
		length, err := binary.ReadUvarint(tr)
		if err != nil {
			return wrap(fmt.Errorf("row %d length: %w", row, err))
		}
		if length > uint64(cols) {
			return wrap(fmt.Errorf("row %d length %d exceeds column count", row, length))
		}
		if err := tr.skipUvarints(int(length)); err != nil {
			return wrap(fmt.Errorf("row %d: %w", row, err))
		}
	}
	var buf []int32
	for row := from; row < to; row++ {
		length, err := binary.ReadUvarint(tr)
		if err != nil {
			return wrap(fmt.Errorf("row %d length: %w", row, err))
		}
		if length > uint64(cols) {
			return wrap(fmt.Errorf("row %d length %d exceeds column count", row, length))
		}
		buf = buf[:0]
		prev := int32(0)
		for i := uint64(0); i < length; i++ {
			d, err := binary.ReadUvarint(tr)
			if err != nil {
				return wrap(fmt.Errorf("row %d entry %d: %w", row, i, err))
			}
			var v int32
			if i == 0 {
				v = int32(d)
			} else {
				v = prev + int32(d)
			}
			if v < 0 || int(v) >= cols || (i > 0 && v <= prev) {
				return wrap(fmt.Errorf("row %d entry %d out of range", row, i))
			}
			buf = append(buf, v)
			prev = v
		}
		if err := fn(row, buf); err != nil {
			return err
		}
	}
	return nil
}

// scanRangeRowCompressed crosses rows [0, from) of a ".carows" stream
// with skipRow (bulk-discarded bitmaps, value-free Rice walks), then
// decodes rows [from, to) with the same validation as scanRowCompressed
// and stops. Logical bytes account only what was actually decoded.
func scanRangeRowCompressed(tr *trackedReader, wantRows, wantCols, from, to int, wrap func(error) error, logical *atomic.Int64, fn func(int, []int32) error) error {
	rows, cols, err := readRowCompressedHeader(tr)
	if err != nil {
		return wrap(err)
	}
	if rows != wantRows || cols != wantCols {
		return wrap(fmt.Errorf("compressed-row dimensions changed on disk: %dx%d", rows, cols))
	}
	d := newCompressedRowDecoder(tr, cols)
	d.logical = rowHeaderLogicalBytes(rows, cols)
	for row := 0; row < from; row++ {
		if err := d.skipRow(row, tr); err != nil {
			return wrap(err)
		}
	}
	var buf []int32
	for row := from; row < to; row++ {
		buf = buf[:0]
		if err := d.decodeRow(row, func(c int32) { buf = append(buf, c) }); err != nil {
			return wrap(err)
		}
		if err := fn(row, buf); err != nil {
			return err
		}
	}
	if logical != nil {
		logical.Add(d.logical)
	}
	return nil
}

// skipRow crosses one row without emitting or validating its postings:
// bitmap rows are discarded wholesale through tr, Rice rows are walked
// code by code without range checks. Structural framing (header shape,
// count bound, byte alignment) is still enforced so a corrupt prefix
// cannot silently desynchronise the rows that will be delivered.
func (d *compressedRowDecoder) skipRow(row int, tr *trackedReader) error {
	h, err := binary.ReadUvarint(d.r)
	if err != nil {
		return fmt.Errorf("row %d header: %w", row, err)
	}
	if h == 0 {
		return nil
	}
	count := h >> 6
	mode := (h >> 5) & 1
	k := uint(h & 31)
	if count == 0 || count > uint64(d.cols) {
		return fmt.Errorf("row %d count %d out of range", row, count)
	}
	if mode == 1 {
		if k != 0 {
			return fmt.Errorf("row %d bitmap header has rice parameter %d", row, k)
		}
		if err := tr.discard(int64((d.cols + 7) / 8)); err != nil {
			return fmt.Errorf("row %d bitmap: %w", row, err)
		}
		return nil
	}
	for i := uint64(0); i < count; i++ {
		if _, err := d.pr.ReadRice(k); err != nil {
			return fmt.Errorf("row %d entry %d: %w", row, i, err)
		}
	}
	d.pr.Align() // rows are byte-aligned
	return nil
}

// scanRangeText crosses the header and prefix lines of a text stream,
// then decodes rows [from, to) with the same validation as Scan.
func (fs *FileSource) scanRangeText(tr *trackedReader, from, to int, wrap func(error) error, fn func(int, []int32) error) error {
	for i := 0; i < 2; i++ {
		if _, err := readLine(tr); err != nil {
			return wrap(fmt.Errorf("reading header: %w", err))
		}
	}
	for row := 0; row < from; row++ {
		if _, err := readLine(tr); err != nil {
			return wrap(fmt.Errorf("row %d: %w", row, err))
		}
	}
	var buf []int32
	for row := from; row < to; row++ {
		line, err := readLine(tr)
		if err != nil {
			return wrap(fmt.Errorf("row %d: %w", row, err))
		}
		buf = buf[:0]
		for _, field := range strings.Fields(line) {
			c, err := strconv.Atoi(field)
			if err != nil {
				return wrap(fmt.Errorf("row %d: bad column %q", row, field))
			}
			if c < 0 || c >= fs.cols {
				return wrap(fmt.Errorf("row %d: column %d out of range", row, c))
			}
			buf = append(buf, int32(c))
		}
		if !sort.SliceIsSorted(buf, func(a, b int) bool { return buf[a] < buf[b] }) {
			sort.Slice(buf, func(a, b int) bool { return buf[a] < buf[b] })
		}
		if err := fn(row, buf); err != nil {
			return err
		}
	}
	return nil
}

// skipUvarints crosses n varints by counting terminator bytes (high
// bit clear) in the buffered window — no decoding, no per-byte calls.
func (t *trackedReader) skipUvarints(n int) error {
	for n > 0 {
		buf, err := t.br.Peek(512)
		if len(buf) == 0 {
			if err == nil || err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
		i := 0
		for i < len(buf) && n > 0 {
			if buf[i] < 0x80 {
				n--
			}
			i++
		}
		t.br.Discard(i)
		t.off += int64(i)
	}
	return nil
}

// discard crosses n bytes of the buffered stream.
func (t *trackedReader) discard(n int64) error {
	for n > 0 {
		chunk := n
		if chunk > 1<<16 {
			chunk = 1 << 16
		}
		d, err := t.br.Discard(int(chunk))
		t.off += int64(d)
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return err
		}
		n -= int64(d)
	}
	return nil
}
