package matrix

import (
	"fmt"
	"path/filepath"
	"testing"

	"assocmine/internal/hashing"
)

// collectRange gathers (row, cols) pairs delivered by a scan for
// comparison.
type scannedRow struct {
	row  int
	cols []int32
}

func collectScanRange(t *testing.T, src *FileSource, from, to int) []scannedRow {
	t.Helper()
	var got []scannedRow
	err := src.ScanRange(from, to, func(row int, cols []int32) error {
		got = append(got, scannedRow{row, append([]int32(nil), cols...)})
		return nil
	})
	if err != nil {
		t.Fatalf("ScanRange(%d, %d): %v", from, to, err)
	}
	return got
}

func collectFiltered(t *testing.T, src RowSource, from, to int) []scannedRow {
	t.Helper()
	var got []scannedRow
	err := src.Scan(func(row int, cols []int32) error {
		if row >= from && row < to {
			got = append(got, scannedRow{row, append([]int32(nil), cols...)})
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return got
}

func rowsEqual(a, b []scannedRow) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].row != b[i].row || len(a[i].cols) != len(b[i].cols) {
			return false
		}
		for j := range a[i].cols {
			if a[i].cols[j] != b[i].cols[j] {
				return false
			}
		}
	}
	return true
}

// TestScanRangeFormats proves ScanRange delivers exactly the rows a
// filtered full Scan would, with original ids, across all three file
// formats and a spread of ranges including empty and clamped ones.
func TestScanRangeFormats(t *testing.T) {
	rng := hashing.NewSplitMix64(7)
	m := randomMatrix(rng, 211, 40, 0.12)
	dir := t.TempDir()
	paths := map[string]string{
		"text":   filepath.Join(dir, "d.txt"),
		"arows":  filepath.Join(dir, "d.arows"),
		"carows": filepath.Join(dir, "d.carows"),
	}
	if err := SaveFile(paths["text"], m); err != nil {
		t.Fatal(err)
	}
	if err := SaveRowBinary(paths["arows"], m.Stream()); err != nil {
		t.Fatal(err)
	}
	if err := SaveRowCompressed(paths["carows"], m.Stream()); err != nil {
		t.Fatal(err)
	}
	ranges := [][2]int{
		{0, 211}, {0, 1}, {210, 211}, {50, 130}, {0, 0}, {97, 97},
		{-5, 10}, {200, 999}, {211, 211}, {1, 210},
	}
	for name, path := range paths {
		fs, err := OpenFileSource(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, r := range ranges {
			t.Run(fmt.Sprintf("%s/%d-%d", name, r[0], r[1]), func(t *testing.T) {
				want := collectFiltered(t, fs, r[0], r[1])
				got := collectScanRange(t, fs, r[0], r[1])
				if !rowsEqual(got, want) {
					t.Errorf("ScanRange(%d, %d) = %d rows, want %d (or content mismatch)",
						r[0], r[1], len(got), len(want))
				}
			})
		}
	}
}

// TestScanRangeDenseBitmapRows exercises the ".carows" bitmap fallback
// skip path: rows dense enough that the writer chooses mode 1.
func TestScanRangeDenseBitmapRows(t *testing.T) {
	rng := hashing.NewSplitMix64(11)
	m := randomMatrix(rng, 64, 96, 0.7)
	path := filepath.Join(t.TempDir(), "dense.carows")
	if err := SaveRowCompressed(path, m.Stream()); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	want := collectFiltered(t, fs, 30, 50)
	got := collectScanRange(t, fs, 30, 50)
	if !rowsEqual(got, want) {
		t.Error("dense bitmap skip path mismatch")
	}
}

// TestRangeSource proves the generic wrapper filters a plain RowSource
// (early-stopping) and routes RangeScanner sources to their skip path,
// both preserving original row ids.
func TestRangeSource(t *testing.T) {
	src := &SliceSource{Cols: 10, Rows: [][]int32{
		{0, 3}, {1}, {2, 5, 9}, {}, {4}, {0, 9},
	}}
	rs := &RangeSource{Src: src, From: 2, To: 5}
	if rs.NumRows() != 6 || rs.NumCols() != 10 {
		t.Fatalf("dims %dx%d", rs.NumRows(), rs.NumCols())
	}
	var ids []int
	err := rs.Scan(func(row int, cols []int32) error {
		ids = append(ids, row)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 || ids[0] != 2 || ids[1] != 3 || ids[2] != 4 {
		t.Errorf("ids = %v, want [2 3 4]", ids)
	}

	rng := hashing.NewSplitMix64(3)
	m := randomMatrix(rng, 80, 25, 0.15)
	path := filepath.Join(t.TempDir(), "d.arows")
	if err := SaveRowBinary(path, m.Stream()); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	want := collectFiltered(t, fs, 20, 60)
	var got []scannedRow
	err = (&RangeSource{Src: fs, From: 20, To: 60}).Scan(func(row int, cols []int32) error {
		got = append(got, scannedRow{row, append([]int32(nil), cols...)})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rowsEqual(got, want) {
		t.Error("RangeSource over FileSource mismatch")
	}
}
