package matrix

import "sync"

// Shard is a bounded, copied block of consecutive rows from a single
// sequential pass: rows[i] is the row id of the i-th row in the shard
// and its columns span Cols[Offs[i]:Offs[i+1]]. Shards are the unit of
// work the out-of-core path hands to parallel consumers — small enough
// that a handful of in-flight shards keeps memory bounded regardless of
// the dataset size, large enough that channel traffic never dominates.
//
// A Shard delivered through FanOutShards is shared read-only by every
// consumer; consumers must not mutate it.
type Shard struct {
	Rows []int32 // row ids, in scan order
	Offs []int32 // len(Rows)+1 offsets into Cols
	Cols []int32 // concatenated sorted column indices
}

// Len returns the number of rows in the shard.
func (s *Shard) Len() int { return len(s.Rows) }

// Row returns the id and column indices of the i-th row in the shard.
func (s *Shard) Row(i int) (int32, []int32) {
	return s.Rows[i], s.Cols[s.Offs[i]:s.Offs[i+1]]
}

// Default shard bounds: a shard holds at most DefaultShardRows rows and
// DefaultShardCols column entries, whichever fills first (≈32 KiB of
// column data — comfortably cache-resident, and at most a few shards
// are ever in flight).
const (
	DefaultShardRows = 512
	DefaultShardCols = 8192
)

// ScanShards performs one sequential Scan of src, packing rows into
// bounded shards and invoking fn once per shard in row order. maxRows
// and maxCols bound the shard size; values <= 0 select the defaults.
// Each shard is freshly allocated, so fn may retain or forward it.
// Returns the number of shards delivered.
func ScanShards(src RowSource, maxRows, maxCols int, fn func(*Shard) error) (int64, error) {
	if maxRows <= 0 {
		maxRows = DefaultShardRows
	}
	if maxCols <= 0 {
		maxCols = DefaultShardCols
	}
	var shards int64
	newShard := func() *Shard {
		return &Shard{
			Rows: make([]int32, 0, maxRows),
			Offs: append(make([]int32, 0, maxRows+1), 0),
			Cols: make([]int32, 0, maxCols),
		}
	}
	cur := newShard()
	flush := func() error {
		if len(cur.Rows) == 0 {
			return nil
		}
		shards++
		err := fn(cur)
		cur = newShard()
		return err
	}
	err := src.Scan(func(row int, cols []int32) error {
		cur.Rows = append(cur.Rows, int32(row))
		cur.Cols = append(cur.Cols, cols...)
		cur.Offs = append(cur.Offs, int32(len(cur.Cols)))
		if len(cur.Rows) >= maxRows || len(cur.Cols) >= maxCols {
			return flush()
		}
		return nil
	})
	if err != nil {
		return shards, err
	}
	if err := flush(); err != nil {
		return shards, err
	}
	return shards, nil
}

// fanOutDepth is the per-consumer channel buffer: deep enough to keep
// consumers busy while the reader decodes the next shard, shallow
// enough that in-flight shards stay a constant-memory affair.
const fanOutDepth = 4

// FanOutShards performs ONE sequential Scan of src — the single pass
// the disk-resident setting allows — broadcasting every shard to each
// consumer, which runs in its own goroutine on its own channel. It is
// the delivery mechanism shared by all streamed parallel kernels:
// signature folding, exact verification, and the budgeted spill pass.
// FanOutShards returns once the scan is finished and every consumer has
// drained its channel, reporting the number of shards broadcast.
func FanOutShards(src RowSource, maxRows, maxCols int, consumers []func(<-chan *Shard)) (int64, error) {
	chans := make([]chan *Shard, len(consumers))
	var wg sync.WaitGroup
	for i, consume := range consumers {
		chans[i] = make(chan *Shard, fanOutDepth)
		wg.Add(1)
		go func(consume func(<-chan *Shard), ch <-chan *Shard) {
			defer wg.Done()
			consume(ch)
		}(consume, chans[i])
	}
	shards, err := ScanShards(src, maxRows, maxCols, func(sh *Shard) error {
		for _, ch := range chans {
			ch <- sh
		}
		return nil
	})
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	return shards, err
}

// DistributeShards performs ONE sequential Scan of src, dealing shard i
// to consumer i%len(consumers) — a deterministic round-robin partition
// of the row range, as opposed to FanOutShards' broadcast. It is the
// delivery mechanism of the merge-based streamed signature drivers:
// each consumer folds its disjoint subset of rows into a private
// accumulator and the caller merges the accumulators afterwards, which
// is exact because the sketch folds are mergeable (pointwise min /
// bottom-k union). Each consumer sees its shards in scan order.
// DistributeShards returns once the scan is finished and every consumer
// has drained its channel, reporting the number of shards dealt.
func DistributeShards(src RowSource, maxRows, maxCols int, consumers []func(<-chan *Shard)) (int64, error) {
	chans := make([]chan *Shard, len(consumers))
	var wg sync.WaitGroup
	for i, consume := range consumers {
		chans[i] = make(chan *Shard, fanOutDepth)
		wg.Add(1)
		go func(consume func(<-chan *Shard), ch <-chan *Shard) {
			defer wg.Done()
			consume(ch)
		}(consume, chans[i])
	}
	next := 0
	shards, err := ScanShards(src, maxRows, maxCols, func(sh *Shard) error {
		chans[next] <- sh
		next = (next + 1) % len(chans)
		return nil
	})
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	return shards, err
}
