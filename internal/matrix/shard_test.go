package matrix

import (
	"errors"
	"testing"

	"assocmine/internal/testutil"
)

func shardFixture(rows, colsPerRow int) *SliceSource {
	out := make([][]int32, rows)
	for r := range out {
		row := make([]int32, colsPerRow)
		for i := range row {
			row[i] = int32((r + i) % 50)
		}
		for i := 1; i < len(row); i++ { // keep sorted, dedup by construction
			if row[i] <= row[i-1] {
				row[i] = row[i-1] + 1
			}
		}
		out[r] = row
	}
	return &SliceSource{Cols: 100, Rows: out}
}

// TestScanShardsReassembles: concatenating shard rows reproduces the
// source scan exactly, shards respect the row bound, and the shard
// count is what the bounds predict.
func TestScanShardsReassembles(t *testing.T) {
	src := shardFixture(137, 3)
	var rows []int32
	var cols [][]int32
	shards, err := ScanShards(src, 16, 0, func(sh *Shard) error {
		if sh.Len() == 0 || sh.Len() > 16 {
			t.Fatalf("shard with %d rows, bound 16", sh.Len())
		}
		for i := 0; i < sh.Len(); i++ {
			r, cs := sh.Row(i)
			rows = append(rows, r)
			cols = append(cols, append([]int32(nil), cs...))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64((137 + 15) / 16); shards != want {
		t.Errorf("shards = %d, want %d", shards, want)
	}
	if len(rows) != 137 {
		t.Fatalf("reassembled %d rows, want 137", len(rows))
	}
	for r := range rows {
		if rows[r] != int32(r) {
			t.Fatalf("row %d has id %d", r, rows[r])
		}
		want := src.Rows[r]
		if len(cols[r]) != len(want) {
			t.Fatalf("row %d has %d cols, want %d", r, len(cols[r]), len(want))
		}
		for i := range want {
			if cols[r][i] != want[i] {
				t.Fatalf("row %d col %d = %d, want %d", r, i, cols[r][i], want[i])
			}
		}
	}
}

// TestScanShardsColBound: the column bound flushes shards early.
func TestScanShardsColBound(t *testing.T) {
	src := shardFixture(64, 8)
	shards, err := ScanShards(src, 0, 16, func(sh *Shard) error {
		if sh.Len() > 2 {
			t.Fatalf("shard with %d rows despite 16-col bound on 8-col rows", sh.Len())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if shards != 32 {
		t.Errorf("shards = %d, want 32", shards)
	}
}

// TestScanShardsError: fn errors abort the scan and propagate.
func TestScanShardsError(t *testing.T) {
	src := shardFixture(64, 4)
	boom := errors.New("boom")
	n := 0
	_, err := ScanShards(src, 8, 0, func(*Shard) error {
		n++
		if n == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n != 2 {
		t.Fatalf("fn ran %d times after error, want 2", n)
	}
}

// TestFanOutShards: every consumer sees the complete row stream in
// order, and the reported shard count matches a direct ScanShards.
func TestFanOutShards(t *testing.T) {
	testutil.CheckGoroutines(t)
	src := shardFixture(211, 5)
	const workers = 4
	var totals [workers]int64
	var rowSums [workers]int64
	consumers := make([]func(<-chan *Shard), workers)
	for w := 0; w < workers; w++ {
		w := w
		consumers[w] = func(ch <-chan *Shard) {
			last := int32(-1)
			for sh := range ch {
				for i := 0; i < sh.Len(); i++ {
					r, cs := sh.Row(i)
					if r != last+1 {
						t.Errorf("worker %d: row %d after %d", w, r, last)
					}
					last = r
					totals[w]++
					for _, c := range cs {
						rowSums[w] += int64(c)
					}
				}
			}
		}
	}
	shards, err := FanOutShards(src, 32, 0, consumers)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := ScanShards(src, 32, 0, func(*Shard) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if shards != direct {
		t.Errorf("fan-out shards = %d, direct = %d", shards, direct)
	}
	for w := 1; w < workers; w++ {
		if totals[w] != totals[0] || rowSums[w] != rowSums[0] {
			t.Errorf("worker %d saw %d rows (sum %d), worker 0 saw %d (sum %d)",
				w, totals[w], rowSums[w], totals[0], rowSums[0])
		}
	}
	if totals[0] != 211 {
		t.Errorf("consumers saw %d rows, want 211", totals[0])
	}
}

// TestDistributeShards: consumers partition the shard stream — every
// row is seen exactly once across all consumers, shards land
// round-robin, each consumer sees its shards in scan order, and the
// reported count matches a direct ScanShards.
func TestDistributeShards(t *testing.T) {
	testutil.CheckGoroutines(t)
	src := shardFixture(211, 5)
	const workers = 4
	seen := make([][]int32, workers)
	shardsPer := make([]int64, workers)
	consumers := make([]func(<-chan *Shard), workers)
	for w := 0; w < workers; w++ {
		w := w
		consumers[w] = func(ch <-chan *Shard) {
			last := int32(-1)
			for sh := range ch {
				shardsPer[w]++
				for i := 0; i < sh.Len(); i++ {
					r, _ := sh.Row(i)
					if r <= last {
						t.Errorf("worker %d: row %d after %d, want increasing", w, r, last)
					}
					last = r
					seen[w] = append(seen[w], r)
				}
			}
		}
	}
	shards, err := DistributeShards(src, 16, 0, consumers)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := ScanShards(src, 16, 0, func(*Shard) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if shards != direct {
		t.Errorf("distribute shards = %d, direct = %d", shards, direct)
	}
	var perWorker int64
	got := make([]bool, 211)
	for w := 0; w < workers; w++ {
		perWorker += shardsPer[w]
		want := (direct + int64(workers) - 1 - int64(w)) / int64(workers)
		if shardsPer[w] != want {
			t.Errorf("worker %d got %d shards, want %d (round-robin of %d)", w, shardsPer[w], want, direct)
		}
		for _, r := range seen[w] {
			if got[r] {
				t.Errorf("row %d delivered twice", r)
			}
			got[r] = true
		}
	}
	if perWorker != shards {
		t.Errorf("consumers got %d shards total, scan dealt %d", perWorker, shards)
	}
	for r, ok := range got {
		if !ok {
			t.Errorf("row %d never delivered", r)
		}
	}
}

// TestDistributeShardsError: a failed scan still closes every channel
// and returns once consumers exit — no goroutine leak, error propagated.
func TestDistributeShardsError(t *testing.T) {
	testutil.CheckGoroutines(t)
	boom := errors.New("boom")
	src := &errAfterSource{SliceSource: shardFixture(100, 3), failAt: 40, err: boom}
	consumers := make([]func(<-chan *Shard), 3)
	for i := range consumers {
		consumers[i] = func(ch <-chan *Shard) {
			for range ch {
			}
		}
	}
	_, err := DistributeShards(src, 8, 0, consumers)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// errAfterSource delivers rows until failAt, then fails the scan.
type errAfterSource struct {
	*SliceSource
	failAt int
	err    error
}

func (s *errAfterSource) Scan(fn func(row int, cols []int32) error) error {
	return s.SliceSource.Scan(func(row int, cols []int32) error {
		if row >= s.failAt {
			return s.err
		}
		return fn(row, cols)
	})
}

// TestTailSource: only rows >= From are delivered, ids preserved, and
// the wrapper deliberately hides the fast-path capabilities of the
// wrapped source.
func TestTailSource(t *testing.T) {
	src := shardFixture(30, 4)
	tail := &TailSource{Src: src, From: 12}
	if tail.NumRows() != 30 || tail.NumCols() != 100 {
		t.Fatalf("dims = %dx%d, want 30x100", tail.NumRows(), tail.NumCols())
	}
	var rows []int
	err := tail.Scan(func(row int, cols []int32) error {
		rows = append(rows, row)
		if len(cols) != len(src.Rows[row]) {
			t.Errorf("row %d has %d cols, want %d", row, len(cols), len(src.Rows[row]))
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18 || rows[0] != 12 || rows[len(rows)-1] != 29 {
		t.Fatalf("scanned rows %v, want ids 12..29", rows)
	}
	// The underlying SliceSource is a ConcurrentSource; the tail view
	// must not be, or windowed runs would take full-data fast paths.
	var rs RowSource = tail
	if _, ok := rs.(ConcurrentSource); ok {
		t.Error("TailSource must not implement ConcurrentSource")
	}
	if _, ok := rs.(ColumnLister); ok {
		t.Error("TailSource must not implement ColumnLister")
	}
	if _, ok := rs.(BitmapFiller); ok {
		t.Error("TailSource must not implement BitmapFiller")
	}
}

// TestFileSourceBytesRead: scans accumulate the file's bytes; two scans
// read it twice.
func TestFileSourceBytesRead(t *testing.T) {
	src := shardFixture(50, 4)
	path := t.TempDir() + "/data.arows"
	if err := SaveRowBinary(path, src); err != nil {
		t.Fatal(err)
	}
	fs, err := OpenFileSource(path)
	if err != nil {
		t.Fatal(err)
	}
	if fs.Path() != path {
		t.Errorf("Path() = %q, want %q", fs.Path(), path)
	}
	if got := fs.BytesRead(); got != 0 {
		t.Fatalf("BytesRead before any scan = %d", got)
	}
	scan := func() {
		if err := fs.Scan(func(int, []int32) error { return nil }); err != nil {
			t.Fatal(err)
		}
	}
	scan()
	once := fs.BytesRead()
	if once <= 0 {
		t.Fatalf("BytesRead after one scan = %d", once)
	}
	scan()
	if got := fs.BytesRead(); got != 2*once {
		t.Errorf("BytesRead after two scans = %d, want %d", got, 2*once)
	}
	var _ ByteCounter = fs
}
