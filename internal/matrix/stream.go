package matrix

import "errors"

// errNoBitmapFill reports a FillColumnBits call on a source whose
// CanFillColumnBits is false; callers are expected to check first.
var errNoBitmapFill = errors.New("matrix: source cannot fill column bits")

// RowSource models one-pass, row-at-a-time access to a dataset, the
// access pattern available for large disk-resident tables. The paper's
// phase-1 (signature computation) and phase-3 (candidate pruning)
// algorithms are written against this interface and therefore never
// assume random access to the data; only the small signature structures
// live in "main memory".
type RowSource interface {
	// NumRows returns n.
	NumRows() int
	// NumCols returns m.
	NumCols() int
	// Scan performs one sequential pass, invoking fn once per row in
	// order with the sorted column indices set in that row. The slice
	// passed to fn is only valid for the duration of the call. Scan
	// stops and returns the first error fn returns.
	Scan(fn func(row int, cols []int32) error) error
}

// ConcurrentSource is a RowSource whose Scan may be called from
// several goroutines at once (in-memory data with no per-scan state).
// Parallel consumers such as verify.ExactParallel use it to let each
// worker run its own full scan instead of fanning one stream out.
// Sources with mutable scan state (files, CountingSource) must not
// implement it.
type ConcurrentSource interface {
	RowSource
	// ConcurrentScan reports whether concurrent Scans are safe.
	ConcurrentScan() bool
}

// ColumnLister is a RowSource with random access to individual column
// row lists — in-memory data stored (or indexed) column-major. The
// packed verification kernel uses it to build bit-columns for exactly
// the candidate-referenced columns without a row scan; sources that can
// only deliver rows sequentially must not implement it.
type ColumnLister interface {
	RowSource
	// ColumnRows returns the sorted row indices of column c. The
	// returned slice must not be modified.
	ColumnRows(c int) []int32
}

// BitmapFiller is a RowSource that can decode one pass of itself
// directly into packed bit-columns, skipping row-slice materialisation
// and shard fan-out — the decode-fusion fast path of the packed
// verification kernel. slot maps column id to arena slot (-1 = column
// not wanted); bit (slot[c], row) of the words-stride arena is set for
// every posting (row, c) with slot[c] >= 0. One FillColumnBits call
// costs one sequential pass. Implementations whose capability depends
// on runtime state (a file source's format) gate it behind
// CanFillColumnBits; callers must check it before calling.
type BitmapFiller interface {
	RowSource
	CanFillColumnBits() bool
	FillColumnBits(slot []int32, arena []uint64, words int) error
}

// Stream returns a RowSource view of the matrix. The row-major
// transpose is computed once, on first use, and cached.
func (m *Matrix) Stream() RowSource {
	return (*rowStream)(m)
}

type rowStream Matrix

func (s *rowStream) NumRows() int { return s.rows }
func (s *rowStream) NumCols() int { return len(s.cols) }

// ConcurrentScan implements ConcurrentSource: the matrix is immutable
// and the lazy transpose is guarded by a sync.Once, so overlapping
// Scans are safe.
func (s *rowStream) ConcurrentScan() bool { return true }

// ColumnRows implements ColumnLister from the matrix's native
// column-major storage.
func (s *rowStream) ColumnRows(c int) []int32 { return s.cols[c] }

func (s *rowStream) Scan(fn func(row int, cols []int32) error) error {
	m := (*Matrix)(s)
	m.rowMajorOnce.Do(m.buildRowMajor)
	for r, cs := range m.rowMajor {
		if err := fn(r, cs); err != nil {
			return err
		}
	}
	return nil
}

func (m *Matrix) buildRowMajor() {
	counts := make([]int32, m.rows)
	for _, col := range m.cols {
		for _, r := range col {
			counts[r]++
		}
	}
	// Single backing array, sliced per row, to keep the transpose
	// allocation-light even for millions of rows.
	backing := make([]int32, m.Ones())
	rowsOut := make([][]int32, m.rows)
	off := 0
	for r := 0; r < m.rows; r++ {
		rowsOut[r] = backing[off : off : off+int(counts[r])]
		off += int(counts[r])
	}
	for c, col := range m.cols {
		for _, r := range col {
			rowsOut[r] = append(rowsOut[r], int32(c))
		}
	}
	// Columns were visited in increasing order, so each row is sorted.
	m.rowMajor = rowsOut
}

// CountingSource wraps a RowSource and counts passes and rows
// delivered, so experiments can report I/O-equivalent work.
type CountingSource struct {
	Src    RowSource
	Passes int
	Rows   int64
}

// NumRows implements RowSource.
func (c *CountingSource) NumRows() int { return c.Src.NumRows() }

// NumCols implements RowSource.
func (c *CountingSource) NumCols() int { return c.Src.NumCols() }

// Scan implements RowSource.
func (c *CountingSource) Scan(fn func(row int, cols []int32) error) error {
	c.Passes++
	return c.Src.Scan(func(row int, cols []int32) error {
		c.Rows++
		return fn(row, cols)
	})
}

// CanFillColumnBits implements BitmapFiller by delegation.
func (c *CountingSource) CanFillColumnBits() bool {
	bf, ok := c.Src.(BitmapFiller)
	return ok && bf.CanFillColumnBits()
}

// FillColumnBits implements BitmapFiller by delegation, accounting the
// pass and the rows it decoded like a completed Scan.
func (c *CountingSource) FillColumnBits(slot []int32, arena []uint64, words int) error {
	bf, ok := c.Src.(BitmapFiller)
	if !ok || !bf.CanFillColumnBits() {
		return errNoBitmapFill
	}
	c.Passes++
	err := bf.FillColumnBits(slot, arena, words)
	if err == nil {
		c.Rows += int64(c.Src.NumRows())
	}
	return err
}

// SliceSource is a RowSource over in-memory row-major data; rows[r]
// must be sorted column indices. It is the cheapest way to feed
// hand-written fixtures to streaming algorithms in tests.
type SliceSource struct {
	Cols int
	Rows [][]int32
}

// NumRows implements RowSource.
func (s *SliceSource) NumRows() int { return len(s.Rows) }

// NumCols implements RowSource.
func (s *SliceSource) NumCols() int { return s.Cols }

// ConcurrentScan implements ConcurrentSource: the slices are never
// mutated by Scan.
func (s *SliceSource) ConcurrentScan() bool { return true }

// Scan implements RowSource.
func (s *SliceSource) Scan(fn func(row int, cols []int32) error) error {
	for r, cs := range s.Rows {
		if err := fn(r, cs); err != nil {
			return err
		}
	}
	return nil
}

// TailSource restricts a RowSource to the rows with id >= From,
// preserving the original row ids — the view a sliding window mines
// after older rows have expired. It deliberately implements ONLY
// RowSource (no ConcurrentSource / ColumnLister / BitmapFiller
// delegation): those fast paths operate on the full underlying data and
// would silently reintroduce the expired rows, so windowed runs must
// fall back to sequential scans.
type TailSource struct {
	Src  RowSource
	From int // first live row id; rows below it are skipped
}

// NumRows implements RowSource. Row ids are preserved, so the nominal
// dimension is unchanged; only Scan's coverage shrinks.
func (t *TailSource) NumRows() int { return t.Src.NumRows() }

// NumCols implements RowSource.
func (t *TailSource) NumCols() int { return t.Src.NumCols() }

// Scan implements RowSource, forwarding only rows with id >= From.
func (t *TailSource) Scan(fn func(row int, cols []int32) error) error {
	return t.Src.Scan(func(row int, cols []int32) error {
		if row < t.From {
			return nil
		}
		return fn(row, cols)
	})
}

// RangeScanner is a RowSource that can deliver a contiguous row-id
// range more cheaply than a filtered full pass — a file source that
// skip-decodes the prefix and stops after the range, for instance. The
// scale-out executor partitions datasets into such ranges so each
// worker pays decode cost only for its own rows.
type RangeScanner interface {
	RowSource
	// ScanRange invokes fn once per row with from <= id < to, in order,
	// with the row's sorted column indices and its ORIGINAL row id.
	// Bounds are clamped to [0, NumRows()].
	ScanRange(from, to int, fn func(row int, cols []int32) error) error
}

// errStopRange aborts the underlying Scan once a RangeSource has
// delivered its last row; it never escapes RangeSource.Scan.
var errStopRange = errors.New("matrix: range complete")

// RangeSource restricts a RowSource to rows with From <= id < To,
// preserving the original row ids — the per-worker view of the
// scale-out executor. Like TailSource it deliberately implements ONLY
// RowSource: the fast-path interfaces operate on the full underlying
// data and would silently reintroduce out-of-range rows. When the
// wrapped source is a RangeScanner, Scan uses its skip-decode path;
// otherwise it filters a full pass, stopping early after the range.
type RangeSource struct {
	Src  RowSource
	From int // first row id delivered
	To   int // one past the last row id delivered
}

// NumRows implements RowSource. Row ids are preserved, so the nominal
// dimension is unchanged; only Scan's coverage shrinks.
func (t *RangeSource) NumRows() int { return t.Src.NumRows() }

// NumCols implements RowSource.
func (t *RangeSource) NumCols() int { return t.Src.NumCols() }

// Scan implements RowSource, delivering only rows in [From, To).
func (t *RangeSource) Scan(fn func(row int, cols []int32) error) error {
	if rs, ok := t.Src.(RangeScanner); ok {
		return rs.ScanRange(t.From, t.To, fn)
	}
	err := t.Src.Scan(func(row int, cols []int32) error {
		if row < t.From {
			return nil
		}
		if row >= t.To {
			return errStopRange
		}
		return fn(row, cols)
	})
	if err == errStopRange {
		return nil
	}
	return err
}

// Collect materialises a RowSource into a Matrix (one pass). It is the
// inverse of (*Matrix).Stream.
func Collect(src RowSource) (*Matrix, error) {
	b := NewBuilder(src.NumRows(), src.NumCols())
	err := src.Scan(func(row int, cols []int32) error {
		for _, c := range cols {
			b.Set(row, int(c))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return b.Build(), nil
}
