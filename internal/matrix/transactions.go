package matrix

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ReadNamedTransactions parses the classic market-basket interchange
// format: one transaction per line, whitespace-separated item names
// (arbitrary strings). It returns the matrix (rows = transactions,
// columns = items in first-appearance order) and the item name of each
// column. Blank lines are empty transactions; lines starting with '#'
// are comments.
func ReadNamedTransactions(r io.Reader) (*Matrix, []string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	index := map[string]int32{}
	var names []string
	var rows [][]int32
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "#") {
			continue
		}
		var row []int32
		for _, item := range strings.Fields(line) {
			c, ok := index[item]
			if !ok {
				c = int32(len(names))
				index[item] = c
				names = append(names, item)
			}
			row = append(row, c)
		}
		rows = append(rows, row)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("matrix: reading transactions: %w", err)
	}
	m, err := FromRows(len(names), rows)
	if err != nil {
		return nil, nil, err
	}
	_ = lineNo
	return m, names, nil
}

// WriteNamedTransactions writes the matrix in the named transaction
// format using names[c] for column c.
func WriteNamedTransactions(w io.Writer, m *Matrix, names []string) error {
	if len(names) != m.NumCols() {
		return fmt.Errorf("matrix: %d names for %d columns", len(names), m.NumCols())
	}
	for c, n := range names {
		if strings.ContainsAny(n, " \t\r\n") || n == "" {
			return fmt.Errorf("matrix: item name %q of column %d is empty or contains whitespace", n, c)
		}
	}
	// Detect duplicate names: they would not round-trip.
	{
		sorted := append([]string(nil), names...)
		sort.Strings(sorted)
		for i := 1; i < len(sorted); i++ {
			if sorted[i] == sorted[i-1] {
				return fmt.Errorf("matrix: duplicate item name %q", sorted[i])
			}
		}
	}
	bw := bufio.NewWriter(w)
	err := m.Stream().Scan(func(row int, cols []int32) error {
		for i, c := range cols {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(names[c]); err != nil {
				return err
			}
		}
		return bw.WriteByte('\n')
	})
	if err != nil {
		return err
	}
	return bw.Flush()
}
