// Package measures computes the similarity and interestingness
// measures discussed in the paper. Besides the Jaccard similarity and
// confidence the algorithms operate on, Section 1 notes that "several
// recent papers [Brin et al.; Silverstein et al.] have expressed
// dissatisfaction with the use of confidence ... and have suggested
// various alternate measures. Our ideas are applicable to these new
// measures as well" — every measure here is a function of the same four
// sufficient statistics the verification pass already counts:
// |C_i|, |C_j|, |C_i ∩ C_j| and n.
package measures

import (
	"fmt"
	"math"
)

// Counts are the sufficient statistics of a column pair.
type Counts struct {
	N     int // total rows
	A     int // |C_i|
	B     int // |C_j|
	Inter int // |C_i ∩ C_j|
}

// Validate reports whether the counts are consistent.
func (c Counts) Validate() error {
	if c.N < 0 || c.A < 0 || c.B < 0 || c.Inter < 0 {
		return fmt.Errorf("measures: negative count in %+v", c)
	}
	if c.A > c.N || c.B > c.N {
		return fmt.Errorf("measures: column larger than row count in %+v", c)
	}
	if c.Inter > c.A || c.Inter > c.B {
		return fmt.Errorf("measures: intersection exceeds a column in %+v", c)
	}
	if c.A+c.B-c.Inter > c.N {
		return fmt.Errorf("measures: union exceeds row count in %+v", c)
	}
	return nil
}

// Union returns |C_i ∪ C_j|.
func (c Counts) Union() int { return c.A + c.B - c.Inter }

// Jaccard returns |C_i ∩ C_j| / |C_i ∪ C_j| — the paper's similarity.
func (c Counts) Jaccard() float64 {
	u := c.Union()
	if u == 0 {
		return 0
	}
	return float64(c.Inter) / float64(u)
}

// Confidence returns |C_i ∩ C_j| / |C_i| for the rule i => j.
func (c Counts) Confidence() float64 {
	if c.A == 0 {
		return 0
	}
	return float64(c.Inter) / float64(c.A)
}

// Support returns |C_i ∩ C_j| / n, the classic support fraction.
func (c Counts) Support() float64 {
	if c.N == 0 {
		return 0
	}
	return float64(c.Inter) / float64(c.N)
}

// Interest (also called lift) is P(i,j) / (P(i)·P(j)): 1 under
// independence, > 1 for positive correlation, < 1 for anticorrelation.
// This is the measure of Brin, Motwani, Ullman and Tsur's "Dynamic
// Itemset Counting" paper the text cites.
func (c Counts) Interest() float64 {
	if c.A == 0 || c.B == 0 || c.N == 0 {
		return 0
	}
	return float64(c.Inter) * float64(c.N) / (float64(c.A) * float64(c.B))
}

// Conviction is P(i)·P(¬j) / P(i,¬j): 1 under independence, +Inf for an
// exceptionless rule i => j.
func (c Counts) Conviction() float64 {
	if c.N == 0 || c.A == 0 {
		return 0
	}
	pNotJ := float64(c.N-c.B) / float64(c.N)
	iNotJ := float64(c.A - c.Inter)
	if iNotJ == 0 {
		return math.Inf(1)
	}
	return float64(c.A) * pNotJ / iNotJ
}

// Cosine returns |C_i ∩ C_j| / sqrt(|C_i|·|C_j|), the vector cosine of
// the two boolean columns.
func (c Counts) Cosine() float64 {
	if c.A == 0 || c.B == 0 {
		return 0
	}
	return float64(c.Inter) / math.Sqrt(float64(c.A)*float64(c.B))
}

// Overlap returns |C_i ∩ C_j| / min(|C_i|, |C_j|) — the containment
// coefficient; 1 when one column is a subset of the other.
func (c Counts) Overlap() float64 {
	m := c.A
	if c.B < m {
		m = c.B
	}
	if m == 0 {
		return 0
	}
	return float64(c.Inter) / float64(m)
}

// ChiSquare returns the 2x2 contingency chi-squared statistic of the
// pair — the dependence test of Silverstein, Brin and Motwani's
// "Beyond Market Baskets" paper the text cites. Zero under exact
// independence; large values reject independence.
func (c Counts) ChiSquare() float64 {
	n := float64(c.N)
	if n == 0 {
		return 0
	}
	// Observed 2x2 table.
	o11 := float64(c.Inter)
	o10 := float64(c.A - c.Inter)
	o01 := float64(c.B - c.Inter)
	o00 := n - float64(c.Union())
	// Expected under independence.
	pa, pb := float64(c.A)/n, float64(c.B)/n
	e11 := n * pa * pb
	e10 := n * pa * (1 - pb)
	e01 := n * (1 - pa) * pb
	e00 := n * (1 - pa) * (1 - pb)
	chi := 0.0
	for _, oe := range [][2]float64{{o11, e11}, {o10, e10}, {o01, e01}, {o00, e00}} {
		if oe[1] > 0 {
			d := oe[0] - oe[1]
			chi += d * d / oe[1]
		}
	}
	return chi
}
