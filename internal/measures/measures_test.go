package measures

import (
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	good := Counts{N: 10, A: 4, B: 5, Inter: 3}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Counts{
		{N: -1},
		{N: 10, A: 11},
		{N: 10, A: 2, B: 2, Inter: 3},
		{N: 10, A: 8, B: 8, Inter: 1}, // union 15 > 10
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad counts %d accepted: %+v", i, c)
		}
	}
}

func TestKnownValues(t *testing.T) {
	// n=100; A=20, B=10, inter=8.
	c := Counts{N: 100, A: 20, B: 10, Inter: 8}
	if got := c.Union(); got != 22 {
		t.Errorf("Union = %d", got)
	}
	if got := c.Jaccard(); math.Abs(got-8.0/22) > 1e-12 {
		t.Errorf("Jaccard = %v", got)
	}
	if got := c.Confidence(); math.Abs(got-0.4) > 1e-12 {
		t.Errorf("Confidence = %v", got)
	}
	if got := c.Support(); math.Abs(got-0.08) > 1e-12 {
		t.Errorf("Support = %v", got)
	}
	// Interest = 8*100/(20*10) = 4.
	if got := c.Interest(); math.Abs(got-4) > 1e-12 {
		t.Errorf("Interest = %v", got)
	}
	// Conviction = 20*(0.9)/12 = 1.5.
	if got := c.Conviction(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("Conviction = %v", got)
	}
	if got := c.Cosine(); math.Abs(got-8/math.Sqrt(200)) > 1e-12 {
		t.Errorf("Cosine = %v", got)
	}
	if got := c.Overlap(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("Overlap = %v", got)
	}
}

func TestIndependencePoint(t *testing.T) {
	// Exact independence: A=50, B=40 of 100, inter = 20.
	c := Counts{N: 100, A: 50, B: 40, Inter: 20}
	if got := c.Interest(); math.Abs(got-1) > 1e-12 {
		t.Errorf("Interest at independence = %v", got)
	}
	if got := c.Conviction(); math.Abs(got-1) > 1e-12 {
		t.Errorf("Conviction at independence = %v", got)
	}
	if got := c.ChiSquare(); got > 1e-9 {
		t.Errorf("ChiSquare at independence = %v", got)
	}
}

func TestExactRuleConviction(t *testing.T) {
	c := Counts{N: 100, A: 10, B: 30, Inter: 10} // i => j exceptionless
	if got := c.Conviction(); !math.IsInf(got, 1) {
		t.Errorf("Conviction of exceptionless rule = %v", got)
	}
	if got := c.Overlap(); got != 1 {
		t.Errorf("Overlap of contained column = %v", got)
	}
}

func TestZeroGuards(t *testing.T) {
	zero := Counts{}
	if zero.Jaccard() != 0 || zero.Confidence() != 0 || zero.Support() != 0 ||
		zero.Interest() != 0 || zero.Conviction() != 0 || zero.Cosine() != 0 ||
		zero.Overlap() != 0 || zero.ChiSquare() != 0 {
		t.Error("zero counts produced non-zero measures")
	}
}

func TestChiSquarePerfectCorrelation(t *testing.T) {
	// Identical columns: chi-square = n.
	c := Counts{N: 100, A: 30, B: 30, Inter: 30}
	if got := c.ChiSquare(); math.Abs(got-100) > 1e-9 {
		t.Errorf("ChiSquare of identical columns = %v, want 100", got)
	}
}

func TestQuickMeasureRanges(t *testing.T) {
	f := func(nRaw, aRaw, bRaw, iRaw uint16) bool {
		n := int(nRaw%500) + 1
		a := int(aRaw) % (n + 1)
		b := int(bRaw) % (n + 1)
		maxI := a
		if b < maxI {
			maxI = b
		}
		minI := a + b - n
		if minI < 0 {
			minI = 0
		}
		if maxI < minI {
			return true
		}
		inter := minI + int(iRaw)%(maxI-minI+1)
		c := Counts{N: n, A: a, B: b, Inter: inter}
		if err := c.Validate(); err != nil {
			return false
		}
		j := c.Jaccard()
		if j < 0 || j > 1 {
			return false
		}
		conf := c.Confidence()
		if conf < 0 || conf > 1 {
			return false
		}
		cos := c.Cosine()
		if cos < 0 || cos > 1+1e-12 {
			return false
		}
		ov := c.Overlap()
		if ov < 0 || ov > 1+1e-12 {
			return false
		}
		if c.ChiSquare() < -1e-9 {
			return false
		}
		// Jaccard <= Cosine <= Overlap (standard sandwich).
		return j <= cos+1e-12 && cos <= ov+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
