package minhash

import (
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

func benchMatrix(b *testing.B, rows, cols int, density float64) *matrix.Matrix {
	b.Helper()
	rng := hashing.NewSplitMix64(1)
	mb := matrix.NewBuilder(rows, cols)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			if rng.Float64() < density {
				mb.Set(r, c)
			}
		}
	}
	return mb.Build()
}

func BenchmarkCompute(b *testing.B) {
	m := benchMatrix(b, 5000, 500, 0.02)
	for _, k := range []int{10, 50, 100} {
		b.Run("k="+itoa(k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Compute(m.Stream(), k, 7); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkComputeParallel(b *testing.B) {
	m := benchMatrix(b, 5000, 500, 0.02)
	for _, workers := range []int{1, 2, 4} {
		b.Run("workers="+itoa(workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ComputeParallel(m, 50, 7, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkEstimate(b *testing.B) {
	m := benchMatrix(b, 2000, 100, 0.05)
	sig, err := Compute(m.Stream(), 100, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sig.Estimate(i%100, (i+1)%100)
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
