package minhash

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Signature persistence: the signature pass is the expensive phase on
// large data (one full scan), so a production deployment computes
// signatures once and reuses them across queries with different
// thresholds or band layouts. The format is versioned and records the
// seed so mismatched reuse is detectable by the caller.

const sigMagic = "AMH1"

// WriteTo serialises the signatures (magic, k, m, seed, then k·m
// fixed-width values).
func (s *Signatures) WriteTo(w io.Writer, seed uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(sigMagic); err != nil {
		return err
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(s.K))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(s.M))
	binary.LittleEndian.PutUint64(hdr[16:], seed)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for _, v := range s.Vals {
		binary.LittleEndian.PutUint64(buf[:], v)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSignatures parses a stream written by WriteTo, returning the
// signatures and the recorded seed.
func ReadSignatures(r io.Reader) (*Signatures, uint64, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(sigMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, 0, fmt.Errorf("minhash: reading magic: %w", err)
	}
	if string(magic) != sigMagic {
		return nil, 0, fmt.Errorf("minhash: bad magic %q", magic)
	}
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("minhash: reading header: %w", err)
	}
	k := binary.LittleEndian.Uint64(hdr[0:])
	m := binary.LittleEndian.Uint64(hdr[8:])
	seed := binary.LittleEndian.Uint64(hdr[16:])
	const maxDim = 1 << 31
	if k == 0 || k > maxDim || m > maxDim {
		return nil, 0, fmt.Errorf("minhash: implausible dimensions k=%d m=%d", k, m)
	}
	total := k * m
	if total > (1 << 34) {
		return nil, 0, fmt.Errorf("minhash: signature matrix too large: %d values", total)
	}
	// Grow the value slice as bytes actually arrive rather than trusting
	// the header: a malformed (or hostile) header can claim up to 2^34
	// values, and a single up-front make() of that size would allocate
	// ~128 GiB before the short read is ever noticed.
	const allocChunk = 1 << 20
	s := &Signatures{K: int(k), M: int(m)}
	var buf [8]byte
	for read := uint64(0); read < total; read++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, 0, fmt.Errorf("minhash: reading value %d: %w", read, err)
		}
		if uint64(len(s.Vals)) == read {
			grow := total - read
			if grow > allocChunk {
				grow = allocChunk
			}
			s.Vals = append(s.Vals, make([]uint64, grow)...)
		}
		s.Vals[read] = binary.LittleEndian.Uint64(buf[:])
	}
	if s.Vals == nil && total == 0 {
		s.Vals = []uint64{}
	}
	return s, seed, nil
}
