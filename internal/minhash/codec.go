package minhash

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math/bits"

	"assocmine/internal/bitpack"
	"assocmine/internal/hashing"
)

// Signature persistence: the signature pass is the expensive phase on
// large data (one full scan), so a production deployment computes
// signatures once and reuses them across queries with different
// thresholds or band layouts. The format is versioned and records the
// seed so mismatched reuse is detectable by the caller.
//
// Two codecs share the ReadSignatures entry point, distinguished by
// magic: AMH1 stores every cell as a raw 64-bit hash value; AMC1
// compresses functionally. Every min-hash value is h_l(r) for the
// argmin row r of that cell, so AMC1 stores the row id in
// ceil(log2(n+1)) bits — n, one past the largest id, is the Empty
// sentinel — and the reader rebuilds the exact 64-bit values by
// rehashing with the recorded seed. For n rows the cell cost drops
// from 64 bits to bits.Len(n), a 5-6x saving at typical scales, and
// the round trip is bit-identical because the hash family is
// deterministic in (seed, k).

const sigMagic = "AMH1"

// sigCompressedMagic marks the functionally compressed signature
// format: magic, then k, m, rows and seed as 8-byte little-endian
// words, then k·m argmin row ids bit-packed LSB-first at fixed width
// bits.Len64(rows).
const sigCompressedMagic = "AMC1"

// WriteTo serialises the signatures (magic, k, m, seed, then k·m
// fixed-width values).
func (s *Signatures) WriteTo(w io.Writer, seed uint64) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(sigMagic); err != nil {
		return err
	}
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(s.K))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(s.M))
	binary.LittleEndian.PutUint64(hdr[16:], seed)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for _, v := range s.Vals {
		binary.LittleEndian.PutUint64(buf[:], v)
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteCompressed serialises the signatures in the AMC1 functionally
// compressed format. rows is the row count n of the dataset the
// signatures were computed from; every non-Empty value must equal
// h_l(r) for some row r under hashing.NewPermHashes(seed, k), which
// holds for any signatures Compute produced with the same (seed,
// rows). Signatures not derivable that way (foreign seed, mutated
// values) are rejected rather than silently mis-encoded. Cost:
// O(k·rows) rehashing to invert the value mapping, paid once per save.
func (s *Signatures) WriteCompressed(w io.Writer, seed uint64, rows int) error {
	if rows < 0 {
		return fmt.Errorf("minhash: negative row count %d", rows)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(sigCompressedMagic); err != nil {
		return err
	}
	var hdr [32]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(s.K))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(s.M))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(rows))
	binary.LittleEndian.PutUint64(hdr[24:], seed)
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	width := uint(bits.Len64(uint64(rows)))
	hs := hashing.NewPermHashes(seed, s.K)
	pw := bitpack.NewWriter(bw)
	inv := make(map[uint64]uint64, rows)
	for l := 0; l < s.K; l++ {
		// Invert h_l: value -> smallest row hashing to it, so colliding
		// rows encode deterministically.
		clear(inv)
		for r := 0; r < rows; r++ {
			v := hs[l].Row(r)
			if old, ok := inv[v]; !ok || uint64(r) < old {
				inv[v] = uint64(r)
			}
		}
		for c := 0; c < s.M; c++ {
			v := s.Vals[l*s.M+c]
			id := uint64(rows) // Empty sentinel
			if v != Empty {
				var ok bool
				if id, ok = inv[v]; !ok {
					return fmt.Errorf("minhash: value %#x of cell (%d,%d) is not h_%d of any of %d rows under seed %#x", v, l, c, l, rows, seed)
				}
			}
			pw.WriteBits(id, width)
		}
	}
	if err := pw.Flush(); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadSignatures parses a stream written by WriteTo or WriteCompressed
// (the magic selects the codec), returning the signatures and the
// recorded seed.
func ReadSignatures(r io.Reader) (*Signatures, uint64, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(sigMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, 0, fmt.Errorf("minhash: reading magic: %w", err)
	}
	if string(magic) == sigCompressedMagic {
		return readCompressedSignatures(br)
	}
	if string(magic) != sigMagic {
		return nil, 0, fmt.Errorf("minhash: bad magic %q", magic)
	}
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("minhash: reading header: %w", err)
	}
	k := binary.LittleEndian.Uint64(hdr[0:])
	m := binary.LittleEndian.Uint64(hdr[8:])
	seed := binary.LittleEndian.Uint64(hdr[16:])
	const maxDim = 1 << 31
	if k == 0 || k > maxDim || m > maxDim {
		return nil, 0, fmt.Errorf("minhash: implausible dimensions k=%d m=%d", k, m)
	}
	total := k * m
	if total > (1 << 34) {
		return nil, 0, fmt.Errorf("minhash: signature matrix too large: %d values", total)
	}
	// Grow the value slice as bytes actually arrive rather than trusting
	// the header: a malformed (or hostile) header can claim up to 2^34
	// values, and a single up-front make() of that size would allocate
	// ~128 GiB before the short read is ever noticed.
	const allocChunk = 1 << 20
	s := &Signatures{K: int(k), M: int(m)}
	var buf [8]byte
	for read := uint64(0); read < total; read++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, 0, fmt.Errorf("minhash: reading value %d: %w", read, err)
		}
		if uint64(len(s.Vals)) == read {
			grow := total - read
			if grow > allocChunk {
				grow = allocChunk
			}
			s.Vals = append(s.Vals, make([]uint64, grow)...)
		}
		s.Vals[read] = binary.LittleEndian.Uint64(buf[:])
	}
	if s.Vals == nil && total == 0 {
		s.Vals = []uint64{}
	}
	return s, seed, nil
}

// readCompressedSignatures parses the AMC1 body (the magic has been
// consumed), rebuilding the 64-bit values by rehashing the stored
// argmin row ids. Allocation is paced by the bytes that actually
// arrive, mirroring the AMH1 reader's hostile-header guard.
func readCompressedSignatures(br *bufio.Reader) (*Signatures, uint64, error) {
	var hdr [32]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("minhash: reading header: %w", err)
	}
	k := binary.LittleEndian.Uint64(hdr[0:])
	m := binary.LittleEndian.Uint64(hdr[8:])
	rows := binary.LittleEndian.Uint64(hdr[16:])
	seed := binary.LittleEndian.Uint64(hdr[24:])
	const maxDim = 1 << 31
	// Rebuilding values costs a hash function per k, so the compressed
	// reader additionally bounds k: a header claiming millions of hash
	// functions would size a k-proportional allocation before any
	// payload byte arrives (Theorem 1 puts practical k in the
	// thousands).
	const maxK = 1 << 20
	if k == 0 || k > maxK || m > maxDim || rows > maxDim {
		return nil, 0, fmt.Errorf("minhash: implausible dimensions k=%d m=%d rows=%d", k, m, rows)
	}
	total := k * m
	if total > (1 << 34) {
		return nil, 0, fmt.Errorf("minhash: signature matrix too large: %d values", total)
	}
	width := uint(bits.Len64(rows))
	if width == 0 && total > (1<<24) {
		// rows == 0 means zero payload bits per value; without this cap
		// a 40-byte header could demand a 2^34-value allocation.
		return nil, 0, fmt.Errorf("minhash: %d values claimed for an empty dataset", total)
	}
	// Derive the hash functions lazily in NewPermHashes order: values
	// arrive hash-major, so function l is only needed once l·m values
	// have actually been read, keeping even this allocation paced by
	// input rather than by the header's k.
	rng := hashing.NewSplitMix64(seed)
	var fns []hashing.MultiplyShift
	pr := bitpack.NewReader(br)
	const allocChunk = 1 << 20
	s := &Signatures{K: int(k), M: int(m)}
	for read := uint64(0); read < total; read++ {
		id, err := pr.ReadBits(width)
		if err != nil {
			return nil, 0, fmt.Errorf("minhash: reading value %d: %w", read, err)
		}
		if id > rows {
			return nil, 0, fmt.Errorf("minhash: value %d: row id %d out of range [0,%d]", read, id, rows)
		}
		if uint64(len(s.Vals)) == read {
			grow := total - read
			if grow > allocChunk {
				grow = allocChunk
			}
			s.Vals = append(s.Vals, make([]uint64, grow)...)
		}
		for uint64(len(fns)) <= read/m {
			fns = append(fns, hashing.NewMultiplyShift(rng))
		}
		if id == rows {
			s.Vals[read] = Empty
		} else {
			s.Vals[read] = fns[read/m].Hash(id)
		}
	}
	if s.Vals == nil && total == 0 {
		s.Vals = []uint64{}
	}
	return s, seed, nil
}
