package minhash

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

func randomMatrix(rng *hashing.SplitMix64, rows, cols int, density float64) *matrix.Matrix {
	b := matrix.NewBuilder(rows, cols)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			if rng.Float64() < density {
				b.Set(r, c)
			}
		}
	}
	return b.Build()
}

func computeOn(t *testing.T, m *matrix.Matrix, k int, seed uint64) *Signatures {
	t.Helper()
	sig, err := Compute(m.Stream(), k, seed)
	if err != nil {
		t.Fatal(err)
	}
	return sig
}

func TestCompressedSignatureRoundTrip(t *testing.T) {
	rng := hashing.NewSplitMix64(11)
	m := randomMatrix(rng, 500, 60, 0.05)
	const k, seed = 24, 99
	sig := computeOn(t, m, k, seed)
	var raw, comp bytes.Buffer
	if err := sig.WriteTo(&raw, seed); err != nil {
		t.Fatal(err)
	}
	if err := sig.WriteCompressed(&comp, seed, m.NumRows()); err != nil {
		t.Fatal(err)
	}
	if comp.Len()*3 > raw.Len() {
		t.Errorf("compressed %d bytes, raw %d bytes: expected at least 3x", comp.Len(), raw.Len())
	}
	got, gotSeed, err := ReadSignatures(&comp)
	if err != nil {
		t.Fatal(err)
	}
	if gotSeed != seed || got.K != sig.K || got.M != sig.M {
		t.Fatalf("header k=%d m=%d seed=%d", got.K, got.M, gotSeed)
	}
	for i := range sig.Vals {
		if got.Vals[i] != sig.Vals[i] {
			t.Fatalf("value %d: got %#x want %#x", i, got.Vals[i], sig.Vals[i])
		}
	}
}

// TestCompressedSignatureEmptyColumns pins the Empty sentinel: columns
// with no rows survive the functional encoding.
func TestCompressedSignatureEmptyColumns(t *testing.T) {
	m := matrix.MustNew(10, [][]int32{{1, 3}, {}, {0, 9}, {}})
	sig := computeOn(t, m, 5, 7)
	var buf bytes.Buffer
	if err := sig.WriteCompressed(&buf, 7, m.NumRows()); err != nil {
		t.Fatal(err)
	}
	got, _, err := ReadSignatures(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for l := 0; l < sig.K; l++ {
		for _, c := range []int{1, 3} {
			if got.Value(l, c) != Empty {
				t.Fatalf("empty column %d decoded non-sentinel %#x", c, got.Value(l, c))
			}
		}
	}
	for i := range sig.Vals {
		if got.Vals[i] != sig.Vals[i] {
			t.Fatalf("value %d differs", i)
		}
	}
}

// TestWriteCompressedRejectsForeignValues: values not derivable from
// (seed, rows) must be rejected, not silently mis-encoded.
func TestWriteCompressedRejectsForeignValues(t *testing.T) {
	m := matrix.MustNew(6, [][]int32{{0, 2}, {1}})
	sig := computeOn(t, m, 3, 5)
	sig.Vals[1] ^= 0xdeadbeef
	var buf bytes.Buffer
	err := sig.WriteCompressed(&buf, 5, m.NumRows())
	if err == nil || !strings.Contains(err.Error(), "not h_") {
		t.Fatalf("foreign value accepted: %v", err)
	}
	// Wrong seed breaks derivability the same way.
	sig = computeOn(t, m, 3, 5)
	if err := sig.WriteCompressed(&buf, 6, m.NumRows()); err == nil {
		t.Fatal("foreign seed accepted")
	}
}

// amc1 builds a compressed-signature header with the given dimensions
// and body bytes, for hostile-input cases.
func amc1(k, m, rows, seed uint64, body []byte) []byte {
	var buf bytes.Buffer
	buf.WriteString(sigCompressedMagic)
	var hdr [32]byte
	binary.LittleEndian.PutUint64(hdr[0:], k)
	binary.LittleEndian.PutUint64(hdr[8:], m)
	binary.LittleEndian.PutUint64(hdr[16:], rows)
	binary.LittleEndian.PutUint64(hdr[24:], seed)
	buf.Write(hdr[:])
	buf.Write(body)
	return buf.Bytes()
}

func TestReadCompressedSignaturesErrors(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"truncated header", []byte("AMC1"), "reading header"},
		{"zero k", amc1(0, 1, 1, 0, nil), "implausible dimensions"},
		{"huge rows", amc1(1, 1, 1<<40, 0, nil), "implausible dimensions"},
		{"huge k", amc1(1<<30, 1, 1, 0, nil), "implausible dimensions"},
		{"too many values", amc1(1<<20, 1<<31, 1, 0, nil), "too large"},
		// rows = 0 means zero bits per value: a tiny header must not be
		// able to claim a multi-gigabyte all-empty matrix.
		{"empty-dataset alloc bomb", amc1(1<<17, 1<<17, 0, 0, nil), "empty dataset"},
		{"truncated values", amc1(2, 3, 5, 1, []byte{0x00}), "reading value"},
		// rows=2 -> width 2; a single byte 0x03 decodes id 3 > rows.
		{"row id out of range", amc1(1, 1, 2, 1, []byte{0x03}), "out of range"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ReadSignatures(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatal("hostile input accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// FuzzCompressedSignatures: any input must parse or error — never
// panic, never allocate near the header's claimed k·m before input
// bytes back it up — and whatever parses must round-trip through the
// raw codec bit-identically (the compressed reader rebuilds exact
// 64-bit values).
func FuzzCompressedSignatures(f *testing.F) {
	m := matrix.MustNew(40, [][]int32{{0, 3, 17}, {}, {5}, {0, 1, 2, 3}})
	sig, err := Compute(m.Stream(), 6, 42)
	if err != nil {
		f.Fatal(err)
	}
	var seed bytes.Buffer
	if err := sig.WriteCompressed(&seed, 42, m.NumRows()); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	for _, cut := range []int{4, 20, 36, seed.Len() - 1} {
		if cut < seed.Len() {
			f.Add(seed.Bytes()[:cut])
		}
	}
	f.Add([]byte("AMC1"))
	f.Add(amc1(1<<17, 1<<17, 0, 0, nil))
	f.Add(amc1(2, 2, 1<<30, 7, []byte{0xff, 0xff, 0xff}))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, sd, err := ReadSignatures(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(got.Vals) != got.K*got.M {
			t.Fatalf("parsed %d values for k=%d m=%d", len(got.Vals), got.K, got.M)
		}
		var out bytes.Buffer
		if err := got.WriteTo(&out, sd); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		got2, sd2, err := ReadSignatures(&out)
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if sd2 != sd || got2.K != got.K || got2.M != got.M {
			t.Fatal("round trip changed header")
		}
		for i := range got.Vals {
			if got2.Vals[i] != got.Vals[i] {
				t.Fatalf("value %d changed in round trip", i)
			}
		}
	})
}
