package minhash

import (
	"bytes"
	"testing"
)

func TestSignatureCodecRoundTrip(t *testing.T) {
	m := paperExample()
	sig, err := Compute(m.Stream(), 6, 42)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sig.WriteTo(&buf, 42); err != nil {
		t.Fatal(err)
	}
	got, seed, err := ReadSignatures(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if seed != 42 {
		t.Errorf("seed = %d", seed)
	}
	if got.K != sig.K || got.M != sig.M {
		t.Fatalf("dims %dx%d", got.K, got.M)
	}
	for i := range sig.Vals {
		if got.Vals[i] != sig.Vals[i] {
			t.Fatalf("value %d differs", i)
		}
	}
}

func TestReadSignaturesErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX"),
		[]byte("AMH1"), // truncated header
		append([]byte("AMH1"), make([]byte, 24)...), // k = 0
	}
	for i, in := range cases {
		if _, _, err := ReadSignatures(bytes.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Truncated values.
	m := paperExample()
	sig, _ := Compute(m.Stream(), 4, 1)
	var buf bytes.Buffer
	if err := sig.WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-5]
	if _, _, err := ReadSignatures(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated value section accepted")
	}
}
