package minhash

import (
	"errors"
	"testing"
)

type erroringSource struct {
	rows, cols, failAt int
}

var errInjected = errors.New("injected scan failure")

func (e *erroringSource) NumRows() int { return e.rows }
func (e *erroringSource) NumCols() int { return e.cols }
func (e *erroringSource) Scan(fn func(int, []int32) error) error {
	for r := 0; r < e.rows; r++ {
		if r == e.failAt {
			return errInjected
		}
		if err := fn(r, []int32{0}); err != nil {
			return err
		}
	}
	return nil
}

func TestComputePropagatesSourceError(t *testing.T) {
	src := &erroringSource{rows: 10, cols: 2, failAt: 3}
	if _, err := Compute(src, 4, 1); !errors.Is(err, errInjected) {
		t.Errorf("err = %v, want injected error", err)
	}
}
