package minhash

import (
	"testing"

	"assocmine/internal/matrix"
)

// TestPaperExample1 reproduces Example 1 of the paper verbatim: the 4x3
// matrix, the two explicit permutations π1 and π2, the resulting M̂, and
// the similarity estimates Ŝ(c1,c2)=1, Ŝ(c1,c3)=0, Ŝ(c2,c3)=0 against
// the true S(c1,c2)=2/3, S(c1,c3)=0, S(c2,c3)=1/4.
func TestPaperExample1(t *testing.T) {
	m := matrix.MustNew(4, [][]int32{
		{0, 1},    // c1: rows r1, r2
		{0, 1, 2}, // c2: rows r1, r2, r3
		{2, 3},    // c3: rows r3, r4
	})
	// π1 = {1→3, 2→1, 3→2, 4→4}, π2 = {1→2, 2→4, 3→3, 4→1}; the paper
	// numbers rows and positions from 1, we from 0.
	perms := [][]int{
		{2, 0, 1, 3},
		{1, 3, 2, 0},
	}
	sig, err := FromPermutations(m.Stream(), perms)
	if err != nil {
		t.Fatal(err)
	}
	// The paper records M̂ as the *row index* of the argmin (M̂ =
	// [[2,2,3],[1,1,4]] in its 1-based notation); this implementation
	// records the min *position*, which identifies the same argmin row
	// (permutations are injective), so agreements — and hence Ŝ — are
	// identical. Expected positions, 0-based:
	//   π1: r0→2 r1→0 r2→1 r3→3  =>  c1:min(2,0)=0  c2:0  c3:min(1,3)=1
	//   π2: r0→1 r1→3 r2→2 r3→0  =>  c1:min(1,3)=1  c2:1  c3:min(2,0)=0
	want := [][]uint64{
		{0, 0, 1}, // h1 row (argmins r2, r2, r3 — the paper's 2, 2, 3)
		{1, 1, 0}, // h2 row (argmins r1, r1, r4 — the paper's 1, 1, 4)
	}
	for l := range want {
		for c := range want[l] {
			if got := sig.Value(l, c); got != want[l][c] {
				t.Errorf("M̂[%d][c%d] = %d, want %d", l+1, c+1, got, want[l][c])
			}
		}
	}
	// Ŝ values from the paper.
	if got := sig.Estimate(0, 1); got != 1 {
		t.Errorf("Ŝ(c1,c2) = %v, want 1", got)
	}
	if got := sig.Estimate(0, 2); got != 0 {
		t.Errorf("Ŝ(c1,c3) = %v, want 0", got)
	}
	if got := sig.Estimate(1, 2); got != 0 {
		t.Errorf("Ŝ(c2,c3) = %v, want 0", got)
	}
}

func TestFromPermutationsValidation(t *testing.T) {
	m := matrix.MustNew(3, [][]int32{{0, 1}})
	bad := [][][]int{
		{},                     // no permutations
		{{0, 1}},               // wrong length
		{{0, 1, 1}},            // duplicate
		{{0, 1, 5}},            // out of range
		{{0, 1, 2}, {0, 0, 0}}, // second perm invalid
	}
	for i, perms := range bad {
		if _, err := FromPermutations(m.Stream(), perms); err == nil {
			t.Errorf("bad perms %d accepted", i)
		}
	}
}

// TestFromPermutationsMatchesHashOrder: signatures from an explicit
// permutation must equal signatures from any hash function inducing
// the same row order.
func TestFromPermutationsMatchesHashOrder(t *testing.T) {
	m := matrix.MustNew(5, [][]int32{
		{0, 2, 4},
		{1, 2},
		{3},
	})
	perm := []int{4, 2, 0, 3, 1}
	sig, err := FromPermutations(m.Stream(), [][]int{perm})
	if err != nil {
		t.Fatal(err)
	}
	// Agreement pattern must match a direct min-position computation.
	for c := 0; c < 3; c++ {
		want := uint64(1 << 62)
		for _, r := range m.Column(c) {
			if v := uint64(perm[r]); v < want {
				want = v
			}
		}
		if got := sig.Value(0, c); got != want {
			t.Errorf("column %d: %d, want %d", c, got, want)
		}
	}
}
