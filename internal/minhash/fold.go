package minhash

import (
	"fmt"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

// FoldState is the resumable accumulator of the MH signature pass: the
// column-major running minima Compute keeps internally, exported so
// ingestion can stop after any row, snapshot to disk (WriteTo/
// ReadFoldState, format AMF1), and continue later at O(new rows) cost.
// States over disjoint row sets combine exactly with Merge — the
// minimum over a union of rows is the minimum of the per-part minima —
// which also makes FoldState the unit of work of the merge-based
// streamed driver (FoldStream) and of sliding-window ingestion.
//
// A FoldState is not safe for concurrent use; parallel folds give each
// worker its own state and merge afterwards.
type FoldState struct {
	k, m    int
	seed    uint64
	rows    int64    // rows folded so far
	work    []uint64 // column-major running minima: work[c*k+l]
	hs      []hashing.PermHash
	rowVals []uint64 // per-row hash scratch
}

// NewFoldState returns an empty fold state for m columns and k hash
// functions derived from seed. Folding rows into it and calling Finish
// yields exactly what Compute returns for the same rows.
func NewFoldState(m, k int, seed uint64) (*FoldState, error) {
	if k <= 0 {
		return nil, fmt.Errorf("minhash: k must be positive, got %d", k)
	}
	if m < 0 {
		return nil, fmt.Errorf("minhash: negative column count %d", m)
	}
	return newFoldState(m, k, seed, hashing.NewPermHashes(seed, k)), nil
}

// newFoldState builds an empty state sharing an already-derived hash
// family (the functions are value types and read-only, so states of the
// same seed can share the slice).
func newFoldState(m, k int, seed uint64, hs []hashing.PermHash) *FoldState {
	s := &FoldState{
		k:       k,
		m:       m,
		seed:    seed,
		work:    make([]uint64, k*m),
		hs:      hs,
		rowVals: make([]uint64, k),
	}
	for i := range s.work {
		s.work[i] = Empty
	}
	return s
}

// K returns the number of hash functions.
func (s *FoldState) K() int { return s.k }

// NumCols returns the number of columns.
func (s *FoldState) NumCols() int { return s.m }

// Seed returns the hash-family seed.
func (s *FoldState) Seed() uint64 { return s.seed }

// Rows returns the number of rows folded into the state so far.
func (s *FoldState) Rows() int64 { return s.rows }

// FoldRow folds one row (its sorted column indices) into the state.
// Rows may arrive in any order, but each row id must be folded at most
// once across all states that will be merged together.
func (s *FoldState) FoldRow(row int, cols []int32) {
	s.rows++
	if len(cols) == 0 {
		return
	}
	k := s.k
	for l := 0; l < k; l++ {
		s.rowVals[l] = s.hs[l].Row(row)
	}
	for _, c := range cols {
		foldMin(s.work[int(c)*k:int(c)*k+k], s.rowVals)
	}
}

// FoldShard folds every row of a shard, in shard order.
func (s *FoldState) FoldShard(sh *matrix.Shard) {
	for i := 0; i < sh.Len(); i++ {
		row, cols := sh.Row(i)
		s.FoldRow(int(row), cols)
	}
}

// Finish transposes the running minima into the hash-major Signatures
// layout. The state is left intact, so more rows can be folded and
// Finish called again.
func (s *FoldState) Finish() *Signatures {
	sig := &Signatures{K: s.k, M: s.m, Vals: make([]uint64, s.k*s.m)}
	for c := 0; c < s.m; c++ {
		for l, v := range s.work[c*s.k : (c+1)*s.k] {
			sig.Vals[l*s.m+c] = v
		}
	}
	return sig
}

// Clone returns an independent copy of the state (the read-only hash
// family is shared).
func (s *FoldState) Clone() *FoldState {
	c := newFoldState(s.m, s.k, s.seed, s.hs)
	copy(c.work, s.work)
	c.rows = s.rows
	return c
}

// Merge folds src into dst: the pointwise minimum of the two minima
// arrays. If dst and src were folded from disjoint row sets, dst
// becomes exactly the state of folding their union — minimisation is
// commutative, associative, and idempotent-with-empty, so any merge
// order (and any row partition) yields the same state bit for bit. src
// is left unchanged. The states must agree on k, m, and seed.
func Merge(dst, src *FoldState) error {
	if dst.k != src.k || dst.m != src.m || dst.seed != src.seed {
		return fmt.Errorf("minhash: fold state mismatch: k=%d/%d m=%d/%d seed=%#x/%#x",
			dst.k, src.k, dst.m, src.m, dst.seed, src.seed)
	}
	for i, v := range src.work {
		if v < dst.work[i] {
			dst.work[i] = v
		}
	}
	dst.rows += src.rows
	return nil
}
