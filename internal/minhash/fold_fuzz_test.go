package minhash

import (
	"bytes"
	"reflect"
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

// FuzzFoldStateRoundTrip: any byte stream must either parse into a
// valid fold state or error — never panic, and never allocate anywhere
// near the k·m the header claims before the data backs it up. Whatever
// parses must round-trip through WriteTo bit-identically.
func FuzzFoldStateRoundTrip(f *testing.F) {
	st, err := NewFoldState(5, 3, 42)
	if err != nil {
		f.Fatal(err)
	}
	var empty bytes.Buffer
	if err := st.Snapshot(&empty); err != nil {
		f.Fatal(err)
	}
	f.Add(empty.Bytes())
	st.FoldRow(0, []int32{0, 2, 4})
	st.FoldRow(1, []int32{1})
	var populated bytes.Buffer
	if err := st.Snapshot(&populated); err != nil {
		f.Fatal(err)
	}
	f.Add(populated.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("AMF1"))
	// Header claiming 2^17 x 2^17 values with no data behind it.
	hostile := append([]byte("AMF1"),
		0, 0, 2, 0, 0, 0, 0, 0,
		0, 0, 2, 0, 0, 0, 0, 0,
		7, 0, 0, 0, 0, 0, 0, 0,
		9, 0, 0, 0, 0, 0, 0, 0)
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := ReadFoldState(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(st.work) != st.k*st.m {
			t.Fatalf("parsed %d values for k=%d m=%d", len(st.work), st.k, st.m)
		}
		var out bytes.Buffer
		if err := st.Snapshot(&out); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		st2, err := ReadFoldState(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if !statesEqual(st, st2) {
			t.Fatal("round trip changed the state")
		}
	})
}

// FuzzMergeVsBatch: for a random matrix and a random row split, folding
// the two halves separately and merging equals the batch Compute — the
// merge algebra holds at every split point, shard boundaries included.
func FuzzMergeVsBatch(f *testing.F) {
	f.Add(uint64(1), uint16(40), uint16(10), uint16(4), uint16(13))
	f.Add(uint64(7), uint16(600), uint16(20), uint16(6), uint16(512)) // split on a shard boundary
	f.Add(uint64(9), uint16(3), uint16(5), uint16(2), uint16(0))      // empty first half
	f.Fuzz(func(t *testing.T, seed uint64, rowsU, colsU, kU, splitU uint16) {
		rows := int(rowsU % 700)
		cols := 1 + int(colsU%40)
		k := 1 + int(kU%10)
		split := 0
		if rows > 0 {
			split = int(splitU) % (rows + 1)
		}
		rng := hashing.NewSplitMix64(seed)
		data := make([][]int32, rows)
		for r := range data {
			var row []int32
			for c := 0; c < cols; c++ {
				if rng.Intn(4) == 0 {
					row = append(row, int32(c))
				}
			}
			data[r] = row
		}
		src := &matrix.SliceSource{Cols: cols, Rows: data}
		want, err := Compute(src, k, seed)
		if err != nil {
			t.Fatal(err)
		}
		a, err := NewFoldState(cols, k, seed)
		if err != nil {
			t.Fatal(err)
		}
		b, err := NewFoldState(cols, k, seed)
		if err != nil {
			t.Fatal(err)
		}
		for r, colsRow := range data {
			if r < split {
				a.FoldRow(r, colsRow)
			} else {
				b.FoldRow(r, colsRow)
			}
		}
		if err := Merge(a, b); err != nil {
			t.Fatal(err)
		}
		if got := a.Finish(); !reflect.DeepEqual(got.Vals, want.Vals) {
			t.Fatalf("split %d/%d: merged signatures differ from batch", split, rows)
		}
	})
}
