package minhash

import (
	"bytes"
	"reflect"
	"testing"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

// foldParts folds the fixture's rows into p states according to the
// random assignment part[r], preserving global row ids.
func foldParts(t *testing.T, src *matrix.SliceSource, part []int, p, k int, seed uint64) []*FoldState {
	t.Helper()
	states := make([]*FoldState, p)
	for i := range states {
		st, err := NewFoldState(src.Cols, k, seed)
		if err != nil {
			t.Fatal(err)
		}
		states[i] = st
	}
	for r, cols := range src.Rows {
		states[part[r]].FoldRow(r, cols)
	}
	return states
}

func statesEqual(a, b *FoldState) bool {
	return a.k == b.k && a.m == b.m && a.seed == b.seed && a.rows == b.rows &&
		reflect.DeepEqual(a.work, b.work)
}

// TestMergeAlgebra: under randomized row partitions, Merge is
// commutative and associative on the raw state, merging with an empty
// state is the identity, and the full merge reproduces Compute over all
// rows bit for bit.
func TestMergeAlgebra(t *testing.T) {
	src := streamFixture(400, 40, 23)
	const k, seed = 12, 99
	want, err := Compute(src, k, seed)
	if err != nil {
		t.Fatal(err)
	}
	rng := hashing.NewSplitMix64(41)
	for trial := 0; trial < 8; trial++ {
		p := 2 + rng.Intn(4)
		part := make([]int, len(src.Rows))
		for r := range part {
			part[r] = rng.Intn(p)
		}
		states := foldParts(t, src, part, p, k, seed)
		a, b := states[0], states[1]

		// Commutativity: a+b == b+a.
		ab, ba := a.Clone(), b.Clone()
		if err := Merge(ab, b); err != nil {
			t.Fatal(err)
		}
		if err := Merge(ba, a); err != nil {
			t.Fatal(err)
		}
		if !statesEqual(ab, ba) {
			t.Fatalf("trial %d: merge not commutative", trial)
		}

		// Associativity: (a+b)+c == a+(b+c), with c the rest of the parts.
		if p > 2 {
			c := states[2]
			left := a.Clone()
			if err := Merge(left, b); err != nil {
				t.Fatal(err)
			}
			if err := Merge(left, c); err != nil {
				t.Fatal(err)
			}
			bc := b.Clone()
			if err := Merge(bc, c); err != nil {
				t.Fatal(err)
			}
			right := a.Clone()
			if err := Merge(right, bc); err != nil {
				t.Fatal(err)
			}
			if !statesEqual(left, right) {
				t.Fatalf("trial %d: merge not associative", trial)
			}
		}

		// Identity: a + empty == a, empty + a == a.
		empty, err := NewFoldState(src.Cols, k, seed)
		if err != nil {
			t.Fatal(err)
		}
		id := a.Clone()
		if err := Merge(id, empty); err != nil {
			t.Fatal(err)
		}
		if !statesEqual(id, a) {
			t.Fatalf("trial %d: merge with empty is not the identity", trial)
		}
		id2 := empty.Clone()
		if err := Merge(id2, a); err != nil {
			t.Fatal(err)
		}
		if !statesEqual(id2, a) {
			t.Fatalf("trial %d: empty merged with a differs from a", trial)
		}

		// Totality: merging every part reproduces the batch signatures.
		total := states[0].Clone()
		for _, st := range states[1:] {
			if err := Merge(total, st); err != nil {
				t.Fatal(err)
			}
		}
		if total.Rows() != int64(len(src.Rows)) {
			t.Fatalf("trial %d: merged rows = %d, want %d", trial, total.Rows(), len(src.Rows))
		}
		got := total.Finish()
		if !reflect.DeepEqual(got.Vals, want.Vals) {
			t.Fatalf("trial %d: merged signatures differ from batch", trial)
		}
	}
}

// TestMergeMismatch: states with different parameters refuse to merge.
func TestMergeMismatch(t *testing.T) {
	a, _ := NewFoldState(10, 4, 1)
	for _, b := range []*FoldState{
		func() *FoldState { s, _ := NewFoldState(10, 5, 1); return s }(),
		func() *FoldState { s, _ := NewFoldState(11, 4, 1); return s }(),
		func() *FoldState { s, _ := NewFoldState(10, 4, 2); return s }(),
	} {
		if err := Merge(a, b); err == nil {
			t.Errorf("merge of mismatched states (k=%d m=%d seed=%d) accepted", b.k, b.m, b.seed)
		}
	}
}

// TestFoldStateResume: chunked folding — with a snapshot round-trip in
// the middle — matches Compute bit for bit, and Finish leaves the state
// usable for further folding.
func TestFoldStateResume(t *testing.T) {
	src := streamFixture(300, 30, 7)
	const k, seed = 8, 13
	want, err := Compute(src, k, seed)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewFoldState(src.Cols, k, seed)
	if err != nil {
		t.Fatal(err)
	}
	for r, cols := range src.Rows {
		if r == 150 {
			// Mid-ingest snapshot/restore; the resumed state must be
			// indistinguishable from the uninterrupted one.
			var buf bytes.Buffer
			if err := st.Snapshot(&buf); err != nil {
				t.Fatal(err)
			}
			st, err = ReadFoldState(&buf)
			if err != nil {
				t.Fatal(err)
			}
			// An early Finish must not disturb the state.
			_ = st.Finish()
		}
		st.FoldRow(r, cols)
	}
	if got := st.Finish(); !reflect.DeepEqual(got.Vals, want.Vals) {
		t.Fatal("resumed fold differs from batch")
	}
	if st.Rows() != 300 {
		t.Fatalf("rows = %d, want 300", st.Rows())
	}
}

// TestFoldStateCodecRoundTrip: decode(encode(s)) == s for empty,
// partial, and zero-column states; corrupt magic and truncated payloads
// are rejected.
func TestFoldStateCodecRoundTrip(t *testing.T) {
	src := streamFixture(120, 25, 3)
	st, err := NewFoldState(src.Cols, 6, 77)
	if err != nil {
		t.Fatal(err)
	}
	states := []*FoldState{st.Clone()} // empty
	for r, cols := range src.Rows {
		st.FoldRow(r, cols)
	}
	states = append(states, st) // populated
	zc, err := NewFoldState(0, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	states = append(states, zc) // zero columns
	for i, s := range states {
		var buf bytes.Buffer
		if err := s.Snapshot(&buf); err != nil {
			t.Fatalf("state %d: %v", i, err)
		}
		enc := buf.Bytes()
		got, err := ReadFoldState(bytes.NewReader(enc))
		if err != nil {
			t.Fatalf("state %d: %v", i, err)
		}
		if !statesEqual(got, s) {
			t.Fatalf("state %d: round trip differs", i)
		}
		if len(enc) > 4 {
			if _, err := ReadFoldState(bytes.NewReader(enc[:len(enc)-3])); err == nil {
				t.Fatalf("state %d: truncated payload accepted", i)
			}
		}
		bad := append([]byte("XXXX"), enc[4:]...)
		if _, err := ReadFoldState(bytes.NewReader(bad)); err == nil {
			t.Fatalf("state %d: bad magic accepted", i)
		}
	}
}
