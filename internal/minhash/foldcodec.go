package minhash

import (
	"encoding/binary"
	"fmt"
	"io"

	"assocmine/internal/hashing"
)

// Fold-state persistence: an ingestion process snapshots its FoldState
// after each batch so a restart resumes at O(new rows) instead of
// refolding history. The AMF1 format is versioned by magic like the
// signature codecs and stores the raw 64-bit minima verbatim
// (column-major, the state's own layout), so decode(encode(s)) == s bit
// for bit and a resumed fold is indistinguishable from an uninterrupted
// one.
//
// Unlike ReadSignatures, the fold codec never wraps the stream in its
// own buffered reader and consumes exactly its encoded bytes — several
// states (a sliding window's ring) share one stream in the ingest
// snapshot container, so read-ahead would corrupt the next blob. Pass a
// buffered reader for performance.
const foldMagic = "AMF1"

// Snapshot serialises the state: magic, then k, m, seed, rows as 8-byte
// little-endian words, then k·m raw minima column-major.
func (s *FoldState) Snapshot(w io.Writer) error {
	var hdr [36]byte
	copy(hdr[:4], foldMagic)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(s.k))
	binary.LittleEndian.PutUint64(hdr[12:], uint64(s.m))
	binary.LittleEndian.PutUint64(hdr[20:], s.seed)
	binary.LittleEndian.PutUint64(hdr[28:], uint64(s.rows))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	buf := make([]byte, 0, 1<<15)
	for _, v := range s.work {
		buf = binary.LittleEndian.AppendUint64(buf, v)
		if len(buf) == cap(buf) {
			if _, err := w.Write(buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	if len(buf) > 0 {
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadFoldState parses a stream written by Snapshot. The value array is
// grown as bytes actually arrive, mirroring the signature readers'
// hostile-header guard, and the hash family is only derived once the
// full payload has been read.
func ReadFoldState(r io.Reader) (*FoldState, error) {
	var hdr [36]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("minhash: reading fold header: %w", err)
	}
	if string(hdr[:4]) != foldMagic {
		return nil, fmt.Errorf("minhash: bad fold magic %q", hdr[:4])
	}
	k := binary.LittleEndian.Uint64(hdr[4:])
	m := binary.LittleEndian.Uint64(hdr[12:])
	seed := binary.LittleEndian.Uint64(hdr[20:])
	rows := binary.LittleEndian.Uint64(hdr[28:])
	const (
		maxDim  = 1 << 31
		maxK    = 1 << 20 // rebuilding the hash family costs O(k)
		maxRows = 1 << 40
	)
	if k == 0 || k > maxK || m > maxDim || rows > maxRows {
		return nil, fmt.Errorf("minhash: implausible fold dimensions k=%d m=%d rows=%d", k, m, rows)
	}
	total := k * m
	if total > (1 << 34) {
		return nil, fmt.Errorf("minhash: fold state too large: %d values", total)
	}
	const allocChunk = 1 << 20
	var work []uint64
	var buf [8]byte
	for read := uint64(0); read < total; read++ {
		if _, err := io.ReadFull(r, buf[:]); err != nil {
			return nil, fmt.Errorf("minhash: reading fold value %d: %w", read, err)
		}
		if uint64(len(work)) == read {
			grow := total - read
			if grow > allocChunk {
				grow = allocChunk
			}
			work = append(work, make([]uint64, grow)...)
		}
		work[read] = binary.LittleEndian.Uint64(buf[:])
	}
	if work == nil {
		work = []uint64{}
	}
	return &FoldState{
		k:       int(k),
		m:       int(m),
		seed:    seed,
		rows:    int64(rows),
		work:    work,
		hs:      hashing.NewPermHashes(seed, int(k)),
		rowVals: make([]uint64, k),
	}, nil
}
