package minhash

import (
	"bytes"
	"testing"

	"assocmine/internal/hashing"
)

// TestMergeThroughCodecProperty is the cross-process merge property the
// scale-out executor relies on: Merge(decode(encode(a)), b) equals the
// in-memory Merge(a, b) — the AMF1 codec is transparent to merging.
// Randomised over dimensions, row splits, and sparsity.
func TestMergeThroughCodecProperty(t *testing.T) {
	rng := hashing.NewSplitMix64(0xd15f)
	for trial := 0; trial < 40; trial++ {
		m := 1 + int(rng.Next()%40)
		k := 1 + int(rng.Next()%24)
		seed := rng.Next()
		rowsA := int(rng.Next() % 60)
		rowsB := int(rng.Next() % 60)
		fold := func(base, rows int) *FoldState {
			s, err := NewFoldState(m, k, seed)
			if err != nil {
				t.Fatal(err)
			}
			cols := make([]int32, 0, 8)
			for r := 0; r < rows; r++ {
				cols = cols[:0]
				for c := 0; c < m; c++ {
					if rng.Next()%5 == 0 {
						cols = append(cols, int32(c))
					}
				}
				s.FoldRow(base+r, cols)
			}
			return s
		}
		a := fold(0, rowsA)
		b := fold(rowsA, rowsB)

		want := a.Clone()
		if err := Merge(want, b); err != nil {
			t.Fatal(err)
		}

		var buf bytes.Buffer
		if err := a.Snapshot(&buf); err != nil {
			t.Fatal(err)
		}
		decoded, err := ReadFoldState(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := Merge(decoded, b); err != nil {
			t.Fatal(err)
		}

		if decoded.Rows() != want.Rows() {
			t.Fatalf("trial %d: rows %d, want %d", trial, decoded.Rows(), want.Rows())
		}
		gs, ws := decoded.Finish(), want.Finish()
		if gs.K != ws.K || gs.M != ws.M {
			t.Fatalf("trial %d: dims %dx%d, want %dx%d", trial, gs.K, gs.M, ws.K, ws.M)
		}
		for i := range ws.Vals {
			if gs.Vals[i] != ws.Vals[i] {
				t.Fatalf("trial %d: value %d differs after codec round-trip", trial, i)
			}
		}
	}
}
