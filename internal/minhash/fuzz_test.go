package minhash

import (
	"bytes"
	"testing"
)

// FuzzReadSignatures: any byte stream must either parse into valid
// signatures or error — never panic, and never allocate anywhere near
// the k·m the header claims before the data backs it up (a 32-byte
// header may legally claim 2^34 values). Whatever parses must
// round-trip through WriteTo bit-identically, seed included.
func FuzzReadSignatures(f *testing.F) {
	s := &Signatures{K: 2, M: 3, Vals: []uint64{1, 2, Empty, 4, 5, 6}}
	var seed bytes.Buffer
	if err := s.WriteTo(&seed, 42); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add([]byte(""))
	f.Add([]byte("AMH1"))
	// Header claiming 2^17 x 2^17 values with no data behind it.
	hostile := append([]byte("AMH1"),
		0, 0, 2, 0, 0, 0, 0, 0,
		0, 0, 2, 0, 0, 0, 0, 0,
		7, 0, 0, 0, 0, 0, 0, 0)
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		sig, sd, err := ReadSignatures(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(sig.Vals) != sig.K*sig.M {
			t.Fatalf("parsed %d values for k=%d m=%d", len(sig.Vals), sig.K, sig.M)
		}
		var out bytes.Buffer
		if err := sig.WriteTo(&out, sd); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		sig2, sd2, err := ReadSignatures(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if sd2 != sd || sig2.K != sig.K || sig2.M != sig.M {
			t.Fatalf("round trip changed header: k=%d m=%d seed=%d vs k=%d m=%d seed=%d",
				sig.K, sig.M, sd, sig2.K, sig2.M, sd2)
		}
		for i := range sig.Vals {
			if sig.Vals[i] != sig2.Vals[i] {
				t.Fatalf("value %d changed in round trip", i)
			}
		}
	})
}
