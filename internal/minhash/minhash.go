// Package minhash implements the MH scheme of Section 3: k independent
// min-hash values per column, computed in a single streaming pass using
// O(mk) memory, together with the similarity estimator Ŝ of
// Definition 1 and the Theorem 1 sample-size bound.
//
// By Proposition 1, for one random row order Prob[h(c_i) = h(c_j)] =
// S(c_i, c_j); the matrix of k independent min-hash values is therefore
// a compact sketch whose per-pair agreement fraction concentrates
// around the true similarity.
package minhash

import (
	"fmt"
	"math"

	"assocmine/internal/hashing"
	"assocmine/internal/matrix"
)

// Empty is the sentinel min-hash value of a column with no 1s. It
// compares unequal to every real hash value for estimation purposes.
const Empty = ^uint64(0)

// Signatures holds the k x m min-hash matrix M̂: Vals[l*M + c] is
// h_l(c), the min-hash of column c under the l-th row order.
type Signatures struct {
	K    int      // number of independent hash functions
	M    int      // number of columns
	Vals []uint64 // length K*M, row-major by hash index
}

// Compute scans src once and returns k independent min-hash values per
// column. The same (src, k, seed) always yields the same signatures.
//
// The fold runs over a column-major scratch — each column's k running
// minima contiguous — so the inner k-loop sweeps one L1-resident slice
// (foldMin) instead of scattering across the hash-major value array
// with stride m. The scratch is transposed into the hash-major layout
// once at the end; per-cell minima are order-independent, so the
// blocked kernel is bit-identical to a direct scatter.
func Compute(src matrix.RowSource, k int, seed uint64) (*Signatures, error) {
	if k <= 0 {
		return nil, fmt.Errorf("minhash: k must be positive, got %d", k)
	}
	m := src.NumCols()
	sig := &Signatures{K: k, M: m, Vals: make([]uint64, k*m)}
	hs := hashing.NewPermHashes(seed, k)
	work := make([]uint64, k*m) // column-major: work[c*k+l]
	for i := range work {
		work[i] = Empty
	}
	rowVals := make([]uint64, k)
	err := src.Scan(func(row int, cols []int32) error {
		if len(cols) == 0 {
			return nil
		}
		for l := 0; l < k; l++ {
			rowVals[l] = hs[l].Row(row)
		}
		for _, c := range cols {
			foldMin(work[int(c)*k:int(c)*k+k], rowVals)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for c := 0; c < m; c++ {
		for l, v := range work[c*k : (c+1)*k] {
			sig.Vals[l*m+c] = v
		}
	}
	return sig, nil
}

// foldMin lowers each dst[l] to rowVals[l] when smaller. This is the
// hot inner loop of the signature pass: dst is one column's contiguous
// minima, so the sweep is a straight run over cached words, unrolled by
// four with the bounds checks hoisted.
func foldMin(dst, rowVals []uint64) {
	rowVals = rowVals[:len(dst)]
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		d, r := dst[i:i+4:i+4], rowVals[i:i+4:i+4]
		if r[0] < d[0] {
			d[0] = r[0]
		}
		if r[1] < d[1] {
			d[1] = r[1]
		}
		if r[2] < d[2] {
			d[2] = r[2]
		}
		if r[3] < d[3] {
			d[3] = r[3]
		}
	}
	for ; i < len(dst); i++ {
		if v := rowVals[i]; v < dst[i] {
			dst[i] = v
		}
	}
}

// Value returns h_l(c).
func (s *Signatures) Value(l, c int) uint64 { return s.Vals[l*s.M+c] }

// Column copies the k min-hash values of column c into dst (which must
// have length K) and returns it; with a nil dst a new slice is
// allocated.
func (s *Signatures) Column(c int, dst []uint64) []uint64 {
	if dst == nil {
		dst = make([]uint64, s.K)
	}
	for l := 0; l < s.K; l++ {
		dst[l] = s.Vals[l*s.M+c]
	}
	return dst
}

// Agreement returns the number of hash indices on which columns i and j
// have identical min-hash values. Sentinel (empty-column) values never
// count as agreement, matching the convention S(∅, ∅) = 0.
func (s *Signatures) Agreement(i, j int) int {
	n := 0
	for l := 0; l < s.K; l++ {
		v := s.Vals[l*s.M+i]
		if v != Empty && v == s.Vals[l*s.M+j] {
			n++
		}
	}
	return n
}

// Estimate returns Ŝ(c_i, c_j), the fraction of agreeing min-hash
// values (Definition 1).
func (s *Signatures) Estimate(i, j int) float64 {
	return float64(s.Agreement(i, j)) / float64(s.K)
}

// OrColumn returns the min-hash signature of the induced column
// c_i ∨ c_j, which is the component-wise minimum of the two signatures
// (Section 7): the first row of C_i ∪ C_j under a given order is the
// smaller of the columns' first rows.
func (s *Signatures) OrColumn(i, j int, dst []uint64) []uint64 {
	if dst == nil {
		dst = make([]uint64, s.K)
	}
	for l := 0; l < s.K; l++ {
		a, b := s.Vals[l*s.M+i], s.Vals[l*s.M+j]
		if b < a {
			a = b
		}
		dst[l] = a
	}
	return dst
}

// LessOrEqualFraction returns the fraction of hash indices with
// h_l(c_i) <= h_l(c_j), an unbiased estimator of |C_i| / |C_i ∪ C_j|
// (Section 6). Indices where both columns are empty are skipped; an
// empty c_i never counts as <=.
func (s *Signatures) LessOrEqualFraction(i, j int) float64 {
	n := 0
	for l := 0; l < s.K; l++ {
		vi, vj := s.Vals[l*s.M+i], s.Vals[l*s.M+j]
		if vi == Empty {
			continue
		}
		if vi <= vj {
			n++
		}
	}
	return float64(n) / float64(s.K)
}

// FromPermutations computes signatures from explicit row permutations
// instead of hash values: perms[l][r] is the position of row r under
// the l-th permutation, and the signature h_l(c) is the minimum
// position over the column's rows (the paper's Example 1 formulation,
// before the hashing optimisation). Intended for tests and teaching;
// production code uses Compute.
func FromPermutations(src matrix.RowSource, perms [][]int) (*Signatures, error) {
	k := len(perms)
	if k == 0 {
		return nil, fmt.Errorf("minhash: need at least one permutation")
	}
	n := src.NumRows()
	for l, p := range perms {
		if len(p) != n {
			return nil, fmt.Errorf("minhash: permutation %d has %d entries for %d rows", l, len(p), n)
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return nil, fmt.Errorf("minhash: permutation %d is not a permutation of [0,%d)", l, n)
			}
			seen[v] = true
		}
	}
	m := src.NumCols()
	sig := &Signatures{K: k, M: m, Vals: make([]uint64, k*m)}
	for i := range sig.Vals {
		sig.Vals[i] = Empty
	}
	err := src.Scan(func(row int, cols []int32) error {
		for l := 0; l < k; l++ {
			v := uint64(perms[l][row])
			for _, c := range cols {
				p := l*m + int(c)
				if v < sig.Vals[p] {
					sig.Vals[p] = v
				}
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sig, nil
}

// SampleSize returns the Theorem 1 bound k >= 2 δ⁻² c⁻¹ ln(1/ε) on the
// number of min-hash values needed so that, for every pair, similarity
// >= s* >= c implies agreement >= (1-δ)s* with probability 1-ε, and
// similarity <= c implies agreement <= (1+δ)c with probability 1-ε.
func SampleSize(delta, epsilon, c float64) (int, error) {
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("minhash: delta must be in (0,1), got %v", delta)
	}
	if epsilon <= 0 || epsilon >= 1 {
		return 0, fmt.Errorf("minhash: epsilon must be in (0,1), got %v", epsilon)
	}
	if c <= 0 || c > 1 {
		return 0, fmt.Errorf("minhash: c must be in (0,1], got %v", c)
	}
	k := 2 / (delta * delta * c) * math.Log(1/epsilon)
	return int(math.Ceil(k)), nil
}
